(** Locks in virtual time.

    Acquisition moves the acquiring thread's clock to the lock's release
    time (if in the future) and charges the atomic-operation cost —
    contended when the previous holder was another thread (the cache line
    has to move between cores).

    Contention diagnostics (wait cycles, acquisition counts, contended
    vs. uncontended, hold time) are recorded per call-site into the
    acquiring machine's {!Simurgh_obs.Run.t} — there is no process-global
    state, so consecutive experiments report independent totals.

    Two concerns beyond virtual time live here as well:

    - {b execution-level mutual exclusion}: under the preemptive
      schedule explorer ({!Engine.explore}) operations interleave at
      every yield point, so the locks must actually exclude — each lock
      tracks its owning simulated thread and blocks acquirers through
      {!Schedule.wait_while}.  Acquisition is re-entrant (rename's
      destination removal re-locks an already-held row lock).  Outside
      an exploring run operations are atomic with respect to each other
      and the owner field merely toggles within one operation.
    - {b happens-before edges}: every acquire/release notifies the
      ambient {!Race} detector with the lock's unique id.

    Each [with_*] helper releases on the way out {e even when the body
    raises} ([Fun.protect]) — a [Media_error]→EIO path throwing inside
    a critical section must not leak the lock. *)

open Simurgh_obs

(* Unique lock identities for the race detector's lock vector clocks. *)
let next_lock_id = ref 0

let fresh_lock_id () =
  incr next_lock_id;
  !next_lock_id

(* Record one acquisition into the machine-scoped contention registry. *)
let record_acquire (ctx : Machine.ctx) ~site ~kind ~wait =
  let run = Machine.ctx_obs ctx in
  Contention.record_acquire run.Run.contention ~site ~kind ~wait;
  Span.add_lock_wait run.Run.spans wait

let record_hold (ctx : Machine.ctx) ~site ~kind ~hold =
  let run = Machine.ctx_obs ctx in
  Contention.record_hold run.Run.contention ~site ~kind ~hold

(** Busy-wait spin lock (Simurgh's atomic flags, per-line busy bits).

    Contention is modeled as a work-conserving backlog of hold durations:
    an acquirer waits for the outstanding backlog, and each release
    appends its own hold time.  Simulated threads interleave at operation
    granularity, so a thread whose operation started earlier in virtual
    time must not jump to another thread's later wall-clock release — the
    backlog formulation gives exactly the serialization the critical
    sections impose and nothing more. *)
module Spin = struct
  type t = {
    id : int;
    server : Resource.t;  (** backlog of hold durations *)
    mutable last_holder : int;
    mutable entered_at : float;
    mutable owner : int;  (** executing owner under the explorer, -1 free *)
    mutable depth : int;  (** re-entrant acquisition depth *)
    site : string;
    kind : Contention.kind;
        (** how the site is reported (a Mutex's inner spin reports as
            [Mutex]) *)
  }

  let create ?(site = "anon") ?(kind = Contention.Spin) () =
    {
      id = fresh_lock_id ();
      server = Resource.create site;
      last_holder = -1;
      entered_at = 0.0;
      owner = -1;
      depth = 0;
      site;
      kind;
    }

  (** Is the lock held (execution-level) right now?  Distinct from
      {!busy}, which asks about the virtual-time backlog. *)
  let locked t = t.owner >= 0

  let acquire (ctx : Machine.ctx) t =
    let thr = ctx.Machine.thr in
    let tid = thr.Sthread.tid in
    Schedule.point Schedule.Acquire;
    if t.owner = tid then t.depth <- t.depth + 1
    else begin
      Schedule.wait_while (fun () -> t.owner >= 0);
      t.owner <- tid;
      t.depth <- 1
    end;
    Machine.atomic ctx ~contended:(t.last_holder <> tid);
    let done_at = Resource.serve t.server ~now:thr.Sthread.now ~dur:0.0 in
    record_acquire ctx ~site:t.site ~kind:t.kind
      ~wait:(done_at -. thr.Sthread.now);
    Sthread.wait_until thr done_at;
    t.entered_at <- thr.Sthread.now;
    t.last_holder <- tid;
    Race.on_acquire t.id

  let release (ctx : Machine.ctx) t =
    let thr = ctx.Machine.thr in
    let hold = thr.Sthread.now -. t.entered_at in
    if hold > 0.0 then begin
      Resource.push_work t.server ~now:t.entered_at ~dur:hold;
      record_hold ctx ~site:t.site ~kind:t.kind ~hold
    end;
    Race.on_release t.id;
    if t.depth > 1 then t.depth <- t.depth - 1
    else begin
      t.depth <- 0;
      t.owner <- -1
    end;
    Schedule.point Schedule.Release

  let with_lock ctx t f =
    acquire ctx t;
    Fun.protect ~finally:(fun () -> release ctx t) f

  (** Is the lock (probably) held at [now]?  Used by the allocator to
      skip busy segments and by crash detection. *)
  let busy t ~now = Resource.pending t.server ~now > 0.0
end

(** Kernel sleeping mutex (VFS inode locks): contended acquisition goes
    through futex wait/wake, which costs a couple of kernel transitions. *)
module Mutex = struct
  type t = { spin : Spin.t; mutable contentions : int }

  let create ?(site = "mutex") () =
    { spin = Spin.create ~site ~kind:Contention.Mutex (); contentions = 0 }

  let acquire (ctx : Machine.ctx) t =
    let thr = ctx.Machine.thr in
    let cm = Machine.cm ctx in
    let contended =
      Resource.pending t.spin.Spin.server ~now:thr.Sthread.now > 0.0
    in
    if contended then begin
      (* futex_wait + wakeup path: two kernel transitions + scheduling *)
      t.contentions <- t.contentions + 1;
      Machine.cpu ctx (2.0 *. cm.Cost_model.syscall_cycles +. 1500.0)
    end;
    Spin.acquire ctx t.spin

  let release (ctx : Machine.ctx) t = Spin.release ctx t.spin

  let with_lock ctx t f =
    acquire ctx t;
    Fun.protect ~finally:(fun () -> release ctx t) f

  let contentions t = t.contentions
end

(** Reader-writer lock.  Readers overlap; each acquisition still bounces
    the shared counter cache line, which is precisely why Linux's
    per-file rw_semaphore limits shared-file read scalability (Fig. 7i)
    while writers serialize fully (Fig. 7k).

    Acquisitions return a token (the acquisition's virtual entry time)
    that must be passed back to the matching release.  The lock used to
    keep one shared [entered_at] field, so overlapping readers
    overwrote each other's acquire time and release computed wrong —
    even negative, silently dropped — hold times. *)
module Rw = struct
  (** Per-acquisition token: virtual time at which the caller entered. *)
  type token = float

  type t = {
    id : int;
    counter : Resource.t;  (** the shared count cache line *)
    excl : Resource.t;  (** writer hold backlog *)
    rd : Resource.t;  (** reader hold backlog (scaled by parallelism) *)
    mutable last_toucher : int;
    mutable writer : int;  (** executing writer under the explorer *)
    mutable wdepth : int;
    mutable readers : int;  (** executing reader count under the explorer *)
    site : string;
    striped : bool;
        (** distributed (per-core) reader counters: readers do not bounce
            a shared line.  Simurgh's per-file locks use this; the Linux
            rw_semaphore does not, which is exactly why shared-file reads
            stop scaling on kernel file systems (Fig. 7i). *)
  }

  let create ?(site = "rwlock") ?(striped = false) () =
    {
      id = fresh_lock_id ();
      counter = Resource.create "rwlock-counter";
      excl = Resource.create "rwlock-excl";
      rd = Resource.create "rwlock-rd";
      last_toucher = -1;
      writer = -1;
      wdepth = 0;
      readers = 0;
      site;
      striped;
    }

  (* Under many-way alternating access a lockref-style counter costs far
     more than a single line transfer (retry storms); factor 8 over the
     base contended-atomic cost matches observed rw_semaphore scaling. *)
  let contended_factor = 8.0

  (* Concurrent readers overlap: a writer waits for roughly the residual
     of the overlapping reads, approximated by scaling reader holds down
     by the typical read parallelism. *)
  let read_parallelism = 4.0

  let touch_counter ctx t =
    let thr = ctx.Machine.thr in
    let cm = Machine.cm ctx in
    let dur =
      if t.last_toucher = thr.Sthread.tid then cm.Cost_model.atomic_uncontended
      else contended_factor *. cm.Cost_model.atomic_contended
    in
    let done_at = Resource.serve t.counter ~now:thr.Sthread.now ~dur in
    Sthread.wait_until thr done_at;
    t.last_toucher <- thr.Sthread.tid

  let read_acquire ctx t : token =
    let thr = ctx.Machine.thr in
    Schedule.point Schedule.Acquire;
    (* a thread already holding the write side may also read *)
    Schedule.wait_while (fun () ->
        t.writer >= 0 && t.writer <> thr.Sthread.tid);
    t.readers <- t.readers + 1;
    if t.striped then Machine.atomic ctx ~contended:false
    else touch_counter ctx t;
    (* wait behind outstanding writer holds *)
    let done_at = Resource.serve t.excl ~now:thr.Sthread.now ~dur:0.0 in
    record_acquire ctx ~site:t.site ~kind:Contention.Rwlock
      ~wait:(Float.max 0.0 (done_at -. thr.Sthread.now));
    Sthread.wait_until thr done_at;
    Race.on_acquire t.id;
    thr.Sthread.now

  let read_release ctx t (entered_at : token) =
    let thr = ctx.Machine.thr in
    if t.striped then Machine.atomic ctx ~contended:false
    else touch_counter ctx t;
    let hold = thr.Sthread.now -. entered_at in
    if hold > 0.0 then begin
      Resource.push_work t.rd ~now:entered_at ~dur:(hold /. read_parallelism);
      record_hold ctx ~site:t.site ~kind:Contention.Rwlock ~hold
    end;
    Race.on_release t.id;
    t.readers <- t.readers - 1;
    Schedule.point Schedule.Release

  let write_acquire ctx t : token =
    let thr = ctx.Machine.thr in
    let tid = thr.Sthread.tid in
    Schedule.point Schedule.Acquire;
    if t.writer = tid then t.wdepth <- t.wdepth + 1
    else begin
      Schedule.wait_while (fun () -> t.writer >= 0 || t.readers > 0);
      t.writer <- tid;
      t.wdepth <- 1
    end;
    touch_counter ctx t;
    let d1 = Resource.serve t.excl ~now:thr.Sthread.now ~dur:0.0 in
    let d2 = Resource.serve t.rd ~now:thr.Sthread.now ~dur:0.0 in
    let done_at = Float.max d1 d2 in
    record_acquire ctx ~site:t.site ~kind:Contention.Rwlock
      ~wait:(Float.max 0.0 (done_at -. thr.Sthread.now));
    Sthread.wait_until thr done_at;
    Race.on_acquire t.id;
    thr.Sthread.now

  let write_release ctx t (entered_at : token) =
    let thr = ctx.Machine.thr in
    let hold = thr.Sthread.now -. entered_at in
    if hold > 0.0 then begin
      Resource.push_work t.excl ~now:entered_at ~dur:hold;
      record_hold ctx ~site:t.site ~kind:Contention.Rwlock ~hold
    end;
    Race.on_release t.id;
    if t.wdepth > 1 then t.wdepth <- t.wdepth - 1
    else begin
      t.wdepth <- 0;
      t.writer <- -1
    end;
    Schedule.point Schedule.Release

  let with_read ctx t f =
    let tok = read_acquire ctx t in
    Fun.protect ~finally:(fun () -> read_release ctx t tok) f

  let with_write ctx t f =
    let tok = write_acquire ctx t in
    Fun.protect ~finally:(fun () -> write_release ctx t tok) f
end
