(** Locks in virtual time.

    Acquisition moves the acquiring thread's clock to the lock's release
    time (if in the future) and charges the atomic-operation cost —
    contended when the previous holder was another thread (the cache line
    has to move between cores).

    Contention diagnostics (wait cycles, acquisition counts, contended
    vs. uncontended, hold time) are recorded per call-site into the
    acquiring machine's {!Simurgh_obs.Run.t} — there is no process-global
    state, so consecutive experiments report independent totals. *)

open Simurgh_obs

(* Record one acquisition into the machine-scoped contention registry. *)
let record_acquire (ctx : Machine.ctx) ~site ~kind ~wait =
  let run = Machine.ctx_obs ctx in
  Contention.record_acquire run.Run.contention ~site ~kind ~wait;
  Span.add_lock_wait run.Run.spans wait

let record_hold (ctx : Machine.ctx) ~site ~kind ~hold =
  let run = Machine.ctx_obs ctx in
  Contention.record_hold run.Run.contention ~site ~kind ~hold

(** Busy-wait spin lock (Simurgh's atomic flags, per-line busy bits).

    Contention is modeled as a work-conserving backlog of hold durations:
    an acquirer waits for the outstanding backlog, and each release
    appends its own hold time.  Simulated threads interleave at operation
    granularity, so a thread whose operation started earlier in virtual
    time must not jump to another thread's later wall-clock release — the
    backlog formulation gives exactly the serialization the critical
    sections impose and nothing more. *)
module Spin = struct
  type t = {
    server : Resource.t;  (** backlog of hold durations *)
    mutable last_holder : int;
    mutable entered_at : float;
    site : string;
    kind : Contention.kind;
        (** how the site is reported (a Mutex's inner spin reports as
            [Mutex]) *)
  }

  let create ?(site = "anon") ?(kind = Contention.Spin) () =
    {
      server = Resource.create site;
      last_holder = -1;
      entered_at = 0.0;
      site;
      kind;
    }

  let acquire (ctx : Machine.ctx) t =
    let thr = ctx.Machine.thr in
    Machine.atomic ctx ~contended:(t.last_holder <> thr.Sthread.tid);
    let done_at = Resource.serve t.server ~now:thr.Sthread.now ~dur:0.0 in
    record_acquire ctx ~site:t.site ~kind:t.kind
      ~wait:(done_at -. thr.Sthread.now);
    Sthread.wait_until thr done_at;
    t.entered_at <- thr.Sthread.now;
    t.last_holder <- thr.Sthread.tid

  let release (ctx : Machine.ctx) t =
    let thr = ctx.Machine.thr in
    let hold = thr.Sthread.now -. t.entered_at in
    if hold > 0.0 then begin
      Resource.push_work t.server ~now:t.entered_at ~dur:hold;
      record_hold ctx ~site:t.site ~kind:t.kind ~hold
    end

  let with_lock ctx t f =
    acquire ctx t;
    let r = f () in
    release ctx t;
    r

  (** Is the lock (probably) held at [now]?  Used by the allocator to
      skip busy segments and by crash detection. *)
  let busy t ~now = Resource.pending t.server ~now > 0.0
end

(** Kernel sleeping mutex (VFS inode locks): contended acquisition goes
    through futex wait/wake, which costs a couple of kernel transitions. *)
module Mutex = struct
  type t = { spin : Spin.t; mutable contentions : int }

  let create ?(site = "mutex") () =
    { spin = Spin.create ~site ~kind:Contention.Mutex (); contentions = 0 }

  let acquire (ctx : Machine.ctx) t =
    let thr = ctx.Machine.thr in
    let cm = Machine.cm ctx in
    let contended =
      Resource.pending t.spin.Spin.server ~now:thr.Sthread.now > 0.0
    in
    if contended then begin
      (* futex_wait + wakeup path: two kernel transitions + scheduling *)
      t.contentions <- t.contentions + 1;
      Machine.cpu ctx (2.0 *. cm.Cost_model.syscall_cycles +. 1500.0)
    end;
    Spin.acquire ctx t.spin

  let release (ctx : Machine.ctx) t = Spin.release ctx t.spin

  let with_lock ctx t f =
    acquire ctx t;
    let r = f () in
    release ctx t;
    r

  let contentions t = t.contentions
end

(** Reader-writer lock.  Readers overlap; each acquisition still bounces
    the shared counter cache line, which is precisely why Linux's
    per-file rw_semaphore limits shared-file read scalability (Fig. 7i)
    while writers serialize fully (Fig. 7k). *)
module Rw = struct
  type t = {
    counter : Resource.t;  (** the shared count cache line *)
    excl : Resource.t;  (** writer hold backlog *)
    rd : Resource.t;  (** reader hold backlog (scaled by parallelism) *)
    mutable entered_at : float;
    mutable last_toucher : int;
    site : string;
    striped : bool;
        (** distributed (per-core) reader counters: readers do not bounce
            a shared line.  Simurgh's per-file locks use this; the Linux
            rw_semaphore does not, which is exactly why shared-file reads
            stop scaling on kernel file systems (Fig. 7i). *)
  }

  let create ?(site = "rwlock") ?(striped = false) () =
    {
      counter = Resource.create "rwlock-counter";
      excl = Resource.create "rwlock-excl";
      rd = Resource.create "rwlock-rd";
      entered_at = 0.0;
      last_toucher = -1;
      site;
      striped;
    }

  (* Under many-way alternating access a lockref-style counter costs far
     more than a single line transfer (retry storms); factor 8 over the
     base contended-atomic cost matches observed rw_semaphore scaling. *)
  let contended_factor = 8.0

  (* Concurrent readers overlap: a writer waits for roughly the residual
     of the overlapping reads, approximated by scaling reader holds down
     by the typical read parallelism. *)
  let read_parallelism = 4.0

  let touch_counter ctx t =
    let thr = ctx.Machine.thr in
    let cm = Machine.cm ctx in
    let dur =
      if t.last_toucher = thr.Sthread.tid then cm.Cost_model.atomic_uncontended
      else contended_factor *. cm.Cost_model.atomic_contended
    in
    let done_at = Resource.serve t.counter ~now:thr.Sthread.now ~dur in
    Sthread.wait_until thr done_at;
    t.last_toucher <- thr.Sthread.tid

  let read_acquire ctx t =
    let thr = ctx.Machine.thr in
    if t.striped then Machine.atomic ctx ~contended:false
    else touch_counter ctx t;
    (* wait behind outstanding writer holds *)
    let done_at = Resource.serve t.excl ~now:thr.Sthread.now ~dur:0.0 in
    record_acquire ctx ~site:t.site ~kind:Contention.Rwlock
      ~wait:(Float.max 0.0 (done_at -. thr.Sthread.now));
    Sthread.wait_until thr done_at;
    t.entered_at <- thr.Sthread.now

  let read_release ctx t =
    let thr = ctx.Machine.thr in
    if t.striped then Machine.atomic ctx ~contended:false
    else touch_counter ctx t;
    let hold = thr.Sthread.now -. t.entered_at in
    if hold > 0.0 then begin
      Resource.push_work t.rd ~now:t.entered_at
        ~dur:(hold /. read_parallelism);
      record_hold ctx ~site:t.site ~kind:Contention.Rwlock ~hold
    end

  let write_acquire ctx t =
    let thr = ctx.Machine.thr in
    touch_counter ctx t;
    let d1 = Resource.serve t.excl ~now:thr.Sthread.now ~dur:0.0 in
    let d2 = Resource.serve t.rd ~now:thr.Sthread.now ~dur:0.0 in
    let done_at = Float.max d1 d2 in
    record_acquire ctx ~site:t.site ~kind:Contention.Rwlock
      ~wait:(Float.max 0.0 (done_at -. thr.Sthread.now));
    Sthread.wait_until thr done_at;
    t.entered_at <- thr.Sthread.now

  let write_release ctx t =
    let thr = ctx.Machine.thr in
    let hold = thr.Sthread.now -. t.entered_at in
    if hold > 0.0 then begin
      Resource.push_work t.excl ~now:t.entered_at ~dur:hold;
      record_hold ctx ~site:t.site ~kind:Contention.Rwlock ~hold
    end

  let with_read ctx t f =
    read_acquire ctx t;
    let r = f () in
    read_release ctx t;
    r

  let with_write ctx t f =
    write_acquire ctx t;
    let r = f () in
    write_release ctx t;
    r
end
