(** The simulated machine: cost model plus the shared bandwidth servers
    every simulated thread charges against, and the per-thread charging
    helpers ([ctx]) used throughout the file-system implementations. *)

type t = {
  cm : Cost_model.t;
  nvmm_read_srv : Resource.t;
  nvmm_write_srv : Resource.t;
  dram_srv : Resource.t;
  mutable extra_nvmm_srvs : (Resource.t * Resource.t) array;
      (** (read, write) bandwidth-server pairs for NVMM regions 1..N-1
          of the multi-region DIMM/socket model; region 0 is the legacy
          [nvmm_read_srv]/[nvmm_write_srv] pair, so single-region runs
          are untouched.  Grown by {!set_regions}. *)
  obs : Simurgh_obs.Run.t;
      (** per-engine-run observability sinks (lock contention, per-op
          latency histograms, phase spans); scoped to this machine, so a
          fresh machine starts every experiment from zero *)
}

let create ?(cm = Cost_model.default) ?obs () =
  let obs =
    match obs with Some o -> o | None -> Simurgh_obs.Run.create ()
  in
  (* if the bench driver has an experiment collector installed, this
     run's sinks join the experiment's JSON snapshot *)
  Simurgh_obs.Collect.note_run obs;
  {
    cm;
    nvmm_read_srv = Resource.create "nvmm-read";
    nvmm_write_srv = Resource.create "nvmm-write";
    dram_srv = Resource.create "dram";
    extra_nvmm_srvs = [||];
    obs;
  }

(** Declare that the machine drives [n] NVMM regions, each behind its
    own read/write bandwidth-server pair (one set of DIMMs per region).
    Idempotent; never shrinks, so existing backlogs survive. *)
let set_regions t n =
  let have = 1 + Array.length t.extra_nvmm_srvs in
  if n > have then begin
    let extra = Array.length t.extra_nvmm_srvs in
    t.extra_nvmm_srvs <-
      Array.init (n - 1) (fun i ->
          if i < extra then t.extra_nvmm_srvs.(i)
          else
            ( Resource.create (Printf.sprintf "nvmm-read-%d" (i + 1)),
              Resource.create (Printf.sprintf "nvmm-write-%d" (i + 1)) ))
  end

let regions t = 1 + Array.length t.extra_nvmm_srvs

(* Per-region server selection; region ids out of the declared range
   fold onto region 0 rather than faulting (a context carrying a region
   id into a machine that never called [set_regions] is a plain
   single-device run). *)
let read_srv t r =
  if r <= 0 || r > Array.length t.extra_nvmm_srvs then t.nvmm_read_srv
  else fst t.extra_nvmm_srvs.(r - 1)

let write_srv t r =
  if r <= 0 || r > Array.length t.extra_nvmm_srvs then t.nvmm_write_srv
  else snd t.extra_nvmm_srvs.(r - 1)

(** Reset the measurement window: bandwidth-server backlogs and the
    observability run, so untimed setup phases leave no trace. *)
let reset t =
  Resource.reset t.nvmm_read_srv;
  Resource.reset t.nvmm_write_srv;
  Resource.reset t.dram_srv;
  Array.iter
    (fun (r, w) ->
      Resource.reset r;
      Resource.reset w)
    t.extra_nvmm_srvs;
  Simurgh_obs.Run.clear t.obs

let obs t = t.obs

type ctx = { m : t; thr : Sthread.t }

let ctx m thr = { m; thr }
let cm ctx = ctx.m.cm
let now ctx = ctx.thr.Sthread.now
let ctx_obs ctx = ctx.m.obs

(** Run [f] with the thread's NVMM charges routed to region [r] (its
    bandwidth servers, plus the cross-socket surcharge when the thread's
    home socket differs from the region's socket).  Restores the
    previous routing on exit. *)
let with_region ctx r f =
  let thr = ctx.thr in
  let prev = thr.Sthread.cur_region in
  thr.Sthread.cur_region <- r;
  Fun.protect ~finally:(fun () -> thr.Sthread.cur_region <- prev) f

(* Cross-socket access test for the thread's current target region.
   With the defaults (every thread homed on socket 0, every charge
   targeting region 0) this is always false, so the legacy virtual-time
   results are bit-identical. *)
let is_remote ctx =
  let r = ctx.thr.Sthread.cur_region in
  Cost_model.socket_of_region ctx.m.cm r <> ctx.thr.Sthread.home_socket

(** Pure CPU work. *)
let cpu ctx cycles = Sthread.advance ctx.thr cycles

(* A bulk transfer is limited by both the single-thread achievable rate
   and the shared device: the device server is charged at the aggregate
   rate, the thread additionally pays its core-local rate.  Under low
   load the core-local rate dominates; once concurrent demand exceeds the
   device, queueing at the server produces the saturation plateau. *)
let transfer ctx srv ~bytes ~thread_rate ~agg_rate =
  if bytes > 0 then begin
    let t = ctx.thr in
    let dev_done =
      Resource.serve srv ~now:t.Sthread.now
        ~dur:(float_of_int bytes /. agg_rate)
    in
    let local_done = t.Sthread.now +. (float_of_int bytes /. thread_rate) in
    Sthread.wait_until t (if dev_done > local_done then dev_done else local_done)
  end

(* Remote streaming traffic keeps the device's aggregate rate (the
   DIMMs behind the region serve at their own speed) but the requesting
   thread's achievable rate collapses across the UPI link. *)
let thread_rate_of ctx rate =
  if is_remote ctx then rate *. (cm ctx).Cost_model.numa_remote_bw_mult
  else rate

let line_lat_of ctx lat =
  if is_remote ctx then lat *. (cm ctx).Cost_model.numa_remote_lat_mult
  else lat

(** Sequential/streaming read of [bytes] from NVMM. *)
let nvmm_read ctx bytes =
  let cm = cm ctx in
  transfer ctx
    (read_srv ctx.m ctx.thr.Sthread.cur_region)
    ~bytes
    ~thread_rate:(thread_rate_of ctx cm.nvmm_read_bw_thread)
    ~agg_rate:cm.nvmm_read_bw

(** Streaming (non-temporal) write of [bytes] to NVMM. *)
let nvmm_write ctx bytes =
  let cm = cm ctx in
  transfer ctx
    (write_srv ctx.m ctx.thr.Sthread.cur_region)
    ~bytes
    ~thread_rate:(thread_rate_of ctx cm.nvmm_write_bw_thread)
    ~agg_rate:cm.nvmm_write_bw

(* Random cache-line accesses are latency-bound; out-of-order cores keep
   a handful of misses in flight (memory-level parallelism ~4). *)
let mlp = 4.0

(** [n] random (dependent chains of) cache-line reads from NVMM. *)
let nvmm_read_lines ctx n =
  if n > 0 then begin
    let cm = cm ctx in
    let lat = line_lat_of ctx (float_of_int n *. cm.nvmm_read_latency /. mlp) in
    let bytes = n * cm.cacheline in
    let dev_done =
      Resource.serve
        (read_srv ctx.m ctx.thr.Sthread.cur_region)
        ~now:ctx.thr.Sthread.now
        ~dur:(float_of_int bytes /. cm.nvmm_read_bw)
    in
    let local_done = ctx.thr.Sthread.now +. lat in
    Sthread.wait_until ctx.thr
      (if dev_done > local_done then dev_done else local_done)
  end

(** [n] metadata cache-line reads: same device accounting, but latency
    blended with CPU-cache hits (see {!Cost_model.nvmm_meta_read_latency}). *)
let nvmm_meta_read_lines ctx n =
  if n > 0 then begin
    let cm = cm ctx in
    let lat =
      line_lat_of ctx (float_of_int n *. cm.nvmm_meta_read_latency /. mlp)
    in
    let bytes = n * cm.cacheline in
    let dev_done =
      Resource.serve
        (read_srv ctx.m ctx.thr.Sthread.cur_region)
        ~now:ctx.thr.Sthread.now
        ~dur:(float_of_int bytes /. cm.nvmm_read_bw)
    in
    let local_done = ctx.thr.Sthread.now +. lat in
    Sthread.wait_until ctx.thr
      (if dev_done > local_done then dev_done else local_done)
  end

(** [n] random cache-line (non-temporal) writes to NVMM.

    In posted mode ({!with_posted_writes}) the thread pays only the
    local store(-buffer) latency and the device consumes the bandwidth
    asynchronously — later accessors queue behind the pushed work, so
    the accounting stays work-conserving.  Outside posted mode the write
    waits for the device queue as before. *)
let nvmm_write_lines ctx n =
  if n > 0 then begin
    let cm = cm ctx in
    let lat =
      line_lat_of ctx (float_of_int n *. cm.nvmm_write_latency /. mlp)
    in
    let bytes = n * cm.cacheline in
    let dur = float_of_int bytes /. cm.nvmm_write_bw in
    let srv = write_srv ctx.m ctx.thr.Sthread.cur_region in
    if ctx.thr.Sthread.posted_writes then begin
      Resource.push_work srv ~now:ctx.thr.Sthread.now ~dur;
      Sthread.advance ctx.thr lat
    end
    else begin
      let dev_done = Resource.serve srv ~now:ctx.thr.Sthread.now ~dur in
      let local_done = ctx.thr.Sthread.now +. lat in
      Sthread.wait_until ctx.thr
        (if dev_done > local_done then dev_done else local_done)
    end
  end

(** Run [f] with this thread's NVMM line writes charged as posted
    non-temporal stores.  Meant for short exclusive persistent
    sequences (a lock-held journal window): a real thread issuing a
    handful of ntstores inside a critical section stalls on its store
    buffer, not on the device's whole outstanding queue — charging the
    FIFO completion wait there would convoy every other thread behind
    the lock whenever the device is near saturation. *)
let with_posted_writes ctx f =
  let prev = ctx.thr.Sthread.posted_writes in
  ctx.thr.Sthread.posted_writes <- true;
  Fun.protect
    ~finally:(fun () -> ctx.thr.Sthread.posted_writes <- prev)
    f

(** Streaming DRAM traffic (page-cache copies and the like). *)
let dram_copy ctx bytes =
  let cm = cm ctx in
  transfer ctx ctx.m.dram_srv ~bytes ~thread_rate:cm.dram_bw_thread
    ~agg_rate:cm.dram_bw

(** CPU-side cost of moving [bytes] through registers (memcpy halves). *)
let memcpy_cpu ctx bytes =
  let cm = cm ctx in
  cpu ctx (float_of_int bytes /. cm.memcpy_bytes_per_cycle)

(** One atomic read-modify-write.  A legal preemption point under the
    schedule explorer (no-op otherwise). *)
let atomic ctx ~contended =
  Schedule.point Schedule.Atomic;
  let cm = cm ctx in
  cpu ctx (if contended then cm.atomic_contended else cm.atomic_uncontended)

(** `sfence`-style drain: the store buffer drain cost. *)
let fence_cycles = 30.0

let fence ctx =
  Simurgh_obs.Span.add_flush ctx.m.obs.Simurgh_obs.Run.spans fence_cycles;
  cpu ctx fence_cycles
