(** A deterministic dynamic task pool with three interchangeable drivers.

    Recovery (and any future bulk scan) decomposes its work into tasks —
    directory subtrees for the mark pass, slab segments and inode slices
    for the sweep — and pushes them into a shared frontier.  Tasks may
    push further tasks while executing (the mark frontier grows as
    subdirectories are discovered).  The pool then runs the *same* task
    set under one of three drivers:

    + {!run_seq} — plain sequential execution on the caller's stack.
      The reference semantics; zero scheduling.
    + {!run_vtime} — virtual-time list scheduling over [workers]
      {!Sthread} clocks.  Each task runs atomically on the
      least-loaded worker (argmin clock, lowest index on ties); a task
      pushed while another task executes becomes ready only when its
      producer finishes, modelling the fork-join dependency.  The
      caller charges each task's cost to the worker's clock; the
      phase's makespan is the max clock afterwards.
    + {!run_fibers} — cooperative fibers over {!Engine.explore}, one
      worker fiber per slot, interleaved at every region store / lock /
      atomic under a pluggable {!Schedule} policy.  This is the driver
      the schedule explorer and the race detector see.

    The frontier is a single shared FIFO; workers pull from the common
    pool, so "stealing" is degenerate (every idle worker steals from
    the same place).  Pops are labelled {!Schedule.Atomic} points in
    fiber mode; between scheduler yields OCaml fibers run atomically,
    so the queue needs no lock.

    Determinism contract: a driver choice (or fiber schedule) may
    change the order tasks execute in, but never the task *set* — so
    any task whose effects are commutative-and-idempotent with respect
    to its siblings produces a driver-independent result.  Recovery's
    tasks are built that way (see DESIGN.md §14). *)

type 'a t = {
  frontier : ('a * float) Queue.t;  (** task, virtual ready time *)
  mutable outstanding : int;  (** queued + currently executing *)
  mutable stage : 'a Queue.t option;
      (** virtual-time mode: tasks pushed by the task currently
          executing, released at the producer's completion time *)
}

let create () = { frontier = Queue.create (); outstanding = 0; stage = None }

(** [push t task] adds a task to the frontier.  Safe to call while a
    task executes (the common case for mark-frontier growth). *)
let push t task =
  t.outstanding <- t.outstanding + 1;
  match t.stage with
  | Some s -> Queue.push task s
  | None -> Queue.push (task, 0.0) t.frontier

let pending t = t.outstanding

(* -- sequential ------------------------------------------------------- *)

let run_seq t exec =
  while not (Queue.is_empty t.frontier) do
    let task, _ = Queue.pop t.frontier in
    exec ~worker:0 task;
    t.outstanding <- t.outstanding - 1
  done

(* -- virtual-time list scheduling ------------------------------------- *)

let argmin_clock (clocks : Sthread.t array) =
  let best = ref 0 in
  for i = 1 to Array.length clocks - 1 do
    if clocks.(i).Sthread.now < clocks.(!best).Sthread.now then best := i
  done;
  !best

(** [barrier clocks] joins all workers: every clock advances to the
    maximum.  Models the fork-join barrier between phases (and before
    a sequential section charged to worker 0). *)
let barrier (clocks : Sthread.t array) =
  let m =
    Array.fold_left (fun acc c -> Stdlib.max acc c.Sthread.now) 0.0 clocks
  in
  Array.iter (fun c -> Sthread.wait_until c m) clocks

let run_vtime t ~(clocks : Sthread.t array) exec =
  while not (Queue.is_empty t.frontier) do
    let w = argmin_clock clocks in
    let task, ready = Queue.pop t.frontier in
    (* the task cannot start before its producer finished *)
    Sthread.wait_until clocks.(w) ready;
    let s = Queue.create () in
    t.stage <- Some s;
    exec ~worker:w task;
    t.stage <- None;
    t.outstanding <- t.outstanding - 1;
    (* children become ready at the producer's (post-charge) clock *)
    let done_at = clocks.(w).Sthread.now in
    while not (Queue.is_empty s) do
      Queue.push (Queue.pop s, done_at) t.frontier
    done
  done

(* -- cooperative fibers ----------------------------------------------- *)

(** Telemetry for the schedule explorer: every {!run_fibers} phase
    appends its {!Engine.explore_outcome} here (trace hash, yields,
    switches).  The explorer resets the list before a run and reads it
    after, proving the schedules it compared genuinely differed. *)
let fiber_outcomes : Engine.explore_outcome list ref = ref []

let run_fibers t ~schedule ~workers exec =
  let body w () =
    (* Fork/join barrier semantics for the race detector: a pool run
       begins by joining everything published before it and ends by
       publishing everything it did — accesses in consecutive pool
       phases are ordered, exactly like threads joined between phases.
       No-ops when no detector is active. *)
    Race.on_fence ();
    let rec loop () =
      Schedule.point Schedule.Atomic;
      if not (Queue.is_empty t.frontier) then begin
        let task, _ = Queue.pop t.frontier in
        exec ~worker:w task;
        t.outstanding <- t.outstanding - 1;
        loop ()
      end
      else if t.outstanding > 0 then begin
        (* Empty frontier but tasks still in flight elsewhere: block
           until either new work appears or everything drains.  No
           deadlock is possible: if every worker blocks here, nothing
           is in flight, so outstanding equals the queue length, which
           is zero — the predicate is false and all wake. *)
        Schedule.wait_while (fun () ->
            Queue.is_empty t.frontier && t.outstanding > 0);
        loop ()
      end
    in
    loop ();
    Race.on_fence ()
  in
  let outcome = Engine.explore ~schedule (Array.init workers body) in
  fiber_outcomes := outcome :: !fiber_outcomes
