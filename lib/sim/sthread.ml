(** A simulated thread: an id, a private virtual clock and a private
    deterministic RNG stream. *)

type t = {
  tid : int;
  mutable now : float;  (** virtual time, cycles *)
  rng : Rng.t;
  mutable ops : int;  (** operations completed, for throughput reports *)
  mutable posted_writes : bool;
      (** when set, NVMM line writes are charged as posted non-temporal
          stores (local store latency; device bandwidth consumed
          asynchronously) instead of waiting for the device queue — see
          {!Machine.with_posted_writes} *)
  mutable home_socket : int;
      (** NUMA socket this thread is pinned to (default 0).  NVMM
          accesses whose target region lives on a different socket pay
          the cross-socket surcharge — see {!Machine} and
          {!Cost_model.numa_remote_lat_mult} *)
  mutable cur_region : int;
      (** NVMM region id the thread's charges currently target (default
          0, the legacy single region).  Set around each operation by
          the multi-region namespace ({!Machine.with_region}) *)
  mutable euid : int;
      (** effective uid this thread presents to the FS security plane;
          [-1] (the default) inherits the mount's credentials, so legacy
          single-tenant behaviour is unchanged *)
  mutable egid : int;  (** effective gid, same convention as {!euid} *)
}

let create ?(seed = 42L) tid =
  {
    tid;
    now = 0.0;
    rng = Rng.split (Rng.create seed) tid;
    ops = 0;
    posted_writes = false;
    home_socket = 0;
    cur_region = 0;
    euid = -1;
    egid = -1;
  }

(** Set the credentials this thread presents to the FS (a per-tenant
    identity in multi-tenant scenarios). *)
let set_creds t ~euid ~egid =
  t.euid <- euid;
  t.egid <- egid

let advance t cycles = t.now <- t.now +. cycles

(** Move the clock forward to [at] if it is in the future (waiting). *)
let wait_until t at = if at > t.now then t.now <- at
