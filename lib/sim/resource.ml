(** A shared FIFO server in virtual time, used to model bandwidth-limited
    devices (NVMM DIMMs, DRAM channels) and contended cache lines.

    The server is modeled as a leaky bucket of work ("debt", in cycles):
    a request of duration [d] arriving at time [t] first lets the debt
    drain by the time elapsed since the previous arrival, then queues its
    own work and completes at [t + debt].  Under low utilization the debt
    stays near zero and requests only pay their own duration; once
    aggregate demand exceeds the service rate the debt grows and
    throughput clamps to the device rate — the saturation plateau of
    Fig. 7i.

    Simulated threads interleave at operation granularity, so requests
    can arrive slightly out of virtual-time order within overlapping
    operations; the debt formulation stays work-conserving in that case
    (an earlier-timestamped request queues behind the current backlog
    rather than jumping to another thread's later timestamp). *)

type t = {
  name : string;
  mutable debt : float;  (** queued work, cycles *)
  mutable last : float;  (** last arrival considered for draining *)
  mutable busy : float;  (** total service cycles (utilization) *)
}

let create name = { name; debt = 0.0; last = 0.0; busy = 0.0 }

let reset t =
  t.debt <- 0.0;
  t.last <- 0.0;
  t.busy <- 0.0

(* The one place the leaky bucket leaks: let the debt drain by the time
   elapsed since the last considered arrival, then queue [dur] cycles of
   new work.  Out-of-order arrivals ([now <= t.last]) drain nothing and
   queue behind the current backlog — both [serve] and [push_work] MUST
   share this exact sequence, otherwise per-region server replicas drift
   apart on the out-of-order path and on [busy] accounting. *)
let drain_and_queue t ~now ~dur =
  if now > t.last then begin
    let elapsed = now -. t.last in
    t.debt <- (if t.debt > elapsed then t.debt -. elapsed else 0.0);
    t.last <- now
  end;
  t.debt <- t.debt +. dur;
  t.busy <- t.busy +. dur

(** [serve t ~now ~dur] returns the completion time of a request of
    [dur] cycles issued at [now]. *)
let serve t ~now ~dur =
  drain_and_queue t ~now ~dur;
  now +. t.debt

(** Queue work without waiting for it: used by locks to append their
    hold duration at release time.  Identical drain/queue/busy semantics
    to {!serve} by construction; only the completion wait differs. *)
let push_work t ~now ~dur = drain_and_queue t ~now ~dur

(** Outstanding backlog as seen at [now] (0 when fully drained). *)
let pending t ~now =
  if now > t.last then
    if t.debt > now -. t.last then t.debt -. (now -. t.last) else 0.0
  else t.debt

(** Total busy cycles since the last [reset]; used to report device
    utilization (e.g. NVMM bandwidth saturation in Fig. 7i). *)
let busy_cycles t = t.busy
