(** Deterministic discrete-event execution of simulated threads.

    Two execution modes:

    - {!run}: the virtual-time engine.  Each [step] executes one whole
      operation atomically; the next thread is the one with the smallest
      virtual clock, equal-time ties routed through a {!Schedule} policy
      (default {!Schedule.legacy}: lowest index, the historical
      bit-identical behavior).  With at most tens of threads a linear
      scan beats a heap.
    - {!explore}: the preemptive fiber engine for schedule exploration.
      Each thread body runs as an effect-handler fiber that suspends at
      every {!Schedule.point} (lock acquire/release, atomics, NVMM
      stores and persist barriers) and whenever {!Schedule.wait_while}
      blocks it; the policy picks freely among {e runnable} fibers, so
      virtual time is an output of the chosen schedule rather than a
      constraint on it.  This is what lets the explorer drive the same
      FS state machine through hundreds of distinct interleavings. *)

type outcome = {
  makespan_cycles : float;  (** max end time over all threads *)
  total_ops : int;
  threads : Sthread.t array;
}

(** [run threads step] repeatedly calls [step thr] on the minimum-time
    live thread; [step] performs one unit of work, advances the thread's
    clock and returns [false] when the thread has no more work.
    [schedule] breaks equal-virtual-time ties (and, for non-legacy
    policies, owns the choice among minimal threads). *)
let run ?(schedule = Schedule.legacy) (threads : Sthread.t array)
    (step : Sthread.t -> bool) =
  let n = Array.length threads in
  let alive = Array.make n true in
  let remaining = ref n in
  while !remaining > 0 do
    let i =
      Schedule.pick_min schedule ~n
        ~now:(fun i -> threads.(i).Sthread.now)
        ~alive:(fun i -> alive.(i))
    in
    if not (step threads.(i)) then begin
      alive.(i) <- false;
      decr remaining
    end
  done;
  let makespan =
    Array.fold_left (fun acc t -> max acc t.Sthread.now) 0.0 threads
  in
  let total_ops = Array.fold_left (fun acc t -> acc + t.Sthread.ops) 0 threads in
  { makespan_cycles = makespan; total_ops; threads }

(** Convenience: [n] threads each performing [ops_per_thread] calls of
    [f ctx op_index]; returns the outcome.  Thread RNGs derive from
    [seed]. *)
let run_ops ?(seed = 42L) ?schedule machine ~threads:n ~ops_per_thread f =
  let threads = Array.init n (fun i -> Sthread.create ~seed i) in
  let progress = Array.make n 0 in
  let step thr =
    let i = thr.Sthread.tid in
    if progress.(i) >= ops_per_thread then false
    else begin
      let ctx = Machine.ctx machine thr in
      f ctx progress.(i);
      progress.(i) <- progress.(i) + 1;
      thr.Sthread.ops <- thr.Sthread.ops + 1;
      true
    end
  in
  run ?schedule threads step

(** Aggregate throughput in operations per second of real (modeled) time. *)
let throughput machine (o : outcome) =
  if o.makespan_cycles <= 0.0 then 0.0
  else
    float_of_int o.total_ops
    /. Cost_model.seconds machine.Machine.cm o.makespan_cycles

(* ---------------------------------------------------------------------- *)
(* Preemptive fiber engine (schedule exploration)                         *)
(* ---------------------------------------------------------------------- *)

(** Raised when every unfinished fiber is blocked: with correct lock
    discipline this cannot happen, so it is itself a finding (e.g. the
    pre-fix [with_lock] leak turns an exception inside a critical
    section into exactly this). *)
exception Deadlock of string

type explore_outcome = {
  yields : int;  (** preemption points offered during the run *)
  switches : int;  (** scheduling decisions actually taken *)
  trace_hash : int;  (** hash of the pick sequence: distinguishes schedules *)
}

type _ Effect.t += Sched_yield : Schedule.point -> unit Effect.t
type _ Effect.t += Sched_wait : (unit -> bool) -> unit Effect.t

type fiber_state =
  | Not_started
  | Paused of (unit, unit) Effect.Deep.continuation
  | Blocked of (unit -> bool) * (unit, unit) Effect.Deep.continuation
  | Finished

(** [explore ~schedule bodies] runs each [bodies.(i) ()] as a preemptible
    fiber and lets [schedule] pick among runnable fibers at every yield
    point until all finish.  Deterministic for deterministic bodies and
    policies — the same policy state replays the same interleaving,
    which is what makes {!Schedule.Dfs} enumeration sound.  Exceptions
    raised by a body propagate to the caller (the harness treats them as
    oracle failures). *)
let explore ~(schedule : Schedule.t) (bodies : (unit -> unit) array) =
  let n = Array.length bodies in
  let states = Array.make n Not_started in
  let finished = ref 0 in
  let yields = ref 0 in
  let switches = ref 0 in
  let trace_hash = ref 17 in
  let current = ref (-1) in
  let ops =
    {
      Schedule.yield = (fun p -> Effect.perform (Sched_yield p));
      wait =
        (fun pred ->
          (* re-check after every wake: the scheduler may wake several
             fibers blocked on the same condition and run another one
             first (condition-variable discipline); uncontended waits
             cost no context switch *)
          while pred () do
            Effect.perform (Sched_wait pred)
          done);
      tid = (fun () -> !current);
    }
  in
  let start i body =
    let open Effect.Deep in
    match_with body ()
      {
        retc =
          (fun () ->
            states.(i) <- Finished;
            incr finished);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Sched_yield _ ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    incr yields;
                    states.(i) <- Paused k)
            | Sched_wait pred ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    incr yields;
                    states.(i) <- Blocked (pred, k))
            | _ -> None);
      }
  in
  Schedule.with_ops ops (fun () ->
      while !finished < n do
        (* wake fibers whose block predicate has cleared *)
        Array.iteri
          (fun i st ->
            match st with
            | Blocked (pred, k) when not (pred ()) -> states.(i) <- Paused k
            | _ -> ())
          states;
        let runnable = ref [] in
        for i = n - 1 downto 0 do
          match states.(i) with
          | Not_started | Paused _ -> runnable := i :: !runnable
          | Blocked _ | Finished -> ()
        done;
        if !runnable = [] then begin
          let stuck = ref [] in
          Array.iteri
            (fun i st ->
              match st with Blocked _ -> stuck := i :: !stuck | _ -> ())
            states;
          raise
            (Deadlock
               (Printf.sprintf "all unfinished fibers blocked: {%s}"
                  (String.concat ","
                     (List.rev_map string_of_int !stuck))))
        end;
        let i = Schedule.pick_any schedule ~runnable:!runnable in
        incr switches;
        trace_hash := (!trace_hash * 31) + i;
        current := i;
        (match states.(i) with
        | Not_started -> start i bodies.(i)
        | Paused k -> Effect.Deep.continue k ()
        | Blocked _ | Finished -> assert false);
        current := -1
      done);
  { yields = !yields; switches = !switches; trace_hash = !trace_hash }
