(** Zipfian and scrambled-Zipfian item samplers, following the YCSB
    reference generators (Gray et al.'s incremental algorithm).

    YCSB request distributions are Zipfian with [theta = 0.99]; the
    scrambled variant spreads the hot items over the key space. *)

type t = {
  items : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  half_pow_theta : float;
}

let zeta n theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. (float_of_int i ** theta))
  done;
  !sum

let create ?(theta = 0.99) items =
  if items <= 0 then invalid_arg "Zipf.create: items must be positive";
  let zetan = zeta items theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. ((2.0 /. float_of_int items) ** (1.0 -. theta)))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { items; theta; alpha; zetan; eta; half_pow_theta = 1.0 +. (0.5 ** theta) }

(** Theoretical probability mass of rank [k] (0-based): the most popular
    item carries [1/zeta_n]; used by the property tests to bound the
    empirical frequencies the sampler produces. *)
let rank_mass t k =
  if k < 0 || k >= t.items then invalid_arg "Zipf.rank_mass";
  1.0 /. (float_of_int (k + 1) ** t.theta) /. t.zetan

(** Sample a rank in [0, items); rank 0 is the most popular item. *)
let sample t rng =
  let u = Rng.float rng in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < t.half_pow_theta then 1
  else
    let v =
      float_of_int t.items *. ((t.eta *. u) -. t.eta +. 1.0) ** t.alpha
    in
    let v = int_of_float v in
    if v >= t.items then t.items - 1 else if v < 0 then 0 else v

(* 64-bit avalanche hash (Murmur3 finalizer) used for scrambling. *)
let fnv_scramble x =
  let open Int64 in
  let h = of_int x in
  let h = mul (logxor h (shift_right_logical h 33)) 0xFF51AFD7ED558CCDL in
  let h = mul (logxor h (shift_right_logical h 33)) 0xC4CEB9FE1A85EC53L in
  logxor h (shift_right_logical h 33)

(** Scrambled Zipfian: same popularity skew, hot keys spread uniformly. *)
let sample_scrambled t rng =
  let rank = sample t rng in
  let h = fnv_scramble rank in
  Int64.to_int (Int64.rem (Int64.shift_right_logical h 1)
                  (Int64.of_int t.items))

(** Latest distribution (YCSB workload D): skewed towards [items - 1]. *)
let sample_latest t rng =
  let rank = sample t rng in
  t.items - 1 - rank
