(** Open-loop load generation in virtual time.

    The closed-loop harnesses ({!Engine.run_ops}, fxmark) issue the next
    operation the instant the previous one completes, so measured
    latency is just service time and the system never queues.  Real
    clients do not wait for each other: requests arrive on their own
    clock, and once the offered load crosses the service capacity the
    backlog — and the tail latency — grows without bound.  That knee is
    the signature this module exists to expose.

    Each of [clients] simulated threads draws i.i.d. exponential
    inter-arrival gaps (a Poisson stream; the superposition of the
    per-client streams is Poisson at the full [rate]).  An operation
    {e starts} at [max arrival completion_of_previous] — a backlogged
    client keeps its queue FIFO — and its {e sojourn} (queueing + lock
    waits + service, in virtual cycles) is what lands in the latency
    histogram.  Arrivals never depend on completions, which is the
    definition of open loop. *)

type result = {
  offered : float;  (** requested arrival rate, ops/s *)
  achieved : float;  (** completed ops over the makespan, ops/s *)
  p50 : float;  (** sojourn percentiles, seconds *)
  p99 : float;
  p999 : float;
  mean : float;
  max : float;
  ops : int;
}

(** [run machine ~clients ~rate ~ops_per_client f] offers [rate] ops/s
    split over [clients] Poisson streams; [f ctx client op_index]
    performs one operation.  Virtual-time only — pair it with
    {!Engine.explore} is meaningless, queueing needs the clocks. *)
let run ?(seed = 97L) ?schedule machine ~clients ~rate ~ops_per_client f =
  if clients <= 0 then invalid_arg "Openloop.run: clients";
  if rate <= 0.0 then invalid_arg "Openloop.run: rate";
  let cm = machine.Machine.cm in
  let mean_gap =
    Cost_model.cycles_of_seconds cm (float_of_int clients /. rate)
  in
  let hist = Simurgh_obs.Histogram.create () in
  let arrivals = Array.make clients 0.0 in
  let progress = Array.make clients 0 in
  let threads = Array.init clients (fun i -> Sthread.create ~seed i) in
  let step thr =
    let i = thr.Sthread.tid in
    if progress.(i) >= ops_per_client then false
    else begin
      let u = Rng.float thr.Sthread.rng in
      let gap = -.log (1.0 -. u) *. mean_gap in
      arrivals.(i) <- arrivals.(i) +. gap;
      (* an idle client waits for its arrival; a backlogged one starts
         the moment the previous operation finishes *)
      if arrivals.(i) > thr.Sthread.now then thr.Sthread.now <- arrivals.(i);
      let ctx = Machine.ctx machine thr in
      f ctx i progress.(i);
      Simurgh_obs.Histogram.record hist (thr.Sthread.now -. arrivals.(i));
      progress.(i) <- progress.(i) + 1;
      thr.Sthread.ops <- thr.Sthread.ops + 1;
      true
    end
  in
  let outcome = Engine.run ?schedule threads step in
  let sec c = Cost_model.seconds cm c in
  {
    offered = rate;
    achieved = Engine.throughput machine outcome;
    p50 = sec (Simurgh_obs.Histogram.percentile hist 50.0);
    p99 = sec (Simurgh_obs.Histogram.percentile hist 99.0);
    p999 = sec (Simurgh_obs.Histogram.percentile hist 99.9);
    mean = sec (Simurgh_obs.Histogram.mean hist);
    max = sec (Simurgh_obs.Histogram.max_value hist);
    ops = Simurgh_obs.Histogram.count hist;
  }
