(** Virtual-time cost model.

    All durations are CPU cycles of the paper's testbed (Xeon Gold 5212 @
    2.5 GHz).  Paper-given constants (Section 3.3 and 5.1): a standard
    x86 call/ret is ~24 cycles, jmpp+pret is ~70 cycles (so Simurgh
    operations are surcharged 46 cycles, exactly as the paper does), a
    real-hardware syscall (geteuid) is ~400 cycles, gem5's empty syscall
    ~1200 cycles.  NVMM characteristics follow published Optane DC
    characterizations (~300 ns read latency; ~2.2-2.6 GB/s write and
    ~6.6 GB/s read per DIMM; 6 DIMMs interleaved). *)

type t = {
  freq_hz : float;  (** CPU frequency used to convert cycles to seconds *)
  call_cycles : float;  (** standard function call + return *)
  jmpp_pret_cycles : float;  (** protected call + protected return *)
  syscall_cycles : float;  (** kernel trap entry + exit on real hardware *)
  vfs_dispatch_cycles : float;
      (** VFS layer per-syscall work outside the concrete FS: fd lookup,
          argument checking, generic_file plumbing *)
  dcache_hit_cycles : float;  (** dentry-cache lookup per path component *)
  dcache_miss_cycles : float;
      (** failed dentry-cache probe (hash walk that finds nothing) before
          falling through to the on-media lookup, which is charged
          separately by the concrete FS *)
  rcache_hit_cycles : float;
      (** Simurgh user-level resolve-cache hit: one DRAM hash probe, no
          kernel lockref traffic (contrast {!dcache_hit_cycles}) *)
  nvmm_read_latency : float;  (** per random cache-line miss *)
  nvmm_meta_read_latency : float;
      (** effective latency of metadata line reads: hot metadata (directory
          rows, inodes of a working set) largely lives in the CPU caches,
          so the blended cost is far below a cold Optane miss *)
  nvmm_write_latency : float;  (** per non-temporal-store retire *)
  nvmm_read_bw : float;  (** aggregate, bytes per cycle *)
  nvmm_write_bw : float;
  nvmm_read_bw_thread : float;  (** single-thread achievable, bytes/cycle *)
  nvmm_write_bw_thread : float;
  dram_read_latency : float;
  dram_bw : float;
  dram_bw_thread : float;
  memcpy_bytes_per_cycle : float;  (** CPU-side copy cost (wide stores) *)
  atomic_uncontended : float;  (** lock cmpxchg, line already local *)
  atomic_contended : float;  (** cache-line transfer between cores *)
  cacheline : int;
  numa_sockets : int;
      (** sockets of the DIMM/socket model; region [r] lives on socket
          [r mod numa_sockets].  With the default single region (id 0)
          and threads homed on socket 0 no access is ever remote, so the
          legacy virtual-time results are bit-identical *)
  numa_remote_lat_mult : float;
      (** latency multiplier for cache-line NVMM accesses that cross the
          UPI link (published Optane characterizations put remote PM
          latency at ~1.7x local) *)
  numa_remote_bw_mult : float;
      (** single-thread achievable-bandwidth multiplier for remote
          streaming NVMM traffic (remote PM write bandwidth collapses
          far below local; ~0.55x is the conservative published figure) *)
  protected_stack_cycles : float;
      (** extra cycles per protected entry for relocating the stack
          pointer onto the protected stack and back (Section 3.2).  The
          paper's measured 70-cycle jmpp+pret figure already includes the
          stack switch, so the default is 0.0 and the published virtual
          times are unchanged; raise it to ablate the stack-relocation
          cost separately *)
  perm_check_cycles : float;
      (** per-operation cost of the in-protected-region permission check
          against the fentry owner/mode word (one cached metadata word
          compare).  Charged only when the volume was formatted with the
          [secure] flag, so legacy media and the published figures are
          unaffected *)
}

let default =
  {
    freq_hz = 2.5e9;
    call_cycles = 24.0;
    jmpp_pret_cycles = 70.0;
    syscall_cycles = 400.0;
    vfs_dispatch_cycles = 350.0;
    dcache_hit_cycles = 110.0;
    (* kept equal to the hit cost by default: the historical model charged
       one blended probe cost on both outcomes, and the published figures
       are calibrated against that.  Raise it (e.g. in a custom model) to
       study negative-lookup-heavy workloads. *)
    dcache_miss_cycles = 110.0;
    rcache_hit_cycles = 60.0;
    nvmm_read_latency = 750.0 (* ~300 ns *);
    nvmm_meta_read_latency = 200.0 (* blend of LLC hits and media misses *);
    nvmm_write_latency = 250.0 (* ~100 ns to ADR-safe buffer *);
    nvmm_read_bw = 14.8 (* ~37 GB/s over 6 DIMMs *);
    nvmm_write_bw = 5.2 (* ~13 GB/s *);
    nvmm_read_bw_thread = 2.6 (* ~6.5 GB/s *);
    nvmm_write_bw_thread = 1.8 (* ~4.5 GB/s sequential ntstore *);
    dram_read_latency = 250.0;
    dram_bw = 32.0 (* ~80 GB/s *);
    dram_bw_thread = 4.8 (* ~12 GB/s *);
    memcpy_bytes_per_cycle = 16.0;
    atomic_uncontended = 20.0;
    atomic_contended = 120.0;
    cacheline = 64;
    numa_sockets = 2;
    numa_remote_lat_mult = 1.7;
    numa_remote_bw_mult = 0.55;
    protected_stack_cycles = 0.0;
    perm_check_cycles = 30.0;
  }

(** Socket a region id maps to in the DIMM/socket model. *)
let socket_of_region cm r = r mod max 1 cm.numa_sockets

(** Extra cycles Simurgh pays per externally visible operation for the
    protected-function entry/exit versus a plain call (paper Section 5.1:
    "we added 46 cycles ... to each Simurgh call"). *)
let protection_surcharge cm = cm.jmpp_pret_cycles -. cm.call_cycles

let seconds cm cycles = cycles /. cm.freq_hz
let cycles_of_seconds cm s = s *. cm.freq_hz
