(** Happens-before data-race detection over simulated NVMM accesses.

    Each simulated thread carries a vector clock.  Synchronization edges
    come from the places Simurgh's decentralized protocols actually
    synchronize:

    - {b lock acquire/release} ({!Vlock} spin, mutex, rwlock): release
      publishes the holder's clock into the lock, acquire joins it —
      the classic mutex rule.  Reader/writer locks are treated
      conservatively as mutexes (reader release also publishes), which
      can only hide races, never invent them;
    - {b sfence/persist}: an sfence both publishes to and joins a single
      global fence object.  This deliberately over-synchronizes — two
      threads that each fence are ordered — matching the engine's
      operation-granular interleaving, where persist barriers are also
      global ordering points.  Again: conservative, fewer reports.

    Conflicts are tracked per NVMM cache line (the PR 1 line-granular
    plumbing delivers [off]/[len] of every load and store), but two
    accesses only conflict when their {e byte ranges} overlap.  Simurgh
    deliberately packs unrelated objects into shared lines (slab slots,
    dirblock rows), so pure line-granular conflict detection would drown
    in benign false sharing that is perfectly legal on real hardware.

    A racy pair is reported as [(line, site_a, site_b)] where the sites
    are the labels of the two operations involved ({!set_site}).
    Reports are deduplicated on that triple.  The detector is ambient
    ({!with_active}) and ignores accesses made while no simulated
    thread is scheduled (setup and oracle phases of the explorer). *)

type report = {
  line : int;  (** NVMM cache line of the conflicting bytes *)
  off : int;  (** first conflicting byte offset *)
  site_a : string;  (** earlier access: operation label *)
  site_b : string;  (** later access: operation label *)
  write_a : bool;
  write_b : bool;
}

let pp_report ppf r =
  Fmt.pf ppf "race on line %#x (byte %#x): %s %s vs %s %s" r.line r.off
    (if r.write_a then "write" else "read")
    r.site_a
    (if r.write_b then "write" else "read")
    r.site_b

let report_to_string r = Fmt.str "%a" pp_report r

(* One recorded access epoch: thread, its clock component at the time,
   the operation label, and the byte range touched. *)
type epoch = {
  e_tid : int;
  e_clk : int;
  e_site : string;
  e_off : int;
  e_len : int;
}

type line_state = {
  mutable writes : epoch list;  (** most recent write per thread *)
  mutable reads : epoch list;  (** most recent read per thread *)
}

type t = {
  n : int;
  clocks : int array array;  (** [clocks.(tid)] is thread tid's VC *)
  locks : (int, int array) Hashtbl.t;  (** lock id -> lock VC *)
  fence_vc : int array;  (** the global persist-barrier object *)
  lines : (int, line_state) Hashtbl.t;
  sites : string array;  (** current operation label per thread *)
  mutable excluded : (int * int) list;
      (** (off, len) ranges holding synchronization internals (e.g. the
          persistent lock words of the block allocator's segment locks),
          read lock-free by design — not data *)
  mutable reports : report list;
  seen : (int * string * string, unit) Hashtbl.t;
  mutable accesses : int;
}

let create ~threads:n =
  {
    n;
    clocks = Array.init n (fun tid -> Array.init n (fun j -> if j = tid then 1 else 0));
    locks = Hashtbl.create 64;
    fence_vc = Array.make n 0;
    lines = Hashtbl.create 256;
    sites = Array.make n "?";
    excluded = [];
    reports = [];
    seen = Hashtbl.create 16;
    accesses = 0;
  }

let set_site t ~tid site = if tid >= 0 && tid < t.n then t.sites.(tid) <- site

(** Declare [off, off+len) to be synchronization internals (a lock word
    and its metadata): accesses fully inside such a range are not
    tracked as data accesses.  The exclusion is deliberately narrow —
    an access merely overlapping the range is still tracked. *)
let exclude t ~off ~len = t.excluded <- (off, len) :: t.excluded

let is_excluded t ~off ~len =
  List.exists (fun (eo, el) -> off >= eo && off + len <= eo + el) t.excluded
let reports t = List.rev t.reports
let lines_tracked t = Hashtbl.length t.lines
let accesses t = t.accesses

(* --- vector clock primitives ------------------------------------------ *)

let join dst src =
  for i = 0 to Array.length dst - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let tick t tid = t.clocks.(tid).(tid) <- t.clocks.(tid).(tid) + 1

(* --- ambient activation ------------------------------------------------ *)

let active : t option ref = ref None

let with_active t f =
  let prev = !active in
  active := Some t;
  Fun.protect ~finally:(fun () -> active := prev) f

(* The running simulated thread, or -1 outside a scheduled section
   (setup / oracle code, whose accesses must not be tracked). *)
let cur t =
  let tid = Schedule.current_tid () in
  if tid >= 0 && tid < t.n then tid else -1

(* --- synchronization edges -------------------------------------------- *)

let on_acquire lock_id =
  match !active with
  | None -> ()
  | Some t -> (
      match cur t with
      | -1 -> ()
      | tid -> (
          match Hashtbl.find_opt t.locks lock_id with
          | Some vc -> join t.clocks.(tid) vc
          | None -> ()))

let on_release lock_id =
  match !active with
  | None -> ()
  | Some t -> (
      match cur t with
      | -1 -> ()
      | tid ->
          let vc =
            match Hashtbl.find_opt t.locks lock_id with
            | Some vc -> vc
            | None ->
                let vc = Array.make t.n 0 in
                Hashtbl.replace t.locks lock_id vc;
                vc
          in
          join vc t.clocks.(tid);
          tick t tid)

let on_fence () =
  match !active with
  | None -> ()
  | Some t -> (
      match cur t with
      | -1 -> ()
      | tid ->
          join t.fence_vc t.clocks.(tid);
          join t.clocks.(tid) t.fence_vc;
          tick t tid)

(* --- conflict tracking ------------------------------------------------- *)

let overlap a b = a.e_off < b.e_off + b.e_len && b.e_off < a.e_off + a.e_len

(* replace the calling thread's epoch in a per-line list, dropping any
   of its older epochs that the new range covers *)
let record tid e lst =
  e :: List.filter (fun p -> p.e_tid <> tid || not (overlap p e)) lst

let line_size = 64

let on_access ~off ~len ~write =
  match !active with
  | None -> ()
  | Some t -> (
      match cur t with
      | -1 -> ()
      | _ when is_excluded t ~off ~len -> ()
      | tid ->
          t.accesses <- t.accesses + 1;
          let clk = t.clocks.(tid).(tid) in
          let site = t.sites.(tid) in
          let first = off / line_size and last = (off + len - 1) / line_size in
          for line = first to last do
            let lo = max off (line * line_size)
            and hi = min (off + len) ((line + 1) * line_size) in
            let e =
              { e_tid = tid; e_clk = clk; e_site = site; e_off = lo; e_len = hi - lo }
            in
            let st =
              match Hashtbl.find_opt t.lines line with
              | Some st -> st
              | None ->
                  let st = { writes = []; reads = [] } in
                  Hashtbl.replace t.lines line st;
                  st
            in
            let races_with prior =
              prior.e_tid <> tid
              && overlap prior e
              && prior.e_clk > t.clocks.(tid).(prior.e_tid)
            in
            let emit ~wa prior =
              if races_with prior then begin
                let key = (line, prior.e_site, e.e_site) in
                if not (Hashtbl.mem t.seen key) then begin
                  Hashtbl.replace t.seen key ();
                  t.reports <-
                    {
                      line;
                      off = max prior.e_off e.e_off;
                      site_a = prior.e_site;
                      site_b = e.e_site;
                      write_a = wa;
                      write_b = write;
                    }
                    :: t.reports
                end
              end
            in
            (* write-write and read-write conflicts against prior writes *)
            List.iter (emit ~wa:true) st.writes;
            (* write-read conflicts: a write racing prior reads *)
            if write then List.iter (emit ~wa:false) st.reads;
            if write then begin
              st.writes <- record tid e st.writes;
              (* the write supersedes reads it covers from the same thread *)
              st.reads <-
                List.filter (fun p -> p.e_tid <> tid || not (overlap p e)) st.reads
            end
            else st.reads <- record tid e st.reads
          done)
