(** Small numeric helpers for benchmark reporting. *)

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.0
  else
    let m = mean a in
    let acc = Array.fold_left (fun s x -> s +. ((x -. m) ** 2.0)) 0.0 a in
    sqrt (acc /. float_of_int (n - 1))

(** Interpolated percentile: the p-quantile sits at fractional rank
    [p/100 * (n-1)] of the sorted sample, linearly interpolated between
    the adjacent order statistics (so p0/p100 are the exact extremes).
    Sorting uses [Float.compare], which totally orders NaN instead of
    scrambling the sort the way polymorphic [compare]'s IEEE [<] would. *)
let percentile a p =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy a in
    Array.sort Float.compare sorted;
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let lo = if lo < 0 then 0 else if lo > n - 1 then n - 1 else lo in
    let frac = rank -. float_of_int lo in
    if frac <= 0.0 || lo >= n - 1 then sorted.(lo)
    else sorted.(lo) +. (frac *. (sorted.(lo + 1) -. sorted.(lo)))
  end

let min_max a =
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (infinity, neg_infinity) a

(** Format ops/s with a unit suffix, e.g. [1.23 Mops/s]. *)
let pp_rate ppf r =
  if r >= 1e6 then Fmt.pf ppf "%.2f Mops/s" (r /. 1e6)
  else if r >= 1e3 then Fmt.pf ppf "%.2f Kops/s" (r /. 1e3)
  else Fmt.pf ppf "%.2f ops/s" r

let pp_bytes_rate ppf r =
  if r >= 1e9 then Fmt.pf ppf "%.2f GB/s" (r /. 1e9)
  else if r >= 1e6 then Fmt.pf ppf "%.2f MB/s" (r /. 1e6)
  else Fmt.pf ppf "%.2f KB/s" (r /. 1e3)
