(** Scheduling policy: who runs next, made explicit.

    Historically the engine hard-coded "step the minimum-virtual-time
    thread, break ties by lowest index".  That is a fine *performance*
    model but a terrible *correctness* explorer: every workload sees
    exactly one interleaving, biased toward thread 0, so ordering bugs in
    the decentralized lock protocols (per-line busy flags, striped file
    rwlocks, per-segment allocator locks) are invisible.  This module
    makes the choice a first-class, pluggable policy:

    - {!legacy}: minimum virtual time, ties to the lowest index — the
      historical schedule, bit-identical for every benchmark;
    - {!fair}: minimum virtual time, ties rotated round-robin (the
      least-recently-scheduled tied thread runs), so equal-cost ops
      interleave instead of running to completion by index;
    - {!random}: seeded uniform choice — used by the schedule explorer
      to sample interleavings;
    - {!driven}: choices replayed from a {!Dfs} enumerator — systematic
      depth-first exploration of the schedule tree for small scenarios.

    The second half of the module is the ambient yield-point interface:
    simulation code (locks, atomics, the NVMM region via its trace
    hooks) announces "a scheduling decision is legal here" through
    {!point}, and blocks through {!wait_while}.  Outside an exploring
    run both are no-ops, so the benchmark fast path is untouched. *)

(** Where a preemption is legal: lock acquire/release, an atomic RMW,
    an NVMM store, or a persist barrier (clwb+sfence). *)
type point = Acquire | Release | Atomic | Store | Persist

let point_name = function
  | Acquire -> "acquire"
  | Release -> "release"
  | Atomic -> "atomic"
  | Store -> "store"
  | Persist -> "persist"

(* ---------------------------------------------------------------------- *)
(* Depth-first schedule enumeration                                       *)
(* ---------------------------------------------------------------------- *)

(** Systematic enumeration of the schedule tree, mirroring the crash
    explorer's design ({!Simurgh_core.Explore}): a run is a sequence of
    decisions, each with a known number of alternatives; the first run
    takes alternative 0 everywhere, and each subsequent run increments
    the deepest decision that still has an unexplored alternative
    (backtracking when the tail is exhausted).  Every run is therefore a
    {e distinct} schedule, and enumeration is exhaustive when it
    terminates before the caller's budget runs out. *)
module Dfs = struct
  type t = {
    mutable replay : int list;  (** choices fixed for the current run *)
    mutable path : (int * int) list;
        (** (choice, alternatives) of the current run, deepest first *)
    mutable runs : int;
    mutable exhausted : bool;
  }

  let create () = { replay = []; path = []; runs = 0; exhausted = false }

  (** Called by the policy at each decision with the number of runnable
      threads; returns the alternative to take. *)
  let choose t ~alts =
    match t.replay with
    | c :: tl ->
        let c = if c >= alts then alts - 1 else c in
        t.replay <- tl;
        t.path <- (c, alts) :: t.path;
        c
    | [] ->
        t.path <- (0, alts) :: t.path;
        0

  let start t = t.path <- []

  (** Record the finished run and prepare the next prefix.  Returns
      [false] when the whole tree has been explored. *)
  let advance t =
    t.runs <- t.runs + 1;
    let rec trim = function
      | (c, a) :: tl when c + 1 >= a -> trim tl
      | rest -> rest
    in
    (match trim t.path with
    | [] ->
        t.exhausted <- true;
        t.replay <- []
    | (c, _) :: shallower ->
        (* keep the shallower choices, bump the deepest live decision *)
        t.replay <- List.rev_map fst shallower @ [ c + 1 ]);
    t.path <- [];
    not t.exhausted

  let runs t = t.runs
  let exhausted t = t.exhausted
end

(* ---------------------------------------------------------------------- *)
(* Policies                                                               *)
(* ---------------------------------------------------------------------- *)

type t =
  | Legacy
  | Fair of { mutable last : int }
  | Random of Rng.t
  | Driven of Dfs.t

let legacy = Legacy
let fair () = Fair { last = -1 }
let random seed = Random (Rng.create seed)
let driven dfs = Driven dfs

let name = function
  | Legacy -> "legacy"
  | Fair _ -> "fair"
  | Random _ -> "random"
  | Driven _ -> "dfs"

(* Break a tie among [ties] (indices, ascending). *)
let tie_break policy ties =
  match ties with
  | [ i ] -> i
  | [] -> invalid_arg "Schedule.tie_break: empty tie set"
  | _ -> (
      match policy with
      | Legacy -> List.hd ties
      | Fair f ->
          (* least-recently-scheduled: first tied index strictly after
             [last] in cyclic order; falls back to the lowest *)
          let after = List.filter (fun i -> i > f.last) ties in
          let pick = match after with i :: _ -> i | [] -> List.hd ties in
          pick
      | Random rng -> List.nth ties (Rng.int rng (List.length ties))
      | Driven d -> List.nth ties (Dfs.choose d ~alts:(List.length ties)))

let note_ran policy i =
  match policy with Fair f -> f.last <- i | Legacy | Random _ | Driven _ -> ()

(** Pick the next thread for the virtual-time engine: the minimum-time
    alive thread, equal-time ties routed through the policy.  [Legacy]
    reproduces the historical scan (lowest index among ties) exactly. *)
let pick_min policy ~n ~now ~alive =
  match policy with
  | Legacy ->
      (* historical scan: first strictly-smaller time wins, so the
         lowest index among equal minimal times is chosen *)
      let best = ref (-1) in
      for i = 0 to n - 1 do
        if alive i && (!best < 0 || now i < now !best) then best := i
      done;
      !best
  | _ ->
      let tmin = ref infinity and any = ref (-1) in
      for i = 0 to n - 1 do
        if alive i then begin
          if !any < 0 then any := i;
          if now i < !tmin then tmin := now i
        end
      done;
      if !any < 0 then -1
      else begin
        let ties = ref [] in
        for i = n - 1 downto 0 do
          if alive i && now i = !tmin then ties := i :: !ties
        done;
        let i = tie_break policy !ties in
        note_ran policy i;
        i
      end

(** Pick among an arbitrary runnable set (ascending indices) — used by
    the preemptive fiber scheduler, where virtual time is an output of
    the schedule rather than a constraint on it. *)
let pick_any policy ~runnable =
  match runnable with
  | [] -> invalid_arg "Schedule.pick_any: nothing runnable"
  | _ ->
      let i = tie_break policy runnable in
      note_ran policy i;
      i

(* ---------------------------------------------------------------------- *)
(* Ambient yield points                                                   *)
(* ---------------------------------------------------------------------- *)

(** The operations a preemptive scheduler installs for the duration of an
    exploring run.  [yield] offers a preemption opportunity; [wait]
    blocks the calling thread while the predicate holds (the scheduler
    re-evaluates it whenever another thread runs); [tid] identifies the
    currently running simulated thread. *)
type ops = {
  yield : point -> unit;
  wait : (unit -> bool) -> unit;
  tid : unit -> int;
}

let active : ops option ref = ref None

(** Announce a legal preemption point.  No-op outside an exploring run —
    the benchmark fast path pays one ref load. *)
let point p = match !active with None -> () | Some o -> o.yield p

(** Block the calling simulated thread while [pred] returns [true].
    Outside an exploring run threads execute their operations atomically
    with respect to each other, so a held lock here means a genuine
    self-deadlock — fail loudly instead of spinning forever. *)
let wait_while pred =
  match !active with
  | Some o -> o.wait pred
  | None ->
      if pred () then
        failwith
          "Schedule.wait_while: blocked with no scheduler active \
           (lock held across an operation boundary?)"

(** Simulated thread id currently executing under an exploring
    scheduler, or [-1] when none is active. *)
let current_tid () = match !active with None -> -1 | Some o -> o.tid ()

let with_ops ops f =
  let prev = !active in
  active := Some ops;
  Fun.protect ~finally:(fun () -> active := prev) f
