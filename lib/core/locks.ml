(** Volatile (shared-DRAM) lock registries.

    The persistent busy flags in directory blocks provide crash
    detection; the virtual-time spin locks here provide the mutual
    exclusion and the contention accounting.  Per-file read/write locks
    implement the paper's "read/write lock per file ... exclusive writes
    while allowing concurrent reads", with a relaxed mode that disables
    them (Fig. 7k "relaxed"). *)

open Simurgh_sim

type t = {
  row_locks : (int * int, Vlock.Spin.t) Hashtbl.t;
      (** (first dir block, row) -> spin lock *)
  file_locks : (int, Vlock.Rw.t) Hashtbl.t;  (** inode pptr -> rwlock *)
  dir_append_locks : (int, Vlock.Spin.t) Hashtbl.t;
      (** first dir block -> chain-extension lock *)
}

let create () =
  {
    row_locks = Hashtbl.create 256;
    file_locks = Hashtbl.create 256;
    dir_append_locks = Hashtbl.create 64;
  }

let clear t =
  Hashtbl.reset t.row_locks;
  Hashtbl.reset t.file_locks;
  Hashtbl.reset t.dir_append_locks

let row_lock t ~dir ~row =
  match Hashtbl.find_opt t.row_locks (dir, row) with
  | Some l -> l
  | None ->
      let l = Vlock.Spin.create ~site:"dir-row" () in
      Hashtbl.replace t.row_locks (dir, row) l;
      l

let file_lock t inode =
  match Hashtbl.find_opt t.file_locks inode with
  | Some l -> l
  | None ->
      (* striped readers: Simurgh keeps per-core reader indicators in
         shared DRAM, so concurrent readers of one file do not serialize
         on a counter line *)
      let l = Vlock.Rw.create ~striped:true () in
      Hashtbl.replace t.file_locks inode l;
      l

let dir_append_lock t dir =
  match Hashtbl.find_opt t.dir_append_locks dir with
  | Some l -> l
  | None ->
      let l = Vlock.Spin.create ~site:"dir-append" () in
      Hashtbl.replace t.dir_append_locks dir l;
      l

let drop_file_lock t inode = Hashtbl.remove t.file_locks inode

(** Reclaim every lock belonging to a deleted directory (its row locks
    and its chain-extension lock).  Without this the registries grow
    without bound: rmdir used to leave all of them behind, so a
    create/remove-heavy workload leaked one spin lock per touched hash
    row forever. *)
let drop_dir_locks t ~dir =
  Hashtbl.remove t.dir_append_locks dir;
  let doomed =
    Hashtbl.fold
      (fun ((d, _) as key) _ acc -> if d = dir then key :: acc else acc)
      t.row_locks []
  in
  List.iter (Hashtbl.remove t.row_locks) doomed

(** Registry sizes (row, file, dir-append) — reported through the
    observability snapshot so leaks are visible. *)
let sizes t =
  ( Hashtbl.length t.row_locks,
    Hashtbl.length t.file_locks,
    Hashtbl.length t.dir_append_locks )
