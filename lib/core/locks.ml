(** Volatile (shared-DRAM) lock registries.

    The persistent busy flags in directory blocks provide crash
    detection; the virtual-time spin locks here provide the mutual
    exclusion and the contention accounting.  Per-file read/write locks
    implement the paper's "read/write lock per file ... exclusive writes
    while allowing concurrent reads", with a relaxed mode that disables
    them (Fig. 7k "relaxed").

    The registries themselves are striped: keys hash to one of
    {!nstripes} independent sub-tables, so registry lookups from
    different threads touch different stripes instead of one global
    structure (in the real system each stripe carries its own guard
    lock; here the striping keeps the shared-DRAM model honest and the
    size accounting per-stripe).

    [striped] additionally stripes the {e append} serialization of one
    directory: instead of a single chain-extension lock per directory,
    each hash row gets its own append lock, and only the two genuinely
    directory-global actions keep a (short) global lock — physically
    linking a new hash block into the chain ({!chain_lock}) and writing
    the directory's single persistent rename-log entry ({!log_lock}). *)

open Simurgh_sim

(** Volatile append/extend coordination of one file (range-lock mode):
    the shared-DRAM words behind concurrent append.  [reserved] is bumped
    with a fetch-and-add to hand each appender a private byte range;
    [published] trails it and equals the persistent size word — an
    appender publishes only once every earlier reservation has published,
    so a crash can never expose unwritten bytes.  Whenever no operation
    is in flight, [reserved = published = persistent size]. *)
type file_state = {
  mutable reserved : int;  (** end of the highest handed-out byte range *)
  mutable published : int;  (** persistent size already made visible *)
}
(** Both [-1] until the first data operation fills them from the inode
    (under the file's extent lock — registry code must not take locks,
    so it cannot read the size itself without racing a publisher). *)

type stripe = {
  row_locks : (int * int, Vlock.Spin.t) Hashtbl.t;
      (** (first dir block, row) -> spin lock *)
  file_locks : (int, Vlock.Rw.t) Hashtbl.t;  (** inode pptr -> rwlock *)
  append_locks : (int * int, Vlock.Spin.t) Hashtbl.t;
      (** (first dir block, row) -> append lock; legacy mode keys
          everything under row 0 (one chain-extension lock per dir) *)
  aux_locks : (int * int, Vlock.Spin.t) Hashtbl.t;
      (** striped mode only: (dir, 0) = chain-link lock,
          (dir, 1) = rename-log lock (legacy single slot),
          (dir, 2 + s) = lock of rename-log ring slot [s] *)
  range_locks : (int * int, Vlock.Rw.t) Hashtbl.t;
      (** range-lock mode: (inode pptr, byte row) -> rwlock *)
  extent_locks : (int, Vlock.Rw.t) Hashtbl.t;
      (** range-lock mode: inode pptr -> extent-list/size-word lock *)
  file_states : (int, file_state) Hashtbl.t;
      (** range-lock mode: inode pptr -> append coordination words *)
}

type t = {
  striped : bool;
  stripes : stripe array;
  mutable log_epoch : int;
      (** Mount-global rename-log epoch: each log-ring rename stamps the
          next value into its slot so recovery can totally order pending
          slots.  Volatile on purpose — a crash clears every pending
          slot, so only relative order within one mount matters.  Plain
          increment is atomic under the fiber scheduler (no yield
          point). *)
  mutable log_slot_hint : int;
      (** Rotating claim hint so concurrent renames start probing the
          ring at different slots instead of convoying on slot 0. *)
  mutable log_slot_acquisitions : int;
      (** obs: ring slots successfully claimed ([rename_log/slot_acq]) *)
  mutable log_ring_full_waits : int;
      (** obs: claims that found every ring slot held and had to block
          ([rename_log/ring_full_waits]) *)
}

let nstripes = 16

let create ?(striped = false) () =
  {
    striped;
    stripes =
      Array.init nstripes (fun _ ->
          {
            row_locks = Hashtbl.create 64;
            file_locks = Hashtbl.create 64;
            append_locks = Hashtbl.create 16;
            aux_locks = Hashtbl.create 16;
            range_locks = Hashtbl.create 64;
            extent_locks = Hashtbl.create 16;
            file_states = Hashtbl.create 16;
          });
    log_epoch = 0;
    log_slot_hint = 0;
    log_slot_acquisitions = 0;
    log_ring_full_waits = 0;
  }

let striped t = t.striped

(** Next rename-log epoch (monotone within this mount, starts at 1 so a
    stamped slot is never confused with the zeroed legacy epoch). *)
let next_log_epoch t =
  let e = t.log_epoch + 1 in
  t.log_epoch <- e;
  e

(** Next starting slot for a ring claim over [n] slots. *)
let next_log_slot_hint t ~n =
  let h = t.log_slot_hint in
  t.log_slot_hint <- h + 1;
  h mod n

let note_log_slot_acquisition t =
  t.log_slot_acquisitions <- t.log_slot_acquisitions + 1

let note_log_ring_full_wait t =
  t.log_ring_full_waits <- t.log_ring_full_waits + 1

let log_slot_acquisitions t = t.log_slot_acquisitions
let log_ring_full_waits t = t.log_ring_full_waits

let stripe_of t key = t.stripes.(Hashtbl.hash key land (nstripes - 1))

let clear t =
  Array.iter
    (fun s ->
      Hashtbl.reset s.row_locks;
      Hashtbl.reset s.file_locks;
      Hashtbl.reset s.append_locks;
      Hashtbl.reset s.aux_locks;
      Hashtbl.reset s.range_locks;
      Hashtbl.reset s.extent_locks;
      Hashtbl.reset s.file_states)
    t.stripes

let find_or_create tbl key make =
  match Hashtbl.find_opt tbl key with
  | Some l -> l
  | None ->
      let l = make () in
      Hashtbl.replace tbl key l;
      l

let row_lock t ~dir ~row =
  let key = (dir, row) in
  find_or_create (stripe_of t key).row_locks key (fun () ->
      Vlock.Spin.create ~site:"dir-row" ())

let file_lock t inode =
  find_or_create (stripe_of t inode).file_locks inode (fun () ->
      (* striped readers: Simurgh keeps per-core reader indicators in
         shared DRAM, so concurrent readers of one file do not serialize
         on a counter line *)
      Vlock.Rw.create ~site:"file-lock" ~striped:true ())

(* --- byte-range locks (range-lock mode) -------------------------------- *)

(** Byte rows a range lock protects: one row per [range_row_bytes] of
    file offset, matching the allocator's block size so a block-sized
    I/O takes exactly one row. *)
let range_row_bytes = 4096

(** The rows whose byte spans intersect [pos, pos+len), ascending — the
    canonical acquisition order (every holder climbs, so no cycles).
    [len = 0] covers nothing. *)
let rows_of_range ~pos ~len =
  if len <= 0 || pos < 0 then []
  else begin
    let first = pos / range_row_bytes in
    let last = (pos + len - 1) / range_row_bytes in
    List.init (last - first + 1) (fun i -> first + i)
  end

(* Contention sites fold the row index mod 16 so the registry stays
   bounded while BENCH_data can still attribute waits to hot rows
   ("locks/file_range/r03" etc., satellite: no more single-site blur). *)
let range_lock t inode ~row =
  let key = (inode, row) in
  find_or_create (stripe_of t key).range_locks key (fun () ->
      Vlock.Rw.create
        ~site:(Printf.sprintf "file-range/r%02d" (row land 15))
        ~striped:true ())

(** Innermost lock of the data-path hierarchy: guards the extent list
    and the size word.  Extent-list growth and the size publish take it
    exclusive; offset mapping during copies takes it shared. *)
let extent_lock t inode =
  find_or_create (stripe_of t inode).extent_locks inode (fun () ->
      Vlock.Rw.create ~site:"file-extent" ~striped:true ())

(** The file's append/extend coordination words, created on first touch
    with [init ()] (the persistent size, read under the extent lock by
    the caller so the probe is ordered against concurrent publishes). *)
let file_state t inode =
  let s = stripe_of t inode in
  match Hashtbl.find_opt s.file_states inode with
  | Some st -> st
  | None ->
      (* lookup + insert runs without a scheduling point, so two
         threads can never each mint their own state for one inode *)
      let st = { reserved = -1; published = -1 } in
      Hashtbl.replace s.file_states inode st;
      st

(** Chain-extension serialization for an insert into [row] of directory
    [dir].  Legacy mode: one lock for the whole directory (every row-full
    insert funnels through it).  Striped mode: one lock per hash row. *)
let dir_append_lock ?(row = 0) t dir =
  let key = (dir, if t.striped then row else 0) in
  find_or_create (stripe_of t key).append_locks key (fun () ->
      Vlock.Spin.create ~site:"dir-append" ())

(** Striped mode: short directory-global lock held only while physically
    linking a freshly initialized hash block into the chain. *)
let chain_lock t dir =
  let key = (dir, 0) in
  find_or_create (stripe_of t key).aux_locks key (fun () ->
      Vlock.Spin.create ~site:"dir-chain" ())

(** Striped mode: serializes the directory's single persistent
    rename-log entry (the first hash block has exactly one log slot). *)
let log_lock t dir =
  let key = (dir, 1) in
  find_or_create (stripe_of t key).aux_locks key (fun () ->
      Vlock.Spin.create ~site:"dir-log" ())

(** Log-ring mode: lock of ring slot [slot] of directory [dir].  Each
    slot has its own lock, so N renames in one directory can run their
    Fig. 5 log windows concurrently — the directory-global (dir, 1)
    serialization point disappears. *)
let log_slot_lock t dir ~slot =
  let key = (dir, 2 + slot) in
  find_or_create (stripe_of t key).aux_locks key (fun () ->
      Vlock.Spin.create ~site:"dir-log" ())

let drop_file_lock t inode =
  let s = stripe_of t inode in
  Hashtbl.remove s.file_locks inode;
  Hashtbl.remove s.extent_locks inode;
  Hashtbl.remove s.file_states inode;
  (* range rows hash by (inode, row), so they can sit in any stripe *)
  Array.iter
    (fun s ->
      let doomed =
        Hashtbl.fold
          (fun ((i, _) as key) _ acc -> if i = inode then key :: acc else acc)
          s.range_locks []
      in
      List.iter (Hashtbl.remove s.range_locks) doomed)
    t.stripes

(** Reclaim every lock belonging to a deleted directory (its row locks,
    append locks and chain/log locks).  Without this the registries grow
    without bound: rmdir used to leave all of them behind, so a
    create/remove-heavy workload leaked one spin lock per touched hash
    row forever. *)
let drop_dir_locks t ~dir =
  let drop_keyed tbl =
    let doomed =
      Hashtbl.fold
        (fun ((d, _) as key) _ acc -> if d = dir then key :: acc else acc)
        tbl []
    in
    List.iter (Hashtbl.remove tbl) doomed
  in
  Array.iter
    (fun s ->
      drop_keyed s.row_locks;
      drop_keyed s.append_locks;
      drop_keyed s.aux_locks)
    t.stripes

(** Registry sizes (row, file, dir-append incl. chain/log) — reported
    through the observability snapshot so leaks are visible. *)
let sizes t =
  Array.fold_left
    (fun (r, f, a) s ->
      ( r + Hashtbl.length s.row_locks,
        f + Hashtbl.length s.file_locks,
        a + Hashtbl.length s.append_locks + Hashtbl.length s.aux_locks ))
    (0, 0, 0) t.stripes

(** Range-mode registry sizes (byte-range rows, extent locks + append
    states) — same leak-visibility rationale as {!sizes}. *)
let range_sizes t =
  Array.fold_left
    (fun (r, e) s ->
      ( r + Hashtbl.length s.range_locks,
        e + Hashtbl.length s.extent_locks + Hashtbl.length s.file_states ))
    (0, 0) t.stripes
