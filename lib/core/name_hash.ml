(** FNV-1a hash for directory entry names.  Deterministic across runs so
    persistent directory rows survive remounts. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash64 (s : string) =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

(** Non-negative 62-bit hash. *)
let hash s = Int64.to_int (Int64.shift_right_logical (hash64 s) 2)

let row s ~rows = hash s mod rows

(** Home region of a top-level directory name in an N-region namespace.
    Uses the {e high} hash bits, so a name's region is uncorrelated with
    the row its entry occupies inside a directory block ([row] consumes
    the low bits): a directory's subtree lands on one region without
    skewing the row distribution there. *)
let home s ~regions =
  if regions <= 1 then 0
  else
    Int64.to_int (Int64.shift_right_logical (hash64 s) 40) mod regions
