(** Adversarial crash-image exploration.

    The Strict-mode region already models the persistence rules of real
    NVMM (store -> volatile line, clwb+sfence -> durable).  The classic
    [Region.crash] tests exactly one adversary — "every unpersisted line
    is lost" — but hardware is worse: the cache may evict any dirty line
    {e early}, so at a crash point every unpersisted line is
    {e independently} lost or already durable ([Region.crash_image]).

    [run] turns that into a systematic search.  For one FS operation it

    + replays the operation once per {e crash point} — before every
      NVMM store ([Region.set_store_hook]) and at every labeled Fig. 5
      hook ([Fs.set_crash_hook]) — restoring a checkpoint of the
      post-setup state each time;
    + at each crash point enumerates eviction subsets of the unpersisted
      lines: exhaustively when at most [max_exhaustive] lines are
      pending ([2^n] images), otherwise drop-all, keep-all and
      [samples]-2 seeded random subsets;
    + for every crash image runs full recovery ({!Recovery.run}) and
      then the offline checker ({!Check.run}), which must report zero
      violations; an optional [verify] callback can additionally inspect
      the recovered file system.

    The returned {!stats} aggregates points, images and any violating
    images (which make the calling test fail with a precise
    reproduction label). *)

open Simurgh_nvmm

exception Crash_now

type stats = {
  crash_points : int;  (** store-granular + labeled hook points *)
  images : int;  (** crash images explored (recoveries performed) *)
  max_pending : int;  (** largest unpersisted-line set at any point *)
  failures : (string * Check.violation list) list;
      (** crash images whose post-recovery check failed, labeled
          ["<point> keep={lines}"] *)
}

type point = Store of int  (** crash before the [n]-th store (1-based) *)
           | Hook of string * int  (** crash at n-th firing of a label *)

let point_label = function
  | Store n -> Printf.sprintf "store:%d" n
  | Hook (l, n) -> Printf.sprintf "hook:%s#%d" l n

(* Mount a fresh FS handle on [region] as a new "process" would: the
   shared volatile state is discarded (a crash wiped DRAM) and rebuilt
   from NVMM.  [scaled] re-enables the volatile scalability features
   (striped locks, resolve cache, allocator caches) on the new mount,
   so recovery and post-crash traffic run through the striped paths. *)
let fresh_mount ?(range = false) ~scaled region =
  Fs.invalidate_shared region;
  (* a dead process's page-table mappings die with it: if the crashed
     mount had guarded the region (secure mode), the new process starts
     unguarded until it installs its own protection *)
  Region.clear_guard region;
  Fs.mount ~euid:0 ~striped_locks:scaled ~rcache:scaled ~alloc_caches:scaled
    ~range_locks:range region

let default_size = 4 lsl 20

let run ?(seed = 7L) ?(max_exhaustive = 10) ?(samples = 64)
    ?(size = default_size) ?(scaled = false) ?(range = false) ?(ring = 0)
    ?(secure = false) ?verify ~setup ~op () =
  let region = Region.create ~mode:Region.Strict size in
  let fs0 =
    Fs.mkfs ~cores:2 ~euid:0 ~striped_locks:scaled ~rcache:scaled
      ~alloc_caches:scaled ~range_locks:range ~log_ring:ring ~secure region
  in
  setup fs0;
  (* the operation's own writes must be the only unpersisted lines at
     the crash point; drain everything setup left behind (e.g. zeroed
     directory-block tails that were never clwb'd) *)
  Region.persist_all region;
  let cp0 = Region.checkpoint region in

  (* Pass 1: dry-run the op to discover its crash points. *)
  let stores = ref 0 in
  let hooks = ref [] (* (label, occurrence) in firing order, reversed *) in
  let hook_count = Hashtbl.create 16 in
  let fs = fresh_mount ~range ~scaled region in
  Region.set_store_hook region (fun () -> incr stores);
  Fs.set_crash_hook fs (fun label ->
      let n = (try Hashtbl.find hook_count label with Not_found -> 0) + 1 in
      Hashtbl.replace hook_count label n;
      hooks := (label, n) :: !hooks);
  op fs;
  Region.clear_store_hook region;
  let points =
    List.init !stores (fun i -> Store (i + 1))
    @ List.rev_map (fun (l, n) -> Hook (l, n)) !hooks
  in

  let rng = Simurgh_sim.Rng.create seed in
  let images = ref 0 in
  let max_pending = ref 0 in
  let failures = ref [] in

  List.iter
    (fun point ->
      (* restore the post-setup state and run the op up to [point] *)
      Region.restore region cp0;
      let fs = fresh_mount ~range ~scaled region in
      (match point with
      | Store n ->
          let k = ref 0 in
          Region.set_store_hook region (fun () ->
              incr k;
              if !k = n then raise Crash_now)
      | Hook (label, n) ->
          let k = ref 0 in
          Fs.set_crash_hook fs (fun l ->
              if l = label then begin
                incr k;
                if !k = n then raise Crash_now
              end));
      (match op fs with
      | () -> () (* point past the op's end (hook miss): still explored *)
      | exception Crash_now -> ());
      Region.clear_store_hook region;

      let pending = Array.of_list (Region.pending_lines region) in
      let n = Array.length pending in
      if n > !max_pending then max_pending := n;
      let cp_crash = Region.checkpoint region in
      let explore_mask keep_of =
        incr images;
        Region.restore region cp_crash;
        Region.crash_image region ~keep:keep_of;
        Fs.invalidate_shared region;
        Region.clear_guard region;
        (match Recovery.run region with
        | _layout, _report -> (
            match Check.run region with
            | [] -> (
                match verify with
                | None -> ()
                | Some v -> (
                    try v (fresh_mount ~range ~scaled region)
                    with e ->
                      let kept =
                        Array.to_list pending
                        |> List.filter keep_of
                        |> List.map string_of_int
                        |> String.concat ","
                      in
                      failures :=
                        ( Printf.sprintf "%s keep={%s}" (point_label point)
                            kept,
                          [
                            Check.Structure
                              ("verify: " ^ Printexc.to_string e);
                          ] )
                        :: !failures))
            | viols ->
                let kept =
                  Array.to_list pending
                  |> List.filter keep_of
                  |> List.map string_of_int
                  |> String.concat ","
                in
                failures :=
                  (Printf.sprintf "%s keep={%s}" (point_label point) kept,
                   viols)
                  :: !failures)
        | exception e ->
            failures :=
              ( Printf.sprintf "%s: recovery raised %s" (point_label point)
                  (Printexc.to_string e),
                [] )
              :: !failures)
      in
      let keep_of_mask mask =
        let keep = Hashtbl.create 8 in
        Array.iteri
          (fun i ln -> if mask land (1 lsl i) <> 0 then Hashtbl.replace keep ln ())
          pending;
        fun ln -> Hashtbl.mem keep ln
      in
      if n <= max_exhaustive then
        for mask = 0 to (1 lsl n) - 1 do
          explore_mask (keep_of_mask mask)
        done
      else begin
        (* sampled: the two extreme images plus seeded random subsets *)
        explore_mask (fun _ -> false);
        explore_mask (fun _ -> true);
        for _ = 3 to samples do
          let keep = Hashtbl.create 16 in
          Array.iter
            (fun ln ->
              if Simurgh_sim.Rng.int rng 2 = 1 then Hashtbl.replace keep ln ())
            pending;
          explore_mask (fun ln -> Hashtbl.mem keep ln)
        done
      end)
    points;
  {
    crash_points = List.length points;
    images = !images;
    max_pending = !max_pending;
    failures = List.rev !failures;
  }

(* -- multi-region (sharded) exploration -------------------------------- *)

(** [run_multi ~regions ~setup ~op ()] is {!run} lifted to a sharded
    namespace: the operation runs against a {!Shard.t} over [regions]
    Strict regions, crash points are discovered across {e all} regions
    (stores are counted globally; labeled hooks are tagged with the
    region that fired them), and at every point the eviction subsets
    range over the union of every region's unpersisted lines — so an
    image can lose lines on the source region of a cross-region rename
    while keeping them on the destination, and vice versa.  Recovery is
    {!Recovery.run_all} (each region its own crash domain) and the
    oracle is {!Check.run_all} reporting zero violations on every
    region. *)
let run_multi ?(seed = 7L) ?(max_exhaustive = 10) ?(samples = 64)
    ?(size = default_size) ?(regions = 2) ?verify ~setup ~op () =
  let sh0 = Shard.mkfs ~mode:Region.Strict ~obs:false ~regions ~euid:0 size in
  let rs = Shard.regions sh0 in
  setup sh0;
  Array.iter Region.persist_all rs;
  let cps = Array.map Region.checkpoint rs in
  let fresh () =
    Array.iter Fs.invalidate_shared rs;
    Shard.mount ~obs:false ~euid:0 rs
  in

  (* Pass 1: dry-run to discover crash points across every region.  The
     op is single-threaded, so the interleaving of stores across regions
     is deterministic and a global store counter is a stable address. *)
  let stores = ref 0 in
  let hooks = ref [] in
  let hook_count = Hashtbl.create 16 in
  let sh = fresh () in
  Array.iter
    (fun r -> Region.set_store_hook r (fun () -> incr stores))
    rs;
  for i = 0 to regions - 1 do
    Fs.set_crash_hook (Shard.fs_of sh i) (fun label ->
        let l = Printf.sprintf "%d:%s" i label in
        let n = (try Hashtbl.find hook_count l with Not_found -> 0) + 1 in
        Hashtbl.replace hook_count l n;
        hooks := (l, n) :: !hooks)
  done;
  op sh;
  Array.iter Region.clear_store_hook rs;
  let points =
    List.init !stores (fun i -> Store (i + 1))
    @ List.rev_map (fun (l, n) -> Hook (l, n)) !hooks
  in

  (* a tagged hook label is "<region>:<original label>" *)
  let split_tag l =
    match String.index_opt l ':' with
    | Some k ->
        (int_of_string (String.sub l 0 k),
         String.sub l (k + 1) (String.length l - k - 1))
    | None -> (0, l)
  in

  let rng = Simurgh_sim.Rng.create seed in
  let images = ref 0 in
  let max_pending = ref 0 in
  let failures = ref [] in

  List.iter
    (fun point ->
      Array.iteri (fun i r -> Region.restore r cps.(i)) rs;
      let sh = fresh () in
      (match point with
      | Store n ->
          let k = ref 0 in
          Array.iter
            (fun r ->
              Region.set_store_hook r (fun () ->
                  incr k;
                  if !k = n then raise Crash_now))
            rs
      | Hook (tagged, n) ->
          let ri, label = split_tag tagged in
          let k = ref 0 in
          Fs.set_crash_hook (Shard.fs_of sh ri) (fun l ->
              if l = label then begin
                incr k;
                if !k = n then raise Crash_now
              end));
      (match op sh with
      | () -> ()
      | exception Crash_now -> ());
      Array.iter Region.clear_store_hook rs;

      (* unpersisted lines across every region, tagged by region *)
      let pending =
        Array.of_list
          (List.concat
             (List.mapi
                (fun i r ->
                  List.map (fun ln -> (i, ln)) (Region.pending_lines r))
                (Array.to_list rs)))
      in
      let n = Array.length pending in
      if n > !max_pending then max_pending := n;
      let cp_crash = Array.map Region.checkpoint rs in
      let label_of keep_of =
        Printf.sprintf "%s keep={%s}" (point_label point)
          (Array.to_list pending |> List.filter keep_of
          |> List.map (fun (i, ln) -> Printf.sprintf "%d:%d" i ln)
          |> String.concat ",")
      in
      let explore_mask keep_of =
        incr images;
        Array.iteri (fun i r -> Region.restore r cp_crash.(i)) rs;
        Array.iteri
          (fun i r ->
            Region.crash_image r ~keep:(fun ln -> keep_of (i, ln));
            Fs.invalidate_shared r;
            Region.clear_guard r)
          rs;
        match Recovery.run_all rs with
        | _ -> (
            match Check.run_all rs with
            | [] -> (
                match verify with
                | None -> ()
                | Some v -> (
                    try v (fresh ())
                    with e ->
                      failures :=
                        ( label_of keep_of,
                          [
                            Check.Structure
                              ("verify: " ^ Printexc.to_string e);
                          ] )
                        :: !failures))
            | viols ->
                failures :=
                  (label_of keep_of, List.map snd viols) :: !failures)
        | exception e ->
            failures :=
              ( Printf.sprintf "%s: recovery raised %s" (point_label point)
                  (Printexc.to_string e),
                [] )
              :: !failures
      in
      let keep_of_mask mask =
        let keep = Hashtbl.create 8 in
        Array.iteri
          (fun i tln ->
            if mask land (1 lsl i) <> 0 then Hashtbl.replace keep tln ())
          pending;
        fun tln -> Hashtbl.mem keep tln
      in
      if n <= max_exhaustive then
        for mask = 0 to (1 lsl n) - 1 do
          explore_mask (keep_of_mask mask)
        done
      else begin
        explore_mask (fun _ -> false);
        explore_mask (fun _ -> true);
        for _ = 3 to samples do
          let keep = Hashtbl.create 16 in
          Array.iter
            (fun tln ->
              if Simurgh_sim.Rng.int rng 2 = 1 then Hashtbl.replace keep tln ())
            pending;
          explore_mask (fun tln -> Hashtbl.mem keep tln)
        done
      end)
    points;
  {
    crash_points = List.length points;
    images = !images;
    max_pending = !max_pending;
    failures = List.rev !failures;
  }

(* -- crash-during-recovery re-entrancy -------------------------------- *)

type reentrant_stats = {
  recovery_points : int;  (** mid-recovery crash points explored *)
  reentry_images : int;  (** crash images re-entered through recovery *)
  max_passes : int;
      (** most recovery passes any image needed to reach a media
          fixpoint (2 = idempotent: the second pass only confirms) *)
  reentry_failures : string list;
      (** images that diverged, raised, or failed the offline checker *)
}

(** [run_reentrant ~setup ~op ()] crashes recovery {e itself} and
    re-enters it.  For a strided sample of the operation's store points
    it takes the dirtiest crash image (every unpersisted line dropped),
    dry-runs recovery on it to discover recovery's own crash points —
    strided NVMM stores plus first/middle/last firing of every labeled
    {!Recovery} hook (pending-log resolution, mark repairs, quarantine
    detaches, sweep frees) — then crashes recovery at each, enumerates
    eviction subsets of recovery's unpersisted lines exactly like
    {!run}, and re-runs recovery on every image until the durable media
    digest reaches a fixpoint.  Convergence must take at most 4 passes
    (idempotence predicts 2: repair, then confirm) and every terminal
    image must pass {!Check.run}. *)
let run_reentrant ?(seed = 11L) ?(max_exhaustive = 8) ?(samples = 12)
    ?(size = default_size) ?(op_points = 5) ?(rec_stores = 8) ~setup ~op () =
  let region = Region.create ~mode:Region.Strict size in
  let fs0 = Fs.mkfs ~cores:2 ~euid:0 region in
  setup fs0;
  Region.persist_all region;
  let cp0 = Region.checkpoint region in

  (* dry-run the op once to count its stores, then stride [op_points]
     crash points across them *)
  let stores = ref 0 in
  let fs = fresh_mount ~scaled:false region in
  Region.set_store_hook region (fun () -> incr stores);
  op fs;
  Region.clear_store_hook region;
  let stride = max 1 (!stores / max 1 op_points) in
  let op_crashes =
    List.init op_points (fun i -> 1 + (i * stride))
    |> List.filter (fun p -> p <= !stores)
    |> List.sort_uniq compare
  in

  let rng = Simurgh_sim.Rng.create seed in
  let rec_points = ref 0 in
  let images = ref 0 in
  let max_passes = ref 0 in
  let failures = ref [] in

  List.iter
    (fun opn ->
      (* 1. crash the op at store [opn]; drop every unpersisted line —
            the dirtiest image recovery can be handed *)
      Region.restore region cp0;
      let fs = fresh_mount ~scaled:false region in
      let k = ref 0 in
      Region.set_store_hook region (fun () ->
          incr k;
          if !k = opn then raise Crash_now);
      (match op fs with () -> () | exception Crash_now -> ());
      Region.clear_store_hook region;
      Region.crash_image region ~keep:(fun _ -> false);
      let cp_dirty = Region.checkpoint region in

      (* 2. dry-run recovery on the dirty image to discover its own
            crash points *)
      let rstores = ref 0 in
      let hook_fires = Hashtbl.create 8 in
      Fs.invalidate_shared region;
      Region.set_store_hook region (fun () -> incr rstores);
      Recovery.set_crash_hook (fun label ->
          Hashtbl.replace hook_fires label
            (1 + try Hashtbl.find hook_fires label with Not_found -> 0));
      ignore (Recovery.run region);
      Recovery.clear_crash_hook ();
      Region.clear_store_hook region;
      let store_pts =
        let st = max 1 (!rstores / max 1 rec_stores) in
        List.init rec_stores (fun i -> 1 + (i * st))
        |> List.filter (fun p -> p <= !rstores)
        |> List.sort_uniq compare
        |> List.map (fun n -> Store n)
      in
      let hook_pts =
        Hashtbl.fold
          (fun label fires acc ->
            [ 1; (fires + 1) / 2; fires ]
            |> List.sort_uniq compare
            |> List.map (fun n -> Hook (label, n))
            |> fun l -> l @ acc)
          hook_fires []
        |> List.sort compare
      in

      (* 3. crash recovery at each point; re-enter on every eviction
            subset of its unpersisted lines; require media fixpoint and
            a clean checker *)
      List.iter
        (fun point ->
          incr rec_points;
          Region.restore region cp_dirty;
          Fs.invalidate_shared region;
          (match point with
          | Store n ->
              let k = ref 0 in
              Region.set_store_hook region (fun () ->
                  incr k;
                  if !k = n then raise Crash_now)
          | Hook (label, n) ->
              let k = ref 0 in
              Recovery.set_crash_hook (fun l ->
                  if l = label then begin
                    incr k;
                    if !k = n then raise Crash_now
                  end));
          (match Recovery.run region with
          | _ -> () (* point past recovery's end: still explored *)
          | exception Crash_now -> ());
          Region.clear_store_hook region;
          Recovery.clear_crash_hook ();

          let pending = Array.of_list (Region.pending_lines region) in
          let n = Array.length pending in
          let cp_crash = Region.checkpoint region in
          let explore_mask keep_of =
            incr images;
            Region.restore region cp_crash;
            Region.crash_image region ~keep:keep_of;
            let label () =
              Printf.sprintf "op-store:%d %s keep={%s}" opn
                (point_label point)
                (Array.to_list pending |> List.filter keep_of
                |> List.map string_of_int |> String.concat ",")
            in
            let rec fix prev passes =
              if passes > 4 then Error "no media fixpoint after 4 passes"
              else begin
                Fs.invalidate_shared region;
                Region.clear_guard region;
                ignore (Recovery.run region);
                Region.persist_all region;
                let d = Region.media_digest region in
                if prev = Some d then Ok passes else fix (Some d) (passes + 1)
              end
            in
            match fix None 1 with
            | Ok passes -> (
                if passes > !max_passes then max_passes := passes;
                match Check.run region with
                | [] -> ()
                | v :: _ as viols ->
                    failures :=
                      Printf.sprintf "%s: %d checker violations (%s)"
                        (label ()) (List.length viols)
                        (Format.asprintf "%a" Check.pp_violation v)
                      :: !failures)
            | Error msg -> failures := (label () ^ ": " ^ msg) :: !failures
            | exception e ->
                failures :=
                  (label () ^ ": recovery raised " ^ Printexc.to_string e)
                  :: !failures
          in
          let keep_of_mask mask =
            let keep = Hashtbl.create 8 in
            Array.iteri
              (fun i ln ->
                if mask land (1 lsl i) <> 0 then Hashtbl.replace keep ln ())
              pending;
            fun ln -> Hashtbl.mem keep ln
          in
          if n <= max_exhaustive then
            for mask = 0 to (1 lsl n) - 1 do
              explore_mask (keep_of_mask mask)
            done
          else begin
            explore_mask (fun _ -> false);
            explore_mask (fun _ -> true);
            for _ = 3 to samples do
              let keep = Hashtbl.create 16 in
              Array.iter
                (fun ln ->
                  if Simurgh_sim.Rng.int rng 2 = 1 then
                    Hashtbl.replace keep ln ())
                pending;
              explore_mask (fun ln -> Hashtbl.mem keep ln)
            done
          end)
        (store_pts @ hook_pts))
    op_crashes;
  {
    recovery_points = !rec_points;
    reentry_images = !images;
    max_passes = !max_passes;
    reentry_failures = List.rev !failures;
  }
