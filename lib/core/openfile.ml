(** Per-process open-file map (paper Section 4.3, "Open file map").

    Each entry stores the open mode, the current position, the path and
    the persistent pointer to the inode.  Lives in process-private DRAM;
    allocation is a lock-free free-list pop in the real system, modeled
    here by an uncontended atomic charge. *)

type mode = Rdonly | Wronly | Rdwr

type entry = {
  mutable pos : int;
  mode : mode;
  path : string;
  inode : int;  (** persistent pointer *)
  mutable append : bool;
}

type t = {
  mutable table : entry option array;
  mutable free : int list;  (** recycled descriptors *)
  mutable next : int;
}

let create () = { table = Array.make 64 None; free = []; next = 0 }

let grow t =
  let bigger = Array.make (2 * Array.length t.table) None in
  Array.blit t.table 0 bigger 0 (Array.length t.table);
  t.table <- bigger

let alloc ?ctx t ~mode ~path ~inode ~append =
  Charge.atomic ?ctx ~contended:false ();
  let fd =
    match t.free with
    | fd :: rest ->
        t.free <- rest;
        fd
    | [] ->
        let fd = t.next in
        t.next <- t.next + 1;
        if fd >= Array.length t.table then grow t;
        fd
  in
  t.table.(fd) <- Some { pos = 0; mode; path; inode; append };
  fd

let get t fd =
  if fd < 0 || fd >= Array.length t.table then None else t.table.(fd)

let close ?ctx t fd =
  Charge.atomic ?ctx ~contended:false ();
  match get t fd with
  | None -> false
  | Some _ ->
      t.table.(fd) <- None;
      t.free <- fd :: t.free;
      true

let open_count t =
  Array.fold_left (fun n -> function Some _ -> n + 1 | None -> n) 0 t.table

(** Descriptors of this process currently open on [inode].  Unlink uses
    it to decide whether in-flight data operations must be fenced out
    (whole-file exclusive) before the file's blocks are freed. *)
let inode_open_count t inode =
  Array.fold_left
    (fun n -> function Some e when e.inode = inode -> n + 1 | _ -> n)
    0 t.table
