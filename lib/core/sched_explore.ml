(** Systematic schedule exploration with race detection — the
    concurrency twin of the crash-image explorer ({!Explore}).

    One {e scenario} is an FS state machine (create / unlink / rename /
    read-write): a setup phase, then one body per simulated thread.  The
    explorer runs the bodies as preemptible fibers
    ({!Simurgh_sim.Engine.explore}): at every lock acquire/release,
    atomic, NVMM store and persist barrier a {!Simurgh_sim.Schedule}
    policy picks freely among runnable threads.  Schedules are drawn the
    same way {!Explore} draws crash images: systematic depth-first
    enumeration for the small two-thread scenarios, seeded random
    sampling beyond, each run restarting from a checkpoint of the
    post-setup region.

    Two oracles judge every schedule:

    + {b result invariance}: a recursive namespace snapshot (sorted
      entries, kinds, sizes) must be identical across all schedules of a
      scenario — the decentralized locking must serialize to the same
      final state no matter the interleaving;
    + {b fsck-cleanliness}: the offline checker ({!Check.run}) must
      report zero violations after every schedule.

    In parallel, a happens-before race detector
    ({!Simurgh_sim.Race}) watches every region access through the
    region's trace hooks; its sync edges come from the
    {!Simurgh_sim.Vlock} acquires/releases and sfence barriers the
    workload actually performs.  The default scenarios give each thread
    a private directory — Simurgh's decentralized target workload
    (fxmark private mode); shared state is then exactly the allocators
    and lock registries, all lock-protected, so the detector must stay
    silent.  A shared-directory scenario additionally exercises the
    lock-free lookup path, whose by-design benign races (8-byte atomic
    slot reads against in-progress inserts on real hardware) are
    reported separately and informationally.  {!negative_control}
    proves the detector is live: two fibers storing to the same word
    with no lock must be flagged. *)

open Simurgh_fs_common
module Region = Simurgh_nvmm.Region
module Engine = Simurgh_sim.Engine
module Schedule = Simurgh_sim.Schedule
module Race = Simurgh_sim.Race
module Machine = Simurgh_sim.Machine
module Sthread = Simurgh_sim.Sthread

type scenario = {
  name : string;
  threads : int;
  scaled : bool;
      (** mount with the scalability features on (striped locks,
          per-thread allocator caches, resolve cache) — the correctness
          gate for the striped shared-directory paths *)
  range : bool;
      (** mount with byte-range data-path locking — the correctness
          gate for the range/append/publish protocols *)
  ring : int;
      (** format with a rename-log ring of this many slots (0 = legacy
          single slot) — the correctness gate for concurrent renames
          claiming independent log slots of one directory *)
  invariant : bool;
      (** assert the namespace snapshot identical across schedules.
          Off for scenarios whose outcome legitimately depends on the
          serialization order (append racing truncate); [check_final]
          then carries the correctness burden alone *)
  check_final : (Fs.t -> string option) option;
      (** extra per-schedule oracle on the final state: [Some msg] is a
          failure.  Runs on every schedule, invariant or not *)
  setup : Fs.t -> unit;
  body : tid:int -> site:(string -> unit) -> Fs.t -> Machine.ctx -> unit;
      (** one simulated thread's work; [site] labels the current
          operation for race reports *)
}

type stats = {
  scenario : string;
  schedules : int;  (** interleavings executed *)
  distinct : int;  (** distinct pick sequences among them (trace hash) *)
  exhaustive : bool;  (** DFS enumerated the whole tree within budget *)
  yields : int;  (** preemption points offered, summed over schedules *)
  switches : int;  (** scheduling decisions, summed over schedules *)
  failures : (string * string) list;
      (** (schedule label, detail): snapshot divergence, checker
          violations, or an exception/deadlock during the run *)
  races : Race.report list;  (** deduplicated race reports *)
  lines_tracked : int;  (** max cache lines tracked in one schedule *)
  accesses : int;  (** region accesses tracked, summed over schedules *)
}

(* --- oracle: recursive namespace snapshot ------------------------------ *)

let rec snapshot_dir fs path acc =
  let names = List.sort compare (Fs.readdir fs path) in
  List.fold_left
    (fun acc n ->
      let p = if path = "/" then "/" ^ n else path ^ "/" ^ n in
      let st = Fs.stat fs p in
      let line =
        Printf.sprintf "%s %s %d" p
          (match st.Types.kind with
          | Types.File -> "f"
          | Types.Dir -> "d"
          | Types.Symlink -> "l")
          st.Types.size
      in
      if st.Types.kind = Types.Dir then snapshot_dir fs p (line :: acc)
      else line :: acc)
    acc names

let snapshot fs = String.concat "\n" (List.rev (snapshot_dir fs "/" []))

let fresh_mount ?(range = false) ~scaled region =
  Fs.invalidate_shared region;
  Fs.mount ~euid:0 ~striped_locks:scaled ~rcache:scaled ~alloc_caches:scaled
    ~range_locks:range region

let default_size = 4 lsl 20

(* --- the explorer ------------------------------------------------------ *)

let run ?(seed = 11L) ?(budget = 128) ?(size = default_size) sc =
  let threads = sc.threads in
  let region = Region.create size in
  let fs0 =
    Fs.mkfs ~cores:threads ~euid:0 ~striped_locks:sc.scaled ~rcache:sc.scaled
      ~alloc_caches:sc.scaled ~range_locks:sc.range ~log_ring:sc.ring region
  in
  sc.setup fs0;
  Region.persist_all region;
  let cp0 = Region.checkpoint region in

  let yields = ref 0 and switches = ref 0 in
  let hashes = Hashtbl.create (2 * budget) in
  let failures = ref [] in
  let races = ref [] in
  let race_seen = Hashtbl.create 16 in
  let lines_tracked = ref 0 and accesses = ref 0 in
  let reference = ref None in
  let schedules = ref 0 in

  let run_one label policy =
    incr schedules;
    Region.restore region cp0;
    let fs = fresh_mount ~range:sc.range ~scaled:sc.scaled region in
    let machine = Machine.create () in
    let race = Race.create ~threads in
    (* the block allocator's persistent segment lock words are read
       lock-free by the crash-detection scan — synchronization
       internals, not data *)
    Simurgh_alloc.Block_alloc.iter_lock_words
      (Fs.layout fs).Layout.balloc
      (fun ~off ~len -> Race.exclude race ~off ~len);
    Region.set_access_hook region (fun ~off ~len ~write ->
        (* yield before the bytes change, so another thread can slip in
           between intent and store — then record atomically with it *)
        if write then Schedule.point Schedule.Store;
        Race.on_access ~off ~len ~write);
    Region.set_fence_hook region (fun () ->
        Schedule.point Schedule.Persist;
        Race.on_fence ());
    let bodies =
      Array.init threads (fun tid () ->
          let thr = Sthread.create ~seed tid in
          let ctx = Machine.ctx machine thr in
          sc.body ~tid ~site:(fun s -> Race.set_site race ~tid s) fs ctx)
    in
    (match
       Race.with_active race (fun () -> Engine.explore ~schedule:policy bodies)
     with
    | (o : Engine.explore_outcome) ->
        yields := !yields + o.Engine.yields;
        switches := !switches + o.Engine.switches;
        Hashtbl.replace hashes o.Engine.trace_hash ()
    | exception e ->
        failures := (label, "run: " ^ Printexc.to_string e) :: !failures;
        Hashtbl.replace hashes (Hashtbl.hash label) ());
    Region.clear_access_hook region;
    Region.clear_fence_hook region;
    lines_tracked := max !lines_tracked (Race.lines_tracked race);
    accesses := !accesses + Race.accesses race;
    List.iter
      (fun (r : Race.report) ->
        let k = (r.Race.line, r.Race.site_a, r.Race.site_b) in
        if not (Hashtbl.mem race_seen k) then begin
          Hashtbl.replace race_seen k ();
          races := r :: !races
        end)
      (Race.reports race);
    (* oracles: same final namespace (when the scenario promises it),
       the scenario's own final-state predicate, clean fsck — on every
       schedule *)
    (if sc.invariant then
       match snapshot fs with
       | snap -> (
           match !reference with
           | None -> reference := Some snap
           | Some r ->
               if r <> snap then
                 failures :=
                   ( label,
                     Printf.sprintf "result diverged:\n%s\n-- want --\n%s" snap
                       r )
                   :: !failures)
       | exception e ->
           failures := (label, "snapshot: " ^ Printexc.to_string e) :: !failures);
    (match sc.check_final with
    | None -> ()
    | Some f -> (
        match f fs with
        | None -> ()
        | Some msg -> failures := (label, "final state: " ^ msg) :: !failures
        | exception e ->
            failures := (label, "final state: " ^ Printexc.to_string e)
                        :: !failures));
    match Check.run region with
    | [] -> ()
    | viols ->
        failures :=
          ( label,
            "fsck: "
            ^ String.concat "; " (List.map Check.violation_to_string viols) )
          :: !failures
  in

  (* systematic DFS for half the budget (small scenarios often exhaust
     it), seeded random sampling for the rest *)
  let dfs = Schedule.Dfs.create () in
  let dfs_budget = if threads <= 2 then (budget + 1) / 2 else 0 in
  let cont = ref (dfs_budget > 0) in
  let i = ref 0 in
  while !cont && !i < dfs_budget do
    Schedule.Dfs.start dfs;
    run_one (Printf.sprintf "%s/dfs%d" sc.name !i) (Schedule.driven dfs);
    cont := Schedule.Dfs.advance dfs;
    incr i
  done;
  let exhaustive = dfs_budget > 0 && Schedule.Dfs.exhausted dfs in
  let remaining = budget - !schedules in
  for j = 0 to remaining - 1 do
    run_one
      (Printf.sprintf "%s/rnd%d" sc.name j)
      (Schedule.random (Int64.add seed (Int64.of_int ((j * 7919) + 13))))
  done;
  {
    scenario = sc.name;
    schedules = !schedules;
    distinct = Hashtbl.length hashes;
    exhaustive;
    yields = !yields;
    switches = !switches;
    failures = List.rev !failures;
    races = List.rev !races;
    lines_tracked = !lines_tracked;
    accesses = !accesses;
  }

(* --- the default FS state machines ------------------------------------- *)

(* Each thread works in its own directory (fxmark-private, the paper's
   decentralized target): cross-thread shared state is exactly the
   metadata allocators, lock registries and the root directory — all of
   it lock-protected or read-only, so zero race reports are required. *)

let tdir tid = Printf.sprintf "/t%d" tid

let mk_private_dirs threads fs =
  for tid = 0 to threads - 1 do
    Fs.mkdir fs (tdir tid)
  done

let create_scenario ~threads =
  {
    name = "create";
    threads;
    scaled = false;
    range = false;
    ring = 0;
    invariant = true;
    check_final = None;
    setup = (fun fs -> mk_private_dirs threads fs);
    body =
      (fun ~tid ~site fs ctx ->
        site "create";
        Fs.create_file ~ctx fs (tdir tid ^ "/a");
        Fs.create_file ~ctx fs (tdir tid ^ "/b"));
  }

let unlink_scenario ~threads =
  {
    name = "unlink";
    threads;
    scaled = false;
    range = false;
    ring = 0;
    invariant = true;
    check_final = None;
    setup =
      (fun fs ->
        mk_private_dirs threads fs;
        for tid = 0 to threads - 1 do
          Fs.create_file fs (tdir tid ^ "/a");
          Fs.create_file fs (tdir tid ^ "/b")
        done);
    body =
      (fun ~tid ~site fs ctx ->
        site "unlink";
        Fs.unlink ~ctx fs (tdir tid ^ "/a");
        Fs.unlink ~ctx fs (tdir tid ^ "/b"));
  }

let rename_scenario ~threads =
  {
    name = "rename";
    threads;
    scaled = false;
    range = false;
    ring = 0;
    invariant = true;
    check_final = None;
    setup =
      (fun fs ->
        for tid = 0 to threads - 1 do
          Fs.mkdir fs (tdir tid);
          Fs.mkdir fs (Printf.sprintf "/u%d" tid);
          Fs.create_file fs (tdir tid ^ "/a")
        done);
    body =
      (fun ~tid ~site fs ctx ->
        site "rename";
        Fs.rename ~ctx fs (tdir tid ^ "/a") (tdir tid ^ "/b");
        site "xrename";
        Fs.rename ~ctx fs (tdir tid ^ "/b")
          (Printf.sprintf "/u%d/c" tid));
  }

let rw_scenario ~threads =
  {
    name = "read-write";
    threads;
    scaled = false;
    range = false;
    ring = 0;
    invariant = true;
    check_final = None;
    setup =
      (fun fs ->
        mk_private_dirs threads fs;
        for tid = 0 to threads - 1 do
          Fs.create_file fs (tdir tid ^ "/f")
        done);
    body =
      (fun ~tid ~site fs ctx ->
        site "open";
        let fd = Fs.openf ~ctx fs Types.rdwr (tdir tid ^ "/f") in
        site "append";
        ignore (Fs.append ~ctx fs fd (Bytes.make 200 (Char.chr (97 + tid))));
        site "pread";
        let got = Fs.pread ~ctx fs fd ~pos:0 ~len:200 in
        if Bytes.length got <> 200 || Bytes.get got 0 <> Char.chr (97 + tid)
        then failwith "read-write scenario: wrong data read back";
        site "close";
        Fs.close ~ctx fs fd);
  }

let default_scenarios ~threads =
  [
    create_scenario ~threads;
    unlink_scenario ~threads;
    rename_scenario ~threads;
    rw_scenario ~threads;
  ]

(* Shared-directory variant: disjoint names in ONE directory, so the
   per-row spin locks, the append lock and the lock-free lookup path all
   see real cross-thread traffic.  The result oracle still holds (name
   sets are disjoint); race reports are expected occasionally — the
   lock-free resolve reads a dirblock row another thread may be
   inserting into, Simurgh's by-design benign race (atomic 8-byte slot
   publish on real hardware) — and are reported, not asserted zero. *)
let shared_scenario ~threads =
  {
    name = "shared-dir";
    threads;
    scaled = false;
    range = false;
    ring = 0;
    invariant = true;
    check_final = None;
    setup = (fun fs -> Fs.mkdir fs "/s");
    body =
      (fun ~tid ~site fs ctx ->
        let f i = Printf.sprintf "/s/f%d_%d" tid i in
        site "create";
        Fs.create_file ~ctx fs (f 0);
        Fs.create_file ~ctx fs (f 1);
        site "append";
        let fd = Fs.openf ~ctx fs Types.rdwr (f 0) in
        ignore (Fs.append ~ctx fs fd (Bytes.make 64 'x'));
        Fs.close ~ctx fs fd;
        site "unlink";
        Fs.unlink ~ctx fs (f 1));
  }

(* --- striped-mode scenarios -------------------------------------------- *)

(* The striped shared-directory paths need names with controlled hash
   rows: deterministically probe until one lands in [row]. *)
let name_in_row ~row i =
  let rec go j =
    let n = Printf.sprintf "r%d_%d_%d" row i j in
    if Dirblock.lock_row_of_name n = row then n else go (j + 1)
  in
  go 0

(* Concurrent creates in ONE directory under striped locks, each thread
   in its own hash row: the per-row spin and append locks, the
   per-thread allocator caches and the resolve cache all see real
   cross-thread traffic, yet every access is lock-ordered — zero races
   required.  Rows stay under 8 entries, so the chain never grows (the
   lock-free publication of a new hash block is benign-by-design and
   covered informationally by [shared_scenario], not asserted here). *)
let striped_create_scenario ~threads =
  {
    name = "striped-create";
    threads;
    scaled = true;
    range = false;
    ring = 0;
    invariant = true;
    check_final = None;
    setup = (fun fs -> Fs.mkdir fs "/s");
    body =
      (fun ~tid ~site fs ctx ->
        site "create";
        Fs.create_file ~ctx fs ("/s/" ^ name_in_row ~row:tid 0);
        Fs.create_file ~ctx fs ("/s/" ^ name_in_row ~row:tid 1));
  }

(* All threads hammer the SAME hash row: the row lock must serialize
   the EEXIST probe + insert sequences completely. *)
let striped_same_row_scenario ~threads =
  {
    name = "striped-row";
    threads;
    scaled = true;
    range = false;
    ring = 0;
    invariant = true;
    check_final = None;
    setup = (fun fs -> Fs.mkdir fs "/s");
    body =
      (fun ~tid ~site fs ctx ->
        site "create";
        Fs.create_file ~ctx fs ("/s/" ^ name_in_row ~row:0 (2 * tid));
        Fs.create_file ~ctx fs ("/s/" ^ name_in_row ~row:0 ((2 * tid) + 1)));
  }

(* Same-directory renames from every thread: the directory's single
   persistent log slot is written by all of them, serialized by the
   striped-mode log lock — the explorer proves the write..clear windows
   never interleave (any overlap would corrupt the slot and diverge the
   namespace or trip fsck). *)
let striped_rename_scenario ~threads =
  {
    name = "striped-rename";
    threads;
    scaled = true;
    range = false;
    ring = 0;
    invariant = true;
    check_final = None;
    setup =
      (fun fs ->
        Fs.mkdir fs "/s";
        for tid = 0 to threads - 1 do
          Fs.create_file fs ("/s/" ^ name_in_row ~row:tid 0)
        done);
    body =
      (fun ~tid ~site fs ctx ->
        site "rename";
        Fs.rename ~ctx fs
          ("/s/" ^ name_in_row ~row:tid 0)
          ("/s/" ^ name_in_row ~row:(tid + 8) 1));
  }

(* Cross-directory renames sharing one source directory (and hence one
   source log slot) under striped locks. *)
let striped_xrename_scenario ~threads =
  {
    name = "striped-xrename";
    threads;
    scaled = true;
    range = false;
    ring = 0;
    invariant = true;
    check_final = None;
    setup =
      (fun fs ->
        Fs.mkdir fs "/s";
        Fs.mkdir fs "/d";
        for tid = 0 to threads - 1 do
          Fs.create_file fs ("/s/" ^ name_in_row ~row:tid 0)
        done);
    body =
      (fun ~tid ~site fs ctx ->
        site "xrename";
        Fs.rename ~ctx fs
          ("/s/" ^ name_in_row ~row:tid 0)
          ("/d/" ^ name_in_row ~row:tid 1));
  }

(** The striped-lock correctness gate ([make races] runs these next to
    {!default_scenarios}): shared-directory create/rename traffic with
    the scalability features on, asserted schedule-invariant, fsck-clean
    and race-free. *)
let striped_scenarios ~threads =
  [
    striped_create_scenario ~threads;
    striped_same_row_scenario ~threads;
    striped_rename_scenario ~threads;
    striped_xrename_scenario ~threads;
  ]

(* --- rename-log-ring scenarios ----------------------------------------- *)

(* Same-directory renames from every thread on log-ring media: instead
   of serializing on the single log lock, each rename claims its own
   ring slot, so the log windows genuinely overlap in time.  The
   explorer proves the per-slot claim discipline keeps every
   interleaving serializable (identical namespace), fsck-clean (no slot
   left pending) and race-free (distinct slots never share lines; a
   contended slot is handed over lock-to-lock). *)
let ring_rename_scenario ~threads =
  {
    name = "ring-rename";
    threads;
    scaled = true;
    range = false;
    ring = 4;
    invariant = true;
    check_final = None;
    setup =
      (fun fs ->
        Fs.mkdir fs "/s";
        for tid = 0 to threads - 1 do
          Fs.create_file fs ("/s/" ^ name_in_row ~row:tid 0)
        done);
    body =
      (fun ~tid ~site fs ctx ->
        site "rename";
        Fs.rename ~ctx fs
          ("/s/" ^ name_in_row ~row:tid 0)
          ("/s/" ^ name_in_row ~row:(tid + 8) 1));
  }

(* Cross-directory renames sharing one source directory: every thread
   claims a slot of the SAME source ring concurrently. *)
let ring_xrename_scenario ~threads =
  {
    name = "ring-xrename";
    threads;
    scaled = true;
    range = false;
    ring = 4;
    invariant = true;
    check_final = None;
    setup =
      (fun fs ->
        Fs.mkdir fs "/s";
        Fs.mkdir fs "/d";
        for tid = 0 to threads - 1 do
          Fs.create_file fs ("/s/" ^ name_in_row ~row:tid 0)
        done);
    body =
      (fun ~tid ~site fs ctx ->
        site "xrename";
        Fs.rename ~ctx fs
          ("/s/" ^ name_in_row ~row:tid 0)
          ("/d/" ^ name_in_row ~row:tid 1));
  }

(* Slot contention: more threads than ring slots forces the claim loop
   through its ring-full fallback (blocking on the hint slot), which
   must still serialize correctly. *)
let ring_contention_scenario ~threads =
  {
    name = "ring-contention";
    threads;
    scaled = true;
    range = false;
    ring = 1;
    invariant = true;
    check_final = None;
    setup =
      (fun fs ->
        Fs.mkdir fs "/s";
        for tid = 0 to threads - 1 do
          Fs.create_file fs ("/s/" ^ name_in_row ~row:tid 0)
        done);
    body =
      (fun ~tid ~site fs ctx ->
        site "rename";
        Fs.rename ~ctx fs
          ("/s/" ^ name_in_row ~row:tid 0)
          ("/s/" ^ name_in_row ~row:(tid + 8) 1));
  }

(** The log-ring correctness gate ([make races] runs these next to the
    default, striped and data lists): concurrent renames over one
    directory's slot ring, asserted schedule-invariant, fsck-clean and
    race-free. *)
let ring_scenarios ~threads =
  [
    ring_rename_scenario ~threads;
    ring_xrename_scenario ~threads;
    ring_contention_scenario ~threads;
  ]

(* --- byte-range data-path scenarios ------------------------------------ *)

(* All four mount with [range_locks] (plus the striped registry): one
   shared file, concurrent byte-level traffic.  Writers of disjoint
   4 KiB rows must scale AND serialize correctly; the explorer proves
   the correctness half here, with zero race reports required — the
   reservation/publish protocol and the row/extent locks must carry
   every happens-before edge themselves. *)

let page = 4096
let fill tid = Char.chr (Char.code 'a' + tid)

(* Oracle-side whole-file read (fresh fd, no ctx — sequential code). *)
let read_all fs path =
  let st = Fs.stat fs path in
  let fd = Fs.openf fs Types.rdonly path in
  let got = Fs.pread fs fd ~pos:0 ~len:st.Types.size in
  Fs.close fs fd;
  got

let uniform b ~pos ~len c =
  let ok = ref true in
  for i = pos to pos + len - 1 do
    if Bytes.get b i <> c then ok := false
  done;
  !ok

(* Every thread overwrites its own 4 KiB row of one shared file: fully
   deterministic outcome, and the per-row write locks never collide. *)
let range_write_scenario ~threads =
  {
    name = "range-write";
    threads;
    scaled = true;
    range = true;
    ring = 0;
    invariant = true;
    check_final =
      Some
        (fun fs ->
          let got = read_all fs "/f" in
          if Bytes.length got <> threads * page then
            Some (Printf.sprintf "size %d, want %d" (Bytes.length got)
                    (threads * page))
          else begin
            let bad = ref None in
            for tid = 0 to threads - 1 do
              if not (uniform got ~pos:(tid * page) ~len:page (fill tid)) then
                bad := Some (Printf.sprintf "row %d not thread %d's" tid tid)
            done;
            !bad
          end);
    setup =
      (fun fs ->
        let fd = Fs.openf fs (Types.creat Types.rdwr) "/f" in
        ignore (Fs.pwrite fs fd ~pos:0 (Bytes.make (threads * page) 'o'));
        Fs.close fs fd);
    body =
      (fun ~tid ~site fs ctx ->
        site "pwrite";
        let fd = Fs.openf ~ctx fs Types.rdwr "/f" in
        ignore
          (Fs.pwrite ~ctx fs fd ~pos:(tid * page)
             (Bytes.make page (fill tid)));
        Fs.close ~ctx fs fd);
  }

(* Writer overwrites the row a reader is reading: the row lock must
   make the read atomic — all old bytes or all new bytes, never a mix.
   (Thread 0 writes; every other thread reads.) *)
let range_overlap_scenario ~threads =
  {
    name = "range-rw";
    threads;
    scaled = true;
    range = true;
    ring = 0;
    invariant = true;
    check_final =
      Some
        (fun fs ->
          let got = read_all fs "/f" in
          if Bytes.length got = page && uniform got ~pos:0 ~len:page 'b' then
            None
          else Some "writer's bytes did not land");
    setup =
      (fun fs ->
        let fd = Fs.openf fs (Types.creat Types.rdwr) "/f" in
        ignore (Fs.pwrite fs fd ~pos:0 (Bytes.make page 'a'));
        Fs.close fs fd);
    body =
      (fun ~tid ~site fs ctx ->
        let fd = Fs.openf ~ctx fs Types.rdwr "/f" in
        (if tid = 0 then begin
           site "pwrite";
           ignore (Fs.pwrite ~ctx fs fd ~pos:0 (Bytes.make page 'b'))
         end
         else begin
           site "pread";
           let got = Fs.pread ~ctx fs fd ~pos:0 ~len:page in
           if
             not
               (uniform got ~pos:0 ~len:page 'a'
               || uniform got ~pos:0 ~len:page 'b')
           then failwith "range-rw: torn read"
         end);
        Fs.close ~ctx fs fd);
  }

(* Concurrent appends to one file: sizes reserved by fetch-and-add,
   published in order.  The final size is deterministic; the block
   order is whatever the reservation order was, so the content oracle
   accepts any permutation of uniform per-thread pages. *)
let range_append_scenario ~threads =
  {
    name = "range-append";
    threads;
    scaled = true;
    range = true;
    ring = 0;
    invariant = true;
    check_final =
      Some
        (fun fs ->
          let got = read_all fs "/f" in
          if Bytes.length got <> threads * page then
            Some (Printf.sprintf "size %d, want %d" (Bytes.length got)
                    (threads * page))
          else begin
            let seen = Array.make threads 0 in
            let bad = ref None in
            for k = 0 to threads - 1 do
              let c = Bytes.get got (k * page) in
              let tid = Char.code c - Char.code 'a' in
              if tid < 0 || tid >= threads
                 || not (uniform got ~pos:(k * page) ~len:page c)
              then bad := Some (Printf.sprintf "page %d torn" k)
              else seen.(tid) <- seen.(tid) + 1
            done;
            (match !bad with
            | None ->
                if Array.exists (fun n -> n <> 1) seen then
                  bad := Some "pages are not a permutation of the appends"
            | Some _ -> ());
            !bad
          end);
    setup =
      (fun fs ->
        let fd = Fs.openf fs (Types.creat Types.wronly) "/f" in
        Fs.close fs fd);
    body =
      (fun ~tid ~site fs ctx ->
        site "append";
        let fd = Fs.openf ~ctx fs Types.rdwr "/f" in
        ignore (Fs.append ~ctx fs fd (Bytes.make page (fill tid)));
        Fs.close ~ctx fs fd);
  }

(* Append racing truncate(0): the whole-file fence serializes them, so
   the result is one of exactly two legal serializations — truncated
   after the append (empty file) or before it (just the appended page).
   Not schedule-invariant by design. *)
let range_append_truncate_scenario ~threads:_ =
  {
    name = "range-append-trunc";
    threads = 2;
    scaled = true;
    range = true;
    ring = 0;
    invariant = false;
    check_final =
      Some
        (fun fs ->
          let got = read_all fs "/f" in
          match Bytes.length got with
          | 0 -> None
          | n when n = page ->
              if uniform got ~pos:0 ~len:page 'b' then None
              else Some "surviving page is not the append's bytes"
          | n -> Some (Printf.sprintf "size %d, want 0 or %d" n page));
    setup =
      (fun fs ->
        let fd = Fs.openf fs (Types.creat Types.rdwr) "/f" in
        ignore (Fs.pwrite fs fd ~pos:0 (Bytes.make page 'a'));
        Fs.close fs fd);
    body =
      (fun ~tid ~site fs ctx ->
        if tid = 0 then begin
          site "append";
          let fd = Fs.openf ~ctx fs Types.rdwr "/f" in
          ignore (Fs.append ~ctx fs fd (Bytes.make page 'b'));
          Fs.close ~ctx fs fd
        end
        else begin
          site "truncate";
          Fs.truncate ~ctx fs "/f" 0
        end);
  }

(** The range-locking correctness gate ([make races] runs these next to
    the default and striped lists): concurrent byte-level traffic on one
    shared file, asserted race-free and fsck-clean on every schedule. *)
let data_scenarios ~threads =
  [
    range_write_scenario ~threads;
    range_overlap_scenario ~threads;
    range_append_scenario ~threads;
    range_append_truncate_scenario ~threads;
  ]

(* --- parallel-recovery scenarios ---------------------------------------- *)

module Workpool = Simurgh_sim.Workpool

type recovery_stats = {
  rscenario : string;
  rschedules : int;  (** parallel recoveries executed (plus 1 seq reference) *)
  rdistinct : int;  (** distinct fiber interleavings among them *)
  ryields : int;  (** preemption points offered, summed over schedules *)
  rfailures : (string * string) list;
      (** digest / report divergence from the sequential reference,
          checker violations, or an exception during recovery *)
  rraces : Race.report list;  (** deduplicated race reports *)
}

(* A populated, genuinely crashed image for recovery to chew on: a
   durable tree (directories, files, a nested subdir, a symlink), then
   a dirty tail — two creates and a rename crashed mid-flight — with
   every unpersisted line dropped.  [poison] additionally poisons one
   subdirectory's head-block line, so the parallel mark pass exercises
   the quarantine escalation under contention. *)
let build_crashed_image ~poison ~size =
  let region = Region.create ~mode:Region.Strict size in
  let fs = Fs.mkfs ~cores:4 ~euid:0 region in
  for d = 0 to 3 do
    let dir = Printf.sprintf "/d%d" d in
    Fs.mkdir fs dir;
    for i = 0 to 5 do
      Fs.create_file fs (Printf.sprintf "%s/f%d" dir i)
    done
  done;
  Fs.mkdir fs "/d0/sub";
  Fs.create_file fs "/d0/sub/leaf";
  Fs.symlink fs ~target:"/d0/f0" "/d0/link";
  Region.persist_all region;
  let fs = fresh_mount ~scaled:false region in
  Fs.create_file fs "/d1/extra0";
  Fs.create_file fs "/d1/extra1";
  let k = ref 0 in
  Region.set_store_hook region (fun () ->
      incr k;
      if !k = 6 then raise Explore.Crash_now);
  (match Fs.rename fs "/d2/f0" "/d3/moved" with
  | () -> ()
  | exception Explore.Crash_now -> ());
  Region.clear_store_hook region;
  Region.crash_image region ~keep:(fun _ -> false);
  if poison then begin
    let layout = Layout.attach region in
    let root = Layout.root_fentry layout in
    let root_head = Fentry.dirblock region root in
    match Dirblock.find region ~head:root_head ~name:"d3" with
    | Some (_, _, _, p), _ -> Region.poison region (Fentry.dirblock region p) 64
    | None, _ -> failwith "build_crashed_image: /d3 vanished"
  end;
  region

(** [recovery_run ()] is the parallel-recovery twin of {!run}: one
    crashed image, one sequential {!Recovery.run} as the reference,
    then [budget] fiber-mode recoveries under seeded random schedules,
    each watched by the race detector.  Oracles, per schedule: the
    durable media digest and the recovery report (modulo virtual time)
    must equal the sequential reference — parallel recovery is
    schedule-independent — and {!Check.run} must be clean.  Zero race
    reports are required: mark/sweep tasks only write task-owned bytes;
    everything order-sensitive runs in the fenced sequential steps. *)
let recovery_run ?(seed = 23L) ?(budget = 24) ?(size = default_size)
    ?(workers = 3) ?(poison = false) () =
  let name = if poison then "recovery-poison" else "recovery" in
  let region = build_crashed_image ~poison ~size in
  let cp0 = Region.checkpoint region in

  (* sequential reference *)
  Fs.invalidate_shared region;
  let _, ref_report = Recovery.run region in
  Region.persist_all region;
  let ref_digest = Region.media_digest region in
  let failures = ref [] in
  (match Check.run region with
  | [] -> ()
  | viols ->
      failures :=
        ( name ^ "/seq",
          "fsck: "
          ^ String.concat "; " (List.map Check.violation_to_string viols) )
        :: !failures);

  let races = ref [] in
  let race_seen = Hashtbl.create 16 in
  let hashes = Hashtbl.create (2 * budget) in
  let yields = ref 0 in
  let ref_norm = { ref_report with Recovery.vtime_cycles = 0.0 } in

  for j = 0 to budget - 1 do
    let label = Printf.sprintf "%s/rnd%d" name j in
    Region.restore region cp0;
    Fs.invalidate_shared region;
    let race = Race.create ~threads:workers in
    let layout = Layout.attach region in
    Simurgh_alloc.Block_alloc.iter_lock_words layout.Layout.balloc
      (fun ~off ~len -> Race.exclude race ~off ~len);
    Region.set_access_hook region (fun ~off ~len ~write ->
        if write then Schedule.point Schedule.Store;
        Race.on_access ~off ~len ~write);
    Region.set_fence_hook region (fun () ->
        Schedule.point Schedule.Persist;
        Race.on_fence ());
    Workpool.fiber_outcomes := [];
    let sched =
      Schedule.random (Int64.add seed (Int64.of_int ((j * 7919) + 13)))
    in
    (match
       Race.with_active race (fun () ->
           Recovery.run ~par:(Recovery.Fibers { schedule = sched; workers })
             region)
     with
    | _, report ->
        Region.clear_access_hook region;
        Region.clear_fence_hook region;
        Region.persist_all region;
        if Region.media_digest region <> ref_digest then
          failures :=
            (label, "durable media diverged from sequential recovery")
            :: !failures;
        if { report with Recovery.vtime_cycles = 0.0 } <> ref_norm then
          failures :=
            (label, "recovery report diverged from sequential recovery")
            :: !failures;
        (match Check.run region with
        | [] -> ()
        | viols ->
            failures :=
              ( label,
                "fsck: "
                ^ String.concat "; "
                    (List.map Check.violation_to_string viols) )
              :: !failures)
    | exception e ->
        Region.clear_access_hook region;
        Region.clear_fence_hook region;
        failures :=
          (label, "recovery raised " ^ Printexc.to_string e) :: !failures);
    List.iter
      (fun (r : Race.report) ->
        let k = (r.Race.line, r.Race.site_a, r.Race.site_b) in
        if not (Hashtbl.mem race_seen k) then begin
          Hashtbl.replace race_seen k ();
          races := r :: !races
        end)
      (Race.reports race);
    let outs = !Workpool.fiber_outcomes in
    Workpool.fiber_outcomes := [];
    List.iter (fun (o : Engine.explore_outcome) ->
        yields := !yields + o.Engine.yields) outs;
    Hashtbl.replace hashes
      (Hashtbl.hash (List.map (fun (o : Engine.explore_outcome) ->
           o.Engine.trace_hash) outs))
      ()
  done;
  {
    rscenario = name;
    rschedules = budget + 1;
    rdistinct = Hashtbl.length hashes;
    ryields = !yields;
    rfailures = List.rev !failures;
    rraces = List.rev !races;
  }

(* --- negative control --------------------------------------------------- *)

(** Two fibers store to the same NVMM word with no lock: the detector
    must flag it under any schedule.  Returns the deduplicated reports
    (empty = the detector is broken). *)
let negative_control ?(seed = 3L) ?(schedules = 8) () =
  let region = Region.create 4096 in
  let all = ref [] in
  let seen = Hashtbl.create 4 in
  for s = 0 to schedules - 1 do
    let race = Race.create ~threads:2 in
    Region.set_access_hook region (fun ~off ~len ~write ->
        if write then Schedule.point Schedule.Store;
        Race.on_access ~off ~len ~write);
    let bodies =
      Array.init 2 (fun tid () ->
          Race.set_site race ~tid (Printf.sprintf "racer%d" tid);
          (* unsynchronized read-modify-write of the same word *)
          let v = Region.read_u62 region 512 in
          Region.write_u62 region 512 (v + tid + 1))
    in
    (try
       ignore
         (Race.with_active race (fun () ->
              Engine.explore
                ~schedule:
                  (Schedule.random (Int64.add seed (Int64.of_int (s * 31))))
                bodies))
     with e ->
       Region.clear_access_hook region;
       raise e);
    Region.clear_access_hook region;
    List.iter
      (fun (r : Race.report) ->
        let k = (r.Race.line, r.Race.site_a, r.Race.site_b) in
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.replace seen k ();
          all := r :: !all
        end)
      (Race.reports race)
  done;
  List.rev !all
