(** Sharded multi-region namespace (the NUMA substrate's top layer).

    A [Shard.t] stitches N independently formatted Simurgh regions into
    one tree: the top-level component of every path picks the home
    region via {!Name_hash.home}, and the whole subtree under that
    component — directory blocks, file entries, inodes and data — lives
    on that region.  Each region keeps its own allocators, rename logs
    and recovery, so crash consistency stays a strictly per-region
    property and recovery after a failure is [Recovery.run] per region
    with no cross-region reasoning.

    The root directory is virtual: every shard holds its own root, and
    [readdir "/"] merges them (top-level names are disjoint across
    shards because the hash routes each name to exactly one region).

    Cross-region operations follow the block-device precedent:
    [rename] of a {e directory} across regions fails with [EXDEV]
    (moving a subtree between crash domains cannot be made atomic), a
    cross-region file rename degrades to copy + unlink where each step
    is crash-consistent on its own region, and [hardlink] across
    regions is [EXDEV] (a link cannot span devices).

    Every forwarded operation lands in the shard's [Fs.t], whose entry
    charge pins the calling thread's NVMM traffic to the shard's
    region, so the per-region bandwidth servers and the NUMA surcharge
    of {!Simurgh_sim.Machine} see the right target without any
    bookkeeping here. *)

open Simurgh_nvmm
open Simurgh_fs_common

type t = {
  shards : Fs.t array;
  regions : Region.t array;
}

type fd = { fd_region : int; fd_inner : Fs.fd }

let name = "Simurgh-sharded"
let shard_count t = Array.length t.shards
let fs_of t i = t.shards.(i)
let region_of t i = t.regions.(i)
let regions t = t.regions

(* first path component, or [None] for the root itself *)
let top_component path =
  let n = String.length path in
  let i = ref 0 in
  while !i < n && path.[!i] = '/' do incr i done;
  let j = ref !i in
  while !j < n && path.[!j] <> '/' do incr j done;
  if !i = !j then None else Some (String.sub path !i (!j - !i))

(** Home region of a path: the hash of its top-level component (the
    root itself lives on region 0). *)
let route t path =
  match top_component path with
  | None -> 0
  | Some c -> Name_hash.home c ~regions:(Array.length t.shards)

let shard_for t path = t.shards.(route t path)

(** Export each shard's allocator counters under a per-region prefix
    ([region0/alloc/...]) so a multi-region bench can tell how the
    block traffic spread.  Named registration: two live shards fighting
    over the same index is a bug and raises [Duplicate_source]. *)
let note_alloc_sources ~prefix t =
  Array.iteri
    (fun i fs ->
      let balloc = (Fs.layout fs).Layout.balloc in
      let name = Printf.sprintf "%s%d/alloc" prefix i in
      Simurgh_obs.Collect.note_source ~name (fun () ->
          let s = Simurgh_alloc.Block_alloc.stats balloc in
          [
            (name ^ "/blocks_allocated", float_of_int s.blocks_allocated);
            (name ^ "/blocks_freed", float_of_int s.blocks_freed);
            (name ^ "/blocks_quarantined", float_of_int s.blocks_quarantined);
          ]))
    t.shards

(** Create and format an N-region namespace.  Fresh regions are named
    [<prefix>0 .. <prefix>N-1] (default prefix ["region"]) so their
    observability counters stay apart — a bench sweeping several region
    counts under one collector gives each sweep point its own prefix;
    each is formatted as shard [i] of [n] (recorded in its superblock,
    so [mount] can sanity-check the set).  When a [machine] is given,
    its per-region bandwidth servers are grown to match.  [~obs:false]
    creates unnamed regions and registers no named sources — for
    callers (like the crash explorer) that create and re-attach many
    short-lived shard sets under one collector, where exclusive named
    registration would (correctly) refuse the second set. *)
let mkfs ?mode ?machine ?(obs = true) ?(prefix = "region") ?cores ?segments
    ?call_mode ?relaxed_writes ?coarse_dir_locks ?striped_locks ?rcache
    ?range_locks ?alloc_caches ?log_ring ?euid ?egid ~regions:n size =
  if n < 1 then invalid_arg "Shard.mkfs: need at least one region";
  (match machine with
  | Some m -> Simurgh_sim.Machine.set_regions m n
  | None -> ());
  let regions =
    Array.init n (fun i ->
        if obs then
          Region.create ?mode ~name:(Printf.sprintf "%s%d" prefix i) size
        else Region.create ?mode size)
  in
  let shards =
    Array.mapi
      (fun i region ->
        Fs.mkfs ?cores ?segments ?call_mode ?relaxed_writes ?coarse_dir_locks
          ?striped_locks ?rcache ?range_locks ?alloc_caches ?log_ring
          ~shard:(i, n) ?euid ?egid region)
      regions
  in
  let t = { shards; regions } in
  if obs then note_alloc_sources ~prefix t;
  t

(** Re-attach to an already-formatted region set (after recovery the
    caller runs {!Recovery.run_all} first, exactly as with a single
    region).  Each region's superblock must agree on the set size and
    carry its own index.  [~obs:false] skips the named alloc-source
    registration (see {!mkfs}). *)
let mount ?machine ?(obs = true) ?(prefix = "region") ?call_mode
    ?relaxed_writes ?coarse_dir_locks ?striped_locks ?rcache ?range_locks
    ?alloc_caches ?euid ?egid regions =
  let n = Array.length regions in
  if n < 1 then invalid_arg "Shard.mount: need at least one region";
  (match machine with
  | Some m -> Simurgh_sim.Machine.set_regions m n
  | None -> ());
  let shards =
    Array.mapi
      (fun i region ->
        let fs =
          Fs.mount ?call_mode ?relaxed_writes ?coarse_dir_locks ?striped_locks
            ?rcache ?range_locks ?alloc_caches ?euid ?egid region
        in
        let l = Fs.layout fs in
        if l.Layout.regions <> n || l.Layout.shard_index <> i then
          invalid_arg
            (Printf.sprintf
               "Shard.mount: region %d claims shard %d/%d, expected %d/%d" i
               l.Layout.shard_index l.Layout.regions i n);
        fs)
      regions
  in
  let t = { shards; regions } in
  if obs then note_alloc_sources ~prefix t;
  t

let unmount t = Array.iter Fs.unmount t.shards

(* --- namespace operations ------------------------------------------------ *)

let create_file ?ctx t ?perm path =
  Fs.create_file ?ctx (shard_for t path) ?perm path

let mkdir ?ctx t ?perm path = Fs.mkdir ?ctx (shard_for t path) ?perm path
let unlink ?ctx t path = Fs.unlink ?ctx (shard_for t path) path
let rmdir ?ctx t path = Fs.rmdir ?ctx (shard_for t path) path
let stat ?ctx t path = Fs.stat ?ctx (shard_for t path) path
let exists ?ctx t path = Fs.exists ?ctx (shard_for t path) path
let chmod ?ctx t path perm = Fs.chmod ?ctx (shard_for t path) path perm
let utimes ?ctx t path mtime = Fs.utimes ?ctx (shard_for t path) path mtime
let truncate ?ctx t path len = Fs.truncate ?ctx (shard_for t path) path len
let symlink ?ctx t ~target path = Fs.symlink ?ctx (shard_for t path) ~target path
let readlink ?ctx t path = Fs.readlink ?ctx (shard_for t path) path

let hardlink ?ctx t ~existing path =
  let rs = route t existing and rd = route t path in
  if rs <> rd then Errno.raise_ EXDEV path;
  Fs.hardlink ?ctx t.shards.(rd) ~existing path

let readdir ?ctx t path =
  match top_component path with
  | Some _ -> Fs.readdir ?ctx (shard_for t path) path
  | None ->
      (* virtual root: the union of every shard's root listing (names
         are disjoint across shards — the hash sends each top-level
         name to exactly one region) *)
      List.sort String.compare
        (List.concat_map
           (fun fs -> Fs.readdir ?ctx fs path)
           (Array.to_list t.shards))

(* cross-region file rename: copy then unlink.  Not atomic across the
   two regions — a crash can leave both names live (never neither, the
   source is unlinked last) — but every individual step is
   crash-consistent on its own region, which is the strongest guarantee
   a two-crash-domain move can offer (same contract as mv(1) across
   mount points). *)
let copy_chunk = 64 * 1024

let copy_rename ?ctx t ~src_region ~dst_region old_path new_path =
  let fs_s = t.shards.(src_region) and fs_d = t.shards.(dst_region) in
  (* probe with readlink first: [Fs.stat] follows symlinks, and a
     symlink moves between regions by re-creation, not content copy *)
  match Fs.readlink ?ctx fs_s old_path with
  | target ->
      if Fs.exists ?ctx fs_d new_path then Fs.unlink ?ctx fs_d new_path;
      Fs.symlink ?ctx fs_d ~target new_path;
      Fs.unlink ?ctx fs_s old_path
  | exception Errno.Err (EINVAL, _) -> (
      let st = Fs.stat ?ctx fs_s old_path in
      match st.Types.kind with
      | Types.Dir | Types.Symlink ->
          (* a directory cannot move between crash domains atomically *)
          Errno.raise_ EXDEV old_path
      | Types.File ->
      let sfd = Fs.openf ?ctx fs_s Types.rdonly old_path in
      Fun.protect
        ~finally:(fun () -> Fs.close ?ctx fs_s sfd)
        (fun () ->
          let flags = { (Types.creat Types.rdwr) with Types.trunc = true } in
          let dfd = Fs.openf ?ctx fs_d flags new_path in
          Fun.protect
            ~finally:(fun () -> Fs.close ?ctx fs_d dfd)
            (fun () ->
              let pos = ref 0 in
              let continue = ref true in
              while !continue do
                let chunk =
                  Fs.pread ?ctx fs_s sfd ~pos:!pos ~len:copy_chunk
                in
                if Bytes.length chunk = 0 then continue := false
                else begin
                  ignore (Fs.pwrite ?ctx fs_d dfd ~pos:!pos chunk);
                  pos := !pos + Bytes.length chunk
                end
              done;
              Fs.fsync ?ctx fs_d dfd));
          Fs.chmod ?ctx fs_d new_path st.Types.perm;
          Fs.unlink ?ctx fs_s old_path)

let rename ?ctx t old_path new_path =
  let rs = route t old_path and rd = route t new_path in
  if rs = rd then Fs.rename ?ctx t.shards.(rs) old_path new_path
  else copy_rename ?ctx t ~src_region:rs ~dst_region:rd old_path new_path

(* --- file descriptors ----------------------------------------------------- *)

let openf ?ctx t flags path =
  let r = route t path in
  { fd_region = r; fd_inner = Fs.openf ?ctx t.shards.(r) flags path }

let close ?ctx t fd = Fs.close ?ctx t.shards.(fd.fd_region) fd.fd_inner

let pread ?ctx t fd ~pos ~len =
  Fs.pread ?ctx t.shards.(fd.fd_region) fd.fd_inner ~pos ~len

let pwrite ?ctx t fd ~pos src =
  Fs.pwrite ?ctx t.shards.(fd.fd_region) fd.fd_inner ~pos src

let append ?ctx t fd src = Fs.append ?ctx t.shards.(fd.fd_region) fd.fd_inner src

let fallocate ?ctx t fd ~len =
  Fs.fallocate ?ctx t.shards.(fd.fd_region) fd.fd_inner ~len

let fsync ?ctx t fd = Fs.fsync ?ctx t.shards.(fd.fd_region) fd.fd_inner

(* --- whole-namespace statfs ----------------------------------------------- *)

(** Aggregate [Fs.statfs] over every region; the per-region partition
    invariant (free + used + quarantined = capacity) survives the sum. *)
let statfs ?ctx t =
  let z =
    {
      Fs.block_size = Fs.block_size t.shards.(0);
      total_blocks = 0;
      free_blocks = 0;
      used_blocks = 0;
      quarantined_blocks = 0;
      live_inodes = 0;
      live_fentries = 0;
    }
  in
  Array.fold_left
    (fun acc fs ->
      let s = Fs.statfs ?ctx fs in
      {
        acc with
        Fs.total_blocks = acc.Fs.total_blocks + s.Fs.total_blocks;
        free_blocks = acc.Fs.free_blocks + s.Fs.free_blocks;
        used_blocks = acc.Fs.used_blocks + s.Fs.used_blocks;
        quarantined_blocks =
          acc.Fs.quarantined_blocks + s.Fs.quarantined_blocks;
        live_inodes = acc.Fs.live_inodes + s.Fs.live_inodes;
        live_fentries = acc.Fs.live_fentries + s.Fs.live_fentries;
      })
    z t.shards
