(** Offline fsck-style invariant checker.

    [run region] attaches to a formatted region and validates every
    structural invariant the Fig. 5 state machines are supposed to
    re-establish after recovery:

    - {b placement}: every linked entry sits in the row its name hashes
      to in that chain block;
    - {b slots}: no slot points to a non-live file entry (dangling) and
      no file entry is linked twice (duplicate), no duplicate names in a
      directory;
    - {b slabs}: no 11 (allocated-unprocessed) or 01 (mid-deallocation)
      object survives, and every live object is reachable from the root
      (no leaks);
    - {b blocks}: the allocator's free lists and the blocks reachable
      through slab segments, directory chains, extents and long-name
      spills exactly partition the managed space (no overlap, no loss);
    - {b logs/busy}: no reachable directory block has a pending rename
      log or a stuck busy flag.

    It is the oracle of the crash-image explorer ({!Explore}): after
    recovery from {e any} crash image, [run] must return [[]].  Poisoned
    lines encountered while checking are reported as [Media] violations
    instead of aborting the scan.  Read-only: the checker never mutates
    the region. *)

open Simurgh_nvmm
module Slab = Simurgh_alloc.Slab_alloc
module Balloc = Simurgh_alloc.Block_alloc

type violation =
  | Structure of string  (** superblock / traversal-level corruption *)
  | Misplaced_entry of { block : int; row : int; want : int; name : string }
      (** entry linked in a row that does not match its name hash *)
  | Dangling_slot of { block : int; row : int; slot : int; target : int }
      (** slot points at a file entry that is not live *)
  | Duplicate_slot of { fentry : int }
      (** the same file entry is linked from two slots *)
  | Duplicate_name of { dir : int; name : string }
      (** two live entries with the same name in one directory *)
  | Slab_state of { slab : string; obj : int; flags : int }
      (** allocated-unprocessed (11) or mid-deallocation (01) leftover *)
  | Leak of { slab : string; obj : int }
      (** live object unreachable from the root *)
  | Block_accounting of string
      (** free lists vs. reachable references disagree *)
  | Log_pending of { block : int; slot : int }
      (** unresolved rename log (slot 0 = legacy single entry; log-ring
          media can flag several slots of one block) *)
  | Busy_flag of { block : int; row : int }  (** stuck busy flag *)
  | Media of { line : int }  (** poisoned line hit while checking *)

let pp_violation ppf = function
  | Structure s -> Fmt.pf ppf "structure: %s" s
  | Misplaced_entry { block; row; want; name } ->
      Fmt.pf ppf "misplaced entry %S in block %#x row %d (want row %d)" name
        block row want
  | Dangling_slot { block; row; slot; target } ->
      Fmt.pf ppf "dangling slot %#x[%d.%d] -> non-live fentry %#x" block row
        slot target
  | Duplicate_slot { fentry } -> Fmt.pf ppf "fentry %#x linked twice" fentry
  | Duplicate_name { dir; name } ->
      Fmt.pf ppf "duplicate name %S in directory %#x" name dir
  | Slab_state { slab; obj; flags } ->
      Fmt.pf ppf "%s object %#x left in transient state %d" slab obj flags
  | Leak { slab; obj } -> Fmt.pf ppf "%s object %#x live but unreachable" slab obj
  | Block_accounting s -> Fmt.pf ppf "block accounting: %s" s
  | Log_pending { block; slot } ->
      Fmt.pf ppf "pending rename log in block %#x slot %d" block slot
  | Busy_flag { block; row } ->
      Fmt.pf ppf "busy flag stuck in block %#x row %d" block row
  | Media { line } -> Fmt.pf ppf "media error at line %#x while checking" line

let violation_to_string v = Fmt.str "%a" pp_violation v

(** [run region] returns every invariant violation found (empty list =
    consistent file system).  [include_leaks:false] skips the
    live-but-unreachable check — the runtime single-directory repair
    path ({!Recovery.repair_directory}) legitimately leaves objects of
    {e other} crashed directories for the next full scan. *)
let run ?(include_leaks = true) region =
  let out = ref [] in
  let add v = out := v :: !out in
  let r = region in
  match
    try Ok (Layout.attach region) with
    | Invalid_argument m -> Error m
    | Region.Media_error off -> Error (Printf.sprintf "media error at %#x" off)
  with
  | Error m ->
      [ Structure (Printf.sprintf "cannot attach: %s" m) ]
  | Ok layout ->
      let fentry_slab = layout.Layout.fentry_slab in
      let inode_slab = layout.Layout.inode_slab in
      let balloc = layout.Layout.balloc in

      (* --- namespace traversal -------------------------------------- *)
      let reach_fentry = Hashtbl.create 256 in
      let reach_inode = Hashtbl.create 256 in
      let reach_dirhead = Hashtbl.create 64 in
      let rec walk_dir head =
        if head <> 0 && not (Hashtbl.mem reach_dirhead head) then begin
          Hashtbl.replace reach_dirhead head ();
          let names = Hashtbl.create 16 in
          try
            Dirblock.iter_chain r head (fun _ b ->
                (* ring emptiness: every log slot — the legacy single
                   entry or each of the ring's — must be clear *)
                List.iter
                  (fun (slot, _) -> add (Log_pending { block = b; slot }))
                  (Dirblock.Log.pending_slots r b);
                if b = head then
                  for row = 0 to Dirblock.first_rows - 1 do
                    if Dirblock.busy r b row then
                      add (Busy_flag { block = b; row })
                  done);
            Dirblock.iter_entries r head (fun b row s p ->
                try
                  if not (Slab.is_live fentry_slab p) then
                    add (Dangling_slot { block = b; row; slot = s; target = p })
                  else begin
                    let name = Fentry.name r p in
                    let want = Name_hash.hash name mod Dirblock.rows r b in
                    if want <> row then
                      add (Misplaced_entry { block = b; row; want; name });
                    if Hashtbl.mem names name then
                      add (Duplicate_name { dir = head; name })
                    else Hashtbl.replace names name ();
                    if Hashtbl.mem reach_fentry p then
                      add (Duplicate_slot { fentry = p })
                    else begin
                      Hashtbl.replace reach_fentry p ();
                      Hashtbl.replace reach_inode (Fentry.target r p) ();
                      if Fentry.is_dir r p then walk_dir (Fentry.dirblock r p)
                    end
                  end
                with Region.Media_error off ->
                  add (Media { line = off / Region.line_size }))
          with Region.Media_error off ->
            add (Media { line = off / Region.line_size })
        end
      in
      let root = Layout.root_fentry layout in
      Hashtbl.replace reach_fentry root ();
      Hashtbl.replace reach_inode (Fentry.target r root) ();
      (try walk_dir (Fentry.dirblock r root)
       with Region.Media_error off ->
         add (Media { line = off / Region.line_size }));

      (* --- slab flag consistency ------------------------------------ *)
      let scan_slab name slab reach =
        let slot_bytes = Slab.obj_header + Slab.obj_size slab in
        Slab.iter_objects slab (fun p flags ->
            if Region.range_poisoned r (p - Slab.obj_header) slot_bytes then
              (* quarantined in place by recovery: neither state nor
                 reachability can be judged for a slot under poison *)
              ()
            else
            if flags = Slab.flag_valid lor Slab.flag_dirty
               || flags = Slab.flag_dirty
            then add (Slab_state { slab = name; obj = p; flags })
            else if
              include_leaks && flags = Slab.flag_valid
              && not (Hashtbl.mem reach p)
            then add (Leak { slab = name; obj = p }))
      in
      scan_slab "fentry" fentry_slab reach_fentry;
      scan_slab "inode" inode_slab reach_inode;

      (* --- block accounting ----------------------------------------- *)
      (try
         let bs = Balloc.block_size balloc in
         let nblocks = Balloc.total_blocks balloc in
         let base = Balloc.base balloc in
         (* 0 = unaccounted, 1 = reachable-used, 2 = free-listed *)
         let state = Bytes.make nblocks '\000' in
         let claim tag what addr bytes =
           let first = (addr - base) / bs
           and last = (addr + bytes - 1 - base) / bs in
           if first < 0 || last >= nblocks then
             add
               (Block_accounting
                  (Printf.sprintf "%s range %#x+%d escapes managed space" what
                     addr bytes))
           else
             for b = first to last do
               let prev = Char.code (Bytes.get state b) in
               if prev = 0 then Bytes.set state b (Char.chr tag)
               else
                 add
                   (Block_accounting
                      (Printf.sprintf
                         "block %d claimed twice (%s vs state %d)" b what prev))
             done
         in
         let used = claim 1 and freed = claim 2 in
         Slab.iter_segments inode_slab (fun seg ->
             used "inode slab segment" seg
               (Slab.blocks_per_segment inode_slab * bs));
         Slab.iter_segments fentry_slab (fun seg ->
             used "fentry slab segment" seg
               (Slab.blocks_per_segment fentry_slab * bs));
         Hashtbl.iter
           (fun head () ->
             try
               Dirblock.iter_chain r head (fun _ b ->
                   used "directory block" b (Dirblock.size_of r b))
             with Region.Media_error off ->
               add (Media { line = off / Region.line_size }))
           reach_dirhead;
         Hashtbl.iter
           (fun inode () ->
             try
               Inode.iter_extents r inode (fun addr blocks ->
                   used "extent" addr (blocks * bs));
               let rec ov b =
                 if b <> 0 then begin
                   used "extent overflow block" b Inode.overflow_bytes;
                   ov (Region.read_u62 r (Inode.ov_next b))
                 end
               in
               ov (Region.read_u62 r (Inode.f_overflow inode))
             with Region.Media_error off ->
               add (Media { line = off / Region.line_size }))
           reach_inode;
         Hashtbl.iter
           (fun fe () ->
             try
               match Fentry.spill r fe with
               | Some (addr, len) -> used "long-name spill" addr len
               | None -> ()
             with Region.Media_error off ->
               add (Media { line = off / Region.line_size }))
           reach_fentry;
         Balloc.iter_free_ranges balloc (fun addr count ->
             freed "free list" addr (count * bs));
         (match Balloc.check_invariants balloc with
         | Ok () -> ()
         | Error m -> add (Block_accounting m));
         if include_leaks then begin
           let lost = ref 0 in
           Bytes.iteri
             (fun b c ->
               (* unaccounted blocks under poison are recovery's
                  quarantine, not a leak *)
               if
                 c = '\000'
                 && not (Region.range_poisoned r (base + (b * bs)) bs)
               then incr lost)
             state;
           if !lost > 0 then
             add
               (Block_accounting
                  (Printf.sprintf
                     "%d blocks neither free-listed nor reachable" !lost))
         end
       with Region.Media_error off ->
         add (Media { line = off / Region.line_size }));
      List.rev !out

(** Check every region of a sharded namespace; each violation is tagged
    with the index of the region it was found on. *)
let run_all ?include_leaks regions =
  List.concat
    (List.mapi
       (fun i region ->
         List.map (fun v -> (i, v)) (run ?include_leaks region))
       (Array.to_list regions))
