(** Directory hash blocks (paper Section 4.3, "Directory blocks" and
    Fig. 4).

    A directory is a chain of hash blocks linked through a [next] field.
    A name hashes to one row per block; the row's slots across the chain
    hold persistent pointers to file entries.  When a row is full in
    every block, the creating process appends a new hash block to the
    chain (Fig. 5a).  Chain blocks grow geometrically (each appended
    block doubles the row count, up to a cap), which keeps every
    operation logarithmic in the directory size — the paper's "linear
    hash map" blocks are unspecified in size; geometric growth preserves
    their O(1)-ish behaviour at millions of entries and is documented as
    a deviation in DESIGN.md.

    The *first* block of a directory carries a busy flag per row and one
    log entry used by renames.  Slot updates are single 8-byte stores, so
    a torn update is impossible; crash recovery relies on the file-entry
    valid/dirty bits plus the row/log flags (Fig. 5).

    Block layout:
    {v
      +0    next pptr u62
      +8    rows u32, ring u32
      +16   busy flags, 1 byte per lock row   (64 bytes; first block only)
      +80   log entry                          (40 bytes; first block only)
      +120  ring log slots: ring x 48 bytes    (first block only; ring > 0)
      +120+ring*48  slots: rows x 8 x 8 bytes
    v}

    The [ring] word (always zero before the log-ring feature existed)
    makes each block self-describing: when non-zero, the legacy +80 log
    entry is unused and the block instead carries a ring of [ring]
    48-byte log slots so that concurrent renames in one directory each
    run the Fig. 5 protocol in their own slot.  A ring slot is the
    legacy 40-byte entry plus an epoch word at +40 that orders pending
    slots for recovery. *)

open Simurgh_nvmm

let first_rows = 64
let max_rows = 65536
let slots_per_row = 8
let header = 120
let ring_slot_bytes = 48

let size_for_rows ?(ring = 0) rows =
  header + (ring * ring_slot_bytes) + (rows * slots_per_row * 8)

let f_next b = b
let f_rows b = b + 8
let f_ring b = b + 12
let f_busy b row = b + 16 + row
let f_log b = b + 80

let next r b = Region.read_u62 r (f_next b)

let set_next r b v =
  Region.write_u62 r (f_next b) v;
  Region.persist r (f_next b) 8

let rows r b = Region.read_u32 r (f_rows b)

(** Number of ring log slots in this block; 0 means the legacy single
    +80 log entry. *)
let ring r b = Region.read_u32 r (f_ring b)

(** On-media size of this block (ring-aware). *)
let size_of r b = size_for_rows ~ring:(ring r b) (rows r b)

let f_slot r b row s =
  b + header
  + (ring r b * ring_slot_bytes)
  + (((row * slots_per_row) + s) * 8)

let slot r b row s = Region.read_u62 r (f_slot r b row s)

(* A row is [slots_per_row] adjacent u62 slots — exactly one cache line.
   Row scans batch-load it with a single region round into [dst]
   (reused across chain hops) and pick slots out of the DRAM copy. *)
let row_bytes = slots_per_row * 8

let load_row r b row dst =
  Region.read_bytes_into r (f_slot r b row 0) dst ~pos:0 ~len:row_bytes

let slot_of_row dst s = Int64.to_int (Bytes.get_int64_le dst (s * 8))

let set_slot r b row s v =
  Region.write_u62 r (f_slot r b row s) v;
  Region.persist r (f_slot r b row s) 8

(* Busy (lock) rows always index the first block's 64 rows. *)
let lock_row_of_hash h = h mod first_rows
let lock_row_of_name n = lock_row_of_hash (Name_hash.hash n)

let busy r b row = Region.read_u8 r (f_busy b row) <> 0

let set_busy r b row v =
  Region.write_u8 r (f_busy b row) (if v then 1 else 0);
  Region.persist r (f_busy b row) 1

(** Initialize a freshly allocated block of [rows] rows.  [ring] ring
    log slots (first blocks of log-ring directories only; 0 keeps the
    legacy single +80 log entry and a bit-identical layout). *)
let init r b ~rows:nrows ?(ring = 0) () =
  Region.zero r b (size_for_rows ~ring nrows);
  Region.write_u32 r (f_rows b) nrows;
  if ring > 0 then Region.write_u32 r (f_ring b) ring;
  Region.persist r b (header + (ring * ring_slot_bytes))

(* --- log entry for renames --------------------------------------------- *)

module Log = struct
  (* A log slot is the Fig. 5 rename log: state u8, kind u8, then four
     u62 payload words.  Legacy blocks (ring = 0) have exactly one slot,
     at +80, with no epoch word.  Ring blocks have [ring] slots of
     [ring_slot_bytes] each starting at +120, each ending in an epoch
     word at +40 that totally orders pending slots for recovery. *)
  let base r b slot =
    if ring r b = 0 then f_log b else b + header + (slot * ring_slot_bytes)

  let f_state o = o
  let f_kind o = o + 1
  let f_src o = o + 8
  let f_dst o = o + 16
  let f_fentry o = o + 24
  let f_newentry o = o + 32
  let f_epoch o = o + 40

  let kind_cross_rename = 1

  (** Number of log slots in this block (1 for legacy blocks). *)
  let nslots r b =
    let n = ring r b in
    if n = 0 then 1 else n

  let pending r b ~slot = Region.read_u8 r (f_state (base r b slot)) <> 0

  (** Epoch stamp of [slot]; legacy slots read as epoch 0. *)
  let epoch r b ~slot =
    if ring r b = 0 then 0 else Region.read_u62 r (f_epoch (base r b slot))

  (** True when any log slot in this block is pending. *)
  let any_pending r b =
    let n = nslots r b in
    let rec go s = s < n && (pending r b ~slot:s || go (s + 1)) in
    go 0

  (** All pending slots of this block as [(slot, epoch)], unordered. *)
  let pending_slots r b =
    let n = nslots r b in
    let acc = ref [] in
    for s = n - 1 downto 0 do
      if pending r b ~slot:s then acc := (s, epoch r b ~slot:s) :: !acc
    done;
    !acc

  let write r b ~slot ~epoch ~src ~dst ~fentry ~new_entry =
    let o = base r b slot in
    let is_ring = ring r b > 0 in
    Region.write_u8 r (f_kind o) kind_cross_rename;
    Region.write_u62 r (f_src o) src;
    Region.write_u62 r (f_dst o) dst;
    Region.write_u62 r (f_fentry o) fentry;
    Region.write_u62 r (f_newentry o) new_entry;
    if is_ring then Region.write_u62 r (f_epoch o) epoch;
    Region.persist r o (if is_ring then ring_slot_bytes else 40);
    (* the state bit is set only once the payload is durable *)
    Region.write_u8 r (f_state o) 1;
    Region.persist r (f_state o) 1

  let read r b ~slot =
    let o = base r b slot in
    ( Region.read_u62 r (f_src o),
      Region.read_u62 r (f_dst o),
      Region.read_u62 r (f_fentry o),
      Region.read_u62 r (f_newentry o) )

  let clear r b ~slot =
    let o = base r b slot in
    Region.write_u8 r (f_state o) 0;
    Region.persist r (f_state o) 1
end

(* --- chain traversal ----------------------------------------------------- *)

(** Iterate the chain starting at [head]: [f depth block]. *)
let iter_chain r head f =
  let rec go depth b =
    if b <> 0 then begin
      f depth b;
      go (depth + 1) (next r b)
    end
  in
  go 0 head

let chain_length r head =
  let n = ref 0 in
  iter_chain r head (fun _ _ -> incr n);
  !n

(** Find the file entry named [name]: checks one row per block along the
    chain.  Returns (block, row, slot, fentry) and the number of blocks
    visited (for charging). *)
let find r ~head ~name =
  let h = Name_hash.hash name in
  let rowbuf = Bytes.create row_bytes in
  let rec go hops b =
    if b = 0 then (None, hops)
    else begin
      let row = h mod rows r b in
      load_row r b row rowbuf;
      let found = ref None in
      let s = ref 0 in
      while !found = None && !s < slots_per_row do
        let p = slot_of_row rowbuf !s in
        if p <> 0 && Fentry.name_equals r p name then
          found := Some (b, row, !s, p);
        incr s
      done;
      match !found with
      | Some _ as x -> (x, hops + 1)
      | None -> go (hops + 1) (next r b)
    end
  in
  go 0 head

(** Find the first free slot for [hash] along the chain.  Returns
    ((block, row, slot) option, hops, last_block). *)
let find_free_slot r ~head ~hash =
  let rowbuf = Bytes.create row_bytes in
  let rec go hops b last =
    if b = 0 then (None, hops, last)
    else begin
      let row = hash mod rows r b in
      load_row r b row rowbuf;
      let free = ref None in
      let s = ref 0 in
      while !free = None && !s < slots_per_row do
        if slot_of_row rowbuf !s = 0 then free := Some (b, row, !s);
        incr s
      done;
      match !free with
      | Some _ as x -> (x, hops + 1, b)
      | None -> go (hops + 1) (next r b) b
    end
  in
  go 0 head head

(** Iterate every non-null slot in the chain: [f block row slot fentry]. *)
let iter_entries r head f =
  let rowbuf = Bytes.create row_bytes in
  iter_chain r head (fun _ b ->
      let nrows = rows r b in
      for row = 0 to nrows - 1 do
        load_row r b row rowbuf;
        for s = 0 to slots_per_row - 1 do
          let p = slot_of_row rowbuf s in
          if p <> 0 then f b row s p
        done
      done)

(** Number of live entries in the chain. *)
let count_entries r head =
  let n = ref 0 in
  iter_entries r head (fun _ _ _ _ -> incr n);
  !n

(** True when the block has no used slot (candidate for freeing,
    Fig. 5b step 6). *)
let block_empty r b =
  let used = ref false in
  let nrows = rows r b in
  let rowbuf = Bytes.create row_bytes in
  (try
     for row = 0 to nrows - 1 do
       load_row r b row rowbuf;
       for s = 0 to slots_per_row - 1 do
         if slot_of_row rowbuf s <> 0 then begin
           used := true;
           raise Exit
         end
       done
     done
   with Exit -> ());
  not !used
