(** Simurgh-side DRAM resolve cache.

    Kernel file systems resolve shared path prefixes through the dcache
    (Fig. 7e/7f); seed Simurgh resolved every component by scanning
    directory hash rows in NVMM.  This cache short-circuits that scan:
    a hit maps (parent directory head, component) straight to the file
    entry with one DRAM hash probe and {e no} per-dentry lockref
    traffic — which is exactly why the user-level cache scales where the
    kernel one collapses.

    Consistency is generation-based.  Every directory (keyed by its
    first hash block, the same identity the lock registry uses) has a
    volatile generation number; an entry records the generation seen at
    insert time and is valid only while it still matches.  Name-level
    mutations (unlink, rename) both remove the exact key and leave the
    sibling entries alone; directory-level teardown (rmdir, recovery)
    bumps the generation, which kills every cached child at once — and,
    because generations are never reset, also protects against a freed
    first-block address being reused by a new directory.

    The table lives in shared DRAM (it travels with {!Fs.mount}'s shared
    state), so an unlink in one process invalidates the entry for all of
    them, matching the paper's shared-DRAM coordination model.  All
    mutations happen inside FS operations, which are atomic in the
    virtual-time engine; the structure itself is host-side and charges
    nothing — the cost model charge for a hit lives at the call site. *)

type entry = {
  fe : int;  (** file-entry pptr *)
  gen : int;  (** parent generation at insert time *)
}

type t = {
  table : (int * string, entry) Hashtbl.t;
      (** (parent first hash block, component) -> entry *)
  gens : (int, int) Hashtbl.t;  (** dir head -> generation (sticky) *)
  capacity : int;
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
  mutable invalidations : int;
}

let create ?(capacity = 1 lsl 16) () =
  {
    table = Hashtbl.create 4096;
    gens = Hashtbl.create 256;
    capacity;
    hits = 0;
    misses = 0;
    inserts = 0;
    invalidations = 0;
  }

let generation t dir =
  match Hashtbl.find_opt t.gens dir with Some g -> g | None -> 0

let lookup t ~dir name =
  match Hashtbl.find_opt t.table (dir, name) with
  | Some e when e.gen = generation t dir ->
      t.hits <- t.hits + 1;
      Some e.fe
  | Some _ ->
      (* stale generation: reap lazily *)
      Hashtbl.remove t.table (dir, name);
      t.misses <- t.misses + 1;
      None
  | None ->
      t.misses <- t.misses + 1;
      None

let insert t ~dir name fe =
  (* cheap epoch flush instead of LRU: the sim working sets are far below
     any realistic capacity, so hitting the cap at all means a scan-like
     workload where dropping everything is the right call anyway *)
  if Hashtbl.length t.table >= t.capacity then Hashtbl.reset t.table;
  t.inserts <- t.inserts + 1;
  Hashtbl.replace t.table (dir, name) { fe; gen = generation t dir }

(** Name-level invalidation: the entry for [name] under [dir] is gone
    (unlink, rename source, replaced rename destination). *)
let invalidate t ~dir name =
  if Hashtbl.mem t.table (dir, name) then begin
    Hashtbl.remove t.table (dir, name);
    t.invalidations <- t.invalidations + 1
  end

(** Directory-level invalidation: every cached child of [dir] dies.
    Generations are bumped, never reset, so a later directory reusing
    the same first-block address can never validate old entries. *)
let invalidate_dir t dir =
  Hashtbl.replace t.gens dir (generation t dir + 1);
  t.invalidations <- t.invalidations + 1

let clear t =
  (* volatile state rebuild (recovery): entries vanish, generations stay
     sticky so nothing stale can ever revalidate *)
  Hashtbl.reset t.table

type stats = { hits : int; misses : int; inserts : int; invalidations : int }

let stats (t : t) : stats =
  {
    hits = t.hits;
    misses = t.misses;
    inserts = t.inserts;
    invalidations = t.invalidations;
  }
