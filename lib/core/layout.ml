(** On-region layout: superblock and the placement of the allocators
    (paper Fig. 3).

    {v
      0        superblock (4 KiB)
      4096     block-allocator header
      ...      slab headers (inode / file-entry / directory-block)
      data     managed block space up to the end of the region
    v} *)

open Simurgh_nvmm

let magic = 0x51309 (* "SIMURGH" would not fit a u32 tag; this does *)
let version = 1
let superblock_size = 4096
let block_size = 256
let segments_per_core = 2

(* superblock fields *)
let f_magic = 0
let f_version = 4
let f_clean = 8 (* clean shutdown marker *)
let f_region_size = 16
let f_root_fentry = 24 (* pptr to the root directory's file entry *)
let f_balloc = 32 (* offset of the block-allocator header *)
let f_inode_slab = 40
let f_fentry_slab = 48
let f_log_ring = 56 (* rename-log ring slots per directory; 0 = legacy *)
let f_regions = 60 (* region count of the sharded namespace; 0 = legacy 1 *)
let f_shard = 64 (* this region's shard index within [f_regions] *)
let f_secure = 68 (* security plane: per-fentry owner words; 0 = legacy *)

type t = {
  region : Region.t;
  balloc : Simurgh_alloc.Block_alloc.t;
  inode_slab : Simurgh_alloc.Slab_alloc.t;
  fentry_slab : Simurgh_alloc.Slab_alloc.t;
  log_ring : int;
      (** Format-time rename-log ring size: each directory's first hash
          block carries this many 48-byte log slots instead of the
          single legacy +80 entry.  0 (the default, and the value every
          pre-ring region reads back) keeps the on-media layout
          bit-identical to the paper's single-slot design. *)
  regions : int;
      (** Region count of the multi-region (sharded) namespace this
          region belongs to.  Legacy media reads back 0 and is treated
          as 1; the superblock words are only written when sharded, so
          single-region media stays bit-identical. *)
  shard_index : int;  (** this region's index within [regions] *)
  secure : bool;
      (** Security plane formatted in: file entries carry the packed
          owner/mode word at +72 (80-byte slab objects) and the protected
          entry points enforce per-user permissions against it.  The
          superblock word at [f_secure] is only written when on, so
          legacy media stays bit-identical with the flag off. *)
}

let root_fentry t = Region.read_u62 t.region f_root_fentry
let set_root_fentry t p =
  Region.write_u62 t.region f_root_fentry p;
  Region.persist t.region f_root_fentry 8

let clean_shutdown t = Region.read_u8 t.region f_clean <> 0

(* Region-level variant: lets a mounter consult the flag before paying
   for [attach] (the clean-shutdown fast path in [Recovery.mount_auto]). *)
let clean_shutdown_of_region region = Region.read_u8 region f_clean <> 0

let set_clean_shutdown t v =
  Region.write_u8 t.region f_clean (if v then 1 else 0);
  Region.persist t.region f_clean 1

let format ?segments ?(log_ring = 0) ?(shard = (0, 1)) ?(secure = false) region
    ~cores =
  let size = Region.size region in
  if size < 1 lsl 20 then invalid_arg "Layout.format: region too small";
  if log_ring < 0 || log_ring > 255 then
    invalid_arg "Layout.format: log_ring out of range";
  let shard_index, regions = shard in
  if regions < 1 || shard_index < 0 || shard_index >= regions then
    invalid_arg "Layout.format: bad shard index/region count";
  Region.write_u32 region f_magic magic;
  Region.write_u32 region f_version version;
  Region.write_u62 region f_region_size size;
  Region.write_u62 region f_root_fentry 0;
  Region.write_u32 region f_log_ring log_ring;
  if regions > 1 then begin
    (* only sharded media carries the words: a single-region format
       leaves offsets 60/64 untouched (zero), so legacy images stay
       bit-identical down to the store counters *)
    Region.write_u32 region f_regions regions;
    Region.write_u32 region f_shard shard_index
  end;
  (* like the shard words: only secure media carries the flag, so a
     default format leaves offset 68 untouched and stays bit-identical *)
  if secure then Region.write_u32 region f_secure 1;
  let segments =
    match segments with
    | Some s -> max 1 s
    | None -> max 2 (segments_per_core * cores)
  in
  let balloc_off = superblock_size in
  let balloc_hdr = Simurgh_alloc.Block_alloc.header_size ~segments in
  let inode_slab_off = balloc_off + balloc_hdr in
  let fentry_slab_off = inode_slab_off + Simurgh_alloc.Slab_alloc.header_size in
  let data_base =
    (* align managed space to the block size *)
    let b = fentry_slab_off + Simurgh_alloc.Slab_alloc.header_size in
    (b + block_size - 1) / block_size * block_size
  in
  let blocks = (size - data_base) / block_size in
  Region.write_u62 region f_balloc balloc_off;
  Region.write_u62 region f_inode_slab inode_slab_off;
  Region.write_u62 region f_fentry_slab fentry_slab_off;
  let balloc =
    Simurgh_alloc.Block_alloc.format region ~off:balloc_off ~base:data_base
      ~blocks ~block_size ~segments
  in
  let inode_slab =
    Simurgh_alloc.Slab_alloc.format region ~off:inode_slab_off
      ~obj_size:Inode.payload_size ~block_alloc:balloc ~objs_per_seg:256
  in
  let fentry_obj_size =
    if secure then Fentry.secure_payload_size else Fentry.payload_size
  in
  let fentry_slab =
    Simurgh_alloc.Slab_alloc.format region ~off:fentry_slab_off
      ~obj_size:fentry_obj_size ~block_alloc:balloc ~objs_per_seg:256
  in
  Region.write_u8 region f_clean 1;
  Region.persist region 0 superblock_size;
  {
    region;
    balloc;
    inode_slab;
    fentry_slab;
    log_ring;
    regions;
    shard_index;
    secure;
  }

let attach region =
  if Region.read_u32 region f_magic <> magic then
    invalid_arg "Layout.attach: not a Simurgh region";
  if Region.read_u32 region f_version <> version then
    invalid_arg "Layout.attach: version mismatch";
  let balloc_off = Region.read_u62 region f_balloc in
  let balloc = Simurgh_alloc.Block_alloc.attach region ~off:balloc_off in
  let slab off =
    Simurgh_alloc.Slab_alloc.attach region ~off ~block_alloc:balloc
  in
  let t =
    {
      region;
      balloc;
      inode_slab = slab (Region.read_u62 region f_inode_slab);
      fentry_slab = slab (Region.read_u62 region f_fentry_slab);
      log_ring = Region.read_u32 region f_log_ring;
      regions = (match Region.read_u32 region f_regions with 0 -> 1 | n -> n);
      shard_index = Region.read_u32 region f_shard;
      secure = Region.read_u32 region f_secure <> 0;
    }
  in
  Simurgh_alloc.Slab_alloc.rebuild_cache t.inode_slab;
  Simurgh_alloc.Slab_alloc.rebuild_cache t.fentry_slab;
  t
