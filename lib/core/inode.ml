(** Persistent inode (paper Section 4.3, "Inode").

    There are no inode numbers: an inode's identity is its 64-bit
    persistent pointer (the slab payload offset), so no number-to-location
    index is needed.  File data is mapped by four inline extents plus a
    chain of overflow extent blocks.

    Layout (payload, 8-aligned offsets):
    {v
      +0   mode   u32   (type bits lor permission bits)
      +4   uid    u32
      +8   gid    u32
      +12  nlink  u32
      +16  size   u62
      +24  mtime  u62
      +32  ctime  u62
      +40  rsvd   u62
      +48  extents[4]          (addr u62, blocks u32, pad u32) x 4 = 64
      +112 overflow pptr u62   (chain of extent blocks)
      +120 end
    v} *)

open Simurgh_nvmm

let payload_size = 120
let inline_extents = 4

(* mode type bits (upper nibble) *)
let type_file = 0x1000
let type_dir = 0x2000
let type_symlink = 0x3000
let type_mask = 0xf000
let perm_mask = 0o777

type kind = File | Dir | Symlink

let kind_of_mode m =
  match m land type_mask with
  | x when x = type_dir -> Dir
  | x when x = type_symlink -> Symlink
  | _ -> File

let mode_of_kind ?(perm = 0o644) = function
  | File -> type_file lor (perm land perm_mask)
  | Dir -> type_dir lor (perm land perm_mask)
  | Symlink -> type_symlink lor (perm land perm_mask)

type t = int (* persistent pointer = payload address *)

let f_mode i = i
let f_uid i = i + 4
let f_gid i = i + 8
let f_nlink i = i + 12
let f_size i = i + 16
let f_mtime i = i + 24
let f_ctime i = i + 32
let f_extent i k = i + 48 + (k * 16)
let f_overflow i = i + 112

let mode r i = Region.read_u32 r (f_mode i)
let uid r i = Region.read_u32 r (f_uid i)
let gid r i = Region.read_u32 r (f_gid i)
let nlink r i = Region.read_u32 r (f_nlink i)
let size r i = Region.read_u62 r (f_size i)
let mtime r i = Region.read_u62 r (f_mtime i)
let ctime r i = Region.read_u62 r (f_ctime i)
let kind r i = kind_of_mode (mode r i)
let perm r i = mode r i land perm_mask

let set_mode r i v = Region.write_u32 r (f_mode i) v
let set_nlink r i v = Region.write_u32 r (f_nlink i) v
let set_size r i v = Region.write_u62 r (f_size i) v
let set_mtime r i v = Region.write_u62 r (f_mtime i) v

(** Initialize a freshly allocated inode and persist it (Fig. 5a step 1:
    "the inode is created and persisted"). *)
let init r i ~mode:m ~uid:u ~gid:g ~now =
  Region.write_u32 r (f_mode i) m;
  Region.write_u32 r (f_uid i) u;
  Region.write_u32 r (f_gid i) g;
  Region.write_u32 r (f_nlink i) 1;
  Region.write_u62 r (f_size i) 0;
  Region.write_u62 r (f_mtime i) now;
  Region.write_u62 r (f_ctime i) now;
  for k = 0 to inline_extents - 1 do
    Region.write_u62 r (f_extent i k) 0;
    Region.write_u62 r (f_extent i k + 8) 0
  done;
  Region.write_u62 r (f_overflow i) 0;
  Region.persist r i payload_size

let read_extent r i k =
  let addr = Region.read_u62 r (f_extent i k) in
  let blocks = Region.read_u32 r (f_extent i k + 8) in
  (addr, blocks)

let write_extent r i k ~addr ~blocks =
  Region.write_u62 r (f_extent i k) addr;
  Region.write_u32 r (f_extent i k + 8) blocks;
  Region.persist r (f_extent i k) 16

(** Batched-writeback variant: store + clwb only, no fence.  A caller
    staging several slots issues one [Region.sfence] for the whole run
    instead of paying a persist barrier per slot. *)
let stage_extent r i k ~addr ~blocks =
  Region.write_u62 r (f_extent i k) addr;
  Region.write_u32 r (f_extent i k + 8) blocks;
  Region.clwb r (f_extent i k) 16

(* Overflow extent blocks hold [overflow_entries] extents plus a next
   pointer; they are plain block-allocator blocks. *)
let overflow_entries = 15
let overflow_bytes = 8 + (overflow_entries * 16) (* fits a 256-byte block *)

let ov_next b = b
let ov_extent b k = b + 8 + (k * 16)

let read_ov_extent r b k =
  (Region.read_u62 r (ov_extent b k), Region.read_u32 r (ov_extent b k + 8))

let write_ov_extent r b k ~addr ~blocks =
  Region.write_u62 r (ov_extent b k) addr;
  Region.write_u32 r (ov_extent b k + 8) blocks;
  Region.persist r (ov_extent b k) 16

(** Fence-free overflow-slot store (see {!stage_extent}). *)
let stage_ov_extent r b k ~addr ~blocks =
  Region.write_u62 r (ov_extent b k) addr;
  Region.write_u32 r (ov_extent b k + 8) blocks;
  Region.clwb r (ov_extent b k) 16

(** Iterate all extents of [i] in file order: [f addr blocks]. *)
let iter_extents r i f =
  for k = 0 to inline_extents - 1 do
    let addr, blocks = read_extent r i k in
    if addr <> 0 then f addr blocks
  done;
  let rec chain b =
    if b <> 0 then begin
      for k = 0 to overflow_entries - 1 do
        let addr, blocks = read_ov_extent r b k in
        if addr <> 0 then f addr blocks
      done;
      chain (Region.read_u62 r (ov_next b))
    end
  in
  chain (Region.read_u62 r (f_overflow i))

(** Count of extents (diagnostics / recovery accounting). *)
let extent_count r i =
  let n = ref 0 in
  iter_extents r i (fun _ _ -> incr n);
  !n
