(** Secure mode: the Simurgh library behind protected functions
    (paper Section 3.2, Fig. 2).

    Since the security plane moved into {!Fs} itself, every public FS
    operation already runs between jmpp and pret on the mount's own
    protected universe (one entry slot per operation, sealed at mount
    time).  What this module adds on top is the *address-space* half of
    the story: it maps the NVMM region as kernel pages in the mount's
    page table and installs a region guard, so application code touching
    FS bytes while the CPU is in user mode faults — the only way in is
    through the entry points.  The [t] below is a thin capability
    wrapping the mount with the tenant's credentials bound. *)

open Simurgh_hw

type t = { fs : Fs.t; cpu : Cpu.t; univ : Protected.t }

(** Map the FS region pages as kernel pages in the application's page
    table and guard the region: any user-mode access to FS bytes faults
    exactly like a store to a supervisor page would. *)
let protect_region cpu region =
  let pages =
    (Simurgh_nvmm.Region.size region + Page_table.page_size - 1)
    / Page_table.page_size
  in
  (* the region occupies a dedicated range; page-table entries are
     bookkeeping only (page numbers 0x100000+) *)
  let base_page = 0x100000 in
  for p = base_page to base_page + pages - 1 do
    Page_table.map cpu.Cpu.page_table ~page:p ~kernel:true ~writable:true
  done;
  Simurgh_nvmm.Region.set_guard region (fun ~write ->
      if Cpu.mode cpu <> Privilege.Kernel then
        Fault.raise_ (Kernel_page_access { page = base_page; write }))

(** Bootstrap (Fig. 2 steps 1-5 from the application's point of view):
    bind the tenant's credentials to the mount, reuse the mount's
    protected universe — registered and sealed when the FS was mounted —
    and guard the region so only jmpp-entered code can reach it. *)
let bootstrap ?(euid = 1000) ?(egid = 1000) fs =
  let cpu = Fs.protected_cpu fs in
  let univ = Fs.protected_universe fs in
  Fs.set_creds fs ~euid ~egid;
  protect_region cpu (Fs.region fs);
  { fs; cpu; univ }

(** Drop the region guard (process teardown: the dying process's
    mappings disappear with it).  Crash simulation calls this before
    handing the media to recovery — a fresh process has no guard. *)
let shutdown t = Simurgh_nvmm.Region.clear_guard (Fs.region t.fs)

(* The libc-style API: each call lands on the mount's protected entry
   point for that operation (jmpp / body / pret inside Fs). *)
let create t ?(perm = 0o644) path = Fs.create_file t.fs ~perm path
let mkdir t ?(perm = 0o755) path = Fs.mkdir t.fs ~perm path
let unlink t path = Fs.unlink t.fs path
let rmdir t path = Fs.rmdir t.fs path
let rename t a b = Fs.rename t.fs a b
let stat t path = Fs.stat t.fs path
let openf t flags path = Fs.openf t.fs flags path
let close t fd = Fs.close t.fs fd
let pread t fd ~pos ~len = Fs.pread t.fs fd ~pos ~len
let pwrite t fd ~pos data = Fs.pwrite t.fs fd ~pos data
let append t fd data = Fs.append t.fs fd data
let readdir t path = Fs.readdir t.fs path
let cpu t = t.cpu
let universe t = t.univ
let fs t = t.fs
