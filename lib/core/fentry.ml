(** File entry (paper Fig. 4): the named link between a directory row and
    an inode or a child directory block chain.

    Layout (payload):
    {v
      +0   flags    u8   (bit0 dir, bit1 symlink, bit2 long name)
      +1   name_len u8
      +2   name     bytes[46]       (inline short names)
      +48  target   pptr u62        (inode; for dirs: also dir block head)
      +56  dirblock pptr u62        (directories: first hash block)
      +64  longname pptr u62        (spill block for names > 46 bytes)
      +72  end                      (legacy media)
      +72  owner    u62             (secure media only: uid/gid/mode word)
      +80  end                      (secure media)
    v}

    Directories carry both their inode (ownership, permissions, times)
    and the head of their hash-block chain.

    Volumes formatted with the security plane enabled ([Layout.format
    ~secure:true]) widen the payload by one word: a packed owner/mode
    word ([uid:24 | gid:24 | mode:12], bits 60..0 of a u62) checked by
    the protected entry points on every lookup without touching the
    inode line.  Legacy media keeps the 72-byte payload bit-identical. *)

open Simurgh_nvmm

let payload_size = 72
let secure_payload_size = 80
let inline_name_max = 46
let name_max = 255

let fl_dir = 0x1
let fl_symlink = 0x2
let fl_longname = 0x4

type t = int (* persistent pointer to the payload *)

let f_flags e = e
let f_name_len e = e + 1
let f_name e = e + 2
let f_target e = e + 48
let f_dirblock e = e + 56
let f_longname e = e + 64
let f_owner e = e + 72 (* secure media only *)

let flags r e = Region.read_u8 r (f_flags e)
let is_dir r e = flags r e land fl_dir <> 0
let is_symlink r e = flags r e land fl_symlink <> 0
let target r e = Region.read_u62 r (f_target e)
let dirblock r e = Region.read_u62 r (f_dirblock e)
let set_target r e v =
  Region.write_u62 r (f_target e) v;
  Region.persist r (f_target e) 8

let set_dirblock r e v =
  Region.write_u62 r (f_dirblock e) v;
  Region.persist r (f_dirblock e) 8

let name r e =
  let f = flags r e in
  if f land fl_longname = 0 then begin
    let len = Region.read_u8 r (f_name_len e) in
    Bytes.to_string (Region.read_bytes r (f_name e) len)
  end
  else begin
    let spill = Region.read_u62 r (f_longname e) in
    let len = Region.read_u16 r spill in
    Bytes.to_string (Region.read_bytes r (spill + 2) len)
  end

(** Write name + flags + target; long names spill into a block supplied
    by [alloc_spill] (one small block-allocator chunk). *)
let init r e ~name:n ~dir ~symlink ~target:tgt ~alloc_spill =
  let len = String.length n in
  if len = 0 || len > name_max then invalid_arg "Fentry.init: bad name length";
  let base_flags =
    (if dir then fl_dir else 0) lor if symlink then fl_symlink else 0
  in
  if len <= inline_name_max then begin
    Region.write_u8 r (f_flags e) base_flags;
    Region.write_u8 r (f_name_len e) len;
    Region.write_string r (f_name e) n;
    Region.write_u62 r (f_longname e) 0
  end
  else begin
    let spill = alloc_spill (2 + len) in
    Region.write_u16 r spill len;
    Region.write_string r (spill + 2) n;
    Region.persist r spill (2 + len);
    Region.write_u8 r (f_flags e) (base_flags lor fl_longname);
    Region.write_u8 r (f_name_len e) 0;
    Region.write_u62 r (f_longname e) spill
  end;
  Region.write_u62 r (f_target e) tgt;
  Region.write_u62 r (f_dirblock e) 0;
  Region.persist r e payload_size

(* --- owner/mode word (secure media only) ----------------------------- *)

(** Pack uid/gid/mode into the +72 owner word: [uid:24 | gid:24 | mode:12]
    (fits the 62-bit persistent word).  Only meaningful on volumes
    formatted with [~secure:true]; legacy 72-byte payloads have no room
    for it and must never call these. *)
let pack_owner ~uid ~gid ~perm =
  ((uid land 0xffffff) lsl 36) lor ((gid land 0xffffff) lsl 12)
  lor (perm land 0xfff)

let set_owner r e ~uid ~gid ~perm =
  Region.write_u62 r (f_owner e) (pack_owner ~uid ~gid ~perm);
  Region.persist r (f_owner e) 8

(** [(uid, gid, mode)] from the owner word. *)
let owner r e =
  let w = Region.read_u62 r (f_owner e) in
  ((w lsr 36) land 0xffffff, (w lsr 12) land 0xffffff, w land 0xfff)

let copy_owner r ~src ~dst =
  Region.write_u62 r (f_owner dst) (Region.read_u62 r (f_owner src));
  Region.persist r (f_owner dst) 8

(** Compare without allocating for the common inline case. *)
let name_equals r e n =
  let f = flags r e in
  if f land fl_longname = 0 then begin
    let len = Region.read_u8 r (f_name_len e) in
    len = String.length n
    &&
    let rec cmp i =
      i >= len
      || Region.read_u8 r (f_name e + i) = Char.code n.[i] && cmp (i + 1)
    in
    cmp 0
  end
  else String.equal (name r e) n

(** The spill block to free on deallocation, if any: (addr, len). *)
let spill r e =
  if flags r e land fl_longname = 0 then None
  else
    let s = Region.read_u62 r (f_longname e) in
    let len = Region.read_u16 r s in
    Some (s, 2 + len)
