(** The Simurgh file system (paper Section 4).

    Completely decentralized: every operation is performed by the calling
    process directly against the NVMM region; coordination happens only
    through persistent flags and shared-DRAM locks.  Create, unlink and
    rename follow the Fig. 5 state machines step by step, with a labeled
    crash-hook at every persist point so the test-suite can inject a
    power failure between any two steps and validate recovery. *)

open Simurgh_nvmm
open Simurgh_fs_common
module Hw = Simurgh_hw

type call_mode =
  | Protected  (** entry via jmpp/pret (the paper's +46-cycle surcharge) *)
  | Syscall  (** counterfactual: same FS behind a kernel trap (ablation) *)
  | Plain  (** no entry charge (trusted mode without the kernel module) *)

(** File-system statistics (statfs): capacity and usage of the block
    space and the metadata object pools. *)
type fsstat = {
  block_size : int;
  total_blocks : int;
  free_blocks : int;
  used_blocks : int;
      (** blocks neither free-listed nor quarantined: in use by live
          metadata and data (derived, so the three always partition
          [total_blocks]) *)
  quarantined_blocks : int;
      (** blocks withheld from recycling because an uncorrectable media
          error sits under them — never free, never allocatable *)
  live_inodes : int;
  live_fentries : int;
}

(* The per-mount protected universe (paper Fig. 2): every public FS
   operation has its own entry slot, grouped four-to-a-page (the
   hardware's fixed 1 KiB entry offsets), registered at mount time and
   sealed before the first operation.  Each gate runs the real
   jmpp_check / CPL-switch / pret state machine on this mount's CPU and
   hands the operation body the [privileged] witness that the internal
   mutation paths demand — so unprotected mutation is statically
   unreachable (the witness type has no other constructor).  The gates
   are typed continuations: [g_op k] enters protected mode and applies
   [k] to the witness. *)
type penv = {
  pcpu : Hw.Cpu.t;
  puniv : Hw.Protected.t;
  (* page 0: namespace creation/removal *)
  g_create : (Hw.Protected.privileged -> unit) -> unit;
  g_mkdir : (Hw.Protected.privileged -> unit) -> unit;
  g_unlink : (Hw.Protected.privileged -> unit) -> unit;
  g_rmdir : (Hw.Protected.privileged -> unit) -> unit;
  (* page 1: links and rename *)
  g_rename : (Hw.Protected.privileged -> unit) -> unit;
  g_symlink : (Hw.Protected.privileged -> unit) -> unit;
  g_hardlink : (Hw.Protected.privileged -> unit) -> unit;
  g_readlink : (Hw.Protected.privileged -> string) -> string;
  (* page 2: file descriptors *)
  g_open : (Hw.Protected.privileged -> int) -> int;
  g_close : (Hw.Protected.privileged -> unit) -> unit;
  g_pread : (Hw.Protected.privileged -> bytes) -> bytes;
  g_pwrite : (Hw.Protected.privileged -> int) -> int;
  (* page 3: data path *)
  g_append : (Hw.Protected.privileged -> int) -> int;
  g_fallocate : (Hw.Protected.privileged -> unit) -> unit;
  g_fsync : (Hw.Protected.privileged -> unit) -> unit;
  g_truncate : (Hw.Protected.privileged -> unit) -> unit;
  (* page 4: attributes *)
  g_stat : (Hw.Protected.privileged -> Types.stat) -> Types.stat;
  g_exists : (Hw.Protected.privileged -> bool) -> bool;
  g_readdir : (Hw.Protected.privileged -> string list) -> string list;
  g_chmod : (Hw.Protected.privileged -> unit) -> unit;
  (* page 5: administrative *)
  g_utimes : (Hw.Protected.privileged -> unit) -> unit;
  g_statfs : (Hw.Protected.privileged -> fsstat) -> fsstat;
}

type t = {
  layout : Layout.t;
  region : Region.t;
  locks : Locks.t;
  openfiles : Openfile.t;
  mutable euid : int;
  mutable egid : int;
  call_mode : call_mode;
  relaxed_writes : bool;
      (** disable the per-file write lock (Fig. 7k "relaxed") *)
  coarse_dir_locks : bool;
      (** ablation: one lock per directory instead of per-line busy
          flags — the "whole-directory lock" counterfactual *)
  rcache : Rcache.t option;
      (** Simurgh-side DRAM resolve cache (shared across mounts);
          [None] = seed behavior, every component scanned in NVMM *)
  range_locks : bool;
      (** byte-range data-path locking: writers hold only the 4 KiB
          rows they touch, appends reserve bytes with a fetch-and-add
          and publish the size in order, and whole-file operations
          (truncate, O_TRUNC, unlink) fence everyone out through an
          exclusive pass over the per-file lock.  Off = seed behavior,
          one rwlock per file around every data operation. *)
  log_ring : int;
      (** format-time rename-log ring size (from the superblock): each
          directory's first hash block carries this many log slots, and
          a rename claims one via its per-slot lock instead of the
          directory-global log lock.  0 = the paper's single slot. *)
  mutable crash_hook : string -> unit;
  mutable logical_time : int;
  mutable eio_returns : int;
      (** operations that returned [EIO] after hitting a poisoned line *)
  secure : bool;
      (** the volume was formatted with the security plane: file entries
          carry the packed owner/mode word and the protected entry
          points enforce per-user permissions against it *)
  quota : Quota.t;
      (** per-uid block quotas (region-shared volatile state; disabled —
          zero cost — until the first limit is installed) *)
  penv : penv;  (** this mount's protected entry points (one process) *)
}

type fd = int

let name = "Simurgh"

let hook t label = t.crash_hook label

let now ?ctx t =
  match ctx with
  | Some c -> int_of_float (Simurgh_sim.Machine.now c)
  | None ->
      t.logical_time <- t.logical_time + 1;
      t.logical_time

(* --- construction ------------------------------------------------------ *)

let root_perm = 0o755

let make_root layout =
  let region = layout.Layout.region in
  let inode =
    match Simurgh_alloc.Slab_alloc.alloc layout.Layout.inode_slab with
    | Some i -> i
    | None -> Errno.raise_ ENOSPC "mkfs: no space for root inode"
  in
  Inode.init region inode
    ~mode:(Inode.mode_of_kind ~perm:root_perm Dir)
    ~uid:0 ~gid:0 ~now:0;
  let bs = Simurgh_alloc.Block_alloc.block_size layout.Layout.balloc in
  let ring = layout.Layout.log_ring in
  let db_blocks =
    (Dirblock.size_for_rows ~ring Dirblock.first_rows + bs - 1) / bs
  in
  let dirblock =
    match Simurgh_alloc.Block_alloc.alloc layout.Layout.balloc db_blocks with
    | Some b -> b
    | None -> Errno.raise_ ENOSPC "mkfs: no space for root directory block"
  in
  Dirblock.init region dirblock ~rows:Dirblock.first_rows ~ring ();
  let fentry =
    match Simurgh_alloc.Slab_alloc.alloc layout.Layout.fentry_slab with
    | Some e -> e
    | None -> Errno.raise_ ENOSPC "mkfs: no space for root file entry"
  in
  Fentry.init region fentry ~name:"/" ~dir:true ~symlink:false ~target:inode
    ~alloc_spill:(fun _ -> assert false);
  if layout.Layout.secure then
    Fentry.set_owner region fentry ~uid:0 ~gid:0 ~perm:root_perm;
  Fentry.set_dirblock region fentry dirblock;
  Simurgh_alloc.Slab_alloc.commit layout.Layout.inode_slab inode;
  Simurgh_alloc.Slab_alloc.commit layout.Layout.fentry_slab fentry;
  Layout.set_root_fentry layout fentry

(* Per-mount bootstrap of the protected universe (Fig. 2 steps 3-5): one
   CPU context per "process", the kernel module maps the entry pages (4
   slots each) and the protected stacks, registration happens here and
   nowhere else — the universe is sealed before the mount is returned. *)
let bootstrap_penv ~euid ~egid =
  let cpu = Hw.Cpu.create () in
  let univ = Hw.Protected.bootstrap cpu ~euid ~egid in
  let gate name = Hw.Protected.register univ ~name (fun w k -> k w) in
  let penv =
    {
      pcpu = cpu;
      puniv = univ;
      g_create = gate "simurgh_create";
      g_mkdir = gate "simurgh_mkdir";
      g_unlink = gate "simurgh_unlink";
      g_rmdir = gate "simurgh_rmdir";
      g_rename = gate "simurgh_rename";
      g_symlink = gate "simurgh_symlink";
      g_hardlink = gate "simurgh_hardlink";
      g_readlink = gate "simurgh_readlink";
      g_open = gate "simurgh_open";
      g_close = gate "simurgh_close";
      g_pread = gate "simurgh_read";
      g_pwrite = gate "simurgh_write";
      g_append = gate "simurgh_append";
      g_fallocate = gate "simurgh_fallocate";
      g_fsync = gate "simurgh_fsync";
      g_truncate = gate "simurgh_truncate";
      g_stat = gate "simurgh_stat";
      g_exists = gate "simurgh_exists";
      g_readdir = gate "simurgh_readdir";
      g_chmod = gate "simurgh_chmod";
      g_utimes = gate "simurgh_utimes";
      g_statfs = gate "simurgh_statfs";
    }
  in
  Hw.Protected.seal univ;
  penv

let of_layout ?(call_mode = Protected) ?(relaxed_writes = false)
    ?(coarse_dir_locks = false) ?(striped_locks = false) ?(rcache = false)
    ?(range_locks = false) ?shared ?(euid = 1000) ?(egid = 1000) layout =
  (* [shared] joins an existing mount's shared-DRAM state; otherwise the
     requested feature flags shape a fresh registry/cache *)
  let locks, rc, quota =
    match shared with
    | Some (locks, rc, quota) -> (locks, rc, quota)
    | None ->
        ( Locks.create ~striped:striped_locks (),
          (if rcache then Some (Rcache.create ()) else None),
          Quota.create () )
  in
  let fs =
    {
      layout;
      region = layout.Layout.region;
      locks;
      openfiles = Openfile.create ();
      euid;
      egid;
      call_mode;
      relaxed_writes;
      coarse_dir_locks;
      rcache = rc;
      range_locks;
      log_ring = layout.Layout.log_ring;
      crash_hook = ignore;
      logical_time = 0;
      eio_returns = 0;
      secure = layout.Layout.secure;
      quota;
      penv = bootstrap_penv ~euid ~egid;
    }
  in
  (* lock-registry sizes and allocator counters join the experiment's
     observability snapshot (no-op outside the bench driver) *)
  Simurgh_obs.Collect.note_source (fun () ->
      let rows, files, appends = Locks.sizes fs.locks in
      let range_rows, file_states = Locks.range_sizes fs.locks in
      let ba = Simurgh_alloc.Block_alloc.stats layout.Layout.balloc in
      let inodes = Simurgh_alloc.Slab_alloc.stats layout.Layout.inode_slab in
      let fes = Simurgh_alloc.Slab_alloc.stats layout.Layout.fentry_slab in
      [
        ("locks/row_locks", float_of_int rows);
        ("locks/file_locks", float_of_int files);
        ("locks/dir_append_locks", float_of_int appends);
        ("locks/file_range_locks", float_of_int range_rows);
        ("locks/file_states", float_of_int file_states);
        ( "rename_log/slot_acquisitions",
          float_of_int (Locks.log_slot_acquisitions fs.locks) );
        ( "rename_log/ring_full_waits",
          float_of_int (Locks.log_ring_full_waits fs.locks) );
        ( "alloc/block_allocs",
          float_of_int ba.Simurgh_alloc.Block_alloc.allocs );
        ("alloc/block_frees", float_of_int ba.Simurgh_alloc.Block_alloc.frees);
        ( "alloc/blocks_allocated",
          float_of_int ba.Simurgh_alloc.Block_alloc.blocks_allocated );
        ( "alloc/blocks_freed",
          float_of_int ba.Simurgh_alloc.Block_alloc.blocks_freed );
        ( "alloc/inodes_live",
          float_of_int inodes.Simurgh_alloc.Slab_alloc.live );
        ("alloc/fentries_live", float_of_int fes.Simurgh_alloc.Slab_alloc.live);
        ("faults/eio_returns", float_of_int fs.eio_returns);
      ]
      @
      match fs.rcache with
      | None -> []
      | Some rc ->
          let s = Rcache.stats rc in
          [
            ("rcache/hits", float_of_int s.Rcache.hits);
            ("rcache/misses", float_of_int s.Rcache.misses);
            ("rcache/inserts", float_of_int s.Rcache.inserts);
            ("rcache/invalidations", float_of_int s.Rcache.invalidations);
          ]);
  fs

(* Shared-DRAM state per region (paper Section 4: concurrent processes
   are "coordinated through accesses to NVMM and shared DRAM").  Every
   mount of the same region must share the volatile allocator caches and
   the lock registry, otherwise two "processes" would hand out the same
   metadata objects.  The state lives in the region's user slot, so its
   lifetime is exactly the region's (no global registry to leak). *)
exception Shared_state of Layout.t * Locks.t * Rcache.t option * Quota.t

let lookup_shared region =
  match Region.user_slot region with
  | Some (Shared_state (layout, locks, rc, quota)) ->
      Some (layout, locks, rc, quota)
  | Some _ | None -> None

let register_shared region layout locks rcache quota =
  Region.set_user_slot region (Some (Shared_state (layout, locks, rcache, quota)))

(* [alloc_caches] turns on the allocators' per-thread structures; they
   hang off the (shared) layout, so one enable covers every mount. *)
let enable_alloc_caches layout =
  Simurgh_alloc.Block_alloc.set_thread_segments layout.Layout.balloc true;
  Simurgh_alloc.Slab_alloc.set_thread_caches layout.Layout.inode_slab true;
  Simurgh_alloc.Slab_alloc.set_thread_caches layout.Layout.fentry_slab true

(** Format a fresh region and return a mounted file system.  [log_ring]
    selects the rename-log ring size at format time (0 = the paper's
    single per-directory log slot, on-media bit-identical). *)
let mkfs ?(cores = 10) ?segments ?call_mode ?relaxed_writes ?coarse_dir_locks
    ?striped_locks ?rcache ?range_locks ?(alloc_caches = false) ?log_ring
    ?shard ?secure ?euid ?egid region =
  let layout = Layout.format ?segments ?log_ring ?shard ?secure region ~cores in
  make_root layout;
  let fs =
    of_layout ?call_mode ?relaxed_writes ?coarse_dir_locks ?striped_locks
      ?rcache ?range_locks ?euid ?egid layout
  in
  if alloc_caches then enable_alloc_caches layout;
  register_shared region layout fs.locks fs.rcache fs.quota;
  (* the FS is live from here: only a clean [unmount] sets the flag
     back, so a crash leaves it clear and forces full recovery *)
  Layout.set_clean_shutdown layout false;
  fs

(** Attach to an already-formatted region: a second mount of a region
    joins the existing shared-DRAM state (allocator caches, locks,
    resolve cache), so independent "processes" cooperate exactly as the
    paper describes; only the open-file map and the credentials are
    per-process.  Crash recovery is in {!Recovery}. *)
let mount ?call_mode ?relaxed_writes ?coarse_dir_locks ?striped_locks ?rcache
    ?range_locks ?(alloc_caches = false) ?euid ?egid region =
  match lookup_shared region with
  | Some (layout, locks, rc, quota) ->
      (* joining mounts inherit the shared structures; the feature flags
         of the first mount win — except [range_locks], which selects a
         locking *protocol* and must agree across every mount of the
         region (the reservation words live in the shared registry) *)
      of_layout ?call_mode ?relaxed_writes ?coarse_dir_locks ?range_locks
        ~shared:(locks, rc, quota) ?euid ?egid layout
  | None ->
      let layout = Layout.attach region in
      let fs =
        of_layout ?call_mode ?relaxed_writes ?coarse_dir_locks ?striped_locks
          ?rcache ?range_locks ?euid ?egid layout
      in
      if alloc_caches then enable_alloc_caches layout;
      register_shared region layout fs.locks fs.rcache fs.quota;
      Layout.set_clean_shutdown layout false;
      fs

(** Forget the shared state of a region (after a crash, the volatile
    state is gone by definition; {!Recovery} calls this). *)
let invalidate_shared region = Region.set_user_slot region None

let unmount t = Layout.set_clean_shutdown t.layout true

let region t = t.region
let layout t = t.layout
let locks t = t.locks
let locks_of t = t.locks
let rcache_of t = t.rcache
let quota_of t = t.quota
let set_crash_hook t f = t.crash_hook <- f
let set_creds t ~euid ~egid =
  t.euid <- euid;
  t.egid <- egid

let is_secure t = t.secure
let protected_cpu t = t.penv.pcpu
let protected_universe t = t.penv.puniv

(* --- per-uid block quotas ----------------------------------------------- *)

(** Install (or with [blocks < 0] remove) a per-uid block limit.  The
    quota table is region-shared volatile state: limits installed through
    any mount bind every tenant of the region.  Accounting starts with
    the first limit, so install limits at mount time for exact counts. *)
let set_quota t ~uid ~blocks = Quota.set_limit t.quota ~uid ~blocks

let quota_used t ~uid = Quota.used t.quota ~uid
let quota_limit t ~uid = Quota.limit t.quota ~uid

(* Charge [blocks] to [uid], failing with EDQUOT before any allocation
   happens.  One uncontended atomic models the DRAM fetch-and-add; when
   no limit was ever installed this is a single branch and charges
   nothing, so legacy runs are bit-identical. *)
let quota_charge ?ctx t ~uid blocks =
  if Quota.enabled t.quota && blocks > 0 then begin
    Charge.atomic ?ctx ~contended:false ();
    if not (Quota.charge t.quota ~uid ~blocks) then
      Errno.raise_ EDQUOT
        (Printf.sprintf "uid %d: %d blocks over limit %d" uid
           (Quota.used t.quota ~uid + blocks)
           (Quota.limit t.quota ~uid))
  end

let quota_release t ~uid blocks = Quota.release t.quota ~uid ~blocks

(* The uid owning blocks charged on behalf of [inode]. *)
let quota_uid_of_inode t inode =
  if Quota.enabled t.quota then Some (Inode.uid t.region inode) else None

(* --- charging ----------------------------------------------------------- *)

let cmodel ctx =
  match ctx with
  | None -> Simurgh_sim.Cost_model.default
  | Some c -> Simurgh_sim.Machine.cm c

(* Per externally visible FS call: libc stub plus the entry mechanism. *)
let entry_charge ?ctx t =
  (* pin the calling thread's NVMM traffic to this FS's home region so
     charges reach the right per-region bandwidth server (no-op for the
     legacy single-region layout, whose shard index is 0) *)
  (match ctx with
  | Some c ->
      c.Simurgh_sim.Machine.thr.Simurgh_sim.Sthread.cur_region <-
        t.layout.Layout.shard_index
  | None -> ());
  let cm = cmodel ctx in
  let cycles =
    match t.call_mode with
    | Protected ->
        (* the measured 70-cycle jmpp+pret figure includes the stack
           switch; [protected_stack_cycles] defaults to 0 and exists to
           ablate the relocation separately *)
        cm.Simurgh_sim.Cost_model.jmpp_pret_cycles
        +. cm.Simurgh_sim.Cost_model.protected_stack_cycles
    | Syscall ->
        cm.Simurgh_sim.Cost_model.syscall_cycles
        +. cm.Simurgh_sim.Cost_model.vfs_dispatch_cycles
    | Plain -> cm.Simurgh_sim.Cost_model.call_cycles
  in
  Charge.cpu ?ctx (cycles +. 60.0 (* libc wrapper, argument handling *))

(* Uncorrectable media errors surface to the application as EIO, like a
   machine-check on a real DIMM surfaced through SIGBUS handling.  All
   lock helpers are exception-safe, so the operation fails cleanly: the
   error is returned, locks are released, the process keeps running. *)
let media_guard t f =
  try f () with
  | Region.Media_error off ->
      t.eio_returns <- t.eio_returns + 1;
      Errno.raise_ EIO (Printf.sprintf "uncorrectable media error at %#x" off)

(* --- allocation helpers ------------------------------------------------- *)

let alloc_inode ?ctx t =
  match Simurgh_alloc.Slab_alloc.alloc ?ctx t.layout.Layout.inode_slab with
  | Some i -> i
  | None -> Errno.raise_ ENOSPC "out of inode objects"

let alloc_fentry ?ctx t =
  match Simurgh_alloc.Slab_alloc.alloc ?ctx t.layout.Layout.fentry_slab with
  | Some e -> e
  | None -> Errno.raise_ ENOSPC "out of file-entry objects"

let block_size t = Simurgh_alloc.Block_alloc.block_size t.layout.Layout.balloc

(* Directory hash blocks come straight from the block allocator so chain
   blocks can grow geometrically (see Dirblock).  Only a directory's
   *first* block carries the log ring; chain-growth blocks stay plain. *)
(* [owner]: uid to charge the blocks to when quotas are active (the
   directory's owner for chain blocks, the file's owner for spills). *)
let alloc_dirblock ?ctx ?(ring = 0) ?owner t ~rows =
  let bs = block_size t in
  let blocks = (Dirblock.size_for_rows ~ring rows + bs - 1) / bs in
  (match owner with Some uid -> quota_charge ?ctx t ~uid blocks | None -> ());
  match Simurgh_alloc.Block_alloc.alloc ?ctx t.layout.Layout.balloc blocks with
  | Some b ->
      Dirblock.init t.region b ~rows ~ring ();
      b
  | None ->
      (match owner with Some uid -> quota_release t ~uid blocks | None -> ());
      Errno.raise_ ENOSPC "out of blocks for directory"

let free_dirblock ?ctx ?owner t b =
  let bs = block_size t in
  let blocks = (Dirblock.size_of t.region b + bs - 1) / bs in
  (match owner with Some uid -> quota_release t ~uid blocks | None -> ());
  Simurgh_alloc.Block_alloc.free ?ctx t.layout.Layout.balloc ~addr:b blocks

let alloc_spill ?ctx ?owner t bytes =
  let blocks = (bytes + block_size t - 1) / block_size t in
  (match owner with Some uid -> quota_charge ?ctx t ~uid blocks | None -> ());
  match Simurgh_alloc.Block_alloc.alloc ?ctx t.layout.Layout.balloc blocks with
  | Some a -> a
  | None ->
      (match owner with Some uid -> quota_release t ~uid blocks | None -> ());
      Errno.raise_ ENOSPC "out of blocks for long name"

(* --- permission checks --------------------------------------------------- *)

(* The credentials an operation runs with: a thread that declared its own
   identity (multi-tenant scenarios set [Sthread.set_creds]) wins over
   the mount's process-wide credentials. *)
let creds ?ctx t =
  match ctx with
  | Some c ->
      let thr = c.Simurgh_sim.Machine.thr in
      if thr.Simurgh_sim.Sthread.euid >= 0 then
        (thr.Simurgh_sim.Sthread.euid, thr.Simurgh_sim.Sthread.egid)
      else (t.euid, t.egid)
  | None -> (t.euid, t.egid)

let deny ~want ~bits euid =
  Errno.raise_ EACCES
    (Printf.sprintf "need %o, have %o (euid=%d)" want bits euid)

let check_perm ?ctx t inode ~want =
  (* want: 4 read, 2 write, 1 execute/traverse *)
  let euid, egid = creds ?ctx t in
  if euid <> 0 then begin
    let m = Inode.mode t.region inode land Inode.perm_mask in
    let bits =
      if Inode.uid t.region inode = euid then (m lsr 6) land 7
      else if Inode.gid t.region inode = egid then (m lsr 3) land 7
      else m land 7
    in
    if bits land want <> want then deny ~want ~bits euid
  end

(* Fentry-based permission check: on secure media the packed owner/mode
   word sits in the file entry the lookup just read, so the protected
   entry point checks it without touching the inode line (one cached
   word compare, charged as [perm_check_cycles]).  Legacy media falls
   back to the inode-based check above with no extra charge — the
   published figures are unchanged. *)
let check_perm_fe ?ctx t fe ~want =
  if t.secure then begin
    let euid, egid = creds ?ctx t in
    if euid <> 0 then begin
      Charge.cpu ?ctx (cmodel ctx).Simurgh_sim.Cost_model.perm_check_cycles;
      let uid, gid, m = Fentry.owner t.region fe in
      let bits =
        if uid = euid then (m lsr 6) land 7
        else if gid = egid then (m lsr 3) land 7
        else m land 7
      in
      if bits land want <> want then deny ~want ~bits euid
    end
  end
  else check_perm ?ctx t (Fentry.target t.region fe) ~want

(* --- path resolution ----------------------------------------------------- *)

(* A resolved parent directory: its file entry (whose [dirblock] heads the
   hash chain) plus that head pointer. *)
type dirref = { dfentry : int; dhead : int }

let root_dirref t =
  let fe = Layout.root_fentry t.layout in
  { dfentry = fe; dhead = Fentry.dirblock t.region fe }

(* Owner uid of a directory, for quota-charging its chain/spill blocks;
   [None] when quotas were never enabled (the common case, zero cost). *)
let dir_quota_uid t (d : dirref) =
  if Quota.enabled t.quota then
    Some
      (if t.secure then
         let uid, _, _ = Fentry.owner t.region d.dfentry in
         uid
       else Inode.uid t.region (Fentry.target t.region d.dfentry))
  else None

let dir_lookup ?ctx t (d : dirref) comp =
  let found, hops = Dirblock.find t.region ~head:d.dhead ~name:comp in
  Charge.read_lines ?ctx (hops + 1);
  Charge.cpu ?ctx 40.0 (* name hash + compare *);
  found

(* Resolution-path lookup: consult the resolve cache first (one DRAM
   probe on a hit instead of an NVMM row scan), fall back to the row
   scan and warm the cache.  Mutating paths keep calling {!dir_lookup}
   directly — they must observe the rows, not the cache. *)
let dir_lookup_fe ?ctx t (d : dirref) comp =
  match t.rcache with
  | None -> (
      match dir_lookup ?ctx t d comp with
      | None -> None
      | Some (_, _, _, fe) -> Some fe)
  | Some rc -> (
      match Rcache.lookup rc ~dir:d.dhead comp with
      | Some fe ->
          Charge.cpu ?ctx (cmodel ctx).Simurgh_sim.Cost_model.rcache_hit_cycles;
          Some fe
      | None -> (
          match dir_lookup ?ctx t d comp with
          | None -> None
          | Some (_, _, _, fe) ->
              Rcache.insert rc ~dir:d.dhead comp fe;
              Some fe))

(* Linux resolves up to 40 chained symlinks before ELOOP (the historical
   8 matched only POSIX's SYMLOOP_MAX floor and rejected chains real
   applications produce). *)
let max_symlink_depth = 40

(* Resolve the parent directory of [path]; returns the dirref and the
   final component name.  Follows symlinks in intermediate components. *)
let rec resolve_parent ?ctx ?(depth = 0) t path =
  if depth > max_symlink_depth then Errno.raise_ ELOOP path;
  let parents, final = Path.split_parent path in
  let rec walk (stack : dirref list) (d : dirref) = function
    | [] -> (d, final)
    | ".." :: rest -> (
        match stack with
        | parent :: up -> walk up parent rest
        | [] -> walk [] d rest (* root/.. = root *))
    | comp :: rest -> (
        check_perm_fe ?ctx t d.dfentry ~want:1;
        match dir_lookup_fe ?ctx t d comp with
        | None -> Errno.raise_ ENOENT path
        | Some fe ->
            if Fentry.is_dir t.region fe then
              walk (d :: stack)
                { dfentry = fe; dhead = Fentry.dirblock t.region fe }
                rest
            else if Fentry.is_symlink t.region fe then begin
              let target = read_symlink_target t fe in
              let joined =
                target ^ "/" ^ String.concat "/" (rest @ [ final ])
              in
              resolve_parent ?ctx ~depth:(depth + 1) t joined
            end
            else Errno.raise_ ENOTDIR path)
  in
  walk [] (root_dirref t) parents

and read_symlink_target t fe =
  let inode = Fentry.target t.region fe in
  let len = Inode.size t.region inode in
  let buf = Buffer.create len in
  let remaining = ref len in
  Inode.iter_extents t.region inode (fun addr blocks ->
      let n = min !remaining (blocks * block_size t) in
      if n > 0 then begin
        Buffer.add_bytes buf (Region.read_bytes t.region addr n);
        remaining := !remaining - n
      end);
  Buffer.contents buf

(* Resolve a full path to its file entry; [follow] resolves a final
   symlink component. *)
let rec resolve ?ctx ?(follow = true) ?(depth = 0) t path =
  if depth > max_symlink_depth then Errno.raise_ ELOOP path;
  if Path.split path = [] then (* the root itself *)
    (root_dirref t, Layout.root_fentry t.layout)
  else begin
    let d, final = resolve_parent ?ctx t path in
    check_perm_fe ?ctx t d.dfentry ~want:1;
    match dir_lookup_fe ?ctx t d final with
    | None -> Errno.raise_ ENOENT path
    | Some fe ->
        if follow && Fentry.is_symlink t.region fe then
          resolve ?ctx ~follow ~depth:(depth + 1) t
            (read_symlink_target t fe)
        else (d, fe)
  end

(* --- row locking --------------------------------------------------------- *)

(* Lock a directory row: virtual-time spin lock plus the persistent busy
   flag in the first hash block (crash detection). *)
let lock_row ?ctx t (d : dirref) row =
  let row = if t.coarse_dir_locks then 0 else row in
  Charge.with_spin ?ctx (Locks.row_lock t.locks ~dir:d.dhead ~row)

let set_row_busy ?ctx t (d : dirref) row v =
  Dirblock.set_busy t.region d.dhead row v;
  Charge.write_lines ?ctx 1

(* --- resolve-cache maintenance ------------------------------------------- *)

let rcache_insert t (d : dirref) name fe =
  match t.rcache with
  | None -> ()
  | Some rc -> Rcache.insert rc ~dir:d.dhead name fe

let rcache_invalidate t (d : dirref) name =
  match t.rcache with
  | None -> ()
  | Some rc -> Rcache.invalidate rc ~dir:d.dhead name

(* A directory died: kill every cached child at once (generation bump). *)
let rcache_invalidate_dir t dhead =
  match t.rcache with
  | None -> ()
  | Some rc -> Rcache.invalidate_dir rc dhead

(* The rename-log window of directory [dir]: run [f ~slot ~epoch] with
   the chosen log slot held.

   Legacy media (log_ring = 0): the single persistent rename-log slot is
   a genuinely directory-global resource.  Striped mode serializes the
   write..clear window under the (dir, 1) log lock; legacy mode needs no
   extra lock — the (coarser) row/append locking already serializes
   conflicting renames.

   Log-ring media: each rename claims one of the ring's slots via that
   slot's own lock, so N renames of one directory run their Fig. 5 log
   windows concurrently.  The claim probes from a rotating hint for a
   slot whose lock is free and falls back to blocking on the hint slot
   when the whole ring is held (counted as a ring-full wait).  The epoch
   is fetched inside the caller's row-lock window, so slots of
   conflicting (row-sharing) renames — which row locks serialize — are
   stamped in their serialization order; row-disjoint renames commute,
   so their relative epoch order only needs to be deterministic. *)
let with_log_slot ?ctx t dir f =
  let n = t.log_ring in
  if n = 0 then
    if Locks.striped t.locks then
      (* the held window is a short exclusive persistent sequence: charge
         its line writes as posted ntstores so a saturated device queue
         does not convoy every rename behind the directory-global lock *)
      Charge.with_spin ?ctx (Locks.log_lock t.locks dir) (fun () ->
          Charge.posted ?ctx (fun () -> f ~slot:0 ~epoch:0))
    else f ~slot:0 ~epoch:0
  else begin
    let start = Locks.next_log_slot_hint t.locks ~n in
    let rec probe i =
      if i = n then begin
        Locks.note_log_ring_full_wait t.locks;
        start
      end
      else
        let s = (start + i) mod n in
        if Simurgh_sim.Vlock.Spin.locked (Locks.log_slot_lock t.locks dir ~slot:s)
        then probe (i + 1)
        else s
    in
    let slot = probe 0 in
    Charge.with_spin ?ctx (Locks.log_slot_lock t.locks dir ~slot) (fun () ->
        Locks.note_log_slot_acquisition t.locks;
        let epoch = Locks.next_log_epoch t.locks in
        Charge.posted ?ctx (fun () -> f ~slot ~epoch))
  end

(* Chain-structure mutations (linking/unlinking hash blocks).  Legacy
   mode uses the per-directory append lock; striped mode a dedicated
   short chain lock, because the append locks are per-row there. *)
let chain_guard ?ctx t dir f =
  if Locks.striped t.locks then
    Charge.with_spin ?ctx (Locks.chain_lock t.locks dir) f
  else Charge.with_spin ?ctx (Locks.dir_append_lock t.locks dir) f

(* --- create -------------------------------------------------------------- *)

(* Striped mode: find — growing the chain when the row is full — a free
   slot for [hash]'s row, without writing it.  The caller must hold the
   row lock of that row; since every mutator of a row takes its lock
   first, the returned slot stays free until the caller fills it (chain
   growth by other rows only adds slots).  Separating the search from
   the write lets rename reserve its destination slot ahead of the log
   window, so the directory-global log lock covers only the short
   persistent rename sequence, never a chain scan. *)
let rec striped_reserve ?ctx ?owner t (d : dirref) ~hash =
  let lock_row = Dirblock.lock_row_of_hash hash in
  let slot_ref, hops, last =
    Dirblock.find_free_slot t.region ~head:d.dhead ~hash
  in
  Charge.read_lines ?ctx (hops + 1);
  match slot_ref with
  | Some s ->
      hook t "insert:slot";
      s
  | None -> (
      set_row_busy ?ctx t d lock_row true;
      hook t "insert:busy";
      let reserved =
        Charge.with_spin ?ctx
          (Locks.dir_append_lock ~row:lock_row t.locks d.dhead)
          (fun () ->
            (* re-check under the row's append lock: the chain may have
               grown meanwhile *)
            let slot_ref', hops', last' =
              Dirblock.find_free_slot t.region ~head:last ~hash
            in
            Charge.read_lines ?ctx (hops' + 1);
            match slot_ref' with
            | Some s -> Some s
            | None ->
                (* grow: allocate and initialize the new block outside
                   the chain lock, link under it *)
                let new_rows =
                  min Dirblock.max_rows (2 * Dirblock.rows t.region last')
                in
                let nb = alloc_dirblock ?ctx ?owner t ~rows:new_rows in
                hook t "insert:newblock";
                let linked =
                  chain_guard ?ctx t d.dhead (fun () ->
                      if Dirblock.next t.region last' = 0 then begin
                        Dirblock.set_next t.region last' nb;
                        Charge.write_lines ?ctx 2;
                        true
                      end
                      else false)
                in
                if linked then begin
                  hook t "insert:link";
                  Some (nb, hash mod new_rows, 0)
                end
                else begin
                  (* lost the link race: another row extended the chain
                     after our re-check.  Return our block and rescan —
                     the freshly linked block has a free slot in our
                     row, so the retry terminates. *)
                  free_dirblock ?ctx ?owner t nb;
                  None
                end)
      in
      hook t "insert:unbusy";
      set_row_busy ?ctx t d lock_row false;
      match reserved with
      | Some s -> s
      | None -> striped_reserve ?ctx ?owner t d ~hash)

(* Insert [fentry] into the row of [name] in directory [d], growing the
   chain when the row is full (Fig. 5a steps 3-5). *)
let insert_entry ?ctx ?owner t (d : dirref) ~name:n fentry =
  let hash = Name_hash.hash n in
  let lock_row = Dirblock.lock_row_of_hash hash in
  if not (Locks.striped t.locks) then begin
    (* legacy path: every row-full insert of a directory serializes on
       one chain-extension lock *)
    let slot_ref, hops, last =
      Dirblock.find_free_slot t.region ~head:d.dhead ~hash
    in
    Charge.read_lines ?ctx (hops + 1);
    match slot_ref with
    | Some (blk, row, s) ->
        hook t "insert:slot";
        Dirblock.set_slot t.region blk row s fentry;
        Charge.write_lines ?ctx 1
    | None ->
        (* Fig. 5a: set the busy flag of the whole line, create a new hash
           block, link it, then persist the new entry's pointer. *)
        set_row_busy ?ctx t d lock_row true;
        hook t "insert:busy";
        Charge.with_spin ?ctx (Locks.dir_append_lock t.locks d.dhead)
          (fun () ->
            (* re-check under the append lock: another process may have
               extended the chain meanwhile *)
            let slot_ref', hops', last' =
              Dirblock.find_free_slot t.region ~head:last ~hash
            in
            Charge.read_lines ?ctx (hops' + 1);
            match slot_ref' with
            | Some (blk, row, s) ->
                Dirblock.set_slot t.region blk row s fentry;
                Charge.write_lines ?ctx 1
            | None ->
                let new_rows =
                  min Dirblock.max_rows (2 * Dirblock.rows t.region last')
                in
                let nb = alloc_dirblock ?ctx ?owner t ~rows:new_rows in
                hook t "insert:newblock";
                Dirblock.set_next t.region last' nb;
                Charge.write_lines ?ctx 2;
                hook t "insert:link";
                Dirblock.set_slot t.region nb (hash mod new_rows) 0 fentry;
                Charge.write_lines ?ctx 1);
        hook t "insert:unbusy";
        set_row_busy ?ctx t d lock_row false
  end
  else begin
    (* striped path: row-full inserts of different rows proceed in
       parallel under per-row append locks; only the physical link of a
       new hash block takes the (short) directory-global chain lock *)
    let blk, row, s = striped_reserve ?ctx ?owner t d ~hash in
    Dirblock.set_slot t.region blk row s fentry;
    Charge.write_lines ?ctx 1
  end

let create_at ?ctx t (w : Hw.Protected.privileged) (d : dirref) ~name:n ~kind
    ~perm ~target_inode =
  Hw.Protected.check_privileged w t.penv.pcpu;
  if String.length n > Fentry.name_max then Errno.raise_ ENAMETOOLONG n;
  check_perm_fe ?ctx t d.dfentry ~want:3;
  let euid, egid = creds ?ctx t in
  (* quota owner of the new object's blocks: a hardlink's name belongs to
     the linked inode's owner, everything else to the creator *)
  let file_owner =
    match target_inode with
    | Some i -> Inode.uid t.region i
    | None -> euid
  in
  let qown = if Quota.enabled t.quota then Some file_owner else None in
  let row = Dirblock.lock_row_of_name n in
  lock_row ?ctx t d row (fun () ->
      (match dir_lookup ?ctx t d n with
      | Some _ -> Errno.raise_ EEXIST n
      | None -> ());
      (* Fig. 5a step 1: inode created and persisted (still dirty) *)
      let inode =
        match target_inode with
        | Some i ->
            Inode.set_nlink t.region i (Inode.nlink t.region i + 1);
            Region.persist t.region i 16;
            i
        | None ->
            let i = alloc_inode ?ctx t in
            Inode.init t.region i
              ~mode:(Inode.mode_of_kind ~perm kind)
              ~uid:euid ~gid:egid ~now:(now ?ctx t);
            Charge.write_lines ?ctx 2;
            i
      in
      hook t "create:inode";
      (* step 2: file entry created and linked to the inode *)
      let fe = alloc_fentry ?ctx t in
      Fentry.init t.region fe ~name:n
        ~dir:(kind = Inode.Dir)
        ~symlink:(kind = Inode.Symlink)
        ~target:inode
        ~alloc_spill:(fun b -> alloc_spill ?ctx ?owner:qown t b);
      (* secure media: stamp the owner/mode word the protected entry
         points check (a hardlink inherits the linked inode's identity) *)
      if t.secure then begin
        match target_inode with
        | Some i ->
            Fentry.set_owner t.region fe ~uid:(Inode.uid t.region i)
              ~gid:(Inode.gid t.region i)
              ~perm:(Inode.perm t.region i)
        | None -> Fentry.set_owner t.region fe ~uid:euid ~gid:egid ~perm
      end;
      Charge.write_lines ?ctx 2;
      hook t "create:fentry";
      (* directories get their first hash block before becoming visible *)
      if kind = Inode.Dir then begin
        let db =
          alloc_dirblock ?ctx ~ring:t.log_ring ?owner:qown t
            ~rows:Dirblock.first_rows
        in
        Fentry.set_dirblock t.region fe db;
        Charge.write_lines ?ctx 2
      end;
      (* steps 3-5: persist the pointer into the row *)
      insert_entry ?ctx ?owner:(dir_quota_uid t d) t d ~name:n fe;
      hook t "create:slot";
      (* step 6: unset the dirty bits *)
      (match target_inode with
      | Some _ -> ()
      | None -> Simurgh_alloc.Slab_alloc.commit ?ctx t.layout.Layout.inode_slab inode);
      Simurgh_alloc.Slab_alloc.commit ?ctx t.layout.Layout.fentry_slab fe;
      hook t "create:commit";
      rcache_insert t d n fe;
      fe)

let create_file ?ctx t ?(perm = 0o644) path =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_create @@ fun w ->
  let d, n = resolve_parent ?ctx t path in
  ignore
    (create_at ?ctx t w d ~name:n ~kind:Inode.File ~perm ~target_inode:None)

let mkdir ?ctx t ?(perm = 0o755) path =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_mkdir @@ fun w ->
  let d, n = resolve_parent ?ctx t path in
  ignore (create_at ?ctx t w d ~name:n ~kind:Inode.Dir ~perm ~target_inode:None)

let symlink ?ctx t ~target path =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_symlink @@ fun w ->
  let d, n = resolve_parent ?ctx t path in
  let fe =
    create_at ?ctx t w d ~name:n ~kind:Inode.Symlink ~perm:0o777
      ~target_inode:None
  in
  (* store the destination path as the symlink inode's data *)
  let inode = Fentry.target t.region fe in
  let len = String.length target in
  let blocks = max 1 ((len + block_size t - 1) / block_size t) in
  (match quota_uid_of_inode t inode with
  | Some uid -> quota_charge ?ctx t ~uid blocks
  | None -> ());
  (match Simurgh_alloc.Block_alloc.alloc ?ctx ~hint:inode t.layout.Layout.balloc blocks with
  | None ->
      (match quota_uid_of_inode t inode with
      | Some uid -> quota_release t ~uid blocks
      | None -> ());
      Errno.raise_ ENOSPC "symlink target"
  | Some addr ->
      Region.write_string t.region addr target;
      Region.persist t.region addr len;
      Inode.write_extent t.region inode 0 ~addr ~blocks;
      Inode.set_size t.region inode len;
      Region.persist t.region (Inode.f_size inode) 8);
  Charge.write_lines ?ctx (2 + (len / 64))

let hardlink ?ctx t ~existing path =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_hardlink @@ fun w ->
  let _, fe = resolve ?ctx t existing in
  if Fentry.is_dir t.region fe then Errno.raise_ EISDIR existing;
  let inode = Fentry.target t.region fe in
  let d, n = resolve_parent ?ctx t path in
  ignore
    (create_at ?ctx t w d ~name:n ~kind:Inode.File ~perm:0
       ~target_inode:(Some inode))

(* --- data block management ------------------------------------------------ *)

(* Allocate [blocks] (possibly as several extents) and append them to the
   inode's extent list.

   [staged]: batched writeback — every slot store is clwb-only and the
   caller issues a single [Region.sfence] for the whole run, instead of
   paying a persist barrier per slot.  A crash inside the window can
   leave any subset of the staged slots: a torn slot (addr set, blocks
   still 0) maps zero bytes, so readers and recovery both ignore it, and
   the mark-and-sweep pass reclaims blocks the lost slots leaked. *)
let append_extents ?ctx ?(staged = false) t _w inode blocks =
  let balloc = t.layout.Layout.balloc in
  (* quota gate first: EDQUOT must fire before any block leaves the
     allocator, and an ENOSPC after the charge must hand it back *)
  let quid = quota_uid_of_inode t inode in
  (match quid with Some uid -> quota_charge ?ctx t ~uid blocks | None -> ());
  let rec alloc_ranges n acc =
    if n = 0 then acc
    else
      match Simurgh_alloc.Block_alloc.alloc ?ctx ~hint:inode balloc n with
      | Some addr -> (addr, n) :: acc
      | None ->
          if n = 1 then Errno.raise_ ENOSPC "out of data blocks"
          else
            (* fall back to two half-size requests *)
            let h = n / 2 in
            alloc_ranges (n - h) (alloc_ranges h acc)
  in
  let ranges =
    try List.rev (alloc_ranges blocks [])
    with e ->
      (match quid with Some uid -> quota_release t ~uid blocks | None -> ());
      raise e
  in
  (* stitch into the inode: fill inline slots, then overflow chain *)
  let region = t.region in
  List.iter
    (fun (addr, count) ->
      let placed = ref false in
      (* inline slots *)
      let k = ref 0 in
      while (not !placed) && !k < Inode.inline_extents do
        let a, _ = Inode.read_extent region inode !k in
        if a = 0 then begin
          (if staged then Inode.stage_extent region inode !k ~addr ~blocks:count
           else Inode.write_extent region inode !k ~addr ~blocks:count);
          placed := true
        end;
        incr k
      done;
      if not !placed then begin
        (* overflow chain: find a free slot or extend *)
        let rec place b prev =
          if b = 0 then begin
            let ov_blocks =
              (Inode.overflow_bytes + block_size t - 1) / block_size t
            in
            (match quid with
            | Some uid -> quota_charge ?ctx t ~uid ov_blocks
            | None -> ());
            let nb =
              match
                Simurgh_alloc.Block_alloc.alloc ?ctx ~hint:inode balloc
                  ov_blocks
              with
              | Some a -> a
              | None ->
                  (match quid with
                  | Some uid -> quota_release t ~uid ov_blocks
                  | None -> ());
                  Errno.raise_ ENOSPC "out of extent blocks"
            in
            (* even staged, the zeroed block must be durable before any
               pointer to it can be: a crash that published the link but
               not the init would hand recovery a garbage extent chain *)
            Region.zero region nb Inode.overflow_bytes;
            Region.persist region nb Inode.overflow_bytes;
            (match prev with
            | None ->
                Region.write_u62 region (Inode.f_overflow inode) nb;
                if staged then Region.clwb region (Inode.f_overflow inode) 8
                else Region.persist region (Inode.f_overflow inode) 8
            | Some p ->
                Region.write_u62 region (Inode.ov_next p) nb;
                if staged then Region.clwb region (Inode.ov_next p) 8
                else Region.persist region (Inode.ov_next p) 8);
            if staged then Inode.stage_ov_extent region nb 0 ~addr ~blocks:count
            else Inode.write_ov_extent region nb 0 ~addr ~blocks:count
          end
          else begin
            let placed_here = ref false in
            let k = ref 0 in
            while (not !placed_here) && !k < Inode.overflow_entries do
              let a, _ = Inode.read_ov_extent region b !k in
              if a = 0 then begin
                Inode.write_ov_extent region b !k ~addr ~blocks:count;
                placed_here := true
              end;
              incr k
            done;
            if not !placed_here then
              place (Region.read_u62 region (Inode.ov_next b)) (Some b)
          end
        in
        place (Region.read_u62 region (Inode.f_overflow inode)) None
      end;
      Charge.write_lines ?ctx 1)
    ranges

(* Number of data blocks currently mapped. *)
let mapped_blocks t inode =
  let n = ref 0 in
  Inode.iter_extents t.region inode (fun _ b -> n := !n + b);
  !n

(* Ensure the file maps at least [bytes] bytes.  Growing files get a
   64 KiB slack extent so append streams do not pay an allocation per
   call (and a file's blocks stay clustered, Section 4.2). *)
let append_slack_blocks = 256

let ensure_capacity ?ctx ?staged t w inode bytes =
  (* a negative target here is always the sign of an integer overflow
     upstream ([pos + len] wrapping past max_int); growing "to" it would
     compute a nonsense block count, so fail the operation cleanly *)
  if bytes < 0 then Errno.raise_ EINVAL "file size overflow";
  let bs = block_size t in
  let have = mapped_blocks t inode in
  let needed = ((bytes + bs - 1) / bs) - have in
  if needed > 0 then
    append_extents ?ctx ?staged t w inode
      (if have > 0 then max needed append_slack_blocks else needed)

(* Translate a file offset into (region addr, contiguous bytes there). *)
let map_offset t inode pos =
  let bs = block_size t in
  let result = ref None in
  let skip = ref pos in
  (try
     Inode.iter_extents t.region inode (fun addr blocks ->
         let len = blocks * bs in
         if !skip < len then begin
           result := Some (addr + !skip, len - !skip);
           raise Exit
         end
         else skip := !skip - len)
   with Exit -> ());
  !result

(* Zero the file bytes [from, upto) in place (no fence; callers batch
   one sfence over hole + payload).  POSIX requires a hole left behind
   by a past-EOF pwrite or a growing truncate to read back as zeros,
   and blocks arrive from the allocator with whatever they last held. *)
let zero_span ?ctx t inode ~from ~upto =
  let rec loop off remaining =
    if remaining > 0 then
      match map_offset t inode off with
      | None -> Errno.raise_ EINVAL "zero_span: unmapped offset"
      | Some (addr, avail) ->
          let n = min avail remaining in
          Region.zero t.region addr n;
          Region.clwb t.region addr n;
          loop (off + n) (remaining - n)
  in
  if upto > from then begin
    loop from (upto - from);
    Charge.nvmm_write ?ctx (upto - from)
  end

(* Copy [src] into the file at [pos] across extents.  Returns bytes
   written (always all of them; capacity was ensured). *)
let write_data ?ctx t w inode ~pos src =
  let len = Bytes.length src in
  let old_size = Inode.size t.region inode in
  ensure_capacity ?ctx t w inode (pos + len);
  if pos > old_size then zero_span ?ctx t inode ~from:old_size ~upto:pos;
  let rec copy off remaining =
    if remaining > 0 then begin
      match map_offset t inode (pos + off) with
      | None -> Errno.raise_ EINVAL "write_data: unmapped offset"
      | Some (addr, avail) ->
          let n = min avail remaining in
          (* stream straight from the caller's buffer — no Bytes.sub *)
          Region.write_bytes_from t.region addr src ~pos:off ~len:n;
          Region.clwb t.region addr n;
          copy (off + n) (remaining - n)
    end
  in
  copy 0 len;
  (* non-temporal stores + sfence, then metadata update (paper: metadata
     updates occur after the data has been persisted) *)
  Region.sfence t.region;
  (* non-temporal stores stream straight from the user buffer to NVMM —
     no extra kernel copy (the device-rate charge covers the CPU's store
     stream) *)
  Charge.nvmm_write ?ctx len;
  Charge.fence ?ctx ();
  if pos + len > old_size then begin
    Inode.set_size t.region inode (pos + len);
    Inode.set_mtime t.region inode (now ?ctx t);
    Region.persist t.region (Inode.f_size inode) 16;
    Charge.write_lines ?ctx 1
  end;
  len

let read_data ?ctx t inode ~pos ~len =
  let size = Inode.size t.region inode in
  let len = max 0 (min len (size - pos)) in
  let out = Bytes.create len in
  let rec copy off remaining =
    if remaining > 0 then begin
      match map_offset t inode (pos + off) with
      | None -> Errno.raise_ EINVAL "read_data: unmapped offset"
      | Some (addr, avail) ->
          let n = min avail remaining in
          (* fill the result in place — no intermediate copy *)
          Region.read_bytes_into t.region addr out ~pos:off ~len:n;
          copy (off + n) (remaining - n)
    end
  in
  copy 0 len;
  Charge.nvmm_read ?ctx len;
  Charge.memcpy ?ctx len;
  out

let free_data ?ctx t _w inode =
  let balloc = t.layout.Layout.balloc in
  let quid = quota_uid_of_inode t inode in
  let freed = ref 0 in
  let extents = ref [] in
  Inode.iter_extents t.region inode (fun addr blocks ->
      extents := (addr, blocks) :: !extents);
  List.iter
    (fun (addr, blocks) ->
      freed := !freed + blocks;
      Simurgh_alloc.Block_alloc.free ?ctx balloc ~addr blocks)
    !extents;
  (* free the overflow chain blocks themselves *)
  let bs = block_size t in
  let rec chain b =
    if b <> 0 then begin
      let nxt = Region.read_u62 t.region (Inode.ov_next b) in
      let ov_blocks = (Inode.overflow_bytes + bs - 1) / bs in
      freed := !freed + ov_blocks;
      Simurgh_alloc.Block_alloc.free ?ctx balloc ~addr:b ov_blocks;
      chain nxt
    end
  in
  chain (Region.read_u62 t.region (Inode.f_overflow inode));
  match quid with Some uid -> quota_release t ~uid !freed | None -> ()

(* --- byte-range data path (range_locks mode) ------------------------------ *)

(* Lock order, outermost first — every path acquires along this chain,
   so no cycle is possible:

     directory row (unlink only)
       -> whole-file lock, used as a *fence*: shared by every data
          operation for its full duration, exclusive by truncate /
          O_TRUNC / fallocate / unlink to drain and exclude them all
         -> 4 KiB row locks, ascending row order, only the rows
            covering [pos, pos+len) (appends take none: the reservation
            already makes their byte range private)
           -> extent-map lock, innermost: shared around every
              map_offset/data copy, exclusive around extent staging and
              the size publish

   The append publish-wait holds only the fence (shared) — predecessors
   need the extent lock and their own reservation, never ours. *)

let with_fence_shared ?ctx t inode f =
  match ctx with
  | None -> f ()
  | Some c -> Simurgh_sim.Vlock.Rw.with_read c (Locks.file_lock t.locks inode) f

let with_fence_excl ?ctx t inode f =
  match ctx with
  | None -> f ()
  | Some c ->
      Simurgh_sim.Vlock.Rw.with_write c (Locks.file_lock t.locks inode) f

(* Hold every row covering [pos, pos+len) across [f], acquired in
   ascending row order (two writers covering overlapping spans always
   meet on the first shared row, never in opposite order). *)
let with_rows ?ctx t inode ~pos ~len ~excl f =
  match ctx with
  | None -> f ()
  | Some c ->
      let rec go = function
        | [] -> f ()
        | row :: rest ->
            let l = Locks.range_lock t.locks inode ~row in
            if excl then
              Simurgh_sim.Vlock.Rw.with_write c l (fun () -> go rest)
            else Simurgh_sim.Vlock.Rw.with_read c l (fun () -> go rest)
      in
      go (Locks.rows_of_range ~pos ~len)

let with_extent_read ?ctx t inode f =
  match ctx with
  | None -> f ()
  | Some c ->
      Simurgh_sim.Vlock.Rw.with_read c (Locks.extent_lock t.locks inode) f

let with_extent_write ?ctx t inode f =
  match ctx with
  | None -> f ()
  | Some c ->
      Simurgh_sim.Vlock.Rw.with_write c (Locks.extent_lock t.locks inode) f

(* The volatile size pair of an open file.  [reserved] is bumped by a
   fetch-and-add before any byte is written; [published] trails it and
   mirrors the persistent size word.  The registry mints the record
   atomically with both words [-1]; the first data operation fills them
   from the inode under the extent lock (shared), which orders the read
   after any in-flight publisher.  The sentinel check + store sequence
   has no scheduling point, so exactly one thread performs the fill. *)
let state_of ?ctx t inode =
  let st = Locks.file_state t.locks inode in
  if st.Locks.published < 0 then
    with_extent_read ?ctx t inode (fun () ->
        if st.Locks.published < 0 then begin
          let size = Inode.size t.region inode in
          st.Locks.reserved <- size;
          st.Locks.published <- size
        end);
  st

(* Stream [src] into [pos, pos+len) without a fence: the caller batches
   one sfence over the whole operation (hole zeroing included). *)
let range_copy ?ctx t inode ~pos src =
  let len = Bytes.length src in
  let rec copy off remaining =
    if remaining > 0 then
      match map_offset t inode (pos + off) with
      | None -> Errno.raise_ EINVAL "write_data: unmapped offset"
      | Some (addr, avail) ->
          let n = min avail remaining in
          Region.ntstore_from t.region addr src ~pos:off ~len:n;
          copy (off + n) (remaining - n)
  in
  copy 0 len;
  Charge.nvmm_write ?ctx len

let range_pwrite ?ctx t w inode ~pos src =
  let len = Bytes.length src in
  if len = 0 then 0
  else
    with_fence_shared ?ctx t inode @@ fun () ->
    let st = state_of ?ctx t inode in
    let overwrite () =
      (* bytes below the published size: only the covered rows, extent
         map shared — disjoint writers never touch the same lock *)
      with_rows ?ctx t inode ~pos ~len ~excl:true @@ fun () ->
      with_extent_read ?ctx t inode (fun () ->
          range_copy ?ctx t inode ~pos src);
      Region.sfence t.region;
      Charge.fence ?ctx ();
      len
    in
    if pos + len <= st.Locks.published then overwrite ()
    else begin
      (* extending write: drain in-flight appends so the tail is
         quiescent (holding only the fence shared), then claim it *)
      Simurgh_sim.Schedule.wait_while (fun () ->
          st.Locks.reserved <> st.Locks.published);
      (* an append may have grown the file past us while we waited *)
      if pos + len <= st.Locks.published then overwrite ()
      else begin
        let old_size = st.Locks.published in
        st.Locks.reserved <- pos + len;
        Charge.atomic ?ctx ~contended:true ();
        let from = min pos old_size in
        with_rows ?ctx t inode ~pos:from ~len:(pos + len - from) ~excl:true
        @@ fun () ->
        with_extent_write ?ctx t inode (fun () ->
            ensure_capacity ?ctx ~staged:true t w inode (pos + len));
        (* staged extent slots durable before any data lands in them *)
        Region.sfence t.region;
        with_extent_read ?ctx t inode (fun () ->
            if pos > old_size then
              zero_span ?ctx t inode ~from:old_size ~upto:pos;
            range_copy ?ctx t inode ~pos src);
        Region.sfence t.region;
        Charge.fence ?ctx ();
        (* in-order publish; the drain above made this immediate *)
        Simurgh_sim.Schedule.wait_while (fun () ->
            st.Locks.published <> old_size);
        with_extent_write ?ctx t inode (fun () ->
            Inode.set_size t.region inode (pos + len);
            Inode.set_mtime t.region inode (now ?ctx t);
            Region.persist t.region (Inode.f_size inode) 16;
            Charge.write_lines ?ctx 1;
            st.Locks.published <- pos + len);
        len
      end
    end

(* Concurrent append: reserve [r0, r0+len) with a fetch-and-add on the
   volatile size word (no row locks — the reservation is the mutual
   exclusion), write the bytes, then publish the new size in reservation
   order.  The size word is a single 8-aligned u62 store, so a crash
   either shows the old size or the new one — never a size covering
   bytes whose sfence had not retired. *)
let range_append ?ctx t w inode src =
  let len = Bytes.length src in
  with_fence_shared ?ctx t inode @@ fun () ->
  let st = state_of ?ctx t inode in
  let r0 = st.Locks.reserved in
  st.Locks.reserved <- r0 + len;
  Charge.atomic ?ctx ~contended:true ();
  if len > 0 then begin
    with_extent_write ?ctx t inode (fun () ->
        ensure_capacity ?ctx ~staged:true t w inode (r0 + len));
    Region.sfence t.region;
    with_extent_read ?ctx t inode (fun () ->
        range_copy ?ctx t inode ~pos:r0 src);
    Region.sfence t.region;
    Charge.fence ?ctx ();
    (* wait for every earlier reservation to publish, so the size never
       covers a hole another append has not written yet *)
    Simurgh_sim.Schedule.wait_while (fun () -> st.Locks.published <> r0);
    with_extent_write ?ctx t inode (fun () ->
        Inode.set_size t.region inode (r0 + len);
        Inode.set_mtime t.region inode (now ?ctx t);
        Region.persist t.region (Inode.f_size inode) 16;
        Charge.write_lines ?ctx 1;
        st.Locks.published <- r0 + len)
  end;
  r0 + len

let range_pread ?ctx t inode ~pos ~len =
  with_fence_shared ?ctx t inode @@ fun () ->
  let st = state_of ?ctx t inode in
  (* clamp against the volatile published size: reserved-but-unwritten
     bytes are never readable *)
  let len = max 0 (min len (st.Locks.published - pos)) in
  with_rows ?ctx t inode ~pos ~len ~excl:false @@ fun () ->
  with_extent_read ?ctx t inode @@ fun () ->
  let out = Bytes.create len in
  let rec copy off remaining =
    if remaining > 0 then
      match map_offset t inode (pos + off) with
      | None -> Errno.raise_ EINVAL "read_data: unmapped offset"
      | Some (addr, avail) ->
          let n = min avail remaining in
          Region.read_bytes_into t.region addr out ~pos:off ~len:n;
          copy (off + n) (remaining - n)
  in
  copy 0 len;
  Charge.nvmm_read ?ctx len;
  Charge.memcpy ?ctx len;
  out


(* --- unlink / rmdir (Fig. 5b) --------------------------------------------- *)

let remove_entry ?ctx t (w : Hw.Protected.privileged) (d : dirref) ~name:n
    ~check_dir =
  Hw.Protected.check_privileged w t.penv.pcpu;
  let row = Dirblock.lock_row_of_name n in
  check_perm_fe ?ctx t d.dfentry ~want:3;
  (* block frees are deferred past the row critical section: once the
     slot is zeroed the ranges are unreachable, and freeing them inside
     the busy window would nest allocator-segment contention under the
     directory row lock *)
  let deferred : (int * int) list ref = ref [] in
  (* owner uid the deferred blocks were charged to (captured before the
     inode is zeroed below; [None] when nothing is freed or quotas off) *)
  let freed_owner = ref None in
  lock_row ?ctx t d row (fun () ->
      let found, hops = Dirblock.find t.region ~head:d.dhead ~name:n in
      Charge.read_lines ?ctx (hops + 1);
      match found with
      | None -> Errno.raise_ ENOENT n
      | Some (blk, entry_row, s, fe) ->
          let is_dir = Fentry.is_dir t.region fe in
          (match check_dir with
          | `Must_be_dir when not is_dir -> Errno.raise_ ENOTDIR n
          | `Must_not_be_dir when is_dir -> Errno.raise_ EISDIR n
          | _ -> ());
          let inode = Fentry.target t.region fe in
          let dirhead = if is_dir then Fentry.dirblock t.region fe else 0 in
          if is_dir && Dirblock.count_entries t.region dirhead > 0 then
            Errno.raise_ ENOTEMPTY n;
          (* Fig. 5b step 1: busy flag for the whole line *)
          set_row_busy ?ctx t d row true;
          hook t "unlink:busy";
          (* step 2: file entry valid unset, dirty set *)
          Simurgh_alloc.Slab_alloc.begin_free ?ctx t.layout.Layout.fentry_slab fe;
          hook t "unlink:fentry-dirty";
          (* step 3: inode zeroed (via its own flag protocol) *)
          let nlink = Inode.nlink t.region inode in
          if nlink > 1 then begin
            Inode.set_nlink t.region inode (nlink - 1);
            Region.persist t.region inode 16;
            Charge.write_lines ?ctx 1
          end
          else begin
            let bs = block_size t in
            freed_owner := quota_uid_of_inode t inode;
            (* collect every range now (the inode is zeroed below), free
               them after the row lock is released *)
            Inode.iter_extents t.region inode (fun addr blocks ->
                deferred := (addr, blocks) :: !deferred);
            let rec ov b =
              if b <> 0 then begin
                let nxt = Region.read_u62 t.region (Inode.ov_next b) in
                deferred :=
                  (b, (Inode.overflow_bytes + bs - 1) / bs) :: !deferred;
                ov nxt
              end
            in
            ov (Region.read_u62 t.region (Inode.f_overflow inode));
            (match Fentry.spill t.region fe with
            | Some (addr, len) ->
                deferred := (addr, (len + bs - 1) / bs) :: !deferred
            | None -> ());
            if is_dir then begin
              (* the (empty) hash-block chain *)
              let rec chain b =
                if b <> 0 then begin
                  let nxt = Dirblock.next t.region b in
                  deferred :=
                    (b, (Dirblock.size_of t.region b + bs - 1) / bs)
                    :: !deferred;
                  chain nxt
                end
              in
              chain dirhead
            end;
            (* under range locking, in-flight data operations hold the
               whole-file lock shared for their entire duration (even
               through fds opened before the unlink): one exclusive pass
               drains them all before the inode and its blocks go away.
               Safe under the directory row lock — data ops never wait
               on directory rows, so the holders always finish. *)
            (if t.range_locks then
               match ctx with
               | None -> ()
               | Some c ->
                   Simurgh_sim.Vlock.Rw.with_write c
                     (Locks.file_lock t.locks inode)
                     (fun () -> ()));
            Simurgh_alloc.Slab_alloc.free ?ctx t.layout.Layout.inode_slab inode;
            Locks.drop_file_lock t.locks inode;
            (* the directory is gone: reclaim its row/append locks so the
               volatile registries do not grow without bound, and bump
               its resolve-cache generation (the head address may be
               recycled by a future directory) *)
            if is_dir then begin
              Locks.drop_dir_locks t.locks ~dir:dirhead;
              rcache_invalidate_dir t dirhead
            end
          end;
          hook t "unlink:inode";
          (* step 4: file entry zeroed *)
          Simurgh_alloc.Slab_alloc.finish_free ?ctx t.layout.Layout.fentry_slab fe;
          hook t "unlink:fentry-zero";
          (* step 5: slot pointer zeroed *)
          Dirblock.set_slot t.region blk entry_row s 0;
          Charge.write_lines ?ctx 1;
          rcache_invalidate t d n;
          hook t "unlink:slot";
          (* step 6 (optional): free an empty non-head hash block *)
          if blk <> d.dhead && Dirblock.block_empty t.region blk then begin
            chain_guard ?ctx t d.dhead
              (fun () ->
                (* find predecessor and unlink *)
                let rec pred p =
                  if p = 0 then ()
                  else
                    let nxt = Dirblock.next t.region p in
                    if nxt = blk then begin
                      Dirblock.set_next t.region p (Dirblock.next t.region blk);
                      free_dirblock ?ctx ?owner:(dir_quota_uid t d) t blk
                    end
                    else pred nxt
                in
                pred d.dhead);
            Charge.write_lines ?ctx 2
          end;
          hook t "unlink:done";
          set_row_busy ?ctx t d row false);
  List.iter
    (fun (addr, blocks) ->
      Simurgh_alloc.Block_alloc.free ?ctx t.layout.Layout.balloc ~addr blocks)
    !deferred;
  match !freed_owner with
  | Some uid ->
      quota_release t ~uid (List.fold_left (fun a (_, b) -> a + b) 0 !deferred)
  | None -> ()

let unlink ?ctx t path =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_unlink @@ fun w ->
  let d, n = resolve_parent ?ctx t path in
  remove_entry ?ctx t w d ~name:n ~check_dir:`Must_not_be_dir

let rmdir ?ctx t path =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_rmdir @@ fun w ->
  let d, n = resolve_parent ?ctx t path in
  remove_entry ?ctx t w d ~name:n ~check_dir:`Must_be_dir

(* --- rename (Fig. 5c / cross-directory) ----------------------------------- *)

(* Same-directory rename, Fig. 5c.  [d] is the directory, [old_n] the
   existing name, [new_n] the new one. *)
let rename_same_dir ?ctx t w (d : dirref) ~old_n ~new_n =
  Hw.Protected.check_privileged w t.penv.pcpu;
  check_perm_fe ?ctx t d.dfentry ~want:3;
  let old_row = Dirblock.lock_row_of_name old_n in
  let new_row = Dirblock.lock_row_of_name new_n in
  let lock2 f =
    if old_row = new_row then lock_row ?ctx t d old_row f
    else
      let r1 = min old_row new_row and r2 = max old_row new_row in
      lock_row ?ctx t d r1 (fun () -> lock_row ?ctx t d r2 f)
  in
  lock2 (fun () ->
      let found, hops = Dirblock.find t.region ~head:d.dhead ~name:old_n in
      Charge.read_lines ?ctx (hops + 1);
      match found with
      | None -> Errno.raise_ ENOENT old_n
      | Some (oblk, orow, oslot, ofe) ->
          (* destination exists? POSIX: replace it *)
          (match Dirblock.find t.region ~head:d.dhead ~name:new_n with
          | Some _, _ ->
              remove_entry ?ctx t w d ~name:new_n
                ~check_dir:
                  (if Fentry.is_dir t.region ofe then `Must_be_dir
                   else `Must_not_be_dir)
          | None, h -> Charge.read_lines ?ctx (h + 1));
          let inode = Fentry.target t.region ofe in
          (* step 1-2: shadow file entry pointing at the same inode *)
          let nfe = alloc_fentry ?ctx t in
          Fentry.init t.region nfe ~name:new_n
            ~dir:(Fentry.is_dir t.region ofe)
            ~symlink:(Fentry.is_symlink t.region ofe)
            ~target:inode
            ~alloc_spill:(fun b ->
              alloc_spill ?ctx ?owner:(quota_uid_of_inode t inode) t b);
          if Fentry.is_dir t.region ofe then
            Fentry.set_dirblock t.region nfe (Fentry.dirblock t.region ofe);
          (* the shadow carries the same identity as the original *)
          if t.secure then Fentry.copy_owner t.region ~src:ofe ~dst:nfe;
          Charge.write_lines ?ctx 2;
          hook t "rename:shadow";
          (* striped mode: reserve the destination slot before the log
             window (the held row lock keeps it free), so the
             directory-global log lock covers only the short persistent
             rename sequence below, never a chain scan *)
          let reserved =
            if Locks.striped t.locks then
              Some
                (striped_reserve ?ctx ?owner:(dir_quota_uid t d) t d
                   ~hash:(Name_hash.hash new_n))
            else None
          in
          (* the claimed persistent log slot is held from write to clear *)
          with_log_slot ?ctx t d.dhead (fun ~slot ~epoch ->
              (* step 3-4: mark the hash block and the old line busy *)
              Dirblock.Log.write t.region d.dhead ~slot ~epoch ~src:d.dhead
                ~dst:d.dhead ~fentry:ofe ~new_entry:nfe;
              set_row_busy ?ctx t d old_row true;
              Charge.write_lines ?ctx 2;
              hook t "rename:log";
              (* step 5: old slot now points to the shadow (hash
                 mismatch) *)
              Dirblock.set_slot t.region oblk orow oslot nfe;
              Charge.write_lines ?ctx 1;
              hook t "rename:swap";
              (* step 6: the old file entry is no longer needed *)
              Simurgh_alloc.Slab_alloc.free ?ctx t.layout.Layout.fentry_slab
                ofe;
              hook t "rename:oldfree";
              (* step 7: pointer in the new line *)
              (match reserved with
              | Some (blk, row, s) ->
                  Dirblock.set_slot t.region blk row s nfe;
                  Charge.write_lines ?ctx 1
              | None ->
                  insert_entry ?ctx ?owner:(dir_quota_uid t d) t d ~name:new_n
                    nfe);
              hook t "rename:newslot";
              (* step 8: remove the mismatched pointer from the old line *)
              Dirblock.set_slot t.region oblk orow oslot 0;
              Charge.write_lines ?ctx 1;
              hook t "rename:oldslot";
              Simurgh_alloc.Slab_alloc.commit ?ctx t.layout.Layout.fentry_slab
                nfe;
              set_row_busy ?ctx t d old_row false;
              Dirblock.Log.clear t.region d.dhead ~slot;
              Charge.write_lines ?ctx 2;
              hook t "rename:done");
          rcache_invalidate t d old_n;
          rcache_insert t d new_n nfe)

(* Cross-directory rename: one log entry in the source directory marks
   the transaction (paper Fig. 5 text). *)
let rename_cross_dir ?ctx t w (ds : dirref) ~old_n (dd : dirref) ~new_n =
  Hw.Protected.check_privileged w t.penv.pcpu;
  check_perm_fe ?ctx t ds.dfentry ~want:3;
  check_perm_fe ?ctx t dd.dfentry ~want:3;
  let src_row = Dirblock.lock_row_of_name old_n in
  let dst_row = Dirblock.lock_row_of_name new_n in
  (* deterministic lock order on (dir head, row) *)
  let locks =
    List.sort compare [ (ds.dhead, src_row, ds); (dd.dhead, dst_row, dd) ]
  in
  let rec with_locks ls f =
    match ls with
    | [] -> f ()
    | (_, row, d) :: rest -> lock_row ?ctx t d row (fun () -> with_locks rest f)
  in
  with_locks locks (fun () ->
      let found, hops = Dirblock.find t.region ~head:ds.dhead ~name:old_n in
      Charge.read_lines ?ctx (hops + 1);
      match found with
      | None -> Errno.raise_ ENOENT old_n
      | Some (oblk, orow, oslot, ofe) ->
          (match Dirblock.find t.region ~head:dd.dhead ~name:new_n with
          | Some _, _ ->
              remove_entry ?ctx t w dd ~name:new_n
                ~check_dir:
                  (if Fentry.is_dir t.region ofe then `Must_be_dir
                   else `Must_not_be_dir)
          | None, h -> Charge.read_lines ?ctx (h + 1));
          let inode = Fentry.target t.region ofe in
          (* shadow entry in the destination *)
          let nfe = alloc_fentry ?ctx t in
          Fentry.init t.region nfe ~name:new_n
            ~dir:(Fentry.is_dir t.region ofe)
            ~symlink:(Fentry.is_symlink t.region ofe)
            ~target:inode
            ~alloc_spill:(fun b ->
              alloc_spill ?ctx ?owner:(quota_uid_of_inode t inode) t b);
          if Fentry.is_dir t.region ofe then
            Fentry.set_dirblock t.region nfe (Fentry.dirblock t.region ofe);
          if t.secure then Fentry.copy_owner t.region ~src:ofe ~dst:nfe;
          Charge.write_lines ?ctx 2;
          hook t "xrename:shadow";
          (* striped mode: reserve the destination slot ahead of the log
             window, as in [rename_same_dir] *)
          let reserved =
            if Locks.striped t.locks then
              Some
                (striped_reserve ?ctx ?owner:(dir_quota_uid t dd) t dd
                   ~hash:(Name_hash.hash new_n))
            else None
          in
          with_log_slot ?ctx t ds.dhead (fun ~slot ~epoch ->
              (* step 1-2: the operation recorded in the source log
                 entry *)
              Dirblock.Log.write t.region ds.dhead ~slot ~epoch ~src:ds.dhead
                ~dst:dd.dhead ~fentry:ofe ~new_entry:nfe;
              Charge.write_lines ?ctx 2;
              hook t "xrename:log";
              (* step 3: both rows busy *)
              set_row_busy ?ctx t ds src_row true;
              set_row_busy ?ctx t dd dst_row true;
              hook t "xrename:busy";
              (* step 4: perform — link destination, clear source *)
              (match reserved with
              | Some (blk, row, s) ->
                  Dirblock.set_slot t.region blk row s nfe;
                  Charge.write_lines ?ctx 1
              | None ->
                  insert_entry ?ctx ?owner:(dir_quota_uid t dd) t dd
                    ~name:new_n nfe);
              hook t "xrename:dstslot";
              Dirblock.set_slot t.region oblk orow oslot 0;
              Charge.write_lines ?ctx 1;
              hook t "xrename:srcslot";
              Simurgh_alloc.Slab_alloc.free ?ctx t.layout.Layout.fentry_slab
                ofe;
              Simurgh_alloc.Slab_alloc.commit ?ctx t.layout.Layout.fentry_slab
                nfe;
              hook t "xrename:oldfree";
              set_row_busy ?ctx t ds src_row false;
              set_row_busy ?ctx t dd dst_row false;
              Dirblock.Log.clear t.region ds.dhead ~slot;
              Charge.write_lines ?ctx 2;
              hook t "xrename:done");
          rcache_invalidate t ds old_n;
          rcache_insert t dd new_n nfe)

(* POSIX: renaming a directory into its own subtree (rename /a /a/b/c)
   must fail EINVAL — performing it would detach the subtree into an
   unreachable cycle.  [sh] heads the source directory's hash chain;
   walk its subtree looking for the destination parent.  Runs before
   the lock window (the locked paths re-find the source), like the
   kernel's lock_rename ancestor check. *)
let check_rename_cycle ?ctx t ~src_head:sh (dd : dirref) path =
  let rec subtree h =
    if h = dd.dhead then Errno.raise_ EINVAL path;
    Charge.read_lines ?ctx 1;
    Dirblock.iter_entries t.region h (fun _ _ _ fe ->
        if Fentry.is_dir t.region fe then
          subtree (Fentry.dirblock t.region fe))
  in
  subtree sh

let rename ?ctx t old_path new_path =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_rename @@ fun w ->
  let ds, old_n = resolve_parent ?ctx t old_path in
  let dd, new_n = resolve_parent ?ctx t new_path in
  if ds.dhead = dd.dhead && String.equal old_n new_n then begin
    (* POSIX: renaming a file to itself succeeds and changes nothing *)
    match dir_lookup ?ctx t ds old_n with
    | Some _ -> ()
    | None -> Errno.raise_ ENOENT old_path
  end
  else begin
    (* uncharged peek: only directory sources need the cycle walk (the
       locked paths below re-find the source and charge as before) *)
    (match Dirblock.find t.region ~head:ds.dhead ~name:old_n with
    | Some (_, _, _, ofe), _ when Fentry.is_dir t.region ofe ->
        check_rename_cycle ?ctx t
          ~src_head:(Fentry.dirblock t.region ofe)
          dd new_path
    | _ -> ());
    if ds.dhead = dd.dhead then rename_same_dir ?ctx t w ds ~old_n ~new_n
    else rename_cross_dir ?ctx t w ds ~old_n dd ~new_n
  end

(* --- open / close / read / write ------------------------------------------ *)

let stat_of_inode t inode =
  {
    Types.kind =
      (match Inode.kind t.region inode with
      | Inode.File -> Types.File
      | Inode.Dir -> Types.Dir
      | Inode.Symlink -> Types.Symlink);
    perm = Inode.perm t.region inode;
    uid = Inode.uid t.region inode;
    gid = Inode.gid t.region inode;
    nlink = Inode.nlink t.region inode;
    size = Inode.size t.region inode;
    mtime = Inode.mtime t.region inode;
    ino = inode;
  }

let stat ?ctx t path =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_stat @@ fun _w ->
  let _, fe = resolve ?ctx t path in
  Charge.read_lines ?ctx 2;
  stat_of_inode t (Fentry.target t.region fe)

let exists ?ctx t path =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_exists @@ fun _w ->
  match resolve ?ctx t path with
  | _ -> true
  | exception Errno.Err ((ENOENT | ENOTDIR), _) -> false

let openf ?ctx t (flags : Types.open_flags) path =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_open @@ fun w ->
  let fe =
    match resolve ?ctx t path with
    | _, fe ->
        if flags.Types.excl && flags.Types.create then Errno.raise_ EEXIST path;
        fe
    | exception Errno.Err (ENOENT, _) when flags.Types.create ->
        let d, n = resolve_parent ?ctx t path in
        create_at ?ctx t w d ~name:n ~kind:Inode.File ~perm:0o644
          ~target_inode:None
    | exception e -> raise e
  in
  if Fentry.is_dir t.region fe then Errno.raise_ EISDIR path;
  let inode = Fentry.target t.region fe in
  if flags.Types.read then check_perm_fe ?ctx t fe ~want:4;
  if flags.Types.write then check_perm_fe ?ctx t fe ~want:2;
  (if flags.Types.trunc then
     let trunc_body () =
       if Inode.size t.region inode > 0 then begin
         free_data ?ctx t w inode;
         let rec clear_inline k =
           if k < Inode.inline_extents then begin
             Inode.write_extent t.region inode k ~addr:0 ~blocks:0;
             clear_inline (k + 1)
           end
         in
         clear_inline 0;
         Region.write_u62 t.region (Inode.f_overflow inode) 0;
         Inode.set_size t.region inode 0;
         Region.persist t.region inode Inode.payload_size;
         Charge.write_lines ?ctx 2
       end
     in
     if t.range_locks then
       with_fence_excl ?ctx t inode (fun () ->
           trunc_body ();
           let st = state_of ?ctx t inode in
           st.Locks.reserved <- 0;
           st.Locks.published <- 0)
     else trunc_body ());
  let mode =
    match (flags.Types.read, flags.Types.write) with
    | true, true -> Openfile.Rdwr
    | false, true -> Openfile.Wronly
    | _ -> Openfile.Rdonly
  in
  Openfile.alloc ?ctx t.openfiles ~mode ~path ~inode ~append:flags.Types.append

let close ?ctx t fd =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_close @@ fun _w ->
  if not (Openfile.close ?ctx t.openfiles fd) then
    Errno.raise_ EBADF (string_of_int fd)

let fd_entry t fd =
  match Openfile.get t.openfiles fd with
  | Some e -> e
  | None -> Errno.raise_ EBADF (string_of_int fd)

let with_write_lock ?ctx t inode f =
  if t.relaxed_writes then f ()
  else
    match ctx with
    | None -> f ()
    | Some c ->
        let l = Locks.file_lock t.locks inode in
        (* exception-safe: an EIO mid-write must not leave the file
           locked — the process keeps running after a media error *)
        Simurgh_sim.Vlock.Rw.with_write c l f

let with_read_lock ?ctx t inode f =
  if t.relaxed_writes then f ()
  else
    match ctx with
    | None -> f ()
    | Some c ->
        let l = Locks.file_lock t.locks inode in
        Simurgh_sim.Vlock.Rw.with_read c l f

let pwrite ?ctx t fd ~pos src =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_pwrite @@ fun w ->
  if pos < 0 then Errno.raise_ EINVAL (Printf.sprintf "pwrite pos %d" pos);
  (* [pos + len] near max_int wraps negative and would sail past the
     negative-arg checks into the size words (and, in range mode, the
     volatile reservation) — reject like Linux's EINVAL on offset+count
     overflow *)
  if pos > max_int - Bytes.length src then
    Errno.raise_ EINVAL (Printf.sprintf "pwrite pos %d + len overflow" pos);
  let e = fd_entry t fd in
  if e.Openfile.mode = Openfile.Rdonly then Errno.raise_ EBADF "read-only fd";
  if t.range_locks then range_pwrite ?ctx t w e.Openfile.inode ~pos src
  else
    with_write_lock ?ctx t e.Openfile.inode (fun () ->
        write_data ?ctx t w e.Openfile.inode ~pos src)

let append ?ctx t fd src =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_append @@ fun w ->
  let e = fd_entry t fd in
  if e.Openfile.mode = Openfile.Rdonly then Errno.raise_ EBADF "read-only fd";
  if t.range_locks then begin
    let newpos = range_append ?ctx t w e.Openfile.inode src in
    e.Openfile.pos <- newpos;
    Bytes.length src
  end
  else
    with_write_lock ?ctx t e.Openfile.inode (fun () ->
        let pos = Inode.size t.region e.Openfile.inode in
        let n = write_data ?ctx t w e.Openfile.inode ~pos src in
        e.Openfile.pos <- pos + n;
        n)

let pread ?ctx t fd ~pos ~len =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_pread @@ fun _w ->
  if pos < 0 then Errno.raise_ EINVAL (Printf.sprintf "pread pos %d" pos);
  if len < 0 then Errno.raise_ EINVAL (Printf.sprintf "pread len %d" len);
  if pos > max_int - len then
    Errno.raise_ EINVAL (Printf.sprintf "pread pos %d + len %d overflow" pos len);
  let e = fd_entry t fd in
  if e.Openfile.mode = Openfile.Wronly then Errno.raise_ EBADF "write-only fd";
  if t.range_locks then range_pread ?ctx t e.Openfile.inode ~pos ~len
  else
    with_read_lock ?ctx t e.Openfile.inode (fun () ->
        read_data ?ctx t e.Openfile.inode ~pos ~len)

let fallocate ?ctx t fd ~len =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_fallocate @@ fun w ->
  let e = fd_entry t fd in
  if e.Openfile.mode = Openfile.Rdonly then Errno.raise_ EBADF "read-only fd";
  let inode = e.Openfile.inode in
  let body () =
    ensure_capacity ?ctx t w inode len;
    if Inode.size t.region inode < len then begin
      Inode.set_size t.region inode len;
      Region.persist t.region (Inode.f_size inode) 8;
      Charge.write_lines ?ctx 1
    end
  in
  if t.range_locks then
    with_fence_excl ?ctx t inode (fun () ->
        body ();
        (* the fence drained every reservation, so both words move *)
        let st = state_of ?ctx t inode in
        if len > st.Locks.published then begin
          st.Locks.reserved <- len;
          st.Locks.published <- len
        end)
  else with_write_lock ?ctx t inode body

(* Simurgh persists synchronously; fsync only needs the entry charge. *)
let fsync ?ctx t fd =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_fsync @@ fun _w ->
  ignore (fd_entry t fd);
  Charge.fence ?ctx ()

let truncate ?ctx t path len =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_truncate @@ fun w ->
  let _, fe = resolve ?ctx t path in
  if Fentry.is_dir t.region fe then Errno.raise_ EISDIR path;
  let inode = Fentry.target t.region fe in
  check_perm_fe ?ctx t fe ~want:2;
  let body () =
    let size = Inode.size t.region inode in
    if len < size then begin
      (* shrink: simplest correct strategy — free everything beyond a
         block boundary by rebuilding the extent list *)
      if len = 0 then begin
        free_data ?ctx t w inode;
        for k = 0 to Inode.inline_extents - 1 do
          Inode.write_extent t.region inode k ~addr:0 ~blocks:0
        done;
        Region.write_u62 t.region (Inode.f_overflow inode) 0
      end;
      Inode.set_size t.region inode len;
      Region.persist t.region inode Inode.payload_size;
      Charge.write_lines ?ctx 2
    end
    else if len > size then begin
      ensure_capacity ?ctx t w inode len;
      (* a partial shrink keeps its blocks, so the bytes re-exposed by
         growing are stale file contents — POSIX says they read zero *)
      zero_span ?ctx t inode ~from:size ~upto:len;
      Inode.set_size t.region inode len;
      Region.persist t.region (Inode.f_size inode) 8;
      Charge.write_lines ?ctx 1
    end
  in
  if t.range_locks then
    with_fence_excl ?ctx t inode (fun () ->
        body ();
        (* nothing is in flight behind the exclusive fence: reset the
           volatile size pair to the new truth (ctx or not — sequential
           callers rely on this bookkeeping too) *)
        let st = state_of ?ctx t inode in
        st.Locks.reserved <- len;
        st.Locks.published <- len)
  else with_write_lock ?ctx t inode body

let readdir ?ctx t path =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_readdir @@ fun _w ->
  let _, fe = resolve ?ctx t path in
  if not (Fentry.is_dir t.region fe) then Errno.raise_ ENOTDIR path;
  check_perm_fe ?ctx t fe ~want:4;
  let head = Fentry.dirblock t.region fe in
  let names = ref [] in
  let blocks = ref 0 in
  Dirblock.iter_chain t.region head (fun _ _ -> incr blocks);
  Dirblock.iter_entries t.region head (fun _ _ _ p ->
      names := Fentry.name t.region p :: !names);
  Charge.read_lines ?ctx (!blocks * 8);
  List.rev !names

let readlink ?ctx t path =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_readlink @@ fun _w ->
  let _, fe = resolve ?ctx ~follow:false t path in
  if not (Fentry.is_symlink t.region fe) then Errno.raise_ EINVAL path;
  Charge.read_lines ?ctx 2;
  read_symlink_target t fe

let statfs ?ctx t =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_statfs @@ fun _w ->
  let balloc = t.layout.Layout.balloc in
  let total = Simurgh_alloc.Block_alloc.total_blocks balloc in
  (* the free-list walk never touches quarantined blocks (both the
     runtime [free] and recovery's rebuild withhold them), so free,
     used and quarantined partition the capacity exactly *)
  let free = Simurgh_alloc.Block_alloc.free_blocks balloc in
  let quarantined = Simurgh_alloc.Block_alloc.quarantined_blocks balloc in
  {
    block_size = Simurgh_alloc.Block_alloc.block_size balloc;
    total_blocks = total;
    free_blocks = free;
    used_blocks = total - free - quarantined;
    quarantined_blocks = quarantined;
    live_inodes =
      Simurgh_alloc.Slab_alloc.live_objects t.layout.Layout.inode_slab;
    live_fentries =
      Simurgh_alloc.Slab_alloc.live_objects t.layout.Layout.fentry_slab;
  }

let chmod ?ctx t path perm =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_chmod @@ fun _w ->
  let _, fe = resolve ?ctx t path in
  let inode = Fentry.target t.region fe in
  let euid, _ = creds ?ctx t in
  let owner_uid =
    if t.secure then
      let uid, _, _ = Fentry.owner t.region fe in
      uid
    else Inode.uid t.region inode
  in
  if euid <> 0 && owner_uid <> euid then Errno.raise_ EACCES path;
  let m = Inode.mode t.region inode in
  Inode.set_mode t.region inode
    ((m land lnot Inode.perm_mask) lor (perm land Inode.perm_mask));
  Region.persist t.region inode 8;
  (* keep the fentry-side word the protected checks read in sync; a
     hardlinked inode's sibling names keep their stamped word (documented
     deviation — see DESIGN.md §16) *)
  if t.secure then begin
    let uid, gid, _ = Fentry.owner t.region fe in
    Fentry.set_owner t.region fe ~uid ~gid ~perm:(perm land Inode.perm_mask)
  end;
  Charge.write_lines ?ctx 1

let utimes ?ctx t path mtime =
  entry_charge ?ctx t;
  media_guard t @@ fun () ->
  t.penv.g_utimes @@ fun _w ->
  let _, fe = resolve ?ctx t path in
  let inode = Fentry.target t.region fe in
  Inode.set_mtime t.region inode mtime;
  Region.persist t.region (Inode.f_mtime inode) 8;
  Charge.write_lines ?ctx 1
