(** Per-uid block quotas for the security plane.

    A quota table is volatile DRAM state shared by every process attached
    to a region (it rides in the region's user slot next to the layout and
    the lock registry).  It starts empty after a remount: a tenant manager
    that wants exact post-crash accounting installs limits at mount time
    before admitting writers.  Accounting is keyed by the *owner* uid
    of the inode the blocks belong to — charge and release therefore always
    balance, even when one tenant writes to a file another tenant owns.

    The table starts disabled: until the first limit is installed, charge
    and release are no-ops with no cycle cost, so legacy single-tenant
    runs and the published figures are unaffected. *)

type t = {
  mutable enabled : bool;
  limits : (int, int) Hashtbl.t;  (** uid -> max blocks (absent = none) *)
  used : (int, int) Hashtbl.t;  (** uid -> blocks currently charged *)
}

let create () =
  { enabled = false; limits = Hashtbl.create 8; used = Hashtbl.create 8 }

let enabled t = t.enabled

let set_limit t ~uid ~blocks =
  t.enabled <- true;
  if blocks < 0 then Hashtbl.remove t.limits uid
  else Hashtbl.replace t.limits uid blocks

let limit t ~uid = Option.value ~default:max_int (Hashtbl.find_opt t.limits uid)
let used t ~uid = Option.value ~default:0 (Hashtbl.find_opt t.used uid)

(** Attempt to charge [blocks] blocks to [uid]; returns [false] (charging
    nothing) if that would exceed the uid's limit. *)
let charge t ~uid ~blocks =
  if (not t.enabled) || blocks = 0 then true
  else begin
    let u = used t ~uid in
    if u + blocks > limit t ~uid then false
    else begin
      Hashtbl.replace t.used uid (u + blocks);
      true
    end
  end

(** Return [blocks] blocks to [uid]'s budget (on free/unlink/truncate). *)
let release t ~uid ~blocks =
  if t.enabled && blocks > 0 then
    Hashtbl.replace t.used uid (max 0 (used t ~uid - blocks))
