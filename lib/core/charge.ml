(** Virtual-time charging helpers.  Every file-system entry point takes
    an optional [Machine.ctx]; with [None] (unit tests) charging is a
    no-op and only the real data-structure work happens. *)

open Simurgh_sim

type ctx = Machine.ctx option

let cpu ?ctx cycles =
  match ctx with None -> () | Some c -> Machine.cpu c cycles

(* Metadata line reads use the blended (partially cached) latency. *)
let read_lines ?ctx n =
  match ctx with None -> () | Some c -> Machine.nvmm_meta_read_lines c n

let write_lines ?ctx n =
  match ctx with None -> () | Some c -> Machine.nvmm_write_lines c n

let nvmm_read ?ctx bytes =
  match ctx with None -> () | Some c -> Machine.nvmm_read c bytes

let nvmm_write ?ctx bytes =
  match ctx with None -> () | Some c -> Machine.nvmm_write c bytes

let memcpy ?ctx bytes =
  match ctx with None -> () | Some c -> Machine.memcpy_cpu c bytes

let fence ?ctx () = match ctx with None -> () | Some c -> Machine.fence c

let atomic ?ctx ~contended () =
  match ctx with None -> () | Some c -> Machine.atomic c ~contended

(** Run [f] with NVMM line writes charged as posted ntstores (see
    {!Machine.with_posted_writes}); identity without a context. *)
let posted ?ctx f =
  match ctx with None -> f () | Some c -> Machine.with_posted_writes c f

let with_spin ?ctx lock f =
  match ctx with
  | None -> f ()
  | Some c ->
      Vlock.Spin.acquire c lock;
      (* exception-safe: a media fault mid-critical-section must not
         leave the lock held (the process keeps running after EIO) *)
      Fun.protect ~finally:(fun () -> Vlock.Spin.release c lock) f
