(** Crash recovery (paper Sections 4.3 "Crash recovery" and 5.5).

    Full-system recovery is a mark-and-sweep pass:

    1. {b Resolve}: every directory first-block with a pending log entry
       (an interrupted intra- or cross-directory rename) is rolled
       forward if the shadow entry became reachable, rolled back
       otherwise.
    2. {b Mark}: traverse the metadata graph from the root, repairing as
       it goes — slots that point to non-live file entries are completed
       deletions (Fig. 5b: "the next process accessing the same line
       identifies a null pointer and completes the remaining steps"), and
       entries linked in a row that does not match their name hash are
       interrupted renames whose remaining steps are executed.
    3. {b Sweep}: reclaim every allocated-but-unreachable metadata object
       and rebuild the block allocator's free lists from the blocks
       referenced by reachable inodes, directory chains and slab
       segments (unreachable directory blocks and extents are implicitly
       reclaimed).

    {b Parallel recovery} (DESIGN.md §14).  All three passes decompose
    into tasks over a {!Simurgh_sim.Workpool} frontier — one task per
    directory for log collection and for mark, one per slab segment /
    directory chain / inode slice for sweep — and the same task set runs
    under one of three drivers, chosen by [?par]:

    + {!Seq} (default): the reference sequential execution;
    + {!Vtime}: virtual-time list scheduling over per-worker
      {!Simurgh_sim.Sthread} clocks, each task's region traffic charged
      to its worker through the shared machine's bandwidth servers —
      this is what the recovery-time figure measures;
    + {!Fibers}: cooperative fibers over the schedule-exploring engine,
      interleaved at every store/lock/atomic — this is what the
      schedule explorer and the race detector drive.

    Parallel recovery is {e schedule-independent}: tasks only make
    commutative, idempotent updates to shared state (set-union marks
    into per-worker shards merged in worker order, bitmap ORs, counter
    increments) and only write media they own (their directory's
    blocks); every repair whose placement depends on allocation order
    (relinking a moved or salvaged entry, growing a chain) is deferred
    to a deterministically-sorted sequential step between rounds.  The
    sched-explorer asserts one media digest and one report across all
    explored interleavings.

    {b Fault containment}: a poisoned line hit during recovery gets a
    bounded re-read ([retry_budget]) and then escalates to quarantine —
    an unreadable directory head detaches the parent slot, an unreadable
    chain-block header truncates the chain, a partially-unreadable chain
    block is spliced out with its readable entries salvaged and
    relinked.  Recovery never lets [Media_error] escape mid-pass and
    never aborts half-swept.

    {b Re-entrancy}: recovery's own stores go through the region like
    any other writer, and [set_crash_hook] labels its semantic store
    points (log resolution, quarantine, repairs, sweep frees) so the
    crash explorer can crash {e into} recovery and re-run it; every pass
    is idempotent, so a second complete run over any such image is a
    media no-op (asserted by digest in {!Explore.run_reentrant}).

    The row-repair logic doubles as the runtime (process-crash) recovery
    path: {!repair_directory} fixes one directory without a global
    scan. *)

open Simurgh_nvmm
module Slab = Simurgh_alloc.Slab_alloc
module Balloc = Simurgh_alloc.Block_alloc
module Machine = Simurgh_sim.Machine
module Sthread = Simurgh_sim.Sthread
module Workpool = Simurgh_sim.Workpool

type report = {
  files : int;
  dirs : int;
  symlinks : int;
  completed_deletes : int;
  completed_renames : int;
  rolled_back_renames : int;
  reclaimed_inodes : int;
  reclaimed_fentries : int;
  cleared_busy_flags : int;
  used_blocks : int;
  free_blocks : int;
  quarantined : int;
      (** namespace entries / subtrees detached because their metadata
          sits on poisoned (uncorrectable) lines *)
  retries : int;  (** bounded media re-reads before quarantine *)
  resolve_passes : int;  (** log-collection passes until fixpoint *)
  mark_tasks : int;  (** directory mark tasks executed *)
  sweep_tasks : int;  (** segment / chain / slice sweep tasks *)
  vtime_cycles : float;
      (** {!Vtime} mode only: the recovery makespan (max worker clock);
          0 under {!Seq} and {!Fibers} *)
}

let pp_report ppf r =
  Fmt.pf ppf
    "files=%d dirs=%d symlinks=%d completed_deletes=%d completed_renames=%d \
     rolled_back=%d reclaimed(inodes=%d fentries=%d) busy_cleared=%d \
     blocks(used=%d free=%d) quarantined=%d retries=%d passes=%d \
     tasks(mark=%d sweep=%d)"
    r.files r.dirs r.symlinks r.completed_deletes r.completed_renames
    r.rolled_back_renames r.reclaimed_inodes r.reclaimed_fentries
    r.cleared_busy_flags r.used_blocks r.free_blocks r.quarantined r.retries
    r.resolve_passes r.mark_tasks r.sweep_tasks

(** Execution driver for the recovery passes. *)
type par =
  | Seq
  | Vtime of { machine : Machine.t; workers : int }
  | Fibers of { schedule : Simurgh_sim.Schedule.t; workers : int }

(* --- observability ------------------------------------------------------ *)

(* Cumulative across runs: the obs collector samples sources at drain
   time, so per-run registration inside the library would be lost —
   bench experiments export these via their own [Collect.note_source]
   closure instead. *)
let obs_runs = ref 0
let obs_retries = ref 0
let obs_quarantined = ref 0
let obs_swept = ref 0
let obs_mark_tasks = ref 0
let obs_sweep_tasks = ref 0
let obs_resolve_passes = ref 0

(** [recovery/*] counters, cumulative over every {!run} in this
    process. *)
let counters () =
  [
    ("recovery/runs", float_of_int !obs_runs);
    ("recovery/retries", float_of_int !obs_retries);
    ("recovery/quarantined", float_of_int !obs_quarantined);
    ("recovery/swept_objects", float_of_int !obs_swept);
    ("recovery/mark_tasks", float_of_int !obs_mark_tasks);
    ("recovery/sweep_tasks", float_of_int !obs_sweep_tasks);
    ("recovery/resolve_passes", float_of_int !obs_resolve_passes);
  ]

(* --- crash hooks -------------------------------------------------------- *)

(* Labelled semantic store points inside recovery itself, mirroring
   [Fs.set_crash_hook]: the re-entrancy explorer installs a hook that
   raises at the n-th firing to crash recovery mid-flight.  Labels:
   "recovery:resolve-log", "recovery:mark-repair", "recovery:quarantine",
   "recovery:sweep-free". *)
let crash_hook : (string -> unit) option ref = ref None
let set_crash_hook f = crash_hook := Some f
let clear_crash_hook () = crash_hook := None

let hook label =
  match !crash_hook with Some f -> f label | None -> ()

(* Bounded retry on a media fault before escalating to quarantine.  A
   real DIMM can return corrected data on a later read (transient
   errors); the model's poison is persistent, so here the retries always
   fail — the [retries] counter proves the escalation path runs. *)
let retry_budget = 2

(* --- helpers ----------------------------------------------------------- *)

(* Does any slot in the chain starting at [head] point to [target]? *)
let find_pointer region ~head ~target =
  let found = ref None in
  (try
     Dirblock.iter_entries region head (fun b row s p ->
         if p = target then begin
           found := Some (b, row, s);
           raise Exit
         end)
   with Exit -> ());
  !found

(* Insert [p] into the row matching its name hash; used when completing
   an interrupted rename.  The caller guarantees [p] is a live or
   committable file entry.  The target row can be full even though a
   stale link was just removed — the stale link sat in a *different*
   row (that is why it was stale) — so a full row must grow the chain
   exactly like [Fs.insert_entry] (Fig. 5a steps 3-5), not drop the
   entry.  Returns the slot the entry is now linked in. *)
let relink layout ~head p =
  let region = layout.Layout.region in
  let name = Fentry.name region p in
  match Dirblock.find region ~head ~name with
  | Some (b, row, s, _), _ -> (b, row, s) (* already correctly linked *)
  | None, _ -> (
      let hash = Name_hash.hash name in
      let slot_ref, _, last = Dirblock.find_free_slot region ~head ~hash in
      match slot_ref with
      | Some (b, row, s) ->
          Dirblock.set_slot region b row s p;
          (b, row, s)
      | None ->
          let new_rows =
            min Dirblock.max_rows (2 * Dirblock.rows region last)
          in
          let balloc = layout.Layout.balloc in
          let bs = Balloc.block_size balloc in
          let blocks = (Dirblock.size_for_rows new_rows + bs - 1) / bs in
          (match Balloc.alloc balloc blocks with
          | None ->
              failwith "Recovery.relink: out of blocks extending directory"
          | Some nb ->
              Dirblock.init region nb ~rows:new_rows ();
              Dirblock.set_next region last nb;
              let row = hash mod new_rows in
              Dirblock.set_slot region nb row 0 p;
              (nb, row, 0)))

(* --- pending rename logs ------------------------------------------------ *)

(* Resolve the pending log in [slot] of first-block [b].  Returns
   [`Forward] or [`Back]. *)
let resolve_log layout b ~slot =
  let region = layout.Layout.region in
  let src, dst, ofe, nfe = Dirblock.Log.read region b ~slot in
  let fentry_slab = layout.Layout.fentry_slab in
  let shadow_linked =
    match find_pointer region ~head:dst ~target:nfe with
    | Some _ -> true
    | None ->
        src <> dst
        && find_pointer region ~head:src ~target:nfe <> None
  in
  let nfe_flags = Slab.obj_flags fentry_slab nfe in
  let outcome =
    if shadow_linked && nfe_flags <> 0 then begin
      (* roll forward *)
      (* re-home any stale link of the shadow in a mismatched row:
         relink first, then drop the stale slot — a crash in between
         leaves a transient duplicate that the mark pass repairs,
         never a window where the entry is linked nowhere *)
      (match find_pointer region ~head:dst ~target:nfe with
      | Some (blk, row, s) ->
          let want =
            Name_hash.hash (Fentry.name region nfe)
            mod Dirblock.rows region blk
          in
          if row <> want then begin
            ignore (relink layout ~head:dst nfe);
            Dirblock.set_slot region blk row s 0
          end
      | None -> ());
      (* remove the old entry's remaining link in the source *)
      (match find_pointer region ~head:src ~target:ofe with
      | Some (blk, row, s) -> Dirblock.set_slot region blk row s 0
      | None -> ());
      if Slab.obj_flags fentry_slab ofe <> 0 then begin
        if not (Slab.is_live fentry_slab ofe) then
          Slab.mark_dirty fentry_slab ofe;
        Slab.free fentry_slab ofe
      end;
      if Slab.is_unprocessed fentry_slab nfe then Slab.commit fentry_slab nfe;
      `Forward
    end
    else begin
      (* roll back: the shadow never became visible *)
      (match find_pointer region ~head:src ~target:nfe with
      | Some (blk, row, s) -> Dirblock.set_slot region blk row s 0
      | None -> ());
      if nfe_flags <> 0 then begin
        if not (Slab.is_live fentry_slab nfe) then
          Slab.mark_dirty fentry_slab nfe;
        Slab.free fentry_slab nfe
      end;
      `Back
    end
  in
  Dirblock.Log.clear region b ~slot;
  outcome

(* --- full-system recovery ------------------------------------------------ *)

(* The unit of work on the pool frontier. *)
type task =
  | Collect_logs of int  (* pass-1 read-only scan of one directory *)
  | Mark of { head : int; pslot : (int * int * int * int * int) option }
      (* mark + repair one directory; [pslot] = (block, row, slot,
         fentry, inode) of the referencing entry in the parent — if the
         head turns out unreadable the slot is detached and the entry's
         marks dropped (in the sequential step: the slot bytes belong to
         the parent's task, so the child task must not write them) *)
  | Sweep_seg of [ `Inode | `Fentry ] * int  (* one slab segment *)
  | Sweep_chain of int  (* block-mark one directory chain *)
  | Sweep_inodes of int array * int * int  (* extent scrub+mark, [lo,hi) *)
  | Sweep_spills of int array * int * int  (* spill-block mark, [lo,hi) *)

(* A deferred relink: a misplaced entry (interrupted same-directory
   rename, Fig. 5c steps 7-8) or an entry salvaged off a spliced
   poisoned chain block.  Relinking allocates slots (and possibly
   blocks), so it runs in the deterministically-sorted sequential step
   between mark rounds, never inside a parallel task. *)
type relink_job = {
  rl_head : int;
  rl_p : int;
  rl_tgt : int;  (* the entry's inode, un-marked if the relink fails *)
  rl_old : (int * int * int) option;  (* old slot; None if salvaged *)
  rl_child : int option;  (* dirhead to traverse once relinked *)
  rl_move : bool;  (* counts as a completed rename *)
}

(* Per-worker reachability shard: tasks mark into their own shard
   (cheap, unsynchronized) and shards are merged into the global tables
   in worker-index order at each round barrier — the merged result is a
   set union, independent of task placement and schedule. *)
type shard = {
  s_fentry : (int, unit) Hashtbl.t;
  s_inode : (int, unit) Hashtbl.t;
  s_dirhead : (int, unit) Hashtbl.t;
}

let sweep_slice = 512

let run ?(par = Seq) ?(skip_log_resolution = false) ?(drop_mark_shard = false)
    region =
  (* a crash wipes shared DRAM: discard any cached volatile state *)
  Fs.invalidate_shared region;
  let layout = Layout.attach region in
  let r = region in
  let inode_slab = layout.Layout.inode_slab in
  let fentry_slab = layout.Layout.fentry_slab in
  let balloc = layout.Layout.balloc in
  let nworkers =
    match par with
    | Seq -> 1
    | Vtime { workers; _ } | Fibers { workers; _ } -> max 1 workers
  in

  let completed_renames = ref 0 in
  let rolled_back = ref 0 in
  let completed_deletes = ref 0 in
  let cleared_busy = ref 0 in
  let quarantined = ref 0 in
  let retries = ref 0 in
  let resolve_passes = ref 0 in
  let mark_tasks = ref 0 in
  let sweep_tasks = ref 0 in
  let files = ref 0 and dirs = ref 0 and symlinks = ref 0 in

  (* bounded re-read of poisoned media; [None] after the budget is
     spent, at which point the caller quarantines *)
  let try_read f =
    let rec go k =
      match f () with
      | v -> Some v
      | exception Region.Media_error _ when k > 0 ->
          incr retries;
          go (k - 1)
      | exception Region.Media_error _ -> None
    in
    go retry_budget
  in

  (* A subtree behind a poisoned metadata line cannot be traversed;
     detach it by zeroing the referencing slot (which lives in the
     parent's — healthy — block) so the rest of the namespace stays
     usable, and report it instead of aborting recovery. *)
  let quarantine_slot b row s =
    hook "recovery:quarantine";
    Dirblock.set_slot r b row s 0;
    incr quarantined
  in

  (* ---- drivers --------------------------------------------------------- *)
  let clocks =
    match par with
    | Vtime _ -> Some (Array.init nworkers (fun i -> Sthread.create i))
    | _ -> None
  in
  let ctxs =
    match (par, clocks) with
    | Vtime { machine; _ }, Some cl ->
        Some (Array.map (fun thr -> Machine.ctx machine thr) cl)
    | _ -> None
  in
  (* Virtual-time charging is a pure function of each task's region
     traffic: load *operations* are dependent line fetches (latency,
     mlp-overlapped), bytes beyond one line per op are streaming
     bandwidth (bulk snapshots), stores are posted line writes, fences
     and per-op bookkeeping are CPU cycles.  Fiber mode charges nothing
     (its clock is never reported); Seq charges nothing. *)
  let charge ctx (s0 : Region.stats) =
    let s1 = Region.stats r in
    let loads = s1.Region.loads - s0.Region.loads in
    let stores = s1.Region.stores - s0.Region.stores in
    let lbytes = s1.Region.load_bytes - s0.Region.load_bytes in
    let sbytes = s1.Region.store_bytes - s0.Region.store_bytes in
    let fences = s1.Region.fences - s0.Region.fences in
    Machine.nvmm_meta_read_lines ctx loads;
    if lbytes > loads * 64 then Machine.nvmm_read ctx (lbytes - (loads * 64));
    let wlines = max stores ((sbytes + 63) / 64) in
    Machine.nvmm_write_lines ctx wlines;
    Machine.cpu ctx (float_of_int ((fences * 30) + ((loads + stores) * 12)))
  in
  let run_pool pool exec =
    match par with
    | Seq -> Workpool.run_seq pool exec
    | Vtime _ ->
        let cl = Option.get clocks and cs = Option.get ctxs in
        Workpool.run_vtime pool ~clocks:cl (fun ~worker task ->
            let s0 = Region.stats r in
            exec ~worker task;
            charge cs.(worker) s0);
        Workpool.barrier cl
    | Fibers { schedule; _ } ->
        Workpool.run_fibers pool ~schedule ~workers:nworkers exec
  in
  (* sequential sections run on worker 0's clock, fenced by barriers *)
  let seq_section f =
    match (ctxs, clocks) with
    | Some cs, Some cl ->
        Workpool.barrier cl;
        let s0 = Region.stats r in
        let v = f () in
        charge cs.(0) s0;
        Workpool.barrier cl;
        v
    | _ -> f ()
  in

  (* ---- global reachability + shards ------------------------------------ *)
  let g_inode = Hashtbl.create 1024 in
  let g_fentry = Hashtbl.create 1024 in
  let g_dirhead = Hashtbl.create 256 in
  let shards =
    Array.init nworkers (fun _ ->
        {
          s_fentry = Hashtbl.create 256;
          s_inode = Hashtbl.create 256;
          s_dirhead = Hashtbl.create 64;
        })
  in
  (* merge (and clear) the shards in worker-index order; the result is
     the set union, so it does not depend on which worker marked what.
     [drop_mark_shard] discards every shard but worker 0's — the
     deliberate parallel-merge bug behind make fsck's negative control:
     with >= 2 workers some reachable objects lose their marks and the
     sweep frees storage the namespace still references. *)
  let merge_shards () =
    Array.iteri
      (fun w sh ->
        if w = 0 || not drop_mark_shard then begin
          Hashtbl.iter (fun k () -> Hashtbl.replace g_fentry k ()) sh.s_fentry;
          Hashtbl.iter (fun k () -> Hashtbl.replace g_inode k ()) sh.s_inode;
          Hashtbl.iter
            (fun k () -> Hashtbl.replace g_dirhead k ())
            sh.s_dirhead
        end;
        Hashtbl.reset sh.s_fentry;
        Hashtbl.reset sh.s_inode;
        Hashtbl.reset sh.s_dirhead)
      shards
  in
  let mark_f sh p =
    if not (Hashtbl.mem g_fentry p || Hashtbl.mem sh.s_fentry p) then
      Hashtbl.replace sh.s_fentry p ()
  in
  let mark_i sh i =
    if not (Hashtbl.mem g_inode i || Hashtbl.mem sh.s_inode i) then
      Hashtbl.replace sh.s_inode i ()
  in
  let mark_d sh h =
    if not (Hashtbl.mem g_dirhead h || Hashtbl.mem sh.s_dirhead h) then
      Hashtbl.replace sh.s_dirhead h ()
  in

  (* ---- pass 1: resolve pending rename logs ----------------------------- *)
  (* Resolve every pending log BEFORE any row repair.  A crashed
     cross-directory rename leaves its shadow entry dirty in the
     destination; were the destination repaired first, the shadow would
     be mistaken for an interrupted delete and the file lost.  The log
     in the source directory disambiguates, so logs must win.

     Collection (a read-only tree scan) runs as one pool task per
     directory; the found (epoch, head, slot) triples are sorted and
     resolved sequentially in ascending epoch order: slots of
     conflicting renames were stamped in their row-lock serialization
     order, so replaying by epoch is the deterministic linearization.
     Resolution can change reachability (stale links dropped, shadows
     committed), so collection iterates to a fixpoint — [log_seen] keys
     on (head, slot) and guarantees termination. *)
  let log_seen = Hashtbl.create 64 in
  let resolve_logs root_head =
    let continue_ = ref true in
    while !continue_ do
      incr resolve_passes;
      let found = ref [] in
      let seen = Hashtbl.create 256 in
      Hashtbl.replace seen root_head ();
      let pool = Workpool.create () in
      let do_collect head =
        (try
           List.iter
             (fun (slot, epoch) -> found := (epoch, head, slot) :: !found)
             (Dirblock.Log.pending_slots r head)
         with Region.Media_error _ -> ());
        let rowbuf = Bytes.create Dirblock.row_bytes in
        let rec block b =
          if b <> 0 then begin
            match
              try Some (Dirblock.rows r b, Dirblock.next r b)
              with Region.Media_error _ -> None
            with
            | None -> ()
            | Some (nrows, nxt) ->
                for row = 0 to nrows - 1 do
                  if
                    try
                      Dirblock.load_row r b row rowbuf;
                      true
                    with Region.Media_error _ -> false
                  then
                    for s = 0 to Dirblock.slots_per_row - 1 do
                      let p = Dirblock.slot_of_row rowbuf s in
                      if p <> 0 then
                        try
                          if
                            Slab.obj_flags fentry_slab p <> 0
                            && Fentry.is_dir r p
                          then begin
                            let child = Fentry.dirblock r p in
                            if child <> 0 && not (Hashtbl.mem seen child)
                            then begin
                              Hashtbl.replace seen child ();
                              Workpool.push pool (Collect_logs child)
                            end
                          end
                        with Region.Media_error _ -> ()
                    done
                done;
                block nxt
          end
        in
        block head
      in
      Workpool.push pool (Collect_logs root_head);
      run_pool pool (fun ~worker:_ task ->
          match task with
          | Collect_logs head -> do_collect head
          | _ -> assert false);
      let fresh =
        List.filter
          (fun (_, head, slot) -> not (Hashtbl.mem log_seen (head, slot)))
          !found
        |> List.sort_uniq compare
      in
      match fresh with
      | [] -> continue_ := false
      | pending ->
          seq_section (fun () ->
              List.iter
                (fun (_, head, slot) ->
                  Hashtbl.replace log_seen (head, slot) ();
                  hook "recovery:resolve-log";
                  try
                    match resolve_log layout head ~slot with
                    | `Forward -> incr completed_renames
                    | `Back -> incr rolled_back
                  with Region.Media_error _ -> ())
                pending)
    done
  in

  (* ---- pass 2: mark + repair ------------------------------------------- *)
  let claimed = Hashtbl.create 1024 in
  let relinks : relink_job list ref = ref [] in
  (* parent slots of unreadable directory heads, detached in the
     sequential step (the slot bytes are owned by the parent's task) *)
  let pending_quarantines : (int * int * int * int * int) list ref = ref [] in
  let do_mark pool sh head pslot =
    incr mark_tasks;
    let claim_push child pslot =
      if child <> 0 && not (Hashtbl.mem claimed child) then begin
        Hashtbl.replace claimed child ();
        Workpool.push pool (Mark { head = child; pslot })
      end
    in
    (* read one block's header and a snapshot of its rows; a row that
       stays unreadable after the retry budget snapshots to [None] *)
    let read_block b =
      match try_read (fun () -> (Dirblock.rows r b, Dirblock.next r b)) with
      | None -> None
      | Some (nrows, nxt) ->
          let snap =
            Array.init nrows (fun row ->
                try_read (fun () ->
                    let buf = Bytes.create Dirblock.row_bytes in
                    Dirblock.load_row r b row buf;
                    buf))
          in
          Some (nrows, nxt, snap)
    in
    (* Process one entry.  Everything is read (with retry) before
       anything is marked or written, so a fault can never strand a
       half-processed entry: either the whole entry is acted on, or its
       slot is quarantined with no marks made.  [salvage] entries sit on
       a block being spliced out — their slot no longer exists, so
       repairs that would touch it are skipped and live entries are
       queued for relinking instead. *)
    let process_entry ~salvage ~nrows b row s p =
      match
        try_read (fun () ->
            if not (Slab.is_live fentry_slab p) then `Dead
            else
              let name = Fentry.name r p in
              let want = Name_hash.hash name mod nrows in
              let tgt = Fentry.target r p in
              let kind =
                if Fentry.is_dir r p then `Dir (Fentry.dirblock r p)
                else if Fentry.is_symlink r p then `Sym
                else `File
              in
              `Live (want, tgt, kind))
      with
      | None ->
          (* unreadable entry metadata: detach the slot *)
          if salvage then incr quarantined else quarantine_slot b row s
      | Some `Dead ->
          (* interrupted delete: complete it (zero the pointer); a
             salvaged dead entry's slot vanished with its block *)
          if not salvage then begin
            hook "recovery:mark-repair";
            Dirblock.set_slot r b row s 0
          end;
          incr completed_deletes
      | Some (`Live (want, tgt, kind)) ->
          let child = match kind with `Dir h -> Some h | _ -> None in
          if salvage || want <> row then begin
            (* misplaced (interrupted same-directory rename after the
               swap: finish steps 7-8 of Fig. 5c) or salvaged: mark now,
               relink in the sequential step, traverse the child dir in
               the next round *)
            mark_f sh p;
            mark_i sh tgt;
            relinks :=
              {
                rl_head = head;
                rl_p = p;
                rl_tgt = tgt;
                rl_old = (if salvage then None else Some (b, row, s));
                rl_child = child;
                rl_move = not salvage;
              }
              :: !relinks
          end
          else begin
            mark_f sh p;
            mark_i sh tgt;
            match kind with
            | `Dir h ->
                incr dirs;
                claim_push h (Some (b, row, s, p, tgt))
            | `Sym -> incr symlinks
            | `File -> incr files
          end
    in
    let process_block ~salvage b nrows snap =
      Array.iteri
        (fun row o ->
          match o with
          | None -> if salvage then incr quarantined
          | Some rowbuf ->
              for s = 0 to Dirblock.slots_per_row - 1 do
                let p = Dirblock.slot_of_row rowbuf s in
                if p <> 0 then process_entry ~salvage ~nrows b row s p
              done)
        snap
    in
    (* The head block is validated in full before anything below it is
       marked: an unreadable header or row quarantines the whole
       directory by detaching the parent slot, with no marks made (a
       partially-marked quarantined subtree would leak). *)
    let head_unreadable () =
      match pslot with
      | Some q -> pending_quarantines := q :: !pending_quarantines
      | None -> incr quarantined (* the root itself: nothing to detach *)
    in
    match read_block head with
    | None -> head_unreadable ()
    | Some (_, _, snap) when Array.exists (fun o -> o = None) snap ->
        head_unreadable ()
    | Some (nrows, nxt, snap) ->
        mark_d sh head;
        (* clear busy flags left behind by crashed lock holders *)
        for row = 0 to Dirblock.first_rows - 1 do
          if
            try Dirblock.busy r head row with Region.Media_error _ -> false
          then begin
            Dirblock.set_busy r head row false;
            incr cleared_busy
          end
        done;
        process_block ~salvage:false head nrows snap;
        (* chain blocks degrade per-block, never per-directory: an
           unreadable header truncates the chain there (the orphaned
           tail is swept); a block with unreadable rows is spliced out
           and its readable entries salvaged *)
        let rec walk prev b =
          if b <> 0 then
            match read_block b with
            | None ->
                incr quarantined;
                Dirblock.set_next r prev 0
            | Some (nrows, nxt, snap)
              when Array.exists (fun o -> o = None) snap ->
                process_block ~salvage:true b nrows snap;
                Dirblock.set_next r prev nxt;
                walk prev nxt
            | Some (nrows, nxt, snap) ->
                process_block ~salvage:false b nrows snap;
                walk b nxt
        in
        walk head nxt
  in
  (* One mark round = a parallel frontier drain + the sequential merge
     and relink step.  Relinks sort on (directory, entry, old slot) so
     slot placement and chain growth are schedule-independent; relinked
     subdirectories seed the next round.  Rounds terminate: every round
     consumes relink jobs discovered in the previous one, and an entry
     is relinked at most once. *)
  let rec mark_rounds roots =
    let pool = Workpool.create () in
    List.iter
      (fun (h, ps) ->
        if h <> 0 && not (Hashtbl.mem claimed h) then begin
          Hashtbl.replace claimed h ();
          Workpool.push pool (Mark { head = h; pslot = ps })
        end)
      roots;
    run_pool pool (fun ~worker task ->
        match task with
        | Mark { head; pslot } ->
            (* backstop: no fault may abort the frontier half-marked *)
            (try do_mark pool shards.(worker) head pslot
             with Region.Media_error _ -> incr quarantined)
        | _ -> assert false);
    let next_roots =
      seq_section (fun () ->
          merge_shards ();
          (* detach entries whose directory head proved unreadable, and
             drop their marks so the sweep reclaims them (the old code
             path un-marked the whole subtree; here nothing below an
             unreadable head was ever marked) *)
          List.iter
            (fun (b, row, s, p, tgt) ->
              Hashtbl.remove g_fentry p;
              Hashtbl.remove g_inode tgt;
              quarantine_slot b row s)
            (List.sort compare !pending_quarantines);
          pending_quarantines := [];
          let jobs =
            List.sort
              (fun a b ->
                compare (a.rl_head, a.rl_p, a.rl_old) (b.rl_head, b.rl_p, b.rl_old))
              !relinks
          in
          relinks := [];
          List.filter_map
            (fun j ->
              hook "recovery:mark-repair";
              match
                try_read (fun () ->
                    (* relink before zeroing the old slot: a crash in
                       between leaves a transient duplicate (repaired on
                       re-entry), never an unlinked live entry *)
                    let slot' = relink layout ~head:j.rl_head j.rl_p in
                    if Slab.is_unprocessed fentry_slab j.rl_p then
                      Slab.commit fentry_slab j.rl_p;
                    (match j.rl_old with
                    | Some (b, row, s) when (b, row, s) <> slot' ->
                        Dirblock.set_slot r b row s 0
                    | _ -> ());
                    slot')
              with
              | None ->
                  (* the relink itself hit poisoned media: detach *)
                  Hashtbl.remove g_fentry j.rl_p;
                  Hashtbl.remove g_inode j.rl_tgt;
                  (match j.rl_old with
                  | Some (b, row, s) -> quarantine_slot b row s
                  | None -> incr quarantined);
                  None
              | Some slot' ->
                  if j.rl_move then incr completed_renames;
                  Option.map
                    (fun h ->
                      let b', row', s' = slot' in
                      (h, Some (b', row', s', j.rl_p, j.rl_tgt)))
                    j.rl_child)
            jobs)
    in
    if next_roots <> [] then mark_rounds next_roots
  in

  let root = Layout.root_fentry layout in
  Hashtbl.replace g_fentry root ();
  Hashtbl.replace g_inode (Fentry.target r root) ();
  let root_head = Fentry.dirblock r root in
  (* [skip_log_resolution] deliberately breaks recovery (pass 1 is what
     disambiguates crashed renames); used by the negative tests proving
     the offline checker actually catches recovery bugs *)
  if not skip_log_resolution then resolve_logs root_head;
  mark_rounds [ (root_head, None) ];

  (* ---- pass 3: sweep ---------------------------------------------------- *)
  let bs = Balloc.block_size balloc in
  let nblocks = Balloc.total_blocks balloc in
  let bmap_bytes = (nblocks + 7) / 8 in
  (* per-worker block-usage bitmaps, OR-merged after the barrier: bit
     sets are idempotent and commutative, so the merged bitmap is
     schedule-independent *)
  let bitmaps = Array.init nworkers (fun _ -> Bytes.make bmap_bytes '\000') in
  let set_used bm b =
    let byte = b lsr 3 and bit = b land 7 in
    let v = Char.code (Bytes.get bm byte) in
    if v land (1 lsl bit) = 0 then
      Bytes.set bm byte (Char.chr (v lor (1 lsl bit)))
  in
  let mark_range bm addr bytes =
    let first = (addr - Balloc.base balloc) / bs in
    let last = (addr + bytes - 1 - Balloc.base balloc) / bs in
    for b = first to last do
      set_used bm b
    done
  in
  let reclaimed_inodes = ref 0 in
  let reclaimed_fentries = ref 0 in
  let sweep_segment which seg bm =
    let slab, reach, counter =
      match which with
      | `Inode -> (inode_slab, g_inode, reclaimed_inodes)
      | `Fentry -> (fentry_slab, g_fentry, reclaimed_fentries)
    in
    mark_range bm seg (Slab.blocks_per_segment slab * bs);
    let slot_bytes = Slab.obj_header + Slab.obj_size slab in
    let to_free = ref [] in
    Slab.iter_segment_objects slab seg (fun p flags ->
        if flags <> 0 && not (Hashtbl.mem reach p) then
          if Region.range_poisoned r (p - Slab.obj_header) slot_bytes then
            (* the slot overlaps a poisoned line (possibly a neighbor's
               — slots are not line-aligned): it can be neither zeroed
               nor recycled, so it stays allocated, quarantined in
               place, until the media is scrubbed *)
            incr quarantined
          else to_free := p :: !to_free);
    List.iter
      (fun p ->
        hook "recovery:sweep-free";
        if not (Slab.is_live slab p) then Slab.mark_dirty slab p;
        Slab.free slab p;
        incr counter)
      !to_free
  in
  (* file extents + extent overflow chains.  A crash inside a batched
     extent-staging window (range_locks data path) can leave a torn
     slot — address persisted, block count not, or the reverse.  Such a
     slot maps zero bytes so it is harmless to readers, but it would
     shadow the slot forever (appends only fill addr = 0 slots): scrub
     it back to empty here, and let the rebuild below reclaim whatever
     blocks the lost stores leaked. *)
  let scrub_slot read write k =
    let addr, blocks = read k in
    if (addr <> 0 && blocks = 0) || (addr = 0 && blocks <> 0) then
      write k ~addr:0 ~blocks:0
  in
  let sweep_inode bm inode =
    try
      for k = 0 to Inode.inline_extents - 1 do
        scrub_slot (Inode.read_extent r inode) (Inode.write_extent r inode) k
      done;
      let rec ov_scrub b =
        if b <> 0 then begin
          for k = 0 to Inode.overflow_entries - 1 do
            scrub_slot (Inode.read_ov_extent r b) (Inode.write_ov_extent r b) k
          done;
          ov_scrub (Region.read_u62 r (Inode.ov_next b))
        end
      in
      ov_scrub (Region.read_u62 r (Inode.f_overflow inode));
      Inode.iter_extents r inode (fun addr blocks ->
          mark_range bm addr (blocks * bs));
      let rec ov b =
        if b <> 0 then begin
          mark_range bm b Inode.overflow_bytes;
          ov (Region.read_u62 r (Inode.ov_next b))
        end
      in
      ov (Region.read_u62 r (Inode.f_overflow inode))
    with Region.Media_error _ -> incr quarantined
  in
  let do_sweep ~worker task =
    incr sweep_tasks;
    let bm = bitmaps.(worker) in
    match task with
    | Sweep_seg (which, seg) -> sweep_segment which seg bm
    | Sweep_chain head -> (
        try
          Dirblock.iter_chain r head (fun _ b ->
              mark_range bm b (Dirblock.size_of r b))
        with Region.Media_error _ -> ())
    | Sweep_inodes (arr, lo, hi) ->
        for k = lo to hi - 1 do
          sweep_inode bm arr.(k)
        done
    | Sweep_spills (arr, lo, hi) ->
        for k = lo to hi - 1 do
          let fe = arr.(k) in
          try
            match Fentry.spill r fe with
            | Some (addr, len) -> mark_range bm addr len
            | None -> ()
          with Region.Media_error _ -> incr quarantined
        done
    | Collect_logs _ | Mark _ -> assert false
  in
  let sorted_keys h =
    let a = Array.make (Hashtbl.length h) 0 in
    let i = ref 0 in
    Hashtbl.iter
      (fun k () ->
        a.(!i) <- k;
        incr i)
      h;
    Array.sort compare a;
    a
  in
  let slice pool arr mk =
    let n = Array.length arr in
    let lo = ref 0 in
    while !lo < n do
      let hi = min n (!lo + sweep_slice) in
      Workpool.push pool (mk arr !lo hi);
      lo := hi
    done
  in
  let run_sweep pool =
    run_pool pool (fun ~worker task ->
        try do_sweep ~worker task
        with Region.Media_error _ -> incr quarantined)
  in
  (* Two fenced phases: the scan phase scrubs torn extent slots (writes
     into reachable inodes) and block-marks chains/extents/spills; the
     segment phase bulk-snapshots whole segments (reads every slot) and
     frees the unreachable ones.  Splitting them keeps any task's writes
     out of another concurrent task's read set — within a phase tasks
     touch disjoint media, across phases the pool's fork/join fences
     order them. *)
  let pool_scan = Workpool.create () in
  Array.iter
    (fun head -> Workpool.push pool_scan (Sweep_chain head))
    (sorted_keys g_dirhead);
  slice pool_scan (sorted_keys g_inode) (fun a lo hi -> Sweep_inodes (a, lo, hi));
  slice pool_scan (sorted_keys g_fentry) (fun a lo hi ->
      Sweep_spills (a, lo, hi));
  run_sweep pool_scan;
  let pool_seg = Workpool.create () in
  Slab.iter_segments inode_slab (fun seg ->
      Workpool.push pool_seg (Sweep_seg (`Inode, seg)));
  Slab.iter_segments fentry_slab (fun seg ->
      Workpool.push pool_seg (Sweep_seg (`Fentry, seg)));
  run_sweep pool_seg;

  (* merged bitmap, free-list rebuild, volatile caches *)
  let used_count = ref 0 in
  seq_section (fun () ->
      let merged = bitmaps.(0) in
      for w = 1 to nworkers - 1 do
        let bm = Bytes.unsafe_to_string bitmaps.(w) in
        for i = 0 to bmap_bytes - 1 do
          let v = Char.code (Bytes.get merged i) lor Char.code bm.[i] in
          Bytes.set merged i (Char.chr v)
        done
      done;
      let popcount = Array.init 256 (fun i ->
          let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
          go i 0)
      in
      Bytes.iter
        (fun c -> used_count := !used_count + popcount.(Char.code c))
        merged;
      let is_used b =
        Char.code (Bytes.get merged (b lsr 3)) land (1 lsl (b land 7)) <> 0
      in
      (* blocks under poisoned lines must never be handed out again:
         keep them out of the rebuilt free lists (quarantined until
         scrubbed) *)
      let in_use =
        if Region.poisoned_lines r = 0 then is_used
        else fun b ->
          is_used b
          || Region.range_poisoned r (Balloc.base balloc + (b * bs)) bs
      in
      Balloc.rebuild_free_lists balloc ~in_use;
      (* Volatile caches reflect the repaired truth. *)
      Slab.rebuild_cache inode_slab;
      Slab.rebuild_cache fentry_slab;
      Layout.set_clean_shutdown layout true);

  let vtime_cycles =
    match clocks with
    | Some cl ->
        Array.fold_left (fun acc c -> Stdlib.max acc c.Sthread.now) 0.0 cl
    | None -> 0.0
  in
  incr obs_runs;
  obs_retries := !obs_retries + !retries;
  obs_quarantined := !obs_quarantined + !quarantined;
  obs_swept := !obs_swept + !reclaimed_inodes + !reclaimed_fentries;
  obs_mark_tasks := !obs_mark_tasks + !mark_tasks;
  obs_sweep_tasks := !obs_sweep_tasks + !sweep_tasks;
  obs_resolve_passes := !obs_resolve_passes + !resolve_passes;

  ( layout,
    {
      files = !files;
      dirs = !dirs;
      symlinks = !symlinks;
      completed_deletes = !completed_deletes;
      completed_renames = !completed_renames;
      rolled_back_renames = !rolled_back;
      reclaimed_inodes = !reclaimed_inodes;
      reclaimed_fentries = !reclaimed_fentries;
      cleared_busy_flags = !cleared_busy;
      used_blocks = !used_count;
      free_blocks = Balloc.free_blocks balloc;
      quarantined = !quarantined;
      retries = !retries;
      resolve_passes = !resolve_passes;
      mark_tasks = !mark_tasks;
      sweep_tasks = !sweep_tasks;
      vtime_cycles;
    } )

(** Recover every region of a sharded (multi-region) namespace.  Each
    region is an independent crash-consistency domain -- a shard's
    allocators, slabs and rename logs never reference another region --
    so recovery is simply the single-region [run] applied per region,
    in region order.  Returns the layouts and reports in that order. *)
let run_all ?par ?skip_log_resolution ?drop_mark_shard regions =
  Array.map
    (fun region -> run ?par ?skip_log_resolution ?drop_mark_shard region)
    regions

(** Recover and mount in one step. *)
let mount_after_crash ?call_mode ?relaxed_writes ?euid ?egid region =
  let layout, report = run region in
  let fs = Fs.of_layout ?call_mode ?relaxed_writes ?euid ?egid layout in
  Fs.register_shared region layout (Fs.locks_of fs) (Fs.rcache_of fs)
    (Fs.quota_of fs);
  Layout.set_clean_shutdown layout false;
  (fs, report)

(** Mount with the clean-shutdown fast path (paper §4.3: "if the file
    system was unmounted cleanly, no recovery is necessary").  A set
    clean flag means the last writer ran {!Fs.unmount}: attach directly
    and skip the mark-and-sweep entirely ([None]).  A clear flag means a
    crash (mounting clears it, only a clean unmount sets it back), so a
    full {!run} is performed ([Some report]). *)
let mount_auto ?call_mode ?relaxed_writes ?euid ?egid region =
  if Layout.clean_shutdown_of_region region then begin
    let fs = Fs.mount ?call_mode ?relaxed_writes ?euid ?egid region in
    (fs, None)
  end
  else
    let fs, report =
      mount_after_crash ?call_mode ?relaxed_writes ?euid ?egid region
    in
    (fs, Some report)

(** Runtime (process-crash) recovery for a single directory: repair its
    rows and clear its busy flags without a global scan.  Returns the
    number of repairs performed. *)
let repair_directory fs dirpath =
  let region = Fs.region fs in
  let layout = Fs.layout fs in
  let _, fe = Fs.resolve fs dirpath in
  let head = Fentry.dirblock region fe in
  let repaired = ref 0 in
  (* every pending log slot of this directory, in epoch order (the ring
     can hold several after a multi-process crash) *)
  List.iter
    (fun (slot, _) ->
      ignore (resolve_log layout head ~slot);
      incr repaired)
    (List.sort
       (fun (_, e1) (_, e2) -> compare e1 e2)
       (Dirblock.Log.pending_slots region head));
  let moves = ref [] in
  Dirblock.iter_entries region head (fun b row s p ->
      if not (Slab.is_live layout.Layout.fentry_slab p) then begin
        Dirblock.set_slot region b row s 0;
        incr repaired
      end
      else begin
        let want =
          Name_hash.hash (Fentry.name region p) mod Dirblock.rows region b
        in
        if want <> row then moves := (b, row, s, p) :: !moves
      end);
  List.iter
    (fun (b, row, s, p) ->
      (* relink first, then drop the old slot: a crash in between
         leaves a repairable duplicate, never an unlinked live entry *)
      let slot' = relink layout ~head p in
      if Slab.is_unprocessed layout.Layout.fentry_slab p then
        Slab.commit layout.Layout.fentry_slab p;
      if slot' <> (b, row, s) then Dirblock.set_slot region b row s 0;
      incr repaired)
    !moves;
  for row = 0 to Dirblock.first_rows - 1 do
    if Dirblock.busy region head row then Dirblock.set_busy region head row false
  done;
  !repaired
