(** Crash recovery (paper Sections 4.3 "Crash recovery" and 5.5).

    Full-system recovery is a mark-and-sweep pass:

    1. {b Resolve}: while traversing, every directory first-block with a
       pending log entry (an interrupted intra- or cross-directory
       rename) is rolled forward if the shadow entry became reachable,
       rolled back otherwise.
    2. {b Mark}: traverse the metadata graph from the root, repairing as
       it goes — slots that point to non-live file entries are completed
       deletions (Fig. 5b: "the next process accessing the same line
       identifies a null pointer and completes the remaining steps"), and
       entries linked in a row that does not match their name hash are
       interrupted renames whose remaining steps are executed.
    3. {b Sweep}: reclaim every allocated-but-unreachable metadata object
       and rebuild the block allocator's free lists from the blocks
       referenced by reachable inodes, directory chains and slab
       segments (unreachable directory blocks and extents are implicitly
       reclaimed).

    The row-repair logic doubles as the runtime (process-crash) recovery
    path: {!repair_directory} fixes one directory without a global
    scan. *)

open Simurgh_nvmm
module Slab = Simurgh_alloc.Slab_alloc
module Balloc = Simurgh_alloc.Block_alloc

type report = {
  files : int;
  dirs : int;
  symlinks : int;
  completed_deletes : int;
  completed_renames : int;
  rolled_back_renames : int;
  reclaimed_inodes : int;
  reclaimed_fentries : int;
  cleared_busy_flags : int;
  used_blocks : int;
  free_blocks : int;
  quarantined : int;
      (** namespace entries / subtrees detached because their metadata
          sits on poisoned (uncorrectable) lines *)
}

let pp_report ppf r =
  Fmt.pf ppf
    "files=%d dirs=%d symlinks=%d completed_deletes=%d completed_renames=%d \
     rolled_back=%d reclaimed(inodes=%d fentries=%d) busy_cleared=%d \
     blocks(used=%d free=%d) quarantined=%d"
    r.files r.dirs r.symlinks r.completed_deletes r.completed_renames
    r.rolled_back_renames r.reclaimed_inodes r.reclaimed_fentries
    r.cleared_busy_flags r.used_blocks r.free_blocks r.quarantined

(* --- helpers ----------------------------------------------------------- *)

(* Does any slot in the chain starting at [head] point to [target]? *)
let find_pointer region ~head ~target =
  let found = ref None in
  (try
     Dirblock.iter_entries region head (fun b row s p ->
         if p = target then begin
           found := Some (b, row, s);
           raise Exit
         end)
   with Exit -> ());
  !found

(* Insert [p] into the row matching its name hash; used when completing
   an interrupted rename.  The caller guarantees [p] is a live or
   committable file entry.  The target row can be full even though a
   stale link was just removed — the stale link sat in a *different*
   row (that is why it was stale) — so a full row must grow the chain
   exactly like [Fs.insert_entry] (Fig. 5a steps 3-5), not drop the
   entry. *)
let relink layout ~head p =
  let region = layout.Layout.region in
  let name = Fentry.name region p in
  match Dirblock.find region ~head ~name with
  | Some _, _ -> () (* already correctly linked *)
  | None, _ -> (
      let hash = Name_hash.hash name in
      let slot_ref, _, last = Dirblock.find_free_slot region ~head ~hash in
      match slot_ref with
      | Some (b, row, s) -> Dirblock.set_slot region b row s p
      | None ->
          let new_rows =
            min Dirblock.max_rows (2 * Dirblock.rows region last)
          in
          let balloc = layout.Layout.balloc in
          let bs = Balloc.block_size balloc in
          let blocks = (Dirblock.size_for_rows new_rows + bs - 1) / bs in
          (match Balloc.alloc balloc blocks with
          | None ->
              failwith "Recovery.relink: out of blocks extending directory"
          | Some nb ->
              Dirblock.init region nb ~rows:new_rows ();
              Dirblock.set_next region last nb;
              Dirblock.set_slot region nb (hash mod new_rows) 0 p))

(* --- pending rename logs ------------------------------------------------ *)

(* Resolve the pending log in [slot] of first-block [b].  Returns
   [`Forward] or [`Back]. *)
let resolve_log layout b ~slot =
  let region = layout.Layout.region in
  let src, dst, ofe, nfe = Dirblock.Log.read region b ~slot in
  let fentry_slab = layout.Layout.fentry_slab in
  let shadow_linked =
    match find_pointer region ~head:dst ~target:nfe with
    | Some _ -> true
    | None ->
        src <> dst
        && find_pointer region ~head:src ~target:nfe <> None
  in
  let nfe_flags = Slab.obj_flags fentry_slab nfe in
  let outcome =
    if shadow_linked && nfe_flags <> 0 then begin
      (* roll forward *)
      (* drop any stale link of the shadow in a mismatched row *)
      (match find_pointer region ~head:dst ~target:nfe with
      | Some (blk, row, s) ->
          let want =
            Name_hash.hash (Fentry.name region nfe)
            mod Dirblock.rows region blk
          in
          if row <> want then begin
            Dirblock.set_slot region blk row s 0;
            relink layout ~head:dst nfe
          end
      | None -> ());
      (* remove the old entry's remaining link in the source *)
      (match find_pointer region ~head:src ~target:ofe with
      | Some (blk, row, s) -> Dirblock.set_slot region blk row s 0
      | None -> ());
      if Slab.obj_flags fentry_slab ofe <> 0 then begin
        if not (Slab.is_live fentry_slab ofe) then
          Slab.mark_dirty fentry_slab ofe;
        Slab.free fentry_slab ofe
      end;
      if Slab.is_unprocessed fentry_slab nfe then Slab.commit fentry_slab nfe;
      `Forward
    end
    else begin
      (* roll back: the shadow never became visible *)
      (match find_pointer region ~head:src ~target:nfe with
      | Some (blk, row, s) -> Dirblock.set_slot region blk row s 0
      | None -> ());
      if nfe_flags <> 0 then begin
        if not (Slab.is_live fentry_slab nfe) then
          Slab.mark_dirty fentry_slab nfe;
        Slab.free fentry_slab nfe
      end;
      `Back
    end
  in
  Dirblock.Log.clear region b ~slot;
  outcome

(* --- full-system recovery ------------------------------------------------ *)

let run ?(skip_log_resolution = false) region =
  (* a crash wipes shared DRAM: discard any cached volatile state *)
  Fs.invalidate_shared region;
  let layout = Layout.attach region in
  let r = region in
  let inode_slab = layout.Layout.inode_slab in
  let fentry_slab = layout.Layout.fentry_slab in
  let balloc = layout.Layout.balloc in

  let completed_renames = ref 0 in
  let rolled_back = ref 0 in
  let completed_deletes = ref 0 in
  let cleared_busy = ref 0 in
  let quarantined = ref 0 in
  (* A subtree behind a poisoned metadata line cannot be traversed;
     detach it by zeroing the referencing slot (which lives in the
     parent's — healthy — block; if that line is poisoned too, the
     fault propagates and the grandparent quarantines instead) so the
     rest of the namespace stays usable, and report it instead of
     aborting recovery. *)
  let quarantine_slot b row s =
    Dirblock.set_slot r b row s 0;
    incr quarantined
  in

  let reach_inode = Hashtbl.create 1024 in
  let reach_fentry = Hashtbl.create 1024 in
  let reach_dirhead = Hashtbl.create 256 in
  let files = ref 0 and dirs = ref 0 and symlinks = ref 0 in

  (* Pass 1: resolve every pending rename log BEFORE any row repair.  A
     crashed cross-directory rename leaves its shadow entry dirty in the
     destination; were the destination repaired first, the shadow would
     be mistaken for an interrupted delete and the file lost.  The log
     in the source directory disambiguates, so logs must win.

     With the log ring a first block can hold several pending slots at
     once (one per crashed concurrent rename).  Collect every pending
     (head, slot) over the reachable heads first, then resolve in
     ascending epoch order: slots of conflicting renames were stamped in
     their row-lock serialization order, so replaying by epoch is the
     deterministic linearization; row-disjoint renames commute, and the
     epoch merely fixes one order.  Resolution can change reachability
     (stale links dropped, shadows committed), so iterate to a fixpoint
     — [log_seen] keys on (head, slot) and guarantees termination. *)
  let log_seen = Hashtbl.create 64 in
  let resolve_logs root_head =
    let progress = ref true in
    while !progress do
      let head_seen = Hashtbl.create 64 in
      let found = ref [] in
      let rec collect head =
        if head <> 0 && not (Hashtbl.mem head_seen head) then begin
          Hashtbl.replace head_seen head ();
          try
            List.iter
              (fun (slot, epoch) ->
                if not (Hashtbl.mem log_seen (head, slot)) then
                  found := (epoch, head, slot) :: !found)
              (Dirblock.Log.pending_slots r head);
            Dirblock.iter_entries r head (fun _ _ _ p ->
                try
                  if Slab.obj_flags fentry_slab p <> 0 && Fentry.is_dir r p
                  then collect (Fentry.dirblock r p)
                with Region.Media_error _ -> ())
          with Region.Media_error _ ->
            (* poisoned directory block: the mark pass quarantines it *)
            ()
        end
      in
      collect root_head;
      match List.sort compare !found with
      | [] -> progress := false
      | pending ->
          List.iter
            (fun (_, head, slot) ->
              Hashtbl.replace log_seen (head, slot) ();
              try
                match resolve_log layout head ~slot with
                | `Forward -> incr completed_renames
                | `Back -> incr rolled_back
              with Region.Media_error _ -> ())
            pending
    done
  in

  (* Pass 2: mark + repair.  Reachability marks made while descending
     are journaled in [trail] so that, when a media fault forces a
     subtree to be quarantined, everything marked {e under} that subtree
     is un-marked again (and hence swept); objects already reachable
     through an earlier path are not on the sub-trail and stay marked —
     hardlinked inodes survive a poisoned sibling subtree. *)
  let trail = ref [] in
  let mark_f p =
    if not (Hashtbl.mem reach_fentry p) then begin
      Hashtbl.replace reach_fentry p ();
      trail := `F p :: !trail
    end
  in
  let mark_i i =
    if not (Hashtbl.mem reach_inode i) then begin
      Hashtbl.replace reach_inode i ();
      trail := `I i :: !trail
    end
  in
  let mark_d h =
    if not (Hashtbl.mem reach_dirhead h) then begin
      Hashtbl.replace reach_dirhead h ();
      trail := `D h :: !trail
    end
  in
  let rollback_to saved =
    let rec go l =
      if l != saved then
        match l with
        | [] -> ()
        | `F p :: rest ->
            Hashtbl.remove reach_fentry p;
            go rest
        | `I i :: rest ->
            Hashtbl.remove reach_inode i;
            go rest
        | `D h :: rest ->
            Hashtbl.remove reach_dirhead h;
            go rest
    in
    go !trail;
    trail := saved
  in
  let rec mark_dir head =
    if head <> 0 && not (Hashtbl.mem reach_dirhead head) then begin
      mark_d head;
      (* clear busy flags left behind by crashed lock holders *)
      for row = 0 to Dirblock.first_rows - 1 do
        if (try Dirblock.busy r head row with Region.Media_error _ -> false)
        then begin
          Dirblock.set_busy r head row false;
          incr cleared_busy
        end
      done;
      (* visit and repair entries; a per-entry media fault (poisoned
         fentry payload or poisoned child directory block) quarantines
         just that slot, not the whole directory *)
      let moves = ref [] in
      Dirblock.iter_entries r head (fun b row s p ->
          let saved = !trail in
          try
            if not (Slab.is_live fentry_slab p) then begin
              (* interrupted delete: complete it (zero the pointer) *)
              Dirblock.set_slot r b row s 0;
              incr completed_deletes
            end
            else begin
              let name = Fentry.name r p in
              let want_row = Name_hash.hash name mod Dirblock.rows r b in
              if want_row <> row then
                (* interrupted same-directory rename after the swap:
                   finish steps 7-8 of Fig. 5c *)
                moves := (b, row, s, p) :: !moves
              else begin
                mark_f p;
                mark_i (Fentry.target r p);
                if Fentry.is_dir r p then begin
                  incr dirs;
                  mark_dir (Fentry.dirblock r p)
                end
                else if Fentry.is_symlink r p then incr symlinks
                else incr files
              end
            end
          with Region.Media_error _ ->
            (* un-mark the failed subtree so the sweep reclaims the
               detached objects (their storage is recycled; only the
               poisoned lines themselves stay unusable until scrubbed) *)
            rollback_to saved;
            quarantine_slot b row s);
      List.iter
        (fun (b, row, s, p) ->
          let saved = !trail in
          try
            Dirblock.set_slot r b row s 0;
            relink layout ~head p;
            if Slab.is_unprocessed fentry_slab p then Slab.commit fentry_slab p;
            mark_f p;
            mark_i (Fentry.target r p);
            incr completed_renames;
            if Fentry.is_dir r p then mark_dir (Fentry.dirblock r p)
          with Region.Media_error _ ->
            rollback_to saved;
            quarantine_slot b row s)
        !moves
    end
  in
  let root = Layout.root_fentry layout in
  Hashtbl.replace reach_fentry root ();
  Hashtbl.replace reach_inode (Fentry.target r root) ();
  (* [skip_log_resolution] deliberately breaks recovery (pass 1 is what
     disambiguates crashed renames); used by the negative tests proving
     the offline checker actually catches recovery bugs *)
  if not skip_log_resolution then resolve_logs (Fentry.dirblock r root);
  (try mark_dir (Fentry.dirblock r root)
   with Region.Media_error _ -> incr quarantined);

  (* Sweep metadata objects. *)
  let reclaimed_inodes = ref 0 in
  let reclaimed_fentries = ref 0 in
  let sweep slab reach counter =
    let slot_bytes = Slab.obj_header + Slab.obj_size slab in
    let to_free = ref [] in
    Slab.iter_objects slab (fun p flags ->
        if flags <> 0 && not (Hashtbl.mem reach p) then
          if Region.range_poisoned r (p - Slab.obj_header) slot_bytes then
            (* the slot overlaps a poisoned line (possibly a neighbor's
               — slots are not line-aligned): it can be neither zeroed
               nor recycled, so it stays allocated, quarantined in
               place, until the media is scrubbed *)
            incr quarantined
          else to_free := p :: !to_free);
    List.iter
      (fun p ->
        if not (Slab.is_live slab p) then Slab.mark_dirty slab p;
        Slab.free slab p;
        incr counter)
      !to_free
  in
  sweep fentry_slab reach_fentry reclaimed_fentries;
  sweep inode_slab reach_inode reclaimed_inodes;

  (* Rebuild the block allocator from reachable references.  A bitmap
     keeps the sweep linear even for millions of blocks. *)
  let bs = Balloc.block_size balloc in
  let nblocks = Balloc.total_blocks balloc in
  let used = Bytes.make ((nblocks + 7) / 8) '\000' in
  let used_count = ref 0 in
  let set_used b =
    let byte = b lsr 3 and bit = b land 7 in
    let v = Char.code (Bytes.get used byte) in
    if v land (1 lsl bit) = 0 then begin
      Bytes.set used byte (Char.chr (v lor (1 lsl bit)));
      incr used_count
    end
  in
  let is_used b =
    Char.code (Bytes.get used (b lsr 3)) land (1 lsl (b land 7)) <> 0
  in
  let mark_range addr bytes =
    let first = (addr - Balloc.base balloc) / bs in
    let last = (addr + bytes - 1 - Balloc.base balloc) / bs in
    for b = first to last do
      set_used b
    done
  in
  let mark_slab slab =
    Slab.iter_segments slab (fun seg ->
        mark_range seg (Slab.blocks_per_segment slab * bs))
  in
  mark_slab inode_slab;
  mark_slab fentry_slab;
  (* directory hash-block chains *)
  Hashtbl.iter
    (fun head () ->
      try
        Dirblock.iter_chain r head (fun _ b ->
            mark_range b (Dirblock.size_of r b))
      with Region.Media_error _ -> ())
    reach_dirhead;
  (* file extents + extent overflow chains.  A crash inside a batched
     extent-staging window (range_locks data path) can leave a torn
     slot — address persisted, block count not, or the reverse.  Such a
     slot maps zero bytes so it is harmless to readers, but it would
     shadow the slot forever (appends only fill addr = 0 slots): scrub
     it back to empty here, and let the mark-and-sweep below reclaim
     whatever blocks the lost stores leaked. *)
  let scrub_slot read write k =
    let addr, blocks = read k in
    if (addr <> 0 && blocks = 0) || (addr = 0 && blocks <> 0) then
      write k ~addr:0 ~blocks:0
  in
  Hashtbl.iter
    (fun inode () ->
      try
        for k = 0 to Inode.inline_extents - 1 do
          scrub_slot (Inode.read_extent r inode) (Inode.write_extent r inode) k
        done;
        let rec ov_scrub b =
          if b <> 0 then begin
            for k = 0 to Inode.overflow_entries - 1 do
              scrub_slot (Inode.read_ov_extent r b) (Inode.write_ov_extent r b)
                k
            done;
            ov_scrub (Region.read_u62 r (Inode.ov_next b))
          end
        in
        ov_scrub (Region.read_u62 r (Inode.f_overflow inode));
        Inode.iter_extents r inode (fun addr blocks ->
            mark_range addr (blocks * bs));
        let rec ov b =
          if b <> 0 then begin
            mark_range b Inode.overflow_bytes;
            ov (Region.read_u62 r (Inode.ov_next b))
          end
        in
        ov (Region.read_u62 r (Inode.f_overflow inode))
      with Region.Media_error _ -> incr quarantined)
    reach_inode;
  (* long-name spill blocks *)
  Hashtbl.iter
    (fun fe () ->
      try
        match Fentry.spill r fe with
        | Some (addr, len) -> mark_range addr len
        | None -> ()
      with Region.Media_error _ -> incr quarantined)
    reach_fentry;
  (* blocks under poisoned lines must never be handed out again: keep
     them out of the rebuilt free lists (quarantined until scrubbed) *)
  let in_use =
    if Region.poisoned_lines r = 0 then is_used
    else fun b ->
      is_used b || Region.range_poisoned r (Balloc.base balloc + (b * bs)) bs
  in
  Balloc.rebuild_free_lists balloc ~in_use;

  (* Volatile caches reflect the repaired truth. *)
  Slab.rebuild_cache inode_slab;
  Slab.rebuild_cache fentry_slab;
  Layout.set_clean_shutdown layout true;

  ( layout,
    {
      files = !files;
      dirs = !dirs;
      symlinks = !symlinks;
      completed_deletes = !completed_deletes;
      completed_renames = !completed_renames;
      rolled_back_renames = !rolled_back;
      reclaimed_inodes = !reclaimed_inodes;
      reclaimed_fentries = !reclaimed_fentries;
      cleared_busy_flags = !cleared_busy;
      used_blocks = !used_count;
      free_blocks = Balloc.free_blocks balloc;
      quarantined = !quarantined;
    } )

(** Recover and mount in one step. *)
let mount_after_crash ?call_mode ?relaxed_writes ?euid ?egid region =
  let layout, report = run region in
  let fs = Fs.of_layout ?call_mode ?relaxed_writes ?euid ?egid layout in
  Fs.register_shared region layout (Fs.locks_of fs) (Fs.rcache_of fs);
  Layout.set_clean_shutdown layout false;
  (fs, report)

(** Mount with the clean-shutdown fast path (paper §4.3: "if the file
    system was unmounted cleanly, no recovery is necessary").  A set
    clean flag means the last writer ran {!Fs.unmount}: attach directly
    and skip the mark-and-sweep entirely ([None]).  A clear flag means a
    crash (mounting clears it, only a clean unmount sets it back), so a
    full {!run} is performed ([Some report]). *)
let mount_auto ?call_mode ?relaxed_writes ?euid ?egid region =
  if Layout.clean_shutdown_of_region region then begin
    let fs = Fs.mount ?call_mode ?relaxed_writes ?euid ?egid region in
    (fs, None)
  end
  else
    let fs, report =
      mount_after_crash ?call_mode ?relaxed_writes ?euid ?egid region
    in
    (fs, Some report)

(** Runtime (process-crash) recovery for a single directory: repair its
    rows and clear its busy flags without a global scan.  Returns the
    number of repairs performed. *)
let repair_directory fs dirpath =
  let region = Fs.region fs in
  let layout = Fs.layout fs in
  let _, fe = Fs.resolve fs dirpath in
  let head = Fentry.dirblock region fe in
  let repaired = ref 0 in
  (* every pending log slot of this directory, in epoch order (the ring
     can hold several after a multi-process crash) *)
  List.iter
    (fun (slot, _) ->
      ignore (resolve_log layout head ~slot);
      incr repaired)
    (List.sort
       (fun (_, e1) (_, e2) -> compare e1 e2)
       (Dirblock.Log.pending_slots region head));
  let moves = ref [] in
  Dirblock.iter_entries region head (fun b row s p ->
      if not (Slab.is_live layout.Layout.fentry_slab p) then begin
        Dirblock.set_slot region b row s 0;
        incr repaired
      end
      else begin
        let want =
          Name_hash.hash (Fentry.name region p) mod Dirblock.rows region b
        in
        if want <> row then moves := (b, row, s, p) :: !moves
      end);
  List.iter
    (fun (b, row, s, p) ->
      Dirblock.set_slot region b row s 0;
      relink layout ~head p;
      if Slab.is_unprocessed layout.Layout.fentry_slab p then
        Slab.commit layout.Layout.fentry_slab p;
      incr repaired)
    !moves;
  for row = 0 to Dirblock.first_rows - 1 do
    if Dirblock.busy region head row then Dirblock.set_busy region head row false
  done;
  !repaired
