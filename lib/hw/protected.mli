(** Protected user-space functions (paper Section 3).

    A protected page holds up to four entry points at fixed 1 KiB offsets.
    [jmpp] verifies the page's [ep] bit and the entry offset, switches the
    CPU to kernel mode, relocates the stack into protected pages and bumps
    the nesting counter; [pret] undoes this.  The [privileged] witness can
    only be obtained inside a protected call, so OCaml code that requires
    it is statically unreachable from "user mode". *)

type privileged
(** Witness that the caller runs in kernel mode via jmpp. *)

type t
(** A loaded protected-function universe bound to one CPU. *)

val entry_offsets : int list
(** The fixed entry offsets within a protected page: 0x000, 0x400, 0x800,
    0xc00. *)

val bootstrap : Cpu.t -> euid:int -> egid:int -> t
(** The [load_protected()] system call performed by the in-kernel security
    module during application startup (Fig. 2, steps 3-5): runs with
    kernel assistance and enables subsequent [register] calls. *)

val register : t -> name:string -> (privileged -> 'a -> 'b) -> 'a -> 'b
(** Install a protected function in the next free entry slot and return a
    user-callable stub that performs jmpp / body / pret.  Raises
    [Invalid_argument] after [seal]. *)

val seal : t -> unit
(** End of bootstrap: no further protected functions can be loaded. *)

val cpu : t -> Cpu.t
val euid : privileged -> t -> int
val egid : privileged -> t -> int

val address_of : t -> string -> int
(** Address assigned to a registered function (for tests and tooling). *)

val pages : t -> int list
(** Page numbers holding protected code (marked kernel + ep). *)

val stack_pages : t -> int list
(** Page numbers holding the protected stacks (Section 3.2): supervisor
    pages, writable from kernel mode only, mapped at bootstrap so a
    sibling user-mode thread can neither read nor overwrite a protected
    call's stack frames. *)

val jmpp_raw : t -> int -> unit
(** Jump to an arbitrary address with jmpp semantics, faulting exactly as
    the hardware would; used by the security test-suite. *)

val check_privileged : privileged -> Cpu.t -> unit
(** Assert the witness matches the CPU and it is in kernel mode. *)
