type privileged = { cpu_ref : Cpu.t }

type slot = Nop | Fn of string

type t = {
  cpu : Cpu.t;
  mutable code_pages : int list;  (** pages holding protected code *)
  mutable stack_pages : int list;  (** pages holding protected stacks *)
  slots : (int, slot) Hashtbl.t;  (** address -> slot *)
  by_name : (string, int) Hashtbl.t;
  bodies : (int, privileged -> unit) Hashtbl.t;
      (** monomorphic trampoline per address; the typed closure is
          captured by the stub returned from [register] *)
  mutable next_page : int;
  mutable next_slot : int;  (** 0..3 within [current code page] *)
  mutable sealed : bool;
  mutable euid : int;
  mutable egid : int;
}

let entry_offsets = [ 0x000; 0x400; 0x800; 0xc00 ]
let slots_per_page = List.length entry_offsets

(* Protected code lives in a reserved high range of the address space;
   the concrete value only matters for page-table bookkeeping.  Protected
   stacks sit just below the code range (Section 3.2). *)
let code_base_page = 0x7f000
let stack_base_page = 0x7e000
let stack_page_count = 2

let bootstrap cpu ~euid ~egid =
  (* Fig. 2: the preload library calls load_protected(); the kernel
     security module maps the pages, flags them protected and stores the
     caller's credentials inside them. *)
  let t =
    {
      cpu;
      code_pages = [];
      stack_pages = [];
      slots = Hashtbl.create 16;
      by_name = Hashtbl.create 16;
      bodies = Hashtbl.create 16;
      next_page = code_base_page;
      next_slot = 0;
      sealed = false;
      euid;
      egid;
    }
  in
  (* Section 3.2: each thread's stack pointer is relocated onto a
     protected stack while inside a protected function.  The stack pages
     are supervisor-mapped (writable from kernel mode only, not ep) so a
     sibling user-mode thread can neither read return addresses nor
     overwrite them. *)
  for i = 0 to stack_page_count - 1 do
    let page = stack_base_page + i in
    Page_table.map cpu.Cpu.page_table ~page ~kernel:true ~writable:true;
    t.stack_pages <- page :: t.stack_pages
  done;
  t

let cpu t = t.cpu
let pages t = t.code_pages
let stack_pages t = t.stack_pages

let fresh_code_page t =
  let page = t.next_page in
  t.next_page <- t.next_page + 1;
  (* The kernel module maps the page and sets ep: both require kernel
     mode, which the bootstrap path has. *)
  Page_table.map t.cpu.Cpu.page_table ~page ~kernel:true ~writable:false;
  Page_table.set_ep t.cpu.Cpu.page_table ~mode:Privilege.Kernel ~page;
  (* Unused entry slots start as nop instructions: jmpp to them faults
     (Section 3.1's open() example, Fig. 1). *)
  List.iter
    (fun off ->
      Hashtbl.replace t.slots ((page * Page_table.page_size) + off) Nop)
    entry_offsets;
  t.code_pages <- page :: t.code_pages;
  page

let assign_address t =
  if t.next_slot = 0 then ignore (fresh_code_page t);
  let page = List.hd t.code_pages in
  let offset = List.nth entry_offsets t.next_slot in
  t.next_slot <- (t.next_slot + 1) mod slots_per_page;
  (page * Page_table.page_size) + offset

(* --- jmpp / pret semantics ------------------------------------------- *)

let jmpp_check t addr =
  let page = Page_table.page_of_addr addr in
  let offset = Page_table.offset_of_addr addr in
  (match Page_table.find_opt t.cpu.Cpu.page_table page with
  | Some pte when pte.Page_table.present && pte.Page_table.ep -> ()
  | Some _ | None -> Fault.raise_ (Jmpp_target_not_protected page));
  if not (List.mem offset entry_offsets) then
    Fault.raise_ (Jmpp_bad_entry_offset { page; offset });
  match Hashtbl.find_opt t.slots addr with
  | Some (Fn _) -> ()
  | Some Nop | None ->
      (* the first instruction at an unused entry is a nop: jumping there
         raises immediately (Section 3.1) *)
      Fault.raise_ (Entry_is_nop { page; offset })

let enter t =
  let c = t.cpu in
  c.Cpu.mode <- Privilege.Kernel;
  c.Cpu.jmpp_nest <- c.Cpu.jmpp_nest + 1;
  (* stack pointer relocated into protected pages so sibling threads
     cannot corrupt the return address (Section 3.2) *)
  c.Cpu.on_protected_stack <- true

let pret t =
  let c = t.cpu in
  if c.Cpu.jmpp_nest <= 0 then Fault.raise_ Pret_without_jmpp;
  c.Cpu.jmpp_nest <- c.Cpu.jmpp_nest - 1;
  if c.Cpu.jmpp_nest = 0 then begin
    c.Cpu.mode <- Privilege.User;
    c.Cpu.on_protected_stack <- false
  end

(* Exception-safe unwinding (same shape as Charge.with_lock): [enter] and
   [pret] bracket the body via [Fun.protect], and nothing that can raise
   runs between [enter] and the handler installation.  A fault inside the
   body therefore always restores the privilege level and never leaves the
   nesting counter stuck in kernel mode. *)
let protected_call t body =
  enter t;
  Fun.protect ~finally:(fun () -> pret t) body

let jmpp_raw t addr =
  jmpp_check t addr;
  (* The body lookup must happen before [enter]: a raise after the CPL
     switch but before the unwinding handler is installed would strand the
     CPU in kernel mode (the with_lock leak pattern fixed in the locking
     layer). *)
  let body = Hashtbl.find t.bodies addr in
  protected_call t (fun () -> body { cpu_ref = t.cpu })

let register t ~name f =
  if t.sealed then
    invalid_arg "Protected.register: universe sealed after bootstrap";
  let addr = assign_address t in
  Hashtbl.replace t.slots addr (Fn name);
  Hashtbl.replace t.by_name name addr;
  (* Monomorphic trampoline used by jmpp_raw (argument-less). *)
  Hashtbl.replace t.bodies addr (fun _witness -> ());
  fun arg ->
    jmpp_check t addr;
    protected_call t (fun () -> f { cpu_ref = t.cpu } arg)

let seal t = t.sealed <- true
let address_of t name = Hashtbl.find t.by_name name
let euid w t = ignore w; t.euid
let egid w t = ignore w; t.egid

let check_privileged w cpu =
  assert (w.cpu_ref == cpu);
  assert (Cpu.mode cpu = Privilege.Kernel)
