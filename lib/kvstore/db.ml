(** LevelDB-style LSM key-value store over any file system implementing
    {!Simurgh_fs_common.Fs_intf.S}.

    Writes append to a write-ahead log and land in the memtable; a full
    memtable flushes to a level-0 SSTable; when level 0 collects
    [l0_compaction_trigger] tables they merge into one level-1 table.
    This exercises the FS-call mix LevelDB generates under YCSB: appends
    (WAL), fsync, file create/delete (flush + compaction) and preads
    (lookups). *)

module type FS = Simurgh_fs_common.Fs_intf.S

type config = {
  dir : string;
  memtable_bytes : int;
  l0_compaction_trigger : int;
  sync_writes : bool;
}

let default_config =
  {
    dir = "/db";
    memtable_bytes = 256 * 1024;
    l0_compaction_trigger = 4;
    sync_writes = false;
  }

type stats = {
  mutable puts : int;
  mutable gets : int;
  mutable deletes : int;
  mutable flushes : int;
  mutable compactions : int;
  mutable wal_bytes : int;
}

module Make (F : FS) = struct
  module Sst = Sstable.Make (F)

  type t = {
    fs : F.t;
    cfg : config;
    mutable mem : Memtable.t;
    mutable wal_fd : F.fd;
    mutable wal_seq : int;
    mutable table_seq : int;
    mutable l0 : Sstable.meta list;  (** newest first *)
    mutable l1 : Sstable.meta list;  (** sorted, non-overlapping *)
    handles : (string, F.fd) Hashtbl.t;
        (** table cache: SSTables stay open (LevelDB's TableCache) *)
    write_lock : Simurgh_sim.Vlock.Mutex.t;
        (** LevelDB serializes writers; reads stay lock-free *)
    stats : stats;
  }

  (* LevelDB-side CPU work per operation (skiplist, arena, CRC32,
     comparator calls, MemTable encoding) — the "application" share of
     Table 1 / Fig. 10. *)
  let put_app_cycles = 2600.0
  let get_app_cycles = 1600.0

  let wal_path t seq = Printf.sprintf "%s/wal-%06d.log" t.cfg.dir seq
  let table_path t seq = Printf.sprintf "%s/sst-%06d.ldb" t.cfg.dir seq

  let open_wal ?ctx fs cfg seq =
    F.openf ?ctx fs
      (Simurgh_fs_common.Types.creat Simurgh_fs_common.Types.wronly)
      (Printf.sprintf "%s/wal-%06d.log" cfg.dir seq)

  let open_ ?ctx ?(cfg = default_config) fs =
    (if not (F.exists ?ctx fs cfg.dir) then F.mkdir ?ctx fs cfg.dir);
    let wal_fd = open_wal ?ctx fs cfg 0 in
    {
      fs;
      cfg;
      mem = Memtable.create ();
      wal_fd;
      wal_seq = 0;
      table_seq = 0;
      l0 = [];
      l1 = [];
      handles = Hashtbl.create 16;
      write_lock = Simurgh_sim.Vlock.Mutex.create ~site:"db-write" ();
      stats =
        {
          puts = 0;
          gets = 0;
          deletes = 0;
          flushes = 0;
          compactions = 0;
          wal_bytes = 0;
        };
    }

  (* table cache management *)
  let handle ?ctx t (meta : Sstable.meta) =
    match Hashtbl.find_opt t.handles meta.Sstable.path with
    | Some fd -> fd
    | None ->
        let fd =
          F.openf ?ctx t.fs Simurgh_fs_common.Types.rdonly meta.Sstable.path
        in
        Hashtbl.replace t.handles meta.Sstable.path fd;
        fd

  let drop_handle ?ctx t (meta : Sstable.meta) =
    match Hashtbl.find_opt t.handles meta.Sstable.path with
    | Some fd ->
        F.close ?ctx t.fs fd;
        Hashtbl.remove t.handles meta.Sstable.path
    | None -> ()

  (* Merge-sort table contents (newest wins), dropping tombstones. *)
  let merge_tables ?ctx t tables =
    let merged = Hashtbl.create 4096 in
    let order = ref [] in
    (* oldest first so newer entries overwrite *)
    List.iter
      (fun meta ->
        Sst.iter ?ctx t.fs meta (fun k v ->
            if not (Hashtbl.mem merged k) then order := k :: !order;
            Hashtbl.replace merged k v))
      (List.rev tables);
    let keys = List.sort_uniq compare !order in
    List.filter_map
      (fun k ->
        match Hashtbl.find_opt merged k with
        | Some (Some v) -> Some (k, Some v)
        | Some None | None -> None)
      keys

  let compact_l0 ?ctx t =
    t.stats.compactions <- t.stats.compactions + 1;
    let inputs = t.l0 @ t.l1 in
    let bindings = merge_tables ?ctx t inputs in
    t.table_seq <- t.table_seq + 1;
    let path = table_path t t.table_seq in
    let meta = Sst.write ?ctx t.fs path bindings in
    (* the new table replaces every input *)
    t.l0 <- [];
    t.l1 <- [ meta ];
    List.iter
      (fun m ->
        drop_handle ?ctx t m;
        F.unlink ?ctx t.fs m.Sstable.path)
      inputs

  let flush_memtable ?ctx t =
    if not (Memtable.is_empty t.mem) then begin
      t.stats.flushes <- t.stats.flushes + 1;
      t.table_seq <- t.table_seq + 1;
      let path = table_path t t.table_seq in
      let meta = Sst.write ?ctx t.fs path (Memtable.bindings t.mem) in
      t.l0 <- meta :: t.l0;
      Memtable.clear t.mem;
      (* retire the WAL, start a fresh one *)
      F.close ?ctx t.fs t.wal_fd;
      F.unlink ?ctx t.fs (wal_path t t.wal_seq);
      t.wal_seq <- t.wal_seq + 1;
      t.wal_fd <- open_wal ?ctx t.fs t.cfg t.wal_seq;
      if List.length t.l0 >= t.cfg.l0_compaction_trigger then
        compact_l0 ?ctx t
    end

  let app_cpu ?ctx cycles =
    match ctx with
    | None -> ()
    | Some c -> Simurgh_sim.Machine.cpu c cycles

  let write_internal ?ctx t key value =
    let body () =
      (* WAL append *)
      let buf = Buffer.create 64 in
      Record.encode buf key value;
      let payload = Buffer.to_bytes buf in
      app_cpu ?ctx put_app_cycles;
      ignore (F.append ?ctx t.fs t.wal_fd payload);
      if t.cfg.sync_writes then F.fsync ?ctx t.fs t.wal_fd;
      t.stats.wal_bytes <- t.stats.wal_bytes + Bytes.length payload;
      Memtable.put t.mem key value;
      if Memtable.bytes t.mem >= t.cfg.memtable_bytes then
        flush_memtable ?ctx t
    in
    match ctx with
    | None -> body ()
    | Some c ->
        Simurgh_sim.Vlock.Mutex.acquire c t.write_lock;
        body ();
        Simurgh_sim.Vlock.Mutex.release c t.write_lock

  let put ?ctx t key value =
    t.stats.puts <- t.stats.puts + 1;
    write_internal ?ctx t key (Some value)

  let delete ?ctx t key =
    t.stats.deletes <- t.stats.deletes + 1;
    write_internal ?ctx t key None

  let get ?ctx t key =
    t.stats.gets <- t.stats.gets + 1;
    app_cpu ?ctx get_app_cycles;
    match Memtable.get t.mem key with
    | Some v -> v
    | None ->
        let rec search = function
          | [] -> None
          | meta :: rest -> (
              let fd = handle ?ctx t meta in
              match Sst.get ?ctx t.fs ~fd meta key with
              | Some v -> v
              | None -> search rest)
        in
        search (t.l0 @ t.l1)

  (** Read-modify-write (YCSB workload F). *)
  let read_modify_write ?ctx t key f =
    let v = get ?ctx t key in
    let v' = f v in
    put ?ctx t key v'

  (** Range scan of up to [count] keys starting at [start] (workload E).
      Served from a merged view; table reads are bounded by the scan
      length through the table cache. *)
  let scan ?ctx t ~start ~count =
    app_cpu ?ctx (float_of_int count *. 150.0);
    let out = ref [] in
    let n = ref 0 in
    (* memtable first *)
    List.iter
      (fun (k, v) ->
        if k >= start && !n < count then
          match v with
          | Some v ->
              out := (k, v) :: !out;
              incr n
          | None -> ())
      (Memtable.bindings t.mem);
    (* then tables, each read bounded to roughly the scan size *)
    let budget = count * 1200 in
    List.iter
      (fun meta ->
        if !n < count then begin
          let fd = handle ?ctx t meta in
          Sst.iter_from ?ctx t.fs ~fd meta ~start_key:start
            ~byte_budget:budget (fun k v ->
              if !n < count then
                match v with
                | Some v ->
                    out := (k, v) :: !out;
                    incr n
                | None -> ())
        end)
      (t.l0 @ t.l1);
    List.rev !out

  let close ?ctx t =
    flush_memtable ?ctx t;
    Hashtbl.iter (fun _ fd -> F.close ?ctx t.fs fd) t.handles;
    Hashtbl.reset t.handles;
    F.close ?ctx t.fs t.wal_fd

  let stats t = t.stats
  let table_count t = List.length t.l0 + List.length t.l1
end
