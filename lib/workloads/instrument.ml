(** Instrumented wrapper around a file system.

    Every [Fs_intf.S] call made with a virtual-time context is measured:
    its duration lands in (1) the wrapper's [acc] record (the legacy
    two-bucket breakdown input), (2) the machine's observability run —
    the "fs" phase span plus a per-(fs, op) latency histogram keyed
    ["<fs name>/<op>"], so every wrapped file system gets a
    per-operation latency profile for free.  Payload bytes moved by
    read/write/append feed the "copy" phase.  Recording is pure
    bookkeeping: it charges no virtual time, so instrumented and raw
    runs produce bit-identical virtual-time results. *)

open Simurgh_fs_common
module Obs = Simurgh_obs

type acc = {
  mutable fs_cycles : float;  (** virtual time inside FS calls *)
  mutable copy_bytes : int;  (** payload bytes moved by read/write *)
  mutable calls : int;
}

let fresh_acc () = { fs_cycles = 0.0; copy_bytes = 0; calls = 0 }

(** Virtual cycles attributable to moving [bytes] between the device and
    the application — the part even a perfect FS would pay.  The CPU-side
    copy plus roughly half the device transfer (the other half overlaps
    with FS work the breakdown attributes to the file system). *)
let copy_cycles cm bytes =
  let b = float_of_int bytes in
  (b /. cm.Simurgh_sim.Cost_model.memcpy_bytes_per_cycle)
  +. (b /. cm.Simurgh_sim.Cost_model.nvmm_read_bw_thread /. 2.0)

(** The paper's application / data-copy / file-system fractions, derived
    from an observability run's spans (Table 1, Fig. 10): copy cycles
    are charged from the moved bytes, FS time is the in-FS span minus
    the copy share, application time is the remainder of
    [total_cycles]. *)
let breakdown cm (run : Obs.Run.t) ~total_cycles =
  let spans = run.Obs.Run.spans in
  let copy = copy_cycles cm spans.Obs.Span.copy_bytes in
  let fs = Float.max 0.0 (spans.Obs.Span.fs_cycles -. copy) in
  let app = Float.max 0.0 (total_cycles -. fs -. copy) in
  let tot = Float.max 1.0 (app +. copy +. fs) in
  (app /. tot, copy /. tot, fs /. tot)

module Make (F : Fs_intf.S) : sig
  include Fs_intf.S with type t = F.t * acc and type fd = F.fd
end = struct
  type t = F.t * acc
  type fd = F.fd

  let name = F.name

  (* Histogram keys are static per wrapped module: build them once. *)
  let key op = F.name ^ "/" ^ op
  let k_create_file = key "create_file"
  let k_mkdir = key "mkdir"
  let k_unlink = key "unlink"
  let k_rmdir = key "rmdir"
  let k_rename = key "rename"
  let k_stat = key "stat"
  let k_openf = key "openf"
  let k_close = key "close"
  let k_pread = key "pread"
  let k_pwrite = key "pwrite"
  let k_append = key "append"
  let k_fallocate = key "fallocate"
  let k_fsync = key "fsync"
  let k_readdir = key "readdir"
  let k_symlink = key "symlink"
  let k_readlink = key "readlink"
  let k_hardlink = key "hardlink"
  let k_truncate = key "truncate"
  let k_exists = key "exists"
  let k_chmod = key "chmod"
  let k_utimes = key "utimes"

  let timed ?ctx (acc : acc) op_key f =
    match ctx with
    | None -> f ()
    | Some c ->
        let t0 = Simurgh_sim.Machine.now c in
        let r = f () in
        let dt = Simurgh_sim.Machine.now c -. t0 in
        acc.fs_cycles <- acc.fs_cycles +. dt;
        acc.calls <- acc.calls + 1;
        let run = Simurgh_sim.Machine.ctx_obs c in
        Obs.Span.add_fs run.Obs.Run.spans dt;
        Obs.Histogram.record (Obs.Run.hist run op_key) dt;
        r

  let copied ?ctx (acc : acc) bytes =
    acc.copy_bytes <- acc.copy_bytes + bytes;
    match ctx with
    | None -> ()
    | Some c ->
        let run = Simurgh_sim.Machine.ctx_obs c in
        Obs.Span.add_copy_bytes run.Obs.Run.spans bytes

  let create_file ?ctx (fs, a) ?perm p =
    timed ?ctx a k_create_file (fun () -> F.create_file ?ctx fs ?perm p)

  let mkdir ?ctx (fs, a) ?perm p =
    timed ?ctx a k_mkdir (fun () -> F.mkdir ?ctx fs ?perm p)

  let unlink ?ctx (fs, a) p =
    timed ?ctx a k_unlink (fun () -> F.unlink ?ctx fs p)

  let rmdir ?ctx (fs, a) p = timed ?ctx a k_rmdir (fun () -> F.rmdir ?ctx fs p)

  let rename ?ctx (fs, a) p q =
    timed ?ctx a k_rename (fun () -> F.rename ?ctx fs p q)

  let stat ?ctx (fs, a) p = timed ?ctx a k_stat (fun () -> F.stat ?ctx fs p)

  let openf ?ctx (fs, a) flags p =
    timed ?ctx a k_openf (fun () -> F.openf ?ctx fs flags p)

  let close ?ctx (fs, a) fd =
    timed ?ctx a k_close (fun () -> F.close ?ctx fs fd)

  let pread ?ctx (fs, a) fd ~pos ~len =
    let r = timed ?ctx a k_pread (fun () -> F.pread ?ctx fs fd ~pos ~len) in
    copied ?ctx a (Bytes.length r);
    r

  let pwrite ?ctx (fs, a) fd ~pos src =
    let n = timed ?ctx a k_pwrite (fun () -> F.pwrite ?ctx fs fd ~pos src) in
    copied ?ctx a n;
    n

  let append ?ctx (fs, a) fd src =
    let n = timed ?ctx a k_append (fun () -> F.append ?ctx fs fd src) in
    copied ?ctx a n;
    n

  let fallocate ?ctx (fs, a) fd ~len =
    timed ?ctx a k_fallocate (fun () -> F.fallocate ?ctx fs fd ~len)

  let fsync ?ctx (fs, a) fd =
    timed ?ctx a k_fsync (fun () -> F.fsync ?ctx fs fd)

  let readdir ?ctx (fs, a) p =
    timed ?ctx a k_readdir (fun () -> F.readdir ?ctx fs p)

  let symlink ?ctx (fs, a) ~target p =
    timed ?ctx a k_symlink (fun () -> F.symlink ?ctx fs ~target p)

  let readlink ?ctx (fs, a) p =
    timed ?ctx a k_readlink (fun () -> F.readlink ?ctx fs p)

  let hardlink ?ctx (fs, a) ~existing p =
    timed ?ctx a k_hardlink (fun () -> F.hardlink ?ctx fs ~existing p)

  let truncate ?ctx (fs, a) p n =
    timed ?ctx a k_truncate (fun () -> F.truncate ?ctx fs p n)

  let exists ?ctx (fs, a) p =
    timed ?ctx a k_exists (fun () -> F.exists ?ctx fs p)

  let chmod ?ctx (fs, a) p m =
    timed ?ctx a k_chmod (fun () -> F.chmod ?ctx fs p m)

  let utimes ?ctx (fs, a) p m =
    timed ?ctx a k_utimes (fun () -> F.utimes ?ctx fs p m)
end
