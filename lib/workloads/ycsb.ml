(** YCSB workloads A-F over the LSM key-value store (paper Section 5.4,
    Figs. 9 and 10, Table 1).

    Key popularity follows the YCSB request distributions (scrambled
    Zipfian for A/B/C/F, latest for D, Zipfian+scan for E).  The runner
    wraps the file system in {!Instrument} so it can report the
    application / data-copy / file-system execution-time breakdown. *)

open Simurgh_sim
open Simurgh_fs_common

type workload = Load_a | Run_a | Run_b | Run_c | Run_d | Run_e | Run_f

let name = function
  | Load_a -> "LoadA"
  | Run_a -> "RunA"
  | Run_b -> "RunB"
  | Run_c -> "RunC"
  | Run_d -> "RunD"
  | Run_e -> "RunE"
  | Run_f -> "RunF"

let all = [ Load_a; Run_a; Run_b; Run_c; Run_d; Run_e; Run_f ]

type result = {
  ops_per_s : float;
  makespan_s : float;
  total_ops : int;
  (* execution-time breakdown, fractions of total *)
  app_frac : float;
  copy_frac : float;
  fs_frac : float;
}

let value_size = 1024
let key_of i = Printf.sprintf "user%020d" i

module Make (F : Fs_intf.S) = struct
  module IF = Instrument.Make (F)
  module Db = Simurgh_kvstore.Db.Make (IF)

  let make_value rng =
    let b = Bytes.create value_size in
    for i = 0 to value_size - 1 do
      Bytes.set b i (Char.chr (97 + Rng.int rng 26))
    done;
    Bytes.to_string b

  (* One YCSB op.  [records] is mutable for insert-heavy workloads. *)
  let do_op workload db zipf records rng ~ctx =
    let pick () = Zipf.sample_scrambled zipf rng mod max 1 !records in
    match workload with
    | Load_a ->
        let i = !records in
        incr records;
        Db.put ~ctx db (key_of i) (make_value rng)
    | Run_a ->
        if Rng.bool rng then ignore (Db.get ~ctx db (key_of (pick ())))
        else Db.put ~ctx db (key_of (pick ())) (make_value rng)
    | Run_b ->
        if Rng.int rng 100 < 95 then ignore (Db.get ~ctx db (key_of (pick ())))
        else Db.put ~ctx db (key_of (pick ())) (make_value rng)
    | Run_c -> ignore (Db.get ~ctx db (key_of (pick ())))
    | Run_d ->
        if Rng.int rng 100 < 95 then
          ignore (Db.get ~ctx db (key_of (Zipf.sample_latest zipf rng mod max 1 !records)))
        else begin
          let i = !records in
          incr records;
          Db.put ~ctx db (key_of i) (make_value rng)
        end
    | Run_e ->
        if Rng.int rng 100 < 95 then
          ignore (Db.scan ~ctx db ~start:(key_of (pick ())) ~count:16)
        else begin
          let i = !records in
          incr records;
          Db.put ~ctx db (key_of i) (make_value rng)
        end
    | Run_f ->
        if Rng.bool rng then ignore (Db.get ~ctx db (key_of (pick ())))
        else
          Db.read_modify_write ~ctx db
            (key_of (pick ()))
            (function Some v -> v | None -> make_value rng)

  (** Run [workload]: loads [records] rows first (untimed unless the
      workload IS the load phase), then [ops] operations across
      [threads]. *)
  let run machine fs workload ~records:nrecords ~ops ~threads =
    let acc = Instrument.fresh_acc () in
    let ifs = (fs, acc) in
    let db = Db.open_ ifs in
    let records = ref 0 in
    let load_rng = Rng.create 7L in
    if workload <> Load_a then begin
      (* untimed load phase *)
      for i = 0 to nrecords - 1 do
        ignore i;
        Db.put db (key_of !records) (make_value load_rng);
        incr records
      done
    end;
    (* Machine.reset also clears the machine's observability run, so the
       untimed load phase leaves no trace in the reported breakdown. *)
    Machine.reset machine;
    acc.Instrument.fs_cycles <- 0.0;
    acc.Instrument.copy_bytes <- 0;
    let zipf = Zipf.create (max 16 nrecords) in
    let op ctx _ =
      do_op workload db zipf records ctx.Machine.thr.Sthread.rng ~ctx
    in
    let total_ops = if workload = Load_a then nrecords else ops in
    let per_thread = max 1 (total_ops / threads) in
    let outcome = Engine.run_ops machine ~threads ~ops_per_thread:per_thread op in
    Db.close db;
    (* Db.close flushes the memtable without a ctx; the accumulator still
       counts those payload bytes (it always did), the ctx-gated span does
       not.  Fold the difference in so the breakdown and the JSON export
       keep the historical meaning of "data copy". *)
    let spans = (Machine.obs machine).Simurgh_obs.Run.spans in
    Simurgh_obs.Span.add_copy_bytes spans
      (acc.Instrument.copy_bytes - spans.Simurgh_obs.Span.copy_bytes);
    let cm = machine.Machine.cm in
    let seconds = Cost_model.seconds cm outcome.Engine.makespan_cycles in
    let total_cycles =
      outcome.Engine.makespan_cycles *. float_of_int threads
    in
    let app_frac, copy_frac, fs_frac =
      Instrument.breakdown cm (Machine.obs machine) ~total_cycles
    in
    {
      ops_per_s =
        (if seconds > 0.0 then
           float_of_int outcome.Engine.total_ops /. seconds
         else 0.0);
      makespan_s = seconds;
      total_ops = outcome.Engine.total_ops;
      app_frac;
      copy_frac;
      fs_frac;
    }
end
