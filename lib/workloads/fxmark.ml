(** FxMark-derived microbenchmarks (paper Section 5.2, Figs. 6 and 7).

    Each benchmark is parameterized by thread count and operations per
    thread.  The untimed setup phase runs without a virtual-time context;
    the machine's bandwidth servers are reset before the timed phase. *)

open Simurgh_sim
open Simurgh_fs_common

type bench =
  | Create_private  (** Fig. 7a: one directory per thread *)
  | Create_shared  (** Fig. 7b: all threads in one directory *)
  | Delete_private  (** Fig. 7c *)
  | Rename_shared  (** Fig. 7d *)
  | Resolve_private  (** Fig. 7e: nested private dirs of depth 5 *)
  | Resolve_shared  (** Fig. 7f: common path prefix *)
  | Append_private  (** Fig. 7g: 4 KiB appends *)
  | Fallocate_private  (** Fig. 7h: 4 MiB chunks *)
  | Read_shared of { cache_hot : bool }  (** Fig. 6 / 7i *)
  | Read_private of { cache_hot : bool }  (** Fig. 6 / 7j *)
  | Overwrite_shared  (** Fig. 7k *)
  | Write_private  (** Fig. 7l *)

let bench_name = function
  | Create_private -> "createfile-private (7a)"
  | Create_shared -> "createfile-shared (7b)"
  | Delete_private -> "deletefile-private (7c)"
  | Rename_shared -> "renamefile-shared (7d)"
  | Resolve_private -> "resolvepath-private (7e)"
  | Resolve_shared -> "resolvepath-shared (7f)"
  | Append_private -> "appendfile (7g)"
  | Fallocate_private -> "fallocate (7h)"
  | Read_shared { cache_hot = true } -> "read-shared cache-hot"
  | Read_shared _ -> "read-shared (7i)"
  | Read_private { cache_hot = true } -> "read-private cache-hot (fig6)"
  | Read_private _ -> "read-private (7j)"
  | Overwrite_shared -> "overwrite-shared (7k)"
  | Write_private -> "write-private (7l)"

type result = {
  throughput : float;  (** ops per modeled second *)
  bandwidth : float;  (** bytes per modeled second (data benches) *)
  makespan_s : float;
  total_ops : int;
}

let io_size = 4096
let fallocate_chunk = 4 * 1024 * 1024
let shared_file_bytes = 8 * 1024 * 1024
let private_file_bytes = 4 * 1024 * 1024

module Make (F : Fs_intf.S) = struct
  (* All calls go through the instrumented wrapper so the timed phase
     populates per-op latency histograms in the machine's obs run. *)
  module IF = Instrument.Make (F)

  let tdir i = Printf.sprintf "/t%d" i
  let tfile i j = Printf.sprintf "/t%d/f%d" i j
  let sfile i j = Printf.sprintf "/shared/t%d_f%d" i j

  let deep_dir i =
    Printf.sprintf "/t%d/d1/d2/d3/d4" i

  let setup fs bench ~threads ~ops =
    match bench with
    | Create_private | Append_private | Fallocate_private ->
        for i = 0 to threads - 1 do
          IF.mkdir fs (tdir i)
        done
    | Create_shared -> IF.mkdir fs "/shared"
    | Delete_private ->
        for i = 0 to threads - 1 do
          IF.mkdir fs (tdir i);
          for j = 0 to ops - 1 do
            IF.create_file fs (tfile i j)
          done
        done
    | Rename_shared ->
        IF.mkdir fs "/shared";
        for i = 0 to threads - 1 do
          for j = 0 to ops - 1 do
            IF.create_file fs (sfile i j)
          done
        done
    | Resolve_private ->
        for i = 0 to threads - 1 do
          IF.mkdir fs (tdir i);
          IF.mkdir fs (Printf.sprintf "/t%d/d1" i);
          IF.mkdir fs (Printf.sprintf "/t%d/d1/d2" i);
          IF.mkdir fs (Printf.sprintf "/t%d/d1/d2/d3" i);
          IF.mkdir fs (deep_dir i);
          IF.create_file fs (deep_dir i ^ "/target")
        done
    | Resolve_shared ->
        (* all threads resolve through the same four-component prefix *)
        IF.mkdir fs "/common";
        IF.mkdir fs "/common/a";
        IF.mkdir fs "/common/a/b";
        IF.mkdir fs "/common/a/b/c";
        for i = 0 to threads - 1 do
          IF.create_file fs (Printf.sprintf "/common/a/b/c/f%d" i)
        done
    | Read_shared _ | Overwrite_shared ->
        IF.mkdir fs "/shared";
        IF.create_file fs "/shared/big";
        let fd = IF.openf fs Types.wronly "/shared/big" in
        let chunk = Bytes.make 65536 'x' in
        for _ = 1 to shared_file_bytes / 65536 do
          ignore (IF.append fs fd chunk)
        done;
        IF.close fs fd
    | Read_private _ ->
        for i = 0 to threads - 1 do
          IF.mkdir fs (tdir i);
          IF.create_file fs (tfile i 0);
          let fd = IF.openf fs Types.wronly (tfile i 0) in
          let chunk = Bytes.make 65536 'x' in
          for _ = 1 to private_file_bytes / 65536 do
            ignore (IF.append fs fd chunk)
          done;
          IF.close fs fd
        done
    | Write_private ->
        for i = 0 to threads - 1 do
          IF.mkdir fs (tdir i);
          IF.create_file fs (tfile i 0)
        done

  (* Per-thread opened fds for the data benchmarks, prepared untimed. *)
  let prepare_fds fs bench ~threads =
    match bench with
    | Append_private | Fallocate_private | Write_private ->
        Array.init threads (fun i ->
            Some (IF.openf fs Types.rdwr (tfile i 0)))
    | Read_shared _ | Overwrite_shared ->
        Array.init threads (fun _ -> Some (IF.openf fs Types.rdwr "/shared/big"))
    | Read_private _ ->
        Array.init threads (fun i -> Some (IF.openf fs Types.rdonly (tfile i 0)))
    | _ -> Array.make threads None

  let run machine fs0 bench ~threads ~ops =
    let fs = (fs0, Instrument.fresh_acc ()) in
    (match bench with
    | Append_private | Write_private | Fallocate_private ->
        (* the file must exist before fds are prepared *)
        (try setup fs bench ~threads ~ops with Errno.Err (EEXIST, _) -> ());
        for i = 0 to threads - 1 do
          if not (IF.exists fs (tfile i 0)) then IF.create_file fs (tfile i 0)
        done
    | _ -> setup fs bench ~threads ~ops);
    let fds = prepare_fds fs bench ~threads in
    Machine.reset machine;
    let data_buf = Bytes.make io_size 'd' in
    let bytes_moved = ref 0 in
    let op ctx j =
      let i = ctx.Machine.thr.Sthread.tid in
      let rng = ctx.Machine.thr.Sthread.rng in
      match bench with
      | Create_private -> IF.create_file ~ctx fs (tfile i j)
      | Create_shared -> IF.create_file ~ctx fs (sfile i j)
      | Delete_private -> IF.unlink ~ctx fs (tfile i j)
      | Rename_shared ->
          IF.rename ~ctx fs (sfile i j) (Printf.sprintf "/shared/t%d_r%d" i j)
      | Resolve_private ->
          let fd = IF.openf ~ctx fs Types.rdonly (deep_dir i ^ "/target") in
          IF.close ~ctx fs fd
      | Resolve_shared ->
          let fd =
            IF.openf ~ctx fs Types.rdonly (Printf.sprintf "/common/a/b/c/f%d" i)
          in
          IF.close ~ctx fs fd
      | Append_private ->
          (match fds.(i) with
          | Some fd ->
              ignore (IF.append ~ctx fs fd data_buf);
              bytes_moved := !bytes_moved + io_size
          | None -> assert false)
      | Fallocate_private ->
          (match fds.(i) with
          | Some fd -> IF.fallocate ~ctx fs fd ~len:((j + 1) * fallocate_chunk)
          | None -> assert false)
      | Read_shared { cache_hot } ->
          (match fds.(i) with
          | Some fd ->
              let pos =
                if cache_hot then 0
                else
                  Rng.int rng ((shared_file_bytes / io_size) - 1) * io_size
              in
              if cache_hot then begin
                (* the original FxMark rereads the same block: it stays in
                   the CPU cache, so the call still pays the entry and
                   locking costs (len = 0 read) but the data moves at
                   cache speed, not NVMM speed *)
                ignore (IF.pread ~ctx fs fd ~pos ~len:0);
                Machine.memcpy_cpu ctx io_size
              end
              else ignore (IF.pread ~ctx fs fd ~pos ~len:io_size);
              bytes_moved := !bytes_moved + io_size
          | None -> assert false)
      | Read_private { cache_hot } ->
          (match fds.(i) with
          | Some fd ->
              if cache_hot then begin
                (* original FxMark DRBL: reread the same private block *)
                ignore (IF.pread ~ctx fs fd ~pos:0 ~len:0);
                Machine.memcpy_cpu ctx io_size
              end
              else begin
                let pos =
                  Rng.int rng ((private_file_bytes / io_size) - 1) * io_size
                in
                ignore (IF.pread ~ctx fs fd ~pos ~len:io_size)
              end;
              bytes_moved := !bytes_moved + io_size
          | None -> assert false)
      | Overwrite_shared ->
          (match fds.(i) with
          | Some fd ->
              let pos =
                Rng.int rng ((shared_file_bytes / io_size) - 1) * io_size
              in
              ignore (IF.pwrite ~ctx fs fd ~pos data_buf);
              bytes_moved := !bytes_moved + io_size
          | None -> assert false)
      | Write_private ->
          (match fds.(i) with
          | Some fd ->
              ignore (IF.pwrite ~ctx fs fd ~pos:(j * io_size) data_buf);
              bytes_moved := !bytes_moved + io_size
          | None -> assert false)
    in
    let outcome = Engine.run_ops machine ~threads ~ops_per_thread:ops op in
    Array.iter
      (function Some fd -> IF.close fs fd | None -> ())
      fds;
    let seconds =
      Cost_model.seconds machine.Machine.cm outcome.Engine.makespan_cycles
    in
    {
      throughput =
        (if seconds > 0.0 then float_of_int outcome.Engine.total_ops /. seconds
         else 0.0);
      bandwidth =
        (if seconds > 0.0 then float_of_int !bytes_moved /. seconds else 0.0);
      makespan_s = seconds;
      total_ops = outcome.Engine.total_ops;
    }
end
