(** The five evaluated file systems (plus Simurgh's relaxed-write
    variant) behind one runner type, so every experiment can iterate over
    them uniformly.  Each run gets a fresh file system and a fresh
    machine. *)

open Simurgh_sim

module Simurgh_impl = struct
  include Simurgh_core.Fs
end

module Fx_simurgh = Fxmark.Make (Simurgh_impl)
module Fx_nova = Fxmark.Make (Simurgh_baselines.Nova)
module Fx_pmfs = Fxmark.Make (Simurgh_baselines.Pmfs)
module Fx_ext4 = Fxmark.Make (Simurgh_baselines.Ext4dax)
module Fx_splitfs = Fxmark.Make (Simurgh_baselines.Splitfs)

type target = {
  name : string;
  run_fx :
    ?region_mb:int -> threads:int -> ops:int -> Fxmark.bench -> Fxmark.result;
}

let default_region_mb = 512

let fresh_simurgh ?(relaxed_writes = false) ?(region_mb = default_region_mb)
    () =
  let region = Simurgh_nvmm.Region.create (region_mb * 1024 * 1024) in
  Simurgh_core.Fs.mkfs ~euid:0 ~relaxed_writes region

let simurgh ?(relaxed_writes = false) () =
  let name = if relaxed_writes then "Simurgh-relaxed" else "Simurgh" in
  {
    name;
    run_fx =
      (fun ?region_mb ~threads ~ops bench ->
        let fs = fresh_simurgh ~relaxed_writes ?region_mb () in
        let machine = Machine.create () in
        Fx_simurgh.run machine fs bench ~threads ~ops);
  }

(** Simurgh with the metadata-scalability features on: striped directory
    locks, per-thread allocator caches and the DRAM resolve cache.  Same
    on-media layout as {!fresh_simurgh} (only volatile behavior
    differs), so seed-vs-scaled sweeps isolate the concurrency work. *)
let fresh_simurgh_scaled ?(region_mb = default_region_mb) () =
  let region = Simurgh_nvmm.Region.create (region_mb * 1024 * 1024) in
  Simurgh_core.Fs.mkfs ~euid:0 ~striped_locks:true ~rcache:true
    ~alloc_caches:true region

let simurgh_scaled () =
  {
    name = "Simurgh-scaled";
    run_fx =
      (fun ?region_mb ~threads ~ops bench ->
        let fs = fresh_simurgh_scaled ?region_mb () in
        let machine = Machine.create () in
        Fx_simurgh.run machine fs bench ~threads ~ops);
  }

(** The scaled configuration plus the rename-log ring format: each
    directory's first hash block carries a ring of log slots, so
    concurrent renames stop serializing on the single per-directory log
    lock.  The only target whose on-media layout differs from the seed
    (format-time flag; mounts of seed images are unaffected). *)
let fresh_simurgh_ring ?(region_mb = default_region_mb) () =
  let region = Simurgh_nvmm.Region.create (region_mb * 1024 * 1024) in
  Simurgh_core.Fs.mkfs ~euid:0 ~striped_locks:true ~rcache:true
    ~alloc_caches:true ~log_ring:16 region

let simurgh_ring () =
  {
    name = "Simurgh-logring";
    run_fx =
      (fun ?region_mb ~threads ~ops bench ->
        let fs = fresh_simurgh_ring ?region_mb () in
        let machine = Machine.create () in
        Fx_simurgh.run machine fs bench ~threads ~ops);
  }

let nova () =
  {
    name = "NOVA";
    run_fx =
      (fun ?region_mb ~threads ~ops bench ->
        ignore region_mb;
        let fs = Simurgh_baselines.Nova.create () in
        let machine = Machine.create () in
        Fx_nova.run machine fs bench ~threads ~ops);
  }

let pmfs () =
  {
    name = "PMFS";
    run_fx =
      (fun ?region_mb ~threads ~ops bench ->
        ignore region_mb;
        let fs = Simurgh_baselines.Pmfs.create () in
        let machine = Machine.create () in
        Fx_pmfs.run machine fs bench ~threads ~ops);
  }

let ext4dax () =
  {
    name = "EXT4-DAX";
    run_fx =
      (fun ?region_mb ~threads ~ops bench ->
        ignore region_mb;
        let fs = Simurgh_baselines.Ext4dax.create () in
        let machine = Machine.create () in
        Fx_ext4.run machine fs bench ~threads ~ops);
  }

let splitfs () =
  {
    name = "SplitFS";
    run_fx =
      (fun ?region_mb ~threads ~ops bench ->
        ignore region_mb;
        let fs = Simurgh_baselines.Splitfs.create () in
        let machine = Machine.create () in
        Fx_splitfs.run machine fs bench ~threads ~ops);
  }

(** The paper's comparison set, in its plotting order. *)
let all () = [ simurgh (); nova (); splitfs (); pmfs (); ext4dax () ]
