(** Path parsing shared by all implementations.  Paths are
    absolute-style strings; empty components and ["."] are dropped,
    [".."] is kept for the resolver to interpret. *)

let split p =
  String.split_on_char '/' p
  |> List.filter (fun c -> c <> "" && c <> ".")

(** Split into (parent components, final name).  Raises [EINVAL] when the
    path has no final component (e.g. "/"). *)
let split_parent p =
  match List.rev (split p) with
  | [] -> Errno.raise_ EINVAL (Printf.sprintf "path %S has no final component" p)
  | name :: rev_parents -> (List.rev rev_parents, name)

let basename p = snd (split_parent p)

(** POSIX dirname: the path with its final component removed.  The root
    (and any spelling of it: "/", "//", "/./") has no final component to
    remove, so its dirname is "/" rather than an EINVAL from
    {!split_parent}. *)
let dirname p =
  match split p with
  | [] -> "/"
  | comps ->
      let parents = List.rev (List.tl (List.rev comps)) in
      "/" ^ String.concat "/" parents

let concat dir name = if dir = "/" then "/" ^ name else dir ^ "/" ^ name
