(** POSIX-style error codes shared by every file-system implementation. *)

type t =
  | ENOENT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | EACCES
  | ENOSPC
  | EBADF
  | ENOTEMPTY
  | ENAMETOOLONG
  | EINVAL
  | ELOOP
  | EROFS
  | EXDEV  (** cross-device (cross-region) link or directory rename *)
  | EIO  (** uncorrectable media error under the accessed range *)
  | EDQUOT  (** per-uid block quota exhausted *)

exception Err of t * string

let raise_ e msg = raise (Err (e, msg))

let to_string = function
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | EACCES -> "EACCES"
  | ENOSPC -> "ENOSPC"
  | EBADF -> "EBADF"
  | ENOTEMPTY -> "ENOTEMPTY"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | EINVAL -> "EINVAL"
  | ELOOP -> "ELOOP"
  | EROFS -> "EROFS"
  | EXDEV -> "EXDEV"
  | EIO -> "EIO"
  | EDQUOT -> "EDQUOT"

let pp ppf e = Fmt.string ppf (to_string e)

let () =
  Printexc.register_printer (function
    | Err (e, msg) -> Some (Printf.sprintf "Errno.Err(%s, %S)" (to_string e) msg)
    | _ -> None)
