(** Shared engine for the kernel-file-system baselines.

    Implements full file-system semantics (the workloads and the LSM
    store really run on it) while charging virtual time through the
    mechanisms that differentiate the designs in the paper's evaluation:

    - every syscall pays trap + VFS dispatch (SplitFS skips this on the
      data path);
    - path resolution walks the dentry cache component by component,
      bouncing per-dentry lockref lines (Fig. 7e/7f);
    - directory modifications serialize on the parent's VFS inode mutex
      (Fig. 7b/7d);
    - reads/writes go through the per-inode rw-semaphore (Fig. 7i/7k);
    - journaling, allocator and directory-search costs come from the
      per-design {!Profile.t}.

    File contents are held in DRAM buffers — the baselines are cost
    models with real semantics; only Simurgh itself is the genuinely
    persistent implementation (see DESIGN.md). *)

open Simurgh_sim
open Simurgh_fs_common

type node = {
  ino : int;
  mutable kind : Types.kind;
  mutable perm : int;
  mutable uid : int;
  mutable gid : int;
  mutable nlink : int;
  mutable mtime : int;
  mutable size : int;
  mutable data : Bytes.t;  (** regular files *)
  mutable symlink_target : string;
  children : (string, node) Hashtbl.t;  (** directories *)
  rwsem : Vlock.Rw.t;
  dir_mutex : Vlock.Mutex.t;
  mutable staged : int;  (** SplitFS: appends since last relink *)
}

type fd_entry = { node : node; mutable pos : int; flags : Types.open_flags }

type t = {
  profile : Profile.t;
  root : node;
  dcache : node Simurgh_vfs.Dcache.t;
  rename_mutex : Vlock.Mutex.t;  (** s_vfs_rename_mutex *)
  alloc_lock : Vlock.Spin.t;  (** serial allocators only *)
  journal_lock : Vlock.Spin.t;  (** global undo-log / JBD2 access *)
  fds : (int, fd_entry) Hashtbl.t;
  mutable next_fd : int;
  mutable next_ino : int;
  mutable logical_time : int;
  mutable home_region : int;
      (** NVMM region this FS instance's traffic targets in the
          multi-region DIMM/socket model (default 0, the legacy single
          device).  Pinned onto the calling thread at every entry point,
          exactly like Simurgh's [entry_charge] does with its shard
          index. *)
}

type fd = int

let fresh_node t kind perm =
  let ino = t.next_ino in
  t.next_ino <- t.next_ino + 1;
  {
    ino;
    kind;
    perm;
    uid = 1000;
    gid = 1000;
    nlink = 1;
    mtime = 0;
    size = 0;
    data = Bytes.create 0;
    symlink_target = "";
    children = Hashtbl.create 8;
    rwsem = Vlock.Rw.create ~site:"vfs-rwsem" ();
    dir_mutex = Vlock.Mutex.create ~site:"vfs-inode-mutex" ();
    staged = 0;
  }

let create ?(region = 0) profile =
  let t =
    {
      profile;
      root =
        {
          ino = 1;
          kind = Types.Dir;
          perm = 0o755;
          uid = 0;
          gid = 0;
          nlink = 2;
          mtime = 0;
          size = 0;
          data = Bytes.create 0;
          symlink_target = "";
          children = Hashtbl.create 64;
          rwsem = Vlock.Rw.create ~site:"vfs-rwsem" ();
          dir_mutex = Vlock.Mutex.create ~site:"vfs-inode-mutex" ();
          staged = 0;
        };
      dcache = Simurgh_vfs.Dcache.create ();
      rename_mutex = Vlock.Mutex.create ~site:"vfs-rename-mutex" ();
      alloc_lock = Vlock.Spin.create ~site:"fs-alloc" ();
      journal_lock = Vlock.Spin.create ~site:"fs-journal" ();
      fds = Hashtbl.create 64;
      next_fd = 3;
      next_ino = 2;
      logical_time = 0;
      home_region = region;
    }
  in
  (* fold dcache effectiveness into the active experiment's snapshot
     (no-op outside the bench driver), mirroring what the Simurgh side
     reports as rcache/* *)
  Simurgh_obs.Collect.note_source (fun () ->
      let hits, misses = Simurgh_vfs.Dcache.stats t.dcache in
      [
        ("dcache/hits", float_of_int hits);
        ("dcache/misses", float_of_int misses);
      ]);
  t

let name t = t.profile.Profile.name
let set_region t r = t.home_region <- r

let now ?ctx t =
  match ctx with
  | Some c -> int_of_float (Machine.now c)
  | None ->
      t.logical_time <- t.logical_time + 1;
      t.logical_time

(* --- charging ----------------------------------------------------------- *)

let cpu ?ctx cycles =
  match ctx with None -> () | Some c -> Machine.cpu c cycles

let read_lines ?ctx n =
  match ctx with None -> () | Some c -> Machine.nvmm_meta_read_lines c n

let write_lines ?ctx n =
  match ctx with None -> () | Some c -> Machine.nvmm_write_lines c n

let syscall ?ctx t =
  (* route this operation's NVMM charges to the instance's home region *)
  (match ctx with
  | Some c -> c.Machine.thr.Sthread.cur_region <- t.home_region
  | None -> ());
  let cm =
    match ctx with Some c -> Machine.cm c | None -> Cost_model.default
  in
  cpu ?ctx
    (cm.Cost_model.syscall_cycles +. cm.Cost_model.vfs_dispatch_cycles
   +. 60.0 (* libc wrapper *))

let with_mutex ?ctx m f =
  match ctx with
  | None -> f ()
  | Some c ->
      Vlock.Mutex.acquire c m;
      let r = f () in
      Vlock.Mutex.release c m;
      r

let with_spin ?ctx l f =
  match ctx with
  | None -> f ()
  | Some c ->
      Vlock.Spin.acquire c l;
      let r = f () in
      Vlock.Spin.release c l;
      r

(* Journal charge around a metadata mutation. *)
let journal_op ?ctx t f =
  match t.profile.Profile.journal with
  | Profile.Undo_log { writes_per_op } ->
      (* PMFS: global fine-grained log; short critical section to grab
         log entries, then the undo writes *)
      with_spin ?ctx t.journal_lock (fun () -> cpu ?ctx 150.0);
      write_lines ?ctx writes_per_op;
      f ()
  | Profile.Per_inode_log { writes_per_op } ->
      (* NOVA: no global lock; append to the inode's own log *)
      write_lines ?ctx writes_per_op;
      f ()
  | Profile.Jbd2 { handle_cycles; writes_per_op } ->
      (* EXT4: start/stop a handle against the shared transaction *)
      with_spin ?ctx t.journal_lock (fun () -> cpu ?ctx handle_cycles);
      write_lines ?ctx writes_per_op;
      f ()

(* Allocate [n] blocks; the per-design cost function runs under the
   global allocator lock for serial allocators. *)
let alloc_blocks ?ctx t n =
  let work = t.profile.Profile.alloc_cost ~blocks:(max 1 n) in
  match t.profile.Profile.allocator with
  | Profile.Serial -> with_spin ?ctx t.alloc_lock (fun () -> cpu ?ctx work)
  | Profile.Per_cpu -> cpu ?ctx work

(* --- path resolution ------------------------------------------------------ *)

let lookup_child ?ctx t parent comp =
  match Simurgh_vfs.Dcache.lookup ?ctx t.dcache ~parent:parent.ino comp with
  | Some n -> Some n
  | None -> (
      match Hashtbl.find_opt parent.children comp with
      | Some n ->
          (* concrete-FS lookup; cost depends on the design *)
          read_lines ?ctx
            (t.profile.Profile.lookup_reads (Hashtbl.length parent.children));
          Simurgh_vfs.Dcache.insert ?ctx t.dcache ~parent:parent.ino comp n;
          Some n
      | None ->
          read_lines ?ctx
            (t.profile.Profile.lookup_reads (Hashtbl.length parent.children));
          None)

(* the Linux VFS follows up to 40 chained symlinks before ELOOP; the
   kernel baselines share that limit with Simurgh's resolver *)
let max_symlink_depth = 40

let rec resolve_parent ?ctx ?(depth = 0) t path =
  if depth > max_symlink_depth then Errno.raise_ ELOOP path;
  let parents, final = Path.split_parent path in
  let rec walk stack node = function
    | [] -> (node, final)
    | ".." :: rest -> (
        match stack with
        | p :: up -> walk up p rest
        | [] -> walk [] node rest)
    | comp :: rest -> (
        match lookup_child ?ctx t node comp with
        | None -> Errno.raise_ ENOENT path
        | Some n -> (
            match n.kind with
            | Types.Dir -> walk (node :: stack) n rest
            | Types.Symlink ->
                resolve_parent ?ctx ~depth:(depth + 1) t
                  (n.symlink_target ^ "/"
                  ^ String.concat "/" (rest @ [ final ]))
            | Types.File -> Errno.raise_ ENOTDIR path))
  in
  walk [] t.root parents

let rec resolve ?ctx ?(follow = true) ?(depth = 0) t path =
  if depth > max_symlink_depth then Errno.raise_ ELOOP path;
  if Path.split path = [] then t.root
  else begin
    let parent, final = resolve_parent ?ctx t path in
    match lookup_child ?ctx t parent final with
    | None -> Errno.raise_ ENOENT path
    | Some n ->
        if follow && n.kind = Types.Symlink then
          resolve ?ctx ~follow ~depth:(depth + 1) t n.symlink_target
        else n
  end

(* --- metadata operations --------------------------------------------------- *)

let do_create ?ctx t kind perm path ~target =
  let parent, final = resolve_parent ?ctx t path in
  with_mutex ?ctx parent.dir_mutex (fun () ->
      if Hashtbl.mem parent.children final then Errno.raise_ EEXIST path;
      let n =
        match target with
        | Some n ->
            n.nlink <- n.nlink + 1;
            n
        | None -> fresh_node t kind perm
      in
      (* inode allocation, dentry instantiation, security/quota hooks:
         all performed under the parent's inode mutex *)
      cpu ?ctx t.profile.Profile.create_cycles;
      journal_op ?ctx t (fun () ->
          Hashtbl.replace parent.children final n;
          write_lines ?ctx t.profile.Profile.create_writes);
      n.mtime <- now ?ctx t;
      Simurgh_vfs.Dcache.insert ?ctx t.dcache ~parent:parent.ino final n;
      n)

let create_file ?ctx t ?(perm = 0o644) path =
  syscall ?ctx t;
  ignore (do_create ?ctx t Types.File perm path ~target:None)

let mkdir ?ctx t ?(perm = 0o755) path =
  syscall ?ctx t;
  ignore (do_create ?ctx t Types.Dir perm path ~target:None)

let symlink ?ctx t ~target path =
  syscall ?ctx t;
  let n = do_create ?ctx t Types.Symlink 0o777 path ~target:None in
  n.symlink_target <- target;
  n.size <- String.length target

let hardlink ?ctx t ~existing path =
  syscall ?ctx t;
  let n = resolve ?ctx t existing in
  if n.kind = Types.Dir then Errno.raise_ EISDIR existing;
  ignore (do_create ?ctx t n.kind n.perm path ~target:(Some n))

let do_remove ?ctx t ~must_be_dir path =
  let parent, final = resolve_parent ?ctx t path in
  with_mutex ?ctx parent.dir_mutex (fun () ->
      match Hashtbl.find_opt parent.children final with
      | None -> Errno.raise_ ENOENT path
      | Some n ->
          (match (must_be_dir, n.kind) with
          | true, Types.Dir ->
              if Hashtbl.length n.children > 0 then
                Errno.raise_ ENOTEMPTY path
          | true, _ -> Errno.raise_ ENOTDIR path
          | false, Types.Dir -> Errno.raise_ EISDIR path
          | false, _ -> ());
          (* dentry-cache update cost on every unlink (paper Section 5.2:
             "constant updates to the dentry cache lead to the poor
             performance of kernel level file systems") *)
          cpu ?ctx t.profile.Profile.unlink_cycles;
          (* the design-specific directory search to find the dentry *)
          read_lines ?ctx
            (t.profile.Profile.lookup_reads (Hashtbl.length parent.children));
          journal_op ?ctx t (fun () ->
              Hashtbl.remove parent.children final;
              write_lines ?ctx t.profile.Profile.unlink_writes);
          Simurgh_vfs.Dcache.remove ?ctx t.dcache ~parent:parent.ino final;
          n.nlink <- n.nlink - 1;
          if n.nlink <= 0 && n.kind = Types.File then begin
            (* free blocks back to the allocator (empty files have none) *)
            if n.size > 0 then alloc_blocks ?ctx t (1 + (n.size / 4096));
            n.data <- Bytes.create 0;
            n.size <- 0
          end)

let unlink ?ctx t path =
  syscall ?ctx t;
  do_remove ?ctx t ~must_be_dir:false path

let rmdir ?ctx t path =
  syscall ?ctx t;
  do_remove ?ctx t ~must_be_dir:true path

(* POSIX ancestry check (the VFS's lock_rename ancestor walk): renaming
   a directory into its own subtree must fail EINVAL. *)
let rec in_subtree root node =
  root == node
  || Hashtbl.fold
       (fun _ child acc ->
         acc || (child.kind = Types.Dir && in_subtree child node))
       root.children false

let rename ?ctx t old_path new_path =
  syscall ?ctx t;
  let sp, sn = resolve_parent ?ctx t old_path in
  let dp, dn = resolve_parent ?ctx t new_path in
  if sp.ino = dp.ino && String.equal sn dn then begin
    (* POSIX: renaming a name to itself succeeds and changes nothing *)
    if not (Hashtbl.mem sp.children sn) then Errno.raise_ ENOENT old_path
  end
  else begin
  (match Hashtbl.find_opt sp.children sn with
  | Some n when n.kind = Types.Dir && in_subtree n dp ->
      Errno.raise_ EINVAL new_path
  | _ -> ());
  let body () =
    match Hashtbl.find_opt sp.children sn with
    | None -> Errno.raise_ ENOENT old_path
    | Some n ->
        (match Hashtbl.find_opt dp.children dn with
        | Some existing -> (
            (* kind agreement between source and existing destination *)
            match (n.kind, existing.kind) with
            | Types.Dir, Types.Dir ->
                if Hashtbl.length existing.children > 0 then
                  Errno.raise_ ENOTEMPTY new_path
            | Types.Dir, _ -> Errno.raise_ ENOTDIR new_path
            | _, Types.Dir -> Errno.raise_ EISDIR new_path
            | _, _ -> ())
        | None -> ());
        cpu ?ctx t.profile.Profile.rename_cycles;
        journal_op ?ctx t (fun () ->
            Hashtbl.remove sp.children sn;
            Hashtbl.replace dp.children dn n;
            write_lines ?ctx t.profile.Profile.rename_writes);
        Simurgh_vfs.Dcache.remove ?ctx t.dcache ~parent:sp.ino sn;
        Simurgh_vfs.Dcache.insert ?ctx t.dcache ~parent:dp.ino dn n;
        n.mtime <- now ?ctx t
  in
  if sp.ino = dp.ino then with_mutex ?ctx sp.dir_mutex body
  else
    (* cross-directory: the VFS takes s_vfs_rename_mutex plus both
       parents' mutexes in address order *)
    with_mutex ?ctx t.rename_mutex (fun () ->
        let a, b = if sp.ino < dp.ino then (sp, dp) else (dp, sp) in
        with_mutex ?ctx a.dir_mutex (fun () ->
            with_mutex ?ctx b.dir_mutex body))
  end

let stat_of_node (n : node) =
  {
    Types.kind = n.kind;
    perm = n.perm;
    uid = n.uid;
    gid = n.gid;
    nlink = n.nlink;
    size = n.size;
    mtime = n.mtime;
    ino = n.ino;
  }

let stat ?ctx t path =
  syscall ?ctx t;
  let n = resolve ?ctx t path in
  read_lines ?ctx 1;
  cpu ?ctx 120.0 (* copy struct stat to user space *);
  stat_of_node n

let exists ?ctx t path =
  syscall ?ctx t;
  match resolve ?ctx t path with
  | _ -> true
  | exception Errno.Err ((ENOENT | ENOTDIR), _) -> false

let readdir ?ctx t path =
  syscall ?ctx t;
  let n = resolve ?ctx t path in
  if n.kind <> Types.Dir then Errno.raise_ ENOTDIR path;
  read_lines ?ctx (1 + (Hashtbl.length n.children / 16));
  Hashtbl.fold (fun name _ acc -> name :: acc) n.children []

let readlink ?ctx t path =
  syscall ?ctx t;
  let n = resolve ?ctx ~follow:false t path in
  if n.kind <> Types.Symlink then Errno.raise_ EINVAL path;
  n.symlink_target

(* --- data operations --------------------------------------------------------- *)

let openf ?ctx t (flags : Types.open_flags) path =
  syscall ?ctx t;
  let n =
    match resolve ?ctx t path with
    | n ->
        if flags.Types.excl && flags.Types.create then Errno.raise_ EEXIST path;
        n
    | exception Errno.Err (ENOENT, _) when flags.Types.create ->
        do_create ?ctx t Types.File 0o644 path ~target:None
    | exception e -> raise e
  in
  if n.kind = Types.Dir then Errno.raise_ EISDIR path;
  if flags.Types.trunc then begin
    n.data <- Bytes.create 0;
    n.size <- 0
  end;
  let fd = t.next_fd in
  t.next_fd <- t.next_fd + 1;
  Hashtbl.replace t.fds fd { node = n; pos = 0; flags };
  fd

let close ?ctx t fd =
  syscall ?ctx t;
  if not (Hashtbl.mem t.fds fd) then Errno.raise_ EBADF (string_of_int fd);
  Hashtbl.remove t.fds fd

let fd_entry t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some e -> e
  | None -> Errno.raise_ EBADF (string_of_int fd)

(* Charge the data-path entry: a syscall for kernel FSes, a plain user
   space call for SplitFS. *)
let data_entry ?ctx t =
  if t.profile.Profile.data_syscall then syscall ?ctx t
  else begin
    (match ctx with
    | Some c -> c.Machine.thr.Sthread.cur_region <- t.home_region
    | None -> ());
    cpu ?ctx 300.0 (* LD_PRELOAD interception + staging-map lookup *)
  end

let ensure_data_capacity n cap =
  if Bytes.length n.data < cap then begin
    let bigger = Bytes.create (max cap (2 * max 64 (Bytes.length n.data))) in
    Bytes.blit n.data 0 bigger 0 n.size;
    n.data <- bigger
  end

(* Copy [src] into the node's buffer at [pos]: a single blit straight
   from the caller's buffer (no intermediate [Bytes.sub]), shared by the
   journaled write path and the SplitFS staged-append path. *)
let blit_into n ~pos src =
  let len = Bytes.length src in
  ensure_data_capacity n (pos + len);
  Bytes.blit src 0 n.data pos len;
  if pos + len > n.size then n.size <- pos + len;
  len

let charge_read ?ctx t len =
  match ctx with
  | None -> ()
  | Some c ->
      Machine.nvmm_read c len;
      Machine.memcpy_cpu c len;
      ignore t

let charge_write ?ctx t len =
  match ctx with
  | None -> ()
  | Some c ->
      Machine.nvmm_write c len;
      Machine.memcpy_cpu c len;
      ignore t

let with_read_sem ?ctx n f =
  match ctx with
  | None -> f ()
  | Some c -> Vlock.Rw.with_read c n.rwsem f

let with_write_sem ?ctx n f =
  match ctx with
  | None -> f ()
  | Some c -> Vlock.Rw.with_write c n.rwsem f

let pread ?ctx t fd ~pos ~len =
  data_entry ?ctx t;
  if pos < 0 then Errno.raise_ EINVAL (Printf.sprintf "pread pos %d" pos);
  if len < 0 then Errno.raise_ EINVAL (Printf.sprintf "pread len %d" len);
  if pos > max_int - len then
    Errno.raise_ EINVAL (Printf.sprintf "pread pos %d + len %d overflow" pos len);
  let e = fd_entry t fd in
  if not e.flags.Types.read then Errno.raise_ EBADF "write-only fd";
  let n = e.node in
  with_read_sem ?ctx n (fun () ->
      let len = max 0 (min len (n.size - pos)) in
      charge_read ?ctx t len;
      if len = 0 then Bytes.empty
      else begin
        (* exact-size result filled in place: one copy, no resize *)
        let out = Bytes.create len in
        Bytes.blit n.data pos out 0 len;
        out
      end)

let do_write ?ctx t n ~pos src =
  let len = Bytes.length src in
  let new_blocks =
    max 0 (((pos + len + 4095) / 4096) - ((n.size + 4095) / 4096))
  in
  if new_blocks > 0 then alloc_blocks ?ctx t new_blocks;
  let len = blit_into n ~pos src in
  charge_write ?ctx t len;
  write_lines ?ctx t.profile.Profile.append_meta_writes;
  n.mtime <- now ?ctx t;
  len

let pwrite ?ctx t fd ~pos src =
  data_entry ?ctx t;
  if pos < 0 then Errno.raise_ EINVAL (Printf.sprintf "pwrite pos %d" pos);
  if pos > max_int - Bytes.length src then
    Errno.raise_ EINVAL (Printf.sprintf "pwrite pos %d + len overflow" pos);
  let e = fd_entry t fd in
  if not e.flags.Types.write then Errno.raise_ EBADF "read-only fd";
  with_write_sem ?ctx e.node (fun () ->
      (* in-place overwrites skip allocation; extension allocates *)
      journal_op ?ctx t (fun () -> ());
      do_write ?ctx t e.node ~pos src)

let append ?ctx t fd src =
  data_entry ?ctx t;
  let e = fd_entry t fd in
  if not e.flags.Types.write then Errno.raise_ EBADF "read-only fd";
  let n = e.node in
  with_write_sem ?ctx n (fun () ->
      if t.profile.Profile.staged_appends > 0 then begin
        (* SplitFS: append into a pre-allocated mmap'ed staging region —
           no journal, no per-append allocation; one relink syscall (and
           the staging-region allocation) every N appends *)
        n.staged <- n.staged + 1;
        if n.staged >= t.profile.Profile.staged_appends then begin
          n.staged <- 0;
          syscall ?ctx t;
          cpu ?ctx t.profile.Profile.fsync_cycles;
          alloc_blocks ?ctx t t.profile.Profile.staged_appends
        end;
        let len = blit_into n ~pos:n.size src in
        charge_write ?ctx t len;
        write_lines ?ctx t.profile.Profile.append_meta_writes;
        e.pos <- n.size;
        len
      end
      else begin
        journal_op ?ctx t (fun () -> ());
        let r = do_write ?ctx t n ~pos:n.size src in
        e.pos <- n.size;
        r
      end)

let fallocate ?ctx t fd ~len =
  syscall ?ctx t;
  let e = fd_entry t fd in
  if not e.flags.Types.write then Errno.raise_ EBADF "read-only fd";
  let n = e.node in
  with_write_sem ?ctx n (fun () ->
      let new_blocks = max 0 (((len + 4095) / 4096) - ((n.size + 4095) / 4096)) in
      if new_blocks > 0 then begin
        journal_op ?ctx t (fun () -> ());
        alloc_blocks ?ctx t new_blocks;
        write_lines ?ctx t.profile.Profile.append_meta_writes;
        ensure_data_capacity n len;
        if len > n.size then n.size <- len
      end)

let fsync ?ctx t fd =
  (if t.profile.Profile.data_syscall then syscall ?ctx t else cpu ?ctx 300.0);
  let e = fd_entry t fd in
  ignore e;
  cpu ?ctx t.profile.Profile.fsync_cycles

let truncate ?ctx t path len =
  syscall ?ctx t;
  let n = resolve ?ctx t path in
  if n.kind = Types.Dir then Errno.raise_ EISDIR path;
  with_write_sem ?ctx n (fun () ->
      journal_op ?ctx t (fun () -> ());
      if len < n.size then n.size <- len
      else begin
        ensure_data_capacity n len;
        n.size <- len
      end)

let chmod ?ctx t path perm =
  syscall ?ctx t;
  let n = resolve ?ctx t path in
  journal_op ?ctx t (fun () -> n.perm <- perm land 0o777)

let utimes ?ctx t path mtime =
  syscall ?ctx t;
  let n = resolve ?ctx t path in
  journal_op ?ctx t (fun () -> n.mtime <- mtime)

let dcache_stats t = Simurgh_vfs.Dcache.stats t.dcache
