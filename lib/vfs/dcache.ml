(** Dentry cache model.

    Kernel path resolution walks the dcache one component at a time.  A
    hit costs a hash lookup; crucially, each traversal takes a reference
    on the dentry, an atomic RMW on a per-dentry cache line.  When many
    threads resolve paths sharing a prefix, those cache lines bounce
    between cores — the scalability collapse of Fig. 7f.  Private paths
    touch private dentries and stay fast (Fig. 7e). *)

open Simurgh_sim

type 'node dentry = {
  node : 'node;
  refcount : Resource.t;  (** the d_lockref cache line *)
  mutable last_toucher : int;
}

type 'node t = {
  table : (int * string, 'node dentry) Hashtbl.t;
      (** (parent identity, component) -> dentry *)
  lock : Vlock.Spin.t;  (** insertion/eviction lock *)
  mutable hits : int;
  mutable misses : int;
}

let create () =
  {
    table = Hashtbl.create 4096;
    lock = Vlock.Spin.create ~site:"dcache" ();
    hits = 0;
    misses = 0;
  }

let clear t =
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0

(* Taking a reference bounces the dentry's lockref line when the previous
   toucher was another thread. *)
let take_ref (ctx : Machine.ctx) d =
  let thr = ctx.Machine.thr in
  let cm = Machine.cm ctx in
  let dur =
    if d.last_toucher = thr.Sthread.tid then
      cm.Cost_model.atomic_uncontended
    else 16.0 *. cm.Cost_model.atomic_contended (* lockref retry storms *)
  in
  let done_at = Resource.serve d.refcount ~now:thr.Sthread.now ~dur in
  Sthread.wait_until thr done_at;
  d.last_toucher <- thr.Sthread.tid

(** Look up one component under [parent]; on hit, charges the hash probe
    and the lockref bounce. *)
let lookup ?ctx t ~parent name =
  match Hashtbl.find_opt t.table (parent, name) with
  | Some d ->
      t.hits <- t.hits + 1;
      (match ctx with
      | Some c ->
          Machine.cpu c (Machine.cm c).Cost_model.dcache_hit_cycles;
          take_ref c d
      | None -> ());
      Some d.node
  | None ->
      t.misses <- t.misses + 1;
      (match ctx with
      | Some c -> Machine.cpu c (Machine.cm c).Cost_model.dcache_miss_cycles
      | None -> ());
      None

let insert ?ctx t ~parent name node =
  let ins () =
    Hashtbl.replace t.table (parent, name)
      { node; refcount = Resource.create "d_lockref"; last_toucher = -1 }
  in
  match ctx with
  | Some c ->
      Vlock.Spin.acquire c t.lock;
      ins ();
      (* hash insert + LRU list manipulation under the global lock *)
      Machine.cpu c 400.0;
      Vlock.Spin.release c t.lock
  | None -> ins ()

let remove ?ctx t ~parent name =
  let rm () = Hashtbl.remove t.table (parent, name) in
  match ctx with
  | Some c ->
      Vlock.Spin.acquire c t.lock;
      rm ();
      (* dentry kill: unhash + LRU removal under the global lock *)
      Machine.cpu c 400.0;
      Vlock.Spin.release c t.lock
  | None -> rm ()

let stats t = (t.hits, t.misses)
