(** Simulated byte-addressable non-volatile memory region.

    The region stands in for the mmap'ed Optane DIMMs of the paper.  Two
    modes:

    - [Fast]: stores hit the persistent image directly.  Used for
      benchmarks, where persistence ordering is charged in virtual time
      but not checked.
    - [Strict]: stores land in a volatile overlay keyed by 64-byte cache
      line; [clwb] marks lines write-back pending, [sfence] commits
      pending lines to the persistent image, and [crash] discards the
      overlay.  Non-temporal stores ([ntstore]) bypass the cache but
      still require [sfence] to be ADR-safe, matching x86 semantics.
      Dropping *all* unflushed lines at a crash is the adversarial choice
      (real caches may evict early), which is what recovery code must
      survive.

    The data path is word- and line-granular: scalar accessors are
    single-shot [Bytes.get_int64_le]-style loads/stores (one guard check,
    one bounds check, one stats update per access), bulk accessors blit
    one overlapped cache line at a time, and [sfence] walks an explicit
    pending-flush worklist instead of the whole overlay, so a fence costs
    O(lines actually marked by [clwb] since the previous fence).  Every
    layer above (allocators, directory blocks, the file data path, the
    baselines, the KV store) funnels through here, so the substrate must
    run at memcpy speed to avoid hiding the mechanisms being measured.

    An optional [guard] models the protected-page check: when installed,
    every access calls it first, and the Simurgh security layer makes it
    fault unless the CPU runs in kernel mode via jmpp. *)

let line_size = 64

type mode = Fast | Strict

type line_state = Dirty | Flushing

(** Uncorrectable media error: an access touched a poisoned cache line.
    The payload is the byte offset of the poisoned line's start.  Models
    the machine-check / bad-block behaviour of real NVMM DIMMs
    conservatively: both loads and stores fault (as a PM-aware driver
    reports EIO on known-bad blocks), and only an explicit [scrub]
    clears the poison. *)
exception Media_error of int

let () =
  Printexc.register_printer (function
    | Media_error off ->
        Some (Printf.sprintf "Region.Media_error(line at %#x)" off)
    | _ -> None)

type t = {
  image : Bytes.t;  (** the persistent image *)
  size : int;
  mode : mode;
  overlay : (int, Bytes.t * line_state ref) Hashtbl.t;
      (** line number -> volatile contents + state (Strict mode only) *)
  mutable pending : int list;
      (** worklist of lines moved to [Flushing] since the last [sfence];
          may hold stale or duplicate entries (filtered at the fence),
          but every Flushing line is on it *)
  poisoned : (int, unit) Hashtbl.t;
      (** line number -> (); lines with uncorrectable media errors *)
  mutable on_store : (unit -> unit) option;
      (** fault-injection hook: called before every store operation, so a
          crash-image explorer can cut power between any two stores *)
  mutable on_access : (off:int -> len:int -> write:bool -> unit) option;
      (** tracing hook: called before every load/store with the byte
          range touched — the schedule explorer's race detector attaches
          here (the region stays ignorant of the sim layer) *)
  mutable on_fence : (unit -> unit) option;
      (** tracing hook: called on every [sfence] (and hence [persist]) *)
  mutable guard : (write:bool -> unit) option;
  mutable user_slot : exn option;
      (** opaque per-region slot for a higher layer's shared volatile
          state (the FS stores its shared-DRAM structures here so every
          mount of the region finds them; an exception constructor makes
          the slot type-safe without a dependency) *)
  mutable stores : int;  (** statistics: store operations *)
  mutable loads : int;  (** load operations *)
  mutable store_bytes : int;  (** bytes written across all stores *)
  mutable load_bytes : int;  (** bytes read across all loads *)
  mutable flushes : int;  (** clwb/ntstore, in cache lines covered *)
  mutable fences : int;
  mutable media_errors : int;  (** loads that hit a poisoned line *)
  mutable crash_images : int;  (** crash / crash_image applications *)
}

let create ?(mode = Fast) ?name size =
  let t =
    {
      image = Bytes.make size '\000';
      size;
      mode;
      overlay = Hashtbl.create 1024;
      pending = [];
      poisoned = Hashtbl.create 8;
      on_store = None;
      on_access = None;
      on_fence = None;
      guard = None;
      user_slot = None;
      stores = 0;
      loads = 0;
      store_bytes = 0;
      load_bytes = 0;
      flushes = 0;
      fences = 0;
      media_errors = 0;
      crash_images = 0;
    }
  in
  (* fold the region's access statistics into the active experiment's
     observability snapshot (no-op outside the bench driver).  Unnamed
     regions keep the historical aggregate [region/...] counter family
     (same-named sources sum at drain); a [~name]d region — the
     multi-region substrate passes ["region0"], ["region1"], ... —
     gets its own exclusive per-region namespace, and registering two
     regions under one name is an error
     ({!Simurgh_obs.Collect.Duplicate_source}). *)
  let prefix = match name with None -> "region" | Some n -> n in
  Simurgh_obs.Collect.note_source ?name (fun () ->
      let c k = prefix ^ "/" ^ k in
      let f k = match name with None -> "faults/" ^ k | Some n -> n ^ "/faults/" ^ k in
      [
        (c "loads", float_of_int t.loads);
        (c "stores", float_of_int t.stores);
        (c "load_bytes", float_of_int t.load_bytes);
        (c "store_bytes", float_of_int t.store_bytes);
        (c "flush_lines", float_of_int t.flushes);
        (c "fences", float_of_int t.fences);
        (c "bytes", float_of_int t.size);
        (f "poisoned_lines", float_of_int (Hashtbl.length t.poisoned));
        (f "media_errors", float_of_int t.media_errors);
        (f "crash_images", float_of_int t.crash_images);
      ]);
  t

let size t = t.size
let mode t = t.mode
let user_slot t = t.user_slot
let set_user_slot t v = t.user_slot <- v
let set_guard t g = t.guard <- Some g
let clear_guard t = t.guard <- None

let check t ~write =
  match t.guard with None -> () | Some g -> g ~write

let line_of off = off / line_size

(* Fetch (creating from the persistent image) the overlay line. *)
let overlay_line t ln =
  match Hashtbl.find_opt t.overlay ln with
  | Some (buf, st) -> (buf, st)
  | None ->
      let buf = Bytes.create line_size in
      let base = ln * line_size in
      let len = min line_size (t.size - base) in
      Bytes.blit t.image base buf 0 len;
      let cell = (buf, ref Dirty) in
      Hashtbl.replace t.overlay ln cell;
      cell

(* --- bounds / accounting ---------------------------------------------- *)

let bounds t off len =
  if off < 0 || len < 0 || off + len > t.size then
    invalid_arg
      (Printf.sprintf "Region: access [%d, %d) outside region of %d bytes"
         off (off + len) t.size)

let count_load t off len =
  (match t.on_access with None -> () | Some f -> f ~off ~len ~write:false);
  t.loads <- t.loads + 1;
  t.load_bytes <- t.load_bytes + len

let count_store t off len =
  (match t.on_store with None -> () | Some f -> f ());
  (match t.on_access with None -> () | Some f -> f ~off ~len ~write:true);
  t.stores <- t.stores + 1;
  t.store_bytes <- t.store_bytes + len

(* Raise [Media_error] when [off, off+len) touches a poisoned line.  The
   empty-table fast path keeps the check to one length read per load. *)
let check_poison t off len =
  if Hashtbl.length t.poisoned > 0 then begin
    let first = line_of off and last = line_of (off + max (len - 1) 0) in
    for ln = first to last do
      if Hashtbl.mem t.poisoned ln then begin
        t.media_errors <- t.media_errors + 1;
        raise (Media_error (ln * line_size))
      end
    done
  end

(* --- line-granular bulk helpers (Strict mode) --------------------------

   Each walks the lines overlapping [off, off+len) once, doing one
   overlay lookup and one [Bytes.blit]/[fill] per line. *)

(* Copy [len] bytes at [off] into [dst] at [pos], merging the overlay. *)
let strict_read_into t off dst pos len =
  let last = off + len - 1 in
  let ln = ref (line_of off) in
  let cur = ref off in
  while !cur <= last do
    let base = !ln * line_size in
    let stop = min last (base + line_size - 1) in
    let n = stop - !cur + 1 in
    (match Hashtbl.find_opt t.overlay !ln with
    | Some (buf, _) -> Bytes.blit buf (!cur - base) dst (pos + (!cur - off)) n
    | None -> Bytes.blit t.image !cur dst (pos + (!cur - off)) n);
    cur := stop + 1;
    incr ln
  done

(* Generic per-line store walk: [write_line buf boff doff n] copies [n]
   source bytes starting at source offset [doff] into the overlay line
   buffer [buf] at [boff]. *)
let strict_write_lines t off len write_line =
  let last = off + len - 1 in
  let ln = ref (line_of off) in
  let cur = ref off in
  while !cur <= last do
    let base = !ln * line_size in
    let stop = min last (base + line_size - 1) in
    let n = stop - !cur + 1 in
    let buf, st = overlay_line t !ln in
    st := Dirty;
    write_line buf (!cur - base) (!cur - off) n;
    cur := stop + 1;
    incr ln
  done

(* --- raw byte access -------------------------------------------------- *)

let read_byte t off =
  count_load t off 1;
  check t ~write:false;
  bounds t off 1;
  check_poison t off 1;
  match t.mode with
  | Fast -> Char.code (Bytes.unsafe_get t.image off)
  | Strict -> (
      let ln = line_of off in
      match Hashtbl.find_opt t.overlay ln with
      | Some (buf, _) -> Char.code (Bytes.get buf (off - (ln * line_size)))
      | None -> Char.code (Bytes.get t.image off))

let write_byte t off v =
  count_store t off 1;
  check t ~write:true;
  bounds t off 1;
  check_poison t off 1;
  match t.mode with
  | Fast -> Bytes.unsafe_set t.image off (Char.chr (v land 0xff))
  | Strict ->
      let ln = line_of off in
      let buf, st = overlay_line t ln in
      st := Dirty;
      Bytes.set buf (off - (ln * line_size)) (Char.chr (v land 0xff))

(** Read [len] bytes at [off] into [dst] starting at [pos] — the
    allocation-free variant of {!read_bytes} for hot loops. *)
let read_bytes_into t off dst ~pos ~len =
  count_load t off len;
  check t ~write:false;
  bounds t off len;
  check_poison t off len;
  if pos < 0 || len < 0 || pos + len > Bytes.length dst then
    invalid_arg "Region.read_bytes_into: destination range";
  match t.mode with
  | Fast -> Bytes.blit t.image off dst pos len
  | Strict -> strict_read_into t off dst pos len

let read_bytes t off len =
  let out = Bytes.create len in
  read_bytes_into t off out ~pos:0 ~len;
  out

(** Write [len] bytes of [src] starting at [pos] to [off] — the
    allocation-free variant of {!write_bytes} for hot loops (no
    intermediate [Bytes.sub]). *)
let write_bytes_from t off src ~pos ~len =
  count_store t off len;
  check t ~write:true;
  bounds t off len;
  check_poison t off len;
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    invalid_arg "Region.write_bytes_from: source range";
  match t.mode with
  | Fast -> Bytes.blit src pos t.image off len
  | Strict ->
      strict_write_lines t off len (fun buf boff doff n ->
          Bytes.blit src (pos + doff) buf boff n)

let write_bytes t off src =
  write_bytes_from t off src ~pos:0 ~len:(Bytes.length src)

(* Write straight from a string: no [Bytes.of_string] copy. *)
let write_string t off s =
  let len = String.length s in
  count_store t off len;
  check t ~write:true;
  bounds t off len;
  check_poison t off len;
  match t.mode with
  | Fast -> Bytes.blit_string s 0 t.image off len
  | Strict ->
      strict_write_lines t off len (fun buf boff doff n ->
          Bytes.blit_string s doff buf boff n)

let zero t off len =
  count_store t off len;
  check t ~write:true;
  bounds t off len;
  check_poison t off len;
  match t.mode with
  | Fast -> Bytes.fill t.image off len '\000'
  | Strict ->
      strict_write_lines t off len (fun buf boff _ n ->
          Bytes.fill buf boff n '\000')

(* --- fixed-width little-endian accessors ------------------------------

   Single-shot loads/stores when the word lies within one cache line
   (always the case for naturally aligned accesses, since the line size
   is a multiple of 8); an unaligned straddler falls back to the
   line-granular bulk path via a small stack buffer. *)

let read_u8 = read_byte
let write_u8 = write_byte

(* A [len]-byte word at [off] crosses a line boundary? *)
let straddles off len = off land (line_size - 1) > line_size - len

let strict_read_word t off get =
  let ln = line_of off in
  match Hashtbl.find_opt t.overlay ln with
  | Some (buf, _) -> get buf (off - (ln * line_size))
  | None -> get t.image off

let strict_write_word t off set v =
  let ln = line_of off in
  let buf, st = overlay_line t ln in
  st := Dirty;
  set buf (off - (ln * line_size)) v

let read_u16 t off =
  count_load t off 2;
  check t ~write:false;
  bounds t off 2;
  check_poison t off 2;
  match t.mode with
  | Fast -> Bytes.get_uint16_le t.image off
  | Strict ->
      if straddles off 2 then begin
        let tmp = Bytes.create 2 in
        strict_read_into t off tmp 0 2;
        Bytes.get_uint16_le tmp 0
      end
      else strict_read_word t off Bytes.get_uint16_le

let write_u16 t off v =
  count_store t off 2;
  check t ~write:true;
  bounds t off 2;
  check_poison t off 2;
  let v = v land 0xffff in
  match t.mode with
  | Fast -> Bytes.set_uint16_le t.image off v
  | Strict ->
      if straddles off 2 then begin
        let tmp = Bytes.create 2 in
        Bytes.set_uint16_le tmp 0 v;
        strict_write_lines t off 2 (fun buf boff doff n ->
            Bytes.blit tmp doff buf boff n)
      end
      else strict_write_word t off Bytes.set_uint16_le v

let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff
let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let read_u32 t off =
  count_load t off 4;
  check t ~write:false;
  bounds t off 4;
  check_poison t off 4;
  match t.mode with
  | Fast -> get_u32 t.image off
  | Strict ->
      if straddles off 4 then begin
        let tmp = Bytes.create 4 in
        strict_read_into t off tmp 0 4;
        get_u32 tmp 0
      end
      else strict_read_word t off get_u32

let write_u32 t off v =
  count_store t off 4;
  check t ~write:true;
  bounds t off 4;
  check_poison t off 4;
  match t.mode with
  | Fast -> set_u32 t.image off v
  | Strict ->
      if straddles off 4 then begin
        let tmp = Bytes.create 4 in
        set_u32 tmp 0 v;
        strict_write_lines t off 4 (fun buf boff doff n ->
            Bytes.blit tmp doff buf boff n)
      end
      else strict_write_word t off set_u32 v

(* 62 usable bits: offsets, sizes and persistent pointers all fit.
   [Int64.to_int] keeps the low 63 bits with OCaml-int wraparound —
   bit-identical to composing the word from byte loads. *)
let get_u62 b off = Int64.to_int (Bytes.get_int64_le b off)

(* Stores drop the two bits that do not survive a round-trip, exactly as
   the byte-at-a-time encoding did (bits 0-61 land in the image, the
   top two image bytes' bits stay zero). *)
let set_u62 b off v =
  Bytes.set_int64_le b off (Int64.of_int (v land 0x3fff_ffff_ffff_ffff))

let read_u62 t off =
  count_load t off 8;
  check t ~write:false;
  bounds t off 8;
  check_poison t off 8;
  match t.mode with
  | Fast -> get_u62 t.image off
  | Strict ->
      if straddles off 8 then begin
        let tmp = Bytes.create 8 in
        strict_read_into t off tmp 0 8;
        get_u62 tmp 0
      end
      else strict_read_word t off get_u62

let write_u62 t off v =
  count_store t off 8;
  check t ~write:true;
  bounds t off 8;
  check_poison t off 8;
  match t.mode with
  | Fast -> set_u62 t.image off v
  | Strict ->
      if straddles off 8 then begin
        let tmp = Bytes.create 8 in
        set_u62 tmp 0 v;
        strict_write_lines t off 8 (fun buf boff doff n ->
            Bytes.blit tmp doff buf boff n)
      end
      else strict_write_word t off set_u62 v

(** Load two adjacent u62 words (e.g. a free-list node's next/count pair)
    with one guard/bounds/stats round and, in Strict mode, a single
    overlay lookup when the pair does not straddle a line. *)
let read_u62_pair t off =
  count_load t off 16;
  check t ~write:false;
  bounds t off 16;
  check_poison t off 16;
  match t.mode with
  | Fast -> (get_u62 t.image off, get_u62 t.image (off + 8))
  | Strict ->
      if straddles off 16 then begin
        let tmp = Bytes.create 16 in
        strict_read_into t off tmp 0 16;
        (get_u62 tmp 0, get_u62 tmp 8)
      end
      else
        let ln = line_of off in
        let b, boff =
          match Hashtbl.find_opt t.overlay ln with
          | Some (buf, _) -> (buf, off - (ln * line_size))
          | None -> (t.image, off)
        in
        (get_u62 b boff, get_u62 b (boff + 8))

(** Store two adjacent u62 words in one round (see {!read_u62_pair}). *)
let write_u62_pair t off v0 v1 =
  count_store t off 16;
  check t ~write:true;
  bounds t off 16;
  check_poison t off 16;
  match t.mode with
  | Fast ->
      set_u62 t.image off v0;
      set_u62 t.image (off + 8) v1
  | Strict ->
      if straddles off 16 then begin
        let tmp = Bytes.create 16 in
        set_u62 tmp 0 v0;
        set_u62 tmp 8 v1;
        strict_write_lines t off 16 (fun buf boff doff n ->
            Bytes.blit tmp doff buf boff n)
      end
      else begin
        let ln = line_of off in
        let buf, st = overlay_line t ln in
        st := Dirty;
        let boff = off - (ln * line_size) in
        set_u62 buf boff v0;
        set_u62 buf (boff + 8) v1
      end

(* --- persistence primitives ------------------------------------------ *)

(** [clwb t off len]: initiate write-back of the lines covering
    [off, off+len).  Persistence is only guaranteed after [sfence].
    Lines transitioning to [Flushing] join the pending worklist that
    [sfence] walks. *)
let clwb t off len =
  bounds t off (max len 1);
  let first = line_of off and last = line_of (off + max (len - 1) 0) in
  t.flushes <- t.flushes + (last - first + 1);
  match t.mode with
  | Fast -> ()
  | Strict ->
      for ln = first to last do
        match Hashtbl.find_opt t.overlay ln with
        | Some (_, st) ->
            if !st <> Flushing then begin
              st := Flushing;
              t.pending <- ln :: t.pending
            end
        | None -> ()
      done

(** Non-temporal store of [src] at [off]: bypasses the cache (write
    combining); still needs [sfence] before it is guaranteed durable. *)
let ntstore t off src =
  write_bytes t off src;
  clwb t off (Bytes.length src)

(** [ntstore] from a sub-range of [src] — the allocation-free variant
    for hot loops (no [Bytes.sub]).  One call per contiguous extent run
    plus a single trailing [sfence] is the batched-writeback data path:
    every covered line ends up Flushing, so the one fence persists the
    whole span. *)
let ntstore_from t off src ~pos ~len =
  write_bytes_from t off src ~pos ~len;
  clwb t off len

(** Commit all pending (Flushing) lines to the persistent image.  Walks
    only the worklist built up by [clwb] — O(lines actually pending),
    not O(overlay size).  A line re-dirtied after its [clwb] is skipped
    (it needs another [clwb]), exactly as on real hardware. *)
let sfence t =
  (match t.on_fence with None -> () | Some f -> f ());
  t.fences <- t.fences + 1;
  match t.mode with
  | Fast -> ()
  | Strict ->
      let work = t.pending in
      t.pending <- [];
      List.iter
        (fun ln ->
          match Hashtbl.find_opt t.overlay ln with
          | Some (buf, st) when !st = Flushing ->
              let base = ln * line_size in
              let len = min line_size (t.size - base) in
              Bytes.blit buf 0 t.image base len;
              Hashtbl.remove t.overlay ln
          | Some _ | None -> ())
        work

(** Convenience: flush + fence a range (persist barrier). *)
let persist t off len =
  clwb t off len;
  sfence t

(* Commit one overlay line to the persistent image (early eviction). *)
let commit_line t ln buf =
  let base = ln * line_size in
  Bytes.blit buf 0 t.image base (min line_size (t.size - base))

(** Power failure with an eviction adversary.  On real NVMM the cache
    may evict any dirty line to media *before* the fence, so at a crash
    point every unpersisted line is independently either lost or already
    durable.  [keep ln] (ln = cache-line index, [off / line_size])
    decides the fate of each Dirty/Flushing line: [true] = the line was
    evicted early and survives, [false] = it is lost.  The classic
    drop-all [crash] is [~keep:(fun _ -> false)].  Raises
    [Invalid_argument] in [Fast] mode, where there is no volatile state
    to lose and any "crash test" would vacuously pass. *)
let crash_image t ~keep =
  match t.mode with
  | Fast -> invalid_arg "Region.crash_image: region is in Fast mode"
  | Strict ->
      Hashtbl.iter
        (fun ln (buf, _st) -> if keep ln then commit_line t ln buf)
        t.overlay;
      Hashtbl.reset t.overlay;
      t.pending <- [];
      t.crash_images <- t.crash_images + 1

(** Power failure: every line not yet committed by [sfence] is lost.
    Raises [Invalid_argument] in [Fast] mode (see [crash_image]). *)
let crash t = crash_image t ~keep:(fun _ -> false)

(** Number of dirty (not yet durable) lines; 0 means fully persisted. *)
let unpersisted_lines t = Hashtbl.length t.overlay

(** Cache-line indices of every unpersisted (Dirty or Flushing) line,
    sorted ascending — the domain a crash-image explorer enumerates. *)
let pending_lines t =
  Hashtbl.fold (fun ln _ acc -> ln :: acc) t.overlay []
  |> List.sort compare

(** Force every unpersisted line durable (as if each had been clwb'd and
    fenced).  Used by crash explorers to establish a known-persisted
    baseline before the operation under test.  No-op in [Fast] mode. *)
let persist_all t =
  match t.mode with
  | Fast -> ()
  | Strict ->
      Hashtbl.iter (fun ln (buf, _st) -> commit_line t ln buf) t.overlay;
      Hashtbl.reset t.overlay;
      t.pending <- []

(** Digest of the region's prospective durable contents: the durable
    image with every unpersisted overlay line applied — exactly what
    {!persist_all} would make durable.  Statistics, hooks and poison
    bookkeeping are excluded, so two regions with the same would-be
    media bytes digest equal regardless of access history.  Oracles use
    this to assert media no-ops (an already-clean image must be
    bit-identical across a second recovery pass) and schedule
    independence (parallel recovery must produce one media image under
    every interleaving). *)
let media_digest t =
  match t.mode with
  | Fast -> Digest.bytes t.image
  | Strict ->
      let merged = Bytes.copy t.image in
      Hashtbl.iter
        (fun ln (buf, _st) ->
          let base = ln * line_size in
          let len = min line_size (t.size - base) in
          Bytes.blit buf 0 merged base len)
        t.overlay;
      Digest.bytes merged

(* --- media-error plane ------------------------------------------------ *)

(** Mark the lines covering [off, off+len) as uncorrectable: subsequent
    loads and stores raise [Media_error] (real DIMMs clear poison on a
    full-line write only via management commands; we keep the
    conservative model: only [scrub] heals). *)
let poison t off len =
  bounds t off (max len 1);
  let first = line_of off and last = line_of (off + max (len - 1) 0) in
  for ln = first to last do
    Hashtbl.replace t.poisoned ln ()
  done

(** Clear poison from the lines covering [off, off+len). *)
let scrub t off len =
  bounds t off (max len 1);
  let first = line_of off and last = line_of (off + max (len - 1) 0) in
  for ln = first to last do
    Hashtbl.remove t.poisoned ln
  done

(** Does any line covering [off, off+len) carry poison? *)
let range_poisoned t off len =
  Hashtbl.length t.poisoned > 0
  && begin
       bounds t off (max len 1);
       let first = line_of off and last = line_of (off + max (len - 1) 0) in
       let rec go ln =
         ln <= last && (Hashtbl.mem t.poisoned ln || go (ln + 1))
       in
       go first
     end

(** Number of currently poisoned lines. *)
let poisoned_lines t = Hashtbl.length t.poisoned

(** Visit the byte offset of every currently poisoned line (unordered).
    Lets the allocator account quarantined blocks exactly — a block is
    quarantined iff any of its lines carries poison. *)
let iter_poisoned_lines t f =
  Hashtbl.iter (fun ln () -> f (ln * line_size)) t.poisoned

(* --- fault-injection hooks & checkpoints ------------------------------ *)

(** Install [f] to run before every store; a crash explorer uses this to
    cut power between any two stores of an operation. *)
let set_store_hook t f = t.on_store <- Some f

let clear_store_hook t = t.on_store <- None

(** Install [f] to run before every load/store with the byte range and
    direction — the schedule explorer's race detector and preemption
    points attach here without the region depending on the sim layer. *)
let set_access_hook t f = t.on_access <- Some f

let clear_access_hook t = t.on_access <- None

(** Install [f] to run on every [sfence] (and hence every [persist]). *)
let set_fence_hook t f = t.on_fence <- Some f

let clear_fence_hook t = t.on_fence <- None

(** Deep snapshot of the full region state (image, overlay, pending
    worklist, poison set, user slot) so an explorer can replay many
    crash images from one crash point without re-running the workload. *)
type checkpoint = {
  cp_size : int;
  cp_image : Bytes.t;
  cp_overlay : (int * Bytes.t * line_state) list;
  cp_pending : int list;
  cp_poisoned : int list;
  cp_user_slot : exn option;
}

let checkpoint t =
  {
    cp_size = t.size;
    cp_image = Bytes.copy t.image;
    cp_overlay =
      Hashtbl.fold
        (fun ln (buf, st) acc -> (ln, Bytes.copy buf, !st) :: acc)
        t.overlay [];
    cp_pending = t.pending;
    cp_poisoned = Hashtbl.fold (fun ln () acc -> ln :: acc) t.poisoned [];
    cp_user_slot = t.user_slot;
  }

let restore t cp =
  if cp.cp_size <> t.size then
    invalid_arg "Region.restore: checkpoint from a different-sized region";
  Bytes.blit cp.cp_image 0 t.image 0 t.size;
  Hashtbl.reset t.overlay;
  List.iter
    (fun (ln, buf, st) -> Hashtbl.replace t.overlay ln (Bytes.copy buf, ref st))
    cp.cp_overlay;
  t.pending <- cp.cp_pending;
  Hashtbl.reset t.poisoned;
  List.iter (fun ln -> Hashtbl.replace t.poisoned ln ()) cp.cp_poisoned;
  t.user_slot <- cp.cp_user_slot

(* --- file-backed persistence ------------------------------------------ *)

(** Write the persistent image to [path] (the volatile overlay of a
    strict region is NOT included — exactly what would survive power
    loss). *)
let save_to_file t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc t.image)

(** Load a region image previously written by [save_to_file]. *)
let load_from_file ?(mode = Fast) path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let size = in_channel_length ic in
      let t = create ~mode size in
      really_input ic t.image 0 size;
      t)

type stats = {
  loads : int;  (** load operations *)
  stores : int;  (** store operations (including [zero]) *)
  load_bytes : int;  (** bytes read across all loads *)
  store_bytes : int;  (** bytes written across all stores *)
  flushes : int;  (** cache lines covered by clwb/ntstore *)
  fences : int;
  media_errors : int;  (** loads that hit a poisoned line *)
  crash_images : int;  (** crash / crash_image applications *)
}

let stats (t : t) : stats =
  {
    loads = t.loads;
    stores = t.stores;
    load_bytes = t.load_bytes;
    store_bytes = t.store_bytes;
    flushes = t.flushes;
    fences = t.fences;
    media_errors = t.media_errors;
    crash_images = t.crash_images;
  }
