(** Segmented block allocator (paper Section 4.2, "Block allocation").

    The managed space is divided into [segments] contiguous block ranges
    (the paper uses 2x the core count, following Hoard).  Each segment
    keeps an address-ordered free list of ranges threaded through the
    free blocks themselves; a per-segment busy flag provides mutual
    exclusion and a [last_accessed] timestamp lets peers detect a holder
    that crashed while holding the lock.  Threads pick a segment with a
    modulo function of the allocation hint (the inode pointer), which
    both clusters a file's blocks and spreads files across segments; a
    busy segment is simply skipped in favour of the next one.

    Frees push the range onto the head of the segment's list in O(1)
    (the paper: "adds the block to the list of free blocks").  When a
    first-fit walk fails to find a fitting range quickly, the segment is
    coalesced (ranges sorted and merged) and the walk retried — lazy
    coalescing keeps the common path short while still recovering large
    contiguous ranges, and a format/alloc-all/free-all cycle restores
    the initial state. *)

open Simurgh_nvmm

let magic = 0xb10ca1
let header_fixed = 32
let seg_header_size = 24
(* Free-range node, stored in the first 16 bytes of the range itself. *)
let node_next = 0
let node_count = 8

type t = {
  region : Region.t;
  off : int;  (** header location in the region *)
  block_size : int;
  segments : int;
  base : int;  (** first managed byte *)
  total_blocks : int;
  locks : Simurgh_sim.Vlock.Spin.t array;  (** virtual-time segment locks *)
  mutable tseg : int array;
      (** per-thread segment affinity (indexed by simulated tid, -1 =
          unset): where the thread's last allocation succeeded.  Purely
          volatile — the persistent free lists are untouched, so fsck
          and recovery see exactly the same state either way *)
  mutable tseg_enabled : bool;
  (* volatile operation counters (diagnostics; see Simurgh_obs) *)
  mutable allocs : int;
  mutable frees : int;
  mutable blocks_allocated : int;
  mutable blocks_freed : int;
  mutable blocks_quarantined : int;
      (** blocks withheld from the free lists at [free] time because a
          poisoned line sat under them (never recycled; see statfs) *)
}

let header_size ~segments = header_fixed + (segments * seg_header_size)
let seg_off t i = t.off + header_fixed + (i * seg_header_size)
let seg_flag t i = seg_off t i
let seg_last_accessed t i = seg_off t i + 8
let seg_head t i = seg_off t i + 16

(** Iterate the per-segment lock words — the persistent mirror of each
    segment lock (busy flag + last-accessed stamp, 16 bytes).  They are
    written under the segment's {!Simurgh_sim.Vlock} but deliberately
    read lock-free by the peer crash-detection scan
    ({!segment_is_stuck}), exactly as the paper's stuck-lock reclamation
    prescribes; a race detector must treat them as synchronization
    internals, not data. *)
let iter_lock_words t f =
  for i = 0 to t.segments - 1 do
    f ~off:(seg_off t i) ~len:16
  done

let blocks_per_segment t = (t.total_blocks + t.segments - 1) / t.segments

let seg_first_block t i = i * blocks_per_segment t
let seg_block_count t i =
  min (blocks_per_segment t) (t.total_blocks - seg_first_block t i)

let block_addr t b = t.base + (b * t.block_size)
let block_of_addr t addr = (addr - t.base) / t.block_size

let attach region ~off =
  let m = Region.read_u32 region off in
  if m <> magic then invalid_arg "Block_alloc.attach: bad magic";
  let block_size = Region.read_u32 region (off + 4) in
  let segments = Region.read_u32 region (off + 8) in
  let base = Region.read_u62 region (off + 16) in
  let total_blocks = Region.read_u62 region (off + 24) in
  {
    region;
    off;
    block_size;
    segments;
    base;
    total_blocks;
    locks = Array.init segments (fun _ -> Simurgh_sim.Vlock.Spin.create ~site:"balloc-seg" ());
    tseg = [||];
    tseg_enabled = false;
    allocs = 0;
    frees = 0;
    blocks_allocated = 0;
    blocks_freed = 0;
    blocks_quarantined = 0;
  }

let format region ~off ~base ~blocks ~block_size ~segments =
  if block_size < 16 then
    invalid_arg "Block_alloc.format: block_size must be >= 16";
  if segments < 1 || blocks < segments then
    invalid_arg "Block_alloc.format: bad segment/block counts";
  Region.write_u32 region off magic;
  Region.write_u32 region (off + 4) block_size;
  Region.write_u32 region (off + 8) segments;
  Region.write_u62 region (off + 16) base;
  Region.write_u62 region (off + 24) blocks;
  let t = attach region ~off in
  for i = 0 to segments - 1 do
    Region.write_u8 region (seg_flag t i) 0;
    Region.write_u62 region (seg_last_accessed t i) 0;
    let first = seg_first_block t i and count = seg_block_count t i in
    if count > 0 then begin
      let node = block_addr t first in
      Region.write_u62_pair region (node + node_next) 0 count;
      Region.write_u62 region (seg_head t i) node
    end
    else Region.write_u62 region (seg_head t i) 0
  done;
  Region.persist region off (header_size ~segments);
  t

(* --- virtual-time charging ------------------------------------------- *)

let charge_lines ?ctx ~read ~write () =
  match ctx with
  | None -> ()
  | Some ctx ->
      (* free-list nodes are hot under allocation churn: blended latency *)
      Simurgh_sim.Machine.nvmm_meta_read_lines ctx read;
      Simurgh_sim.Machine.nvmm_write_lines ctx write

(* --- segment locking with crash detection ----------------------------- *)

(** Virtual-time threshold after which a lock holder is presumed dead
    (paper: "the maximum duration that a process is allowed to hold a
    lock"). *)
let crash_threshold_cycles = 5.0e6

let lock_segment ?ctx t i =
  (match ctx with
  | Some ctx -> Simurgh_sim.Vlock.Spin.acquire ctx t.locks.(i)
  | None -> ());
  Region.write_u8 t.region (seg_flag t i) 1;
  let now =
    match ctx with
    | Some ctx -> int_of_float (Simurgh_sim.Machine.now ctx)
    | None -> 0
  in
  Region.write_u62 t.region (seg_last_accessed t i) now;
  Region.persist t.region (seg_flag t i) 16

let unlock_segment ?ctx t i =
  Region.write_u8 t.region (seg_flag t i) 0;
  Region.persist t.region (seg_flag t i) 1;
  match ctx with
  | Some ctx -> Simurgh_sim.Vlock.Spin.release ctx t.locks.(i)
  | None -> ()

(** A peer observing flag=1 with a stale timestamp reclaims the lock
    (process-crash recovery path). *)
let segment_is_stuck ?ctx t i =
  Region.read_u8 t.region (seg_flag t i) = 1
  &&
  match ctx with
  | None -> true
  | Some ctx ->
      let last =
        float_of_int (Region.read_u62 t.region (seg_last_accessed t i))
      in
      Simurgh_sim.Machine.now ctx -. last > crash_threshold_cycles

let recover_segment t i =
  Region.write_u8 t.region (seg_flag t i) 0;
  Region.persist t.region (seg_flag t i) 1

(* --- free-list manipulation (caller holds the segment lock) ----------- *)

(* The next/count pair is 16 adjacent bytes at the head of the range:
   one paired word access per node keeps free-list walks at one region
   round per hop. *)
let read_node t addr = Region.read_u62_pair t.region (addr + node_next)

let write_node t addr ~next ~count =
  Region.write_u62_pair t.region (addr + node_next) next count;
  Region.persist t.region addr 16

(* Sort and merge every range of segment [i]; caller holds the lock. *)
let coalesce_segment ?ctx t i =
  let head_addr = seg_head t i in
  let ranges = ref [] in
  let hops = ref 0 in
  let rec collect node =
    if node <> 0 then begin
      incr hops;
      let next, count = read_node t node in
      ranges := (node, count) :: !ranges;
      collect next
    end
  in
  collect (Region.read_u62 t.region head_addr);
  let sorted = List.sort compare !ranges in
  let merged =
    List.fold_left
      (fun acc (a, c) ->
        match acc with
        | (pa, pc) :: rest when pa + (pc * t.block_size) = a ->
            (pa, pc + c) :: rest
        | _ -> (a, c) :: acc)
      [] sorted
    (* accumulated in descending address order: rebuild ascending list *)
  in
  let rec rebuild next = function
    | [] -> next
    | (a, c) :: rest ->
        write_node t a ~next ~count:c;
        rebuild a rest
  in
  let head = rebuild 0 merged in
  Region.write_u62 t.region head_addr head;
  Region.persist t.region head_addr 8;
  charge_lines ?ctx ~read:!hops ~write:(!hops + 1) ()

(* First-fit within a segment; splits the tail of the chosen range.
   A walk that exceeds [walk_budget] hops without a fit triggers a
   coalesce of the segment and one retry. *)
let walk_budget = 48

let alloc_in_segment ?ctx t i n =
  let head_addr = seg_head t i in
  let rec attempt ~may_coalesce =
    let rec walk prev node hops =
      if node = 0 then begin
        charge_lines ?ctx ~read:(min hops walk_budget + 1) ~write:0 ();
        if may_coalesce && hops > 0 then begin
          coalesce_segment ?ctx t i;
          attempt ~may_coalesce:false
        end
        else None
      end
      else if hops > walk_budget && may_coalesce then begin
        charge_lines ?ctx ~read:(walk_budget + 1) ~write:0 ();
        coalesce_segment ?ctx t i;
        attempt ~may_coalesce:false
      end
      else
        let next, count = read_node t node in
        if count >= n then begin
          let remaining = count - n in
          let grabbed = node + (remaining * t.block_size) in
          if remaining = 0 then begin
            (* unlink the node *)
            (match prev with
            | None -> Region.write_u62 t.region head_addr next
            | Some p ->
                Region.write_u62 t.region (p + node_next) next);
            Region.persist t.region
              (match prev with None -> head_addr | Some p -> p)
              16
          end
          else write_node t node ~next ~count:remaining;
          charge_lines ?ctx ~read:(hops + 1) ~write:2 ();
          Some grabbed
        end
        else walk (Some node) next (hops + 1)
    in
    walk None (Region.read_u62 t.region head_addr) 0
  in
  attempt ~may_coalesce:true

(* O(1) head insert (deferred coalescing). *)
let free_in_segment ?ctx t i ~addr ~count =
  let head_addr = seg_head t i in
  let old_head = Region.read_u62 t.region head_addr in
  write_node t addr ~next:old_head ~count;
  Region.write_u62 t.region head_addr addr;
  Region.persist t.region head_addr 8;
  charge_lines ?ctx ~read:0 ~write:2 ()



(* --- public API -------------------------------------------------------- *)

(** Allocate [n] contiguous blocks; [hint] (e.g. the file's inode
    pointer) selects the starting segment.  Returns the byte address of
    the range, or [None] when no segment can satisfy the request. *)
let segment_busy ?ctx t i =
  match ctx with
  | None -> false
  | Some ctx ->
      Simurgh_sim.Vlock.Spin.busy t.locks.(i)
        ~now:(Simurgh_sim.Machine.now ctx)

(** Enable/disable per-thread segment affinity.  Off (the default) the
    starting segment is a hash of the allocation hint, so concurrent
    unrelated allocations herd onto the same segments; on, each thread
    starts at the segment its previous allocation succeeded in — its
    segment lock stays core-local (uncontended atomics) and the busy-skip
    sweeps disappear.  Threads spread across segments by tid initially,
    following the paper's core-count-proportional segmentation. *)
let set_thread_segments t on = t.tseg_enabled <- on

let ctx_tid (ctx : Simurgh_sim.Machine.ctx option) =
  match ctx with
  | Some c -> c.Simurgh_sim.Machine.thr.Simurgh_sim.Sthread.tid
  | None -> -1

let thread_segment t tid =
  let n = Array.length t.tseg in
  if tid >= n then
    t.tseg <-
      Array.init (max 8 (tid + 1)) (fun i -> if i < n then t.tseg.(i) else -1);
  if t.tseg.(tid) < 0 then t.tseg.(tid) <- tid mod t.segments;
  t.tseg.(tid)

let alloc ?ctx ?(hint = 0) t n =
  if n <= 0 then invalid_arg "Block_alloc.alloc: n must be positive";
  let tid = ctx_tid ctx in
  let affine = t.tseg_enabled && tid >= 0 in
  let start =
    if affine then thread_segment t tid
    else
      (* multiplicative hash of the hint (inode pointer): slab-allocated
         inodes are spaced by the object size, so a plain modulo would
         alias to a few segments *)
      abs (hint * 0x9e3779b1) mod t.segments
  in
  (* paper: "If a process selects a busy segment, it simply moves to the
     next segment."  [skip_busy] relaxes on the second sweep so requests
     still succeed when every segment is busy. *)
  let rec try_seg k ~skip_busy =
    if k >= t.segments then
      if skip_busy then try_seg 0 ~skip_busy:false else None
    else
      let i = (start + k) mod t.segments in
      if skip_busy && segment_busy ?ctx t i then
        try_seg (k + 1) ~skip_busy
      else begin
        if segment_is_stuck ?ctx t i then recover_segment t i;
        lock_segment ?ctx t i;
        let r = alloc_in_segment ?ctx t i n in
        unlock_segment ?ctx t i;
        match r with
        | Some _ ->
            if affine then t.tseg.(tid) <- i;
            r
        | None -> try_seg (k + 1) ~skip_busy
      end
  in
  let r = try_seg 0 ~skip_busy:(t.segments > 1) in
  (match r with
  | Some _ ->
      t.allocs <- t.allocs + 1;
      t.blocks_allocated <- t.blocks_allocated + n
  | None -> ());
  r

(** Return [n] blocks starting at byte address [addr] to their segment.

    Blocks carrying a poisoned line are {e withheld}: once a line under
    a block takes an uncorrectable media error, the block must never be
    recycled (a later allocation would hand a known-bad device range to
    fresh data), so the freed range is split around quarantined blocks
    and only the clean runs rejoin the free lists.  Recovery's free-list
    rebuild applies the same exclusion; [quarantined_blocks] counts the
    withheld population so statfs can keep
    [free + used + quarantined = capacity]. *)
let free ?ctx t ~addr n =
  if n <= 0 then invalid_arg "Block_alloc.free: n must be positive";
  let b = block_of_addr t addr in
  if b < 0 || b + n > t.total_blocks then
    invalid_arg "Block_alloc.free: range outside managed space";
  let free_run ~addr ~count =
    let i =
      min (block_of_addr t addr / blocks_per_segment t) (t.segments - 1)
    in
    if segment_is_stuck ?ctx t i then recover_segment t i;
    lock_segment ?ctx t i;
    free_in_segment ?ctx t i ~addr ~count;
    unlock_segment ?ctx t i
  in
  let freed =
    if Region.poisoned_lines t.region = 0 then begin
      (* fast path: no poison anywhere, one O(1) head insert as before *)
      free_run ~addr ~count:n;
      n
    end
    else begin
      let freed = ref 0 in
      let run_start = ref (-1) in
      let flush stop =
        if !run_start >= 0 then begin
          free_run ~addr:(block_addr t !run_start) ~count:(stop - !run_start);
          freed := !freed + (stop - !run_start);
          run_start := -1
        end
      in
      for blk = b to b + n - 1 do
        if Region.range_poisoned t.region (block_addr t blk) t.block_size
        then begin
          flush blk;
          t.blocks_quarantined <- t.blocks_quarantined + 1
        end
        else if !run_start < 0 then run_start := blk
      done;
      flush (b + n);
      !freed
    end
  in
  t.frees <- t.frees + 1;
  t.blocks_freed <- t.blocks_freed + freed

(** Total free blocks (walks every list; diagnostic). *)
let free_blocks t =
  let total = ref 0 in
  for i = 0 to t.segments - 1 do
    let rec walk node =
      if node <> 0 then begin
        let next, count = read_node t node in
        total := !total + count;
        walk next
      end
    in
    walk (Region.read_u62 t.region (seg_head t i))
  done;
  !total

(** Visit every free range as [(byte address, block count)] across all
    segments.  Offline use (fsck): assumes no concurrent mutators. *)
let iter_free_ranges t f =
  for i = 0 to t.segments - 1 do
    let rec walk node =
      if node <> 0 then begin
        let next, count = read_node t node in
        f node count;
        walk next
      end
    in
    walk (Region.read_u62 t.region (seg_head t i))
  done

(** Structural check: every free range lies within its segment and no
    two ranges overlap (lists are unordered between coalesces). *)
let check_invariants t =
  let ok = ref (Ok ()) in
  let fail fmt = Printf.ksprintf (fun s -> ok := Error s) fmt in
  (try
     for i = 0 to t.segments - 1 do
       let lo = block_addr t (seg_first_block t i) in
       let hi = lo + (seg_block_count t i * t.block_size) in
       let ranges = ref [] in
       let rec walk node =
         if node <> 0 then begin
           let next, count = read_node t node in
           if node < lo || node + (count * t.block_size) > hi then
             fail "segment %d: range %#x+%d blocks escapes [%#x,%#x)" i node
               count lo hi;
           ranges := (node, count) :: !ranges;
           walk next
         end
       in
       walk (Region.read_u62 t.region (seg_head t i));
       let sorted = List.sort compare !ranges in
       let rec overlap = function
         | (a, c) :: ((b, _) :: _ as rest) ->
             if a + (c * t.block_size) > b then
               fail "segment %d: overlapping free ranges at %#x" i b;
             overlap rest
         | _ -> ()
       in
       overlap sorted
     done
   with e -> fail "exception: %s" (Printexc.to_string e));
  !ok

let block_size t = t.block_size
let segments t = t.segments
let total_blocks t = t.total_blocks
let base t = t.base

(** Managed blocks with a poisoned line under them (never recyclable).
    Counted from the region's poison plane directly, so it is exact
    whether the poison arrived before or after the blocks were freed. *)
let quarantined_blocks t =
  if Region.poisoned_lines t.region = 0 then 0
  else begin
    let seen = Hashtbl.create 16 in
    let managed_end = t.base + (t.total_blocks * t.block_size) in
    Region.iter_poisoned_lines t.region (fun off ->
        if off >= t.base && off < managed_end then
          Hashtbl.replace seen ((off - t.base) / t.block_size) ());
    Hashtbl.length seen
  end

(** Rebuild every segment's free list from scratch given a predicate
    telling which blocks are in use (full-system mark-and-sweep recovery,
    paper Section 5.5).  Also clears any stuck segment locks. *)
let rebuild_free_lists t ~in_use =
  for i = 0 to t.segments - 1 do
    Region.write_u8 t.region (seg_flag t i) 0;
    let first = seg_first_block t i and count = seg_block_count t i in
    (* collect maximal free runs in address order *)
    let head = ref 0 in
    let tail = ref 0 (* address of last node written *) in
    let run_start = ref (-1) in
    let flush_run stop =
      if !run_start >= 0 then begin
        let addr = block_addr t !run_start in
        write_node t addr ~next:0 ~count:(stop - !run_start);
        if !head = 0 then head := addr
        else begin
          Region.write_u62 t.region (!tail + node_next) addr;
          Region.persist t.region !tail 16
        end;
        tail := addr;
        run_start := -1
      end
    in
    for b = first to first + count - 1 do
      if in_use b then flush_run b
      else if !run_start < 0 then run_start := b
    done;
    flush_run (first + count);
    Region.write_u62 t.region (seg_head t i) !head;
    Region.persist t.region (seg_off t i) seg_header_size
  done

type stats = {
  allocs : int;
  frees : int;
  blocks_allocated : int;
  blocks_freed : int;
  blocks_quarantined : int;
  total_blocks : int;
}

(** Volatile operation counters (exported by the observability layer). *)
let stats (t : t) : stats =
  {
    allocs = t.allocs;
    frees = t.frees;
    blocks_allocated = t.blocks_allocated;
    blocks_freed = t.blocks_freed;
    blocks_quarantined = t.blocks_quarantined;
    total_blocks = t.total_blocks;
  }
