(** Metadata object allocator (paper Section 4.2, "Data structure
    allocator").

    A slab-like pool of fixed-size objects (inodes, file entries,
    directory hash blocks) carved out of segments obtained from the block
    allocator.  Every object carries two atomic flag bits in its first
    byte:

    - [valid]: set by the allocator when the object is handed out, unset
      first on deallocation;
    - [dirty]: set while the object is "unprocessed" — allocated but not
      yet linked into the file system, or being torn down.

    States: 00 = free, 11 = allocated-unprocessed, 10 = live,
    01 = mid-deallocation (object being zeroed).  A crash leaves 11/01
    objects for recovery to reclaim; 10 objects are reachable iff the FS
    metadata graph references them (mark-and-sweep).  New segments are
    allocated on demand and their layout is recorded in a persistent
    segment list so recovery can enumerate every object. *)

open Simurgh_nvmm

let magic = 0x51ab
let header_fixed = 24
(* Slab segment header: [next u62][objects u32][pad u32], then objects. *)
let seg_header = 16

let flag_valid = 0x1
let flag_dirty = 0x2

type t = {
  region : Region.t;
  off : int;
  obj_size : int;  (** payload + 8-byte flag/pad prefix, 8-aligned *)
  objs_per_seg : int;
  blocks_per_seg : int;
  block_alloc : Block_alloc.t;
  free_cache : int Queue.t;  (** volatile free-object cache (shared DRAM) *)
  cache_lock : Simurgh_sim.Vlock.Spin.t;
  mutable tcaches : int Queue.t array;
      (** per-thread free-object caches (indexed by simulated tid);
          refilled/spilled in batches through [free_cache] under
          [cache_lock], so every cross-thread object transfer still
          synchronizes on the shared lock *)
  mutable tcache_enabled : bool;
  mutable live : int;  (** volatile live-object counter (diagnostics) *)
  mutable allocs : int;
  mutable frees : int;
}

(* Object layout: byte 0 = flags, bytes 8.. = payload. *)
let obj_header = 8

let slot_size t = obj_header + t.obj_size

let header_size = header_fixed

let seg_list_head t = t.off + 8

let attach region ~off ~block_alloc =
  let m = Region.read_u32 region off in
  if m <> magic then invalid_arg "Slab_alloc.attach: bad magic";
  let obj_size = Region.read_u32 region (off + 4) in
  let objs_per_seg = Region.read_u32 region (off + 16) in
  let blocks_per_seg = Region.read_u32 region (off + 20) in
  let t =
    {
      region;
      off;
      obj_size;
      objs_per_seg;
      blocks_per_seg;
      block_alloc;
      free_cache = Queue.create ();
      cache_lock = Simurgh_sim.Vlock.Spin.create ~site:"slab-cache" ();
      tcaches = [||];
      tcache_enabled = false;
      live = 0;
      allocs = 0;
      frees = 0;
    }
  in
  t

let format region ~off ~obj_size ~block_alloc ~objs_per_seg =
  if obj_size <= 0 || obj_size mod 8 <> 0 then
    invalid_arg "Slab_alloc.format: obj_size must be positive and 8-aligned";
  let bs = Block_alloc.block_size block_alloc in
  let bytes_needed = seg_header + (objs_per_seg * (obj_header + obj_size)) in
  let blocks_per_seg = (bytes_needed + bs - 1) / bs in
  Region.write_u32 region off magic;
  Region.write_u32 region (off + 4) obj_size;
  Region.write_u62 region (off + 8) 0 (* segment list head *);
  Region.write_u32 region (off + 16) objs_per_seg;
  Region.write_u32 region (off + 20) blocks_per_seg;
  Region.persist region off header_fixed;
  attach region ~off ~block_alloc

let obj_addr t seg i = seg + seg_header + (i * slot_size t)
let flags t addr = Region.read_u8 t.region addr
let payload addr = addr + obj_header

(* Add a fresh segment from the block allocator; its layout is persisted
   in the slab's segment list (paper: "Simurgh saves the layout of the
   preallocated metadata spaces inside the superblock"). *)
let grow ?ctx t =
  match Block_alloc.alloc ?ctx t.block_alloc t.blocks_per_seg with
  | None -> false
  | Some seg ->
      Region.zero t.region seg (t.blocks_per_seg * Block_alloc.block_size t.block_alloc);
      let old_head = Region.read_u62 t.region (seg_list_head t) in
      Region.write_u62 t.region seg old_head;
      Region.write_u32 t.region (seg + 8) t.objs_per_seg;
      Region.persist t.region seg seg_header;
      Region.write_u62 t.region (seg_list_head t) seg;
      Region.persist t.region (seg_list_head t) 8;
      for i = t.objs_per_seg - 1 downto 0 do
        Queue.push (obj_addr t seg i) t.free_cache
      done;
      true

let charge ?ctx ~read ~write () =
  match ctx with
  | None -> ()
  | Some ctx ->
      Simurgh_sim.Machine.nvmm_read_lines ctx read;
      Simurgh_sim.Machine.nvmm_write_lines ctx write

(* --- per-thread caches (paper Section 4.2: segmented allocation keeps
   concurrent allocators off each other's structures) ------------------- *)

(** Enable/disable the per-thread free-object caches.  Off (the default)
    every allocation synchronizes on [cache_lock]; on, threads pop from a
    private DRAM queue and touch the shared cache only to refill or spill
    a batch.  The caches are purely volatile: a cached object's
    persistent flags still read free, so recovery's [rebuild_cache]
    mark-and-sweep regenerates exactly the same free set after a crash. *)
let set_thread_caches t on = t.tcache_enabled <- on

let tcache_batch = 32

let tcache t tid =
  let n = Array.length t.tcaches in
  if tid >= n then
    t.tcaches <-
      Array.init (max 8 (tid + 1)) (fun i ->
          if i < n then t.tcaches.(i) else Queue.create ());
  t.tcaches.(tid)

let ctx_tid (ctx : Simurgh_sim.Machine.ctx option) =
  match ctx with
  | Some c -> c.Simurgh_sim.Machine.thr.Simurgh_sim.Sthread.tid
  | None -> -1

(* Claim [addr]: persist valid+dirty, skipping stale cache entries
   (e.g. after recovery rebuilt state).  [retry] resumes the caller's
   search when the entry was stale. *)
let claim ?ctx t addr ~retry =
  let f = flags t addr in
  if f land (flag_valid lor flag_dirty) <> 0 then retry ()
  else begin
    Region.write_u8 t.region addr (flag_valid lor flag_dirty);
    Region.persist t.region addr 1;
    charge ?ctx ~read:1 ~write:1 ();
    t.live <- t.live + 1;
    t.allocs <- t.allocs + 1;
    Some (payload addr)
  end

(** Allocate one object: returns the *payload* address with valid+dirty
    set and persisted.  The caller initializes the payload and then calls
    [commit] to clear the dirty bit.  Returns [None] when NVMM is
    exhausted. *)
let rec alloc ?ctx t =
  let tid = ctx_tid ctx in
  if t.tcache_enabled && tid >= 0 then alloc_cached ?ctx t tid
  else alloc_shared ?ctx t

and alloc_shared ?ctx t =
  let candidate =
    Ctx_util.with_spin ?ctx t.cache_lock (fun () ->
        if Queue.is_empty t.free_cache then None
        else Some (Queue.pop t.free_cache))
  in
  match candidate with
  | None -> if grow ?ctx t then alloc_shared ?ctx t else None
  | Some addr -> claim ?ctx t addr ~retry:(fun () -> alloc_shared ?ctx t)

and alloc_cached ?ctx t tid =
  let q = tcache t tid in
  if Queue.is_empty q then
    Ctx_util.with_spin ?ctx t.cache_lock (fun () ->
        (* one (possibly contended) acquisition amortized over a batch *)
        let n = min tcache_batch (Queue.length t.free_cache) in
        for _ = 1 to n do
          Queue.push (Queue.pop t.free_cache) q
        done);
  if Queue.is_empty q then
    if grow ?ctx t then alloc_cached ?ctx t tid else None
  else
    (* thread-private pop: no shared-line atomic *)
    claim ?ctx t (Queue.pop q) ~retry:(fun () -> alloc_cached ?ctx t tid)

(** Clear the dirty bit: the object is initialized and linked. *)
let commit ?ctx t paddr =
  let addr = paddr - obj_header in
  Region.write_u8 t.region addr flag_valid;
  Region.persist t.region addr 1;
  charge ?ctx ~read:0 ~write:1 ()

(** Mark an object unprocessed again (start of a teardown/transition). *)
let mark_dirty ?ctx t paddr =
  let addr = paddr - obj_header in
  Region.write_u8 t.region addr (flag_valid lor flag_dirty);
  Region.persist t.region addr 1;
  charge ?ctx ~read:0 ~write:1 ()

(** First half of deallocation: unset valid, set dirty (state 01,
    Fig. 5b step 2) and persist.  The object is now recognizably
    mid-teardown for any observer, including recovery. *)
let begin_free ?ctx t paddr =
  let addr = paddr - obj_header in
  Region.write_u8 t.region addr flag_dirty;
  Region.persist t.region addr 1;
  charge ?ctx ~read:0 ~write:1 ()

(** Second half: zero the payload, then unset dirty (state 00). *)
let finish_free ?ctx t paddr =
  let addr = paddr - obj_header in
  Region.zero t.region paddr t.obj_size;
  Region.persist t.region paddr t.obj_size;
  Region.write_u8 t.region addr 0;
  Region.persist t.region addr 1;
  charge ?ctx ~read:0 ~write:(1 + (t.obj_size / 64)) ();
  t.live <- t.live - 1;
  t.frees <- t.frees + 1;
  let tid = ctx_tid ctx in
  if t.tcache_enabled && tid >= 0 then begin
    let q = tcache t tid in
    Queue.push addr q;
    (* spill half when a thread frees much more than it allocates, so
       objects keep circulating instead of stranding in one cache *)
    if Queue.length q > 2 * tcache_batch then
      Ctx_util.with_spin ?ctx t.cache_lock (fun () ->
          for _ = 1 to tcache_batch do
            Queue.push (Queue.pop q) t.free_cache
          done)
  end
  else
    Ctx_util.with_spin ?ctx t.cache_lock (fun () ->
        Queue.push addr t.free_cache)

(** Deallocate in one go: [begin_free] then [finish_free]. *)
let free ?ctx t paddr =
  begin_free ?ctx t paddr;
  finish_free ?ctx t paddr

let obj_flags t paddr = flags t (paddr - obj_header)
let is_live t paddr = obj_flags t paddr = flag_valid
let is_unprocessed t paddr = obj_flags t paddr = flag_valid lor flag_dirty
let live_objects t = t.live

(** Enumerate every object slot with its flags: (payload_addr, flags).

    The valid/dirty flag walk snapshots each segment's slot area with one
    bulk line-granular load and scans the flag bytes in DRAM — one region
    round per segment instead of one per object, which is what recovery
    pays when it sweeps every slab after a crash.  A callback may mutate
    the object it is visiting (the snapshot is only consulted for later
    objects' flags, which no callback touches).

    [iter_segment_objects] visits one segment — the unit of work for a
    parallel sweep worker; [iter_objects] walks the whole segment
    list. *)
let iter_segment_objects t seg f =
  let seg_bytes = seg_header + (t.objs_per_seg * slot_size t) in
  let snap = Bytes.create seg_bytes in
  match
    try
      Region.read_bytes_into t.region seg snap ~pos:0 ~len:seg_bytes;
      `Snapshot
    with Region.Media_error _ -> `Faulted
  with
  | `Snapshot ->
      for i = 0 to t.objs_per_seg - 1 do
        let addr = obj_addr t seg i in
        let fl = Char.code (Bytes.get snap (addr - seg)) in
        f (payload addr) fl
      done
  | `Faulted ->
      (* a poisoned line somewhere in the segment: degrade from the
         bulk snapshot to per-object header loads so the healthy
         objects are still visited; unreadable ones are skipped
         (they stay allocated — quarantined, never recycled) *)
      for i = 0 to t.objs_per_seg - 1 do
        let addr = obj_addr t seg i in
        match Region.read_u8 t.region addr with
        | fl -> f (payload addr) fl
        | exception Region.Media_error _ -> ()
      done

let iter_objects t f =
  let rec seg_loop seg =
    if seg <> 0 then begin
      iter_segment_objects t seg f;
      seg_loop (Region.read_u62 t.region seg)
    end
  in
  seg_loop (Region.read_u62 t.region (seg_list_head t))

(** Rebuild the volatile free cache and the live counter from persistent
    flags; [reclaim] additionally resets 11/01 (crash-interrupted)
    objects to free.  Used at attach/recovery time. *)
let rebuild_cache ?(reclaim = false) t =
  Queue.clear t.free_cache;
  Array.iter Queue.clear t.tcaches;
  t.live <- 0;
  iter_objects t (fun paddr f ->
      let addr = paddr - obj_header in
      if Region.range_poisoned t.region addr (slot_size t) then
        (* slot overlaps an uncorrectable line: never recycle it *)
        (if f = flag_valid then t.live <- t.live + 1)
      else if f = 0 then Queue.push addr t.free_cache
      else if f = flag_valid then t.live <- t.live + 1
      else if reclaim then begin
        Region.zero t.region paddr t.obj_size;
        Region.write_u8 t.region addr 0;
        Region.persist t.region addr 1;
        Queue.push addr t.free_cache
      end)

let obj_size t = t.obj_size
let blocks_per_segment t = t.blocks_per_seg

(** Enumerate slab segment base addresses (for block-usage marking in
    full-system recovery). *)
let iter_segments t f =
  let rec go seg =
    if seg <> 0 then begin
      f seg;
      go (Region.read_u62 t.region seg)
    end
  in
  go (Region.read_u62 t.region (seg_list_head t))

type stats = { live : int; allocs : int; frees : int }

(** Volatile counters (exported by the observability layer). *)
let stats (t : t) : stats = { live = t.live; allocs = t.allocs; frees = t.frees }
