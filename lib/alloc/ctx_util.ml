(** Helpers shared by the allocators: all allocator entry points accept
    an optional virtual-time context so the same code paths serve both
    benchmarks (with time accounting) and unit tests (without). *)

let with_spin ?ctx lock f =
  match ctx with
  | None -> f ()
  | Some ctx ->
      Simurgh_sim.Vlock.Spin.acquire ctx lock;
      (* exception-safe: errors (e.g. media faults) must release locks *)
      Fun.protect
        ~finally:(fun () -> Simurgh_sim.Vlock.Spin.release ctx lock)
        f
