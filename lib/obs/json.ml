(** Minimal hand-rolled JSON writer (no external dependencies).

    Only what the benchmark export needs: construction of a value tree
    and deterministic serialization.  Floats are emitted with [%.12g]
    (round-trippable for the magnitudes we produce); non-finite floats
    become [null] so the output always parses. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write_to buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then
        Buffer.add_string buf (Printf.sprintf "%.12g" f)
      else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          write_to buf ~indent ~level:(level + 1) item)
        items;
      nl ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          escape_to buf k;
          Buffer.add_string buf (if indent then ": " else ":");
          write_to buf ~indent ~level:(level + 1) item)
        fields;
      nl ();
      pad level;
      Buffer.add_char buf '}'

let to_string ?(indent = false) v =
  let buf = Buffer.create 4096 in
  write_to buf ~indent ~level:0 v;
  Buffer.contents buf

let to_channel ?(indent = true) oc v =
  output_string oc (to_string ~indent v);
  output_char oc '\n'
