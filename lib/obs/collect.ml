(** Ambient per-experiment collector.

    The bench driver installs a collector around each experiment; while
    one is active, every freshly created machine registers its
    observability run and every region / file system registers a counter
    source.  [drain] merges everything into one snapshot for the
    experiment's JSON export and uninstalls the collector.

    When no collector is installed (unit tests, library use) all
    registration calls are no-ops, so nothing is retained and runs stay
    strictly per-machine. *)

type collector = {
  mutable runs : Run.t list;
  mutable sources : (unit -> (string * float) list) list;
  named : (string, unit) Hashtbl.t;
      (** names claimed by [note_source ~name] registrations *)
}

exception Duplicate_source of string

let () =
  Printexc.register_printer (function
    | Duplicate_source n ->
        Some (Printf.sprintf "Collect.Duplicate_source(%S)" n)
    | _ -> None)

let current : collector option ref = ref None

let install () =
  current := Some { runs = []; sources = []; named = Hashtbl.create 8 }

let active () = !current <> None

(** Register a machine's run (idempotent per run). *)
let note_run r =
  match !current with
  | Some c -> if not (List.memq r c.runs) then c.runs <- r :: c.runs
  | None -> ()

(** Register a thunk producing (counter, value) pairs sampled at drain
    time (region stats, allocator stats, lock registry sizes...).

    Anonymous registrations keep the historical behavior: same-named
    counters from different sources are {e summed} at drain (every
    region of an experiment contributes to one aggregate [region/...]
    family).  A [~name]d registration claims its name exclusively for
    the current collector — a second registration under the same name
    raises {!Duplicate_source}, catching the two-live-regions (or
    two-machines) shadowing bug instead of silently merging streams
    that were meant to stay apart. *)
let note_source ?name f =
  match !current with
  | None -> ()
  | Some c ->
      (match name with
      | None -> ()
      | Some n ->
          if Hashtbl.mem c.named n then raise (Duplicate_source n);
          Hashtbl.replace c.named n ());
      c.sources <- f :: c.sources

(** Merge all registered runs and sampled sources into one fresh run,
    then uninstall the collector. *)
let drain () =
  match !current with
  | None -> Run.create ()
  | Some c ->
      current := None;
      let acc = Run.create () in
      List.iter (fun r -> Run.merge_into acc r) (List.rev c.runs);
      List.iter
        (fun src ->
          List.iter (fun (k, v) -> Metrics.add acc.Run.counters k v) (src ()))
        (List.rev c.sources);
      acc

(** Abandon the current collector without draining. *)
let discard () = current := None
