(** Ambient per-experiment collector.

    The bench driver installs a collector around each experiment; while
    one is active, every freshly created machine registers its
    observability run and every region / file system registers a counter
    source.  [drain] merges everything into one snapshot for the
    experiment's JSON export and uninstalls the collector.

    When no collector is installed (unit tests, library use) all
    registration calls are no-ops, so nothing is retained and runs stay
    strictly per-machine. *)

type collector = {
  mutable runs : Run.t list;
  mutable sources : (unit -> (string * float) list) list;
}

let current : collector option ref = ref None

let install () = current := Some { runs = []; sources = [] }
let active () = !current <> None

(** Register a machine's run (idempotent per run). *)
let note_run r =
  match !current with
  | Some c -> if not (List.memq r c.runs) then c.runs <- r :: c.runs
  | None -> ()

(** Register a thunk producing (counter, value) pairs sampled at drain
    time (region stats, allocator stats, lock registry sizes...). *)
let note_source f =
  match !current with Some c -> c.sources <- f :: c.sources | None -> ()

(** Merge all registered runs and sampled sources into one fresh run,
    then uninstall the collector. *)
let drain () =
  match !current with
  | None -> Run.create ()
  | Some c ->
      current := None;
      let acc = Run.create () in
      List.iter (fun r -> Run.merge_into acc r) (List.rev c.runs);
      List.iter
        (fun src ->
          List.iter (fun (k, v) -> Metrics.add acc.Run.counters k v) (src ()))
        (List.rev c.sources);
      acc

(** Abandon the current collector without draining. *)
let discard () = current := None
