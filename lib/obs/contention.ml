(** Per-site lock contention profile.

    Replaces the old process-global [Vlock.Spin.total_wait] /
    [wait_by_site] refs: a registry lives inside one {!Run.t} (one
    engine run / one machine), so consecutive experiments cannot bleed
    wait cycles into each other.  Sites are the call-site labels the
    locks are created with ("dir-row", "balloc-seg", "vfs-rwsem", ...). *)

type kind = Spin | Mutex | Rwlock

let kind_name = function
  | Spin -> "spin"
  | Mutex -> "mutex"
  | Rwlock -> "rwlock"

type site = {
  kind : kind;
  mutable acquisitions : int;
  mutable contended : int;  (** acquisitions that had to wait *)
  mutable wait_cycles : float;  (** virtual cycles spent waiting *)
  mutable hold_cycles : float;  (** virtual cycles the lock was held *)
}

type t = (string, site) Hashtbl.t

let create () : t = Hashtbl.create 16
let clear (t : t) = Hashtbl.reset t

let site (t : t) name kind =
  match Hashtbl.find_opt t name with
  | Some s -> s
  | None ->
      let s =
        {
          kind;
          acquisitions = 0;
          contended = 0;
          wait_cycles = 0.0;
          hold_cycles = 0.0;
        }
      in
      Hashtbl.replace t name s;
      s

(** One acquisition: [wait] virtual cycles spent blocked (0 when the
    lock was free). *)
let record_acquire t ~site:name ~kind ~wait =
  let s = site t name kind in
  s.acquisitions <- s.acquisitions + 1;
  if wait > 0.0 then begin
    s.contended <- s.contended + 1;
    s.wait_cycles <- s.wait_cycles +. wait
  end

let record_hold t ~site:name ~kind ~hold =
  if hold > 0.0 then begin
    let s = site t name kind in
    s.hold_cycles <- s.hold_cycles +. hold
  end

let total_wait (t : t) =
  Hashtbl.fold (fun _ s acc -> acc +. s.wait_cycles) t 0.0

let total_acquisitions (t : t) =
  Hashtbl.fold (fun _ s acc -> acc + s.acquisitions) t 0

let wait_of (t : t) name =
  match Hashtbl.find_opt t name with Some s -> s.wait_cycles | None -> 0.0

(** Aggregate (acquisitions, contended, wait_cycles) over every site
    whose name starts with [prefix] — striped lock families (e.g. the
    per-row "file-range/" sites) report per-row for attribution but are
    usually summarized as one line. *)
let sum_of_prefix (t : t) prefix =
  let plen = String.length prefix in
  Hashtbl.fold
    (fun name s ((acq, cont, wait) as acc) ->
      if String.length name >= plen && String.sub name 0 plen = prefix then
        (acq + s.acquisitions, cont + s.contended, wait +. s.wait_cycles)
      else acc)
    t (0, 0, 0.0)

(** Sorted (site, stats) pairs — deterministic export order. *)
let to_list (t : t) =
  Hashtbl.fold (fun k s acc -> (k, s) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge_into (dst : t) (src : t) =
  Hashtbl.iter
    (fun name s ->
      let d = site dst name s.kind in
      d.acquisitions <- d.acquisitions + s.acquisitions;
      d.contended <- d.contended + s.contended;
      d.wait_cycles <- d.wait_cycles +. s.wait_cycles;
      d.hold_cycles <- d.hold_cycles +. s.hold_cycles)
    src

let to_json t =
  Json.List
    (List.map
       (fun (name, s) ->
         Json.Obj
           [
             ("site", Json.Str name);
             ("kind", Json.Str (kind_name s.kind));
             ("acquisitions", Json.Int s.acquisitions);
             ("contended", Json.Int s.contended);
             ("uncontended", Json.Int (s.acquisitions - s.contended));
             ("wait_cycles", Json.Float s.wait_cycles);
             ("hold_cycles", Json.Float s.hold_cycles);
           ])
       (to_list t))
