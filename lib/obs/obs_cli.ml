(** Argument parsing for the benchmark harness.

    Pure and testable: the former in-line parser in [bench/main.ml]
    silently treated unknown flags as experiment ids, raised a bare
    [Failure] when [--scale] was the last argument, and exited 0 after
    running nothing for a misspelled id.  Every malformed input now
    yields [Error msg]. *)

type config = {
  scale : float;
  ids : string list;  (** requested experiment ids, in order; [] = all *)
  json_dir : string option;  (** [--json DIR]: write BENCH_<id>.json *)
  list_only : bool;
  check_only : bool;
      (** [--check]: run the fsck self-check instead of experiments *)
  races_only : bool;
      (** [--races]: run the schedule-explorer / race-detector
          self-check (with its negative controls) instead of
          experiments *)
}

let default =
  {
    scale = 1.0;
    ids = [];
    json_dir = None;
    list_only = false;
    check_only = false;
    races_only = false;
  }

(** [parse ~known ~is_dynamic args]: [known] is the experiment-id table;
    [is_dynamic] accepts additional computed ids (fig7a..fig7l). *)
let parse ~known ~is_dynamic args =
  let rec go cfg ids = function
    | [] -> Ok { cfg with ids = List.rev ids }
    | "--scale" :: rest -> (
        match rest with
        | [] -> Error "--scale requires a value (e.g. --scale 2.0)"
        | v :: rest -> (
            match float_of_string_opt v with
            | Some s when s > 0.0 && Float.is_finite s ->
                go { cfg with scale = s } ids rest
            | Some _ -> Error (Printf.sprintf "--scale must be positive: %s" v)
            | None ->
                Error (Printf.sprintf "--scale expects a number, got %S" v)))
    | "--json" :: rest -> (
        match rest with
        | [] -> Error "--json requires a directory (e.g. --json out)"
        | dir :: rest -> go { cfg with json_dir = Some dir } ids rest)
    | "--list" :: rest -> go { cfg with list_only = true } ids rest
    | "--check" :: rest -> go { cfg with check_only = true } ids rest
    | "--races" :: rest -> go { cfg with races_only = true } ids rest
    | flag :: _ when String.length flag > 0 && flag.[0] = '-' ->
        Error
          (Printf.sprintf
             "unknown flag %s (known: --scale F, --json DIR, --list, \
              --check, --races)"
             flag)
    | id :: rest ->
        if id = "all" || List.mem id known || is_dynamic id then
          go cfg (id :: ids) rest
        else
          Error
            (Printf.sprintf
               "unknown experiment %S (run with --list to see the ids; \
                fig7a..fig7l also work)"
               id)
  in
  go default [] args
