(** Named counters.  A counter is created on first touch; reads of an
    untouched counter return 0. *)

type t = (string, float ref) Hashtbl.t

let create () : t = Hashtbl.create 32
let clear (t : t) = Hashtbl.reset t

let add (t : t) name v =
  match Hashtbl.find_opt t name with
  | Some r -> r := !r +. v
  | None -> Hashtbl.replace t name (ref v)

let incr t name = add t name 1.0

let get (t : t) name =
  match Hashtbl.find_opt t name with Some r -> !r | None -> 0.0

(** Sorted (name, value) pairs — deterministic export order. *)
let to_list (t : t) =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** [merge_into dst src] adds every counter of [src] into [dst]. *)
let merge_into (dst : t) (src : t) =
  Hashtbl.iter (fun k r -> add dst k !r) src

let to_json t =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (to_list t))
