(** Execution-time phase attribution (spans).

    Generalizes the old two-bucket instrumentation (FS cycles +
    copy bytes) into the phases the paper's breakdowns use:

    - [fs_cycles]: virtual time inside file-system entry points
      (accumulated by {!Simurgh_workloads.Instrument});
    - [lock_wait_cycles]: virtual time blocked on virtual-time locks
      (a subset of [fs_cycles] when the lock is taken inside the FS);
    - [flush_cycles]: persist-barrier drain time ([sfence]);
    - [copy_bytes]: payload bytes moved by read/write/append, converted
      to "data copy" cycles by the cost model at reporting time.

    "Application" time is derived: total minus copy minus FS.  Fields
    are plain mutable floats so the hot recording paths stay a single
    add. *)

type t = {
  mutable fs_cycles : float;
  mutable lock_wait_cycles : float;
  mutable flush_cycles : float;
  mutable copy_bytes : int;
}

let create () =
  { fs_cycles = 0.0; lock_wait_cycles = 0.0; flush_cycles = 0.0; copy_bytes = 0 }

let clear t =
  t.fs_cycles <- 0.0;
  t.lock_wait_cycles <- 0.0;
  t.flush_cycles <- 0.0;
  t.copy_bytes <- 0

let add_fs t c = t.fs_cycles <- t.fs_cycles +. c
let add_lock_wait t c = t.lock_wait_cycles <- t.lock_wait_cycles +. c
let add_flush t c = t.flush_cycles <- t.flush_cycles +. c
let add_copy_bytes t b = t.copy_bytes <- t.copy_bytes + b

let merge_into dst src =
  dst.fs_cycles <- dst.fs_cycles +. src.fs_cycles;
  dst.lock_wait_cycles <- dst.lock_wait_cycles +. src.lock_wait_cycles;
  dst.flush_cycles <- dst.flush_cycles +. src.flush_cycles;
  dst.copy_bytes <- dst.copy_bytes + src.copy_bytes

let to_json t =
  Json.Obj
    [
      ("fs_cycles", Json.Float t.fs_cycles);
      ("lock_wait_cycles", Json.Float t.lock_wait_cycles);
      ("flush_cycles", Json.Float t.flush_cycles);
      ("copy_bytes", Json.Int t.copy_bytes);
    ]
