(** Log-bucketed latency histogram.

    Buckets are geometric octaves ([2^(e-1), 2^e)) split linearly into
    [subs] sub-buckets, HdrHistogram style: recording is O(1) and the
    relative quantization error of any reported quantile is bounded by
    roughly [1/subs] (~1.6% with [subs = 64]).  Count, sum, min and max
    are tracked exactly, so p0/p100 and the mean are exact.

    Percentiles follow the same rank convention as
    [Simurgh_sim.Stats.percentile]: the p-quantile sits at fractional
    rank [p/100 * (count-1)] with linear interpolation between adjacent
    ranks; within a bucket, samples are assumed uniformly spread. *)

(* Sub-buckets per octave: power of two so the index math stays exact. *)
let subs = 64

(* Representable octaves: exponents [emin, emax] of Float.frexp cover
   values from ~3e-5 cycles up to 2^64; everything outside clamps to the
   first/last bucket. *)
let emin = -14
let emax = 64
let nbuckets = (emax - emin + 1) * subs

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  {
    counts = Array.make nbuckets 0;
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let clear t =
  Array.fill t.counts 0 nbuckets 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.min_v <- infinity;
  t.max_v <- neg_infinity

let copy t =
  {
    counts = Array.copy t.counts;
    count = t.count;
    sum = t.sum;
    min_v = t.min_v;
    max_v = t.max_v;
  }

(* Bucket index of a (finite, >= 0) value. *)
let index_of v =
  if v <= 0.0 then 0
  else begin
    let m, e = Float.frexp v in
    (* v = m * 2^e with m in [0.5, 1): the octave is [2^(e-1), 2^e). *)
    if e < emin then 0
    else if e > emax then nbuckets - 1
    else
      let sub = int_of_float ((m -. 0.5) *. 2.0 *. float_of_int subs) in
      let sub = if sub >= subs then subs - 1 else if sub < 0 then 0 else sub in
      ((e - emin) * subs) + sub
  end

(* Lower bound and width of bucket [i]. *)
let bucket_bounds i =
  let e = emin + (i / subs) and sub = i mod subs in
  let lo_octave = Float.ldexp 1.0 (e - 1) in
  let width = lo_octave /. float_of_int subs in
  (lo_octave +. (float_of_int sub *. width), width)

let record t v =
  if Float.is_finite v then begin
    let i = index_of v in
    t.counts.(i) <- t.counts.(i) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0.0 else t.min_v
let max_value t = if t.count = 0 then 0.0 else t.max_v
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

(* Estimated value of the 0-indexed order statistic [k]; exact at the
   ends, uniform-within-bucket in the interior. *)
let value_at_rank t k =
  if k <= 0 then min_value t
  else if k >= t.count - 1 then max_value t
  else begin
    let cum = ref 0 and i = ref 0 and res = ref (max_value t) in
    (try
       while !i < nbuckets do
         let c = t.counts.(!i) in
         if c > 0 && k < !cum + c then begin
           let lo, width = bucket_bounds !i in
           let pos = (float_of_int (k - !cum) +. 0.5) /. float_of_int c in
           res := lo +. (width *. pos);
           raise Exit
         end;
         cum := !cum + c;
         incr i
       done
     with Exit -> ());
    (* clamp into the observed range: bucket edges can slightly
       over/undershoot the true extremes *)
    Float.min (Float.max !res t.min_v) t.max_v
  end

let percentile t p =
  if t.count = 0 then 0.0
  else begin
    let rank = p /. 100.0 *. float_of_int (t.count - 1) in
    let lo = int_of_float (Float.floor rank) in
    let lo = if lo < 0 then 0 else if lo > t.count - 1 then t.count - 1 else lo in
    let frac = rank -. float_of_int lo in
    let v_lo = value_at_rank t lo in
    if frac <= 0.0 then v_lo
    else v_lo +. (frac *. (value_at_rank t (lo + 1) -. v_lo))
  end

(** [merge a b] is a fresh histogram holding both sample sets. *)
let merge a b =
  let t = copy a in
  Array.iteri (fun i c -> t.counts.(i) <- t.counts.(i) + c) b.counts;
  t.count <- a.count + b.count;
  t.sum <- a.sum +. b.sum;
  t.min_v <- Float.min a.min_v b.min_v;
  t.max_v <- Float.max a.max_v b.max_v;
  t

(** Summary used by the JSON export. *)
let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("mean", Json.Float (mean t));
      ("min", Json.Float (min_value t));
      ("max", Json.Float (max_value t));
      ("p50", Json.Float (percentile t 50.0));
      ("p90", Json.Float (percentile t 90.0));
      ("p99", Json.Float (percentile t 99.0));
      ("p999", Json.Float (percentile t 99.9));
    ]
