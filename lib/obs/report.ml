(** Per-experiment result capture and JSON export.

    Experiments keep printing their human-readable tables exactly as
    before; the bench helpers mirror every table row in here, and at the
    end of the experiment [finish ~dir] serializes the tables plus the
    merged observability snapshot to [BENCH_<id>.json].  When no
    experiment is active (library/test use) every call is a no-op.

    Schema ("simurgh-bench-v1") — see DESIGN.md "Observability":
    {v
    { "schema": "simurgh-bench-v1",
      "run": "<experiment id>", "scale": <float>,
      "tables": [ { "title": str, "columns": [str...],
                    "rows": [ { "label": str, "values": [num...] } ] } ],
      "notes": [str...],
      "obs": { "counters": { name: num, ... },
               "spans": { "fs_cycles": num, "lock_wait_cycles": num,
                          "flush_cycles": num, "copy_bytes": int },
               "lock_sites": [ { "site": str, "kind": str,
                                 "acquisitions": int, "contended": int,
                                 "uncontended": int, "wait_cycles": num,
                                 "hold_cycles": num } ],
               "op_latency_cycles": { "<fs>/<op>":
                 { "count": int, "mean": num, "min": num, "max": num,
                   "p50": num, "p90": num, "p99": num, "p999": num } } } }
    v} *)

type table = {
  title : string;
  columns : string list;
  mutable rows : (string * float list) list;  (** reversed *)
}

type exp = {
  id : string;
  mutable tables : table list;  (** reversed; head = current *)
  mutable notes : string list;  (** reversed *)
}

let current : exp option ref = ref None

let begin_exp id = current := Some { id; tables = []; notes = [] }
let active () = !current <> None

(** Open a new table; subsequent [row] calls append to it. *)
let table ~title ~columns =
  match !current with
  | Some e -> e.tables <- { title; columns; rows = [] } :: e.tables
  | None -> ()

(** Open a new table only if the current one has a different title. *)
let ensure_table ~title ~columns =
  match !current with
  | Some e -> (
      match e.tables with
      | t :: _ when t.title = title -> ()
      | _ -> table ~title ~columns)
  | None -> ()

let row label values =
  match !current with
  | Some { tables = t :: _; _ } -> t.rows <- (label, values) :: t.rows
  | _ -> ()

let note s =
  match !current with Some e -> e.notes <- s :: e.notes | None -> ()

let table_to_json t =
  Json.Obj
    [
      ("title", Json.Str t.title);
      ("columns", Json.List (List.map (fun c -> Json.Str c) t.columns));
      ( "rows",
        Json.List
          (List.rev_map
             (fun (label, values) ->
               Json.Obj
                 [
                   ("label", Json.Str label);
                   ( "values",
                     Json.List (List.map (fun v -> Json.Float v) values) );
                 ])
             t.rows) );
    ]

(* Filenames keep [a-zA-Z0-9._-]; anything else ("tab2+fig8") maps to '_'. *)
let sanitize id =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
      | _ -> '_')
    id

(** Write BENCH_<id>.json into [dir] and close the experiment.  Returns
    the path written. *)
let finish ~dir ~scale ~obs =
  match !current with
  | None -> None
  | Some e ->
      current := None;
      let path = Filename.concat dir ("BENCH_" ^ sanitize e.id ^ ".json") in
      let doc =
        Json.Obj
          [
            ("schema", Json.Str "simurgh-bench-v1");
            ("run", Json.Str e.id);
            ("scale", Json.Float scale);
            ("tables", Json.List (List.rev_map table_to_json e.tables));
            ( "notes",
              Json.List (List.rev_map (fun n -> Json.Str n) e.notes) );
            ("obs", Run.to_json obs);
          ]
      in
      let oc = open_out path in
      Json.to_channel oc doc;
      close_out oc;
      Some path

(** Close the experiment without writing anything. *)
let discard () = current := None
