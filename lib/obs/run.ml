(** One engine run's observability state: counters, per-(fs, op) latency
    histograms, the lock contention registry and phase spans.

    A [Run.t] is owned by exactly one {!Simurgh_sim.Machine.t} — that is
    what makes the sinks "scoped": a fresh machine (one experiment
    configuration) starts from zero, and [Machine.reset] clears the run
    together with the bandwidth servers, so untimed setup phases never
    leak into the measured window. *)

type t = {
  counters : Metrics.t;
  hists : (string, Histogram.t) Hashtbl.t;  (** "<fs>/<op>" -> latency *)
  contention : Contention.t;
  spans : Span.t;
}

let create () =
  {
    counters = Metrics.create ();
    hists = Hashtbl.create 32;
    contention = Contention.create ();
    spans = Span.create ();
  }

let clear t =
  Metrics.clear t.counters;
  Hashtbl.reset t.hists;
  Contention.clear t.contention;
  Span.clear t.spans

(** The latency histogram for [key] (creating it on first use). *)
let hist t key =
  match Hashtbl.find_opt t.hists key with
  | Some h -> h
  | None ->
      let h = Histogram.create () in
      Hashtbl.replace t.hists key h;
      h

let hists_to_list t =
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge_into dst src =
  Metrics.merge_into dst.counters src.counters;
  Hashtbl.iter
    (fun k h ->
      match Hashtbl.find_opt dst.hists k with
      | Some d -> Hashtbl.replace dst.hists k (Histogram.merge d h)
      | None -> Hashtbl.replace dst.hists k (Histogram.copy h))
    src.hists;
  Contention.merge_into dst.contention src.contention;
  Span.merge_into dst.spans src.spans

(** [merge a b] is a fresh run combining both (associative up to float
    rounding; exact on integer-valued counters). *)
let merge a b =
  let t = create () in
  merge_into t a;
  merge_into t b;
  t

let to_json t =
  Json.Obj
    [
      ("counters", Metrics.to_json t.counters);
      ("spans", Span.to_json t.spans);
      ("lock_sites", Contention.to_json t.contention);
      ( "op_latency_cycles",
        Json.Obj
          (List.map (fun (k, h) -> (k, Histogram.to_json h)) (hists_to_list t))
      );
    ]
