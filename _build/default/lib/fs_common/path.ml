(** Path parsing shared by all implementations.  Paths are
    absolute-style strings; empty components and ["."] are dropped,
    [".."] is kept for the resolver to interpret. *)

let split p =
  String.split_on_char '/' p
  |> List.filter (fun c -> c <> "" && c <> ".")

(** Split into (parent components, final name).  Raises [EINVAL] when the
    path has no final component (e.g. "/"). *)
let split_parent p =
  match List.rev (split p) with
  | [] -> Errno.raise_ EINVAL (Printf.sprintf "path %S has no final component" p)
  | name :: rev_parents -> (List.rev rev_parents, name)

let basename p = snd (split_parent p)

let dirname p =
  let parents, _ = split_parent p in
  "/" ^ String.concat "/" parents

let concat dir name = if dir = "/" then "/" ^ name else dir ^ "/" ^ name
