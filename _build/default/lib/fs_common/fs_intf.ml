(** Common file-system interface implemented by Simurgh and every
    baseline, so the benchmark harness, the LSM key-value store and the
    workload generators are implementation-agnostic.

    All operations take an optional virtual-time context; without one
    only the data-structure work is performed (unit tests). *)

type ctx = Simurgh_sim.Machine.ctx

module type S = sig
  type t
  type fd

  val name : string

  val create_file : ?ctx:ctx -> t -> ?perm:int -> string -> unit
  (** Create an empty regular file.  Raises [Errno.Err EEXIST]. *)

  val mkdir : ?ctx:ctx -> t -> ?perm:int -> string -> unit
  val unlink : ?ctx:ctx -> t -> string -> unit
  val rmdir : ?ctx:ctx -> t -> string -> unit
  val rename : ?ctx:ctx -> t -> string -> string -> unit
  val stat : ?ctx:ctx -> t -> string -> Types.stat
  val openf : ?ctx:ctx -> t -> Types.open_flags -> string -> fd
  val close : ?ctx:ctx -> t -> fd -> unit
  val pread : ?ctx:ctx -> t -> fd -> pos:int -> len:int -> bytes
  val pwrite : ?ctx:ctx -> t -> fd -> pos:int -> bytes -> int
  val append : ?ctx:ctx -> t -> fd -> bytes -> int
  val fallocate : ?ctx:ctx -> t -> fd -> len:int -> unit
  val fsync : ?ctx:ctx -> t -> fd -> unit
  val readdir : ?ctx:ctx -> t -> string -> string list
  val symlink : ?ctx:ctx -> t -> target:string -> string -> unit
  val readlink : ?ctx:ctx -> t -> string -> string
  val hardlink : ?ctx:ctx -> t -> existing:string -> string -> unit
  val truncate : ?ctx:ctx -> t -> string -> int -> unit
  val exists : ?ctx:ctx -> t -> string -> bool
  val chmod : ?ctx:ctx -> t -> string -> int -> unit
  val utimes : ?ctx:ctx -> t -> string -> int -> unit
end
