(** Shared value types for the file-system interface. *)

type kind = File | Dir | Symlink

type stat = {
  kind : kind;
  perm : int;
  uid : int;
  gid : int;
  nlink : int;
  size : int;
  mtime : int;
  ino : int;  (** implementation-specific identity (Simurgh: pptr) *)
}

type open_flags = {
  read : bool;
  write : bool;
  create : bool;
  excl : bool;
  trunc : bool;
  append : bool;
}

let rdonly = { read = true; write = false; create = false; excl = false; trunc = false; append = false }
let wronly = { read = false; write = true; create = false; excl = false; trunc = false; append = false }
let rdwr = { read = true; write = true; create = false; excl = false; trunc = false; append = false }
let creat f = { f with create = true; write = true }
let appendf = { wronly with create = true; append = true }

let pp_kind ppf = function
  | File -> Fmt.string ppf "file"
  | Dir -> Fmt.string ppf "dir"
  | Symlink -> Fmt.string ppf "symlink"
