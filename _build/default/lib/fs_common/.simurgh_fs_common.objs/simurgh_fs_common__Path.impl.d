lib/fs_common/path.ml: Errno List Printf String
