lib/fs_common/errno.ml: Fmt Printexc Printf
