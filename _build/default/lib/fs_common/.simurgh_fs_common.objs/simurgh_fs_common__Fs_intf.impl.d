lib/fs_common/fs_intf.ml: Simurgh_sim Types
