lib/fs_common/types.ml: Fmt
