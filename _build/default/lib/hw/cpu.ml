(** Simulated CPU core state: page table, current privilege level, the
    jmpp nesting counter and which stack is active. *)

type t = {
  page_table : Page_table.t;
  mutable mode : Privilege.level;
  mutable jmpp_nest : int;
      (** incremented by jmpp, decremented by pret (Section 3.1) *)
  mutable on_protected_stack : bool;
      (** stack pointer relocated into protected pages (Section 3.2) *)
}

let create () =
  {
    page_table = Page_table.create ();
    mode = Privilege.User;
    jmpp_nest = 0;
    on_protected_stack = false;
  }

let mode t = t.mode
let cpl t = Privilege.to_cpl t.mode

(** Load/store access checks as the MMU would perform them. *)
let load t addr = Page_table.check_access t.page_table ~mode:t.mode ~addr ~write:false

let store t addr = Page_table.check_access t.page_table ~mode:t.mode ~addr ~write:true

(** Scheduler interrupt-return hook: the modified kernel restores the CPL
    according to the interrupted context (Section 3.3, "Kernel
    Modification").  Preemption must not leak kernel mode. *)
let interrupt_return t =
  t.mode <- (if t.jmpp_nest > 0 then Privilege.Kernel else Privilege.User)
