lib/hw/protected.mli: Cpu
