lib/hw/cpu.ml: Page_table Privilege
