lib/hw/gem5.ml: List
