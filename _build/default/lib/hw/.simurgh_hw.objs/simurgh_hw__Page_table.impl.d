lib/hw/page_table.ml: Fault Hashtbl Privilege
