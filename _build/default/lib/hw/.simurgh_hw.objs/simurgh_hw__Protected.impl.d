lib/hw/protected.ml: Cpu Fault Fun Hashtbl List Page_table Privilege
