lib/hw/privilege.ml: Fmt
