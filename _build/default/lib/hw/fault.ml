(** Faults raised by the simulated protection hardware. *)

type kind =
  | Page_not_present of int  (** page number *)
  | Kernel_page_access of { page : int; write : bool }
      (** user-mode access to a kernel/protected page *)
  | Jmpp_target_not_protected of int
      (** jmpp to a page without the [ep] bit *)
  | Jmpp_bad_entry_offset of { page : int; offset : int }
      (** jmpp to an address that is not a predefined entry point *)
  | Ep_set_from_user of int  (** attempt to set the ep bit with CPL=3 *)
  | Write_to_protected_mapping of int
      (** mmap/mprotect attempt on a protected function's pages *)
  | Pret_without_jmpp  (** privilege-nesting counter underflow *)
  | Entry_is_nop of { page : int; offset : int }
      (** first instruction at the entry offset is a nop: unused entry *)

exception Fault of kind

let raise_ k = raise (Fault k)

let pp_kind ppf = function
  | Page_not_present p -> Fmt.pf ppf "page %#x not present" p
  | Kernel_page_access { page; write } ->
      Fmt.pf ppf "user-mode %s of kernel page %#x"
        (if write then "write" else "read")
        page
  | Jmpp_target_not_protected p ->
      Fmt.pf ppf "jmpp target page %#x has no ep bit" p
  | Jmpp_bad_entry_offset { page; offset } ->
      Fmt.pf ppf "jmpp to page %#x offset %#x: not an entry point" page offset
  | Ep_set_from_user p -> Fmt.pf ppf "set ep on page %#x from user mode" p
  | Write_to_protected_mapping p ->
      Fmt.pf ppf "attempt to remap protected page %#x" p
  | Pret_without_jmpp -> Fmt.string ppf "pret with empty privilege stack"
  | Entry_is_nop { page; offset } ->
      Fmt.pf ppf "entry %#x of page %#x is a nop (unused slot)" offset page
