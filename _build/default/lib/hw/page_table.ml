(** Per-process page table with the paper's proposed [ep]
    (execute-protected) bit (Section 3.1).

    Invariants enforced here:
    - the [ep] bit can only be set while running in kernel mode;
    - a page with [ep] set can only be written from kernel mode;
    - kernel pages (file-system data/metadata and protected code) are
      inaccessible to user-mode loads and stores;
    - protected mappings cannot be replaced via [remap] (the paper's
      hardened [mmap]). *)

let page_size = 4096
let page_shift = 12

type pte = {
  mutable present : bool;
  mutable kernel : bool;  (** supervisor page: no user access *)
  mutable ep : bool;  (** execute-protected: jmpp target allowed *)
  mutable writable : bool;
}

type t = { entries : (int, pte) Hashtbl.t }

let create () = { entries = Hashtbl.create 64 }
let page_of_addr addr = addr lsr page_shift
let offset_of_addr addr = addr land (page_size - 1)

let find t page =
  match Hashtbl.find_opt t.entries page with
  | Some pte when pte.present -> pte
  | _ -> Fault.raise_ (Page_not_present page)

let find_opt t page = Hashtbl.find_opt t.entries page

(** Install a mapping for [page]. *)
let map t ~page ~kernel ~writable =
  match Hashtbl.find_opt t.entries page with
  | Some pte when pte.present && pte.ep ->
      Fault.raise_ (Write_to_protected_mapping page)
  | _ ->
      Hashtbl.replace t.entries page
        { present = true; kernel; ep = false; writable }

(** Replace a mapping (the [mmap] path applications control).  Refuses to
    touch pages carrying protected functions. *)
let remap t ~page ~kernel ~writable =
  (match Hashtbl.find_opt t.entries page with
  | Some pte when pte.present && pte.ep ->
      Fault.raise_ (Write_to_protected_mapping page)
  | _ -> ());
  Hashtbl.replace t.entries page
    { present = true; kernel; ep = false; writable }

(** Set the execute-protected bit; only legal in kernel mode. *)
let set_ep t ~mode ~page =
  (match mode with
  | Privilege.User -> Fault.raise_ (Ep_set_from_user page)
  | Privilege.Kernel -> ());
  let pte = find t page in
  pte.ep <- true

(** Hardware access check for a load/store at [addr] in [mode]. *)
let check_access t ~mode ~addr ~write =
  let page = page_of_addr addr in
  let pte = find t page in
  (match mode with
  | Privilege.User when pte.kernel ->
      Fault.raise_ (Kernel_page_access { page; write })
  | _ -> ());
  if write && pte.ep && mode = Privilege.User then
    Fault.raise_ (Kernel_page_access { page; write });
  if write && not pte.writable then
    Fault.raise_ (Kernel_page_access { page; write })
