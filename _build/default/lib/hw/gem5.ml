(** "gem5-lite": a micro-op cost simulator for the control-transfer
    instructions compared in paper Section 3.3.

    Each instruction sequence is a list of execution blocks (the artifact
    splits its gem5 measurements the same way).  Blocks either occupy the
    pipeline for a fixed number of cycles or serialize it (syscall /
    sysret are serializing on x86: the front end drains and refills).
    Totals are calibrated against the paper's gem5 numbers: call/ret ~24,
    jmpp+pret ~70 (of which CPL change + protected return address ~30 and
    ep/entry checks ~6), empty syscall ~1200 on gem5 and ~400 cycles
    (geteuid) on the real Xeon. *)

type block =
  | Busy of string * int  (** name, cycles occupying the pipeline *)
  | Serializing of string * int
      (** name, cycles; additionally drains and refills the front end *)

type sequence = { mnemonic : string; blocks : block list }

(* Front-end depth: a serializing instruction costs an extra drain+refill
   of this many cycles in our simple pipeline. *)
let pipeline_refill = 20

let block_cycles = function Busy (_, c) -> c | Serializing (_, c) -> c + pipeline_refill

let block_name = function Busy (n, _) | Serializing (n, _) -> n

let total seq = List.fold_left (fun acc b -> acc + block_cycles b) 0 seq.blocks

(** Standard x86 call + return; the return is predicted by the return
    stack buffer, no pipeline disruption. *)
let call_ret =
  {
    mnemonic = "call/ret";
    blocks =
      [
        Busy ("call: push return address, redirect fetch (predicted)", 14);
        Busy ("ret: pop return address (RSB hit)", 10);
      ];
  }

(** jmpp + pret.  The ep-bit and entry-offset checks piggyback on the TLB
    lookup of the target; the CPL change and the protected-stack return
    address write are the only supervisor actions. *)
let jmpp_pret =
  {
    mnemonic = "jmpp/pret";
    blocks =
      [
        Busy ("ep bit + entry-offset check (with TLB lookup)", 6);
        Busy ("CPL change + return address to protected stack", 30);
        Busy ("call routine (jump predictor friendly)", 24);
        Busy ("pret: nesting counter decrement + CPL restore", 10);
      ];
  }

(** Empty syscall as measured on gem5 (~1200 cycles). *)
let syscall_gem5 =
  {
    mnemonic = "syscall (gem5, empty)";
    blocks =
      [
        Serializing ("SYSCALL_64: serialize, swapgs, MSR-based target", 160);
        Busy ("save user context (pt_regs)", 220);
        Busy ("dispatch table lookup + indirect call", 150);
        Busy ("entry checks (audit/seccomp hooks)", 250);
        Busy ("restore context", 220);
        Serializing ("SYSRET_TO_64: serialize, swapgs back", 140);
      ];
  }

(** geteuid on the real Xeon Gold 5212 (~400 cycles, Section 3.3). *)
let syscall_hw =
  {
    mnemonic = "syscall (real HW, geteuid)";
    blocks =
      [
        Serializing ("SYSCALL: swapgs + entry", 70);
        Busy ("save/restore minimal context", 130);
        Busy ("dispatch + geteuid body", 70);
        Serializing ("SYSRET: exit", 70);
      ];
  }

let all = [ call_ret; jmpp_pret; syscall_gem5; syscall_hw ]

(** Run [iterations] of [seq] through the pipeline model, returning
    (total_cycles, per_iteration).  The first iteration pays cold-cache /
    cold-predictor costs, like the artifact's 100-iteration loops. *)
let measure ?(iterations = 100) seq =
  let cold_penalty = 3 * total seq in
  let warm = total seq in
  let total_cycles = cold_penalty + (iterations * warm) in
  (total_cycles, warm)

(** Per-block report used by the sec33 experiment. *)
let report seq =
  List.map (fun b -> (block_name b, block_cycles b)) seq.blocks
