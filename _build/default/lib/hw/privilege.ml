(** CPU privilege model.

    x86 has four rings; like the paper (Section 3.1) we only distinguish
    user mode (CPL=3) and kernel/supervisor mode (CPL<3). *)

type level = User | Kernel

let to_cpl = function User -> 3 | Kernel -> 0
let of_cpl cpl = if cpl >= 3 then User else Kernel
let pp ppf = function
  | User -> Fmt.string ppf "user (CPL=3)"
  | Kernel -> Fmt.string ppf "kernel (CPL=0)"
