(** Per-design cost and structure profile for the kernel file systems.

    The shared {!Kernel_fs} engine implements full POSIX-ish semantics
    behind a simulated VFS; each baseline is a profile describing the
    mechanisms that distinguish it in the paper's evaluation:

    - how expensive a directory lookup is (NOVA: volatile radix tree,
      PMFS: unsorted linear dentry list, EXT4: htree),
    - how metadata updates are journaled (undo log, per-inode log, JBD2),
    - whether the block allocator is serial or per-CPU,
    - whether the data path still traps into the kernel (SplitFS doesn't),
    - whether appends are staged in user space (SplitFS). *)

type allocator = Serial | Per_cpu

type journal =
  | Undo_log of { writes_per_op : int }  (** PMFS: log old values first *)
  | Per_inode_log of { writes_per_op : int }  (** NOVA *)
  | Jbd2 of { handle_cycles : float; writes_per_op : int }  (** EXT4 *)

type t = {
  name : string;
  (* directory lookup cost as NVMM line reads, given directory size *)
  lookup_reads : int -> int;
  (* metadata-op structure *)
  journal : journal;
  create_cycles : float;
      (** FS-internal CPU work per create, performed while the VFS holds
          the parent's inode mutex (inode allocation and initialization,
          dentry instantiation, security hooks, quota, ...) *)
  unlink_cycles : float;
  rename_cycles : float;
  create_writes : int;  (** NVMM line writes per create beyond the journal *)
  unlink_writes : int;
  rename_writes : int;
  allocator : allocator;
  alloc_cost : blocks:int -> float;
      (** CPU work to allocate [blocks] 4-KiB blocks; serial allocators
          perform it while holding the global allocator lock *)
  (* data path *)
  data_syscall : bool;  (** false: user-space data ops (SplitFS) *)
  staged_appends : int;
      (** >0: appends staged in user space, one relink syscall per N
          appends (SplitFS); 0: normal path *)
  append_meta_writes : int;  (** mapping/index updates per append *)
  fsync_cycles : float;  (** journal flush / commit work on fsync *)
}

let nova =
  {
    name = "NOVA";
    (* volatile radix tree over dentry log: O(1) DRAM lookups, one NVMM
       read to validate the log entry *)
    lookup_reads = (fun _ -> 1);
    journal = Per_inode_log { writes_per_op = 2 };
    create_cycles = 4600.0;
    unlink_cycles = 3900.0;
    rename_cycles = 6500.0;
    create_writes = 2 (* inode init + dentry log append *);
    unlink_writes = 2;
    rename_writes = 4 (* lightweight journal for the two pointers *);
    allocator = Per_cpu;
    (* per-CPU free lists, but one log entry per allocated extent *)
    alloc_cost = (fun ~blocks -> 250.0 *. float_of_int (1 + (blocks / 128)));
    data_syscall = true;
    staged_appends = 0;
    append_meta_writes = 2 (* log entry + tail pointer *);
    fsync_cycles = 300.0 (* data already persistent; log tail check *);
  }

let pmfs =
  {
    name = "PMFS";
    (* unsorted dentry list: scan half the directory on average, ~32
       dentries per 4 KiB block *)
    lookup_reads = (fun n -> 1 + (n / 64));
    journal = Undo_log { writes_per_op = 4 };
    create_cycles = 4200.0;
    unlink_cycles = 3700.0;
    rename_cycles = 6000.0;
    create_writes = 3;
    unlink_writes = 3;
    rename_writes = 5;
    allocator = Serial;
    (* one global bitmap scan per allocation, regardless of size: cheap
       for bulk requests (high fallocate base) but fully serialized (flat
       beyond ~4 threads in appendfile, Fig. 7g/7h) *)
    alloc_cost = (fun ~blocks:_ -> 1900.0);
    data_syscall = true;
    staged_appends = 0;
    append_meta_writes = 3 (* b-tree update under undo log *);
    fsync_cycles = 250.0;
  }

let ext4dax =
  {
    name = "EXT4-DAX";
    (* htree: root + leaf probe *)
    lookup_reads = (fun _ -> 2);
    journal = Jbd2 { handle_cycles = 900.0; writes_per_op = 4 };
    create_cycles = 7200.0;
    unlink_cycles = 6300.0;
    rename_cycles = 8200.0;
    create_writes = 4 (* inode bitmap, inode, dir block, group desc *);
    unlink_writes = 4;
    rename_writes = 6;
    allocator = Serial;
    (* extent tree: one extent covers the whole request *)
    alloc_cost = (fun ~blocks:_ -> 1600.0);
    data_syscall = true;
    staged_appends = 0;
    append_meta_writes = 3 (* extent tree + inode under JBD2 *);
    fsync_cycles = 2500.0 (* JBD2 transaction commit *);
  }

let splitfs =
  {
    ext4dax with
    name = "SplitFS";
    (* metadata path is EXT4-DAX's; the data path lives in user space *)
    data_syscall = false;
    staged_appends = 32 (* one relink syscall per 32 staged appends *);
    append_meta_writes = 1 (* staging-file tail only *);
    fsync_cycles = 1200.0 (* relink of the staged region *);
  }
