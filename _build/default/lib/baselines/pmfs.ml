(** PMFS baseline (Dulloor et al., EuroSys '14): undo-logged persistent
    memory file system with unsorted linear directories and a serial
    block allocator — the two traits the paper's evaluation repeatedly
    surfaces (poor unlink in large directories, flat appendfile beyond
    four threads). *)

include Kernel_fs

let name = "PMFS"
let create () = Kernel_fs.create Profile.pmfs
