lib/baselines/ext4dax.ml: Kernel_fs Profile
