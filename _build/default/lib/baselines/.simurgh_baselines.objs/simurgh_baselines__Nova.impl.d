lib/baselines/nova.ml: Kernel_fs Profile
