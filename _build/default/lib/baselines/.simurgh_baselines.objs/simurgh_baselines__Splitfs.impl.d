lib/baselines/splitfs.ml: Kernel_fs Profile
