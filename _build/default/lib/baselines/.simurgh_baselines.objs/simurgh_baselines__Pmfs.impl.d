lib/baselines/pmfs.ml: Kernel_fs Profile
