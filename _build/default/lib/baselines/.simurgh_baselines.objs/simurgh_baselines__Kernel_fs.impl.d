lib/baselines/kernel_fs.ml: Bytes Cost_model Errno Hashtbl Machine Path Profile Simurgh_fs_common Simurgh_sim Simurgh_vfs String Types Vlock
