lib/baselines/profile.ml:
