(** SplitFS baseline (Kadekodi et al., SOSP '19) in POSIX mode: the data
    path is served in user space over memory-mapped staging files (no
    syscall; appends staged and relinked in batches), while every
    metadata operation goes through EXT4-DAX underneath. *)

include Kernel_fs

let name = "SplitFS"
let create () = Kernel_fs.create Profile.splitfs
