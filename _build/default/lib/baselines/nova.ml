(** NOVA baseline (Xu & Swanson, FAST '16): log-structured NVMM file
    system with per-inode logs, a volatile radix index and per-CPU block
    allocators.  Configured with inline writes, as in the paper's
    evaluation setup. *)

include Kernel_fs

let name = "NOVA"
let create () = Kernel_fs.create Profile.nova
