(** EXT4 in DAX mode: the general-purpose kernel file system with direct
    NVMM access.  Strong on large-file data paths, weighed down on
    metadata by JBD2 transactions and the generic VFS locking. *)

include Kernel_fs

let name = "EXT4-DAX"
let create () = Kernel_fs.create Profile.ext4dax
