(** Persistent (relative) pointers.

    Absolute virtual addresses cannot be shared between processes because
    ASLR places the mmap'ed NVMM region at different addresses (paper
    Section 4.1).  Simurgh replaces every stored pointer by a relative
    offset from the start of the NVMM device.  The phantom type parameter
    documents what a pointer refers to; offset 0 is the null pointer
    (the superblock occupies offset 0, so no valid object lives there). *)

type 'a t

val null : 'a t
val is_null : 'a t -> bool
val of_offset : int -> 'a t
(** Raises [Invalid_argument] on negative offsets. *)

val offset : 'a t -> int
val equal : 'a t -> 'a t -> bool
val compare : 'a t -> 'a t -> int
val hash : 'a t -> int
val cast : 'a t -> 'b t
(** Explicit retyping; keep rare. *)

val pp : Format.formatter -> 'a t -> unit

val load : Region.t -> int -> 'a t
(** Read a pointer stored at byte offset [addr]. *)

val store : Region.t -> int -> 'a t -> unit
(** Write a pointer at byte offset [addr]. *)
