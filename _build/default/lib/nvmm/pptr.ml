type 'a t = int

let null = 0
let is_null p = p = 0

let of_offset o =
  if o < 0 then invalid_arg "Pptr.of_offset: negative offset";
  o

let offset p = p
let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let cast p = p
let pp ppf p = Format.fprintf ppf "@%#x" p
let load region addr : 'a t = Region.read_u62 region addr
let store region addr (p : 'a t) = Region.write_u62 region addr p
