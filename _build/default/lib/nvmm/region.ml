(** Simulated byte-addressable non-volatile memory region.

    The region stands in for the mmap'ed Optane DIMMs of the paper.  Two
    modes:

    - [Fast]: stores hit the persistent image directly.  Used for
      benchmarks, where persistence ordering is charged in virtual time
      but not checked.
    - [Strict]: stores land in a volatile overlay keyed by 64-byte cache
      line; [clwb] marks lines write-back pending, [sfence] commits
      pending lines to the persistent image, and [crash] discards the
      overlay.  Non-temporal stores ([ntstore]) bypass the cache but
      still require [sfence] to be ADR-safe, matching x86 semantics.
      Dropping *all* unflushed lines at a crash is the adversarial choice
      (real caches may evict early), which is what recovery code must
      survive.

    An optional [guard] models the protected-page check: when installed,
    every access calls it first, and the Simurgh security layer makes it
    fault unless the CPU runs in kernel mode via jmpp. *)

let line_size = 64

type mode = Fast | Strict

type line_state = Dirty | Flushing

type t = {
  image : Bytes.t;  (** the persistent image *)
  size : int;
  mode : mode;
  overlay : (int, Bytes.t * line_state ref) Hashtbl.t;
      (** line number -> volatile contents + state (Strict mode only) *)
  mutable guard : (write:bool -> unit) option;
  mutable user_slot : exn option;
      (** opaque per-region slot for a higher layer's shared volatile
          state (the FS stores its shared-DRAM structures here so every
          mount of the region finds them; an exception constructor makes
          the slot type-safe without a dependency) *)
  mutable stores : int;  (** statistics: store operations *)
  mutable loads : int;
  mutable flushes : int;  (** clwb/ntstore line flushes *)
  mutable fences : int;
}

let create ?(mode = Fast) size =
  {
    image = Bytes.make size '\000';
    size;
    mode;
    overlay = Hashtbl.create 1024;
    guard = None;
    user_slot = None;
    stores = 0;
    loads = 0;
    flushes = 0;
    fences = 0;
  }

let size t = t.size
let mode t = t.mode
let user_slot t = t.user_slot
let set_user_slot t v = t.user_slot <- v
let set_guard t g = t.guard <- Some g
let clear_guard t = t.guard <- None

let check t ~write =
  match t.guard with None -> () | Some g -> g ~write

let line_of off = off / line_size

(* Fetch (creating from the persistent image) the overlay line. *)
let overlay_line t ln =
  match Hashtbl.find_opt t.overlay ln with
  | Some (buf, st) -> (buf, st)
  | None ->
      let buf = Bytes.create line_size in
      let base = ln * line_size in
      let len = min line_size (t.size - base) in
      Bytes.blit t.image base buf 0 len;
      let cell = (buf, ref Dirty) in
      Hashtbl.replace t.overlay ln cell;
      cell

(* --- raw byte access -------------------------------------------------- *)

let bounds t off len =
  if off < 0 || len < 0 || off + len > t.size then
    invalid_arg
      (Printf.sprintf "Region: access [%d, %d) outside region of %d bytes"
         off (off + len) t.size)

let read_byte t off =
  t.loads <- t.loads + 1;
  check t ~write:false;
  bounds t off 1;
  match t.mode with
  | Fast -> Char.code (Bytes.unsafe_get t.image off)
  | Strict -> (
      let ln = line_of off in
      match Hashtbl.find_opt t.overlay ln with
      | Some (buf, _) -> Char.code (Bytes.get buf (off - (ln * line_size)))
      | None -> Char.code (Bytes.get t.image off))

let write_byte t off v =
  t.stores <- t.stores + 1;
  check t ~write:true;
  bounds t off 1;
  match t.mode with
  | Fast -> Bytes.unsafe_set t.image off (Char.chr (v land 0xff))
  | Strict ->
      let ln = line_of off in
      let buf, st = overlay_line t ln in
      st := Dirty;
      Bytes.set buf (off - (ln * line_size)) (Char.chr (v land 0xff))

let read_bytes t off len =
  t.loads <- t.loads + 1;
  check t ~write:false;
  bounds t off len;
  match t.mode with
  | Fast -> Bytes.sub t.image off len
  | Strict ->
      let out = Bytes.create len in
      for i = 0 to len - 1 do
        Bytes.set out i (Char.chr (read_byte t (off + i)))
      done;
      out

let write_bytes t off src =
  t.stores <- t.stores + 1;
  check t ~write:true;
  let len = Bytes.length src in
  bounds t off len;
  match t.mode with
  | Fast -> Bytes.blit src 0 t.image off len
  | Strict ->
      for i = 0 to len - 1 do
        write_byte t (off + i) (Char.code (Bytes.get src i))
      done

let write_string t off s = write_bytes t off (Bytes.of_string s)

let zero t off len =
  check t ~write:true;
  bounds t off len;
  match t.mode with
  | Fast -> Bytes.fill t.image off len '\000'
  | Strict ->
      for i = 0 to len - 1 do
        write_byte t (off + i) 0
      done

(* --- fixed-width little-endian accessors ------------------------------ *)

let read_u8 = read_byte
let write_u8 = write_byte

let read_u16 t off = read_byte t off lor (read_byte t (off + 1) lsl 8)

let write_u16 t off v =
  write_byte t off (v land 0xff);
  write_byte t (off + 1) ((v lsr 8) land 0xff)

let read_u32 t off = read_u16 t off lor (read_u16 t (off + 2) lsl 16)

let write_u32 t off v =
  write_u16 t off (v land 0xffff);
  write_u16 t (off + 2) ((v lsr 16) land 0xffff)

(* 62 usable bits: offsets, sizes and persistent pointers all fit. *)
let read_u62 t off =
  read_u32 t off lor (read_u32 t (off + 4) lsl 32)

let write_u62 t off v =
  write_u32 t off (v land 0xffffffff);
  write_u32 t (off + 4) ((v lsr 32) land 0x3fffffff)

(* --- persistence primitives ------------------------------------------ *)

(** [clwb t off len]: initiate write-back of the lines covering
    [off, off+len).  Persistence is only guaranteed after [sfence]. *)
let clwb t off len =
  bounds t off (max len 1);
  t.flushes <- t.flushes + 1;
  match t.mode with
  | Fast -> ()
  | Strict ->
      let first = line_of off and last = line_of (off + max (len - 1) 0) in
      for ln = first to last do
        match Hashtbl.find_opt t.overlay ln with
        | Some (_, st) -> st := Flushing
        | None -> ()
      done

(** Non-temporal store of [src] at [off]: bypasses the cache (write
    combining); still needs [sfence] before it is guaranteed durable. *)
let ntstore t off src =
  write_bytes t off src;
  clwb t off (Bytes.length src)

(** Commit all pending (Flushing) lines to the persistent image. *)
let sfence t =
  t.fences <- t.fences + 1;
  match t.mode with
  | Fast -> ()
  | Strict ->
      let committed = ref [] in
      Hashtbl.iter
        (fun ln (buf, st) ->
          if !st = Flushing then begin
            let base = ln * line_size in
            let len = min line_size (t.size - base) in
            Bytes.blit buf 0 t.image base len;
            committed := ln :: !committed
          end)
        t.overlay;
      List.iter (fun ln -> Hashtbl.remove t.overlay ln) !committed

(** Convenience: flush + fence a range (persist barrier). *)
let persist t off len =
  clwb t off len;
  sfence t

(** Power failure: every line not yet committed by [sfence] is lost. *)
let crash t =
  match t.mode with
  | Fast -> ()
  | Strict -> Hashtbl.reset t.overlay

(** Number of dirty (not yet durable) lines; 0 means fully persisted. *)
let unpersisted_lines t = Hashtbl.length t.overlay

(* --- file-backed persistence ------------------------------------------ *)

(** Write the persistent image to [path] (the volatile overlay of a
    strict region is NOT included — exactly what would survive power
    loss). *)
let save_to_file t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc t.image)

(** Load a region image previously written by [save_to_file]. *)
let load_from_file ?(mode = Fast) path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let size = in_channel_length ic in
      let t = create ~mode size in
      really_input ic t.image 0 size;
      t)

type stats = { loads : int; stores : int; flushes : int; fences : int }

let stats (t : t) : stats =
  { loads = t.loads; stores = t.stores; flushes = t.flushes; fences = t.fences }
