lib/nvmm/region.ml: Bytes Char Fun Hashtbl List Printf
