lib/nvmm/pptr.ml: Format Hashtbl Int Region
