lib/nvmm/pptr.mli: Format Region
