(** Secure mode: the Simurgh library behind protected functions
    (paper Section 3.2, Fig. 2).

    The bootstrap maps the NVMM region into the application's address
    space as kernel pages, loads the FS entry points as protected
    functions and installs a region guard: any access to FS bytes while
    the CPU is in user mode faults.  Application code can therefore only
    reach the file system through jmpp — the returned [t] exposes stubs
    that do exactly that. *)

open Simurgh_hw
open Simurgh_fs_common

type t = {
  fs : Fs.t;
  cpu : Cpu.t;
  univ : Protected.t;
  (* protected stubs; each performs the jmpp / body / pret sequence *)
  p_create : string * int -> unit;
  p_mkdir : string * int -> unit;
  p_unlink : string -> unit;
  p_rmdir : string -> unit;
  p_rename : string * string -> unit;
  p_stat : string -> Types.stat;
  p_open : Types.open_flags * string -> Fs.fd;
  p_close : Fs.fd -> unit;
  p_pread : Fs.fd * int * int -> bytes;
  p_pwrite : Fs.fd * int * bytes -> int;
  p_append : Fs.fd * bytes -> int;
  p_readdir : string -> string list;
}

(** Map the FS region pages as kernel pages in the application's page
    table and guard the region. *)
let protect_region cpu region =
  let pages =
    (Simurgh_nvmm.Region.size region + Page_table.page_size - 1)
    / Page_table.page_size
  in
  (* the region occupies a dedicated range; page-table entries are
     bookkeeping only (page numbers 0x100000+) *)
  let base_page = 0x100000 in
  for p = base_page to base_page + pages - 1 do
    Page_table.map cpu.Cpu.page_table ~page:p ~kernel:true ~writable:true
  done;
  Simurgh_nvmm.Region.set_guard region (fun ~write ->
      ignore write;
      if Cpu.mode cpu <> Privilege.Kernel then
        Fault.raise_
          (Kernel_page_access { page = base_page; write }))

(** Bootstrap: create the CPU context, run load_protected(), register the
    FS operations as protected functions and seal the universe. *)
let bootstrap ?(euid = 1000) ?(egid = 1000) fs =
  let cpu = Cpu.create () in
  let univ = Protected.bootstrap cpu ~euid ~egid in
  Fs.set_creds fs ~euid ~egid;
  protect_region cpu (Fs.region fs);
  let reg name f = Protected.register univ ~name f in
  let t =
    {
      fs;
      cpu;
      univ;
      p_create =
        reg "simurgh_create" (fun w (path, perm) ->
            Protected.check_privileged w cpu;
            Fs.create_file fs ~perm path);
      p_mkdir =
        reg "simurgh_mkdir" (fun w (path, perm) ->
            Protected.check_privileged w cpu;
            Fs.mkdir fs ~perm path);
      p_unlink =
        reg "simurgh_unlink" (fun w path ->
            Protected.check_privileged w cpu;
            Fs.unlink fs path);
      p_rmdir =
        reg "simurgh_rmdir" (fun w path ->
            Protected.check_privileged w cpu;
            Fs.rmdir fs path);
      p_rename =
        reg "simurgh_rename" (fun w (a, b) ->
            Protected.check_privileged w cpu;
            Fs.rename fs a b);
      p_stat =
        reg "simurgh_stat" (fun w path ->
            Protected.check_privileged w cpu;
            Fs.stat fs path);
      p_open =
        reg "simurgh_open" (fun w (flags, path) ->
            Protected.check_privileged w cpu;
            Fs.openf fs flags path);
      p_close =
        reg "simurgh_close" (fun w fd ->
            Protected.check_privileged w cpu;
            Fs.close fs fd);
      p_pread =
        reg "simurgh_read" (fun w (fd, pos, len) ->
            Protected.check_privileged w cpu;
            Fs.pread fs fd ~pos ~len);
      p_pwrite =
        reg "simurgh_write" (fun w (fd, pos, data) ->
            Protected.check_privileged w cpu;
            Fs.pwrite fs fd ~pos data);
      p_append =
        reg "simurgh_append" (fun w (fd, data) ->
            Protected.check_privileged w cpu;
            Fs.append fs fd data);
      p_readdir =
        reg "simurgh_readdir" (fun w path ->
            Protected.check_privileged w cpu;
            Fs.readdir fs path);
    }
  in
  Protected.seal univ;
  t

(* The libc-style API: each call goes through the protected stub. *)
let create t ?(perm = 0o644) path = t.p_create (path, perm)
let mkdir t ?(perm = 0o755) path = t.p_mkdir (path, perm)
let unlink t path = t.p_unlink path
let rmdir t path = t.p_rmdir path
let rename t a b = t.p_rename (a, b)
let stat t path = t.p_stat path
let openf t flags path = t.p_open (flags, path)
let close t fd = t.p_close fd
let pread t fd ~pos ~len = t.p_pread (fd, pos, len)
let pwrite t fd ~pos data = t.p_pwrite (fd, pos, data)
let append t fd data = t.p_append (fd, data)
let readdir t path = t.p_readdir path
let cpu t = t.cpu
let universe t = t.univ
let fs t = t.fs
