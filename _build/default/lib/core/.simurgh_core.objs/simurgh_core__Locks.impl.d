lib/core/locks.ml: Hashtbl Simurgh_sim Vlock
