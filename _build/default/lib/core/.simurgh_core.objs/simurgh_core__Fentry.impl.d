lib/core/fentry.ml: Bytes Char Region Simurgh_nvmm String
