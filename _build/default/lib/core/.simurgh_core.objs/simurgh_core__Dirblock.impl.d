lib/core/dirblock.ml: Fentry Name_hash Region Simurgh_nvmm
