lib/core/recovery.ml: Bytes Char Dirblock Fentry Fmt Fs Hashtbl Inode Layout List Name_hash Region Simurgh_alloc Simurgh_nvmm
