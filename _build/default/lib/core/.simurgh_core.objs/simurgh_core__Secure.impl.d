lib/core/secure.ml: Cpu Fault Fs Page_table Privilege Protected Simurgh_fs_common Simurgh_hw Simurgh_nvmm Types
