lib/core/name_hash.ml: Char Int64 String
