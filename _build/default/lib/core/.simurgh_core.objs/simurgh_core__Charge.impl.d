lib/core/charge.ml: Machine Simurgh_sim Vlock
