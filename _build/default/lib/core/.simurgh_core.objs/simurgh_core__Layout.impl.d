lib/core/layout.ml: Fentry Inode Region Simurgh_alloc Simurgh_nvmm
