lib/core/fs.ml: Buffer Bytes Charge Dirblock Errno Fentry Inode Layout List Locks Name_hash Openfile Path Printf Region Simurgh_alloc Simurgh_fs_common Simurgh_nvmm Simurgh_sim String Types
