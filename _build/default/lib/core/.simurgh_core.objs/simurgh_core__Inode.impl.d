lib/core/inode.ml: Region Simurgh_nvmm
