lib/core/openfile.ml: Array Charge
