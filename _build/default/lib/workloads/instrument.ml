(** Instrumented wrapper around a file system: accumulates the virtual
    time spent inside FS calls and the bytes moved by data operations, so
    experiments can report the paper's application / data-copy / file
    system execution-time breakdown (Table 1 and Fig. 10). *)

open Simurgh_fs_common

type acc = {
  mutable fs_cycles : float;  (** virtual time inside FS calls *)
  mutable copy_bytes : int;  (** payload bytes moved by read/write *)
  mutable calls : int;
}

let fresh_acc () = { fs_cycles = 0.0; copy_bytes = 0; calls = 0 }

(** Virtual cycles attributable to moving [bytes] between the device and
    the application — the part even a perfect FS would pay.  The CPU-side
    copy plus roughly half the device transfer (the other half overlaps
    with FS work the breakdown attributes to the file system). *)
let copy_cycles cm bytes =
  let b = float_of_int bytes in
  (b /. cm.Simurgh_sim.Cost_model.memcpy_bytes_per_cycle)
  +. (b /. cm.Simurgh_sim.Cost_model.nvmm_read_bw_thread /. 2.0)

module Make (F : Fs_intf.S) : sig
  include Fs_intf.S with type t = F.t * acc and type fd = F.fd
end = struct
  type t = F.t * acc
  type fd = F.fd

  let name = F.name

  let timed ?ctx (acc : acc) f =
    match ctx with
    | None -> f ()
    | Some c ->
        let t0 = Simurgh_sim.Machine.now c in
        let r = f () in
        acc.fs_cycles <- acc.fs_cycles +. (Simurgh_sim.Machine.now c -. t0);
        acc.calls <- acc.calls + 1;
        r

  let create_file ?ctx (fs, a) ?perm p =
    timed ?ctx a (fun () -> F.create_file ?ctx fs ?perm p)

  let mkdir ?ctx (fs, a) ?perm p =
    timed ?ctx a (fun () -> F.mkdir ?ctx fs ?perm p)

  let unlink ?ctx (fs, a) p = timed ?ctx a (fun () -> F.unlink ?ctx fs p)
  let rmdir ?ctx (fs, a) p = timed ?ctx a (fun () -> F.rmdir ?ctx fs p)

  let rename ?ctx (fs, a) p q =
    timed ?ctx a (fun () -> F.rename ?ctx fs p q)

  let stat ?ctx (fs, a) p = timed ?ctx a (fun () -> F.stat ?ctx fs p)

  let openf ?ctx (fs, a) flags p =
    timed ?ctx a (fun () -> F.openf ?ctx fs flags p)

  let close ?ctx (fs, a) fd = timed ?ctx a (fun () -> F.close ?ctx fs fd)

  let pread ?ctx (fs, a) fd ~pos ~len =
    let r = timed ?ctx a (fun () -> F.pread ?ctx fs fd ~pos ~len) in
    a.copy_bytes <- a.copy_bytes + Bytes.length r;
    r

  let pwrite ?ctx (fs, a) fd ~pos src =
    let n = timed ?ctx a (fun () -> F.pwrite ?ctx fs fd ~pos src) in
    a.copy_bytes <- a.copy_bytes + n;
    n

  let append ?ctx (fs, a) fd src =
    let n = timed ?ctx a (fun () -> F.append ?ctx fs fd src) in
    a.copy_bytes <- a.copy_bytes + n;
    n

  let fallocate ?ctx (fs, a) fd ~len =
    timed ?ctx a (fun () -> F.fallocate ?ctx fs fd ~len)

  let fsync ?ctx (fs, a) fd = timed ?ctx a (fun () -> F.fsync ?ctx fs fd)
  let readdir ?ctx (fs, a) p = timed ?ctx a (fun () -> F.readdir ?ctx fs p)

  let symlink ?ctx (fs, a) ~target p =
    timed ?ctx a (fun () -> F.symlink ?ctx fs ~target p)

  let readlink ?ctx (fs, a) p = timed ?ctx a (fun () -> F.readlink ?ctx fs p)

  let hardlink ?ctx (fs, a) ~existing p =
    timed ?ctx a (fun () -> F.hardlink ?ctx fs ~existing p)

  let truncate ?ctx (fs, a) p n =
    timed ?ctx a (fun () -> F.truncate ?ctx fs p n)

  let exists ?ctx (fs, a) p = timed ?ctx a (fun () -> F.exists ?ctx fs p)
  let chmod ?ctx (fs, a) p m = timed ?ctx a (fun () -> F.chmod ?ctx fs p m)
  let utimes ?ctx (fs, a) p m = timed ?ctx a (fun () -> F.utimes ?ctx fs p m)
end
