(** Filebench personalities (paper Section 5.3, Table 2 and Fig. 8).

    Each personality reproduces the op mix of the stock Filebench
    workload model; populations and file sizes follow Table 2 and can be
    scaled down uniformly. *)

open Simurgh_sim
open Simurgh_fs_common

type personality = Varmail | Webserver | Webproxy | Fileserver

let name = function
  | Varmail -> "varmail"
  | Webserver -> "webserver"
  | Webproxy -> "webproxy"
  | Fileserver -> "fileserver"

type config = {
  files : int;
  file_size : int;
  threads : int;
  dir_width : int;  (** files per directory; 0 = one flat directory *)
  io_size : int;
}

(* Table 2 (default settings); dir width 1,000,000 means a flat dir. *)
let config ?(scale = 1.0) = function
  | Varmail ->
      {
        files = max 64 (int_of_float (1000.0 *. scale));
        file_size = 128 * 1024;
        threads = 16;
        dir_width = 0;
        io_size = 16 * 1024;
      }
  | Webserver ->
      {
        files = max 64 (int_of_float (1000.0 *. scale));
        file_size = 128 * 1024;
        threads = 100;
        dir_width = 20;
        io_size = 128 * 1024;
      }
  | Webproxy ->
      {
        files = max 64 (int_of_float (10000.0 *. scale));
        file_size = 16 * 1024;
        threads = 100;
        dir_width = 0;
        io_size = 16 * 1024;
      }
  | Fileserver ->
      {
        files = max 64 (int_of_float (10000.0 *. scale));
        file_size = 128 * 1024;
        threads = 50;
        dir_width = 20;
        io_size = 128 * 1024;
      }

type result = { ops_per_s : float; makespan_s : float; total_ops : int }

module Make (F : Fs_intf.S) = struct
  let dir_of cfg i =
    if cfg.dir_width = 0 then "/data"
    else Printf.sprintf "/data/d%d" (i / cfg.dir_width)

  let path_of cfg i = Printf.sprintf "%s/f%06d" (dir_of cfg i) i

  let populate fs cfg =
    F.mkdir fs "/data";
    if cfg.dir_width > 0 then
      for d = 0 to ((cfg.files - 1) / cfg.dir_width) do
        F.mkdir fs (Printf.sprintf "/data/d%d" d)
      done;
    let chunk = Bytes.make 65536 'p' in
    for i = 0 to cfg.files - 1 do
      F.create_file fs (path_of cfg i);
      let fd = F.openf fs Types.wronly (path_of cfg i) in
      let remaining = ref cfg.file_size in
      while !remaining > 0 do
        let n = min !remaining (Bytes.length chunk) in
        ignore (F.append fs fd (Bytes.sub chunk 0 n));
        remaining := !remaining - n
      done;
      F.close fs fd
    done

  let read_whole ?ctx fs cfg path =
    match F.openf ?ctx fs Types.rdonly path with
    | fd ->
        let pos = ref 0 in
        let continue = ref true in
        while !continue do
          let b = F.pread ?ctx fs fd ~pos:!pos ~len:cfg.io_size in
          pos := !pos + Bytes.length b;
          if Bytes.length b < cfg.io_size then continue := false
        done;
        F.close ?ctx fs fd
    | exception Errno.Err (ENOENT, _) -> ()

  let append_some ?ctx fs cfg path =
    match F.openf ?ctx fs Types.wronly path with
    | fd ->
        ignore (F.append ?ctx fs fd (Bytes.make cfg.io_size 'a'));
        F.fsync ?ctx fs fd;
        F.close ?ctx fs fd
    | exception Errno.Err (ENOENT, _) -> ()

  (* One "flowlet" per loop iteration; returns FS ops performed.  The op
     mixes follow the stock Filebench personalities. *)
  let flowlet personality fs cfg ~ctx ~seq rng =
    match personality with
    | Varmail ->
        (* deletefile; createfile+append+fsync; openfile+read+append+fsync;
           openfile+read *)
        let victim = Rng.int rng cfg.files in
        (try F.unlink ~ctx fs (path_of cfg victim)
         with Errno.Err (ENOENT, _) -> ());
        (try F.create_file ~ctx fs (path_of cfg victim)
         with Errno.Err (EEXIST, _) -> ());
        append_some ~ctx fs cfg (path_of cfg victim);
        let v2 = Rng.int rng cfg.files in
        read_whole ~ctx fs cfg (path_of cfg v2);
        append_some ~ctx fs cfg (path_of cfg v2);
        let v3 = Rng.int rng cfg.files in
        read_whole ~ctx fs cfg (path_of cfg v3);
        8
    | Webserver ->
        (* open+read 10 files, append to a shared log *)
        for _ = 1 to 10 do
          read_whole ~ctx fs cfg (path_of cfg (Rng.int rng cfg.files))
        done;
        (try
           let fd = F.openf ~ctx fs Types.appendf "/data/weblog" in
           ignore (F.append ~ctx fs fd (Bytes.make 16384 'l'));
           F.close ~ctx fs fd
         with Errno.Err (_, _) -> ());
        11
    | Webproxy ->
        (* delete, create, append, then read 5 files *)
        let i = seq mod cfg.files in
        (try F.unlink ~ctx fs (path_of cfg i) with Errno.Err (ENOENT, _) -> ());
        (try F.create_file ~ctx fs (path_of cfg i)
         with Errno.Err (EEXIST, _) -> ());
        append_some ~ctx fs cfg (path_of cfg i);
        for _ = 1 to 5 do
          read_whole ~ctx fs cfg (path_of cfg (Rng.int rng cfg.files))
        done;
        8
    | Fileserver ->
        (* create+write whole; open+append; open+read whole; delete; stat *)
        let i = Rng.int rng cfg.files in
        let fresh = Printf.sprintf "%s/new%d" (dir_of cfg i) seq in
        (try
           F.create_file ~ctx fs fresh;
           let fd = F.openf ~ctx fs Types.wronly fresh in
           let remaining = ref cfg.file_size in
           while !remaining > 0 do
             let n = min !remaining 65536 in
             ignore (F.append ~ctx fs fd (Bytes.make n 'w'));
             remaining := !remaining - n
           done;
           F.close ~ctx fs fd
         with Errno.Err (_, _) -> ());
        append_some ~ctx fs cfg (path_of cfg i);
        read_whole ~ctx fs cfg (path_of cfg (Rng.int rng cfg.files));
        (try F.unlink ~ctx fs fresh with Errno.Err (ENOENT, _) -> ());
        (try ignore (F.stat ~ctx fs (path_of cfg (Rng.int rng cfg.files)))
         with Errno.Err (ENOENT, _) -> ());
        9

  let run machine fs personality ~cfg ~loops_per_thread =
    populate fs cfg;
    Machine.reset machine;
    let ops = ref 0 in
    let op ctx seq =
      let rng = ctx.Machine.thr.Sthread.rng in
      let tid = ctx.Machine.thr.Sthread.tid in
      ops :=
        !ops
        + flowlet personality fs cfg ~ctx ~seq:((seq * cfg.threads) + tid) rng
    in
    let outcome =
      Engine.run_ops machine ~threads:cfg.threads
        ~ops_per_thread:loops_per_thread op
    in
    let seconds =
      Cost_model.seconds machine.Machine.cm outcome.Engine.makespan_cycles
    in
    {
      ops_per_s = (if seconds > 0.0 then float_of_int !ops /. seconds else 0.0);
      makespan_s = seconds;
      total_ops = !ops;
    }
end
