lib/workloads/fxmark.ml: Array Bytes Cost_model Engine Errno Fs_intf Machine Printf Rng Simurgh_fs_common Simurgh_sim Sthread Types
