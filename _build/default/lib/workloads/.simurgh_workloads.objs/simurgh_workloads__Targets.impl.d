lib/workloads/targets.ml: Fxmark Machine Simurgh_baselines Simurgh_core Simurgh_nvmm Simurgh_sim
