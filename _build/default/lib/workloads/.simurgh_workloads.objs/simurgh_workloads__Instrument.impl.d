lib/workloads/instrument.ml: Bytes Fs_intf Simurgh_fs_common Simurgh_sim
