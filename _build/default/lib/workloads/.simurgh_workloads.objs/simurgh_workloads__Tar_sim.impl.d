lib/workloads/tar_sim.ml: Bytes Cost_model Errno Fs_intf Linux_tree List Machine Simurgh_fs_common Simurgh_sim Sthread Types
