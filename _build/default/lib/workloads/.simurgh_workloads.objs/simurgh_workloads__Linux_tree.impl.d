lib/workloads/linux_tree.ml: Bytes Errno Fs_intf List Printf Queue Rng Simurgh_fs_common Simurgh_sim Types
