lib/workloads/ycsb.ml: Bytes Char Cost_model Engine Float Fs_intf Instrument Machine Printf Rng Simurgh_fs_common Simurgh_kvstore Simurgh_sim Sthread Zipf
