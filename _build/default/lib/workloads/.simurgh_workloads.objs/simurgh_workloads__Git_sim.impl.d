lib/workloads/git_sim.ml: Bytes Cost_model Errno Fs_intf Linux_tree List Machine Printf Simurgh_fs_common Simurgh_sim Sthread Types
