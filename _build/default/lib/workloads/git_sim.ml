(** git add / commit / reset benchmark (paper Section 5.4, Fig. 12).

    - [add]: read every working-tree file, hash it (CPU), write the
      compressed blob into .git/objects/xx/, update the index file.
    - [commit]: stat every tracked file (index freshness check — the
      phase the paper says dominates), write tree and commit objects.
    - [reset --hard]: the working tree was deleted between commit and
      reset (as in the paper's methodology); reset reads blobs back and
      recreates the working files.

    Single-threaded, like git itself for these operations. *)

open Simurgh_sim
open Simurgh_fs_common

type result = {
  add_s : float;
  commit_s : float;
  reset_s : float;
  files : int;
}

(* Rough deflate cost per byte on the paper's CPU (~60 MB/s/GHz). *)
let compress_cycles_per_byte = 12.0
let hash_cycles_per_byte = 3.0
let compressed_ratio = 0.38

module Make (F : Fs_intf.S) = struct
  let blob_path i = Printf.sprintf "/.git/objects/%02x/blob%06d" (i land 0xff) i

  let read_whole ~ctx fs path =
    let fd = F.openf ~ctx fs Types.rdonly path in
    let pos = ref 0 and total = ref 0 in
    let continue = ref true in
    while !continue do
      let b = F.pread ~ctx fs fd ~pos:!pos ~len:65536 in
      pos := !pos + Bytes.length b;
      total := !total + Bytes.length b;
      if Bytes.length b < 65536 then continue := false
    done;
    F.close ~ctx fs fd;
    !total

  let write_whole ~ctx fs path bytes =
    (try F.create_file ~ctx fs path with Errno.Err (EEXIST, _) -> ());
    let fd = F.openf ~ctx fs Types.wronly path in
    let remaining = ref bytes in
    while !remaining > 0 do
      let n = min !remaining 65536 in
      ignore (F.append ~ctx fs fd (Bytes.make n 'o'));
      remaining := !remaining - n
    done;
    F.close ~ctx fs fd

  let setup_git fs =
    (try F.mkdir fs "/.git" with Errno.Err (EEXIST, _) -> ());
    (try F.mkdir fs "/.git/objects" with Errno.Err (EEXIST, _) -> ());
    for x = 0 to 255 do
      try F.mkdir fs (Printf.sprintf "/.git/objects/%02x" x)
      with Errno.Err (EEXIST, _) -> ()
    done

  (* Phases share one continuous virtual timeline (lock and device state
     carries over, as on real hardware); each returns its duration. *)
  let timed_phase machine thr f =
    let ctx = Machine.ctx machine thr in
    let t0 = thr.Sthread.now in
    f ctx;
    Cost_model.seconds machine.Machine.cm (thr.Sthread.now -. t0)

  let add machine thr fs files =
    timed_phase machine thr (fun ctx ->
        List.iteri
          (fun i { Linux_tree.path; size = _ } ->
            let sz = read_whole ~ctx fs path in
            Machine.cpu ctx
              (float_of_int sz
              *. (hash_cycles_per_byte +. compress_cycles_per_byte));
            write_whole ~ctx fs (blob_path i)
              (max 64 (int_of_float (float_of_int sz *. compressed_ratio))))
          files;
        (* index update: one write of ~64 B per entry *)
        write_whole ~ctx fs "/.git/index" (64 * List.length files))

  let commit machine thr fs files =
    timed_phase machine thr (fun ctx ->
        List.iter
          (fun { Linux_tree.path; size = _ } ->
            (* index entry comparison + tree building (git-side work) *)
            Machine.cpu ctx 900.0;
            (* index freshness check: lstat per tracked file *)
            try ignore (F.stat ~ctx fs path) with Errno.Err (ENOENT, _) -> ())
          files;
        ignore (read_whole ~ctx fs "/.git/index");
        (* tree objects (~1 per 16 files) + the commit object *)
        for i = 0 to List.length files / 16 do
          write_whole ~ctx fs (Printf.sprintf "/.git/objects/ff/tree%05d" i) 1024
        done;
        write_whole ~ctx fs "/.git/objects/ff/commit" 256)

  let delete_working_tree fs files =
    List.iter
      (fun { Linux_tree.path; size = _ } ->
        try F.unlink fs path with Errno.Err (ENOENT, _) -> ())
      files

  let reset_hard machine thr fs files =
    timed_phase machine thr (fun ctx ->
        List.iteri
          (fun i { Linux_tree.path; size } ->
            let csz = read_whole ~ctx fs (blob_path i) in
            Machine.cpu ctx
              (float_of_int csz *. compress_cycles_per_byte /. 2.0
              (* inflate *));
            write_whole ~ctx fs path size)
          files)

  let run machine fs (dirs, files) =
    ignore dirs;
    setup_git fs;
    let thr = Sthread.create 0 in
    let add_s = add machine thr fs files in
    let commit_s = commit machine thr fs files in
    (* working tree deleted between commit and reset (paper methodology) *)
    delete_working_tree fs files;
    let reset_s = reset_hard machine thr fs files in
    { add_s; commit_s; reset_s; files = List.length files }
end
