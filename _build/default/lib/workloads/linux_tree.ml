(** Deterministic generator of a Linux-source-tree-like file population
    for the tar, git and recovery experiments (the paper uses the
    linux-5.6.14 sources: ~67k files, ~4.5k directories, mostly small C
    files with a long tail).

    The generated tree has a configurable number of files; directory
    fan-out and file-size distribution (log-normal-ish around 10 KiB,
    capped) loosely follow a kernel tree's statistics. *)

open Simurgh_sim
open Simurgh_fs_common

type spec = { files : int; subdirs_per_dir : int; files_per_dir : int }

let default = { files = 4000; subdirs_per_dir = 8; files_per_dir = 16 }

type entry = { path : string; size : int }

(* Sample a file size: ~85% small (0.5-16 KiB), long tail up to 512 KiB. *)
let sample_size rng =
  if Rng.int rng 100 < 85 then 512 + Rng.int rng (16 * 1024)
  else 16 * 1024 + Rng.int rng (496 * 1024)

(** Enumerate the tree (directories first, then files with sizes). *)
let generate ?(seed = 11L) spec =
  let rng = Rng.create seed in
  let dirs = ref [] in
  let files = ref [] in
  let remaining = ref spec.files in
  (* breadth-first directory construction until all files placed *)
  let queue = Queue.create () in
  Queue.push "/src" queue;
  dirs := [ "/src" ];
  while !remaining > 0 && not (Queue.is_empty queue) do
    let dir = Queue.pop queue in
    let nfiles = min !remaining (1 + Rng.int rng (2 * spec.files_per_dir)) in
    for i = 0 to nfiles - 1 do
      let ext = match Rng.int rng 10 with
        | 0 | 1 -> ".h"
        | 2 -> ".txt"
        | 3 -> ".S"
        | _ -> ".c"
      in
      files :=
        { path = Printf.sprintf "%s/f%04d%s" dir i ext;
          size = sample_size rng }
        :: !files;
      decr remaining
    done;
    if !remaining > 0 then
      for i = 0 to Rng.int rng spec.subdirs_per_dir do
        let d = Printf.sprintf "%s/d%02d" dir i in
        dirs := d :: !dirs;
        Queue.push d queue
      done
  done;
  (List.rev !dirs, List.rev !files)

(** Materialize the tree on a file system (untimed population). *)
module Make (F : Fs_intf.S) = struct
  let populate fs (dirs, files) =
    List.iter (fun d -> try F.mkdir fs d with Errno.Err (EEXIST, _) -> ()) dirs;
    let buf = Bytes.make 65536 'k' in
    List.iter
      (fun { path; size } ->
        F.create_file fs path;
        let fd = F.openf fs Types.wronly path in
        let remaining = ref size in
        while !remaining > 0 do
          let n = min !remaining (Bytes.length buf) in
          ignore (F.append fs fd (Bytes.sub buf 0 n));
          remaining := !remaining - n
        done;
        F.close fs fd)
      files

  let total_bytes (_, files) =
    List.fold_left (fun acc { size; _ } -> acc + size) 0 files
end
