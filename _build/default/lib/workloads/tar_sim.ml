(** tar pack/unpack benchmark (paper Section 5.4, Fig. 11).

    Pack walks the tree (readdir + stat + open/read per file) and appends
    512-byte-header-plus-data records to one archive file.  Unpack reads
    the archive sequentially and recreates directories and files,
    issuing the extra per-file attribute syscalls (chmod, utimes) the
    paper highlights.  Both phases are single-threaded, like tar. *)

open Simurgh_sim
open Simurgh_fs_common

type result = {
  seconds : float;
  files : int;
  bytes : int;
  throughput_mb_s : float;
}

module Make (F : Fs_intf.S) = struct
  module Tree = Linux_tree.Make (F)

  let header_size = 512

  let pack ?thr machine fs ~archive (dirs, files) =
    let thr = match thr with Some t -> t | None -> Sthread.create 0 in
    let ctx = Machine.ctx machine thr in
    let t0 = thr.Sthread.now in
    let total = ref 0 in
    F.create_file ~ctx fs archive;
    let out = F.openf ~ctx fs Types.wronly archive in
    (* directory walk: readdir on every directory *)
    List.iter (fun d -> ignore (F.readdir ~ctx fs d)) dirs;
    List.iter
      (fun { Linux_tree.path; size = _ } ->
        let st = F.stat ~ctx fs path in
        let fd = F.openf ~ctx fs Types.rdonly path in
        (* tar-side work: header formatting and block checksums *)
        Machine.cpu ctx (1200.0 +. (0.1 *. float_of_int st.Types.size));
        ignore (F.append ~ctx fs out (Bytes.make header_size 'h'));
        let pos = ref 0 in
        let continue = ref true in
        while !continue do
          let b = F.pread ~ctx fs fd ~pos:!pos ~len:65536 in
          if Bytes.length b = 0 then continue := false
          else begin
            ignore (F.append ~ctx fs out b);
            pos := !pos + Bytes.length b
          end
        done;
        F.close ~ctx fs fd;
        total := !total + st.Types.size + header_size)
      files;
    F.close ~ctx fs out;
    let seconds =
      Cost_model.seconds machine.Machine.cm (thr.Sthread.now -. t0)
    in
    {
      seconds;
      files = List.length files;
      bytes = !total;
      throughput_mb_s =
        (if seconds > 0.0 then float_of_int !total /. 1e6 /. seconds else 0.0);
    }

  let unpack ?thr machine fs ~archive (dirs, files) ~dst =
    let thr = match thr with Some t -> t | None -> Sthread.create 1 in
    let ctx = Machine.ctx machine thr in
    let t0 = thr.Sthread.now in
    let total = ref 0 in
    (* the paper notes tar reads the packed file via mmap: charged the
       same for every file system *)
    let src = F.openf ~ctx fs Types.rdonly archive in
    let archive_pos = ref 0 in
    F.mkdir ~ctx fs dst;
    List.iter
      (fun d ->
        let out_dir = dst ^ d in
        try F.mkdir ~ctx fs out_dir with Errno.Err (EEXIST, _) -> ())
      dirs;
    List.iter
      (fun { Linux_tree.path; size } ->
        (* header read + parse/validate *)
        ignore (F.pread ~ctx fs src ~pos:!archive_pos ~len:header_size);
        Machine.cpu ctx (800.0 +. (0.05 *. float_of_int size));
        archive_pos := !archive_pos + header_size;
        let out_path = dst ^ path in
        F.create_file ~ctx fs out_path;
        let fd = F.openf ~ctx fs Types.wronly out_path in
        let remaining = ref size in
        while !remaining > 0 do
          let n = min !remaining 65536 in
          let b = F.pread ~ctx fs src ~pos:!archive_pos ~len:n in
          ignore (F.append ~ctx fs fd b);
          archive_pos := !archive_pos + n;
          remaining := !remaining - n
        done;
        F.close ~ctx fs fd;
        (* attribute syscalls per extracted file (Section 5.4) *)
        F.chmod ~ctx fs out_path 0o644;
        F.utimes ~ctx fs out_path 0;
        total := !total + size)
      files;
    F.close ~ctx fs src;
    let seconds =
      Cost_model.seconds machine.Machine.cm (thr.Sthread.now -. t0)
    in
    {
      seconds;
      files = List.length files;
      bytes = !total;
      throughput_mb_s =
        (if seconds > 0.0 then float_of_int !total /. 1e6 /. seconds else 0.0);
    }
end
