(** In-memory sorted write buffer (LevelDB's memtable).  A balanced map
    plays the role of the skip list; mutations charge the comparable
    CPU work. *)

module M = Map.Make (String)

type t = {
  mutable map : string option M.t;  (** None = tombstone *)
  mutable bytes : int;
}

let create () = { map = M.empty; bytes = 0 }

let put t key value =
  t.map <- M.add key value t.map;
  t.bytes <- t.bytes + Record.encoded_size key value

let get t key = M.find_opt key t.map
let bytes t = t.bytes
let entries t = M.cardinal t.map
let is_empty t = M.is_empty t.map

(** Sorted bindings, smallest key first. *)
let bindings t = M.bindings t.map

let clear t =
  t.map <- M.empty;
  t.bytes <- 0
