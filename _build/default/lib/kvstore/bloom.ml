(** Blocked Bloom filter for SSTables: ~10 bits per key, k=6 probes,
    double hashing over a 64-bit base hash. *)

type t = { bits : Bytes.t; nbits : int }

(* FNV-1a, local so the kvstore stays independent of the FS libraries *)
let hash64 (s : string) =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let hash_pair key =
  let h = hash64 key in
  let h1 = Int64.to_int (Int64.shift_right_logical h 33) in
  let h2 = Int64.to_int (Int64.logand h 0x7fffffffL) lor 1 in
  (h1, h2)

let probes = 6

let create n_keys =
  let nbits = max 64 (n_keys * 10) in
  { bits = Bytes.make ((nbits + 7) / 8) '\000'; nbits }

let set_bit t i =
  let byte = i / 8 and bit = i mod 8 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl bit)))

let get_bit t i =
  let byte = i / 8 and bit = i mod 8 in
  Char.code (Bytes.get t.bits byte) land (1 lsl bit) <> 0

let add t key =
  let h1, h2 = hash_pair key in
  for k = 0 to probes - 1 do
    set_bit t (abs (h1 + (k * h2)) mod t.nbits)
  done

let mem t key =
  let h1, h2 = hash_pair key in
  let rec go k =
    k >= probes || (get_bit t (abs (h1 + (k * h2)) mod t.nbits) && go (k + 1))
  in
  go 0

let to_bytes t =
  let buf = Buffer.create (Bytes.length t.bits + 4) in
  Record.put_u32 buf t.nbits;
  Buffer.add_bytes buf t.bits;
  Buffer.to_bytes buf

let of_bytes b =
  let nbits = Record.get_u32 b 0 in
  { bits = Bytes.sub b 4 ((nbits + 7) / 8); nbits }
