(** Immutable sorted string table stored as one file on the underlying
    file system.

    On-file layout:
    {v
      [records ...]                 length-prefixed, key-sorted
      [bloom filter]
      [sparse index]                every 16th key: (key, file offset)
      footer: records_len u32, bloom_len u32, index_len u32, count u32
    v}

    Point reads probe the bloom filter, binary-search the sparse index
    (both cached in DRAM after the table is opened, as LevelDB caches
    index and filter blocks) and then read one record run with [pread]. *)

module type FS = Simurgh_fs_common.Fs_intf.S

type meta = {
  path : string;
  count : int;
  bloom : Bloom.t;
  index : (string * int) array;  (** sparse: key -> record offset *)
  records_len : int;
  smallest : string;
  largest : string;
}

let index_stride = 16
let footer_size = 16

module Make (F : FS) = struct
  (** Write [bindings] (sorted, tombstones included) to [path]. *)
  let write ?ctx fs path bindings =
    let buf = Buffer.create 4096 in
    let n = List.length bindings in
    let bloom = Bloom.create (max 1 n) in
    let index = ref [] in
    List.iteri
      (fun i (k, v) ->
        if i mod index_stride = 0 then index := (k, Buffer.length buf) :: !index;
        Bloom.add bloom k;
        Record.encode buf k v)
      bindings;
    let records_len = Buffer.length buf in
    let bloom_bytes = Bloom.to_bytes bloom in
    Buffer.add_bytes buf bloom_bytes;
    let index_buf = Buffer.create 256 in
    List.iter
      (fun (k, off) ->
        Record.put_u32 index_buf (String.length k);
        Buffer.add_string index_buf k;
        Record.put_u32 index_buf off)
      (List.rev !index);
    Buffer.add_buffer buf index_buf;
    Record.put_u32 buf records_len;
    Record.put_u32 buf (Bytes.length bloom_bytes);
    Record.put_u32 buf (Buffer.length index_buf);
    Record.put_u32 buf n;
    let fd = F.openf ?ctx fs (Simurgh_fs_common.Types.creat Simurgh_fs_common.Types.wronly) path in
    let data = Buffer.to_bytes buf in
    ignore (F.append ?ctx fs fd data);
    F.fsync ?ctx fs fd;
    F.close ?ctx fs fd;
    let smallest = match bindings with (k, _) :: _ -> k | [] -> "" in
    let largest =
      match List.rev bindings with (k, _) :: _ -> k | [] -> ""
    in
    {
      path;
      count = n;
      bloom;
      index = Array.of_list (List.rev !index);
      records_len;
      smallest;
      largest;
    }

  (** Re-open an existing table: read footer, bloom and index. *)
  let open_ ?ctx fs path =
    let st = F.stat ?ctx fs path in
    let size = st.Simurgh_fs_common.Types.size in
    let fd = F.openf ?ctx fs Simurgh_fs_common.Types.rdonly path in
    let footer = F.pread ?ctx fs fd ~pos:(size - footer_size) ~len:footer_size in
    let records_len = Record.get_u32 footer 0 in
    let bloom_len = Record.get_u32 footer 4 in
    let index_len = Record.get_u32 footer 8 in
    let count = Record.get_u32 footer 12 in
    let bloom_bytes = F.pread ?ctx fs fd ~pos:records_len ~len:bloom_len in
    let index_bytes =
      F.pread ?ctx fs fd ~pos:(records_len + bloom_len) ~len:index_len
    in
    F.close ?ctx fs fd;
    let index = ref [] in
    let off = ref 0 in
    while !off < index_len do
      let klen = Record.get_u32 index_bytes !off in
      let k = Bytes.sub_string index_bytes (!off + 4) klen in
      let recoff = Record.get_u32 index_bytes (!off + 4 + klen) in
      index := (k, recoff) :: !index;
      off := !off + 8 + klen
    done;
    let index = Array.of_list (List.rev !index) in
    let smallest = if Array.length index > 0 then fst index.(0) else "" in
    {
      path;
      count;
      bloom = Bloom.of_bytes bloom_bytes;
      index;
      records_len;
      smallest;
      largest = "";
    }

  (* Largest index entry with key <= [key]. *)
  let index_floor meta key =
    let lo = ref 0 and hi = ref (Array.length meta.index - 1) in
    if !hi < 0 || fst meta.index.(0) > key then None
    else begin
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if fst meta.index.(mid) <= key then lo := mid else hi := mid - 1
      done;
      Some (snd meta.index.(!lo))
    end

  (** Point lookup through an already-open table handle (the database
      keeps a table cache, like LevelDB).  Returns [None] if the key is
      certainly absent, [Some None] for a tombstone, [Some (Some v)] for
      a live value. *)
  let get ?ctx fs ~fd meta key =
    if not (Bloom.mem meta.bloom key) then None
    else
      match index_floor meta key with
      | None -> None
      | Some start ->
          (* one index stride worth of records covers the key if present *)
          let stop = min meta.records_len (start + 4096) in
          let chunk = F.pread ?ctx fs fd ~pos:start ~len:(stop - start) in
          let res = ref None in
          let off = ref 0 in
          (try
             while !off + 8 <= Bytes.length chunk do
               let k, v, next = Record.decode chunk !off in
               if k = key then begin
                 res := Some v;
                 raise Exit
               end
               else if k > key then raise Exit;
               off := next
             done
           with Exit | Invalid_argument _ -> ());
          !res

  (** Stream every record (for compaction). *)
  let iter ?ctx fs meta f =
    let fd = F.openf ?ctx fs Simurgh_fs_common.Types.rdonly meta.path in
    let data = F.pread ?ctx fs fd ~pos:0 ~len:meta.records_len in
    F.close ?ctx fs fd;
    let off = ref 0 in
    let remaining = ref meta.count in
    while !remaining > 0 && !off < Bytes.length data do
      let k, v, next = Record.decode data !off in
      f k v;
      off := next;
      decr remaining
    done

  (** Stream records starting near [start_key], reading at most
      [byte_budget] bytes through the open handle (range scans). *)
  let iter_from ?ctx fs ~fd meta ~start_key ~byte_budget f =
    let start = match index_floor meta start_key with
      | Some s -> s
      | None -> 0
    in
    let stop = min meta.records_len (start + byte_budget) in
    if stop > start then begin
      let data = F.pread ?ctx fs fd ~pos:start ~len:(stop - start) in
      let off = ref 0 in
      (try
         while !off + 8 <= Bytes.length data do
           let k, v, next = Record.decode data !off in
           if k >= start_key then f k v;
           off := next
         done
       with Invalid_argument _ -> ())
    end
end
