(** Wire format shared by the WAL and the SSTables: length-prefixed
    key/value pairs.  A value length of 0xffffffff marks a tombstone. *)

let tombstone_len = 0xffffffff

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let get_u32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

(** Append one record; [None] value encodes a deletion. *)
let encode buf key value =
  put_u32 buf (String.length key);
  (match value with
  | Some v -> put_u32 buf (String.length v)
  | None -> put_u32 buf tombstone_len);
  Buffer.add_string buf key;
  match value with Some v -> Buffer.add_string buf v | None -> ()

(** Decode the record at [off]; returns (key, value option, next_off). *)
let decode b off =
  let klen = get_u32 b off in
  let vlen = get_u32 b (off + 4) in
  let key = Bytes.sub_string b (off + 8) klen in
  if vlen = tombstone_len then (key, None, off + 8 + klen)
  else
    let v = Bytes.sub_string b (off + 8 + klen) vlen in
    (key, Some v, off + 8 + klen + vlen)

let encoded_size key value =
  8 + String.length key
  + match value with Some v -> String.length v | None -> 0
