lib/kvstore/bloom.ml: Buffer Bytes Char Int64 Record String
