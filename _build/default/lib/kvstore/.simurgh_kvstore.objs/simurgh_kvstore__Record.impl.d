lib/kvstore/record.ml: Buffer Bytes Char String
