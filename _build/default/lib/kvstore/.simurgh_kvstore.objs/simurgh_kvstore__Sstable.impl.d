lib/kvstore/sstable.ml: Array Bloom Buffer Bytes List Record Simurgh_fs_common String
