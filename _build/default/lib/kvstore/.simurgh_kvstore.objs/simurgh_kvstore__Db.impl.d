lib/kvstore/db.ml: Buffer Bytes Hashtbl List Memtable Printf Record Simurgh_fs_common Simurgh_sim Sstable
