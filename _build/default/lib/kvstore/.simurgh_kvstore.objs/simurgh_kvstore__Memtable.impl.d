lib/kvstore/memtable.ml: Map Record String
