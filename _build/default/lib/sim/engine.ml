(** Deterministic discrete-event execution of simulated threads.

    The engine always steps the thread with the smallest virtual clock,
    so every interaction through virtual locks and bandwidth servers is
    causally ordered: no thread can observe an event "from the future".
    With at most tens of threads a linear scan beats a heap. *)

type outcome = {
  makespan_cycles : float;  (** max end time over all threads *)
  total_ops : int;
  threads : Sthread.t array;
}

(** [run threads step] repeatedly calls [step thr] on the minimum-time
    live thread; [step] performs one unit of work, advances the thread's
    clock and returns [false] when the thread has no more work. *)
let run (threads : Sthread.t array) (step : Sthread.t -> bool) =
  let n = Array.length threads in
  let alive = Array.make n true in
  let remaining = ref n in
  while !remaining > 0 do
    let best = ref (-1) in
    for i = 0 to n - 1 do
      if
        alive.(i)
        && (!best < 0
           || threads.(i).Sthread.now < threads.(!best).Sthread.now)
      then best := i
    done;
    let i = !best in
    if not (step threads.(i)) then begin
      alive.(i) <- false;
      decr remaining
    end
  done;
  let makespan =
    Array.fold_left (fun acc t -> max acc t.Sthread.now) 0.0 threads
  in
  let total_ops = Array.fold_left (fun acc t -> acc + t.Sthread.ops) 0 threads in
  { makespan_cycles = makespan; total_ops; threads }

(** Convenience: [n] threads each performing [ops_per_thread] calls of
    [f ctx op_index]; returns the outcome.  Thread RNGs derive from
    [seed]. *)
let run_ops ?(seed = 42L) machine ~threads:n ~ops_per_thread f =
  let threads = Array.init n (fun i -> Sthread.create ~seed i) in
  let progress = Array.make n 0 in
  let step thr =
    let i = thr.Sthread.tid in
    if progress.(i) >= ops_per_thread then false
    else begin
      let ctx = Machine.ctx machine thr in
      f ctx progress.(i);
      progress.(i) <- progress.(i) + 1;
      thr.Sthread.ops <- thr.Sthread.ops + 1;
      true
    end
  in
  run threads step

(** Aggregate throughput in operations per second of real (modeled) time. *)
let throughput machine (o : outcome) =
  if o.makespan_cycles <= 0.0 then 0.0
  else
    float_of_int o.total_ops
    /. Cost_model.seconds machine.Machine.cm o.makespan_cycles
