(** Small numeric helpers for benchmark reporting. *)

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.0
  else
    let m = mean a in
    let acc = Array.fold_left (fun s x -> s +. ((x -. m) ** 2.0)) 0.0 a in
    sqrt (acc /. float_of_int (n - 1))

let percentile a p =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy a in
    Array.sort compare sorted;
    let idx = int_of_float (p /. 100.0 *. float_of_int (n - 1)) in
    sorted.(idx)
  end

let min_max a =
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (infinity, neg_infinity) a

(** Format ops/s with a unit suffix, e.g. [1.23 Mops/s]. *)
let pp_rate ppf r =
  if r >= 1e6 then Fmt.pf ppf "%.2f Mops/s" (r /. 1e6)
  else if r >= 1e3 then Fmt.pf ppf "%.2f Kops/s" (r /. 1e3)
  else Fmt.pf ppf "%.2f ops/s" r

let pp_bytes_rate ppf r =
  if r >= 1e9 then Fmt.pf ppf "%.2f GB/s" (r /. 1e9)
  else if r >= 1e6 then Fmt.pf ppf "%.2f MB/s" (r /. 1e6)
  else Fmt.pf ppf "%.2f KB/s" (r /. 1e3)
