(** A simulated thread: an id, a private virtual clock and a private
    deterministic RNG stream. *)

type t = {
  tid : int;
  mutable now : float;  (** virtual time, cycles *)
  rng : Rng.t;
  mutable ops : int;  (** operations completed, for throughput reports *)
}

let create ?(seed = 42L) tid =
  { tid; now = 0.0; rng = Rng.split (Rng.create seed) tid; ops = 0 }

let advance t cycles = t.now <- t.now +. cycles

(** Move the clock forward to [at] if it is in the future (waiting). *)
let wait_until t at = if at > t.now then t.now <- at
