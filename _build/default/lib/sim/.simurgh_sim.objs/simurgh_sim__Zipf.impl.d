lib/sim/zipf.ml: Int64 Rng
