lib/sim/engine.ml: Array Cost_model Machine Sthread
