lib/sim/sthread.ml: Rng
