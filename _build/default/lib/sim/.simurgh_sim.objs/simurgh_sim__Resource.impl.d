lib/sim/resource.ml:
