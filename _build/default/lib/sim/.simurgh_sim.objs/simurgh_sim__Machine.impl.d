lib/sim/machine.ml: Cost_model Resource Sthread
