lib/sim/vlock.ml: Cost_model Float Hashtbl Machine Resource Sthread
