(** Deterministic pseudo-random number generator (splitmix64).

    Every simulated thread and workload owns its own generator seeded from
    the experiment seed and the thread id, so runs are bit-reproducible
    regardless of scheduling. *)

type t = { mutable state : int64 }

let create seed = { state = seed }

(** Derive an independent stream, e.g. one per simulated thread. *)
let split t stream =
  let golden = 0x9E3779B97F4A7C15L in
  { state = Int64.add t.state (Int64.mul golden (Int64.of_int (stream + 1))) }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** Uniform integer in [0, bound). [bound] must be positive. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's 63-bit signed int *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

(** Uniform float in [0, 1). *)
let float t =
  let v = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Fisher-Yates shuffle of an array, in place. *)
let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
