lib/vfs/dcache.ml: Cost_model Hashtbl Machine Resource Simurgh_sim Sthread Vlock
