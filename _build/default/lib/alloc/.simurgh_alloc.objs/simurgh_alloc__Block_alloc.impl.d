lib/alloc/block_alloc.ml: Array List Printexc Printf Region Simurgh_nvmm Simurgh_sim
