lib/alloc/ctx_util.ml: Simurgh_sim
