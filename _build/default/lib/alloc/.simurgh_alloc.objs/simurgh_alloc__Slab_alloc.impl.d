lib/alloc/slab_alloc.ml: Block_alloc Ctx_util Queue Region Simurgh_nvmm Simurgh_sim
