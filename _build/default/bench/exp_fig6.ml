(** Fig. 6: read bandwidth of the original (cache-hot) vs. adapted
    (pseudo-random, cache-cold) FxMark DRBL benchmark for Simurgh and
    NOVA, against the NVMM maximum bandwidth. *)

open Simurgh_workloads

let run ~scale =
  let ops = Util.scaled ~scale 3000 in
  Util.header "fig6: FxMark DRBL read bandwidth, original vs adapted (GB/s)";
  Util.print_thread_header ();
  let cm = Simurgh_sim.Cost_model.default in
  let max_bw_gb =
    cm.Simurgh_sim.Cost_model.nvmm_read_bw *. cm.Simurgh_sim.Cost_model.freq_hz
    /. 1e9
  in
  let targets = [ Targets.simurgh (); Targets.nova () ] in
  List.iter
    (fun (t : Targets.target) ->
      List.iter
        (fun cache_hot ->
          Util.row_header
            (Printf.sprintf "%s %s" t.Targets.name
               (if cache_hot then "orig" else "adapted"));
          List.iter
            (fun threads ->
              let r =
                t.Targets.run_fx ~threads ~ops
                  (Fxmark.Read_private { cache_hot })
              in
              Printf.printf " %9.2f" (r.Fxmark.bandwidth /. 1e9))
            Util.thread_counts;
          print_newline ())
        [ true; false ])
    targets;
  Printf.printf "%-18s %9.2f GB/s (model constant)\n" "max NVMM bw" max_bw_gb;
  Printf.printf
    "expected shape: 'orig' exceeds the NVMM line (cache hits); 'adapted' \
     saturates at it\n"
