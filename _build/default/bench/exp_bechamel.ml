(** Wall-clock microbenchmarks of the real data-structure hot paths,
    using Bechamel.  These complement the virtual-time experiments: they
    measure what this implementation actually costs on the host CPU
    (directory hash operations, slab allocation, path resolution,
    Zipfian sampling). *)

open Bechamel
open Toolkit

let make_fs () =
  let region = Simurgh_nvmm.Region.create (64 * 1024 * 1024) in
  let fs = Simurgh_core.Fs.mkfs ~euid:0 region in
  Simurgh_core.Fs.mkdir fs "/d";
  for i = 0 to 999 do
    Simurgh_core.Fs.create_file fs (Printf.sprintf "/d/f%d" i)
  done;
  fs

let benches () =
  let fs = make_fs () in
  let counter = ref 0 in
  let create =
    Test.make ~name:"simurgh/create+unlink"
      (Staged.stage (fun () ->
           incr counter;
           let p = Printf.sprintf "/d/tmp%d" !counter in
           Simurgh_core.Fs.create_file fs p;
           Simurgh_core.Fs.unlink fs p))
  in
  let lookup =
    Test.make ~name:"simurgh/stat"
      (Staged.stage (fun () ->
           ignore (Simurgh_core.Fs.stat fs "/d/f500")))
  in
  let region = Simurgh_nvmm.Region.create (32 * 1024 * 1024) in
  let layout = Simurgh_core.Layout.format region ~cores:10 in
  let slab = layout.Simurgh_core.Layout.inode_slab in
  let slab_bench =
    Test.make ~name:"slab/alloc+free"
      (Staged.stage (fun () ->
           match Simurgh_alloc.Slab_alloc.alloc slab with
           | Some p -> Simurgh_alloc.Slab_alloc.free slab p
           | None -> assert false))
  in
  let rng = Simurgh_sim.Rng.create 1L in
  let zipf = Simurgh_sim.Zipf.create 100000 in
  let zipf_bench =
    Test.make ~name:"zipf/sample"
      (Staged.stage (fun () ->
           ignore (Simurgh_sim.Zipf.sample_scrambled zipf rng)))
  in
  [ create; lookup; slab_bench; zipf_bench ]

let run ~scale:_ =
  Util.header "bechamel: wall-clock hot paths (host CPU)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let suite = Test.make_grouped ~name:"hotpaths" (benches ()) in
  let raw = Benchmark.all cfg instances suite in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-32s %10.1f ns/op\n" name est
      | Some _ | None -> Printf.printf "%-32s (no estimate)\n" name)
    results
