bench/exp_fig11.ml: Linux_tree List Printf Simurgh_baselines Simurgh_core Simurgh_sim Simurgh_workloads Tar_sim Targets Util
