bench/util.ml: List Printf
