bench/exp_bechamel.ml: Analyze Bechamel Benchmark Hashtbl Instance Measure Printf Simurgh_alloc Simurgh_core Simurgh_nvmm Simurgh_sim Staged Test Time Toolkit Util
