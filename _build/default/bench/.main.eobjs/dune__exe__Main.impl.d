bench/main.ml: Array Exp_ablation Exp_bechamel Exp_fig10 Exp_fig11 Exp_fig12 Exp_fig6 Exp_fig7 Exp_fig8 Exp_fig9 Exp_sec33 Exp_sec55 Exp_tab1 List Printf String Sys
