bench/exp_tab1.ml: Float Git_sim Instrument Linux_tree Printf Simurgh_baselines Simurgh_sim Simurgh_workloads Tar_sim Util Ycsb
