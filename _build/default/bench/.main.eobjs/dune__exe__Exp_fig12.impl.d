bench/exp_fig12.ml: Git_sim Linux_tree List Printf Simurgh_baselines Simurgh_core Simurgh_sim Simurgh_workloads Targets Util
