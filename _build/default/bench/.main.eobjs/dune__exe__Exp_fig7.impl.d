bench/exp_fig7.ml: Fxmark List Printf Simurgh_workloads Targets Util
