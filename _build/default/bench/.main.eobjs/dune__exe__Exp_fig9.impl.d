bench/exp_fig9.ml: List Printf Simurgh_baselines Simurgh_core Simurgh_sim Simurgh_workloads Targets Util Ycsb
