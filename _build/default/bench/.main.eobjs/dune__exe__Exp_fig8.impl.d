bench/exp_fig8.ml: Filebench List Printf Simurgh_baselines Simurgh_core Simurgh_sim Simurgh_workloads Targets Util
