bench/exp_sec33.ml: Gem5 List Printf Simurgh_hw Util
