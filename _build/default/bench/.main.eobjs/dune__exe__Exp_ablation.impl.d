bench/exp_ablation.ml: Fxmark List Printf Simurgh_core Simurgh_nvmm Simurgh_sim Simurgh_workloads Util
