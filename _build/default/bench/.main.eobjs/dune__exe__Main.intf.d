bench/main.mli:
