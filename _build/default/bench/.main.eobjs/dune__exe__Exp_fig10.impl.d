bench/exp_fig10.ml: List Printf Simurgh_core Simurgh_sim Simurgh_workloads Targets Util Ycsb
