bench/exp_sec55.ml: Float Fmt Linux_tree Printf Simurgh_alloc Simurgh_core Simurgh_nvmm Simurgh_workloads Sys Util
