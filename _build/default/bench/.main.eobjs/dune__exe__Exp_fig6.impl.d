bench/exp_fig6.ml: Fxmark List Printf Simurgh_sim Simurgh_workloads Targets Util
