(** Section 3.3: cycle counts of jmpp/pret vs. call/ret vs. syscall,
    measured on the gem5-lite micro-op simulator, broken down by
    execution block as in the paper's artifact. *)

open Simurgh_hw

let run ~scale:_ =
  Util.header "sec33: protected-function cycle counts (gem5-lite)";
  List.iter
    (fun seq ->
      let total_cycles, warm = Gem5.measure ~iterations:100 seq in
      Printf.printf "%-28s %5d cycles/iteration  (100 iters: %d cycles)\n"
        seq.Gem5.mnemonic warm total_cycles;
      List.iter
        (fun (name, c) -> Printf.printf "    %-52s %4d\n" name c)
        (Gem5.report seq))
    Gem5.all;
  let call = Gem5.total Gem5.call_ret in
  let jmpp = Gem5.total Gem5.jmpp_pret in
  let sys_hw = Gem5.total Gem5.syscall_hw in
  let sys_gem5 = Gem5.total Gem5.syscall_gem5 in
  Printf.printf
    "\nsummary: call/ret %d, jmpp/pret %d (surcharge %+d), empty syscall \
     (gem5) %d, geteuid (real HW) %d -> jmpp is %.1fx faster than the real \
     syscall\n"
    call jmpp (jmpp - call) sys_gem5 sys_hw
    (float_of_int sys_hw /. float_of_int jmpp);
  Printf.printf
    "paper:   call/ret ~24, jmpp/pret ~70 (+46), syscall ~1200 (gem5) / \
     ~400 (HW); jmpp ~6x faster than syscall\n"
