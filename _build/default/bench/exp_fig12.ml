(** Fig. 12: git add / commit / reset throughput (files per second) on a
    Linux-like source tree, for every file system. *)

open Simurgh_workloads

module G_simurgh = Git_sim.Make (Simurgh_core.Fs)
module G_nova = Git_sim.Make (Simurgh_baselines.Nova)
module G_pmfs = Git_sim.Make (Simurgh_baselines.Pmfs)
module G_ext4 = Git_sim.Make (Simurgh_baselines.Ext4dax)
module G_splitfs = Git_sim.Make (Simurgh_baselines.Splitfs)
module Tree_s = Linux_tree.Make (Simurgh_core.Fs)
module Tree_n = Linux_tree.Make (Simurgh_baselines.Nova)
module Tree_p = Linux_tree.Make (Simurgh_baselines.Pmfs)
module Tree_e = Linux_tree.Make (Simurgh_baselines.Ext4dax)
module Tree_sp = Linux_tree.Make (Simurgh_baselines.Splitfs)

let print_result name (r : Git_sim.result) =
  let per_s s = if s > 0.0 then float_of_int r.Git_sim.files /. s else 0.0 in
  Printf.printf "%-12s %10.0f %10.0f %10.0f\n" name
    (per_s r.Git_sim.add_s) (per_s r.Git_sim.commit_s)
    (per_s r.Git_sim.reset_s)

let run ~scale =
  let tree =
    Linux_tree.generate
      { Linux_tree.default with Linux_tree.files = Util.scaled ~scale 1500 }
  in
  Util.header
    (Printf.sprintf "fig12: git add/commit/reset (files/s; %d files)"
       (List.length (snd tree)));
  Printf.printf "%-12s %10s %10s %10s\n" "" "add" "commit" "reset";
  (let fs = Targets.fresh_simurgh ~region_mb:768 () in
   Tree_s.populate fs tree;
   print_result "Simurgh" (G_simurgh.run (Simurgh_sim.Machine.create ()) fs tree));
  (let fs = Simurgh_baselines.Nova.create () in
   Tree_n.populate fs tree;
   print_result "NOVA" (G_nova.run (Simurgh_sim.Machine.create ()) fs tree));
  (let fs = Simurgh_baselines.Splitfs.create () in
   Tree_sp.populate fs tree;
   print_result "SplitFS" (G_splitfs.run (Simurgh_sim.Machine.create ()) fs tree));
  (let fs = Simurgh_baselines.Pmfs.create () in
   Tree_p.populate fs tree;
   print_result "PMFS" (G_pmfs.run (Simurgh_sim.Machine.create ()) fs tree));
  (let fs = Simurgh_baselines.Ext4dax.create () in
   Tree_e.populate fs tree;
   print_result "EXT4-DAX" (G_ext4.run (Simurgh_sim.Machine.create ()) fs tree));
  Printf.printf
    "paper shape: add/reset dominated by application work (all similar); \
     commit is stat-heavy, Simurgh ~1.5x PMFS, PMFS best of the kernel FSes\n"
