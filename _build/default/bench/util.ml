(** Shared helpers for the experiment harness. *)

let thread_counts = [ 1; 2; 4; 7; 10 ]

let header title =
  Printf.printf "\n=== %s ===\n" title

let row_header name = Printf.printf "%-18s" name

let print_series fmt values =
  List.iter (fun v -> Printf.printf fmt v) values;
  print_newline ()

let print_thread_header () =
  Printf.printf "%-18s" "threads";
  List.iter (fun t -> Printf.printf " %9d" t) thread_counts;
  print_newline ()

(** ops per thread scaled by the experiment scale factor. *)
let scaled ~scale base = max 64 (int_of_float (float_of_int base *. scale))

let kops v = v /. 1000.0
let mops v = v /. 1.0e6

let pp_breakdown name (app, copy, fs) =
  Printf.printf "%-12s  app %5.1f%%   data-copy %5.1f%%   file-system %5.1f%%\n"
    name (100.0 *. app) (100.0 *. copy) (100.0 *. fs)
