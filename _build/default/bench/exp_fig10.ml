(** Fig. 10: YCSB execution-time breakdown (application / data copy /
    file system) for Simurgh — the paper's point is that Simurgh's FS
    share stays below ~10%, so further FS optimization cannot buy much. *)

open Simurgh_workloads
module Y = Ycsb
module Y_simurgh = Y.Make (Simurgh_core.Fs)

let run ~scale =
  let records = Util.scaled ~scale 8000 in
  let ops = Util.scaled ~scale 8000 in
  Util.header "fig10: YCSB execution-time breakdown for Simurgh";
  List.iter
    (fun w ->
      let fs = Targets.fresh_simurgh ~region_mb:512 () in
      let m = Simurgh_sim.Machine.create () in
      let r = Y_simurgh.run m fs w ~records ~ops ~threads:1 in
      Util.pp_breakdown (Y.name w) (r.Y.app_frac, r.Y.copy_frac, r.Y.fs_frac))
    Y.all;
  Printf.printf
    "paper shape: Simurgh's file-system share is below ~10%% in every \
     workload\n"
