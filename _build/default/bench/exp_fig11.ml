(** Fig. 11: tar pack / unpack of a Linux-like source tree on every file
    system (throughput in MB/s of archive payload). *)

open Simurgh_workloads

module T_simurgh = Tar_sim.Make (Simurgh_core.Fs)
module T_nova = Tar_sim.Make (Simurgh_baselines.Nova)
module T_pmfs = Tar_sim.Make (Simurgh_baselines.Pmfs)
module T_ext4 = Tar_sim.Make (Simurgh_baselines.Ext4dax)
module T_splitfs = Tar_sim.Make (Simurgh_baselines.Splitfs)
module Tree_s = Linux_tree.Make (Simurgh_core.Fs)
module Tree_n = Linux_tree.Make (Simurgh_baselines.Nova)
module Tree_p = Linux_tree.Make (Simurgh_baselines.Pmfs)
module Tree_e = Linux_tree.Make (Simurgh_baselines.Ext4dax)
module Tree_sp = Linux_tree.Make (Simurgh_baselines.Splitfs)

let run ~scale =
  let tree =
    Linux_tree.generate
      { Linux_tree.default with Linux_tree.files = Util.scaled ~scale 1500 }
  in
  Util.header
    (Printf.sprintf "fig11: tar pack/unpack (MB/s; %d files, %.1f MB)"
       (List.length (snd tree))
       (float_of_int (Tree_s.total_bytes tree) /. 1e6));
  Printf.printf "%-12s %10s %10s\n" "" "pack" "unpack";
  let run_one name populate pack unpack =
    let pack_r, unpack_r = pack (), unpack () in
    ignore populate;
    Printf.printf "%-12s %10.1f %10.1f\n" name pack_r unpack_r
  in
  (* Simurgh *)
  (let fs = Targets.fresh_simurgh ~region_mb:768 () in
   Tree_s.populate fs tree;
   let m = Simurgh_sim.Machine.create () in
   let thr = Simurgh_sim.Sthread.create 0 in
   let p = T_simurgh.pack ~thr m fs ~archive:"/a.tar" tree in
   let u = T_simurgh.unpack ~thr m fs ~archive:"/a.tar" tree ~dst:"/out" in
   run_one "Simurgh" ()
     (fun () -> p.Tar_sim.throughput_mb_s)
     (fun () -> u.Tar_sim.throughput_mb_s));
  (let fs = Simurgh_baselines.Nova.create () in
   Tree_n.populate fs tree;
   let m = Simurgh_sim.Machine.create () in
   let thr = Simurgh_sim.Sthread.create 0 in
   let p = T_nova.pack ~thr m fs ~archive:"/a.tar" tree in
   let u = T_nova.unpack ~thr m fs ~archive:"/a.tar" tree ~dst:"/out" in
   run_one "NOVA" ()
     (fun () -> p.Tar_sim.throughput_mb_s)
     (fun () -> u.Tar_sim.throughput_mb_s));
  (let fs = Simurgh_baselines.Splitfs.create () in
   Tree_sp.populate fs tree;
   let m = Simurgh_sim.Machine.create () in
   let thr = Simurgh_sim.Sthread.create 0 in
   let p = T_splitfs.pack ~thr m fs ~archive:"/a.tar" tree in
   let u = T_splitfs.unpack ~thr m fs ~archive:"/a.tar" tree ~dst:"/out" in
   run_one "SplitFS" ()
     (fun () -> p.Tar_sim.throughput_mb_s)
     (fun () -> u.Tar_sim.throughput_mb_s));
  (let fs = Simurgh_baselines.Pmfs.create () in
   Tree_p.populate fs tree;
   let m = Simurgh_sim.Machine.create () in
   let thr = Simurgh_sim.Sthread.create 0 in
   let p = T_pmfs.pack ~thr m fs ~archive:"/a.tar" tree in
   let u = T_pmfs.unpack ~thr m fs ~archive:"/a.tar" tree ~dst:"/out" in
   run_one "PMFS" ()
     (fun () -> p.Tar_sim.throughput_mb_s)
     (fun () -> u.Tar_sim.throughput_mb_s));
  (let fs = Simurgh_baselines.Ext4dax.create () in
   Tree_e.populate fs tree;
   let m = Simurgh_sim.Machine.create () in
   let thr = Simurgh_sim.Sthread.create 0 in
   let p = T_ext4.pack ~thr m fs ~archive:"/a.tar" tree in
   let u = T_ext4.unpack ~thr m fs ~archive:"/a.tar" tree ~dst:"/out" in
   run_one "EXT4-DAX" ()
     (fun () -> p.Tar_sim.throughput_mb_s)
     (fun () -> u.Tar_sim.throughput_mb_s));
  Printf.printf
    "paper shape: Simurgh fastest on both; ~2x others on unpack (per-file \
     attribute syscalls avoided)\n"
