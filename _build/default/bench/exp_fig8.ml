(** Fig. 8 (and Table 2): Filebench varmail / webserver / webproxy /
    fileserver throughput for every file system.  Table 2's workload
    settings are printed for reference; populations are scaled down by
    default (see DESIGN.md). *)

open Simurgh_workloads
module FB = Filebench

module Fb_simurgh = FB.Make (Simurgh_core.Fs)
module Fb_nova = FB.Make (Simurgh_baselines.Nova)
module Fb_pmfs = FB.Make (Simurgh_baselines.Pmfs)
module Fb_ext4 = FB.Make (Simurgh_baselines.Ext4dax)
module Fb_splitfs = FB.Make (Simurgh_baselines.Splitfs)

let personalities = [ FB.Varmail; FB.Webserver; FB.Webproxy; FB.Fileserver ]

let print_table2 cfgs =
  Util.header "tab2: Filebench workload settings (scaled)";
  Printf.printf "%-12s %8s %10s %10s %8s\n" "workload" "#files" "file-size"
    "dir-width" "threads";
  List.iter
    (fun (p, (c : FB.config)) ->
      Printf.printf "%-12s %8d %9dK %10s %8d\n" (FB.name p) c.FB.files
        (c.FB.file_size / 1024)
        (if c.FB.dir_width = 0 then "flat" else string_of_int c.FB.dir_width)
        c.FB.threads)
    cfgs

let loops_for = function
  | FB.Varmail -> 12
  | FB.Webserver -> 4
  | FB.Webproxy -> 4
  | FB.Fileserver -> 4

(* population scale relative to Table 2 (0.5 keeps the suite fast and the
   Simurgh region within DRAM; --scale multiplies it) *)
let pop_scale scale p =
  scale *. (match p with FB.Fileserver -> 0.2 | _ -> 0.5)

let run ~scale =
  let cfgs =
    List.map (fun p -> (p, FB.config ~scale:(pop_scale scale p) p)) personalities
  in
  print_table2 cfgs;
  Util.header "fig8: Filebench throughput (Kops/s)";
  Printf.printf "%-12s" "";
  List.iter (fun (p, _) -> Printf.printf " %11s" (FB.name p)) cfgs;
  print_newline ();
  let runners =
    [
      ("Simurgh",
       fun (cfg : FB.config) p ->
         let fs = Targets.fresh_simurgh ~region_mb:768 () in
         let m = Simurgh_sim.Machine.create () in
         Fb_simurgh.run m fs p ~cfg ~loops_per_thread:(loops_for p));
      ("NOVA",
       fun cfg p ->
         let fs = Simurgh_baselines.Nova.create () in
         let m = Simurgh_sim.Machine.create () in
         Fb_nova.run m fs p ~cfg ~loops_per_thread:(loops_for p));
      ("SplitFS",
       fun cfg p ->
         let fs = Simurgh_baselines.Splitfs.create () in
         let m = Simurgh_sim.Machine.create () in
         Fb_splitfs.run m fs p ~cfg ~loops_per_thread:(loops_for p));
      ("PMFS",
       fun cfg p ->
         let fs = Simurgh_baselines.Pmfs.create () in
         let m = Simurgh_sim.Machine.create () in
         Fb_pmfs.run m fs p ~cfg ~loops_per_thread:(loops_for p));
      ("EXT4-DAX",
       fun cfg p ->
         let fs = Simurgh_baselines.Ext4dax.create () in
         let m = Simurgh_sim.Machine.create () in
         Fb_ext4.run m fs p ~cfg ~loops_per_thread:(loops_for p));
    ]
  in
  List.iter
    (fun (name, runner) ->
      Printf.printf "%-12s" name;
      List.iter
        (fun (p, cfg) ->
          let r = runner cfg p in
          Printf.printf " %11.1f" (Util.kops r.FB.ops_per_s))
        cfgs;
      print_newline ())
    runners;
  Printf.printf
    "paper shape: varmail Simurgh ~1.7x NOVA; webserver all similar; \
     webproxy Simurgh ~1.1x NOVA, PMFS poor; fileserver Simurgh ~ NOVA\n"
