(** Fig. 9: YCSB Load A and Run A-F on the LSM store (LevelDB stand-in),
    throughput normalized to SplitFS as in the paper. *)

open Simurgh_workloads
module Y = Ycsb

module Y_simurgh = Y.Make (Simurgh_core.Fs)
module Y_nova = Y.Make (Simurgh_baselines.Nova)
module Y_pmfs = Y.Make (Simurgh_baselines.Pmfs)
module Y_ext4 = Y.Make (Simurgh_baselines.Ext4dax)
module Y_splitfs = Y.Make (Simurgh_baselines.Splitfs)

let threads = 4

let run_all ~records ~ops =
  let run name f =
    ( name,
      List.map
        (fun w -> (w, f w))
        Y.all )
  in
  [
    run "Simurgh" (fun w ->
        let fs = Targets.fresh_simurgh ~region_mb:512 () in
        let m = Simurgh_sim.Machine.create () in
        Y_simurgh.run m fs w ~records ~ops ~threads);
    run "NOVA" (fun w ->
        let fs = Simurgh_baselines.Nova.create () in
        let m = Simurgh_sim.Machine.create () in
        Y_nova.run m fs w ~records ~ops ~threads);
    run "SplitFS" (fun w ->
        let fs = Simurgh_baselines.Splitfs.create () in
        let m = Simurgh_sim.Machine.create () in
        Y_splitfs.run m fs w ~records ~ops ~threads);
    run "PMFS" (fun w ->
        let fs = Simurgh_baselines.Pmfs.create () in
        let m = Simurgh_sim.Machine.create () in
        Y_pmfs.run m fs w ~records ~ops ~threads);
    run "EXT4-DAX" (fun w ->
        let fs = Simurgh_baselines.Ext4dax.create () in
        let m = Simurgh_sim.Machine.create () in
        Y_ext4.run m fs w ~records ~ops ~threads);
  ]

let run ~scale =
  let records = Util.scaled ~scale 8000 in
  let ops = Util.scaled ~scale 8000 in
  Util.header
    (Printf.sprintf
       "fig9: YCSB throughput normalized to SplitFS (records=%d ops=%d \
        threads=%d)"
       records ops threads);
  let all = run_all ~records ~ops in
  let splitfs = List.assoc "SplitFS" all in
  Printf.printf "%-12s" "";
  List.iter (fun w -> Printf.printf " %8s" (Y.name w)) Y.all;
  print_newline ();
  List.iter
    (fun (name, results) ->
      Printf.printf "%-12s" name;
      List.iter
        (fun (w, (r : Y.result)) ->
          let base = (List.assoc w splitfs).Y.ops_per_s in
          Printf.printf " %8.2f"
            (if base > 0.0 then r.Y.ops_per_s /. base else 0.0))
        results;
      print_newline ())
    all;
  Printf.printf
    "absolute Kops/s:\n";
  List.iter
    (fun (name, results) ->
      Printf.printf "%-12s" name;
      List.iter
        (fun (_, (r : Y.result)) ->
          Printf.printf " %8.1f" (Util.kops r.Y.ops_per_s))
        results;
      print_newline ())
    all;
  Printf.printf
    "paper shape: Simurgh highest in every workload; largest gain over \
     SplitFS in RunA (~1.36x)\n"
