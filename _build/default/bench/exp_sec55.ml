(** Section 5.5: full-system crash-recovery time.

    The paper crashes a file system holding 10 copies of the Linux
    source tree (672,940 files, 88,780 directories) and recovers in
    4.1 s.  We populate a scaled tree, crash (drop the clean-shutdown
    marker), run the mark-and-sweep recovery and report wall-clock
    recovery rate plus the extrapolation to the paper's population. *)

open Simurgh_workloads

module Tree = Linux_tree.Make (Simurgh_core.Fs)

let run ~scale =
  let files = Util.scaled ~scale 6000 in
  let tree =
    Linux_tree.generate { Linux_tree.default with Linux_tree.files = files }
  in
  let region = Simurgh_nvmm.Region.create (768 * 1024 * 1024) in
  let fs = Simurgh_core.Fs.mkfs ~euid:0 region in
  Tree.populate fs tree;
  (* leave some in-flight garbage: allocated-but-uncommitted objects *)
  let layout = Simurgh_core.Fs.layout fs in
  for _ = 1 to 32 do
    ignore
      (Simurgh_alloc.Slab_alloc.alloc layout.Simurgh_core.Layout.inode_slab)
  done;
  Util.header "sec55: full-system crash recovery (mark-and-sweep)";
  let t0 = Sys.time () in
  let _layout, report = Simurgh_core.Recovery.run region in
  let dt = Sys.time () -. t0 in
  Printf.printf "%a\n" (fun _ -> Simurgh_core.Recovery.pp_report Fmt.stdout) report;
  let total =
    report.Simurgh_core.Recovery.files + report.Simurgh_core.Recovery.dirs
  in
  Printf.printf
    "recovered %d objects in %.3f s wall (%.0f objects/s); paper population \
     (761,720 files+dirs) would take ~%.1f s at this rate (paper: 4.1 s)\n"
    total dt
    (float_of_int total /. Float.max 1e-9 dt)
    (761720.0 /. (float_of_int total /. Float.max 1e-9 dt))
