(** Ablation study: the design choices DESIGN.md calls out, measured on
    the createfile-shared and resolvepath-shared microbenchmarks.

    - entry mechanism: jmpp (+46 cycles) vs. a kernel trap vs. free;
    - per-line busy flags vs. one lock per directory;
    - segmented block allocator (2x cores) vs. a single segment;
    - per-file write lock vs. relaxed writes (also in Fig. 7k). *)

open Simurgh_workloads
module Fx = Fxmark.Make (Simurgh_core.Fs)

let mk ?(region_mb = 512) ?segments ?call_mode ?relaxed_writes
    ?coarse_dir_locks () =
  let region = Simurgh_nvmm.Region.create (region_mb * 1024 * 1024) in
  Simurgh_core.Fs.mkfs ~euid:0 ?segments ?call_mode ?relaxed_writes
    ?coarse_dir_locks region

let run_variant name fresh bench ~ops =
  Util.row_header name;
  List.iter
    (fun threads ->
      let fs = fresh () in
      let m = Simurgh_sim.Machine.create () in
      let r = Fx.run m fs bench ~threads ~ops in
      Printf.printf " %9.0f" (Util.kops r.Fxmark.throughput))
    Util.thread_counts;
  print_newline ()

let run ~scale =
  let ops = Util.scaled ~scale 2000 in
  Util.header "ablation: entry mechanism (createfile shared dir, Kops/s)";
  Util.print_thread_header ();
  run_variant "jmpp (+46cyc)" (fun () -> mk ()) Fxmark.Create_shared ~ops;
  run_variant "syscall entry"
    (fun () -> mk ~call_mode:Simurgh_core.Fs.Syscall ())
    Fxmark.Create_shared ~ops;
  run_variant "plain call"
    (fun () -> mk ~call_mode:Simurgh_core.Fs.Plain ())
    Fxmark.Create_shared ~ops;

  Util.header "ablation: entry mechanism (resolvepath shared prefix, Kops/s)";
  Util.print_thread_header ();
  run_variant "jmpp (+46cyc)" (fun () -> mk ()) Fxmark.Resolve_shared
    ~ops:(2 * ops);
  run_variant "syscall entry"
    (fun () -> mk ~call_mode:Simurgh_core.Fs.Syscall ())
    Fxmark.Resolve_shared ~ops:(2 * ops);

  Util.header "ablation: directory locking (createfile shared dir, Kops/s)";
  Util.print_thread_header ();
  run_variant "per-line busy" (fun () -> mk ()) Fxmark.Create_shared ~ops;
  run_variant "whole-dir lock"
    (fun () -> mk ~coarse_dir_locks:true ())
    Fxmark.Create_shared ~ops;

  Util.header "ablation: block allocator (fallocate, Kops/s)";
  Util.print_thread_header ();
  (* 16 ops x 4 MiB x 10 threads needs ~1 GiB with headroom *)
  run_variant "segmented (20)"
    (fun () -> mk ~region_mb:1536 ())
    Fxmark.Fallocate_private ~ops:16;
  run_variant "single segment"
    (fun () -> mk ~region_mb:1536 ~segments:1 ())
    Fxmark.Fallocate_private ~ops:16;

  Util.header "ablation: shared-file write lock (overwrite shared, Kops/s)";
  Util.print_thread_header ();
  run_variant "per-file lock" (fun () -> mk ()) Fxmark.Overwrite_shared ~ops;
  run_variant "relaxed"
    (fun () -> mk ~relaxed_writes:true ())
    Fxmark.Overwrite_shared ~ops
