(* Key-value store scenario: the LSM database (LevelDB stand-in) from the
   YCSB evaluation, running on a Simurgh file system.  Shows the FS call
   mix a storage engine generates — WAL appends, memtable flushes into
   SSTables, compactions deleting old tables — and prints database
   statistics plus the resulting file population.

   Run with: dune exec examples/kv_store.exe *)

module Fs = Simurgh_core.Fs
module Db = Simurgh_kvstore.Db.Make (Fs)

let () =
  let region = Simurgh_nvmm.Region.create (256 * 1024 * 1024) in
  let fs = Fs.mkfs ~euid:0 region in
  let cfg =
    { Simurgh_kvstore.Db.default_config with
      Simurgh_kvstore.Db.memtable_bytes = 64 * 1024 }
  in
  let db = Db.open_ ~cfg fs in

  (* load a session store: user -> serialized profile *)
  print_endline "loading 5000 user records...";
  for i = 0 to 4999 do
    Db.put db
      (Printf.sprintf "user%05d" i)
      (Printf.sprintf "{\"id\":%d,\"score\":%d,\"blob\":\"%s\"}" i (i * 7)
         (String.make 100 'x'))
  done;

  (* point lookups *)
  (match Db.get db "user01234" with
  | Some v -> Printf.printf "user01234 -> %s...\n" (String.sub v 0 24)
  | None -> print_endline "lost a record?!");

  (* updates and deletes *)
  for i = 0 to 999 do
    Db.put db (Printf.sprintf "user%05d" (i * 5)) "{\"updated\":true}"
  done;
  for i = 0 to 99 do
    Db.delete db (Printf.sprintf "user%05d" (i * 50))
  done;
  Printf.printf "after delete, user00000 = %s\n"
    (match Db.get db "user00000" with Some _ -> "present" | None -> "gone");

  (* range scan *)
  let page = Db.scan db ~start:"user02000" ~count:5 in
  print_endline "scan from user02000:";
  List.iter (fun (k, _) -> Printf.printf "  %s\n" k) page;

  (* what the database did to the file system *)
  let st = Db.stats db in
  Printf.printf
    "db stats: %d puts, %d gets, %d deletes, %d memtable flushes, %d \
     compactions, %d WAL bytes\n"
    st.Simurgh_kvstore.Db.puts st.Simurgh_kvstore.Db.gets
    st.Simurgh_kvstore.Db.deletes st.Simurgh_kvstore.Db.flushes
    st.Simurgh_kvstore.Db.compactions st.Simurgh_kvstore.Db.wal_bytes;
  Printf.printf "live tables: %d\n" (Db.table_count db);
  Db.close db;
  Printf.printf "files in /db: %s\n"
    (String.concat ", " (List.sort compare (Fs.readdir fs "/db")));

  (* the whole database survives a remount *)
  Fs.unmount fs;
  let fs2 = Fs.mount ~euid:0 region in
  Printf.printf "after remount /db still holds %d files\n"
    (List.length (Fs.readdir fs2 "/db"))
