(* Mail-server scenario: the shared-directory workload the paper's
   evaluation highlights (Section 5.2: "Many real world applications,
   e.g., from HPC and mail servers, suffer from performance penalties or
   have to adapt their code to avoid shared directories").

   A maildir-style queue: N delivery agents concurrently create message
   files in one shared /queue directory, then a delivery pass renames
   each message into the recipient's mailbox (cross-directory rename) —
   exactly the create/rename mix that serializes on the VFS directory
   mutex in kernel file systems but scales on Simurgh's per-line busy
   flags.  The example runs the same workload on Simurgh and on the NOVA
   baseline and prints modeled throughputs.

   Run with: dune exec examples/mail_server.exe *)

open Simurgh_sim
open Simurgh_fs_common

let agents = 8
let messages_per_agent = 800
let mailboxes = 16

module Run (F : Fs_intf.S) = struct
  let deliver fs machine =
    (* setup: the spool and the mailboxes *)
    F.mkdir fs "/queue";
    for m = 0 to mailboxes - 1 do
      F.mkdir fs (Printf.sprintf "/mbox%02d" m)
    done;
    let body = Bytes.make 2048 'm' in
    (* phase 1: concurrent delivery into the shared queue *)
    let enqueue =
      Engine.run_ops machine ~threads:agents
        ~ops_per_thread:messages_per_agent (fun ctx i ->
          let tid = ctx.Machine.thr.Sthread.tid in
          let path = Printf.sprintf "/queue/msg-%d-%d" tid i in
          F.create_file ~ctx fs path;
          let fd = F.openf ~ctx fs Types.wronly path in
          ignore (F.append ~ctx fs fd body);
          F.fsync ~ctx fs fd;
          F.close ~ctx fs fd)
    in
    let enq_tput = Engine.throughput machine enqueue in
    (* phase 2: concurrent dispatch — cross-directory renames *)
    Machine.reset machine;
    let dispatch =
      Engine.run_ops machine ~threads:agents
        ~ops_per_thread:messages_per_agent (fun ctx i ->
          let tid = ctx.Machine.thr.Sthread.tid in
          let src = Printf.sprintf "/queue/msg-%d-%d" tid i in
          let dst =
            Printf.sprintf "/mbox%02d/msg-%d-%d" ((tid + i) mod mailboxes) tid i
          in
          F.rename ~ctx fs src dst)
    in
    let disp_tput = Engine.throughput machine dispatch in
    (enq_tput, disp_tput)
end

let () =
  Printf.printf
    "maildir scenario: %d agents x %d messages, one shared /queue\n\n" agents
    messages_per_agent;
  Printf.printf "%-10s %18s %18s\n" "" "enqueue (msg/s)" "dispatch (msg/s)";
  (* Simurgh *)
  let module S = Run (Simurgh_core.Fs) in
  let region = Simurgh_nvmm.Region.create (256 * 1024 * 1024) in
  let fs = Simurgh_core.Fs.mkfs ~euid:0 region in
  let m = Machine.create () in
  let enq_s, disp_s = S.deliver fs m in
  Printf.printf "%-10s %18.0f %18.0f\n" "Simurgh" enq_s disp_s;
  (* NOVA baseline *)
  let module N = Run (Simurgh_baselines.Nova) in
  let fs = Simurgh_baselines.Nova.create () in
  let m = Machine.create () in
  let enq_n, disp_n = N.deliver fs m in
  Printf.printf "%-10s %18.0f %18.0f\n" "NOVA" enq_n disp_n;
  Printf.printf
    "\nSimurgh advantage: %.1fx on enqueue, %.1fx on dispatch\n"
    (enq_s /. enq_n) (disp_s /. disp_n);
  print_endline
    "(the kernel FS serializes the shared /queue directory on its inode\n\
    \ mutex; Simurgh's hash-row busy flags let the agents proceed in\n\
    \ parallel)"
