examples/crash_recovery.ml: Bytes Fmt List Printf Simurgh_core Simurgh_fs_common Simurgh_nvmm Types
