examples/kv_store.ml: List Printf Simurgh_core Simurgh_kvstore Simurgh_nvmm String
