examples/secure_mode.ml: Bytes Cpu Errno Fault Fmt List Page_table Printf Privilege Protected Simurgh_core Simurgh_fs_common Simurgh_hw Simurgh_nvmm Types
