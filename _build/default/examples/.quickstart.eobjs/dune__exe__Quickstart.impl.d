examples/quickstart.ml: Bytes Fmt Printf Simurgh_core Simurgh_fs_common Simurgh_nvmm String Types
