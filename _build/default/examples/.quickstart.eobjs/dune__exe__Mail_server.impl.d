examples/mail_server.ml: Bytes Engine Fs_intf Machine Printf Simurgh_baselines Simurgh_core Simurgh_fs_common Simurgh_nvmm Simurgh_sim Sthread Types
