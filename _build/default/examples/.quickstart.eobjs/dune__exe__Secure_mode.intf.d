examples/secure_mode.mli:
