examples/quickstart.mli:
