(* Quickstart: create a Simurgh file system in a simulated NVMM region
   and exercise the POSIX-style API.

   Run with: dune exec examples/quickstart.exe *)

open Simurgh_fs_common
module Fs = Simurgh_core.Fs

let () =
  (* 1. A 64 MiB simulated NVMM region (stands in for an mmap'ed
        /dev/dax namespace). *)
  let region = Simurgh_nvmm.Region.create (64 * 1024 * 1024) in

  (* 2. Format it: superblock, allocators, root directory.  Like any
        mkfs, the root directory belongs to uid 0, so we format and use
        it as root here; see examples/secure_mode.ml for per-user
        credentials. *)
  let fs = Fs.mkfs ~euid:0 ~egid:0 region in
  print_endline "formatted a Simurgh file system";

  (* 3. Build a small hierarchy. *)
  Fs.mkdir fs "/projects";
  Fs.mkdir fs "/projects/simurgh";
  Fs.create_file fs "/projects/simurgh/notes.txt";

  (* 4. Write and read data. *)
  let fd = Fs.openf fs Types.rdwr "/projects/simurgh/notes.txt" in
  let text = "NVMM file systems bypass the kernel for every operation.\n" in
  let n = Fs.append fs fd (Bytes.of_string text) in
  Printf.printf "wrote %d bytes\n" n;
  let back = Fs.pread fs fd ~pos:0 ~len:n in
  Printf.printf "read back: %s" (Bytes.to_string back);
  Fs.close fs fd;

  (* 5. Metadata operations. *)
  let st = Fs.stat fs "/projects/simurgh/notes.txt" in
  Printf.printf "stat: kind=%s size=%d perm=%o nlink=%d\n"
    (Fmt.str "%a" Types.pp_kind st.Types.kind)
    st.Types.size st.Types.perm st.Types.nlink;
  Fs.rename fs "/projects/simurgh/notes.txt" "/projects/simurgh/README";
  Fs.symlink fs ~target:"/projects/simurgh/README" "/readme-link";
  Printf.printf "symlink resolves to %d bytes\n"
    (Fs.stat fs "/readme-link").Types.size;

  (* 6. Directory listing. *)
  Printf.printf "ls /projects/simurgh: %s\n"
    (String.concat ", " (Fs.readdir fs "/projects/simurgh"));

  (* 7. Remount: everything is persistent in the region. *)
  Fs.unmount fs;
  let fs2 = Fs.mount ~euid:0 ~egid:0 region in
  Printf.printf "after remount, README still has %d bytes\n"
    (Fs.stat fs2 "/projects/simurgh/README").Types.size;
  print_endline "quickstart done"
