(* Crash-recovery scenario: a power failure in the middle of a rename on
   a strict-persistence region, followed by Simurgh's mark-and-sweep
   recovery (paper Sections 4.3 and 5.5).

   The strict region keeps unflushed cache lines in a volatile overlay:
   Region.crash drops everything that was not explicitly persisted, the
   adversarial model of a power cut.

   Run with: dune exec examples/crash_recovery.exe *)

open Simurgh_fs_common
module Fs = Simurgh_core.Fs
module Recovery = Simurgh_core.Recovery

exception Power_failure

let () =
  let region =
    Simurgh_nvmm.Region.create ~mode:Simurgh_nvmm.Region.Strict
      (64 * 1024 * 1024)
  in
  let fs = Fs.mkfs ~euid:0 region in

  (* a small population *)
  Fs.mkdir fs "/inbox";
  Fs.mkdir fs "/archive";
  for i = 0 to 19 do
    Fs.create_file fs (Printf.sprintf "/inbox/mail%02d" i)
  done;
  let fd = Fs.openf fs Types.wronly "/inbox/mail07" in
  ignore (Fs.append fs fd (Bytes.of_string "do not lose this"));
  Fs.close fs fd;
  print_endline "populated /inbox with 20 messages";

  (* crash in the middle of a cross-directory rename: the FS exposes a
     hook at every persist point; we cut power at the 4th step *)
  let steps = ref 0 in
  Fs.set_crash_hook fs (fun label ->
      incr steps;
      if !steps = 4 then begin
        Printf.printf "power failure at rename step %d (%s)!\n" !steps label;
        raise Power_failure
      end);
  (try Fs.rename fs "/inbox/mail07" "/archive/mail07"
   with Power_failure -> Simurgh_nvmm.Region.crash region);

  (* recover: scan all metadata, finish or roll back the rename, rebuild
     the allocators *)
  print_endline "running mark-and-sweep recovery...";
  let fs', report = Recovery.mount_after_crash ~euid:0 region in
  Fmt.pr "recovery report: %a\n" Recovery.pp_report report;

  let in_inbox = Fs.exists fs' "/inbox/mail07" in
  let in_archive = Fs.exists fs' "/archive/mail07" in
  Printf.printf "mail07: inbox=%b archive=%b (exactly one must hold)\n"
    in_inbox in_archive;
  assert (in_inbox <> in_archive);
  let where = if in_inbox then "/inbox/mail07" else "/archive/mail07" in
  let fd = Fs.openf fs' Types.rdonly where in
  Printf.printf "its content survived: %S\n"
    (Bytes.to_string (Fs.pread fs' fd ~pos:0 ~len:100));
  Fs.close fs' fd;
  Printf.printf "other messages intact: %d in /inbox\n"
    (List.length (Fs.readdir fs' "/inbox"));
  print_endline "crash recovery done"
