(* Secure mode: the paper's Section 3 protection architecture in action.

   After the bootstrap (the load_protected() path of Fig. 2), the NVMM
   region is mapped as kernel pages and the FS entry points live behind
   jmpp/pret.  Application code can call the file system only through
   the protected stubs; touching the region directly, or jumping to a
   non-entry offset of a protected page, faults exactly as the proposed
   hardware would.

   Run with: dune exec examples/secure_mode.exe *)

open Simurgh_fs_common
open Simurgh_hw
module Fs = Simurgh_core.Fs
module Secure = Simurgh_core.Secure

let () =
  let region = Simurgh_nvmm.Region.create (32 * 1024 * 1024) in
  let fs = Fs.mkfs ~euid:0 region in
  (* the administrator prepares directories before handing the region to
     the application (after bootstrap, direct Fs calls fault by design) *)
  Fs.mkdir fs ~perm:0o777 "/home";
  Fs.mkdir fs ~perm:0o700 "/rootonly";
  (* ... then the application bootstraps with its own credentials *)
  let s = Secure.bootstrap ~euid:1000 ~egid:1000 fs in
  Printf.printf "bootstrap done: %d protected pages loaded, CPU in %s\n"
    (List.length (Protected.pages (Secure.universe s)))
    (Fmt.str "%a" Privilege.pp (Cpu.mode (Secure.cpu s)));

  (* normal use: every call below enters kernel mode via jmpp and leaves
     it via pret *)
  Secure.mkdir s "/home/safe";
  Secure.create s "/home/safe/secret";
  let fd = Secure.openf s Types.wronly "/home/safe/secret" in
  ignore (Secure.append s fd (Bytes.of_string "classified"));
  Secure.close s fd;
  Printf.printf "created /home/safe/secret (%d bytes) through jmpp stubs\n"
    (Secure.stat s "/home/safe/secret").Types.size;

  (* attack 1: read file-system bytes directly from user mode *)
  (match Simurgh_nvmm.Region.read_u8 region 0 with
  | _ -> print_endline "BUG: direct region read succeeded"
  | exception Fault.Fault k ->
      Fmt.pr "direct region read faulted: %a\n" Fault.pp_kind k);

  (* attack 2: jump into the middle of a protected function *)
  let univ = Secure.universe s in
  let addr = Protected.address_of univ "simurgh_create" in
  let page = Page_table.page_of_addr addr in
  (match Protected.jmpp_raw univ ((page * Page_table.page_size) + 0x2a) with
  | _ -> print_endline "BUG: mid-function jmpp succeeded"
  | exception Fault.Fault k -> Fmt.pr "mid-function jmpp faulted: %a\n" Fault.pp_kind k);

  (* attack 3: set the ep bit from user mode to bless attacker code *)
  let cpu = Secure.cpu s in
  Page_table.map cpu.Cpu.page_table ~page:0xbad ~kernel:false ~writable:true;
  (match Page_table.set_ep cpu.Cpu.page_table ~mode:(Cpu.mode cpu) ~page:0xbad with
  | _ -> print_endline "BUG: ep set from user mode"
  | exception Fault.Fault k -> Fmt.pr "ep from user faulted: %a\n" Fault.pp_kind k);

  (* attack 4: remap the protected function's page *)
  (match
     Page_table.remap cpu.Cpu.page_table ~page ~kernel:false ~writable:true
   with
  | _ -> print_endline "BUG: protected page remapped"
  | exception Fault.Fault k -> Fmt.pr "remap faulted: %a\n" Fault.pp_kind k);

  (* permissions are enforced with the credentials captured at bootstrap *)
  (match Secure.create s "/rootonly/x" with
  | _ -> print_endline "BUG: EACCES expected"
  | exception Errno.Err (EACCES, _) ->
      print_endline "permission bits enforced inside protected functions");
  print_endline "secure mode demo done"
