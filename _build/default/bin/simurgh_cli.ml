(* simurgh_cli: a small command-line front end over a file-backed region
   image, so the file system can be used interactively:

     simurgh_cli mkfs img.simurgh --size-mb 64
     simurgh_cli mkdir img.simurgh /docs
     simurgh_cli write img.simurgh /docs/a.txt "hello"
     simurgh_cli import img.simurgh /docs/b.txt ./local-file
     simurgh_cli ls img.simurgh /docs
     simurgh_cli cat img.simurgh /docs/a.txt
     simurgh_cli stat img.simurgh /docs/a.txt
     simurgh_cli rm / mv / fsck ...

   The image file holds exactly the persistent bytes; fsck runs the
   mark-and-sweep recovery on it. *)

open Simurgh_fs_common
module Fs = Simurgh_core.Fs
module Region = Simurgh_nvmm.Region
open Cmdliner

let load_fs img =
  let region = Region.load_from_file img in
  Fs.mount ~euid:0 region

let save region img = Region.save_to_file region img

let img_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"IMAGE" ~doc:"Region image file.")

let path_arg n =
  Arg.(
    required
    & pos n (some string) None
    & info [] ~docv:"PATH" ~doc:"Path inside the file system.")

let wrap f =
  try
    f ();
    0
  with
  | Errno.Err (e, msg) ->
      Printf.eprintf "error: %s (%s)\n" (Errno.to_string e) msg;
      1
  | Sys_error m ->
      Printf.eprintf "error: %s\n" m;
      1

(* --- commands ------------------------------------------------------------ *)

let mkfs_cmd =
  let size_mb =
    Arg.(value & opt int 64 & info [ "size-mb" ] ~doc:"Region size in MiB.")
  in
  let run img size_mb =
    wrap (fun () ->
        let region = Region.create (size_mb * 1024 * 1024) in
        let _fs = Fs.mkfs ~euid:0 region in
        save region img;
        Printf.printf "formatted %s (%d MiB)\n" img size_mb)
  in
  Cmd.v (Cmd.info "mkfs" ~doc:"Create and format a region image.")
    Term.(const run $ img_arg $ size_mb)

let ls_cmd =
  let run img path =
    wrap (fun () ->
        let fs = load_fs img in
        List.iter print_endline (List.sort compare (Fs.readdir fs path)))
  in
  Cmd.v (Cmd.info "ls" ~doc:"List a directory.")
    Term.(const run $ img_arg $ path_arg 1)

let mkdir_cmd =
  let run img path =
    wrap (fun () ->
        let fs = load_fs img in
        Fs.mkdir fs path;
        save (Fs.region fs) img)
  in
  Cmd.v (Cmd.info "mkdir" ~doc:"Create a directory.")
    Term.(const run $ img_arg $ path_arg 1)

let write_cmd =
  let data =
    Arg.(
      required
      & pos 2 (some string) None
      & info [] ~docv:"DATA" ~doc:"Data to write.")
  in
  let run img path data =
    wrap (fun () ->
        let fs = load_fs img in
        if not (Fs.exists fs path) then Fs.create_file fs path;
        Fs.truncate fs path 0;
        let fd = Fs.openf fs Types.rdwr path in
        ignore (Fs.pwrite fs fd ~pos:0 (Bytes.of_string data));
        Fs.close fs fd;
        save (Fs.region fs) img)
  in
  Cmd.v (Cmd.info "write" ~doc:"Write a string to a file (replacing it).")
    Term.(const run $ img_arg $ path_arg 1 $ data)

let import_cmd =
  let src =
    Arg.(
      required
      & pos 2 (some string) None
      & info [] ~docv:"LOCAL" ~doc:"Local file to import.")
  in
  let run img path src =
    wrap (fun () ->
        let fs = load_fs img in
        let ic = open_in_bin src in
        let len = in_channel_length ic in
        let buf = Bytes.create len in
        really_input ic buf 0 len;
        close_in ic;
        if not (Fs.exists fs path) then Fs.create_file fs path;
        Fs.truncate fs path 0;
        let fd = Fs.openf fs Types.rdwr path in
        ignore (Fs.pwrite fs fd ~pos:0 buf);
        Fs.close fs fd;
        save (Fs.region fs) img;
        Printf.printf "imported %d bytes\n" len)
  in
  Cmd.v (Cmd.info "import" ~doc:"Import a local file.")
    Term.(const run $ img_arg $ path_arg 1 $ src)

let cat_cmd =
  let run img path =
    wrap (fun () ->
        let fs = load_fs img in
        let st = Fs.stat fs path in
        let fd = Fs.openf fs Types.rdonly path in
        print_bytes (Fs.pread fs fd ~pos:0 ~len:st.Types.size);
        Fs.close fs fd)
  in
  Cmd.v (Cmd.info "cat" ~doc:"Print a file's contents.")
    Term.(const run $ img_arg $ path_arg 1)

let stat_cmd =
  let run img path =
    wrap (fun () ->
        let fs = load_fs img in
        let st = Fs.stat fs path in
        Printf.printf "%s: %s size=%d perm=%o uid=%d gid=%d nlink=%d mtime=%d\n"
          path
          (Fmt.str "%a" Types.pp_kind st.Types.kind)
          st.Types.size st.Types.perm st.Types.uid st.Types.gid st.Types.nlink
          st.Types.mtime)
  in
  Cmd.v (Cmd.info "stat" ~doc:"Show file metadata.")
    Term.(const run $ img_arg $ path_arg 1)

let rm_cmd =
  let run img path =
    wrap (fun () ->
        let fs = load_fs img in
        (match (Fs.stat fs path).Types.kind with
        | Types.Dir -> Fs.rmdir fs path
        | _ -> Fs.unlink fs path);
        save (Fs.region fs) img)
  in
  Cmd.v (Cmd.info "rm" ~doc:"Remove a file or an empty directory.")
    Term.(const run $ img_arg $ path_arg 1)

let mv_cmd =
  let run img a b =
    wrap (fun () ->
        let fs = load_fs img in
        Fs.rename fs a b;
        save (Fs.region fs) img)
  in
  Cmd.v (Cmd.info "mv" ~doc:"Rename/move.")
    Term.(const run $ img_arg $ path_arg 1 $ path_arg 2)

let fsck_cmd =
  let run img =
    wrap (fun () ->
        let region = Region.load_from_file img in
        let _, report = Simurgh_core.Recovery.run region in
        Fmt.pr "%a\n" Simurgh_core.Recovery.pp_report report;
        save region img)
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:"Run full mark-and-sweep recovery on the image (repairs \
             crash-interrupted operations, reclaims orphans).")
    Term.(const run $ img_arg)

let df_cmd =
  let run img =
    wrap (fun () ->
        let fs = load_fs img in
        let st = Fs.statfs fs in
        let used = st.Fs.total_blocks - st.Fs.free_blocks in
        Printf.printf
          "block size %d B; blocks: %d total, %d used (%.1f%%), %d free\n\
           live metadata objects: %d inodes, %d file entries\n"
          st.Fs.block_size st.Fs.total_blocks used
          (100.0 *. float_of_int used /. float_of_int st.Fs.total_blocks)
          st.Fs.free_blocks st.Fs.live_inodes st.Fs.live_fentries)
  in
  Cmd.v (Cmd.info "df" ~doc:"Show space and metadata-object usage.")
    Term.(const run $ img_arg)

let () =
  let doc = "Simurgh NVMM file system on a file-backed region image" in
  let cmds =
    [
      mkfs_cmd; ls_cmd; mkdir_cmd; write_cmd; import_cmd; cat_cmd; stat_cmd;
      rm_cmd; mv_cmd; fsck_cmd; df_cmd;
    ]
  in
  exit (Cmd.eval' (Cmd.group (Cmd.info "simurgh_cli" ~doc) cmds))
