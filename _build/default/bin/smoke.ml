(* Quick functional smoke test of the Simurgh FS. *)
open Simurgh_core
open Simurgh_fs_common

let () =
  let region = Simurgh_nvmm.Region.create (32 * 1024 * 1024) in
  let fs = Fs.mkfs ~euid:0 region in
  Fs.mkdir fs "/home";
  Fs.mkdir fs "/home/user";
  for i = 0 to 99 do
    Fs.create_file fs (Printf.sprintf "/home/user/file%d" i)
  done;
  let fd = Fs.openf fs Types.rdwr "/home/user/file5" in
  let n = Fs.append fs fd (Bytes.of_string "hello simurgh") in
  assert (n = 13);
  let back = Fs.pread fs fd ~pos:0 ~len:13 in
  assert (Bytes.to_string back = "hello simurgh");
  Fs.close fs fd;
  let st = Fs.stat fs "/home/user/file5" in
  assert (st.Types.size = 13);
  Fs.rename fs "/home/user/file5" "/home/user/renamed";
  assert (not (Fs.exists fs "/home/user/file5"));
  assert (Fs.exists fs "/home/user/renamed");
  Fs.mkdir fs "/tmp";
  Fs.rename fs "/home/user/renamed" "/tmp/moved";
  assert (Fs.exists fs "/tmp/moved");
  let names = Fs.readdir fs "/home/user" in
  Printf.printf "readdir /home/user: %d entries\n" (List.length names);
  assert (List.length names = 99);
  for i = 0 to 99 do
    if i <> 5 then Fs.unlink fs (Printf.sprintf "/home/user/file%d" i)
  done;
  assert (Fs.readdir fs "/home/user" = []);
  Fs.symlink fs ~target:"/tmp/moved" "/home/link";
  let st2 = Fs.stat fs "/home/link" in
  assert (st2.Types.size = 13);
  assert (Fs.readlink fs "/home/link" = "/tmp/moved");
  Fs.hardlink fs ~existing:"/tmp/moved" "/home/hard";
  assert ((Fs.stat fs "/home/hard").Types.nlink = 2);
  Printf.printf "smoke: all assertions passed\n"
