(* Multi-process cooperation: the paper's central claim is that
   *independent processes* modify shared persistent structures directly,
   coordinated only through NVMM and shared DRAM.  A second Fs.mount of
   the same region models a second process: it must share the allocator
   caches and the lock registry (shared DRAM) while keeping its own
   open-file map and credentials. *)

open Simurgh_fs_common
module Fs = Simurgh_core.Fs

let fresh_pair () =
  let region = Simurgh_nvmm.Region.create (64 * 1024 * 1024) in
  let p1 = Fs.mkfs ~euid:0 region in
  let p2 = Fs.mount ~euid:0 region in
  (region, p1, p2)

let test_visibility () =
  let _, p1, p2 = fresh_pair () in
  Fs.mkdir p1 "/shared";
  Fs.create_file p1 "/shared/from-p1";
  (* visible to the other process immediately, no remount *)
  Alcotest.(check bool) "p2 sees p1's file" true (Fs.exists p2 "/shared/from-p1");
  Fs.unlink p2 "/shared/from-p1";
  Alcotest.(check bool) "p1 sees p2's delete" false
    (Fs.exists p1 "/shared/from-p1")

let test_no_allocation_collision () =
  let _, p1, p2 = fresh_pair () in
  Fs.mkdir p1 "/d";
  (* alternating creates from the two processes share the slab caches:
     every inode must be distinct *)
  for i = 0 to 199 do
    let fs = if i mod 2 = 0 then p1 else p2 in
    Fs.create_file fs (Printf.sprintf "/d/f%03d" i)
  done;
  let inos = Hashtbl.create 256 in
  List.iter
    (fun n ->
      let st = Fs.stat p1 ("/d/" ^ n) in
      Alcotest.(check bool) ("unique inode for " ^ n) false
        (Hashtbl.mem inos st.Types.ino);
      Hashtbl.replace inos st.Types.ino ())
    (Fs.readdir p2 "/d");
  Alcotest.(check int) "all files present" 200 (List.length (Fs.readdir p1 "/d"))

let test_data_flows_between_processes () =
  let _, p1, p2 = fresh_pair () in
  Fs.create_file p1 "/msg";
  let fd = Fs.openf p1 Types.wronly "/msg" in
  ignore (Fs.append p1 fd (Bytes.of_string "hello from p1"));
  Fs.close p1 fd;
  let fd = Fs.openf p2 Types.rdonly "/msg" in
  Alcotest.(check string) "p2 reads p1's bytes" "hello from p1"
    (Bytes.to_string (Fs.pread p2 fd ~pos:0 ~len:64));
  Fs.close p2 fd

let test_fd_tables_are_private () =
  let _, p1, p2 = fresh_pair () in
  Fs.create_file p1 "/a";
  Fs.create_file p1 "/b";
  let fd1 = Fs.openf p1 Types.rdonly "/a" in
  let fd2 = Fs.openf p2 Types.rdonly "/b" in
  (* same descriptor number in both processes, different files *)
  Alcotest.(check int) "same fd number" fd1 fd2;
  Fs.close p1 fd1;
  (* p2's descriptor is unaffected by p1's close *)
  ignore (Fs.pread p2 fd2 ~pos:0 ~len:0);
  Fs.close p2 fd2

let test_per_process_credentials () =
  let region = Simurgh_nvmm.Region.create (32 * 1024 * 1024) in
  let root = Fs.mkfs ~euid:0 region in
  let user = Fs.mount ~euid:1000 ~egid:1000 region in
  Fs.mkdir root ~perm:0o700 "/private";
  Fs.mkdir root ~perm:0o777 "/public";
  (match Fs.create_file user "/private/x" with
  | _ -> Alcotest.fail "EACCES expected"
  | exception Errno.Err (EACCES, _) -> ());
  Fs.create_file user "/public/ok";
  Alcotest.(check int) "owned by the creating process's uid" 1000
    (Fs.stat root "/public/ok").Types.uid

let test_cross_process_rename_and_recovery () =
  let region, p1, p2 = fresh_pair () in
  Fs.mkdir p1 "/a";
  Fs.mkdir p2 "/b";
  for i = 0 to 49 do
    Fs.create_file p1 (Printf.sprintf "/a/f%02d" i)
  done;
  for i = 0 to 49 do
    Fs.rename p2 (Printf.sprintf "/a/f%02d" i) (Printf.sprintf "/b/g%02d" i)
  done;
  Alcotest.(check int) "a emptied" 0 (List.length (Fs.readdir p1 "/a"));
  Alcotest.(check int) "b filled" 50 (List.length (Fs.readdir p1 "/b"));
  (* a full recovery of the shared region finds it consistent *)
  let _, report = Simurgh_core.Recovery.run region in
  Alcotest.(check int) "no repairs needed" 0
    (report.Simurgh_core.Recovery.completed_deletes
    + report.Simurgh_core.Recovery.completed_renames
    + report.Simurgh_core.Recovery.rolled_back_renames);
  Alcotest.(check int) "all files accounted" 50
    report.Simurgh_core.Recovery.files

let test_virtual_time_contention_across_processes () =
  (* two mounts driven by two simulated threads contend on the same
     shared directory row locks, exactly like two threads of one mount *)
  let open Simurgh_sim in
  let region = Simurgh_nvmm.Region.create (128 * 1024 * 1024) in
  let p1 = Fs.mkfs ~euid:0 region in
  let p2 = Fs.mount ~euid:0 region in
  Fs.mkdir p1 "/spool";
  let m = Machine.create () in
  let handles = [| p1; p2 |] in
  let o =
    Engine.run_ops m ~threads:2 ~ops_per_thread:500 (fun ctx i ->
        let tid = ctx.Machine.thr.Sthread.tid in
        Fs.create_file ~ctx handles.(tid)
          (Printf.sprintf "/spool/p%d-%d" tid i))
  in
  Alcotest.(check int) "all creates landed" 1000
    (List.length (Fs.readdir p1 "/spool"));
  Alcotest.(check bool) "virtual time advanced" true
    (o.Engine.makespan_cycles > 0.0)

let () =
  Alcotest.run "multiprocess"
    [
      ( "shared-region",
        [
          Alcotest.test_case "visibility" `Quick test_visibility;
          Alcotest.test_case "no allocation collision" `Quick
            test_no_allocation_collision;
          Alcotest.test_case "data flows" `Quick
            test_data_flows_between_processes;
          Alcotest.test_case "private fd tables" `Quick
            test_fd_tables_are_private;
          Alcotest.test_case "per-process creds" `Quick
            test_per_process_credentials;
          Alcotest.test_case "cross-process rename + recovery" `Quick
            test_cross_process_rename_and_recovery;
          Alcotest.test_case "contention across processes" `Quick
            test_virtual_time_contention_across_processes;
        ] );
    ]
