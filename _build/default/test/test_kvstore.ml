(* Tests for the LSM key-value store: memtable, bloom filter, SSTable
   format and the full database against a map model, running on Simurgh. *)

module Mem = Simurgh_kvstore.Memtable
module Bloom = Simurgh_kvstore.Bloom
module Record = Simurgh_kvstore.Record
module Fs = Simurgh_core.Fs
module Db = Simurgh_kvstore.Db.Make (Fs)
module Sst = Simurgh_kvstore.Sstable.Make (Fs)

let fresh_fs () = Fs.mkfs ~euid:0 (Simurgh_nvmm.Region.create (128 * 1024 * 1024))

(* --- record ------------------------------------------------------------- *)

let test_record_roundtrip () =
  let buf = Buffer.create 64 in
  Record.encode buf "key1" (Some "value1");
  Record.encode buf "key2" None;
  let b = Buffer.to_bytes buf in
  let k1, v1, next = Record.decode b 0 in
  Alcotest.(check string) "k1" "key1" k1;
  Alcotest.(check (option string)) "v1" (Some "value1") v1;
  let k2, v2, _ = Record.decode b next in
  Alcotest.(check string) "k2" "key2" k2;
  Alcotest.(check (option string)) "tombstone" None v2

(* --- memtable ------------------------------------------------------------ *)

let test_memtable_basics () =
  let m = Mem.create () in
  Alcotest.(check bool) "empty" true (Mem.is_empty m);
  Mem.put m "b" (Some "2");
  Mem.put m "a" (Some "1");
  Mem.put m "c" None;
  Alcotest.(check int) "entries" 3 (Mem.entries m);
  Alcotest.(check (option (option string))) "get" (Some (Some "1")) (Mem.get m "a");
  Alcotest.(check (option (option string))) "tombstone" (Some None) (Mem.get m "c");
  Alcotest.(check (option (option string))) "miss" None (Mem.get m "zz");
  (* bindings sorted *)
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ]
    (List.map fst (Mem.bindings m));
  Mem.clear m;
  Alcotest.(check bool) "cleared" true (Mem.is_empty m)

(* --- bloom ---------------------------------------------------------------- *)

let test_bloom_no_false_negatives () =
  let b = Bloom.create 1000 in
  let keys = List.init 1000 (Printf.sprintf "key%d") in
  List.iter (Bloom.add b) keys;
  List.iter
    (fun k -> Alcotest.(check bool) ("member " ^ k) true (Bloom.mem b k))
    keys

let test_bloom_fpr_reasonable () =
  let b = Bloom.create 1000 in
  for i = 0 to 999 do
    Bloom.add b (Printf.sprintf "present%d" i)
  done;
  let fp = ref 0 in
  for i = 0 to 9999 do
    if Bloom.mem b (Printf.sprintf "absent%d" i) then incr fp
  done;
  (* 10 bits/key, 6 probes: expect well under 5% false positives *)
  Alcotest.(check bool) "fpr < 5%" true (!fp < 500)

let test_bloom_serialization () =
  let b = Bloom.create 100 in
  List.iter (Bloom.add b) [ "x"; "y"; "z" ];
  let b' = Bloom.of_bytes (Bloom.to_bytes b) in
  List.iter
    (fun k -> Alcotest.(check bool) k true (Bloom.mem b' k))
    [ "x"; "y"; "z" ]

(* --- sstable ---------------------------------------------------------------- *)

let test_sstable_roundtrip () =
  let fs = fresh_fs () in
  let bindings =
    List.init 200 (fun i ->
        (Printf.sprintf "key%04d" i, Some (Printf.sprintf "val%d" i)))
  in
  let meta = Sst.write fs "/table.ldb" bindings in
  Alcotest.(check int) "count" 200 meta.Simurgh_kvstore.Sstable.count;
  let fd = Fs.openf fs Simurgh_fs_common.Types.rdonly "/table.ldb" in
  (* every key readable *)
  List.iter
    (fun (k, v) ->
      Alcotest.(check (option (option string))) k (Some v) (Sst.get fs ~fd meta k))
    bindings;
  (* absent keys *)
  Alcotest.(check (option (option string))) "absent" None
    (Sst.get fs ~fd meta "nokey");
  Fs.close fs fd

let test_sstable_reopen () =
  let fs = fresh_fs () in
  let bindings = List.init 50 (fun i -> (Printf.sprintf "k%03d" i, Some "v")) in
  let _ = Sst.write fs "/t.ldb" bindings in
  let meta = Sst.open_ fs "/t.ldb" in
  let fd = Fs.openf fs Simurgh_fs_common.Types.rdonly "/t.ldb" in
  Alcotest.(check (option (option string))) "k025 via reopened meta"
    (Some (Some "v"))
    (Sst.get fs ~fd meta "k025");
  Fs.close fs fd

let test_sstable_iter () =
  let fs = fresh_fs () in
  let bindings = List.init 64 (fun i -> (Printf.sprintf "k%03d" i, Some "v")) in
  let meta = Sst.write fs "/t.ldb" bindings in
  let n = ref 0 in
  Sst.iter fs meta (fun _ _ -> incr n);
  Alcotest.(check int) "streamed all" 64 !n

(* --- db ---------------------------------------------------------------------- *)

let test_db_put_get_delete () =
  let fs = fresh_fs () in
  let db = Db.open_ fs in
  Db.put db "alpha" "1";
  Db.put db "beta" "2";
  Alcotest.(check (option string)) "get" (Some "1") (Db.get db "alpha");
  Db.put db "alpha" "1'";
  Alcotest.(check (option string)) "overwrite" (Some "1'") (Db.get db "alpha");
  Db.delete db "alpha";
  Alcotest.(check (option string)) "deleted" None (Db.get db "alpha");
  Alcotest.(check (option string)) "other intact" (Some "2") (Db.get db "beta");
  Db.close db

let test_db_flush_and_compaction () =
  let fs = fresh_fs () in
  let cfg =
    { Simurgh_kvstore.Db.default_config with
      Simurgh_kvstore.Db.memtable_bytes = 4096 }
  in
  let db = Db.open_ ~cfg fs in
  for i = 0 to 499 do
    Db.put db (Printf.sprintf "key%04d" i) (String.make 64 'v')
  done;
  let stats = Db.stats db in
  Alcotest.(check bool) "flushed" true
    (stats.Simurgh_kvstore.Db.flushes > 0);
  Alcotest.(check bool) "compacted" true
    (stats.Simurgh_kvstore.Db.compactions > 0);
  (* all data readable through the levels *)
  for i = 0 to 499 do
    Alcotest.(check (option string))
      (Printf.sprintf "key%04d" i)
      (Some (String.make 64 'v'))
      (Db.get db (Printf.sprintf "key%04d" i))
  done;
  Db.close db

let test_db_scan () =
  let fs = fresh_fs () in
  let db = Db.open_ fs in
  for i = 0 to 99 do
    Db.put db (Printf.sprintf "k%03d" i) (string_of_int i)
  done;
  let out = Db.scan db ~start:"k050" ~count:10 in
  Alcotest.(check int) "scan length" 10 (List.length out);
  Alcotest.(check string) "first" "k050" (fst (List.hd out));
  Db.close db

let test_db_read_modify_write () =
  let fs = fresh_fs () in
  let db = Db.open_ fs in
  Db.put db "ctr" "5";
  Db.read_modify_write db "ctr" (function
    | Some v -> string_of_int (int_of_string v + 1)
    | None -> "0");
  Alcotest.(check (option string)) "rmw" (Some "6") (Db.get db "ctr");
  Db.close db

let prop_db_matches_map =
  QCheck.Test.make ~name:"db matches a map model through flush/compaction"
    ~count:15
    QCheck.(list_of_size (QCheck.Gen.int_range 50 300)
              (pair (int_range 0 40) (option (int_range 0 999))))
    (fun ops ->
      let fs = fresh_fs () in
      let cfg =
        { Simurgh_kvstore.Db.default_config with
          Simurgh_kvstore.Db.memtable_bytes = 2048 }
      in
      let db = Db.open_ ~cfg fs in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          let key = Printf.sprintf "key%02d" k in
          match v with
          | Some v ->
              let value = string_of_int v in
              Db.put db key value;
              Hashtbl.replace model key value
          | None ->
              Db.delete db key;
              Hashtbl.remove model key)
        ops;
      let ok = ref true in
      for k = 0 to 40 do
        let key = Printf.sprintf "key%02d" k in
        if Db.get db key <> Hashtbl.find_opt model key then ok := false
      done;
      Db.close db;
      !ok)

let () =
  Alcotest.run "kvstore"
    [
      ( "record+memtable",
        [
          Alcotest.test_case "record roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "memtable" `Quick test_memtable_basics;
        ] );
      ( "bloom",
        [
          Alcotest.test_case "no false negatives" `Quick
            test_bloom_no_false_negatives;
          Alcotest.test_case "fpr" `Quick test_bloom_fpr_reasonable;
          Alcotest.test_case "serialization" `Quick test_bloom_serialization;
        ] );
      ( "sstable",
        [
          Alcotest.test_case "roundtrip" `Quick test_sstable_roundtrip;
          Alcotest.test_case "reopen" `Quick test_sstable_reopen;
          Alcotest.test_case "iter" `Quick test_sstable_iter;
        ] );
      ( "db",
        [
          Alcotest.test_case "put/get/delete" `Quick test_db_put_get_delete;
          Alcotest.test_case "flush+compaction" `Quick
            test_db_flush_and_compaction;
          Alcotest.test_case "scan" `Quick test_db_scan;
          Alcotest.test_case "read-modify-write" `Quick
            test_db_read_modify_write;
          QCheck_alcotest.to_alcotest prop_db_matches_map;
        ] );
    ]
