(* Model-based testing: Simurgh against a pure functional specification
   (a map from paths to contents) under random operation sequences. *)

open Simurgh_fs_common
module Fs = Simurgh_core.Fs

module M = Map.Make (String)

(* The model: directories and files with contents. *)
type model = { dirs : unit M.t; files : string M.t }

let empty_model = { dirs = M.add "/" () M.empty; files = M.empty }

let parent_of path = Path.dirname path

type op =
  | Create of string
  | Mkdir of string
  | Unlink of string
  | Rmdir of string
  | Rename of string * string
  | Write of string * string
  | Append of string * string
  | StatCheck of string

let pp_op = function
  | Create p -> "create " ^ p
  | Mkdir p -> "mkdir " ^ p
  | Unlink p -> "unlink " ^ p
  | Rmdir p -> "rmdir " ^ p
  | Rename (a, b) -> Printf.sprintf "rename %s %s" a b
  | Write (p, s) -> Printf.sprintf "write %s (%d bytes)" p (String.length s)
  | Append (p, s) -> Printf.sprintf "append %s (%d bytes)" p (String.length s)
  | StatCheck p -> "stat " ^ p

(* Candidate paths: two directory levels, small name space, so ops
   frequently collide with existing state. *)
let path_gen =
  QCheck.Gen.(
    let name = map (Printf.sprintf "n%d") (int_range 0 5) in
    let dir = map (Printf.sprintf "/d%d") (int_range 0 2) in
    oneof
      [
        map (fun n -> "/" ^ n) name;
        map2 (fun d n -> d ^ "/" ^ n) dir name;
      ])

let dir_gen = QCheck.Gen.(map (Printf.sprintf "/d%d") (int_range 0 2))

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun p -> Create p) path_gen);
        (2, map (fun d -> Mkdir d) dir_gen);
        (2, map (fun p -> Unlink p) path_gen);
        (1, map (fun d -> Rmdir d) dir_gen);
        (2, map2 (fun a b -> Rename (a, b)) path_gen path_gen);
        ( 2,
          map2
            (fun p n -> Write (p, String.make (n + 1) 'w'))
            path_gen (int_range 0 200) );
        ( 2,
          map2
            (fun p n -> Append (p, String.make (n + 1) 'a'))
            path_gen (int_range 0 100) );
        (2, map (fun p -> StatCheck p) path_gen);
      ])

(* Apply to the model, mirroring POSIX semantics; returns updated model +
   whether the op should succeed. *)
let model_apply m op =
  let dir_exists d = M.mem d m.dirs in
  let parent_ok p = dir_exists (parent_of p) in
  let exists p = M.mem p m.files || M.mem p m.dirs in
  match op with
  | Create p ->
      if (not (parent_ok p)) || exists p then (m, false)
      else ({ m with files = M.add p "" m.files }, true)
  | Mkdir d ->
      if exists d then (m, false)
      else ({ m with dirs = M.add d () m.dirs }, true)
  | Unlink p ->
      if M.mem p m.files then ({ m with files = M.remove p m.files }, true)
      else (m, false)
  | Rmdir d ->
      if
        M.mem d m.dirs && d <> "/"
        && not
             (M.exists (fun p _ -> parent_of p = d) m.files
             || M.exists
                  (fun p _ -> p <> "/" && p <> d && parent_of p = d)
                  m.dirs)
      then ({ m with dirs = M.remove d m.dirs }, true)
      else (m, false)
  | Rename (a, b) ->
      (* file-to-file renames only (directory renames are tested in
         test_fs); destination may be replaced if it is a file *)
      if a = b then (m, M.mem a m.files)
      else if M.mem a m.files && parent_ok b && not (M.mem b m.dirs) then
        let content = M.find a m.files in
        ({ m with files = M.add b content (M.remove a m.files) }, true)
      else (m, false)
  | Write (p, s) ->
      if M.mem p m.files then ({ m with files = M.add p s m.files }, true)
      else (m, false)
  | Append (p, s) ->
      if M.mem p m.files then
        let old = M.find p m.files in
        ({ m with files = M.add p (old ^ s) m.files }, true)
      else (m, false)
  | StatCheck _ -> (m, true)

let is_file fs p =
  match Fs.stat fs p with
  | st -> st.Types.kind = Types.File
  | exception Errno.Err _ -> false

let fs_apply fs op =
  match op with
  | Create p -> ( try Fs.create_file fs p; true with Errno.Err _ -> false)
  | Mkdir d -> ( try Fs.mkdir fs d; true with Errno.Err _ -> false)
  | Unlink p -> ( try Fs.unlink fs p; true with Errno.Err _ -> false)
  | Rmdir d -> ( try Fs.rmdir fs d; true with Errno.Err _ -> false)
  | Rename (a, b) ->
      (* mirror the model's file-only rename semantics *)
      if not (is_file fs a) then false
      else if a <> b && Fs.exists fs b && not (is_file fs b) then false
      else ( try Fs.rename fs a b; true with Errno.Err _ -> false)
  | Write (p, s) -> (
      if not (is_file fs p) then false
      else
        try
          Fs.truncate fs p 0;
          let fd = Fs.openf fs Types.rdwr p in
          ignore (Fs.pwrite fs fd ~pos:0 (Bytes.of_string s));
          Fs.close fs fd;
          true
        with Errno.Err _ -> false)
  | Append (p, s) -> (
      if not (is_file fs p) then false
      else
        try
          let fd = Fs.openf fs Types.wronly p in
          ignore (Fs.append fs fd (Bytes.of_string s));
          Fs.close fs fd;
          true
        with Errno.Err _ -> false)
  | StatCheck _ -> true

let read_file fs p =
  let st = Fs.stat fs p in
  let fd = Fs.openf fs Types.rdonly p in
  let b = Fs.pread fs fd ~pos:0 ~len:st.Types.size in
  Fs.close fs fd;
  Bytes.to_string b

(* Final consistency: every model file exists in the FS with the same
   content; every model dir exists. *)
let check_against_model fs m =
  M.for_all
    (fun p content ->
      match read_file fs p with
      | c -> c = content
      | exception Errno.Err _ -> false)
    m.files
  && M.for_all
       (fun d () ->
         d = "/"
         ||
         match Fs.stat fs d with
         | st -> st.Types.kind = Types.Dir
         | exception Errno.Err _ -> false)
       m.dirs

let run_ops fs ops ~remount_every =
  let fsr = ref fs in
  let region = Fs.region fs in
  let count = ref 0 in
  let final_model =
    List.fold_left
      (fun m op ->
        incr count;
        if remount_every > 0 && !count mod remount_every = 0 then begin
          Fs.unmount !fsr;
          fsr := Fs.mount ~euid:0 region
        end;
        let m', model_ok = model_apply m op in
        let fs_ok = fs_apply !fsr op in
        if model_ok <> fs_ok then
          QCheck.Test.fail_reportf "divergence on %s: model=%b fs=%b"
            (pp_op op) model_ok fs_ok;
        m')
      empty_model ops
  in
  check_against_model !fsr final_model

let prop_model =
  QCheck.Test.make ~name:"Simurgh matches the map model" ~count:60
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
       QCheck.Gen.(list_size (int_range 1 60) op_gen))
    (fun ops ->
      let region = Simurgh_nvmm.Region.create (64 * 1024 * 1024) in
      let fs = Fs.mkfs ~euid:0 region in
      run_ops fs ops ~remount_every:0)

let prop_model_with_remounts =
  QCheck.Test.make ~name:"model holds across remounts" ~count:25
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
       QCheck.Gen.(list_size (int_range 20 80) op_gen))
    (fun ops ->
      let region = Simurgh_nvmm.Region.create (64 * 1024 * 1024) in
      let fs = Fs.mkfs ~euid:0 region in
      run_ops fs ops ~remount_every:20)

let () =
  Alcotest.run "fs-model"
    [
      ( "model",
        [
          QCheck_alcotest.to_alcotest prop_model;
          QCheck_alcotest.to_alcotest prop_model_with_remounts;
        ] );
    ]
