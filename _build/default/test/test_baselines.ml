(* The kernel-FS baselines must provide the same POSIX semantics as
   Simurgh: run the shared suite against each of them, plus a few checks
   of the mechanisms that differentiate them (dcache stats, staged
   appends). *)

module Nova_suite =
  Fs_suite.Make
    (Simurgh_baselines.Nova)
    (struct
      let fresh () = Simurgh_baselines.Nova.create ()
    end)

module Pmfs_suite =
  Fs_suite.Make
    (Simurgh_baselines.Pmfs)
    (struct
      let fresh () = Simurgh_baselines.Pmfs.create ()
    end)

module Ext4_suite =
  Fs_suite.Make
    (Simurgh_baselines.Ext4dax)
    (struct
      let fresh () = Simurgh_baselines.Ext4dax.create ()
    end)

module Splitfs_suite =
  Fs_suite.Make
    (Simurgh_baselines.Splitfs)
    (struct
      let fresh () = Simurgh_baselines.Splitfs.create ()
    end)

let test_names () =
  Alcotest.(check string) "nova" "NOVA"
    (Simurgh_baselines.Kernel_fs.name (Simurgh_baselines.Nova.create ()));
  Alcotest.(check string) "pmfs" "PMFS"
    (Simurgh_baselines.Kernel_fs.name (Simurgh_baselines.Pmfs.create ()));
  Alcotest.(check string) "ext4" "EXT4-DAX"
    (Simurgh_baselines.Kernel_fs.name (Simurgh_baselines.Ext4dax.create ()));
  Alcotest.(check string) "splitfs" "SplitFS"
    (Simurgh_baselines.Kernel_fs.name (Simurgh_baselines.Splitfs.create ()))

let test_dcache_hits () =
  let fs = Simurgh_baselines.Nova.create () in
  Simurgh_baselines.Nova.mkdir fs "/d";
  Simurgh_baselines.Nova.create_file fs "/d/f";
  for _ = 1 to 10 do
    ignore (Simurgh_baselines.Nova.stat fs "/d/f")
  done;
  let hits, _ = Simurgh_baselines.Kernel_fs.dcache_stats fs in
  Alcotest.(check bool) "repeated lookups hit the dcache" true (hits >= 18)

let test_splitfs_staged_appends_content () =
  (* the staging fast path must still produce correct file contents *)
  let open Simurgh_fs_common in
  let fs = Simurgh_baselines.Splitfs.create () in
  Simurgh_baselines.Splitfs.create_file fs "/w";
  let fd = Simurgh_baselines.Splitfs.openf fs Types.wronly "/w" in
  for i = 0 to 199 do
    ignore
      (Simurgh_baselines.Splitfs.append fs fd
         (Bytes.make 10 (Char.chr (97 + (i mod 26)))))
  done;
  Simurgh_baselines.Splitfs.close fs fd;
  let fd = Simurgh_baselines.Splitfs.openf fs Types.rdonly "/w" in
  let b = Simurgh_baselines.Splitfs.pread fs fd ~pos:1990 ~len:10 in
  (* append #199 wrote 'h' (199 mod 26 = 17 -> 'r')? compute: 97+17='r' *)
  Alcotest.(check string) "staged content correct" (String.make 10 'r')
    (Bytes.to_string b);
  Simurgh_baselines.Splitfs.close fs fd

let () =
  Alcotest.run "baselines"
    [
      ("nova-posix", Nova_suite.suite);
      ("pmfs-posix", Pmfs_suite.suite);
      ("ext4dax-posix", Ext4_suite.suite);
      ("splitfs-posix", Splitfs_suite.suite);
      ( "mechanisms",
        [
          Alcotest.test_case "names" `Quick test_names;
          Alcotest.test_case "dcache hits" `Quick test_dcache_hits;
          Alcotest.test_case "staged append content" `Quick
            test_splitfs_staged_appends_content;
        ] );
    ]
