(* Tests for the simulated NVMM region: accessors, persistence semantics
   (clwb/sfence/ntstore/crash) and persistent pointers. *)

open Simurgh_nvmm

let mk ?mode () = Region.create ?mode (1 lsl 20)

(* --- accessors ----------------------------------------------------------- *)

let test_scalar_roundtrips () =
  let r = mk () in
  Region.write_u8 r 0 0xab;
  Alcotest.(check int) "u8" 0xab (Region.read_u8 r 0);
  Region.write_u16 r 10 0xbeef;
  Alcotest.(check int) "u16" 0xbeef (Region.read_u16 r 10);
  Region.write_u32 r 20 0xdeadbeef;
  Alcotest.(check int) "u32" 0xdeadbeef (Region.read_u32 r 20);
  Region.write_u62 r 30 0x1234_5678_9abc;
  Alcotest.(check int) "u62" 0x1234_5678_9abc (Region.read_u62 r 30)

let test_bytes_roundtrip () =
  let r = mk () in
  Region.write_string r 100 "simurgh";
  Alcotest.(check string) "bytes" "simurgh"
    (Bytes.to_string (Region.read_bytes r 100 7))

let test_zero () =
  let r = mk () in
  Region.write_string r 0 "xxxxxxxx";
  Region.zero r 0 8;
  Alcotest.(check string) "zeroed" (String.make 8 '\000')
    (Bytes.to_string (Region.read_bytes r 0 8))

let test_bounds_check () =
  let r = mk () in
  Alcotest.check_raises "oob"
    (Invalid_argument
       "Region: access [1048576, 1048577) outside region of 1048576 bytes")
    (fun () -> ignore (Region.read_u8 r (1 lsl 20)))

let prop_u62_roundtrip =
  QCheck.Test.make ~name:"u62 roundtrip" ~count:500
    QCheck.(pair (int_range 0 1000) (int_bound ((1 lsl 40) - 1)))
    (fun (off, v) ->
      let r = mk () in
      Region.write_u62 r (off * 8) v;
      Region.read_u62 r (off * 8) = v)

(* --- persistence (strict mode) ------------------------------------------- *)

let test_unflushed_lost_on_crash () =
  let r = mk ~mode:Region.Strict () in
  Region.write_string r 0 "volatile";
  Alcotest.(check string) "visible before crash" "volatile"
    (Bytes.to_string (Region.read_bytes r 0 8));
  Region.crash r;
  Alcotest.(check string) "lost after crash" (String.make 8 '\000')
    (Bytes.to_string (Region.read_bytes r 0 8))

let test_clwb_alone_not_durable () =
  let r = mk ~mode:Region.Strict () in
  Region.write_string r 0 "pending!";
  Region.clwb r 0 8;
  Region.crash r;
  (* clwb without sfence gives no guarantee *)
  Alcotest.(check string) "lost" (String.make 8 '\000')
    (Bytes.to_string (Region.read_bytes r 0 8))

let test_clwb_sfence_durable () =
  let r = mk ~mode:Region.Strict () in
  Region.write_string r 0 "durable!";
  Region.clwb r 0 8;
  Region.sfence r;
  Region.crash r;
  Alcotest.(check string) "survived" "durable!"
    (Bytes.to_string (Region.read_bytes r 0 8))

let test_ntstore_needs_fence () =
  let r = mk ~mode:Region.Strict () in
  Region.ntstore r 0 (Bytes.of_string "ntstore!");
  Region.crash r;
  Alcotest.(check string) "wc buffer lost" (String.make 8 '\000')
    (Bytes.to_string (Region.read_bytes r 0 8));
  Region.ntstore r 0 (Bytes.of_string "ntstore!");
  Region.sfence r;
  Region.crash r;
  Alcotest.(check string) "fenced survives" "ntstore!"
    (Bytes.to_string (Region.read_bytes r 0 8))

let test_partial_flush () =
  let r = mk ~mode:Region.Strict () in
  (* two distinct cache lines; only the first is persisted *)
  Region.write_string r 0 "first";
  Region.write_string r 128 "second";
  Region.persist r 0 5;
  Region.crash r;
  Alcotest.(check string) "first survived" "first"
    (Bytes.to_string (Region.read_bytes r 0 5));
  Alcotest.(check string) "second lost" (String.make 6 '\000')
    (Bytes.to_string (Region.read_bytes r 128 6))

let test_unpersisted_lines_counter () =
  let r = mk ~mode:Region.Strict () in
  Alcotest.(check int) "clean" 0 (Region.unpersisted_lines r);
  Region.write_u8 r 0 1;
  Region.write_u8 r 200 1;
  Alcotest.(check int) "two dirty lines" 2 (Region.unpersisted_lines r);
  Region.persist r 0 256;
  Alcotest.(check int) "flushed" 0 (Region.unpersisted_lines r)

let prop_strict_persist_roundtrip =
  QCheck.Test.make ~name:"strict: persisted writes survive crash" ~count:100
    QCheck.(pair (int_range 0 4000) (string_of_size (Gen.int_range 1 64)))
    (fun (off, s) ->
      let r = mk ~mode:Region.Strict () in
      Region.write_string r off s;
      Region.persist r off (String.length s);
      Region.crash r;
      Bytes.to_string (Region.read_bytes r off (String.length s)) = s)

let test_fast_mode_crash_noop () =
  let r = mk () in
  Region.write_string r 0 "keep";
  Region.crash r;
  Alcotest.(check string) "fast mode keeps data" "keep"
    (Bytes.to_string (Region.read_bytes r 0 4))

let test_save_load_roundtrip () =
  let r = mk () in
  Region.write_string r 1000 "on disk";
  let path = Filename.temp_file "simurgh" ".img" in
  Region.save_to_file r path;
  let r2 = Region.load_from_file path in
  Sys.remove path;
  Alcotest.(check int) "size" (Region.size r) (Region.size r2);
  Alcotest.(check string) "contents" "on disk"
    (Bytes.to_string (Region.read_bytes r2 1000 7))

let test_save_excludes_unflushed () =
  let r = mk ~mode:Region.Strict () in
  Region.write_string r 0 "flushed!";
  Region.persist r 0 8;
  Region.write_string r 100 "volatile";
  let path = Filename.temp_file "simurgh" ".img" in
  Region.save_to_file r path;
  let r2 = Region.load_from_file path in
  Sys.remove path;
  Alcotest.(check string) "persisted part saved" "flushed!"
    (Bytes.to_string (Region.read_bytes r2 0 8));
  Alcotest.(check string) "unflushed part absent" (String.make 8 '\000')
    (Bytes.to_string (Region.read_bytes r2 100 8))

(* --- guard ----------------------------------------------------------------- *)

exception Guarded

let test_guard_intercepts () =
  let r = mk () in
  Region.set_guard r (fun ~write:_ -> raise Guarded);
  Alcotest.check_raises "read guarded" Guarded (fun () ->
      ignore (Region.read_u8 r 0));
  Alcotest.check_raises "write guarded" Guarded (fun () ->
      Region.write_u8 r 0 1);
  Region.clear_guard r;
  ignore (Region.read_u8 r 0)

let test_stats_counters () =
  let r = mk () in
  let s0 = Region.stats r in
  Region.write_u8 r 0 1;
  ignore (Region.read_u8 r 0);
  Region.clwb r 0 1;
  Region.sfence r;
  let s1 = Region.stats r in
  Alcotest.(check bool) "counters move" true
    (s1.Region.stores > s0.Region.stores
    && s1.Region.loads > s0.Region.loads
    && s1.Region.flushes > s0.Region.flushes
    && s1.Region.fences > s0.Region.fences)

(* --- pptr ----------------------------------------------------------------- *)

let test_pptr_basics () =
  Alcotest.(check bool) "null" true (Pptr.is_null Pptr.null);
  let p : unit Pptr.t = Pptr.of_offset 4096 in
  Alcotest.(check int) "offset" 4096 (Pptr.offset p);
  Alcotest.(check bool) "eq" true (Pptr.equal p (Pptr.of_offset 4096));
  Alcotest.check_raises "negative"
    (Invalid_argument "Pptr.of_offset: negative offset") (fun () ->
      ignore (Pptr.of_offset (-1)))

let prop_pptr_store_load =
  QCheck.Test.make ~name:"pptr store/load roundtrip" ~count:200
    QCheck.(pair (int_range 0 1000) (int_range 0 ((1 lsl 40) - 1)))
    (fun (slot, off) ->
      let r = mk () in
      let p : unit Pptr.t = Pptr.of_offset off in
      Pptr.store r (slot * 8) p;
      Pptr.equal (Pptr.load r (slot * 8)) p)

let () =
  Alcotest.run "nvmm"
    [
      ( "region",
        [
          Alcotest.test_case "scalar roundtrips" `Quick test_scalar_roundtrips;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "zero" `Quick test_zero;
          Alcotest.test_case "bounds" `Quick test_bounds_check;
          QCheck_alcotest.to_alcotest prop_u62_roundtrip;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "unflushed lost" `Quick
            test_unflushed_lost_on_crash;
          Alcotest.test_case "clwb alone insufficient" `Quick
            test_clwb_alone_not_durable;
          Alcotest.test_case "clwb+sfence durable" `Quick
            test_clwb_sfence_durable;
          Alcotest.test_case "ntstore semantics" `Quick test_ntstore_needs_fence;
          Alcotest.test_case "partial flush" `Quick test_partial_flush;
          Alcotest.test_case "unpersisted counter" `Quick
            test_unpersisted_lines_counter;
          Alcotest.test_case "fast-mode crash noop" `Quick
            test_fast_mode_crash_noop;
          Alcotest.test_case "save/load roundtrip" `Quick
            test_save_load_roundtrip;
          Alcotest.test_case "save excludes unflushed" `Quick
            test_save_excludes_unflushed;
          QCheck_alcotest.to_alcotest prop_strict_persist_roundtrip;
        ] );
      ( "guard+stats",
        [
          Alcotest.test_case "guard intercepts" `Quick test_guard_intercepts;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
        ] );
      ( "pptr",
        [
          Alcotest.test_case "basics" `Quick test_pptr_basics;
          QCheck_alcotest.to_alcotest prop_pptr_store_load;
        ] );
    ]
