(* Workload-generator tests: deterministic tree generation, and smoke
   runs of every benchmark driver at tiny scale (each must complete and
   report positive throughput). *)

open Simurgh_workloads
module Fs = Simurgh_core.Fs

let fresh_fs () = Fs.mkfs ~euid:0 (Simurgh_nvmm.Region.create (256 * 1024 * 1024))

let test_linux_tree_deterministic () =
  let spec = { Linux_tree.default with Linux_tree.files = 500 } in
  let d1, f1 = Linux_tree.generate spec in
  let d2, f2 = Linux_tree.generate spec in
  Alcotest.(check int) "same dirs" (List.length d1) (List.length d2);
  Alcotest.(check bool) "same files" true (f1 = f2);
  Alcotest.(check int) "file count" 500 (List.length f1)

let test_linux_tree_populates () =
  let module T = Linux_tree.Make (Fs) in
  let fs = fresh_fs () in
  let tree = Linux_tree.generate { Linux_tree.default with Linux_tree.files = 200 } in
  T.populate fs tree;
  let _, files = tree in
  List.iter
    (fun { Linux_tree.path; size } ->
      let st = Fs.stat fs path in
      Alcotest.(check int) path size st.Simurgh_fs_common.Types.size)
    files

let run_fx bench =
  let module Fx = Fxmark.Make (Fs) in
  let fs = fresh_fs () in
  let m = Simurgh_sim.Machine.create () in
  (* fallocate maps 4 MiB per op: keep it within the region *)
  let ops = match bench with Fxmark.Fallocate_private -> 8 | _ -> 50 in
  Fx.run m fs bench ~threads:2 ~ops

let test_fxmark_all_benches () =
  List.iter
    (fun bench ->
      let r = run_fx bench in
      Alcotest.(check bool)
        (Fxmark.bench_name bench)
        true
        (r.Fxmark.throughput > 0.0))
    [
      Fxmark.Create_private;
      Fxmark.Create_shared;
      Fxmark.Delete_private;
      Fxmark.Rename_shared;
      Fxmark.Resolve_private;
      Fxmark.Resolve_shared;
      Fxmark.Append_private;
      Fxmark.Fallocate_private;
      Fxmark.Read_shared { cache_hot = false };
      Fxmark.Read_shared { cache_hot = true };
      Fxmark.Read_private { cache_hot = false };
      Fxmark.Overwrite_shared;
      Fxmark.Write_private;
    ]

let test_fxmark_deterministic () =
  let r1 = run_fx Fxmark.Create_shared in
  let r2 = run_fx Fxmark.Create_shared in
  Alcotest.(check (float 0.0001)) "reproducible virtual time"
    r1.Fxmark.throughput r2.Fxmark.throughput

let test_filebench_personalities () =
  let module FB = Filebench.Make (Fs) in
  List.iter
    (fun p ->
      let fs = fresh_fs () in
      let m = Simurgh_sim.Machine.create () in
      let cfg = Filebench.config ~scale:0.05 p in
      let cfg = { cfg with Filebench.threads = 4 } in
      let r = FB.run m fs p ~cfg ~loops_per_thread:2 in
      Alcotest.(check bool) (Filebench.name p) true (r.Filebench.ops_per_s > 0.0))
    [ Filebench.Varmail; Filebench.Webserver; Filebench.Webproxy;
      Filebench.Fileserver ]

let test_ycsb_workloads () =
  let module Y = Ycsb.Make (Fs) in
  List.iter
    (fun w ->
      let fs = fresh_fs () in
      let m = Simurgh_sim.Machine.create () in
      let r = Y.run m fs w ~records:200 ~ops:200 ~threads:2 in
      Alcotest.(check bool) (Ycsb.name w) true (r.Ycsb.ops_per_s > 0.0);
      (* breakdown fractions sum to ~1 *)
      let sum = r.Ycsb.app_frac +. r.Ycsb.copy_frac +. r.Ycsb.fs_frac in
      Alcotest.(check bool) "fractions sum" true (abs_float (sum -. 1.0) < 0.01))
    Ycsb.all

let test_tar_roundtrip () =
  let module T = Tar_sim.Make (Fs) in
  let module Tree = Linux_tree.Make (Fs) in
  let fs = fresh_fs () in
  let tree = Linux_tree.generate { Linux_tree.default with Linux_tree.files = 60 } in
  Tree.populate fs tree;
  let m = Simurgh_sim.Machine.create () in
  let thr = Simurgh_sim.Sthread.create 0 in
  let p = T.pack ~thr m fs ~archive:"/a.tar" tree in
  Alcotest.(check int) "packed all" 60 p.Tar_sim.files;
  Alcotest.(check bool) "pack time positive" true (p.Tar_sim.seconds > 0.0);
  let u = T.unpack ~thr m fs ~archive:"/a.tar" tree ~dst:"/out" in
  Alcotest.(check bool) "unpack time positive" true (u.Tar_sim.seconds > 0.0);
  (* unpacked files exist with the right sizes *)
  let _, files = tree in
  List.iter
    (fun { Linux_tree.path; size } ->
      let st = Fs.stat fs ("/out" ^ path) in
      Alcotest.(check int) path size st.Simurgh_fs_common.Types.size)
    files

let test_git_phases () =
  let module G = Git_sim.Make (Fs) in
  let module Tree = Linux_tree.Make (Fs) in
  let fs = fresh_fs () in
  let tree = Linux_tree.generate { Linux_tree.default with Linux_tree.files = 40 } in
  Tree.populate fs tree;
  let m = Simurgh_sim.Machine.create () in
  let r = G.run m fs tree in
  Alcotest.(check int) "files" 40 r.Git_sim.files;
  Alcotest.(check bool) "phases timed" true
    (r.Git_sim.add_s > 0.0 && r.Git_sim.commit_s > 0.0 && r.Git_sim.reset_s > 0.0);
  (* reset restored the working tree *)
  let _, files = tree in
  List.iter
    (fun { Linux_tree.path; size } ->
      Alcotest.(check int) path size
        (Fs.stat fs path).Simurgh_fs_common.Types.size)
    files

let test_instrument_counts () =
  let module I = Instrument.Make (Fs) in
  let fs = fresh_fs () in
  let acc = Instrument.fresh_acc () in
  let ifs = (fs, acc) in
  let m = Simurgh_sim.Machine.create () in
  let thr = Simurgh_sim.Sthread.create 0 in
  let ctx = Simurgh_sim.Machine.ctx m thr in
  I.create_file ~ctx ifs "/f";
  let fd = I.openf ~ctx ifs Simurgh_fs_common.Types.rdwr "/f" in
  ignore (I.append ~ctx ifs fd (Bytes.make 100 'x'));
  ignore (I.pread ~ctx ifs fd ~pos:0 ~len:100);
  I.close ~ctx ifs fd;
  Alcotest.(check int) "calls" 5 acc.Instrument.calls;
  Alcotest.(check int) "copy bytes" 200 acc.Instrument.copy_bytes;
  Alcotest.(check bool) "fs time recorded" true (acc.Instrument.fs_cycles > 0.0)

let () =
  Alcotest.run "workloads"
    [
      ( "linux-tree",
        [
          Alcotest.test_case "deterministic" `Quick
            test_linux_tree_deterministic;
          Alcotest.test_case "populates" `Quick test_linux_tree_populates;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "fxmark all benches" `Quick
            test_fxmark_all_benches;
          Alcotest.test_case "fxmark deterministic" `Quick
            test_fxmark_deterministic;
          Alcotest.test_case "filebench" `Quick test_filebench_personalities;
          Alcotest.test_case "ycsb" `Quick test_ycsb_workloads;
          Alcotest.test_case "tar" `Quick test_tar_roundtrip;
          Alcotest.test_case "git" `Quick test_git_phases;
          Alcotest.test_case "instrument" `Quick test_instrument_counts;
        ] );
    ]
