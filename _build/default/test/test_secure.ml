(* End-to-end security tests: the Simurgh region is only accessible
   through protected functions (Section 3.2). *)

open Simurgh_fs_common
module Fs = Simurgh_core.Fs
module Secure = Simurgh_core.Secure
open Simurgh_hw

let mk () =
  let region = Simurgh_nvmm.Region.create (32 * 1024 * 1024) in
  let fs = Fs.mkfs ~euid:0 region in
  (region, fs, Secure.bootstrap ~euid:0 ~egid:0 fs)

let test_ops_through_protected_stubs () =
  let _, _, s = mk () in
  Secure.mkdir s "/home";
  Secure.create s "/home/file";
  let fd = Secure.openf s Types.rdwr "/home/file" in
  Alcotest.(check int) "append" 5 (Secure.append s fd (Bytes.of_string "hello"));
  Alcotest.(check string) "read back" "hello"
    (Bytes.to_string (Secure.pread s fd ~pos:0 ~len:5));
  Secure.close s fd;
  Alcotest.(check int) "stat size" 5 (Secure.stat s "/home/file").Types.size;
  Secure.rename s "/home/file" "/home/renamed";
  Alcotest.(check (list string)) "readdir" [ "renamed" ]
    (Secure.readdir s "/home");
  Secure.unlink s "/home/renamed";
  Secure.rmdir s "/home"

let test_user_mode_region_access_faults () =
  let region, _, s = mk () in
  ignore s;
  (* direct load/store of FS bytes from user code must fault *)
  (match Simurgh_nvmm.Region.read_u8 region 0 with
  | _ -> Alcotest.fail "user-mode read did not fault"
  | exception Fault.Fault (Fault.Kernel_page_access { write = false; _ }) -> ());
  match Simurgh_nvmm.Region.write_u8 region 0 0xff with
  | _ -> Alcotest.fail "user-mode write did not fault"
  | exception Fault.Fault (Fault.Kernel_page_access { write = true; _ }) -> ()

let test_region_accessible_inside_protected () =
  (* the stubs themselves read/write the region constantly; if the guard
     misfired inside jmpp the previous test's ops would have failed.
     Check explicitly via a custom protected probe. *)
  let region, fs, s = mk () in
  ignore fs;
  let cpu = Secure.cpu s in
  (* enter kernel mode through an existing stub path: stat reads the
     region while in kernel mode *)
  Secure.create s "/probe";
  Alcotest.(check bool) "region guarded again after pret" true
    (match Simurgh_nvmm.Region.read_u8 region 0 with
    | _ -> false
    | exception Fault.Fault _ -> true);
  Alcotest.(check bool) "cpu back in user mode" true
    (Cpu.mode cpu = Privilege.User)

let test_jmpp_raw_attacks_fault () =
  let _, _, s = mk () in
  let univ = Secure.universe s in
  let addr = Protected.address_of univ "simurgh_create" in
  let page = Page_table.page_of_addr addr in
  (* jump into the middle of a protected function *)
  (match Protected.jmpp_raw univ ((page * Page_table.page_size) + 0x123) with
  | _ -> Alcotest.fail "mid-function jmpp did not fault"
  | exception Fault.Fault (Fault.Jmpp_bad_entry_offset _) -> ());
  (* jump to a non-protected page *)
  match Protected.jmpp_raw univ (0x500 * Page_table.page_size) with
  | _ -> Alcotest.fail "unprotected jmpp did not fault"
  | exception Fault.Fault (Fault.Jmpp_target_not_protected _) -> ()

let test_ep_cannot_be_set_from_user () =
  let _, _, s = mk () in
  let cpu = Secure.cpu s in
  Page_table.map cpu.Cpu.page_table ~page:0x999 ~kernel:false ~writable:true;
  match Page_table.set_ep cpu.Cpu.page_table ~mode:(Cpu.mode cpu) ~page:0x999 with
  | _ -> Alcotest.fail "ep set from user mode"
  | exception Fault.Fault (Fault.Ep_set_from_user _) -> ()

let test_protected_mapping_cannot_be_remapped () =
  let _, _, s = mk () in
  let cpu = Secure.cpu s in
  let page = List.hd (Protected.pages (Secure.universe s)) in
  match Page_table.remap cpu.Cpu.page_table ~page ~kernel:false ~writable:true with
  | _ -> Alcotest.fail "protected mapping replaced"
  | exception Fault.Fault (Fault.Write_to_protected_mapping _) -> ()

let test_permission_checks_still_apply () =
  (* protected functions enforce the permission bits with the creds
     captured at bootstrap *)
  let region = Simurgh_nvmm.Region.create (32 * 1024 * 1024) in
  let fs = Fs.mkfs ~euid:0 region in
  Fs.mkdir fs ~perm:0o700 "/rootonly";
  let s = Secure.bootstrap ~euid:1000 ~egid:1000 fs in
  match Secure.create s "/rootonly/f" with
  | _ -> Alcotest.fail "EACCES expected"
  | exception Errno.Err (EACCES, _) -> ()

let test_errors_propagate_through_jmpp () =
  let _, _, s = mk () in
  (match Secure.stat s "/missing" with
  | _ -> Alcotest.fail "ENOENT expected"
  | exception Errno.Err (ENOENT, _) -> ());
  (* the CPU must be back in user mode after the exception *)
  Alcotest.(check bool) "mode restored" true
    (Cpu.mode (Secure.cpu s) = Privilege.User)

let () =
  Alcotest.run "secure"
    [
      ( "secure",
        [
          Alcotest.test_case "ops via protected stubs" `Quick
            test_ops_through_protected_stubs;
          Alcotest.test_case "user region access faults" `Quick
            test_user_mode_region_access_faults;
          Alcotest.test_case "guard restored after pret" `Quick
            test_region_accessible_inside_protected;
          Alcotest.test_case "jmpp attacks fault" `Quick
            test_jmpp_raw_attacks_fault;
          Alcotest.test_case "ep from user faults" `Quick
            test_ep_cannot_be_set_from_user;
          Alcotest.test_case "remap protected faults" `Quick
            test_protected_mapping_cannot_be_remapped;
          Alcotest.test_case "permissions enforced" `Quick
            test_permission_checks_still_apply;
          Alcotest.test_case "errors propagate" `Quick
            test_errors_propagate_through_jmpp;
        ] );
    ]
