test/test_sim.ml: Alcotest Array Cost_model Engine Fun Hashtbl Int64 List Machine QCheck QCheck_alcotest Resource Rng Simurgh_sim Stats Sthread Vlock Zipf
