test/test_workloads.ml: Alcotest Bytes Filebench Fxmark Git_sim Instrument Linux_tree List Simurgh_core Simurgh_fs_common Simurgh_nvmm Simurgh_sim Simurgh_workloads Tar_sim Ycsb
