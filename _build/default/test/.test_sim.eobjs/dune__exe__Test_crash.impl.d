test/test_crash.ml: Alcotest Bytes Errno List Printf QCheck QCheck_alcotest Simurgh_core Simurgh_fs_common Simurgh_nvmm Types
