test/test_hw.ml: Alcotest Cpu Fault Gem5 List Page_table Printf Privilege Protected Simurgh_hw
