test/test_alloc.ml: Alcotest Bytes Hashtbl List Option QCheck QCheck_alcotest Region Simurgh_alloc Simurgh_nvmm String
