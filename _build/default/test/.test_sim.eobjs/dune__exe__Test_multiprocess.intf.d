test/test_multiprocess.mli:
