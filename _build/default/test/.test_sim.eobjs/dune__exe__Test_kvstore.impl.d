test/test_kvstore.ml: Alcotest Buffer Hashtbl List Printf QCheck QCheck_alcotest Simurgh_core Simurgh_fs_common Simurgh_kvstore Simurgh_nvmm String
