test/test_dirblock.ml: Alcotest Dirblock Fentry Hashtbl List Name_hash Printf QCheck QCheck_alcotest Region Simurgh_core Simurgh_nvmm String
