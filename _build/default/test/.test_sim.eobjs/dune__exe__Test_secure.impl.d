test/test_secure.ml: Alcotest Bytes Cpu Errno Fault List Page_table Privilege Protected Simurgh_core Simurgh_fs_common Simurgh_hw Simurgh_nvmm Types
