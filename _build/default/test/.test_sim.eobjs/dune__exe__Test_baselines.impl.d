test/test_baselines.ml: Alcotest Bytes Char Fs_suite Simurgh_baselines Simurgh_fs_common String Types
