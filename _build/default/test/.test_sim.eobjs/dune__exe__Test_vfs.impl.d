test/test_vfs.ml: Alcotest Float Machine Simurgh_sim Simurgh_vfs Sthread Vlock
