test/test_nvmm.ml: Alcotest Bytes Filename Gen Pptr QCheck QCheck_alcotest Region Simurgh_nvmm String Sys
