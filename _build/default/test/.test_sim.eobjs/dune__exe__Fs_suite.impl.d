test/fs_suite.ml: Alcotest Bytes Char Errno Fs_intf List Printf Simurgh_fs_common Types
