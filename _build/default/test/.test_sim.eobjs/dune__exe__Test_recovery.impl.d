test/test_recovery.ml: Alcotest Bytes Errno List Printf QCheck QCheck_alcotest Simurgh_alloc Simurgh_core Simurgh_fs_common Simurgh_nvmm Types
