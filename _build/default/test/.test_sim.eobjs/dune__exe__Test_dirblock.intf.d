test/test_dirblock.mli:
