test/test_fs_model.mli:
