test/test_fs.ml: Alcotest Bytes Errno Filename Fs_suite Hashtbl List Printf QCheck QCheck_alcotest Simurgh_alloc Simurgh_core Simurgh_fs_common Simurgh_nvmm String Types
