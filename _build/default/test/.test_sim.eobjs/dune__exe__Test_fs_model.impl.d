test/test_fs_model.ml: Alcotest Bytes Errno List Map Path Printf QCheck QCheck_alcotest Simurgh_core Simurgh_fs_common Simurgh_nvmm String Types
