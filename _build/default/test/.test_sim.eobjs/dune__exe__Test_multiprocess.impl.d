test/test_multiprocess.ml: Alcotest Array Bytes Engine Errno Hashtbl List Machine Printf Simurgh_core Simurgh_fs_common Simurgh_nvmm Simurgh_sim Sthread Types
