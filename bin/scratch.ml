open Simurgh_workloads
module FB = Filebench
module FbS = FB.Make (Simurgh_core.Fs)
module FbN = FB.Make (Simurgh_baselines.Nova)
let probe name run =
  let m = Simurgh_sim.Machine.create () in
  let r = run m in
  Printf.printf "%s: %.1f Kops rd=%.0f wr=%.0f\n" name (r.FB.ops_per_s /. 1000.)
    (Simurgh_sim.Resource.busy_cycles m.Simurgh_sim.Machine.nvmm_read_srv)
    (Simurgh_sim.Resource.busy_cycles m.Simurgh_sim.Machine.nvmm_write_srv);
  List.iter
    (fun (site, s) ->
      if s.Simurgh_obs.Contention.wait_cycles > 1e6 then
        Printf.printf "  wait %-12s %.0f\n" site
          s.Simurgh_obs.Contention.wait_cycles)
    (Simurgh_obs.Contention.to_list
       (Simurgh_sim.Machine.obs m).Simurgh_obs.Run.contention)
let () =
  let cfg = FB.config ~scale:0.5 FB.Webserver in
  probe "Simurgh webserver" (fun m ->
    let fs = Targets.fresh_simurgh ~region_mb:768 () in
    FbS.run m fs FB.Webserver ~cfg ~loops_per_thread:4);
  probe "NOVA webserver" (fun m ->
    let fs = Simurgh_baselines.Nova.create () in
    FbN.run m fs FB.Webserver ~cfg ~loops_per_thread:4)
