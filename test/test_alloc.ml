(* Tests for the segmented block allocator and the slab metadata-object
   allocator. *)

open Simurgh_nvmm
module B = Simurgh_alloc.Block_alloc
module S = Simurgh_alloc.Slab_alloc

let mk_balloc ?(segments = 4) ?(blocks = 1024) () =
  let region = Region.create (1 lsl 21) in
  let off = 0 in
  let base = 4096 in
  (region, B.format region ~off ~base ~blocks ~block_size:256 ~segments)

let check_inv b =
  match B.check_invariants b with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("invariant: " ^ e)

(* --- block allocator ------------------------------------------------------ *)

let test_balloc_basic () =
  let _, b = mk_balloc () in
  Alcotest.(check int) "all free" 1024 (B.free_blocks b);
  let a1 = Option.get (B.alloc b 10) in
  let a2 = Option.get (B.alloc b 10) in
  Alcotest.(check bool) "disjoint" true (abs (a1 - a2) >= 10 * 256);
  Alcotest.(check int) "free count" 1004 (B.free_blocks b);
  B.free b ~addr:a1 10;
  B.free b ~addr:a2 10;
  Alcotest.(check int) "restored" 1024 (B.free_blocks b);
  check_inv b

let test_balloc_exhaustion () =
  let _, b = mk_balloc ~segments:2 ~blocks:64 () in
  (* each segment holds 32 blocks; a 33-block request cannot be satisfied *)
  Alcotest.(check bool) "too big" true (B.alloc b 33 = None);
  Alcotest.(check bool) "fits" true (B.alloc b 32 <> None);
  Alcotest.(check bool) "second segment" true (B.alloc b 32 <> None);
  Alcotest.(check bool) "exhausted" true (B.alloc b 1 = None)

let test_balloc_coalescing () =
  let _, b = mk_balloc ~segments:1 ~blocks:100 () in
  let a = Option.get (B.alloc b 100) in
  Alcotest.(check int) "empty" 0 (B.free_blocks b);
  (* free in shuffled chunks; coalescing must rebuild one range *)
  let chunks = [ 30; 0; 60; 10; 40; 80; 20; 50; 90; 70 ] in
  List.iter (fun c -> B.free b ~addr:(a + (c * 256)) 10) chunks;
  Alcotest.(check int) "all back" 100 (B.free_blocks b);
  check_inv b;
  (* a full-size allocation proves the ranges merged *)
  Alcotest.(check bool) "coalesced" true (B.alloc b 100 <> None)

let test_balloc_hint_spreads () =
  let _, b = mk_balloc ~segments:4 ~blocks:1024 () in
  let seg_of addr = (addr - 4096) / 256 / ((1024 + 3) / 4) in
  let segs =
    List.init 16 (fun i -> seg_of (Option.get (B.alloc ~hint:(i * 977) b 1)))
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "multiple segments used" true (List.length segs > 1)

let test_balloc_attach () =
  let region, b = mk_balloc () in
  let a = Option.get (B.alloc b 5) in
  let b2 = B.attach region ~off:0 in
  Alcotest.(check int) "state persisted" (B.free_blocks b) (B.free_blocks b2);
  B.free b2 ~addr:a 5;
  Alcotest.(check int) "free through reattach" 1024 (B.free_blocks b2)

let test_balloc_stuck_segment_recovery () =
  let region, b = mk_balloc ~segments:1 ~blocks:64 () in
  (* simulate a crash while holding the segment lock: flag set, stale *)
  Region.write_u8 region 32 1;
  (* without a ctx, segment_is_stuck treats the flag as stale *)
  Alcotest.(check bool) "alloc recovers the lock" true (B.alloc b 1 <> None)

let test_balloc_rebuild () =
  let _, b = mk_balloc ~segments:2 ~blocks:100 () in
  let keep = Option.get (B.alloc b 7) in
  let _lose = Option.get (B.alloc b 5) in
  let first_block = (keep - 4096) / 256 in
  let in_use blk = blk >= first_block && blk < first_block + 7 in
  B.rebuild_free_lists b ~in_use;
  Alcotest.(check int) "only kept range in use" 93 (B.free_blocks b);
  check_inv b

let prop_balloc_random_ops =
  QCheck.Test.make ~name:"block allocator: random alloc/free keeps invariants"
    ~count:60
    QCheck.(list (int_range 1 12))
    (fun sizes ->
      let _, b = mk_balloc ~segments:3 ~blocks:256 () in
      let live = ref [] in
      let total = B.free_blocks b in
      List.iteri
        (fun i n ->
          (match B.alloc ~hint:i b n with
          | Some a ->
              (* no overlap with live ranges *)
              List.iter
                (fun (a', n') ->
                  if a < a' + (n' * 256) && a' < a + (n * 256) then
                    QCheck.Test.fail_report "overlap")
                !live;
              live := (a, n) :: !live
          | None -> ());
          (* free every other allocation *)
          if i mod 2 = 1 then
            match !live with
            | (a, n) :: rest ->
                B.free b ~addr:a n;
                live := rest
            | [] -> ())
        sizes;
      List.iter (fun (a, n) -> B.free b ~addr:a n) !live;
      B.free_blocks b = total
      && match B.check_invariants b with Ok () -> true | Error _ -> false)

(* --- slab allocator ------------------------------------------------------- *)

let mk_slab ?(obj_size = 64) () =
  let region = Region.create (1 lsl 21) in
  let balloc =
    B.format region ~off:0 ~base:8192 ~blocks:4096 ~block_size:256 ~segments:2
  in
  (region, S.format region ~off:4096 ~obj_size ~block_alloc:balloc ~objs_per_seg:16)

let test_slab_alloc_commit_free () =
  let _, s = mk_slab () in
  let p = Option.get (S.alloc s) in
  Alcotest.(check bool) "unprocessed after alloc" true (S.is_unprocessed s p);
  S.commit s p;
  Alcotest.(check bool) "live after commit" true (S.is_live s p);
  Alcotest.(check int) "one live" 1 (S.live_objects s);
  S.free s p;
  Alcotest.(check int) "flags cleared" 0 (S.obj_flags s p);
  Alcotest.(check int) "none live" 0 (S.live_objects s)

let test_slab_free_zeroes () =
  let region, s = mk_slab () in
  let p = Option.get (S.alloc s) in
  Region.write_string region p "garbage!";
  S.commit s p;
  S.free s p;
  Alcotest.(check string) "payload zeroed" (String.make 8 '\000')
    (Bytes.to_string (Region.read_bytes region p 8))

let test_slab_two_phase_free () =
  let _, s = mk_slab () in
  let p = Option.get (S.alloc s) in
  S.commit s p;
  S.begin_free s p;
  (* state 01: mid-deallocation *)
  Alcotest.(check int) "dirty only" 2 (S.obj_flags s p);
  S.finish_free s p;
  Alcotest.(check int) "free" 0 (S.obj_flags s p)

let test_slab_no_double_alloc () =
  let _, s = mk_slab () in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 64 do
    match S.alloc s with
    | Some p ->
        Alcotest.(check bool) "fresh address" false (Hashtbl.mem seen p);
        Hashtbl.replace seen p ()
    | None -> ()
  done

let test_slab_grows_on_demand () =
  let _, s = mk_slab () in
  (* objs_per_seg = 16; allocating 40 needs three segments *)
  let ps = List.init 40 (fun _ -> S.alloc s) in
  Alcotest.(check bool) "all served" true (List.for_all Option.is_some ps);
  let segs = ref 0 in
  S.iter_segments s (fun _ -> incr segs);
  Alcotest.(check bool) "grew" true (!segs >= 3)

let test_slab_rebuild_reclaims () =
  let _, s = mk_slab () in
  let keep = Option.get (S.alloc s) in
  S.commit s keep;
  let lost = Option.get (S.alloc s) in
  (* crash: [lost] stays in state 11 *)
  ignore lost;
  S.rebuild_cache ~reclaim:true s;
  Alcotest.(check int) "unprocessed reclaimed" 0 (S.obj_flags s lost);
  Alcotest.(check bool) "live object kept" true (S.is_live s keep);
  Alcotest.(check int) "one live" 1 (S.live_objects s)

let test_slab_reuse_after_free () =
  let _, s = mk_slab () in
  let p = Option.get (S.alloc s) in
  S.commit s p;
  S.free s p;
  (* the freed slot eventually comes back *)
  let reused = ref false in
  for _ = 1 to 32 do
    match S.alloc s with
    | Some q when q = p -> reused := true
    | Some q -> S.commit s q
    | None -> ()
  done;
  Alcotest.(check bool) "slot recycled" true !reused

let prop_slab_states =
  QCheck.Test.make ~name:"slab: live count tracks alloc/free" ~count:100
    QCheck.(list bool)
    (fun ops ->
      let _, s = mk_slab () in
      let live = ref [] in
      List.iter
        (fun alloc_op ->
          if alloc_op then (
            match S.alloc s with
            | Some p ->
                S.commit s p;
                live := p :: !live
            | None -> ())
          else
            match !live with
            | p :: rest ->
                S.free s p;
                live := rest
            | [] -> ())
        ops;
      S.live_objects s = List.length !live)

(* --- per-thread caches (scaled configuration) ----------------------------- *)

let mk_ctx tid =
  let m = Simurgh_sim.Machine.create () in
  Simurgh_sim.Machine.ctx m (Simurgh_sim.Sthread.create tid)

(* With thread affinity on, a thread keeps allocating from the segment
   its last allocation succeeded in (initially tid mod segments), and
   moves on only when that segment runs dry. *)
let test_balloc_thread_affinity () =
  let _, b = mk_balloc ~segments:4 ~blocks:1024 () in
  B.set_thread_segments b true;
  let seg_of addr = (addr - 4096) / 256 / (1024 / 4) in
  let c1 = mk_ctx 1 and c3 = mk_ctx 3 in
  let a1 = Option.get (B.alloc ~ctx:c1 b 4) in
  let a1' = Option.get (B.alloc ~ctx:c1 b 4) in
  let a3 = Option.get (B.alloc ~ctx:c3 b 4) in
  Alcotest.(check int) "tid 1 starts in segment 1" 1 (seg_of a1);
  Alcotest.(check int) "tid 1 stays in segment 1" 1 (seg_of a1');
  Alcotest.(check int) "tid 3 starts in segment 3" 3 (seg_of a3);
  (* drain segment 1: the thread must fall over to another segment and
     re-home there *)
  let rec drain () =
    match B.alloc ~ctx:c1 b 4 with
    | Some a when seg_of a = 1 -> drain ()
    | Some a -> a
    | None -> Alcotest.fail "allocator exhausted prematurely"
  in
  let moved = drain () in
  let next = Option.get (B.alloc ~ctx:c1 b 4) in
  Alcotest.(check int) "re-homed" (seg_of moved) (seg_of next);
  (* ctx-less callers still use the hint path *)
  Alcotest.(check bool) "no ctx still works" true (B.alloc b 4 <> None);
  check_inv b

let test_slab_tcache () =
  let _, s = mk_slab () in
  S.set_thread_caches s true;
  let c0 = mk_ctx 0 and c1 = mk_ctx 1 in
  (* interleaved allocs from two threads: all distinct, all live *)
  let take ctx n =
    List.init n (fun _ ->
        let p = Option.get (S.alloc ~ctx s) in
        S.commit ~ctx s p;
        p)
  in
  let p0 = take c0 40 and p1 = take c1 40 in
  let all = p0 @ p1 in
  let uniq = List.sort_uniq compare all in
  Alcotest.(check int) "no double handout" (List.length all)
    (List.length uniq);
  Alcotest.(check int) "live" 80 (S.live_objects s);
  (* free far more than we allocate from one thread: the spill path must
     return objects to the shared cache, where the other thread can get
     them again *)
  List.iter (fun p -> S.free ~ctx:c0 s p) all;
  Alcotest.(check int) "all freed" 0 (S.live_objects s);
  let again = take c1 80 in
  Alcotest.(check int) "recirculated" 80 (List.length (List.sort_uniq compare again));
  Alcotest.(check int) "live again" 80 (S.live_objects s)

(* rebuild_cache must also clear the per-thread caches: a stale cached
   address re-handed after recovery would double-allocate *)
let test_slab_tcache_rebuild () =
  let _, s = mk_slab () in
  S.set_thread_caches s true;
  let c0 = mk_ctx 0 in
  let p = Option.get (S.alloc ~ctx:c0 s) in
  S.commit ~ctx:c0 s p;
  S.free ~ctx:c0 s p;
  (* p now sits in tid 0's private cache *)
  S.rebuild_cache s;
  let n = 32 in
  let ps =
    List.init n (fun _ ->
        let q = Option.get (S.alloc ~ctx:c0 s) in
        S.commit ~ctx:c0 s q;
        q)
  in
  Alcotest.(check int) "no duplicates after rebuild" n
    (List.length (List.sort_uniq compare ps));
  Alcotest.(check int) "live tracked" n (S.live_objects s)

let () =
  Alcotest.run "alloc"
    [
      ( "block",
        [
          Alcotest.test_case "basic" `Quick test_balloc_basic;
          Alcotest.test_case "exhaustion" `Quick test_balloc_exhaustion;
          Alcotest.test_case "coalescing" `Quick test_balloc_coalescing;
          Alcotest.test_case "hint spreads" `Quick test_balloc_hint_spreads;
          Alcotest.test_case "attach" `Quick test_balloc_attach;
          Alcotest.test_case "stuck segment recovery" `Quick
            test_balloc_stuck_segment_recovery;
          Alcotest.test_case "rebuild" `Quick test_balloc_rebuild;
          QCheck_alcotest.to_alcotest prop_balloc_random_ops;
        ] );
      ( "slab",
        [
          Alcotest.test_case "alloc/commit/free" `Quick
            test_slab_alloc_commit_free;
          Alcotest.test_case "free zeroes" `Quick test_slab_free_zeroes;
          Alcotest.test_case "two-phase free" `Quick test_slab_two_phase_free;
          Alcotest.test_case "no double alloc" `Quick test_slab_no_double_alloc;
          Alcotest.test_case "grows" `Quick test_slab_grows_on_demand;
          Alcotest.test_case "rebuild reclaims" `Quick
            test_slab_rebuild_reclaims;
          Alcotest.test_case "reuse after free" `Quick
            test_slab_reuse_after_free;
          QCheck_alcotest.to_alcotest prop_slab_states;
        ] );
      ( "thread-caches",
        [
          Alcotest.test_case "block segment affinity" `Quick
            test_balloc_thread_affinity;
          Alcotest.test_case "slab tcache" `Quick test_slab_tcache;
          Alcotest.test_case "slab tcache rebuild" `Quick
            test_slab_tcache_rebuild;
        ] );
    ]
