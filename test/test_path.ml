(* Path parsing: split/basename/dirname/concat, with the POSIX corner
   cases that used to go wrong (dirname "/" raised EINVAL instead of
   returning "/"). *)

open Simurgh_fs_common

let check_s = Alcotest.(check string)
let check_sl = Alcotest.(check (list string))

let test_split () =
  check_sl "plain" [ "a"; "b" ] (Path.split "/a/b");
  check_sl "root" [] (Path.split "/");
  check_sl "double slash" [] (Path.split "//");
  check_sl "empty components" [ "a"; "b" ] (Path.split "//a///b//");
  check_sl "dot dropped" [ "a"; "b" ] (Path.split "/a/./b/.");
  check_sl "dotdot kept" [ "a"; ".."; "b" ] (Path.split "/a/../b")

(* dirname must behave like POSIX dirname(1) on every spelling of a
   path; the table pins the regression where "/" raised EINVAL *)
let test_dirname () =
  List.iter
    (fun (p, want) -> check_s (Printf.sprintf "dirname %S" p) want (Path.dirname p))
    [
      ("/", "/");
      ("//", "/");
      ("/.", "/");
      ("/a", "/");
      ("//a", "/");
      ("/a/", "/");
      ("/a/b", "/a");
      ("/a/b/", "/a");
      ("/a//b", "/a");
      ("/a/b/c", "/a/b");
      ("/a/./b", "/a");
    ]

let test_basename () =
  check_s "plain" "b" (Path.basename "/a/b");
  check_s "trailing slash" "b" (Path.basename "/a/b/");
  check_s "single" "a" (Path.basename "/a");
  (match Path.basename "/" with
  | _ -> Alcotest.fail "basename \"/\" must raise EINVAL"
  | exception Errno.Err (Errno.EINVAL, _) -> ())

let test_concat () =
  check_s "at root" "/a" (Path.concat "/" "a");
  check_s "nested" "/a/b" (Path.concat "/a" "b")

(* dirname/basename recompose: for any normal path, resolving
   (dirname p)/(basename p) yields the same components as p *)
let prop_dirname_basename =
  let gen_path =
    QCheck.Gen.(
      map
        (fun comps -> "/" ^ String.concat "/" comps)
        (list_size (int_range 1 6)
           (string_size ~gen:(char_range 'a' 'z') (int_range 1 4))))
  in
  QCheck.Test.make ~name:"split (dirname p @ basename p) = split p" ~count:200
    (QCheck.make gen_path) (fun p ->
      Path.split (Path.concat (Path.dirname p) (Path.basename p))
      = Path.split p)

let () =
  Alcotest.run "path"
    [
      ( "path",
        [
          Alcotest.test_case "split" `Quick test_split;
          Alcotest.test_case "dirname" `Quick test_dirname;
          Alcotest.test_case "basename" `Quick test_basename;
          Alcotest.test_case "concat" `Quick test_concat;
          QCheck_alcotest.to_alcotest prop_dirname_basename;
        ] );
    ]
