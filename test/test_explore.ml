(* Adversarial crash-image exploration.

   The hook-based tests in test_crash.ml check the single "all
   unflushed lines lost" adversary.  Here the explorer enumerates, at
   every NVMM store and every labeled persist point, every subset of the
   unpersisted cache lines (the hardware may have evicted any of them
   early), recovers from each resulting image and runs the offline
   checker — which must find nothing, for every image, for each of the
   four Fig. 5 state machines.  A final negative test deliberately
   breaks recovery (skipping rename-log resolution) and proves the
   checker catches the damage, i.e. the oracle is not vacuous. *)

open Simurgh_fs_common
module Fs = Simurgh_core.Fs
module Recovery = Simurgh_core.Recovery
module Check = Simurgh_core.Check
module Explore = Simurgh_core.Explore
module Region = Simurgh_nvmm.Region

exception Crash_now

let assert_no_failures name (st : Explore.stats) =
  (match st.Explore.failures with
  | [] -> ()
  | (label, viols) :: _ ->
      Alcotest.failf "%s: %d violating crash image(s); first at %s: %s" name
        (List.length st.Explore.failures)
        label
        (String.concat "; " (List.map Check.violation_to_string viols)));
  Alcotest.(check bool) (name ^ ": has crash points") true
    (st.Explore.crash_points > 0);
  Alcotest.(check bool) (name ^ ": explored images") true
    (st.Explore.images >= st.Explore.crash_points)

let test_explore_create () =
  let st =
    Explore.run
      ~setup:(fun fs -> Fs.mkdir fs "/d")
      ~op:(fun fs -> Fs.create_file fs "/d/f")
      ~verify:(fun fs ->
        (* atomicity: the file either exists as a valid file or not at
           all; a later retry must succeed either way *)
        match Fs.stat fs "/d/f" with
        | st -> Alcotest.(check bool) "kind" true (st.Types.kind = Types.File)
        | exception Errno.Err (ENOENT, _) -> Fs.create_file fs "/d/f")
      ()
  in
  assert_no_failures "create" st

let test_explore_unlink () =
  let st =
    Explore.run
      ~setup:(fun fs ->
        Fs.mkdir fs "/d";
        Fs.create_file fs "/d/f")
      ~op:(fun fs -> Fs.unlink fs "/d/f")
      ~verify:(fun fs ->
        if Fs.exists fs "/d/f" then Fs.unlink fs "/d/f";
        Fs.create_file fs "/d/f")
      ()
  in
  assert_no_failures "unlink" st

let test_explore_rename () =
  let st =
    Explore.run
      ~setup:(fun fs ->
        Fs.mkdir fs "/d";
        Fs.create_file fs "/d/old")
      ~op:(fun fs -> Fs.rename fs "/d/old" "/d/new")
      ~verify:(fun fs ->
        let o = Fs.exists fs "/d/old" and n = Fs.exists fs "/d/new" in
        if o = n then
          Alcotest.failf "rename not atomic: old=%b new=%b" o n)
      ()
  in
  assert_no_failures "rename" st

let test_explore_cross_rename () =
  let st =
    Explore.run
      ~setup:(fun fs ->
        Fs.mkdir fs "/d";
        Fs.mkdir fs "/e";
        Fs.create_file fs "/d/m")
      ~op:(fun fs -> Fs.rename fs "/d/m" "/e/m2")
      ~verify:(fun fs ->
        let s = Fs.exists fs "/d/m" and d = Fs.exists fs "/e/m2" in
        if s = d then
          Alcotest.failf "cross rename not atomic: src=%b dst=%b" s d)
      ()
  in
  assert_no_failures "cross rename" st

(* The same two rename state machines explored on log-ring media (ring
   of 4 slots, scaled mount): every crash image — including those with a
   pending ring slot — must recover to a checker-clean ring. *)
let test_explore_rename_ring () =
  let st =
    Explore.run ~scaled:true ~ring:4
      ~setup:(fun fs ->
        Fs.mkdir fs "/d";
        Fs.create_file fs "/d/old")
      ~op:(fun fs -> Fs.rename fs "/d/old" "/d/new")
      ~verify:(fun fs ->
        let o = Fs.exists fs "/d/old" and n = Fs.exists fs "/d/new" in
        if o = n then
          Alcotest.failf "ring rename not atomic: old=%b new=%b" o n)
      ()
  in
  assert_no_failures "rename (log ring)" st

let test_explore_cross_rename_ring () =
  let st =
    Explore.run ~scaled:true ~ring:4
      ~setup:(fun fs ->
        Fs.mkdir fs "/d";
        Fs.mkdir fs "/e";
        Fs.create_file fs "/d/m")
      ~op:(fun fs -> Fs.rename fs "/d/m" "/e/m2")
      ~verify:(fun fs ->
        let s = Fs.exists fs "/d/m" and d = Fs.exists fs "/e/m2" in
        if s = d then
          Alcotest.failf "ring cross rename not atomic: src=%b dst=%b" s d)
      ()
  in
  assert_no_failures "cross rename (log ring)" st

(* Multi-slot pending states: a crash image that already carries TWO
   pending slots of one directory's ring (two processes died mid-rename)
   must come back checker-clean with both renames resolved, whichever
   subset of the final rename's unpersisted lines survived. *)
let test_explore_multi_slot_recovery () =
  let region = Region.create ~mode:Region.Strict (16 * 1024 * 1024) in
  let fs = Fs.mkfs ~euid:0 ~log_ring:4 region in
  Fs.mkdir fs "/d";
  Fs.create_file fs "/d/a";
  Fs.create_file fs "/d/c";
  Fs.set_crash_hook fs (fun l -> if l = "rename:swap" then raise Crash_now);
  (try Fs.rename fs "/d/a" "/d/b" with Crash_now -> ());
  (try Fs.rename fs "/d/c" "/d/d" with Crash_now -> ());
  (* the power also fails: every unpersisted line is independently lost
     or durable — enumerate all images of the two-slot-pending state *)
  let pending = Array.of_list (Region.pending_lines region) in
  let idx = Hashtbl.create 16 in
  Array.iteri (fun i ln -> Hashtbl.replace idx ln i) pending;
  let cp = Region.checkpoint region in
  let n = Array.length pending in
  let images = min (1 lsl n) 256 in
  for mask = 0 to images - 1 do
    Region.restore region cp;
    Region.crash_image region ~keep:(fun ln ->
        match Hashtbl.find_opt idx ln with
        | Some i -> mask land (1 lsl i) <> 0
        | None -> false);
    Fs.invalidate_shared region;
    let _ = Recovery.run region in
    (match Check.run region with
    | [] -> ()
    | viols ->
        Alcotest.failf "mask %d: %s" mask
          (String.concat "; " (List.map Check.violation_to_string viols)));
    let fs' = Fs.mount ~euid:0 region in
    if Fs.exists fs' "/d/a" = Fs.exists fs' "/d/b" then
      Alcotest.failf "mask %d: first rename not atomic" mask;
    if Fs.exists fs' "/d/c" = Fs.exists fs' "/d/d" then
      Alcotest.failf "mask %d: second rename not atomic" mask
  done

(* A create that must grow the directory's hash-block chain: the new
   block's initialization dirties ~66 lines at once, pushing the crash
   points past [max_exhaustive] and into the seeded-sampling branch of
   the explorer (the adversary picks random eviction subsets). *)
let test_explore_create_chain_growth () =
  let rows = Simurgh_core.Dirblock.first_rows in
  let row_of n = Simurgh_core.Name_hash.hash n mod rows in
  let want = row_of "t" in
  let fillers =
    let rec go acc i =
      if List.length acc = Simurgh_core.Dirblock.slots_per_row then
        List.rev acc
      else
        let n = Printf.sprintf "fill%d" i in
        if row_of n = want then go (n :: acc) (i + 1) else go acc (i + 1)
    in
    go [] 0
  in
  let st =
    Explore.run ~samples:24
      ~setup:(fun fs ->
        Fs.mkdir fs "/d";
        List.iter (fun n -> Fs.create_file fs ("/d/" ^ n)) fillers)
      ~op:(fun fs -> Fs.create_file fs "/d/t")
      ~verify:(fun fs ->
        List.iter
          (fun n ->
            Alcotest.(check bool) ("filler " ^ n) true
              (Fs.exists fs ("/d/" ^ n)))
          fillers)
      ()
  in
  assert_no_failures "create with chain growth" st;
  Alcotest.(check bool) "hit the sampled branch" true (st.Explore.max_pending > 10)

(* Negative control: recovery with rename-log resolution disabled leaves
   a pending log behind a crashed cross-directory rename, and the
   checker must say so.  Without this test a trivially-empty checker
   would pass every exploration above. *)
let test_checker_catches_broken_recovery () =
  let region = Region.create ~mode:Region.Strict (32 * 1024 * 1024) in
  let fs = Fs.mkfs ~euid:0 region in
  Fs.mkdir fs "/d";
  Fs.mkdir fs "/e";
  Fs.create_file fs "/d/m";
  Fs.set_crash_hook fs (fun l ->
      if l = "xrename:dstslot" then raise Crash_now);
  (try Fs.rename fs "/d/m" "/e/m2" with Crash_now -> Region.crash region);
  Region.clear_guard region;
  let _ = Recovery.run ~skip_log_resolution:true region in
  let viols = Check.run region in
  Alcotest.(check bool) "checker flags the unresolved rename log" true
    (List.exists
       (function Check.Log_pending _ -> true | _ -> false)
       viols);
  (* and correct recovery heals the same image *)
  let _ = Recovery.run region in
  Alcotest.(check (list string)) "full recovery passes the checker" []
    (List.map Check.violation_to_string (Check.run region))

(* Crash-during-recovery re-entrancy: crash a rename mid-flight, then
   crash RECOVERY at its own store points and labeled hooks, re-enter
   recovery on every eviction subset, and demand convergence — a media
   fixpoint within 4 passes (idempotence predicts 2) and a clean
   checker on every terminal image. *)
let test_reentrant_rename () =
  let st =
    Explore.run_reentrant
      ~setup:(fun fs ->
        Fs.mkdir fs "/d1";
        Fs.mkdir fs "/d2";
        Fs.create_file fs "/d1/a";
        Fs.create_file fs "/d2/c")
      ~op:(fun fs -> Fs.rename fs "/d1/a" "/d2/b")
      ()
  in
  (match st.Explore.reentry_failures with
  | [] -> ()
  | l :: _ ->
      Alcotest.failf "rename: %d failing re-entry image(s); first: %s"
        (List.length st.Explore.reentry_failures)
        l);
  Alcotest.(check bool) "explored mid-recovery points" true
    (st.Explore.recovery_points > 0);
  Alcotest.(check bool) "re-entered images" true (st.Explore.reentry_images > 0);
  Alcotest.(check bool) "recovery idempotent (fixpoint in 2 passes)" true
    (st.Explore.max_passes <= 2)

let test_reentrant_create () =
  let st =
    Explore.run_reentrant ~op_points:3 ~rec_stores:5
      ~setup:(fun fs -> Fs.mkdir fs "/d")
      ~op:(fun fs ->
        Fs.create_file fs "/d/f";
        Fs.create_file fs "/d/g")
      ()
  in
  (match st.Explore.reentry_failures with
  | [] -> ()
  | l :: _ ->
      Alcotest.failf "create: %d failing re-entry image(s); first: %s"
        (List.length st.Explore.reentry_failures)
        l);
  Alcotest.(check bool) "recovery idempotent (fixpoint in 2 passes)" true
    (st.Explore.max_passes <= 2)

(* The checker itself accepts a healthy populated file system. *)
let test_checker_clean_on_healthy_fs () =
  let region = Region.create (32 * 1024 * 1024) in
  let fs = Fs.mkfs ~euid:0 region in
  Fs.mkdir fs "/a";
  Fs.mkdir fs "/a/b";
  for i = 0 to 19 do
    Fs.create_file fs (Printf.sprintf "/a/f%d" i)
  done;
  let fd = Fs.openf fs Types.wronly "/a/f0" in
  ignore (Fs.append fs fd (Bytes.make 9000 'x'));
  Fs.close fs fd;
  Fs.symlink fs ~target:"/a/f0" "/a/b/l";
  Alcotest.(check (list string)) "no violations" []
    (List.map Check.violation_to_string (Check.run region))

(* -- multi-region (sharded) exploration --------------------------------

   The eviction adversary now ranges over the union of both regions'
   unpersisted lines: a crash image can lose the destination region's
   copy while keeping the source region's unlink progress and vice
   versa.  Every image must recover per-region (Recovery.run_all) to a
   checker-clean pair, and for the rename the copy+unlink contract
   holds: the source is unlinked last, so once it is gone the
   destination is complete. *)
module Shard = Simurgh_core.Shard
module Name_hash = Simurgh_core.Name_hash

let shard_dir r =
  let rec go i =
    let n = Printf.sprintf "d%d_%d" r i in
    if Name_hash.home n ~regions:2 = r then n else go (i + 1)
  in
  "/" ^ go 0

let assert_no_multi_failures name (st : Explore.stats) =
  (match st.Explore.failures with
  | [] -> ()
  | (label, viols) :: _ ->
      Alcotest.failf "%s: %d violating crash image(s); first at %s: %s" name
        (List.length st.Explore.failures)
        label
        (String.concat "; " (List.map Check.violation_to_string viols)));
  Alcotest.(check bool) (name ^ ": has crash points") true
    (st.Explore.crash_points > 0)

let test_explore_multi_region_rename () =
  let d0 = shard_dir 0 and d1 = shard_dir 1 in
  let src = d0 ^ "/m" and dst = d1 ^ "/m2" in
  let bytes = 128 in
  let st =
    Explore.run_multi ~regions:2
      ~setup:(fun sh ->
        Shard.mkdir sh d0;
        Shard.mkdir sh d1;
        let fd = Shard.openf sh (Types.creat Types.rdwr) src in
        ignore (Shard.pwrite sh fd ~pos:0 (Bytes.make bytes 'x'));
        Shard.close sh fd)
      ~op:(fun sh -> Shard.rename sh src dst)
      ~verify:(fun sh ->
        if not (Shard.exists sh src) then begin
          let got = Shard.stat sh dst in
          if got.Types.size <> bytes then
            failwith
              (Printf.sprintf "dest size %d after source unlink, want %d"
                 got.Types.size bytes)
        end)
      ()
  in
  assert_no_multi_failures "xregion-rename" st

let test_explore_multi_region_creates () =
  let d0 = shard_dir 0 and d1 = shard_dir 1 in
  let st =
    Explore.run_multi ~regions:2
      ~setup:(fun sh ->
        Shard.mkdir sh d0;
        Shard.mkdir sh d1)
      ~op:(fun sh ->
        Shard.create_file sh (d0 ^ "/a");
        Shard.create_file sh (d1 ^ "/b"))
      ()
  in
  assert_no_multi_failures "xregion-creates" st

let () =
  Alcotest.run "explore"
    [
      ( "crash-image exploration",
        [
          Alcotest.test_case "create: all images recover clean" `Quick
            test_explore_create;
          Alcotest.test_case "unlink: all images recover clean" `Quick
            test_explore_unlink;
          Alcotest.test_case "rename: all images recover clean" `Quick
            test_explore_rename;
          Alcotest.test_case "cross rename: all images recover clean" `Quick
            test_explore_cross_rename;
          Alcotest.test_case "rename on log ring: all images clean" `Quick
            test_explore_rename_ring;
          Alcotest.test_case "cross rename on log ring: all images clean"
            `Quick test_explore_cross_rename_ring;
          Alcotest.test_case "two pending ring slots: all images clean" `Quick
            test_explore_multi_slot_recovery;
          Alcotest.test_case "create with chain growth (sampled)" `Quick
            test_explore_create_chain_growth;
        ] );
      ( "multi-region",
        [
          Alcotest.test_case "cross-region rename: all images clean" `Quick
            test_explore_multi_region_rename;
          Alcotest.test_case "creates on both regions: all images clean"
            `Quick test_explore_multi_region_creates;
        ] );
      ( "crash-during-recovery",
        [
          Alcotest.test_case "rename: recovery re-enters clean" `Quick
            test_reentrant_rename;
          Alcotest.test_case "create: recovery re-enters clean" `Quick
            test_reentrant_create;
        ] );
      ( "checker",
        [
          Alcotest.test_case "clean on healthy fs" `Quick
            test_checker_clean_on_healthy_fs;
          Alcotest.test_case "catches broken recovery" `Quick
            test_checker_catches_broken_recovery;
        ] );
    ]
