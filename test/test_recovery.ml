(* Recovery tests beyond crash injection: mark-and-sweep garbage
   collection, block-allocator reconstruction, runtime per-directory
   repair, and full-tree preservation. *)

open Simurgh_fs_common
module Fs = Simurgh_core.Fs
module Recovery = Simurgh_core.Recovery
module Slab = Simurgh_alloc.Slab_alloc
module Layout = Simurgh_core.Layout

let fresh_region () = Simurgh_nvmm.Region.create (64 * 1024 * 1024)

let populate fs =
  Fs.mkdir fs "/a";
  Fs.mkdir fs "/a/b";
  for i = 0 to 49 do
    Fs.create_file fs (Printf.sprintf "/a/f%d" i)
  done;
  Fs.create_file fs "/a/b/data";
  let fd = Fs.openf fs Types.wronly "/a/b/data" in
  ignore (Fs.append fs fd (Bytes.make 5000 'd'));
  Fs.close fs fd;
  Fs.symlink fs ~target:"/a/b/data" "/a/link";
  Fs.hardlink fs ~existing:"/a/b/data" "/a/hard"

let test_clean_tree_preserved () =
  let region = fresh_region () in
  let fs = Fs.mkfs ~euid:0 region in
  populate fs;
  let fs', report = Recovery.mount_after_crash ~euid:0 region in
  Alcotest.(check int) "files" 52 report.Recovery.files;
  Alcotest.(check int) "dirs" 2 report.Recovery.dirs;
  Alcotest.(check int) "symlinks" 1 report.Recovery.symlinks;
  Alcotest.(check int) "nothing reclaimed" 0
    (report.Recovery.reclaimed_inodes + report.Recovery.reclaimed_fentries);
  (* data survives *)
  let fd = Fs.openf fs' Types.rdonly "/a/b/data" in
  Alcotest.(check int) "data size" 5000
    (Bytes.length (Fs.pread fs' fd ~pos:0 ~len:10000));
  Fs.close fs' fd;
  Alcotest.(check string) "symlink target" "/a/b/data"
    (Fs.readlink fs' "/a/link")

let test_sweep_reclaims_garbage () =
  let region = fresh_region () in
  let fs = Fs.mkfs ~euid:0 region in
  populate fs;
  let layout = Fs.layout fs in
  (* simulate crash mid-create: allocated but never linked objects *)
  for _ = 1 to 7 do
    ignore (Slab.alloc layout.Layout.inode_slab)
  done;
  for _ = 1 to 5 do
    ignore (Slab.alloc layout.Layout.fentry_slab)
  done;
  let _, report = Recovery.run region in
  Alcotest.(check int) "inodes reclaimed" 7 report.Recovery.reclaimed_inodes;
  Alcotest.(check int) "fentries reclaimed" 5
    report.Recovery.reclaimed_fentries

let test_busy_flags_cleared () =
  let region = fresh_region () in
  let fs = Fs.mkfs ~euid:0 region in
  populate fs;
  (* a crashed holder left a busy row *)
  let region' = Fs.region fs in
  let root = Layout.root_fentry (Fs.layout fs) in
  let head = Simurgh_core.Fentry.dirblock region' root in
  Simurgh_core.Dirblock.set_busy region' head 3 true;
  let _, report = Recovery.run region in
  Alcotest.(check int) "busy cleared" 1 report.Recovery.cleared_busy_flags

let test_block_counts_consistent () =
  let region = fresh_region () in
  let fs = Fs.mkfs ~euid:0 region in
  populate fs;
  let balloc = (Fs.layout fs).Layout.balloc in
  let free_before = Simurgh_alloc.Block_alloc.free_blocks balloc in
  let _, report = Recovery.run region in
  Alcotest.(check int) "free count rebuilt identically" free_before
    report.Recovery.free_blocks;
  Alcotest.(check int) "used + free = total"
    (Simurgh_alloc.Block_alloc.total_blocks balloc)
    (report.Recovery.used_blocks + report.Recovery.free_blocks)

let test_fs_usable_after_recovery () =
  let region = fresh_region () in
  let fs = Fs.mkfs ~euid:0 region in
  populate fs;
  let fs', _ = Recovery.mount_after_crash ~euid:0 region in
  (* the recovered fs supports the full op set *)
  Fs.create_file fs' "/a/after";
  Fs.rename fs' "/a/after" "/a/b/after2";
  Fs.unlink fs' "/a/b/after2";
  Fs.mkdir fs' "/newdir";
  Fs.rmdir fs' "/newdir"

let test_repair_directory_runtime () =
  let region = fresh_region () in
  let fs = Fs.mkfs ~euid:0 region in
  Fs.mkdir fs "/d";
  Fs.create_file fs "/d/a";
  Fs.create_file fs "/d/b";
  (* simulate an interrupted delete: entry valid bit dropped but slot
     still points at it *)
  let layout = Fs.layout fs in
  let _, fe = Fs.resolve fs "/d/a" in
  Slab.begin_free layout.Layout.fentry_slab fe;
  let repaired = Recovery.repair_directory fs "/d" in
  Alcotest.(check bool) "repaired something" true (repaired >= 1);
  Alcotest.(check bool) "b intact" true (Fs.exists fs "/d/b");
  Alcotest.(check bool) "a gone (delete completed)" false (Fs.exists fs "/d/a")

exception Crash_now

(* A *process* crash (not a power failure) mid-rename: the region is
   intact, only the crashed process's progress is half-done.  A second
   process repairs just the affected directory with
   [Recovery.repair_directory] — no global scan — and the result passes
   the full offline checker. *)
let test_repair_directory_process_crash () =
  let region = fresh_region () in
  let fs = Fs.mkfs ~euid:0 region in
  Fs.mkdir fs "/d1";
  Fs.mkdir fs "/d2";
  Fs.create_file fs "/d1/a";
  Fs.create_file fs "/d2/c";
  Fs.set_crash_hook fs (fun l -> if l = "rename:swap" then raise Crash_now);
  (try Fs.rename fs "/d1/a" "/d1/b" with Crash_now -> ());
  (* a new process attaches and repairs only /d1 *)
  Fs.invalidate_shared region;
  let fs' = Fs.mount ~euid:0 region in
  let repaired = Recovery.repair_directory fs' "/d1" in
  Alcotest.(check bool) "repaired something" true (repaired >= 1);
  Alcotest.(check bool) "rename resolved to exactly one name" true
    (Fs.exists fs' "/d1/a" <> Fs.exists fs' "/d1/b");
  Alcotest.(check bool) "other directory untouched" true
    (Fs.exists fs' "/d2/c");
  Alcotest.(check (list string)) "checker clean after local repair" []
    (List.map Simurgh_core.Check.violation_to_string
       (Simurgh_core.Check.run region))

let fsck_clean what region =
  Alcotest.(check (list string)) what []
    (List.map Simurgh_core.Check.violation_to_string
       (Simurgh_core.Check.run region))

let dir_head fs path =
  let _, fe = Fs.resolve fs path in
  Simurgh_core.Fentry.dirblock (Fs.region fs) fe

(* Regression: recovery pass 1 must resolve EVERY pending rename log it
   can reach, not just the first one it finds.  Two processes crashed
   mid-rename in two different directories leave two pending logs; both
   renames must be resolved (each to exactly one name) and the checker
   must find nothing. *)
let test_two_pending_logs_two_dirs () =
  let region = fresh_region () in
  let fs = Fs.mkfs ~euid:0 region in
  Fs.mkdir fs "/d1";
  Fs.mkdir fs "/d2";
  Fs.create_file fs "/d1/a";
  Fs.create_file fs "/d2/c";
  Fs.set_crash_hook fs (fun l -> if l = "rename:swap" then raise Crash_now);
  (try Fs.rename fs "/d1/a" "/d1/b" with Crash_now -> ());
  (try Fs.rename fs "/d2/c" "/d2/d" with Crash_now -> ());
  (* both logs really are pending before recovery (non-vacuous) *)
  let r = Fs.region fs in
  Alcotest.(check int) "d1 log pending" 1
    (List.length (Simurgh_core.Dirblock.Log.pending_slots r (dir_head fs "/d1")));
  Alcotest.(check int) "d2 log pending" 1
    (List.length (Simurgh_core.Dirblock.Log.pending_slots r (dir_head fs "/d2")));
  Fs.invalidate_shared region;
  let _ = Recovery.run region in
  let fs' = Fs.mount ~euid:0 region in
  Alcotest.(check bool) "d1 rename resolved to one name" true
    (Fs.exists fs' "/d1/a" <> Fs.exists fs' "/d1/b");
  Alcotest.(check bool) "d2 rename resolved to one name" true
    (Fs.exists fs' "/d2/c" <> Fs.exists fs' "/d2/d");
  fsck_clean "both pending logs resolved" region

(* Same regression on log-ring media: two crashed renames in ONE
   directory leave two pending slots of the same first hash block's
   ring.  Recovery must resolve both — in epoch order — and leave the
   ring empty. *)
let test_two_pending_slots_one_ring () =
  let region = fresh_region () in
  let fs = Fs.mkfs ~euid:0 ~log_ring:4 region in
  Fs.mkdir fs "/d";
  Fs.create_file fs "/d/a";
  Fs.create_file fs "/d/c";
  Fs.set_crash_hook fs (fun l -> if l = "rename:swap" then raise Crash_now);
  (try Fs.rename fs "/d/a" "/d/b" with Crash_now -> ());
  (try Fs.rename fs "/d/c" "/d/d" with Crash_now -> ());
  let r = Fs.region fs in
  let head = dir_head fs "/d" in
  let pending = Simurgh_core.Dirblock.Log.pending_slots r head in
  Alcotest.(check int) "two slots of one ring pending" 2
    (List.length pending);
  (* distinct slots, distinct epochs (the ordering key is usable) *)
  (match pending with
  | [ (s1, e1); (s2, e2) ] ->
      Alcotest.(check bool) "distinct slots" true (s1 <> s2);
      Alcotest.(check bool) "distinct epochs" true (e1 <> e2)
  | _ -> Alcotest.fail "expected exactly two pending slots");
  Fs.invalidate_shared region;
  let _ = Recovery.run region in
  let fs' = Fs.mount ~euid:0 region in
  Alcotest.(check bool) "first rename resolved to one name" true
    (Fs.exists fs' "/d/a" <> Fs.exists fs' "/d/b");
  Alcotest.(check bool) "second rename resolved to one name" true
    (Fs.exists fs' "/d/c" <> Fs.exists fs' "/d/d");
  Alcotest.(check (list (pair int int))) "ring empty after recovery" []
    (Simurgh_core.Dirblock.Log.pending_slots region head);
  fsck_clean "both ring slots resolved" region

(* Clean-shutdown fast path: a set clean flag lets [mount_auto] skip the
   mark-and-sweep entirely; a missing unmount (crash) triggers it. *)
let test_clean_shutdown_fast_path () =
  let region = fresh_region () in
  let fs = Fs.mkfs ~euid:0 region in
  Fs.mkdir fs "/a";
  Fs.create_file fs "/a/f";
  Fs.unmount fs;
  Fs.invalidate_shared region;
  let fs2, rep = Recovery.mount_auto ~euid:0 region in
  Alcotest.(check bool) "clean shutdown skips recovery" true (rep = None);
  Alcotest.(check bool) "tree intact" true (Fs.exists fs2 "/a/f");
  (* mounted but never unmounted = crash: next mount_auto must recover *)
  Fs.create_file fs2 "/a/g";
  Fs.invalidate_shared region;
  let fs3, rep2 = Recovery.mount_auto ~euid:0 region in
  (match rep2 with
  | None -> Alcotest.fail "crash must trigger full recovery"
  | Some _ -> ());
  Alcotest.(check bool) "post-crash tree intact" true (Fs.exists fs3 "/a/g");
  (* recovery + clean unmount re-arm the fast path *)
  Fs.unmount fs3;
  Fs.invalidate_shared region;
  let _, rep3 = Recovery.mount_auto ~euid:0 region in
  Alcotest.(check bool) "fast path re-armed" true (rep3 = None)

let test_double_recovery_stable () =
  let region = fresh_region () in
  let fs = Fs.mkfs ~euid:0 region in
  populate fs;
  let _, r1 = Recovery.run region in
  let _, r2 = Recovery.run region in
  Alcotest.(check int) "same files" r1.Recovery.files r2.Recovery.files;
  Alcotest.(check int) "same dirs" r1.Recovery.dirs r2.Recovery.dirs;
  Alcotest.(check int) "same used blocks" r1.Recovery.used_blocks
    r2.Recovery.used_blocks

(* Satellite regression: recovery on an already-clean image is a media
   no-op — every byte recovery writes (free lists, clean flag) must
   rewrite to the value it already has, so a second pass leaves the
   region bit-identical. *)
let test_clean_image_media_noop () =
  let region = fresh_region () in
  let fs = Fs.mkfs ~euid:0 region in
  populate fs;
  Fs.invalidate_shared region;
  let _ = Recovery.run region in
  let d1 = Simurgh_nvmm.Region.media_digest region in
  Fs.invalidate_shared region;
  let _ = Recovery.run region in
  let d2 = Simurgh_nvmm.Region.media_digest region in
  Alcotest.(check bool) "second pass bit-identical" true (d1 = d2)

(* A populated image with real damage for the parallel drivers to agree
   on: leaked slab objects, a stale busy flag and a rename crashed at
   the swap point. *)
let crashed_fixture () =
  let region = fresh_region () in
  let fs = Fs.mkfs ~euid:0 region in
  populate fs;
  let layout = Fs.layout fs in
  for _ = 1 to 7 do
    ignore (Slab.alloc layout.Layout.inode_slab)
  done;
  for _ = 1 to 5 do
    ignore (Slab.alloc layout.Layout.fentry_slab)
  done;
  let region' = Fs.region fs in
  let root = Layout.root_fentry layout in
  let head = Simurgh_core.Fentry.dirblock region' root in
  Simurgh_core.Dirblock.set_busy region' head 3 true;
  Fs.set_crash_hook fs (fun l -> if l = "rename:swap" then raise Crash_now);
  (try Fs.rename fs "/a/f0" "/a/g0" with Crash_now -> ());
  region

(* Tentpole invariant: the three pool drivers (sequential reference,
   virtual-time list scheduling, cooperative fibers) recover the same
   image to bit-identical media and byte-identical reports (modulo the
   virtual-time makespan, which only the vtime driver measures). *)
let test_parallel_matches_sequential () =
  let region = crashed_fixture () in
  let cp = Simurgh_nvmm.Region.checkpoint region in
  let norm (r : Recovery.report) = { r with Recovery.vtime_cycles = 0.0 } in
  Fs.invalidate_shared region;
  let _, rs = Recovery.run region in
  let ds = Simurgh_nvmm.Region.media_digest region in
  fsck_clean "sequential recovery fsck" region;
  Simurgh_nvmm.Region.restore region cp;
  Fs.invalidate_shared region;
  let machine = Simurgh_sim.Machine.create () in
  let _, rv =
    Recovery.run ~par:(Recovery.Vtime { machine; workers = 4 }) region
  in
  let dv = Simurgh_nvmm.Region.media_digest region in
  Simurgh_nvmm.Region.restore region cp;
  Fs.invalidate_shared region;
  let _, rf =
    Recovery.run
      ~par:
        (Recovery.Fibers
           { schedule = Simurgh_sim.Schedule.random 5L; workers = 3 })
      region
  in
  let df = Simurgh_nvmm.Region.media_digest region in
  Alcotest.(check bool) "vtime media identical" true (dv = ds);
  Alcotest.(check bool) "fibers media identical" true (df = ds);
  Alcotest.(check bool) "vtime report identical" true (norm rv = norm rs);
  Alcotest.(check bool) "fibers report identical" true (norm rf = norm rs);
  Alcotest.(check bool) "vtime makespan measured" true
    (rv.Recovery.vtime_cycles > 0.0);
  fsck_clean "fibers recovery fsck" region

(* The broken-parallel-sweep negative control: dropping every mark
   shard but worker 0's loses the subtree marks made by other workers,
   so the sweep frees reachable objects and the checker must object —
   proving the checker actually guards the parallel merge.  A full
   recovery afterwards converges the damaged image back to clean. *)
let test_drop_mark_shard_flags () =
  let region = crashed_fixture () in
  Fs.invalidate_shared region;
  let machine = Simurgh_sim.Machine.create () in
  let _ =
    Recovery.run
      ~par:(Recovery.Vtime { machine; workers = 2 })
      ~drop_mark_shard:true region
  in
  Alcotest.(check bool) "checker flags the lost marks" true
    (Simurgh_core.Check.run region <> []);
  Fs.invalidate_shared region;
  let _ = Recovery.run region in
  fsck_clean "full recovery converges the damage" region

let prop_recovery_preserves_random_trees =
  QCheck.Test.make ~name:"recovery preserves arbitrary populations" ~count:20
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (int_range 0 30))
    (fun ids ->
      let region = fresh_region () in
      let fs = Fs.mkfs ~euid:0 region in
      Fs.mkdir fs "/p";
      let expected = List.sort_uniq compare ids in
      List.iter
        (fun i ->
          try Fs.create_file fs (Printf.sprintf "/p/f%02d" i)
          with Errno.Err (EEXIST, _) -> ())
        ids;
      let fs', _ = Recovery.mount_after_crash ~euid:0 region in
      let listed = List.sort compare (Fs.readdir fs' "/p") in
      listed = List.map (Printf.sprintf "f%02d") expected)

let () =
  Alcotest.run "recovery"
    [
      ( "mark-and-sweep",
        [
          Alcotest.test_case "clean tree preserved" `Quick
            test_clean_tree_preserved;
          Alcotest.test_case "garbage reclaimed" `Quick
            test_sweep_reclaims_garbage;
          Alcotest.test_case "busy flags cleared" `Quick
            test_busy_flags_cleared;
          Alcotest.test_case "block counts consistent" `Quick
            test_block_counts_consistent;
          Alcotest.test_case "usable after recovery" `Quick
            test_fs_usable_after_recovery;
          Alcotest.test_case "runtime repair" `Quick
            test_repair_directory_runtime;
          Alcotest.test_case "process-crash directory repair" `Quick
            test_repair_directory_process_crash;
          Alcotest.test_case "two pending logs, two directories" `Quick
            test_two_pending_logs_two_dirs;
          Alcotest.test_case "two pending slots, one log ring" `Quick
            test_two_pending_slots_one_ring;
          Alcotest.test_case "clean shutdown fast path" `Quick
            test_clean_shutdown_fast_path;
          Alcotest.test_case "double recovery stable" `Quick
            test_double_recovery_stable;
          Alcotest.test_case "clean image media no-op" `Quick
            test_clean_image_media_noop;
          Alcotest.test_case "parallel drivers match sequential" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "dropped mark shard is caught" `Quick
            test_drop_mark_shard_flags;
          QCheck_alcotest.to_alcotest prop_recovery_preserves_random_trees;
        ] );
    ]
