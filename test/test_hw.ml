(* Tests for the protection hardware model: page tables with the ep bit,
   jmpp/pret semantics and the gem5-lite cycle model. *)

open Simurgh_hw

let fault k = Alcotest.check_raises "fault" (Fault.Fault k)

(* --- privilege ---------------------------------------------------------- *)

let test_privilege_cpl () =
  Alcotest.(check int) "user" 3 (Privilege.to_cpl Privilege.User);
  Alcotest.(check int) "kernel" 0 (Privilege.to_cpl Privilege.Kernel);
  Alcotest.(check bool) "roundtrip" true
    (Privilege.of_cpl 3 = Privilege.User && Privilege.of_cpl 0 = Privilege.Kernel)

(* --- page table ---------------------------------------------------------- *)

let test_pt_user_cannot_touch_kernel_page () =
  let pt = Page_table.create () in
  Page_table.map pt ~page:5 ~kernel:true ~writable:true;
  fault (Fault.Kernel_page_access { page = 5; write = false }) (fun () ->
      Page_table.check_access pt ~mode:Privilege.User ~addr:(5 * 4096) ~write:false)

let test_pt_kernel_can_touch_kernel_page () =
  let pt = Page_table.create () in
  Page_table.map pt ~page:5 ~kernel:true ~writable:true;
  Page_table.check_access pt ~mode:Privilege.Kernel ~addr:(5 * 4096) ~write:true

let test_pt_not_present_faults () =
  let pt = Page_table.create () in
  fault (Fault.Page_not_present 9) (fun () ->
      Page_table.check_access pt ~mode:Privilege.Kernel ~addr:(9 * 4096)
        ~write:false)

let test_pt_ep_only_from_kernel () =
  let pt = Page_table.create () in
  Page_table.map pt ~page:7 ~kernel:true ~writable:false;
  fault (Fault.Ep_set_from_user 7) (fun () ->
      Page_table.set_ep pt ~mode:Privilege.User ~page:7);
  Page_table.set_ep pt ~mode:Privilege.Kernel ~page:7

let test_pt_protected_mapping_immutable () =
  let pt = Page_table.create () in
  Page_table.map pt ~page:7 ~kernel:true ~writable:false;
  Page_table.set_ep pt ~mode:Privilege.Kernel ~page:7;
  (* mmap() may not replace pages carrying protected functions *)
  fault (Fault.Write_to_protected_mapping 7) (fun () ->
      Page_table.remap pt ~page:7 ~kernel:false ~writable:true)

let test_pt_write_to_readonly_faults () =
  let pt = Page_table.create () in
  Page_table.map pt ~page:3 ~kernel:false ~writable:false;
  fault (Fault.Kernel_page_access { page = 3; write = true }) (fun () ->
      Page_table.check_access pt ~mode:Privilege.User ~addr:(3 * 4096)
        ~write:true)

(* --- protected functions -------------------------------------------------- *)

let test_protected_call_roundtrip () =
  let cpu = Cpu.create () in
  let univ = Protected.bootstrap cpu ~euid:1000 ~egid:100 in
  let observed = ref None in
  let f =
    Protected.register univ ~name:"probe" (fun w x ->
        Protected.check_privileged w cpu;
        observed := Some (Cpu.mode cpu);
        x * 2)
  in
  Protected.seal univ;
  Alcotest.(check int) "result" 42 (f 21);
  Alcotest.(check bool) "ran in kernel mode" true
    (!observed = Some Privilege.Kernel);
  Alcotest.(check bool) "back to user mode" true
    (Cpu.mode cpu = Privilege.User)

let test_protected_nested_calls () =
  let cpu = Cpu.create () in
  let univ = Protected.bootstrap cpu ~euid:0 ~egid:0 in
  let inner =
    Protected.register univ ~name:"inner" (fun _w () -> Cpu.cpl cpu)
  in
  let outer =
    Protected.register univ ~name:"outer" (fun _w () ->
        let inside = inner () in
        (* still kernel after the nested pret *)
        (inside, Cpu.cpl cpu))
  in
  Protected.seal univ;
  let inside, after_inner = outer () in
  Alcotest.(check int) "nested runs at CPL 0" 0 inside;
  Alcotest.(check int) "outer still CPL 0 after nested pret" 0 after_inner;
  Alcotest.(check int) "user again at the end" 3 (Cpu.cpl cpu)

let test_jmpp_bad_offset_faults () =
  let cpu = Cpu.create () in
  let univ = Protected.bootstrap cpu ~euid:0 ~egid:0 in
  let _f = Protected.register univ ~name:"f" (fun _ () -> ()) in
  Protected.seal univ;
  let addr = Protected.address_of univ "f" in
  (* offset 0x004 is not one of the fixed entry points *)
  let page = Page_table.page_of_addr addr in
  Alcotest.check_raises "bad offset"
    (Fault.Fault (Fault.Jmpp_bad_entry_offset { page; offset = 0x004 }))
    (fun () -> Protected.jmpp_raw univ ((page * Page_table.page_size) + 0x004))

let test_jmpp_nop_entry_faults () =
  let cpu = Cpu.create () in
  let univ = Protected.bootstrap cpu ~euid:0 ~egid:0 in
  let _f = Protected.register univ ~name:"f" (fun _ () -> ()) in
  Protected.seal univ;
  let addr = Protected.address_of univ "f" in
  let page = Page_table.page_of_addr addr in
  (* the second slot was never registered: its first instruction is a nop *)
  Alcotest.check_raises "nop entry"
    (Fault.Fault (Fault.Entry_is_nop { page; offset = 0x400 }))
    (fun () -> Protected.jmpp_raw univ ((page * Page_table.page_size) + 0x400))

let test_jmpp_unprotected_page_faults () =
  let cpu = Cpu.create () in
  let univ = Protected.bootstrap cpu ~euid:0 ~egid:0 in
  Protected.seal univ;
  fault (Fault.Jmpp_target_not_protected 1) (fun () ->
      Protected.jmpp_raw univ (1 * Page_table.page_size))

let test_register_after_seal_rejected () =
  let cpu = Cpu.create () in
  let univ = Protected.bootstrap cpu ~euid:0 ~egid:0 in
  Protected.seal univ;
  Alcotest.check_raises "sealed"
    (Invalid_argument "Protected.register: universe sealed after bootstrap")
    (fun () ->
      let f = Protected.register univ ~name:"late" (fun _ () -> ()) in
      f ())

let test_mode_restored_on_exception () =
  let cpu = Cpu.create () in
  let univ = Protected.bootstrap cpu ~euid:0 ~egid:0 in
  let f =
    Protected.register univ ~name:"boom" (fun _ () -> failwith "inside")
  in
  Protected.seal univ;
  (try f () with Failure _ -> ());
  Alcotest.(check int) "CPL restored after exception" 3 (Cpu.cpl cpu)

let test_exception_restores_nesting () =
  let cpu = Cpu.create () in
  let univ = Protected.bootstrap cpu ~euid:0 ~egid:0 in
  let boom =
    Protected.register univ ~name:"boom" (fun _ () -> failwith "inside")
  in
  let ok = Protected.register univ ~name:"ok" (fun _ () -> Cpu.cpl cpu) in
  Protected.seal univ;
  (* repeated faults may not leak nesting levels: were the counter
     stranded at > 0 the next entry would start (and stay) in kernel
     mode even after its pret *)
  for _ = 1 to 3 do
    try boom () with Failure _ -> ()
  done;
  Alcotest.(check int) "next call enters at CPL 0" 0 (ok ());
  Alcotest.(check int) "and prets back to user" 3 (Cpu.cpl cpu)

let test_nested_exception_unwinds_inner_only () =
  let cpu = Cpu.create () in
  let univ = Protected.bootstrap cpu ~euid:0 ~egid:0 in
  let inner =
    Protected.register univ ~name:"inner" (fun _ () -> failwith "deep")
  in
  let outer =
    Protected.register univ ~name:"outer" (fun _ () ->
        (try inner () with Failure _ -> ());
        Cpu.cpl cpu)
  in
  Protected.seal univ;
  Alcotest.(check int) "outer still kernel after inner fault" 0 (outer ());
  Alcotest.(check int) "user at the end" 3 (Cpu.cpl cpu);
  (* exactly one nesting level was consumed by the inner fault *)
  Alcotest.(check int) "reusable" 0 (outer ())

let test_jmpp_fault_does_not_strand_kernel_mode () =
  let cpu = Cpu.create () in
  let univ = Protected.bootstrap cpu ~euid:0 ~egid:0 in
  let f = Protected.register univ ~name:"f" (fun _ () -> Cpu.cpl cpu) in
  Protected.seal univ;
  let addr = Protected.address_of univ "f" in
  let page = Page_table.page_of_addr addr in
  (* rejected jmpps fault before the CPL switch: neither the mode nor
     the nesting counter may move *)
  List.iter
    (fun off ->
      match Protected.jmpp_raw univ ((page * Page_table.page_size) + off) with
      | () -> Alcotest.fail "expected fault"
      | exception Fault.Fault _ -> ())
    [ 0x004; 0x400 ];
  Alcotest.(check int) "still user" 3 (Cpu.cpl cpu);
  Alcotest.(check int) "next real call enters kernel" 0 (f ());
  Alcotest.(check int) "and returns to user" 3 (Cpu.cpl cpu)

let test_creds_via_witness () =
  let cpu = Cpu.create () in
  let univ = Protected.bootstrap cpu ~euid:1234 ~egid:99 in
  let f =
    Protected.register univ ~name:"who" (fun w () ->
        (Protected.euid w univ, Protected.egid w univ))
  in
  Protected.seal univ;
  Alcotest.(check (pair int int)) "creds" (1234, 99) (f ())

let test_interrupt_return_restores_mode () =
  let cpu = Cpu.create () in
  let univ = Protected.bootstrap cpu ~euid:0 ~egid:0 in
  let f =
    Protected.register univ ~name:"preempted" (fun _ () ->
        (* scheduler preempts and returns: CPL must stay kernel inside a
           protected function (Section 3.3, Kernel Modification) *)
        Cpu.interrupt_return cpu;
        Cpu.cpl cpu)
  in
  Protected.seal univ;
  Alcotest.(check int) "kernel preserved across interrupt" 0 (f ());
  Cpu.interrupt_return cpu;
  Alcotest.(check int) "user outside" 3 (Cpu.cpl cpu)

let test_four_entries_per_page () =
  let cpu = Cpu.create () in
  let univ = Protected.bootstrap cpu ~euid:0 ~egid:0 in
  let fs =
    List.init 5 (fun i ->
        Protected.register univ ~name:(Printf.sprintf "f%d" i) (fun _ () -> i))
  in
  Protected.seal univ;
  List.iteri (fun i f -> Alcotest.(check int) "dispatch" i (f ())) fs;
  (* 5 functions need a second protected page *)
  Alcotest.(check int) "two pages" 2 (List.length (Protected.pages univ))

(* --- gem5-lite ---------------------------------------------------------- *)

let test_gem5_paper_numbers () =
  Alcotest.(check int) "call/ret ~24" 24 (Gem5.total Gem5.call_ret);
  Alcotest.(check int) "jmpp/pret ~70" 70 (Gem5.total Gem5.jmpp_pret);
  let sys = Gem5.total Gem5.syscall_gem5 in
  Alcotest.(check bool) "syscall ~1200 on gem5" true
    (sys >= 1100 && sys <= 1300);
  let hw = Gem5.total Gem5.syscall_hw in
  Alcotest.(check bool) "geteuid ~400 on HW" true (hw >= 350 && hw <= 450);
  (* the paper's headline: jmpp ~6x faster than a real syscall *)
  let ratio = float_of_int hw /. float_of_int (Gem5.total Gem5.jmpp_pret) in
  Alcotest.(check bool) "~6x" true (ratio > 4.5 && ratio < 7.0)

let test_gem5_measure_scales () =
  let total_100, warm = Gem5.measure ~iterations:100 Gem5.jmpp_pret in
  let total_200, _ = Gem5.measure ~iterations:200 Gem5.jmpp_pret in
  Alcotest.(check int) "warm per-iteration" 70 warm;
  Alcotest.(check int) "marginal cost is warm cost" (100 * warm)
    (total_200 - total_100)

let test_gem5_report_sums () =
  List.iter
    (fun seq ->
      let sum = List.fold_left (fun a (_, c) -> a + c) 0 (Gem5.report seq) in
      Alcotest.(check int) "blocks sum to total" (Gem5.total seq) sum)
    Gem5.all

let () =
  Alcotest.run "hw"
    [
      ( "page-table",
        [
          Alcotest.test_case "privilege cpl" `Quick test_privilege_cpl;
          Alcotest.test_case "user blocked from kernel page" `Quick
            test_pt_user_cannot_touch_kernel_page;
          Alcotest.test_case "kernel allowed" `Quick
            test_pt_kernel_can_touch_kernel_page;
          Alcotest.test_case "not present faults" `Quick
            test_pt_not_present_faults;
          Alcotest.test_case "ep only from kernel" `Quick
            test_pt_ep_only_from_kernel;
          Alcotest.test_case "protected mapping immutable" `Quick
            test_pt_protected_mapping_immutable;
          Alcotest.test_case "read-only write faults" `Quick
            test_pt_write_to_readonly_faults;
        ] );
      ( "protected",
        [
          Alcotest.test_case "call roundtrip" `Quick
            test_protected_call_roundtrip;
          Alcotest.test_case "nested calls" `Quick test_protected_nested_calls;
          Alcotest.test_case "bad offset faults" `Quick
            test_jmpp_bad_offset_faults;
          Alcotest.test_case "nop entry faults" `Quick
            test_jmpp_nop_entry_faults;
          Alcotest.test_case "unprotected page faults" `Quick
            test_jmpp_unprotected_page_faults;
          Alcotest.test_case "sealed" `Quick test_register_after_seal_rejected;
          Alcotest.test_case "exception restores mode" `Quick
            test_mode_restored_on_exception;
          Alcotest.test_case "exception restores nesting" `Quick
            test_exception_restores_nesting;
          Alcotest.test_case "nested exception unwinds inner only" `Quick
            test_nested_exception_unwinds_inner_only;
          Alcotest.test_case "jmpp fault leaves user mode" `Quick
            test_jmpp_fault_does_not_strand_kernel_mode;
          Alcotest.test_case "creds via witness" `Quick test_creds_via_witness;
          Alcotest.test_case "interrupt return" `Quick
            test_interrupt_return_restores_mode;
          Alcotest.test_case "four entries per page" `Quick
            test_four_entries_per_page;
        ] );
      ( "gem5",
        [
          Alcotest.test_case "paper numbers" `Quick test_gem5_paper_numbers;
          Alcotest.test_case "measure scales" `Quick test_gem5_measure_scales;
          Alcotest.test_case "report sums" `Quick test_gem5_report_sums;
        ] );
    ]
