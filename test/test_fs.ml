(* Simurgh file-system tests: the shared POSIX suite plus Simurgh-specific
   behaviours (permissions, persistence across remount, long names,
   extent stress, open-file map). *)

open Simurgh_fs_common
module Fs = Simurgh_core.Fs

let fresh_region () = Simurgh_nvmm.Region.create (128 * 1024 * 1024)
let fresh () = Fs.mkfs ~euid:0 (fresh_region ())

module Posix =
  Fs_suite.Make
    (Fs)
    (struct
      let fresh = fresh
    end)

let expect_err expected f =
  match f () with
  | _ -> Alcotest.failf "expected %s" (Errno.to_string expected)
  | exception Errno.Err (e, _) ->
      Alcotest.(check string) "errno" (Errno.to_string expected)
        (Errno.to_string e)

(* The scaled configuration (striped directory locks, per-thread
   allocator caches, DRAM resolve cache) must be semantically invisible:
   the whole POSIX suite runs again with every feature on. *)
let fresh_scaled () =
  Fs.mkfs ~euid:0 ~striped_locks:true ~rcache:true ~alloc_caches:true
    (fresh_region ())

module Posix_scaled =
  Fs_suite.Make
    (Fs)
    (struct
      let fresh = fresh_scaled
    end)

(* --- Simurgh-specific ---------------------------------------------------- *)

let test_remount_persists () =
  let region = fresh_region () in
  let fs = Fs.mkfs ~euid:0 region in
  Fs.mkdir fs "/home";
  Fs.create_file fs "/home/file";
  let fd = Fs.openf fs Types.wronly "/home/file" in
  ignore (Fs.append fs fd (Bytes.of_string "persistent data"));
  Fs.close fs fd;
  Fs.unmount fs;
  (* everything must be readable through a fresh mount of the same bytes *)
  let fs2 = Fs.mount ~euid:0 region in
  Alcotest.(check bool) "file survives" true (Fs.exists fs2 "/home/file");
  let fd = Fs.openf fs2 Types.rdonly "/home/file" in
  Alcotest.(check string) "data survives" "persistent data"
    (Bytes.to_string (Fs.pread fs2 fd ~pos:0 ~len:100));
  Fs.close fs2 fd

let test_permissions () =
  let region = fresh_region () in
  let fs = Fs.mkfs ~euid:1000 ~egid:1000 region in
  (* root dir is 0755 owned by root: a user cannot create at / *)
  expect_err Errno.EACCES (fun () -> Fs.create_file fs "/denied");
  (* but root can *)
  Fs.set_creds fs ~euid:0 ~egid:0;
  Fs.mkdir fs ~perm:0o700 "/rootonly";
  Fs.mkdir fs ~perm:0o777 "/public";
  Fs.set_creds fs ~euid:1000 ~egid:1000;
  expect_err Errno.EACCES (fun () -> Fs.create_file fs "/rootonly/f");
  Fs.create_file fs ~perm:0o600 "/public/mine";
  (* another user cannot read a 0600 file *)
  Fs.set_creds fs ~euid:2000 ~egid:2000;
  expect_err Errno.EACCES (fun () ->
      ignore (Fs.openf fs Types.rdonly "/public/mine"))

let test_long_name_spill () =
  let fs = fresh () in
  let name = "/" ^ String.make 200 'z' in
  Fs.create_file fs name;
  Alcotest.(check bool) "long name found" true (Fs.exists fs name);
  Alcotest.(check bool) "listed" true
    (List.exists (fun n -> String.length n = 200) (Fs.readdir fs "/"));
  Fs.unlink fs name;
  Alcotest.(check bool) "removed" false (Fs.exists fs name)

let test_name_too_long () =
  let fs = fresh () in
  expect_err Errno.ENAMETOOLONG (fun () ->
      Fs.create_file fs ("/" ^ String.make 300 'x'))

let test_extent_chain_stress () =
  let fs = fresh () in
  Fs.create_file fs "/huge";
  let fd = Fs.openf fs Types.rdwr "/huge" in
  (* interleaved writes force many extents (beyond the 4 inline ones) *)
  let chunk = Bytes.make 8192 'e' in
  for i = 0 to 299 do
    ignore (Fs.pwrite fs fd ~pos:(i * 8192) chunk)
  done;
  Alcotest.(check int) "size" (300 * 8192) (Fs.stat fs "/huge").Types.size;
  (* random-position readback *)
  let b = Fs.pread fs fd ~pos:(123 * 8192) ~len:16 in
  Alcotest.(check string) "content" (String.make 16 'e') (Bytes.to_string b);
  Fs.close fs fd;
  (* unlink returns every block *)
  let free_before =
    Simurgh_alloc.Block_alloc.free_blocks (Fs.layout fs).Simurgh_core.Layout.balloc
  in
  Fs.unlink fs "/huge";
  let free_after =
    Simurgh_alloc.Block_alloc.free_blocks (Fs.layout fs).Simurgh_core.Layout.balloc
  in
  Alcotest.(check bool) "blocks freed" true (free_after > free_before)

let test_write_updates_mtime_and_size_order () =
  let fs = fresh () in
  Fs.create_file fs "/f";
  let fd = Fs.openf fs Types.wronly "/f" in
  ignore (Fs.append fs fd (Bytes.make 10 'x'));
  let m1 = (Fs.stat fs "/f").Types.mtime in
  ignore (Fs.append fs fd (Bytes.make 10 'x'));
  let m2 = (Fs.stat fs "/f").Types.mtime in
  Alcotest.(check bool) "mtime advances" true (m2 >= m1);
  Fs.close fs fd

let test_open_file_map_reuse () =
  let fs = fresh () in
  Fs.create_file fs "/f";
  let fd1 = Fs.openf fs Types.rdonly "/f" in
  Fs.close fs fd1;
  let fd2 = Fs.openf fs Types.rdonly "/f" in
  (* descriptors are recycled *)
  Alcotest.(check int) "fd recycled" fd1 fd2;
  Fs.close fs fd2

let test_write_to_readonly_fd () =
  let fs = fresh () in
  Fs.create_file fs "/f";
  let fd = Fs.openf fs Types.rdonly "/f" in
  expect_err Errno.EBADF (fun () ->
      ignore (Fs.pwrite fs fd ~pos:0 (Bytes.make 1 'x')));
  Fs.close fs fd

let test_read_from_writeonly_fd () =
  let fs = fresh () in
  Fs.create_file fs "/f";
  let fd = Fs.openf fs Types.wronly "/f" in
  expect_err Errno.EBADF (fun () -> ignore (Fs.pread fs fd ~pos:0 ~len:1));
  Fs.close fs fd

let test_statfs_tracks_usage () =
  let fs = fresh () in
  let st0 = Fs.statfs fs in
  Alcotest.(check int) "accounting sane" st0.Fs.total_blocks
    st0.Fs.total_blocks;
  Fs.create_file fs "/f";
  let fd = Fs.openf fs Types.wronly "/f" in
  ignore (Fs.append fs fd (Bytes.make 100_000 'x'));
  Fs.close fs fd;
  let st1 = Fs.statfs fs in
  Alcotest.(check bool) "blocks consumed" true
    (st1.Fs.free_blocks < st0.Fs.free_blocks);
  Alcotest.(check int) "one more inode" (st0.Fs.live_inodes + 1)
    st1.Fs.live_inodes;
  Fs.unlink fs "/f";
  let st2 = Fs.statfs fs in
  Alcotest.(check int) "blocks restored" st0.Fs.free_blocks st2.Fs.free_blocks;
  Alcotest.(check int) "inode freed" st0.Fs.live_inodes st2.Fs.live_inodes

let test_deep_hierarchy () =
  let fs = fresh () in
  let path = ref "" in
  for i = 0 to 19 do
    path := Printf.sprintf "%s/d%d" !path i;
    Fs.mkdir fs !path
  done;
  Fs.create_file fs (!path ^ "/leaf");
  Alcotest.(check bool) "deep leaf" true (Fs.exists fs (!path ^ "/leaf"))

let test_dir_hash_block_freed_on_rmdir () =
  let fs = fresh () in
  let balloc = (Fs.layout fs).Simurgh_core.Layout.balloc in
  let before = Simurgh_alloc.Block_alloc.free_blocks balloc in
  Fs.mkdir fs "/tmp";
  Fs.rmdir fs "/tmp";
  let after = Simurgh_alloc.Block_alloc.free_blocks balloc in
  Alcotest.(check bool) "dir blocks returned" true (after >= before - 1)

let test_rename_directory () =
  let fs = fresh () in
  Fs.mkdir fs "/olddir";
  Fs.create_file fs "/olddir/content";
  Fs.rename fs "/olddir" "/newdir";
  Alcotest.(check bool) "renamed dir" true (Fs.exists fs "/newdir/content");
  Alcotest.(check bool) "old gone" false (Fs.exists fs "/olddir")

let test_symlink_intermediate () =
  let fs = fresh () in
  Fs.mkdir fs "/real";
  Fs.create_file fs "/real/f";
  Fs.symlink fs ~target:"/real" "/alias";
  Alcotest.(check bool) "through symlinked dir" true
    (Fs.exists fs "/alias/f")

let test_unlink_during_shared_names () =
  (* names hashing to the same lock row must not interfere *)
  let fs = fresh () in
  Fs.mkdir fs "/d";
  let names = List.init 200 (fun i -> Printf.sprintf "/d/n%d" i) in
  List.iter (Fs.create_file fs) names;
  (* delete every other, check the rest *)
  List.iteri (fun i n -> if i mod 2 = 0 then Fs.unlink fs n) names;
  List.iteri
    (fun i n ->
      Alcotest.(check bool) n (i mod 2 = 1) (Fs.exists fs n))
    names

let prop_random_file_population =
  QCheck.Test.make ~name:"random create/unlink matches a set model" ~count:30
    QCheck.(list (pair bool (int_range 0 60)))
    (fun ops ->
      let fs = fresh () in
      Fs.mkdir fs "/p";
      let model = Hashtbl.create 64 in
      List.iter
        (fun (create, k) ->
          let path = Printf.sprintf "/p/file%02d" k in
          if create then (
            match Fs.create_file fs path with
            | () -> Hashtbl.replace model path ()
            | exception Errno.Err (EEXIST, _) -> ())
          else
            match Fs.unlink fs path with
            | () -> Hashtbl.remove model path
            | exception Errno.Err (ENOENT, _) -> ())
        ops;
      let listed = List.sort compare (Fs.readdir fs "/p") in
      let expected =
        Hashtbl.fold (fun p () acc -> Filename.basename p :: acc) model []
        |> List.sort compare
      in
      listed = expected)

(* Regression: the volatile lock registries used to grow forever —
   rmdir left the directory's row and append locks behind (and pre-fix
   this test fails with hundreds of leaked row locks). *)
let test_lock_registries_reclaimed () =
  let fs = fresh () in
  let rows0, files0, appends0 = Simurgh_core.Locks.sizes (Fs.locks fs) in
  for round = 1 to 3 do
    let dir = Printf.sprintf "/churn%d" round in
    Fs.mkdir fs dir;
    for i = 0 to 199 do
      Fs.create_file fs (Printf.sprintf "%s/f%d" dir i)
    done;
    for i = 0 to 199 do
      Fs.unlink fs (Printf.sprintf "%s/f%d" dir i)
    done;
    Fs.rmdir fs dir
  done;
  let rows, files, appends = Simurgh_core.Locks.sizes (Fs.locks fs) in
  Alcotest.(check int) "file locks reclaimed" files0 files;
  (* the root directory's own rows (one per /churnN name) legitimately
     stay; everything belonging to the removed directories must go *)
  Alcotest.(check bool) "row locks reclaimed" true (rows <= rows0 + 3);
  Alcotest.(check bool) "append locks reclaimed" true (appends <= appends0 + 1)

(* --- fd edge cases (regressions) ----------------------------------------- *)

(* pread/pwrite used to treat a negative offset as a huge sparse file
   region (pwrite) or return garbage (pread); POSIX wants EINVAL *)
let test_pread_pwrite_negative_args () =
  let fs = fresh () in
  Fs.create_file fs "/f";
  let fd = Fs.openf fs Types.rdwr "/f" in
  ignore (Fs.append fs fd (Bytes.of_string "abc"));
  expect_err Errno.EINVAL (fun () ->
      Fs.pwrite fs fd ~pos:(-1) (Bytes.of_string "x"));
  expect_err Errno.EINVAL (fun () -> Fs.pread fs fd ~pos:(-1) ~len:1);
  expect_err Errno.EINVAL (fun () -> Fs.pread fs fd ~pos:0 ~len:(-1));
  (* the legal calls still work after the rejected ones *)
  Alcotest.(check string) "intact" "abc"
    (Bytes.to_string (Fs.pread fs fd ~pos:0 ~len:10));
  Fs.close fs fd

(* --- scaled configuration ------------------------------------------------- *)

let fsck_clean what region =
  Alcotest.(check (list string)) what []
    (List.map Simurgh_core.Check.violation_to_string
       (Simurgh_core.Check.run region))

(* Enough creates in one directory to overflow every 8-slot hash row of
   the first block repeatedly: the striped insert path must take its
   row-full detour (busy flag, append lock, chain growth) many times and
   still produce a correct, fsck-clean directory. *)
let test_striped_chain_growth () =
  let region = fresh_region () in
  let fs =
    Fs.mkfs ~euid:0 ~striped_locks:true ~rcache:true ~alloc_caches:true region
  in
  Fs.mkdir fs "/d";
  let n = 2000 in
  for i = 0 to n - 1 do
    Fs.create_file fs (Printf.sprintf "/d/f%d" i)
  done;
  for i = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "f%d exists" i)
      true
      (Fs.exists fs (Printf.sprintf "/d/f%d" i))
  done;
  expect_err Errno.EEXIST (fun () -> Fs.create_file fs "/d/f0");
  for i = 0 to (n / 2) - 1 do
    Fs.unlink fs (Printf.sprintf "/d/f%d" i)
  done;
  Alcotest.(check bool) "unlinked gone" false (Fs.exists fs "/d/f0");
  Alcotest.(check bool) "kept alive" true
    (Fs.exists fs (Printf.sprintf "/d/f%d" (n - 1)));
  fsck_clean "after striped churn" region

let test_striped_rename () =
  let region = fresh_region () in
  let fs =
    Fs.mkfs ~euid:0 ~striped_locks:true ~rcache:true ~alloc_caches:true region
  in
  Fs.mkdir fs "/s";
  Fs.mkdir fs "/t";
  for i = 0 to 99 do
    Fs.create_file fs (Printf.sprintf "/s/a%d" i)
  done;
  (* same-directory renames go through the reserve-then-log fast path *)
  for i = 0 to 49 do
    Fs.rename fs (Printf.sprintf "/s/a%d" i) (Printf.sprintf "/s/b%d" i)
  done;
  (* cross-directory renames, including replacing an existing target *)
  Fs.create_file fs "/t/b0";
  for i = 0 to 49 do
    Fs.rename fs (Printf.sprintf "/s/b%d" i) (Printf.sprintf "/t/b%d" i)
  done;
  for i = 0 to 49 do
    Alcotest.(check bool) "moved" true
      (Fs.exists fs (Printf.sprintf "/t/b%d" i));
    Alcotest.(check bool) "source gone" false
      (Fs.exists fs (Printf.sprintf "/s/b%d" i))
  done;
  Alcotest.(check bool) "untouched tail" true (Fs.exists fs "/s/a99");
  fsck_clean "after striped renames" region

(* The scaled features are volatile-only: a region written by a scaled
   mount must read back bit-compatibly through a stock (seed) mount. *)
let test_striped_layout_compatible () =
  let region = fresh_region () in
  let fs =
    Fs.mkfs ~euid:0 ~striped_locks:true ~rcache:true ~alloc_caches:true region
  in
  Fs.mkdir fs "/home";
  Fs.create_file fs "/home/file";
  let fd = Fs.openf fs Types.wronly "/home/file" in
  ignore (Fs.append fs fd (Bytes.of_string "same layout"));
  Fs.close fs fd;
  Fs.unmount fs;
  Fs.invalidate_shared region;
  (* stock mount: no striping, no caches *)
  let fs2 = Fs.mount ~euid:0 region in
  let fd = Fs.openf fs2 Types.rdonly "/home/file" in
  Alcotest.(check string) "data readable by seed mount" "same layout"
    (Bytes.to_string (Fs.pread fs2 fd ~pos:0 ~len:100));
  Fs.close fs2 fd;
  fsck_clean "seed mount of scaled image" region

(* --- resolve cache -------------------------------------------------------- *)

let rcache_of fs =
  match fs.Fs.rcache with
  | Some rc -> rc
  | None -> Alcotest.fail "rcache expected"

(* Name mutations through the FS must never let the resolve cache serve
   a stale entry. *)
let test_rcache_fs_invalidation () =
  let region = fresh_region () in
  let fs = Fs.mkfs ~euid:0 ~striped_locks:true ~rcache:true region in
  Fs.mkdir fs "/d";
  Fs.create_file fs "/d/a";
  ignore (Fs.stat fs "/d/a");
  ignore (Fs.stat fs "/d/a");
  let s = Simurgh_core.Rcache.stats (rcache_of fs) in
  Alcotest.(check bool) "repeated resolve hits" true
    (s.Simurgh_core.Rcache.hits > 0);
  (* unlink: the cached entry must die with the name *)
  Fs.unlink fs "/d/a";
  expect_err Errno.ENOENT (fun () -> Fs.stat fs "/d/a");
  (* recreate: the fresh file must be served, not the old entry *)
  Fs.create_file fs "/d/a";
  let fd = Fs.openf fs Types.wronly "/d/a" in
  ignore (Fs.append fs fd (Bytes.of_string "new"));
  Fs.close fs fd;
  let fd = Fs.openf fs Types.rdonly "/d/a" in
  Alcotest.(check string) "recreated content" "new"
    (Bytes.to_string (Fs.pread fs fd ~pos:0 ~len:10));
  Fs.close fs fd;
  (* rename: source dies, destination resolves *)
  Fs.rename fs "/d/a" "/d/b";
  expect_err Errno.ENOENT (fun () -> Fs.stat fs "/d/a");
  ignore (Fs.stat fs "/d/b");
  (* rmdir + fresh directory of the same name: generation bump must kill
     every cached child of the old one *)
  Fs.unlink fs "/d/b";
  Fs.rmdir fs "/d";
  Fs.mkdir fs "/d";
  expect_err Errno.ENOENT (fun () -> Fs.stat fs "/d/b")

let test_rcache_unit () =
  let module Rc = Simurgh_core.Rcache in
  let rc = Rc.create () in
  Alcotest.(check (option int)) "cold miss" None (Rc.lookup rc ~dir:7 "a");
  Rc.insert rc ~dir:7 "a" 100;
  Alcotest.(check (option int)) "hit" (Some 100) (Rc.lookup rc ~dir:7 "a");
  Alcotest.(check (option int)) "other dir" None (Rc.lookup rc ~dir:8 "a");
  Rc.invalidate rc ~dir:7 "a";
  Alcotest.(check (option int)) "name invalidated" None
    (Rc.lookup rc ~dir:7 "a");
  Rc.insert rc ~dir:7 "a" 100;
  Rc.insert rc ~dir:7 "b" 101;
  Rc.invalidate_dir rc 7;
  Alcotest.(check (option int)) "gen bump kills a" None
    (Rc.lookup rc ~dir:7 "a");
  Alcotest.(check (option int)) "gen bump kills b" None
    (Rc.lookup rc ~dir:7 "b");
  (* inserts after the bump are valid under the new generation *)
  Rc.insert rc ~dir:7 "a" 200;
  Alcotest.(check (option int)) "new gen entry" (Some 200)
    (Rc.lookup rc ~dir:7 "a");
  (* clear drops entries but generations stay sticky *)
  Rc.clear rc;
  Alcotest.(check (option int)) "cleared" None (Rc.lookup rc ~dir:7 "a");
  let s = Rc.stats rc in
  Alcotest.(check int) "inserts counted" 4 s.Rc.inserts;
  Alcotest.(check bool) "invalidations counted" true (s.Rc.invalidations >= 2)

(* --- byte-range data path (range_locks) ---------------------------------- *)

(* The byte-range configuration must be semantically invisible too: the
   whole POSIX suite runs a third time with range locking (and every
   scaled feature) on. *)
let fresh_range () =
  Fs.mkfs ~euid:0 ~striped_locks:true ~rcache:true ~alloc_caches:true
    ~range_locks:true (fresh_region ())

module Posix_range =
  Fs_suite.Make
    (Fs)
    (struct
      let fresh = fresh_range
    end)

(* --- rename-log ring ------------------------------------------------------ *)

(* The log-ring format (per-directory ring of rename-log slots) must be
   semantically invisible: the whole POSIX suite runs a fourth time with
   the ring (and every scaled feature) on. *)
let fresh_ring () =
  Fs.mkfs ~euid:0 ~striped_locks:true ~rcache:true ~alloc_caches:true
    ~log_ring:8 (fresh_region ())

module Posix_ring =
  Fs_suite.Make
    (Fs)
    (struct
      let fresh = fresh_ring
    end)

(* The ring size is a format-time property: it must survive remount and
   be picked up from the superblock, not from mount options. *)
let test_ring_format_persists () =
  let region = fresh_region () in
  let fs =
    Fs.mkfs ~euid:0 ~striped_locks:true ~rcache:true ~alloc_caches:true
      ~log_ring:8 region
  in
  Alcotest.(check int) "formatted ring" 8
    (Fs.layout fs).Simurgh_core.Layout.log_ring;
  Fs.mkdir fs "/d";
  Fs.create_file fs "/d/a";
  Fs.rename fs "/d/a" "/d/b";
  Fs.unmount fs;
  Fs.invalidate_shared region;
  (* a plain mount re-reads the ring size from the superblock *)
  let fs2 = Fs.mount ~euid:0 region in
  Alcotest.(check int) "remounted ring" 8
    (Fs.layout fs2).Simurgh_core.Layout.log_ring;
  Alcotest.(check bool) "rename survived" true (Fs.exists fs2 "/d/b");
  Fs.rename fs2 "/d/b" "/d/c";
  Alcotest.(check bool) "rename on remount" true (Fs.exists fs2 "/d/c");
  fsck_clean "ring image" region

(* Rename churn through the ring path: many renames in one directory
   (every one claims a ring slot) stay correct and fsck-clean, and the
   observability counters record the slot traffic. *)
let test_ring_rename_churn () =
  let region = fresh_region () in
  let fs =
    Fs.mkfs ~euid:0 ~striped_locks:true ~rcache:true ~alloc_caches:true
      ~log_ring:4 region
  in
  Fs.mkdir fs "/s";
  Fs.mkdir fs "/t";
  for i = 0 to 99 do
    Fs.create_file fs (Printf.sprintf "/s/a%d" i)
  done;
  for i = 0 to 49 do
    Fs.rename fs (Printf.sprintf "/s/a%d" i) (Printf.sprintf "/s/b%d" i)
  done;
  Fs.create_file fs "/t/b0";
  for i = 0 to 49 do
    Fs.rename fs (Printf.sprintf "/s/b%d" i) (Printf.sprintf "/t/b%d" i)
  done;
  for i = 0 to 49 do
    Alcotest.(check bool) "moved" true
      (Fs.exists fs (Printf.sprintf "/t/b%d" i));
    Alcotest.(check bool) "source gone" false
      (Fs.exists fs (Printf.sprintf "/s/b%d" i))
  done;
  Alcotest.(check bool) "slot acquisitions counted" true
    (Simurgh_core.Locks.log_slot_acquisitions (Fs.locks fs) >= 100);
  fsck_clean "after ring renames" region

let check_span what b ~pos ~len c =
  for i = pos to pos + len - 1 do
    if Bytes.get b i <> c then
      Alcotest.failf "%s: byte %d is %C, want %C" what i (Bytes.get b i) c
  done

(* pwrite far past EOF: the hole must read back as zeros, never as the
   stale content of a recycled block *)
let test_pwrite_hole_zero fresh () =
  let fs = fresh () in
  (* churn some data through the allocator so the hole's blocks are
     recycled ones that previously held non-zero bytes *)
  Fs.create_file fs "/junk";
  let fd = Fs.openf fs Types.rdwr "/junk" in
  ignore (Fs.pwrite fs fd ~pos:0 (Bytes.make 16384 'J'));
  Fs.close fs fd;
  Fs.unlink fs "/junk";
  Fs.create_file fs "/f";
  let fd = Fs.openf fs Types.rdwr "/f" in
  ignore (Fs.pwrite fs fd ~pos:0 (Bytes.make 100 'a'));
  ignore (Fs.pwrite fs fd ~pos:9000 (Bytes.make 50 'b'));
  let st = Fs.stat fs "/f" in
  Alcotest.(check int) "size" 9050 st.Types.size;
  let got = Fs.pread fs fd ~pos:0 ~len:9050 in
  check_span "prefix" got ~pos:0 ~len:100 'a';
  check_span "hole reads zero" got ~pos:100 ~len:8900 '\000';
  check_span "tail" got ~pos:9000 ~len:50 'b';
  Fs.close fs fd

(* ftruncate shrink then grow: a partial shrink keeps the file's blocks,
   so growing back must not re-expose the pre-shrink bytes *)
let test_truncate_shrink_grow fresh () =
  let fs = fresh () in
  Fs.create_file fs "/t";
  let fd = Fs.openf fs Types.rdwr "/t" in
  ignore (Fs.pwrite fs fd ~pos:0 (Bytes.make 8192 'x'));
  Fs.truncate fs "/t" 100;
  Fs.truncate fs "/t" 8192;
  let got = Fs.pread fs fd ~pos:0 ~len:8192 in
  check_span "kept prefix" got ~pos:0 ~len:100 'x';
  check_span "re-exposed bytes zero" got ~pos:100 ~len:(8192 - 100) '\000';
  Fs.close fs fd

(* appends through two fds interleave at reservation granularity and
   the file stays dense (no gap, no overlap) *)
let test_range_append_two_fds () =
  let fs = fresh_range () in
  Fs.create_file fs "/a";
  let fd1 = Fs.openf fs Types.wronly "/a" in
  let fd2 = Fs.openf fs Types.wronly "/a" in
  ignore (Fs.append fs fd1 (Bytes.make 4096 'p'));
  ignore (Fs.append fs fd2 (Bytes.make 4096 'q'));
  ignore (Fs.append fs fd1 (Bytes.make 100 'r'));
  Fs.close fs fd1;
  Fs.close fs fd2;
  let st = Fs.stat fs "/a" in
  Alcotest.(check int) "size" 8292 st.Types.size;
  let fd = Fs.openf fs Types.rdonly "/a" in
  let got = Fs.pread fs fd ~pos:0 ~len:8292 in
  check_span "first append" got ~pos:0 ~len:4096 'p';
  check_span "second append" got ~pos:4096 ~len:4096 'q';
  check_span "third append" got ~pos:8192 ~len:100 'r';
  Fs.close fs fd

(* O_TRUNC must reset the volatile reserve/publish state along with the
   persistent size, so the next append lands at offset 0 *)
let test_range_otrunc_resets () =
  let fs = fresh_range () in
  Fs.create_file fs "/o";
  let fd = Fs.openf fs Types.rdwr "/o" in
  ignore (Fs.append fs fd (Bytes.make 4096 'x'));
  Fs.close fs fd;
  let fd = Fs.openf fs { Types.rdwr with Types.trunc = true } "/o" in
  Alcotest.(check int) "truncated" 0 (Fs.stat fs "/o").Types.size;
  ignore (Fs.append fs fd (Bytes.make 10 'y'));
  Alcotest.(check int) "appended at 0" 10 (Fs.stat fs "/o").Types.size;
  let got = Fs.pread fs fd ~pos:0 ~len:10 in
  check_span "content" got ~pos:0 ~len:10 'y';
  Fs.close fs fd

let test_rows_of_range_edges () =
  let module L = Simurgh_core.Locks in
  let bs = L.range_row_bytes in
  Alcotest.(check (list int)) "len=0" [] (L.rows_of_range ~pos:512 ~len:0);
  Alcotest.(check (list int)) "negative pos" [] (L.rows_of_range ~pos:(-1) ~len:8);
  Alcotest.(check (list int)) "straddle at block-1" [ 0; 1 ]
    (L.rows_of_range ~pos:(bs - 1) ~len:2);
  Alcotest.(check (list int)) "single byte at block-1" [ 0 ]
    (L.rows_of_range ~pos:(bs - 1) ~len:1);
  Alcotest.(check (list int)) "whole-file span" [ 0; 1; 2; 3 ]
    (L.rows_of_range ~pos:0 ~len:(4 * bs))

(* exact coverage: the returned rows are precisely the rows any byte of
   [pos, pos+len) falls in, ascending and without duplicates *)
let prop_rows_of_range =
  QCheck.Test.make ~name:"Locks.rows_of_range covers exactly [pos, pos+len)"
    ~count:200
    QCheck.(pair (int_range (-2) 20000) (int_range (-2) 20000))
    (fun (pos, len) ->
      let module L = Simurgh_core.Locks in
      let rows = L.rows_of_range ~pos ~len in
      if len <= 0 || pos < 0 then rows = []
      else begin
        let module IS = Set.Make (Int) in
        let s = ref IS.empty in
        for i = pos to pos + len - 1 do
          s := IS.add (i / L.range_row_bytes) !s
        done;
        rows = IS.elements !s
      end)

(* -- integer-overflow argument guards ---------------------------------

   [pos + len] near max_int wraps negative and, unguarded, sails past
   the negative-argument checks into capacity math (Simurgh) or
   Bytes.blit (the kernel baselines, where it surfaced as
   Invalid_argument instead of an errno).  Every implementation must
   reject the wrap as EINVAL.  Table-driven over the shared FS
   interface: Simurgh, the four kernel baselines, and the sharded
   namespace. *)
let overflow_cases (type a)
    (module F : Simurgh_fs_common.Fs_intf.S with type t = a) (fs : a) =
  F.create_file fs "/of";
  let fd = F.openf fs Types.rdwr "/of" in
  ignore (F.pwrite fs fd ~pos:0 (Bytes.make 64 'x'));
  let big = max_int - 8 in
  List.iter
    (fun (what, f) ->
      match f () with
      | _ -> Alcotest.failf "%s: %s: expected EINVAL" F.name what
      | exception Errno.Err (EINVAL, _) -> ())
    [
      ("pread negative pos", fun () -> ignore (F.pread fs fd ~pos:(-1) ~len:4));
      ("pread negative len", fun () -> ignore (F.pread fs fd ~pos:0 ~len:(-4)));
      ( "pread pos+len overflow",
        fun () -> ignore (F.pread fs fd ~pos:big ~len:64) );
      ( "pwrite negative pos",
        fun () -> ignore (F.pwrite fs fd ~pos:(-1) (Bytes.make 4 'x')) );
      ( "pwrite pos+len overflow",
        fun () -> ignore (F.pwrite fs fd ~pos:big (Bytes.make 64 'x')) );
    ];
  F.close fs fd

let test_overflow_einval () =
  overflow_cases (module Fs) (fresh ());
  overflow_cases (module Simurgh_baselines.Nova) (Simurgh_baselines.Nova.create ());
  overflow_cases (module Simurgh_baselines.Pmfs) (Simurgh_baselines.Pmfs.create ());
  overflow_cases (module Simurgh_baselines.Ext4dax)
    (Simurgh_baselines.Ext4dax.create ());
  overflow_cases (module Simurgh_baselines.Splitfs)
    (Simurgh_baselines.Splitfs.create ());
  overflow_cases
    (module Simurgh_core.Shard)
    (Simurgh_core.Shard.mkfs ~regions:2 ~euid:0 (16 * 1024 * 1024))

(* -- sharded multi-region namespace ----------------------------------- *)

module Shard = Simurgh_core.Shard
module Name_hash = Simurgh_core.Name_hash

(* a top-level dir name that Name_hash.home routes to region [r] *)
let shard_dir ~regions r =
  let rec go i =
    let n = Printf.sprintf "d%d_%d" r i in
    if Name_hash.home n ~regions = r then n else go (i + 1)
  in
  "/" ^ go 0

let test_shard_namespace () =
  let regions = 4 in
  let sh = Shard.mkfs ~regions ~euid:0 (16 * 1024 * 1024) in
  let dirs = Array.init regions (fun r -> shard_dir ~regions r) in
  Array.iter (fun d -> Shard.mkdir sh d) dirs;
  Array.iteri
    (fun r d ->
      Alcotest.(check int) (d ^ " routes to its region") r (Shard.route sh d))
    dirs;
  (* files inherit the directory's region; content round-trips *)
  Array.iteri
    (fun r d ->
      let p = d ^ "/f" in
      let fd = Shard.openf sh (Types.creat Types.rdwr) p in
      ignore (Shard.pwrite sh fd ~pos:0 (Bytes.of_string "hello"));
      Shard.close sh fd;
      Alcotest.(check int) (p ^ " inherits region") r (Shard.route sh p);
      Alcotest.(check int) "size" 5 (Shard.stat sh p).Types.size)
    dirs;
  (* the virtual root merges every shard's listing *)
  let ls = Shard.readdir sh "/" in
  Alcotest.(check int) "root lists all shards' dirs" regions (List.length ls);
  Array.iter
    (fun d ->
      let n = String.sub d 1 (String.length d - 1) in
      Alcotest.(check bool) (n ^ " listed") true (List.mem n ls))
    dirs;
  (* statfs aggregates every region *)
  let st = Shard.statfs sh in
  let sum f =
    let acc = ref 0 in
    for i = 0 to Shard.shard_count sh - 1 do
      acc := !acc + f (Fs.statfs (Shard.fs_of sh i))
    done;
    !acc
  in
  Alcotest.(check int) "total aggregated"
    (sum (fun s -> s.Fs.total_blocks))
    st.Fs.total_blocks;
  Alcotest.(check int) "free aggregated"
    (sum (fun s -> s.Fs.free_blocks))
    st.Fs.free_blocks;
  Alcotest.(check int) "partition"
    st.Fs.total_blocks
    (st.Fs.free_blocks + st.Fs.used_blocks + st.Fs.quarantined_blocks)

let test_shard_cross_region_rename () =
  let sh = Shard.mkfs ~regions:2 ~euid:0 (16 * 1024 * 1024) in
  let d0 = shard_dir ~regions:2 0 and d1 = shard_dir ~regions:2 1 in
  Shard.mkdir sh d0;
  Shard.mkdir sh d1;
  (* directory rename across regions: EXDEV (two crash domains) *)
  Shard.mkdir sh (d0 ^ "/sub");
  expect_err EXDEV (fun () -> Shard.rename sh (d0 ^ "/sub") (d1 ^ "/sub"));
  (* file rename across regions: copy + unlink, content and mode kept *)
  let p0 = d0 ^ "/m" and p1 = d1 ^ "/m2" in
  let fd = Shard.openf sh (Types.creat Types.rdwr) p0 in
  ignore (Shard.pwrite sh fd ~pos:0 (Bytes.make 300 'z'));
  Shard.close sh fd;
  Shard.chmod sh p0 0o600;
  Shard.rename sh p0 p1;
  Alcotest.(check bool) "source gone" false (Shard.exists sh p0);
  let st = Shard.stat sh p1 in
  Alcotest.(check int) "size survived the copy" 300 st.Types.size;
  Alcotest.(check int) "mode survived the copy" 0o600 st.Types.perm;
  let fd = Shard.openf sh Types.rdonly p1 in
  let got = Shard.pread sh fd ~pos:0 ~len:300 in
  Shard.close sh fd;
  check_span "content" got ~pos:0 ~len:300 'z';
  (* a symlink moves across regions by re-creation *)
  Shard.symlink sh ~target:"m2" (d1 ^ "/sl");
  Shard.rename sh (d1 ^ "/sl") (d0 ^ "/sl");
  Alcotest.(check string) "symlink target kept" "m2"
    (Shard.readlink sh (d0 ^ "/sl"));
  (* hardlinks cannot span regions; within one region they work *)
  expect_err EXDEV (fun () -> Shard.hardlink sh ~existing:p1 (d0 ^ "/ln"));
  Shard.hardlink sh ~existing:p1 (d1 ^ "/ln");
  (* same-region rename stays the native atomic path *)
  Shard.rename sh (d1 ^ "/ln") (d1 ^ "/ln2");
  Alcotest.(check bool) "renamed in place" true (Shard.exists sh (d1 ^ "/ln2"))

let test_shard_remount () =
  let sh = Shard.mkfs ~regions:2 ~euid:0 (16 * 1024 * 1024) in
  let d1 = shard_dir ~regions:2 1 in
  Shard.mkdir sh d1;
  let fd = Shard.openf sh (Types.creat Types.rdwr) (d1 ^ "/f") in
  ignore (Shard.pwrite sh fd ~pos:0 (Bytes.of_string "persisted"));
  Shard.close sh fd;
  Shard.unmount sh;
  let rs = Shard.regions sh in
  Array.iter Fs.invalidate_shared rs;
  let sh2 = Shard.mount ~euid:0 rs in
  let fd = Shard.openf sh2 Types.rdonly (d1 ^ "/f") in
  let got = Shard.pread sh2 fd ~pos:0 ~len:9 in
  Shard.close sh2 fd;
  Alcotest.(check string) "content after remount" "persisted"
    (Bytes.to_string got);
  (* a permuted region array is caught by the superblock shard index *)
  Array.iter Fs.invalidate_shared rs;
  match Shard.mount ~euid:0 [| rs.(1); rs.(0) |] with
  | _ -> Alcotest.fail "expected invalid_arg on permuted regions"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "fs"
    [
      ("posix", Posix.suite);
      ( "simurgh",
        [
          Alcotest.test_case "remount persists" `Quick test_remount_persists;
          Alcotest.test_case "permissions" `Quick test_permissions;
          Alcotest.test_case "long name spill" `Quick test_long_name_spill;
          Alcotest.test_case "ENAMETOOLONG" `Quick test_name_too_long;
          Alcotest.test_case "extent chain stress" `Quick
            test_extent_chain_stress;
          Alcotest.test_case "mtime order" `Quick
            test_write_updates_mtime_and_size_order;
          Alcotest.test_case "fd reuse" `Quick test_open_file_map_reuse;
          Alcotest.test_case "write on rdonly fd" `Quick
            test_write_to_readonly_fd;
          Alcotest.test_case "read on wronly fd" `Quick
            test_read_from_writeonly_fd;
          Alcotest.test_case "statfs tracks usage" `Quick
            test_statfs_tracks_usage;
          Alcotest.test_case "deep hierarchy" `Quick test_deep_hierarchy;
          Alcotest.test_case "rmdir frees blocks" `Quick
            test_dir_hash_block_freed_on_rmdir;
          Alcotest.test_case "rename directory" `Quick test_rename_directory;
          Alcotest.test_case "symlink intermediate" `Quick
            test_symlink_intermediate;
          Alcotest.test_case "interleaved unlink" `Quick
            test_unlink_during_shared_names;
          Alcotest.test_case "lock registries reclaimed" `Quick
            test_lock_registries_reclaimed;
          QCheck_alcotest.to_alcotest prop_random_file_population;
        ] );
      ("posix-scaled", Posix_scaled.suite);
      ( "scaled",
        [
          Alcotest.test_case "pread/pwrite negative args" `Quick
            test_pread_pwrite_negative_args;
          Alcotest.test_case "striped chain growth" `Quick
            test_striped_chain_growth;
          Alcotest.test_case "striped rename" `Quick test_striped_rename;
          Alcotest.test_case "striped layout compatible" `Quick
            test_striped_layout_compatible;
          Alcotest.test_case "rcache FS invalidation" `Quick
            test_rcache_fs_invalidation;
          Alcotest.test_case "rcache unit" `Quick test_rcache_unit;
        ] );
      ("posix-ring", Posix_ring.suite);
      ( "log-ring",
        [
          Alcotest.test_case "format persists" `Quick test_ring_format_persists;
          Alcotest.test_case "rename churn" `Quick test_ring_rename_churn;
        ] );
      ("posix-range", Posix_range.suite);
      ( "overflow",
        [
          Alcotest.test_case "EINVAL on pos/len overflow (all FSes)" `Quick
            test_overflow_einval;
        ] );
      ( "shard",
        [
          Alcotest.test_case "routing, root merge, statfs" `Quick
            test_shard_namespace;
          Alcotest.test_case "cross-region rename semantics" `Quick
            test_shard_cross_region_rename;
          Alcotest.test_case "remount + permutation guard" `Quick
            test_shard_remount;
        ] );
      ( "range",
        [
          Alcotest.test_case "pwrite hole zero (default)" `Quick
            (test_pwrite_hole_zero fresh);
          Alcotest.test_case "pwrite hole zero (range)" `Quick
            (test_pwrite_hole_zero fresh_range);
          Alcotest.test_case "truncate shrink-grow (default)" `Quick
            (test_truncate_shrink_grow fresh);
          Alcotest.test_case "truncate shrink-grow (range)" `Quick
            (test_truncate_shrink_grow fresh_range);
          Alcotest.test_case "append via two fds" `Quick
            test_range_append_two_fds;
          Alcotest.test_case "O_TRUNC resets state" `Quick
            test_range_otrunc_resets;
          Alcotest.test_case "rows_of_range edges" `Quick
            test_rows_of_range_edges;
          QCheck_alcotest.to_alcotest prop_rows_of_range;
        ] );
    ]
