(* A reusable POSIX-semantics suite, functorized over the common FS
   interface so the same behaviours are verified on Simurgh and on every
   kernel-FS baseline. *)

open Simurgh_fs_common

module Make (F : Fs_intf.S) (Fresh : sig
  val fresh : unit -> F.t
end) =
struct
  let err e = Alcotest.testable Errno.pp ( = ) |> fun t -> (t, e)
  let _ = err

  let expect_err expected f =
    match f () with
    | _ -> Alcotest.failf "expected %s" (Errno.to_string expected)
    | exception Errno.Err (e, _) ->
        Alcotest.(check string) "errno" (Errno.to_string expected)
          (Errno.to_string e)

  let test_create_stat () =
    let fs = Fresh.fresh () in
    F.create_file fs "/a";
    let st = F.stat fs "/a" in
    Alcotest.(check bool) "file kind" true (st.Types.kind = Types.File);
    Alcotest.(check int) "size 0" 0 st.Types.size;
    Alcotest.(check int) "nlink 1" 1 st.Types.nlink

  let test_create_exists () =
    let fs = Fresh.fresh () in
    F.create_file fs "/a";
    expect_err Errno.EEXIST (fun () -> F.create_file fs "/a")

  let test_enoent () =
    let fs = Fresh.fresh () in
    expect_err Errno.ENOENT (fun () -> F.stat fs "/missing");
    expect_err Errno.ENOENT (fun () -> F.unlink fs "/missing");
    expect_err Errno.ENOENT (fun () -> F.stat fs "/no/such/dir/file")

  let test_mkdir_nested () =
    let fs = Fresh.fresh () in
    F.mkdir fs "/a";
    F.mkdir fs "/a/b";
    F.mkdir fs "/a/b/c";
    F.create_file fs "/a/b/c/leaf";
    Alcotest.(check bool) "exists" true (F.exists fs "/a/b/c/leaf");
    let st = F.stat fs "/a/b" in
    Alcotest.(check bool) "dir kind" true (st.Types.kind = Types.Dir)

  let test_enotdir () =
    let fs = Fresh.fresh () in
    F.create_file fs "/file";
    expect_err Errno.ENOTDIR (fun () -> F.create_file fs "/file/sub")

  let test_unlink () =
    let fs = Fresh.fresh () in
    F.create_file fs "/a";
    F.unlink fs "/a";
    Alcotest.(check bool) "gone" false (F.exists fs "/a");
    (* recreation works *)
    F.create_file fs "/a";
    Alcotest.(check bool) "back" true (F.exists fs "/a")

  let test_unlink_dir_is_eisdir () =
    let fs = Fresh.fresh () in
    F.mkdir fs "/d";
    expect_err Errno.EISDIR (fun () -> F.unlink fs "/d")

  let test_rmdir () =
    let fs = Fresh.fresh () in
    F.mkdir fs "/d";
    F.create_file fs "/d/f";
    expect_err Errno.ENOTEMPTY (fun () -> F.rmdir fs "/d");
    F.unlink fs "/d/f";
    F.rmdir fs "/d";
    Alcotest.(check bool) "gone" false (F.exists fs "/d")

  let test_readdir () =
    let fs = Fresh.fresh () in
    F.mkdir fs "/d";
    List.iter (fun n -> F.create_file fs ("/d/" ^ n)) [ "x"; "y"; "z" ];
    let names = List.sort compare (F.readdir fs "/d") in
    Alcotest.(check (list string)) "listing" [ "x"; "y"; "z" ] names

  let test_rename_same_dir () =
    let fs = Fresh.fresh () in
    F.mkdir fs "/d";
    F.create_file fs "/d/old";
    F.rename fs "/d/old" "/d/new";
    Alcotest.(check bool) "old gone" false (F.exists fs "/d/old");
    Alcotest.(check bool) "new there" true (F.exists fs "/d/new")

  let test_rename_cross_dir () =
    let fs = Fresh.fresh () in
    F.mkdir fs "/src";
    F.mkdir fs "/dst";
    F.create_file fs "/src/f";
    F.rename fs "/src/f" "/dst/g";
    Alcotest.(check bool) "moved" true (F.exists fs "/dst/g");
    Alcotest.(check bool) "source empty" true (F.readdir fs "/src" = [])

  let test_rename_replaces () =
    let fs = Fresh.fresh () in
    F.mkdir fs "/d";
    F.create_file fs "/d/a";
    F.create_file fs "/d/b";
    (* write something into a to check content travels *)
    let fd = F.openf fs Types.wronly "/d/a" in
    ignore (F.append fs fd (Bytes.of_string "payload"));
    F.close fs fd;
    F.rename fs "/d/a" "/d/b";
    Alcotest.(check bool) "a gone" false (F.exists fs "/d/a");
    Alcotest.(check int) "b has a's data" 7 (F.stat fs "/d/b").Types.size

  let test_rename_missing_source () =
    let fs = Fresh.fresh () in
    F.mkdir fs "/d";
    expect_err Errno.ENOENT (fun () -> F.rename fs "/d/nope" "/d/x")

  (* --- rename edge cases (POSIX pinning) ------------------------------- *)

  let test_rename_self_noop () =
    let fs = Fresh.fresh () in
    F.mkdir fs "/d";
    F.create_file fs "/d/f";
    let fd = F.openf fs Types.wronly "/d/f" in
    ignore (F.append fs fd (Bytes.of_string "data"));
    F.close fs fd;
    (* POSIX: renaming a name to itself succeeds and changes nothing *)
    F.rename fs "/d/f" "/d/f";
    Alcotest.(check bool) "still there" true (F.exists fs "/d/f");
    Alcotest.(check int) "data intact" 4 (F.stat fs "/d/f").Types.size;
    F.mkdir fs "/d/sub";
    F.rename fs "/d/sub" "/d/sub";
    Alcotest.(check bool) "dir still there" true (F.exists fs "/d/sub")

  let test_rename_into_own_subtree_einval () =
    let fs = Fresh.fresh () in
    F.mkdir fs "/a";
    F.mkdir fs "/a/b";
    F.mkdir fs "/a/b/c";
    (* directly into itself *)
    expect_err Errno.EINVAL (fun () -> F.rename fs "/a" "/a/x");
    (* deeper descendant *)
    expect_err Errno.EINVAL (fun () -> F.rename fs "/a" "/a/b/c/x");
    (* the namespace must be fully intact afterwards *)
    Alcotest.(check bool) "a" true (F.exists fs "/a");
    Alcotest.(check bool) "a/b" true (F.exists fs "/a/b");
    Alcotest.(check bool) "a/b/c" true (F.exists fs "/a/b/c");
    (* renaming into a *sibling* subtree stays legal *)
    F.mkdir fs "/other";
    F.rename fs "/a/b" "/other/b";
    Alcotest.(check bool) "moved" true (F.exists fs "/other/b/c")

  let test_rename_dir_over_empty_dir () =
    let fs = Fresh.fresh () in
    F.mkdir fs "/src";
    F.create_file fs "/src/payload";
    F.mkdir fs "/empty";
    F.rename fs "/src" "/empty";
    Alcotest.(check bool) "src gone" false (F.exists fs "/src");
    Alcotest.(check bool) "replaced" true (F.exists fs "/empty/payload")

  let test_rename_dir_over_nonempty_dir () =
    let fs = Fresh.fresh () in
    F.mkdir fs "/src";
    F.mkdir fs "/full";
    F.create_file fs "/full/occupant";
    expect_err Errno.ENOTEMPTY (fun () -> F.rename fs "/src" "/full");
    Alcotest.(check bool) "src kept" true (F.exists fs "/src");
    Alcotest.(check bool) "occupant kept" true (F.exists fs "/full/occupant")

  let test_rename_file_over_dir_eisdir () =
    let fs = Fresh.fresh () in
    F.create_file fs "/f";
    F.mkdir fs "/d";
    expect_err Errno.EISDIR (fun () -> F.rename fs "/f" "/d");
    Alcotest.(check bool) "file kept" true (F.exists fs "/f");
    Alcotest.(check bool) "dir kept" true
      ((F.stat fs "/d").Types.kind = Types.Dir)

  let test_rename_dir_over_file_enotdir () =
    let fs = Fresh.fresh () in
    F.mkdir fs "/d";
    F.create_file fs "/f";
    expect_err Errno.ENOTDIR (fun () -> F.rename fs "/d" "/f");
    Alcotest.(check bool) "dir kept" true
      ((F.stat fs "/d").Types.kind = Types.Dir);
    Alcotest.(check bool) "file kept" true
      ((F.stat fs "/f").Types.kind = Types.File)

  let test_rename_cross_dir_over_dir () =
    let fs = Fresh.fresh () in
    F.mkdir fs "/x";
    F.mkdir fs "/y";
    F.mkdir fs "/x/src";
    F.create_file fs "/x/src/inner";
    F.mkdir fs "/y/dst";
    (* cross-directory, destination an empty dir: replaced atomically *)
    F.rename fs "/x/src" "/y/dst";
    Alcotest.(check bool) "moved subtree" true (F.exists fs "/y/dst/inner");
    Alcotest.(check bool) "source slot empty" true (F.readdir fs "/x" = []);
    (* ... and a non-empty destination refuses, cross-dir too *)
    F.mkdir fs "/x/again";
    expect_err Errno.ENOTEMPTY (fun () -> F.rename fs "/x/again" "/y/dst");
    (* kind mismatches, cross-dir *)
    F.create_file fs "/x/plain";
    expect_err Errno.EISDIR (fun () -> F.rename fs "/x/plain" "/y/dst");
    expect_err Errno.ENOTDIR (fun () -> F.rename fs "/x/again" "/y/dst/inner")

  let test_rename_dir_carries_subtree () =
    let fs = Fresh.fresh () in
    F.mkdir fs "/top";
    F.mkdir fs "/top/mid";
    F.create_file fs "/top/mid/leaf";
    F.rename fs "/top" "/renamed";
    Alcotest.(check bool) "subtree follows" true
      (F.exists fs "/renamed/mid/leaf");
    (* the moved directory stays fully operational *)
    F.create_file fs "/renamed/mid/leaf2";
    Alcotest.(check bool) "still writable" true
      (F.exists fs "/renamed/mid/leaf2")

  let test_data_roundtrip () =
    let fs = Fresh.fresh () in
    F.create_file fs "/data";
    let fd = F.openf fs Types.rdwr "/data" in
    let payload = Bytes.init 1000 (fun i -> Char.chr (i mod 256)) in
    Alcotest.(check int) "written" 1000 (F.pwrite fs fd ~pos:0 payload);
    let back = F.pread fs fd ~pos:0 ~len:1000 in
    Alcotest.(check bytes) "roundtrip" payload back;
    F.close fs fd

  let test_sparse_like_overwrite () =
    let fs = Fresh.fresh () in
    F.create_file fs "/f";
    let fd = F.openf fs Types.rdwr "/f" in
    ignore (F.pwrite fs fd ~pos:0 (Bytes.make 5000 'a'));
    ignore (F.pwrite fs fd ~pos:1000 (Bytes.make 100 'b'));
    let b = F.pread fs fd ~pos:999 ~len:3 in
    Alcotest.(check string) "overwrite window" "abb" (Bytes.to_string b);
    let b2 = F.pread fs fd ~pos:1099 ~len:3 in
    Alcotest.(check string) "tail" "baa" (Bytes.to_string b2);
    Alcotest.(check int) "size unchanged" 5000 (F.stat fs "/f").Types.size;
    F.close fs fd

  let test_append_grows () =
    let fs = Fresh.fresh () in
    F.create_file fs "/log";
    let fd = F.openf fs Types.wronly "/log" in
    for _ = 1 to 10 do
      ignore (F.append fs fd (Bytes.make 100 'x'))
    done;
    F.close fs fd;
    Alcotest.(check int) "grew" 1000 (F.stat fs "/log").Types.size

  let test_read_past_eof () =
    let fs = Fresh.fresh () in
    F.create_file fs "/f";
    let fd = F.openf fs Types.rdwr "/f" in
    ignore (F.pwrite fs fd ~pos:0 (Bytes.make 10 'x'));
    let b = F.pread fs fd ~pos:5 ~len:100 in
    Alcotest.(check int) "short read" 5 (Bytes.length b);
    let b2 = F.pread fs fd ~pos:50 ~len:10 in
    Alcotest.(check int) "eof read" 0 (Bytes.length b2);
    F.close fs fd

  let test_open_create_trunc () =
    let fs = Fresh.fresh () in
    let fd = F.openf fs (Types.creat Types.wronly) "/new" in
    ignore (F.append fs fd (Bytes.make 100 'x'));
    F.close fs fd;
    let fd =
      F.openf fs { (Types.creat Types.wronly) with Types.trunc = true } "/new"
    in
    F.close fs fd;
    Alcotest.(check int) "truncated on open" 0 (F.stat fs "/new").Types.size

  let test_bad_fd () =
    let fs = Fresh.fresh () in
    F.create_file fs "/f";
    let fd = F.openf fs Types.rdonly "/f" in
    F.close fs fd;
    expect_err Errno.EBADF (fun () -> F.close fs fd)

  let test_fallocate_and_truncate () =
    let fs = Fresh.fresh () in
    F.create_file fs "/big";
    let fd = F.openf fs Types.rdwr "/big" in
    F.fallocate fs fd ~len:100_000;
    Alcotest.(check int) "fallocated" 100_000 (F.stat fs "/big").Types.size;
    F.close fs fd;
    F.truncate fs "/big" 10;
    Alcotest.(check int) "shrunk" 10 (F.stat fs "/big").Types.size

  let test_symlink () =
    let fs = Fresh.fresh () in
    F.mkdir fs "/d";
    F.create_file fs "/d/target";
    F.symlink fs ~target:"/d/target" "/link";
    Alcotest.(check string) "readlink" "/d/target" (F.readlink fs "/link");
    (* stat follows *)
    let st = F.stat fs "/link" in
    Alcotest.(check bool) "follows" true (st.Types.kind = Types.File)

  let test_symlink_loop () =
    let fs = Fresh.fresh () in
    F.symlink fs ~target:"/b" "/a";
    F.symlink fs ~target:"/a" "/b";
    expect_err Errno.ELOOP (fun () -> F.stat fs "/a")

  let test_hardlink () =
    let fs = Fresh.fresh () in
    F.create_file fs "/orig";
    let fd = F.openf fs Types.wronly "/orig" in
    ignore (F.append fs fd (Bytes.of_string "shared"));
    F.close fs fd;
    F.hardlink fs ~existing:"/orig" "/alias";
    Alcotest.(check int) "nlink 2" 2 (F.stat fs "/alias").Types.nlink;
    Alcotest.(check int) "same size" 6 (F.stat fs "/alias").Types.size;
    F.unlink fs "/orig";
    Alcotest.(check bool) "alias survives" true (F.exists fs "/alias");
    Alcotest.(check int) "nlink back to 1" 1 (F.stat fs "/alias").Types.nlink

  let test_chmod_utimes () =
    let fs = Fresh.fresh () in
    F.create_file fs "/f";
    F.chmod fs "/f" 0o600;
    Alcotest.(check int) "perm" 0o600 (F.stat fs "/f").Types.perm;
    F.utimes fs "/f" 12345;
    Alcotest.(check int) "mtime" 12345 (F.stat fs "/f").Types.mtime

  let test_dotdot () =
    let fs = Fresh.fresh () in
    F.mkdir fs "/a";
    F.mkdir fs "/a/b";
    F.create_file fs "/a/b/../sibling";
    Alcotest.(check bool) "dotdot resolved" true (F.exists fs "/a/sibling")

  let test_many_files_one_dir () =
    let fs = Fresh.fresh () in
    F.mkdir fs "/big";
    for i = 0 to 1499 do
      F.create_file fs (Printf.sprintf "/big/f%04d" i)
    done;
    Alcotest.(check int) "all listed" 1500 (List.length (F.readdir fs "/big"));
    for i = 0 to 1499 do
      Alcotest.(check bool) "present" true
        (F.exists fs (Printf.sprintf "/big/f%04d" i))
    done;
    for i = 0 to 1499 do
      F.unlink fs (Printf.sprintf "/big/f%04d" i)
    done;
    Alcotest.(check (list string)) "emptied" [] (F.readdir fs "/big")

  (* An fd's access mode binds at open time: a read-only descriptor must
     refuse every mutation entry point and a write-only descriptor must
     refuse reads (EBADF, matching Linux), however the file's permission
     bits read.  Table-driven so adding a write path keeps it honest. *)
  let test_fd_access_mode_matrix () =
    let fs = Fresh.fresh () in
    F.create_file fs "/f";
    let fd = F.openf fs Types.rdwr "/f" in
    ignore (F.pwrite fs fd ~pos:0 (Bytes.make 100 'x'));
    F.close fs fd;
    let buf = Bytes.make 10 'y' in
    let write_ops =
      [
        ("pwrite", fun fd -> ignore (F.pwrite fs fd ~pos:0 buf));
        ("append", fun fd -> ignore (F.append fs fd buf));
        ("fallocate", fun fd -> F.fallocate fs fd ~len:8192);
      ]
    in
    let rfd = F.openf fs Types.rdonly "/f" in
    List.iter
      (fun (name, op) ->
        match op rfd with
        | () -> Alcotest.failf "%s through O_RDONLY fd succeeded" name
        | exception Errno.Err (EBADF, _) -> ())
      write_ops;
    Alcotest.(check int) "reads unaffected" 10
      (Bytes.length (F.pread fs rfd ~pos:0 ~len:10));
    F.close fs rfd;
    Alcotest.(check int) "no mutation leaked through" 100
      (F.stat fs "/f").Types.size;
    let wfd = F.openf fs Types.wronly "/f" in
    (match F.pread fs wfd ~pos:0 ~len:10 with
    | _ -> Alcotest.fail "pread through O_WRONLY fd succeeded"
    | exception Errno.Err (EBADF, _) -> ());
    List.iter (fun (_, op) -> op wfd) write_ops;
    F.close fs wfd;
    Alcotest.(check int) "writes landed" 8192 (F.stat fs "/f").Types.size

  (* The resolver follows exactly [40] chained symlinks (the Linux VFS
     limit) before ELOOP: a 40-hop chain resolves, a 41-hop chain does
     not. *)
  let test_symlink_chain_depth_boundary () =
    let fs = Fresh.fresh () in
    F.create_file fs "/real";
    F.symlink fs ~target:"/real" "/l1";
    for i = 2 to 41 do
      F.symlink fs
        ~target:(Printf.sprintf "/l%d" (i - 1))
        (Printf.sprintf "/l%d" i)
    done;
    Alcotest.(check bool) "40 hops resolve" true
      ((F.stat fs "/l40").Types.kind = Types.File);
    expect_err Errno.ELOOP (fun () -> F.stat fs "/l41")

  let test_fsync_noop_ok () =
    let fs = Fresh.fresh () in
    F.create_file fs "/f";
    let fd = F.openf fs Types.wronly "/f" in
    ignore (F.append fs fd (Bytes.make 10 'x'));
    F.fsync fs fd;
    F.close fs fd

  let suite =
    [
      Alcotest.test_case "create+stat" `Quick test_create_stat;
      Alcotest.test_case "create EEXIST" `Quick test_create_exists;
      Alcotest.test_case "ENOENT paths" `Quick test_enoent;
      Alcotest.test_case "nested mkdir" `Quick test_mkdir_nested;
      Alcotest.test_case "ENOTDIR" `Quick test_enotdir;
      Alcotest.test_case "unlink" `Quick test_unlink;
      Alcotest.test_case "unlink dir EISDIR" `Quick test_unlink_dir_is_eisdir;
      Alcotest.test_case "rmdir" `Quick test_rmdir;
      Alcotest.test_case "readdir" `Quick test_readdir;
      Alcotest.test_case "rename same dir" `Quick test_rename_same_dir;
      Alcotest.test_case "rename cross dir" `Quick test_rename_cross_dir;
      Alcotest.test_case "rename replaces" `Quick test_rename_replaces;
      Alcotest.test_case "rename ENOENT" `Quick test_rename_missing_source;
      Alcotest.test_case "rename self no-op" `Quick test_rename_self_noop;
      Alcotest.test_case "rename cycle EINVAL" `Quick
        test_rename_into_own_subtree_einval;
      Alcotest.test_case "rename dir over empty dir" `Quick
        test_rename_dir_over_empty_dir;
      Alcotest.test_case "rename dir over full dir ENOTEMPTY" `Quick
        test_rename_dir_over_nonempty_dir;
      Alcotest.test_case "rename file over dir EISDIR" `Quick
        test_rename_file_over_dir_eisdir;
      Alcotest.test_case "rename dir over file ENOTDIR" `Quick
        test_rename_dir_over_file_enotdir;
      Alcotest.test_case "rename cross-dir over dir" `Quick
        test_rename_cross_dir_over_dir;
      Alcotest.test_case "rename dir carries subtree" `Quick
        test_rename_dir_carries_subtree;
      Alcotest.test_case "data roundtrip" `Quick test_data_roundtrip;
      Alcotest.test_case "overwrite window" `Quick test_sparse_like_overwrite;
      Alcotest.test_case "append grows" `Quick test_append_grows;
      Alcotest.test_case "read past EOF" `Quick test_read_past_eof;
      Alcotest.test_case "open create/trunc" `Quick test_open_create_trunc;
      Alcotest.test_case "EBADF" `Quick test_bad_fd;
      Alcotest.test_case "fd access-mode matrix" `Quick
        test_fd_access_mode_matrix;
      Alcotest.test_case "symlink depth-40 boundary" `Quick
        test_symlink_chain_depth_boundary;
      Alcotest.test_case "fallocate+truncate" `Quick
        test_fallocate_and_truncate;
      Alcotest.test_case "symlink" `Quick test_symlink;
      Alcotest.test_case "symlink loop ELOOP" `Quick test_symlink_loop;
      Alcotest.test_case "hardlink" `Quick test_hardlink;
      Alcotest.test_case "chmod+utimes" `Quick test_chmod_utimes;
      Alcotest.test_case "dotdot" `Quick test_dotdot;
      Alcotest.test_case "1500 files in a dir" `Quick test_many_files_one_dir;
      Alcotest.test_case "fsync" `Quick test_fsync_noop_ok;
    ]
end
