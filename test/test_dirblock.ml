(* Tests for the hash-map directory blocks: map semantics, chain growth,
   busy flags and the rename log. *)

open Simurgh_nvmm
open Simurgh_core

(* A standalone directory chain backed by a raw region + a bump allocator
   for blocks and file entries. *)
type harness = {
  region : Region.t;
  mutable cursor : int;
  head : int;
}

let mk ?(ring = 0) () =
  let region = Region.create (16 * 1024 * 1024) in
  let h = { region; cursor = 4096; head = 4096 } in
  let size = Dirblock.size_for_rows ~ring Dirblock.first_rows in
  Dirblock.init region h.head ~rows:Dirblock.first_rows ~ring ();
  h.cursor <- h.cursor + size + 64;
  h

let alloc_block h rows =
  let b = h.cursor in
  h.cursor <- h.cursor + Dirblock.size_for_rows rows + 64;
  Dirblock.init h.region b ~rows ();
  b

let alloc_fentry h name =
  let e = h.cursor in
  h.cursor <- h.cursor + Fentry.payload_size + 200;
  Fentry.init h.region e ~name ~dir:false ~symlink:false ~target:1
    ~alloc_spill:(fun n ->
      let s = h.cursor in
      h.cursor <- h.cursor + n + 8;
      s);
  e

(* Insert mimicking Fs.insert_entry's growth rule. *)
let insert h name =
  let e = alloc_fentry h name in
  let hash = Name_hash.hash name in
  let slot_ref, _, last = Dirblock.find_free_slot h.region ~head:h.head ~hash in
  (match slot_ref with
  | Some (b, row, s) -> Dirblock.set_slot h.region b row s e
  | None ->
      let rows = min Dirblock.max_rows (2 * Dirblock.rows h.region last) in
      let nb = alloc_block h rows in
      Dirblock.set_next h.region last nb;
      Dirblock.set_slot h.region nb (hash mod rows) 0 e);
  e

let find h name =
  match Dirblock.find h.region ~head:h.head ~name with
  | Some (_, _, _, e), _ -> Some e
  | None, _ -> None

let remove h name =
  match Dirblock.find h.region ~head:h.head ~name with
  | Some (b, row, s, _), _ ->
      Dirblock.set_slot h.region b row s 0;
      true
  | None, _ -> false

(* --- tests ----------------------------------------------------------------- *)

let test_insert_find () =
  let h = mk () in
  let e = insert h "hello.txt" in
  Alcotest.(check (option int)) "found" (Some e) (find h "hello.txt");
  Alcotest.(check (option int)) "absent" None (find h "other.txt")

let test_name_readback () =
  let h = mk () in
  let e = insert h "some_name.c" in
  Alcotest.(check string) "name" "some_name.c" (Fentry.name h.region e);
  Alcotest.(check bool) "equals" true
    (Fentry.name_equals h.region e "some_name.c");
  Alcotest.(check bool) "differs" false
    (Fentry.name_equals h.region e "some_name.d")

let test_long_names_spill () =
  let h = mk () in
  let name = String.make 120 'n' in
  let e = insert h name in
  Alcotest.(check string) "long name" name (Fentry.name h.region e);
  Alcotest.(check bool) "spill recorded" true (Fentry.spill h.region e <> None);
  Alcotest.(check (option int)) "findable" (Some e) (find h name)

let test_chain_grows_geometrically () =
  let h = mk () in
  (* overfill: first block holds 64x8 = 512 slots *)
  for i = 0 to 1999 do
    ignore (insert h (Printf.sprintf "file%04d" i))
  done;
  let rows = ref [] in
  Dirblock.iter_chain h.region h.head (fun _ b ->
      rows := Dirblock.rows h.region b :: !rows);
  let rows = List.rev !rows in
  Alcotest.(check bool) "chain short" true (List.length rows <= 4);
  (* rows double along the chain *)
  let rec check_doubling = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check int) "doubles" (2 * a) b;
        check_doubling rest
    | _ -> ()
  in
  check_doubling rows;
  Alcotest.(check int) "all present" 2000
    (Dirblock.count_entries h.region h.head);
  (* every file is findable *)
  for i = 0 to 1999 do
    Alcotest.(check bool)
      (Printf.sprintf "find file%04d" i)
      true
      (find h (Printf.sprintf "file%04d" i) <> None)
  done

let test_remove_and_reuse () =
  let h = mk () in
  for i = 0 to 99 do
    ignore (insert h (Printf.sprintf "f%d" i))
  done;
  Alcotest.(check bool) "removed" true (remove h "f42");
  Alcotest.(check (option int)) "gone" None (find h "f42");
  Alcotest.(check int) "count" 99 (Dirblock.count_entries h.region h.head);
  (* the freed slot is reused *)
  let len_before = Dirblock.chain_length h.region h.head in
  ignore (insert h "f42bis");
  Alcotest.(check int) "no growth needed" len_before
    (Dirblock.chain_length h.region h.head)

let test_busy_flags () =
  let h = mk () in
  let row = Dirblock.lock_row_of_name "x" in
  Alcotest.(check bool) "clear" false (Dirblock.busy h.region h.head row);
  Dirblock.set_busy h.region h.head row true;
  Alcotest.(check bool) "set" true (Dirblock.busy h.region h.head row);
  Dirblock.set_busy h.region h.head row false;
  Alcotest.(check bool) "cleared" false (Dirblock.busy h.region h.head row)

let test_log_roundtrip () =
  let h = mk () in
  Alcotest.(check int) "legacy nslots" 1 (Dirblock.Log.nslots h.region h.head);
  Alcotest.(check bool) "idle" false
    (Dirblock.Log.pending h.region h.head ~slot:0);
  Dirblock.Log.write h.region h.head ~slot:0 ~epoch:0 ~src:111 ~dst:222
    ~fentry:333 ~new_entry:444;
  Alcotest.(check bool) "pending" true
    (Dirblock.Log.pending h.region h.head ~slot:0);
  let s, d, f, n = Dirblock.Log.read h.region h.head ~slot:0 in
  Alcotest.(check (list int)) "payload" [ 111; 222; 333; 444 ] [ s; d; f; n ];
  Dirblock.Log.clear h.region h.head ~slot:0;
  Alcotest.(check bool) "cleared" false
    (Dirblock.Log.pending h.region h.head ~slot:0)

(* The log ring: slots are independent, epochs round-trip, and
   [pending_slots] reports exactly the pending subset. *)
let test_log_ring_roundtrip () =
  let ring = 4 in
  let h = mk ~ring () in
  Alcotest.(check int) "ring size" ring (Dirblock.ring h.region h.head);
  Alcotest.(check int) "nslots" ring (Dirblock.Log.nslots h.region h.head);
  Alcotest.(check bool) "fresh ring empty" false
    (Dirblock.Log.any_pending h.region h.head);
  (* write slots 1 and 3, leave 0 and 2 clear *)
  Dirblock.Log.write h.region h.head ~slot:1 ~epoch:7 ~src:11 ~dst:22
    ~fentry:33 ~new_entry:44;
  Dirblock.Log.write h.region h.head ~slot:3 ~epoch:5 ~src:55 ~dst:66
    ~fentry:77 ~new_entry:88;
  Alcotest.(check bool) "some pending" true
    (Dirblock.Log.any_pending h.region h.head);
  Alcotest.(check bool) "slot 0 clear" false
    (Dirblock.Log.pending h.region h.head ~slot:0);
  Alcotest.(check (list (pair int int)))
    "pending slots with epochs"
    [ (1, 7); (3, 5) ]
    (Dirblock.Log.pending_slots h.region h.head);
  let s, d, f, n = Dirblock.Log.read h.region h.head ~slot:3 in
  Alcotest.(check (list int)) "slot 3 payload" [ 55; 66; 77; 88 ]
    [ s; d; f; n ];
  Alcotest.(check int) "slot 3 epoch" 5
    (Dirblock.Log.epoch h.region h.head ~slot:3);
  (* clearing one slot leaves the other *)
  Dirblock.Log.clear h.region h.head ~slot:1;
  Alcotest.(check (list (pair int int)))
    "slot 3 survives"
    [ (3, 5) ]
    (Dirblock.Log.pending_slots h.region h.head);
  Dirblock.Log.clear h.region h.head ~slot:3;
  Alcotest.(check bool) "ring empty again" false
    (Dirblock.Log.any_pending h.region h.head)

(* A ring block still behaves as a map (slot area shifted by the ring). *)
let test_ring_block_map () =
  let h = mk ~ring:8 () in
  let e = insert h "hello.txt" in
  Alcotest.(check (option int)) "found" (Some e) (find h "hello.txt");
  Alcotest.(check (option int)) "absent" None (find h "other.txt");
  Alcotest.(check bool) "removed" true (remove h "hello.txt");
  Alcotest.(check int) "count" 0 (Dirblock.count_entries h.region h.head);
  Alcotest.(check int) "size accounts for ring"
    (Dirblock.size_for_rows ~ring:8 Dirblock.first_rows)
    (Dirblock.size_of h.region h.head)

let test_block_empty () =
  let h = mk () in
  Alcotest.(check bool) "fresh empty" true (Dirblock.block_empty h.region h.head);
  ignore (insert h "f");
  Alcotest.(check bool) "not empty" false
    (Dirblock.block_empty h.region h.head);
  ignore (remove h "f");
  Alcotest.(check bool) "empty again" true
    (Dirblock.block_empty h.region h.head)

let test_hash_deterministic () =
  Alcotest.(check int) "stable hash" (Name_hash.hash "linux-5.6.14")
    (Name_hash.hash "linux-5.6.14");
  Alcotest.(check bool) "row in range" true
    (let r = Name_hash.row "x" ~rows:64 in
     r >= 0 && r < 64)

(* Model-based: the chain behaves as a string-keyed map. *)
let prop_map_semantics =
  let op_gen =
    QCheck.Gen.(
      pair (int_range 0 2) (int_range 0 40)
      |> map (fun (op, k) -> (op, Printf.sprintf "key%02d" k)))
  in
  QCheck.Test.make ~name:"dirblock behaves as a map" ~count:80
    (QCheck.make QCheck.Gen.(list_size (int_range 1 200) op_gen))
    (fun ops ->
      let h = mk () in
      let model = Hashtbl.create 64 in
      List.for_all
        (fun (op, key) ->
          match op with
          | 0 ->
              (* insert if absent *)
              if not (Hashtbl.mem model key) then begin
                let e = insert h key in
                Hashtbl.replace model key e
              end;
              true
          | 1 ->
              let removed = remove h key in
              let expected = Hashtbl.mem model key in
              Hashtbl.remove model key;
              removed = expected
          | _ ->
              let found = find h key in
              let expected = Hashtbl.find_opt model key in
              found = expected)
        ops
      && Dirblock.count_entries h.region h.head = Hashtbl.length model)

let () =
  Alcotest.run "dirblock"
    [
      ( "map",
        [
          Alcotest.test_case "insert/find" `Quick test_insert_find;
          Alcotest.test_case "name readback" `Quick test_name_readback;
          Alcotest.test_case "long names" `Quick test_long_names_spill;
          Alcotest.test_case "geometric growth" `Quick
            test_chain_grows_geometrically;
          Alcotest.test_case "remove and reuse" `Quick test_remove_and_reuse;
          Alcotest.test_case "hash deterministic" `Quick test_hash_deterministic;
          QCheck_alcotest.to_alcotest prop_map_semantics;
        ] );
      ( "flags",
        [
          Alcotest.test_case "busy flags" `Quick test_busy_flags;
          Alcotest.test_case "log roundtrip" `Quick test_log_roundtrip;
          Alcotest.test_case "log ring roundtrip" `Quick test_log_ring_roundtrip;
          Alcotest.test_case "ring block as map" `Quick test_ring_block_map;
          Alcotest.test_case "block empty" `Quick test_block_empty;
        ] );
    ]
