(* Tests for the virtual-time simulation substrate. *)

open Simurgh_sim

let check_float = Alcotest.(check (float 1e-6))

(* --- rng ---------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_streams_differ () =
  let base = Rng.create 42L in
  let a = Rng.split base 0 and b = Rng.split base 1 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "streams diverge" true (!same < 5)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create (Int64.of_int seed) in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int rng bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float stays in [0, 1)" ~count:200
    QCheck.small_int (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.float rng in
        if v < 0.0 || v >= 1.0 then ok := false
      done;
      !ok)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 7L in
  let a = Array.init 100 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted

(* --- zipf --------------------------------------------------------------- *)

let test_zipf_skew () =
  let z = Zipf.create 10000 in
  let rng = Rng.create 3L in
  let top = ref 0 and n = 20000 in
  for _ = 1 to n do
    if Zipf.sample z rng < 100 then incr top
  done;
  (* with theta=0.99 the top-1% of items receive far more than 1% *)
  Alcotest.(check bool) "top items hot"
    true
    (float_of_int !top /. float_of_int n > 0.3)

let prop_zipf_in_range =
  QCheck.Test.make ~name:"Zipf samples in [0, items)" ~count:100
    QCheck.(int_range 1 5000)
    (fun items ->
      let z = Zipf.create items in
      let rng = Rng.create 11L in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Zipf.sample z rng in
        let s = Zipf.sample_scrambled z rng in
        let l = Zipf.sample_latest z rng in
        if v < 0 || v >= items || s < 0 || s >= items || l < 0 || l >= items
        then ok := false
      done;
      !ok)

(* The empirical frequency of the hottest rank must match the analytic
   mass [Zipf.rank_mass] across seeds and skews — this pins the sampler
   to the distribution BENCH_data claims to offer. *)
let prop_zipf_rank_mass =
  QCheck.Test.make ~name:"Zipf rank-0 frequency matches rank_mass" ~count:25
    QCheck.(pair small_nat (float_range 0.6 1.2))
    (fun (seed, theta) ->
      let z = Zipf.create ~theta 200 in
      let rng = Rng.create (Int64.of_int (seed + 1)) in
      let n = 20_000 in
      let hits = ref 0 in
      for _ = 1 to n do
        if Zipf.sample z rng = 0 then incr hits
      done;
      let expected = Zipf.rank_mass z 0 in
      let got = float_of_int !hits /. float_of_int n in
      abs_float (got -. expected) < 0.03 +. (0.15 *. expected))

let test_zipf_rank_order () =
  let z = Zipf.create 1000 in
  let rng = Rng.create 5L in
  let counts = Array.make 1000 0 in
  for _ = 1 to 50000 do
    let v = Zipf.sample z rng in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true
    (counts.(0) > counts.(10) && counts.(10) > counts.(500))

(* --- resource (leaky-bucket server) -------------------------------------- *)

let test_resource_idle_no_wait () =
  let r = Resource.create "x" in
  (* well-spaced requests see only their own duration *)
  check_float "t=0" 10.0 (Resource.serve r ~now:0.0 ~dur:10.0);
  check_float "t=100" 110.0 (Resource.serve r ~now:100.0 ~dur:10.0);
  check_float "t=200" 210.0 (Resource.serve r ~now:200.0 ~dur:10.0)

let test_resource_saturation () =
  let r = Resource.create "x" in
  (* back-to-back requests at the same instant queue up *)
  check_float "1st" 10.0 (Resource.serve r ~now:0.0 ~dur:10.0);
  check_float "2nd" 20.0 (Resource.serve r ~now:0.0 ~dur:10.0);
  check_float "3rd" 30.0 (Resource.serve r ~now:0.0 ~dur:10.0)

let test_resource_out_of_order_bounded () =
  let r = Resource.create "x" in
  ignore (Resource.serve r ~now:1000.0 ~dur:5.0);
  (* an earlier-timestamped request queues behind backlog (5), not behind
     the other thread's wall-clock position (1000) *)
  let done_at = Resource.serve r ~now:10.0 ~dur:5.0 in
  Alcotest.(check bool) "no timestamp jump" true (done_at < 100.0)

let test_resource_drain () =
  let r = Resource.create "x" in
  ignore (Resource.serve r ~now:0.0 ~dur:100.0);
  (* after enough idle time the debt is gone *)
  check_float "drained" 1010.0 (Resource.serve r ~now:1000.0 ~dur:10.0)

let resource_trace =
  (* (gap to next arrival, request duration) pairs *)
  QCheck.(
    list_of_size
      Gen.(int_range 1 30)
      (pair (float_bound_exclusive 1000.0) (float_bound_exclusive 500.0)))

let prop_resource_pending_nonneg_drains =
  QCheck.Test.make
    ~name:"Resource.pending non-negative and monotone-draining" ~count:300
    resource_trace (fun ops ->
      let r = Resource.create "p" in
      let now = ref 0.0 in
      let ok = ref true in
      List.iter
        (fun (gap, dur) ->
          now := !now +. gap;
          ignore (Resource.serve r ~now:!now ~dur);
          let p0 = Resource.pending r ~now:!now in
          if p0 < 0.0 then ok := false;
          (* between arrivals the backlog only drains, never grows *)
          let p1 = Resource.pending r ~now:(!now +. 1.0) in
          let p2 = Resource.pending r ~now:(!now +. 50.0) in
          if p1 > p0 +. 1e-9 || p2 > p1 +. 1e-9 || p2 < 0.0 then ok := false)
        ops;
      !ok)

let prop_resource_serve_push_agree =
  QCheck.Test.make ~name:"serve and push_work agree on queued debt"
    ~count:300 resource_trace (fun ops ->
      let a = Resource.create "a" and b = Resource.create "b" in
      let now = ref 0.0 in
      let ok = ref true in
      List.iter
        (fun (gap, dur) ->
          now := !now +. gap;
          let done_at = Resource.serve a ~now:!now ~dur in
          Resource.push_work b ~now:!now ~dur;
          let pa = Resource.pending a ~now:!now
          and pb = Resource.pending b ~now:!now in
          (* the waiting and non-waiting paths must leave the same debt,
             and serve's completion time is exactly now + that debt *)
          if abs_float (pa -. pb) > 1e-6 then ok := false;
          if abs_float (done_at -. (!now +. pa)) > 1e-6 then ok := false)
        ops;
      !ok)

(* --- locks ---------------------------------------------------------------- *)

let mk_ctx () =
  let m = Machine.create () in
  let thr = Sthread.create 0 in
  (m, thr, Machine.ctx m thr)

let test_spin_serializes () =
  let m = Machine.create () in
  let t0 = Sthread.create 0 and t1 = Sthread.create 1 in
  let c0 = Machine.ctx m t0 and c1 = Machine.ctx m t1 in
  let l = Vlock.Spin.create () in
  Vlock.Spin.acquire c0 l;
  Machine.cpu c0 1000.0;
  Vlock.Spin.release c0 l;
  (* t1 at time 0 must wait until t0's release *)
  Vlock.Spin.acquire c1 l;
  Alcotest.(check bool) "waited" true (t1.Sthread.now >= 1000.0)

let test_rw_readers_overlap () =
  let m = Machine.create () in
  let t0 = Sthread.create 0 and t1 = Sthread.create 1 in
  let c0 = Machine.ctx m t0 and c1 = Machine.ctx m t1 in
  let l = Vlock.Rw.create ~striped:true () in
  let tok0 = Vlock.Rw.read_acquire c0 l in
  Machine.cpu c0 1000.0;
  Vlock.Rw.read_release c0 l tok0;
  let _tok1 = Vlock.Rw.read_acquire c1 l in
  (* readers do not wait for each other *)
  Alcotest.(check bool) "no reader wait" true (t1.Sthread.now < 500.0)

let test_rw_writer_excludes () =
  let m = Machine.create () in
  let t0 = Sthread.create 0 and t1 = Sthread.create 1 in
  let c0 = Machine.ctx m t0 and c1 = Machine.ctx m t1 in
  let l = Vlock.Rw.create () in
  let tok0 = Vlock.Rw.read_acquire c0 l in
  Machine.cpu c0 1000.0;
  Vlock.Rw.read_release c0 l tok0;
  let _ = Vlock.Rw.write_acquire c1 l in
  (* the writer queues behind the reader's (parallelism-scaled) hold *)
  Alcotest.(check bool) "writer waits for reader" true
    (t1.Sthread.now >= 1000.0 /. 4.0)

(* Posted ntstores: inside with_posted_writes the writer pays only its
   local store latency, yet the device still consumes the bandwidth —
   later FIFO writers queue behind the posted work. *)
let test_posted_writes () =
  let m = Machine.create () in
  let t0 = Sthread.create 0 and t1 = Sthread.create 1 in
  let c0 = Machine.ctx m t0 and c1 = Machine.ctx m t1 in
  let cm = Machine.cm c0 in
  let lines = 64 in
  Machine.with_posted_writes c0 (fun () ->
      Alcotest.(check bool) "flag set" true t0.Sthread.posted_writes;
      Machine.nvmm_write_lines c0 lines);
  Alcotest.(check bool) "flag restored" false t0.Sthread.posted_writes;
  (* local latency only: lines * write_latency / mlp(4) *)
  check_float "local store latency"
    (float_of_int lines *. cm.Cost_model.nvmm_write_latency /. 4.0)
    t0.Sthread.now;
  (* work-conserving: the next FIFO write queues behind the posted debt *)
  let posted_dur =
    float_of_int (lines * cm.Cost_model.cacheline) /. cm.Cost_model.nvmm_write_bw
  in
  Machine.nvmm_write_lines c1 1;
  Alcotest.(check bool) "device debt preserved" true
    (t1.Sthread.now >= posted_dur)

exception Poison

(* Regression: with_lock used to leak the lock when the body raised (a
   poisoned line surfacing as Media_error inside a critical section).
   The exception must propagate, the lock must come back released, and
   the aborted acquisition must still balance its contention counters. *)
let test_spin_with_lock_releases_on_raise () =
  let m = Machine.create () in
  let t0 = Sthread.create 0 and t1 = Sthread.create 1 in
  let c0 = Machine.ctx m t0 and c1 = Machine.ctx m t1 in
  let l = Vlock.Spin.create ~site:"poisoned" () in
  (try
     Vlock.Spin.with_lock c0 l (fun () ->
         Machine.cpu c0 500.0;
         raise Poison)
   with Poison -> ());
  Alcotest.(check bool) "released after raise" false (Vlock.Spin.locked l);
  let run = Machine.obs m in
  let stats =
    List.assoc "poisoned"
      (Simurgh_obs.Contention.to_list run.Simurgh_obs.Run.contention)
  in
  Alcotest.(check int) "acquisition recorded" 1
    stats.Simurgh_obs.Contention.acquisitions;
  Alcotest.(check bool) "hold recorded" true
    (stats.Simurgh_obs.Contention.hold_cycles > 0.0);
  (* another thread can still take the lock *)
  Vlock.Spin.with_lock c1 l (fun () -> Machine.cpu c1 10.0);
  Alcotest.(check bool) "reacquired and released" false (Vlock.Spin.locked l)

let test_rw_with_write_releases_on_raise () =
  let m = Machine.create () in
  let t0 = Sthread.create 0 and t1 = Sthread.create 1 in
  let c0 = Machine.ctx m t0 and c1 = Machine.ctx m t1 in
  let l = Vlock.Rw.create () in
  (try Vlock.Rw.with_write c0 l (fun () -> raise Poison) with Poison -> ());
  (* the writer slot is free again: a reader enters without blocking
     (a leaked writer would trip wait_while's no-scheduler failure) *)
  Vlock.Rw.with_read c1 l (fun () -> Machine.cpu c1 10.0)

(* Regression: Rw kept a single shared [entered_at] field, so with two
   overlapping readers the second acquire overwrote the first reader's
   entry time and its release computed a truncated (or negative,
   silently dropped) hold.  Tokens are per-acquisition now. *)
let test_rw_overlapping_readers_holds () =
  let m = Machine.create () in
  let t0 = Sthread.create 0 and t1 = Sthread.create 1 in
  let c0 = Machine.ctx m t0 and c1 = Machine.ctx m t1 in
  let l = Vlock.Rw.create ~striped:true () in
  let tok0 = Vlock.Rw.read_acquire c0 l in
  (* the second reader enters much later in virtual time while the
     first still holds — this is where the shared field was clobbered *)
  Machine.cpu c1 3000.0;
  let tok1 = Vlock.Rw.read_acquire c1 l in
  Machine.cpu c0 4000.0;
  Vlock.Rw.read_release c0 l tok0;
  Vlock.Rw.read_release c1 l tok1;
  Alcotest.(check bool) "tokens are per-acquisition" true (tok0 < tok1);
  (* reader 0's full ~4000-cycle hold must reach the reader backlog
     (scaled by read_parallelism = 4); the shared-field bug accounted
     only now - tok1 ~ 1000 of it *)
  Alcotest.(check bool) "full hold accounted" true
    (Resource.busy_cycles l.Vlock.Rw.rd >= 4000.0 /. 4.0)

(* --- engine ---------------------------------------------------------------- *)

let test_engine_parallel_speedup () =
  let tput threads =
    let m = Machine.create () in
    let o =
      Engine.run_ops m ~threads ~ops_per_thread:100 (fun ctx _ ->
          Machine.cpu ctx 1000.0)
    in
    Engine.throughput m o
  in
  let t1 = tput 1 and t4 = tput 4 in
  Alcotest.(check bool) "4 threads ~4x" true
    (t4 /. t1 > 3.9 && t4 /. t1 < 4.1)

let test_engine_lock_serialization () =
  let m = Machine.create () in
  let l = Vlock.Spin.create () in
  let o =
    Engine.run_ops m ~threads:4 ~ops_per_thread:100 (fun ctx _ ->
        Vlock.Spin.acquire ctx l;
        Machine.cpu ctx 1000.0;
        Vlock.Spin.release ctx l)
  in
  (* fully serialized: makespan ~ total work (the backlog model lets the
     final holders finish without draining their own hold) *)
  Alcotest.(check bool) "serialized" true
    (o.Engine.makespan_cycles >= 0.9 *. 400.0 *. 1000.0)

let test_engine_causality () =
  (* the minimum-time thread always steps first, so completion order of a
     contended lock is FIFO in virtual time *)
  let m = Machine.create () in
  let l = Vlock.Spin.create () in
  let order = ref [] in
  let o =
    Engine.run_ops m ~threads:3 ~ops_per_thread:5 (fun ctx i ->
        Vlock.Spin.acquire ctx l;
        order := (ctx.Machine.thr.Sthread.tid, i) :: !order;
        Machine.cpu ctx 100.0;
        Vlock.Spin.release ctx l)
  in
  ignore o;
  (* each thread's own ops appear in order *)
  let seen = Hashtbl.create 3 in
  List.iter
    (fun (tid, i) ->
      match Hashtbl.find_opt seen tid with
      | Some prev -> Alcotest.(check bool) "per-thread order" true (i < prev)
      | None -> Hashtbl.replace seen tid i)
    !order

(* Ties used to be hard-wired to the lowest index, so equal-cost
   (zero-charge) operations ran to completion thread by thread.  The
   fair policy must round-robin the tied threads instead; legacy keeps
   the historical order bit-for-bit. *)
let test_engine_tie_break_policies () =
  let order_under schedule =
    let m = Machine.create () in
    let order = ref [] in
    ignore
      (Engine.run_ops m ?schedule ~threads:3 ~ops_per_thread:3 (fun ctx _ ->
           (* no charge: every thread stays tied at time 0 *)
           order := ctx.Machine.thr.Sthread.tid :: !order));
    List.rev !order
  in
  Alcotest.(check (list int))
    "legacy runs tied threads to completion by index"
    [ 0; 0; 0; 1; 1; 1; 2; 2; 2 ] (order_under None);
  Alcotest.(check (list int))
    "fair rotates tied threads"
    [ 0; 1; 2; 0; 1; 2; 0; 1; 2 ]
    (order_under (Some (Schedule.fair ())))

let test_machine_charges_advance_clock () =
  let _, thr, ctx = mk_ctx () in
  Machine.cpu ctx 100.0;
  Machine.nvmm_read ctx 4096;
  Machine.nvmm_write ctx 4096;
  Machine.nvmm_read_lines ctx 4;
  Machine.nvmm_meta_read_lines ctx 4;
  Machine.nvmm_write_lines ctx 4;
  Machine.dram_copy ctx 4096;
  Machine.memcpy_cpu ctx 4096;
  Machine.atomic ctx ~contended:true;
  Machine.fence ctx;
  Alcotest.(check bool) "clock moved" true (thr.Sthread.now > 5000.0)

(* Virtual-time oracle for the shared drain/queue sequence behind both
   Resource.serve and Resource.push_work: draining is clamped at zero,
   out-of-order arrivals queue behind the backlog without draining, and
   push_work is serve minus the completion wait -- identical debt and
   busy accounting. *)
let test_resource_drain_oracle () =
  let r = Resource.create "oracle" in
  check_float "idle serve pays own duration" 10.0
    (Resource.serve r ~now:0.0 ~dur:10.0);
  (* 5 cycles elapsed drain 5 of the 10 queued; 5 + (5 + 10) = 20 *)
  check_float "partial drain then queue" 20.0
    (Resource.serve r ~now:5.0 ~dur:10.0);
  (* out-of-order arrival (now < last): no drain, queue behind debt *)
  check_float "out-of-order queues behind backlog" 20.0
    (Resource.serve r ~now:3.0 ~dur:2.0);
  (* long idle gap: debt drains to zero, never negative *)
  Resource.push_work r ~now:30.0 ~dur:4.0;
  check_float "pending after push" 4.0 (Resource.pending r ~now:30.0);
  check_float "pending drains over time" 2.0 (Resource.pending r ~now:32.0);
  (* a zero-duration probe completes after the remaining backlog *)
  check_float "probe sees push_work backlog" 34.0
    (Resource.serve r ~now:32.0 ~dur:0.0);
  (* busy counts service cycles of both serve and push_work *)
  check_float "busy cycles" 26.0 (Resource.busy_cycles r)

let test_cost_model_consistency () =
  let cm = Cost_model.default in
  check_float "surcharge" 46.0 (Cost_model.protection_surcharge cm);
  check_float "roundtrip" 1.0
    (Cost_model.seconds cm (Cost_model.cycles_of_seconds cm 1.0))

let test_stats () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean a);
  Alcotest.(check bool) "stddev" true (abs_float (Stats.stddev a -. 1.29) < 0.01);
  check_float "p0" 1.0 (Stats.percentile a 0.0);
  check_float "p100" 4.0 (Stats.percentile a 100.0);
  let lo, hi = Stats.min_max a in
  check_float "min" 1.0 lo;
  check_float "max" 4.0 hi

(* The old percentile truncated the fractional rank: p50 of [1;2;3;4]
   came back as 2.0 and p90 as 3.0.  The interpolating version must
   return the standard linear-interpolation values. *)
let test_stats_percentile_interpolates () =
  let a = [| 4.0; 2.0; 1.0; 3.0 |] in
  (* unsorted on purpose *)
  check_float "p50" 2.5 (Stats.percentile a 50.0);
  check_float "p25" 1.75 (Stats.percentile a 25.0);
  check_float "p90" 3.7 (Stats.percentile a 90.0);
  check_float "p75" 3.25 (Stats.percentile a 75.0);
  check_float "single" 7.0 (Stats.percentile [| 7.0 |] 50.0);
  (* Float.compare, not polymorphic compare: nan-free ordering of
     negative values must still sort correctly *)
  check_float "negatives p50" (-2.5)
    (Stats.percentile [| -1.0; -4.0; -2.0; -3.0 |] 50.0)

let prop_stats_percentile_bounds_monotone =
  QCheck.Test.make ~name:"Stats.percentile bounded and monotone" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.0))
    (fun l ->
      let a = Array.of_list l in
      let lo, hi = Stats.min_max a in
      let prev = ref neg_infinity in
      let ok = ref true in
      List.iter
        (fun p ->
          let v = Stats.percentile a p in
          if v < lo -. 1e-9 || v > hi +. 1e-9 then ok := false;
          if v < !prev -. 1e-9 then ok := false;
          prev := v)
        [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ];
      !ok)

(* Regression: lock-wait accounting used to live in module-level globals
   inside Vlock, so a second engine run reported the first run's waits on
   top of its own.  Per-machine obs runs must make two identical runs
   report identical (and nonzero) totals. *)
let test_contention_scoped_per_run () =
  let run_once () =
    let m = Machine.create () in
    let l = Vlock.Spin.create ~site:"test-site" () in
    let o =
      Engine.run_ops m ~threads:4 ~ops_per_thread:50 (fun ctx _ ->
          Vlock.Spin.acquire ctx l;
          Machine.cpu ctx 500.0;
          Vlock.Spin.release ctx l)
    in
    ignore o;
    let run = Machine.obs m in
    Simurgh_obs.Contention.total_wait run.Simurgh_obs.Run.contention
  in
  let w1 = run_once () in
  let w2 = run_once () in
  Alcotest.(check bool) "contended run waits" true (w1 > 0.0);
  check_float "second run identical, not cumulative" w1 w2

let test_contention_reset_on_machine_reset () =
  let m = Machine.create () in
  let l = Vlock.Spin.create ~site:"reset-site" () in
  ignore
    (Engine.run_ops m ~threads:4 ~ops_per_thread:20 (fun ctx _ ->
         Vlock.Spin.acquire ctx l;
         Machine.cpu ctx 200.0;
         Vlock.Spin.release ctx l));
  let run = Machine.obs m in
  Alcotest.(check bool) "waits recorded" true
    (Simurgh_obs.Contention.total_wait run.Simurgh_obs.Run.contention > 0.0);
  Machine.reset m;
  check_float "reset clears contention" 0.0
    (Simurgh_obs.Contention.total_wait run.Simurgh_obs.Run.contention)

let () =
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "streams differ" `Quick test_rng_streams_differ;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          QCheck_alcotest.to_alcotest prop_rng_int_bounds;
          QCheck_alcotest.to_alcotest prop_rng_float_bounds;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "rank order" `Quick test_zipf_rank_order;
          QCheck_alcotest.to_alcotest prop_zipf_in_range;
          QCheck_alcotest.to_alcotest prop_zipf_rank_mass;
        ] );
      ( "resource",
        [
          Alcotest.test_case "idle no wait" `Quick test_resource_idle_no_wait;
          Alcotest.test_case "saturation queues" `Quick test_resource_saturation;
          Alcotest.test_case "out-of-order bounded" `Quick
            test_resource_out_of_order_bounded;
          Alcotest.test_case "debt drains" `Quick test_resource_drain;
          QCheck_alcotest.to_alcotest prop_resource_pending_nonneg_drains;
          QCheck_alcotest.to_alcotest prop_resource_serve_push_agree;
        ] );
      ( "locks",
        [
          Alcotest.test_case "spin serializes" `Quick test_spin_serializes;
          Alcotest.test_case "posted writes" `Quick test_posted_writes;
          Alcotest.test_case "readers overlap" `Quick test_rw_readers_overlap;
          Alcotest.test_case "writer excludes" `Quick test_rw_writer_excludes;
          Alcotest.test_case "spin releases on raise" `Quick
            test_spin_with_lock_releases_on_raise;
          Alcotest.test_case "rw releases on raise" `Quick
            test_rw_with_write_releases_on_raise;
          Alcotest.test_case "overlapping reader holds" `Quick
            test_rw_overlapping_readers_holds;
        ] );
      ( "engine",
        [
          Alcotest.test_case "parallel speedup" `Quick
            test_engine_parallel_speedup;
          Alcotest.test_case "tie-break policies" `Quick
            test_engine_tie_break_policies;
          Alcotest.test_case "lock serialization" `Quick
            test_engine_lock_serialization;
          Alcotest.test_case "causality" `Quick test_engine_causality;
          Alcotest.test_case "charges advance clock" `Quick
            test_machine_charges_advance_clock;
          Alcotest.test_case "cost model" `Quick test_cost_model_consistency;
          Alcotest.test_case "resource drain oracle" `Quick
            test_resource_drain_oracle;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "stats",
        [
          Alcotest.test_case "percentile interpolates" `Quick
            test_stats_percentile_interpolates;
          QCheck_alcotest.to_alcotest prop_stats_percentile_bounds_monotone;
        ] );
      ( "obs-scoping",
        [
          Alcotest.test_case "contention per run" `Quick
            test_contention_scoped_per_run;
          Alcotest.test_case "contention reset" `Quick
            test_contention_reset_on_machine_reset;
        ] );
    ]
