(* End-to-end security tests: the Simurgh region is only accessible
   through protected functions (Section 3.2), per-user permissions are
   enforced from the fentry owner word on secure media, and multi-tenant
   adversaries (illegal entries, crashes inside protected bodies, quota
   pressure on a shared directory) are contained. *)

open Simurgh_fs_common
module Fs = Simurgh_core.Fs
module Secure = Simurgh_core.Secure
module Explore = Simurgh_core.Explore
module Check = Simurgh_core.Check
module Region = Simurgh_nvmm.Region
open Simurgh_hw

let mk () =
  let region = Simurgh_nvmm.Region.create (32 * 1024 * 1024) in
  let fs = Fs.mkfs ~euid:0 region in
  (region, fs, Secure.bootstrap ~euid:0 ~egid:0 fs)

let test_ops_through_protected_stubs () =
  let _, _, s = mk () in
  Secure.mkdir s "/home";
  Secure.create s "/home/file";
  let fd = Secure.openf s Types.rdwr "/home/file" in
  Alcotest.(check int) "append" 5 (Secure.append s fd (Bytes.of_string "hello"));
  Alcotest.(check string) "read back" "hello"
    (Bytes.to_string (Secure.pread s fd ~pos:0 ~len:5));
  Secure.close s fd;
  Alcotest.(check int) "stat size" 5 (Secure.stat s "/home/file").Types.size;
  Secure.rename s "/home/file" "/home/renamed";
  Alcotest.(check (list string)) "readdir" [ "renamed" ]
    (Secure.readdir s "/home");
  Secure.unlink s "/home/renamed";
  Secure.rmdir s "/home"

let test_user_mode_region_access_faults () =
  let region, _, s = mk () in
  ignore s;
  (* direct load/store of FS bytes from user code must fault *)
  (match Simurgh_nvmm.Region.read_u8 region 0 with
  | _ -> Alcotest.fail "user-mode read did not fault"
  | exception Fault.Fault (Fault.Kernel_page_access { write = false; _ }) -> ());
  match Simurgh_nvmm.Region.write_u8 region 0 0xff with
  | _ -> Alcotest.fail "user-mode write did not fault"
  | exception Fault.Fault (Fault.Kernel_page_access { write = true; _ }) -> ()

let test_region_accessible_inside_protected () =
  (* the stubs themselves read/write the region constantly; if the guard
     misfired inside jmpp the previous test's ops would have failed.
     Check explicitly via a custom protected probe. *)
  let region, fs, s = mk () in
  ignore fs;
  let cpu = Secure.cpu s in
  (* enter kernel mode through an existing stub path: stat reads the
     region while in kernel mode *)
  Secure.create s "/probe";
  Alcotest.(check bool) "region guarded again after pret" true
    (match Simurgh_nvmm.Region.read_u8 region 0 with
    | _ -> false
    | exception Fault.Fault _ -> true);
  Alcotest.(check bool) "cpu back in user mode" true
    (Cpu.mode cpu = Privilege.User)

let test_jmpp_raw_attacks_fault () =
  let _, _, s = mk () in
  let univ = Secure.universe s in
  let addr = Protected.address_of univ "simurgh_create" in
  let page = Page_table.page_of_addr addr in
  (* jump into the middle of a protected function *)
  (match Protected.jmpp_raw univ ((page * Page_table.page_size) + 0x123) with
  | _ -> Alcotest.fail "mid-function jmpp did not fault"
  | exception Fault.Fault (Fault.Jmpp_bad_entry_offset _) -> ());
  (* jump to a non-protected page *)
  match Protected.jmpp_raw univ (0x500 * Page_table.page_size) with
  | _ -> Alcotest.fail "unprotected jmpp did not fault"
  | exception Fault.Fault (Fault.Jmpp_target_not_protected _) -> ()

let test_ep_cannot_be_set_from_user () =
  let _, _, s = mk () in
  let cpu = Secure.cpu s in
  Page_table.map cpu.Cpu.page_table ~page:0x999 ~kernel:false ~writable:true;
  match Page_table.set_ep cpu.Cpu.page_table ~mode:(Cpu.mode cpu) ~page:0x999 with
  | _ -> Alcotest.fail "ep set from user mode"
  | exception Fault.Fault (Fault.Ep_set_from_user _) -> ()

let test_protected_mapping_cannot_be_remapped () =
  let _, _, s = mk () in
  let cpu = Secure.cpu s in
  let page = List.hd (Protected.pages (Secure.universe s)) in
  match Page_table.remap cpu.Cpu.page_table ~page ~kernel:false ~writable:true with
  | _ -> Alcotest.fail "protected mapping replaced"
  | exception Fault.Fault (Fault.Write_to_protected_mapping _) -> ()

let test_permission_checks_still_apply () =
  (* protected functions enforce the permission bits with the creds
     captured at bootstrap *)
  let region = Simurgh_nvmm.Region.create (32 * 1024 * 1024) in
  let fs = Fs.mkfs ~euid:0 region in
  Fs.mkdir fs ~perm:0o700 "/rootonly";
  let s = Secure.bootstrap ~euid:1000 ~egid:1000 fs in
  match Secure.create s "/rootonly/f" with
  | _ -> Alcotest.fail "EACCES expected"
  | exception Errno.Err (EACCES, _) -> ()

let test_errors_propagate_through_jmpp () =
  let _, _, s = mk () in
  (match Secure.stat s "/missing" with
  | _ -> Alcotest.fail "ENOENT expected"
  | exception Errno.Err (ENOENT, _) -> ());
  (* the CPU must be back in user mode after the exception *)
  Alcotest.(check bool) "mode restored" true
    (Cpu.mode (Secure.cpu s) = Privilege.User)

(* --- adversarial: the full ep-bit fault matrix ------------------------- *)

(* Every illegal way into the protected universe must raise the precise
   modeled fault, leave the CPU in user mode with no stranded nesting
   level, and leave the media bytes untouched. *)
let test_fault_matrix_media_unchanged () =
  let region, _, s = mk () in
  let univ = Secure.universe s in
  let cpu = Secure.cpu s in
  let digest0 = Region.media_digest region in
  let ps = Page_table.page_size in
  let page =
    Page_table.page_of_addr (Protected.address_of univ "simurgh_create")
  in
  (* (a) jmpp at every class of non-entry offset within a protected page *)
  List.iter
    (fun off ->
      match Protected.jmpp_raw univ ((page * ps) + off) with
      | () -> Alcotest.failf "jmpp at +0x%x did not fault" off
      | exception Fault.Fault (Fault.Jmpp_bad_entry_offset _) -> ())
    [ 0x001; 0x123; 0x3ff; 0x401; 0x7ff; 0x801; 0xc01; 0xfff ];
  (* (b) jmpp at an unused entry slot: the registered ops fill the last
     protected page only partially, so at least one slot is a nop *)
  let nop_faults =
    List.concat_map
      (fun pg -> List.map (fun off -> (pg * ps) + off) [ 0x0; 0x400; 0x800; 0xc00 ])
      (Protected.pages univ)
    |> List.filter (fun a ->
           match Protected.jmpp_raw univ a with
           | () -> false
           | exception Fault.Fault (Fault.Entry_is_nop _) -> true
           | exception Fault.Fault _ -> false)
  in
  Alcotest.(check bool) "an unused slot exists and is a nop" true
    (nop_faults <> []);
  (* (c) jmpp to a page that does not carry the ep bit *)
  (match Protected.jmpp_raw univ (0x777 * ps) with
  | () -> Alcotest.fail "jmpp to non-ep page did not fault"
  | exception Fault.Fault (Fault.Jmpp_target_not_protected _) -> ());
  (* (d) user-mode store to a protected-stack page *)
  let sp = List.hd (Protected.stack_pages univ) in
  (match
     Page_table.check_access cpu.Cpu.page_table ~mode:Privilege.User
       ~addr:(sp * ps) ~write:true
   with
  | () -> Alcotest.fail "user store to protected stack did not fault"
  | exception Fault.Fault (Fault.Kernel_page_access { write = true; _ }) -> ());
  (* (e) user-mode store to the FS region itself *)
  (match Region.write_u8 region 0 0xff with
  | _ -> Alcotest.fail "user store to region did not fault"
  | exception Fault.Fault (Fault.Kernel_page_access { write = true; _ }) -> ());
  (* aftermath: user mode, nothing stranded, media bit-identical, and
     the legitimate entry points still work *)
  Alcotest.(check bool) "user mode" true (Cpu.mode cpu = Privilege.User);
  Alcotest.(check string) "media unchanged by the attack battery"
    (Digest.to_hex digest0)
    (Digest.to_hex (Region.media_digest region));
  Secure.create s "/survivor";
  Alcotest.(check bool) "fs still serves" true
    ((Secure.stat s "/survivor").Types.kind = Types.File)

(* --- per-user enforcement on secure media ------------------------------ *)

let mk_secure () =
  let region = Region.create (32 * 1024 * 1024) in
  let fs = Fs.mkfs ~euid:0 ~secure:true region in
  (region, fs)

let expect_eacces f =
  match f () with
  | _ -> Alcotest.fail "EACCES expected"
  | exception Errno.Err (EACCES, _) -> ()

let test_owner_word_enforcement () =
  let _, fs = mk_secure () in
  Alcotest.(check bool) "media carries the security plane" true
    (Fs.is_secure fs);
  Fs.mkdir fs ~perm:0o777 "/home";
  (* tenant 1000 creates a private file *)
  Fs.set_creds fs ~euid:1000 ~egid:1000;
  Fs.create_file fs ~perm:0o600 "/home/mine";
  let fd = Fs.openf fs Types.wronly "/home/mine" in
  ignore (Fs.append fs fd (Bytes.of_string "secret"));
  Fs.close fs fd;
  (* a second tenant is stopped by the fentry owner word *)
  Fs.set_creds fs ~euid:1001 ~egid:1001;
  expect_eacces (fun () -> Fs.openf fs Types.rdonly "/home/mine");
  expect_eacces (fun () -> Fs.openf fs Types.wronly "/home/mine");
  expect_eacces (fun () -> Fs.chmod fs "/home/mine" 0o666);
  expect_eacces (fun () -> Fs.truncate fs "/home/mine" 0);
  (* the owner relaxes the mode; reads open up, writes stay closed *)
  Fs.set_creds fs ~euid:1000 ~egid:1000;
  Fs.chmod fs "/home/mine" 0o644;
  Fs.set_creds fs ~euid:1001 ~egid:1001;
  let fd = Fs.openf fs Types.rdonly "/home/mine" in
  Alcotest.(check string) "readable after chmod" "secret"
    (Bytes.to_string (Fs.pread fs fd ~pos:0 ~len:6));
  Fs.close fs fd;
  expect_eacces (fun () -> Fs.openf fs Types.wronly "/home/mine")

let test_owner_word_travels_with_rename () =
  let _, fs = mk_secure () in
  Fs.mkdir fs ~perm:0o777 "/home";
  Fs.set_creds fs ~euid:1000 ~egid:1000;
  Fs.create_file fs ~perm:0o640 "/home/f";
  Fs.mkdir fs ~perm:0o777 "/home/sub";
  (* same-directory and cross-directory renames both preserve the
     stamped owner word (shadow-entry copy) *)
  Fs.rename fs "/home/f" "/home/g";
  Fs.rename fs "/home/g" "/home/sub/g";
  Fs.set_creds fs ~euid:1001 ~egid:1001;
  expect_eacces (fun () -> Fs.openf fs Types.rdonly "/home/sub/g");
  Fs.set_creds fs ~euid:1000 ~egid:1000;
  let fd = Fs.openf fs Types.rdwr "/home/sub/g" in
  Fs.close fs fd

let test_readdir_needs_read_permission () =
  let _, fs = mk_secure () in
  (* 0o711: others may traverse but not list *)
  Fs.mkdir fs ~perm:0o711 "/opaque";
  Fs.create_file fs ~perm:0o644 "/opaque/f";
  Fs.set_creds fs ~euid:1000 ~egid:1000;
  Alcotest.(check bool) "traverse allowed" true (Fs.exists fs "/opaque/f");
  expect_eacces (fun () -> Fs.readdir fs "/opaque")

(* --- adversarial: crash inside a protected rename ---------------------- *)

(* The crash-image explorer composes with the security plane: every
   store-granular crash point of a rename now sits between jmpp and
   pret, every image must recover fsck-clean, and the recovered mount
   (a fresh "process" with its own protected universe) stays atomic. *)
let test_crash_inside_protected_rename () =
  let st =
    Explore.run ~secure:true
      ~setup:(fun fs ->
        Fs.mkdir fs "/a";
        Fs.mkdir fs "/b";
        Fs.create_file fs "/a/f")
      ~op:(fun fs -> Fs.rename fs "/a/f" "/b/g")
      ~verify:(fun fs ->
        let s = Fs.exists fs "/a/f" and d = Fs.exists fs "/b/g" in
        if s = d then
          Alcotest.failf "protected rename not atomic: src=%b dst=%b" s d)
      ()
  in
  (match st.Explore.failures with
  | [] -> ()
  | (label, viols) :: _ ->
      Alcotest.failf "%d violating crash image(s); first at %s: %s"
        (List.length st.Explore.failures)
        label
        (String.concat "; " (List.map Check.violation_to_string viols)));
  Alcotest.(check bool) "explored crash points inside the gate" true
    (st.Explore.crash_points > 0)

(* --- adversarial: two tenants under per-uid quotas --------------------- *)

let test_two_tenant_quota_scenario () =
  let region = Region.create (64 * 1024 * 1024) in
  let fs = Fs.mkfs ~euid:0 ~secure:true ~striped_locks:true region in
  Fs.mkdir fs ~perm:0o777 "/shared";
  (* block size 256 B; each op appends 4 KiB = 16 blocks.  Tenant A has
     room for every write, tenant B hits the wall after 4 appends. *)
  Fs.set_quota fs ~uid:2001 ~blocks:4096;
  Fs.set_quota fs ~uid:2002 ~blocks:64;
  let machine = Simurgh_sim.Machine.create () in
  let denials = ref 0 and appends = Array.make 2 0 in
  let op (ctx : Simurgh_sim.Machine.ctx) j =
    let thr = ctx.Simurgh_sim.Machine.thr in
    let tenant = thr.Simurgh_sim.Sthread.tid land 1 in
    let uid = 2001 + tenant in
    Simurgh_sim.Sthread.set_creds thr ~euid:uid ~egid:uid;
    let path =
      Printf.sprintf "/shared/u%d_t%d_f%d" uid thr.Simurgh_sim.Sthread.tid j
    in
    try
      Fs.create_file ~ctx fs path;
      let fd = Fs.openf ~ctx fs Types.wronly path in
      Fun.protect
        ~finally:(fun () -> Fs.close ~ctx fs fd)
        (fun () ->
          ignore (Fs.append ~ctx fs fd (Bytes.make 4096 'q'));
          appends.(tenant) <- appends.(tenant) + 1)
    with Errno.Err (EDQUOT, _) -> incr denials
  in
  ignore (Simurgh_sim.Engine.run_ops machine ~threads:4 ~ops_per_thread:16 op);
  (* tenant A never hit its limit; tenant B was denied, never exceeded
     its budget, and its partial progress was accounted exactly *)
  Alcotest.(check int) "tenant A fully served" 32 appends.(0);
  Alcotest.(check int) "tenant B stopped at its budget" 4 appends.(1);
  Alcotest.(check bool) "tenant B denied" true (!denials > 0);
  Alcotest.(check int) "tenant B used == limit" 64
    (Fs.quota_used fs ~uid:2002);
  Alcotest.(check bool) "tenant A within limit" true
    (Fs.quota_used fs ~uid:2001 <= 4096);
  (* charge/release balance: freeing every file of a tenant returns the
     budget to zero, even though another tenant's files stay *)
  List.iter
    (fun n ->
      if String.length n >= 5 && String.sub n 0 5 = "u2002" then
        Fs.unlink fs ("/shared/" ^ n))
    (Fs.readdir fs "/shared");
  Alcotest.(check int) "tenant B released on unlink" 0
    (Fs.quota_used fs ~uid:2002);
  Alcotest.(check bool) "tenant A unaffected by B's frees" true
    (Fs.quota_used fs ~uid:2001 > 0);
  (* the hammered region is structurally sound *)
  Alcotest.(check (list string)) "fsck clean" []
    (List.map Check.violation_to_string (Check.run region))

let () =
  Alcotest.run "secure"
    [
      ( "secure",
        [
          Alcotest.test_case "ops via protected stubs" `Quick
            test_ops_through_protected_stubs;
          Alcotest.test_case "user region access faults" `Quick
            test_user_mode_region_access_faults;
          Alcotest.test_case "guard restored after pret" `Quick
            test_region_accessible_inside_protected;
          Alcotest.test_case "jmpp attacks fault" `Quick
            test_jmpp_raw_attacks_fault;
          Alcotest.test_case "ep from user faults" `Quick
            test_ep_cannot_be_set_from_user;
          Alcotest.test_case "remap protected faults" `Quick
            test_protected_mapping_cannot_be_remapped;
          Alcotest.test_case "permissions enforced" `Quick
            test_permission_checks_still_apply;
          Alcotest.test_case "errors propagate" `Quick
            test_errors_propagate_through_jmpp;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "ep-bit fault matrix, media unchanged" `Quick
            test_fault_matrix_media_unchanged;
          Alcotest.test_case "crash inside protected rename" `Slow
            test_crash_inside_protected_rename;
          Alcotest.test_case "two tenants under quotas" `Quick
            test_two_tenant_quota_scenario;
        ] );
      ( "per-user",
        [
          Alcotest.test_case "owner word enforcement" `Quick
            test_owner_word_enforcement;
          Alcotest.test_case "owner word travels with rename" `Quick
            test_owner_word_travels_with_rename;
          Alcotest.test_case "readdir needs read permission" `Quick
            test_readdir_needs_read_permission;
        ] );
    ]
