(* Tests for the simulated NVMM region: accessors, persistence semantics
   (clwb/sfence/ntstore/crash) and persistent pointers. *)

open Simurgh_nvmm

let mk ?mode () = Region.create ?mode (1 lsl 20)

(* --- accessors ----------------------------------------------------------- *)

let test_scalar_roundtrips () =
  let r = mk () in
  Region.write_u8 r 0 0xab;
  Alcotest.(check int) "u8" 0xab (Region.read_u8 r 0);
  Region.write_u16 r 10 0xbeef;
  Alcotest.(check int) "u16" 0xbeef (Region.read_u16 r 10);
  Region.write_u32 r 20 0xdeadbeef;
  Alcotest.(check int) "u32" 0xdeadbeef (Region.read_u32 r 20);
  Region.write_u62 r 30 0x1234_5678_9abc;
  Alcotest.(check int) "u62" 0x1234_5678_9abc (Region.read_u62 r 30)

let test_bytes_roundtrip () =
  let r = mk () in
  Region.write_string r 100 "simurgh";
  Alcotest.(check string) "bytes" "simurgh"
    (Bytes.to_string (Region.read_bytes r 100 7))

let test_zero () =
  let r = mk () in
  Region.write_string r 0 "xxxxxxxx";
  Region.zero r 0 8;
  Alcotest.(check string) "zeroed" (String.make 8 '\000')
    (Bytes.to_string (Region.read_bytes r 0 8))

let test_bounds_check () =
  let r = mk () in
  Alcotest.check_raises "oob"
    (Invalid_argument
       "Region: access [1048576, 1048577) outside region of 1048576 bytes")
    (fun () -> ignore (Region.read_u8 r (1 lsl 20)))

let prop_u62_roundtrip =
  QCheck.Test.make ~name:"u62 roundtrip" ~count:500
    QCheck.(pair (int_range 0 1000) (int_bound ((1 lsl 40) - 1)))
    (fun (off, v) ->
      let r = mk () in
      Region.write_u62 r (off * 8) v;
      Region.read_u62 r (off * 8) = v)

(* --- persistence (strict mode) ------------------------------------------- *)

let test_unflushed_lost_on_crash () =
  let r = mk ~mode:Region.Strict () in
  Region.write_string r 0 "volatile";
  Alcotest.(check string) "visible before crash" "volatile"
    (Bytes.to_string (Region.read_bytes r 0 8));
  Region.crash r;
  Alcotest.(check string) "lost after crash" (String.make 8 '\000')
    (Bytes.to_string (Region.read_bytes r 0 8))

let test_clwb_alone_not_durable () =
  let r = mk ~mode:Region.Strict () in
  Region.write_string r 0 "pending!";
  Region.clwb r 0 8;
  Region.crash r;
  (* clwb without sfence gives no guarantee *)
  Alcotest.(check string) "lost" (String.make 8 '\000')
    (Bytes.to_string (Region.read_bytes r 0 8))

let test_clwb_sfence_durable () =
  let r = mk ~mode:Region.Strict () in
  Region.write_string r 0 "durable!";
  Region.clwb r 0 8;
  Region.sfence r;
  Region.crash r;
  Alcotest.(check string) "survived" "durable!"
    (Bytes.to_string (Region.read_bytes r 0 8))

let test_ntstore_needs_fence () =
  let r = mk ~mode:Region.Strict () in
  Region.ntstore r 0 (Bytes.of_string "ntstore!");
  Region.crash r;
  Alcotest.(check string) "wc buffer lost" (String.make 8 '\000')
    (Bytes.to_string (Region.read_bytes r 0 8));
  Region.ntstore r 0 (Bytes.of_string "ntstore!");
  Region.sfence r;
  Region.crash r;
  Alcotest.(check string) "fenced survives" "ntstore!"
    (Bytes.to_string (Region.read_bytes r 0 8))

let test_partial_flush () =
  let r = mk ~mode:Region.Strict () in
  (* two distinct cache lines; only the first is persisted *)
  Region.write_string r 0 "first";
  Region.write_string r 128 "second";
  Region.persist r 0 5;
  Region.crash r;
  Alcotest.(check string) "first survived" "first"
    (Bytes.to_string (Region.read_bytes r 0 5));
  Alcotest.(check string) "second lost" (String.make 6 '\000')
    (Bytes.to_string (Region.read_bytes r 128 6))

let test_unpersisted_lines_counter () =
  let r = mk ~mode:Region.Strict () in
  Alcotest.(check int) "clean" 0 (Region.unpersisted_lines r);
  Region.write_u8 r 0 1;
  Region.write_u8 r 200 1;
  Alcotest.(check int) "two dirty lines" 2 (Region.unpersisted_lines r);
  Region.persist r 0 256;
  Alcotest.(check int) "flushed" 0 (Region.unpersisted_lines r)

let test_crash_image_subsets () =
  let r = mk ~mode:Region.Strict () in
  (* three dirty lines; the adversary evicts only the middle one early *)
  Region.write_string r 0 "line0";
  Region.write_string r 128 "line1";
  Region.write_string r 256 "line2";
  Region.crash_image r ~keep:(fun ln -> ln = 2);
  Alcotest.(check string) "dropped line lost" (String.make 5 '\000')
    (Bytes.to_string (Region.read_bytes r 0 5));
  Alcotest.(check string) "evicted line survived" "line1"
    (Bytes.to_string (Region.read_bytes r 128 5));
  Alcotest.(check string) "other dropped line lost" (String.make 5 '\000')
    (Bytes.to_string (Region.read_bytes r 256 5));
  Alcotest.(check int) "overlay drained" 0 (Region.unpersisted_lines r)

let test_pending_lines_and_persist_all () =
  let r = mk ~mode:Region.Strict () in
  Region.write_u8 r 0 1;
  Region.write_u8 r 130 1;
  Region.write_u8 r 300 1;
  Alcotest.(check (list int)) "pending sorted" [ 0; 2; 4 ]
    (Region.pending_lines r);
  Region.persist_all r;
  Alcotest.(check (list int)) "drained" [] (Region.pending_lines r);
  Region.crash r;
  Alcotest.(check int) "persist_all made data durable" 1 (Region.read_u8 r 300)

let test_poison_scrub () =
  let r = mk () in
  Region.write_string r 0 "healthy";
  Region.poison r 64 1;
  Alcotest.(check bool) "range_poisoned sees it" true
    (Region.range_poisoned r 0 256);
  Alcotest.(check bool) "disjoint range clean" false
    (Region.range_poisoned r 256 64);
  Alcotest.(check int) "one poisoned line" 1 (Region.poisoned_lines r);
  (* loads fault on the poisoned line only *)
  Alcotest.check_raises "load faults" (Region.Media_error 64) (fun () ->
      ignore (Region.read_u8 r 70));
  Alcotest.check_raises "wide load crossing the line faults"
    (Region.Media_error 64) (fun () -> ignore (Region.read_bytes r 0 128));
  Alcotest.(check string) "load off the poisoned line fine" "healthy"
    (Bytes.to_string (Region.read_bytes r 0 7));
  (* stores fault too: the line is unusable until scrubbed *)
  Alcotest.check_raises "store faults" (Region.Media_error 64) (fun () ->
      Region.write_u62 r 64 42);
  Region.scrub r 64 1;
  Region.write_u62 r 64 42;
  Alcotest.(check int) "scrubbed line usable again" 42 (Region.read_u62 r 64);
  Alcotest.(check bool) "media errors counted" true
    ((Region.stats r).Region.media_errors >= 3)

let test_checkpoint_restore () =
  let r = mk ~mode:Region.Strict () in
  Region.write_string r 0 "durable!";
  Region.persist r 0 8;
  Region.write_string r 128 "volatile";
  let cp = Region.checkpoint r in
  (* diverge: persist the volatile line, overwrite the durable one *)
  Region.persist r 128 8;
  Region.write_string r 0 "clobber!";
  Region.persist r 0 8;
  Region.restore r cp;
  Alcotest.(check string) "image restored" "durable!"
    (Bytes.to_string (Region.read_bytes r 0 8));
  Alcotest.(check string) "overlay restored" "volatile"
    (Bytes.to_string (Region.read_bytes r 128 8));
  Region.crash r;
  Alcotest.(check string) "restored overlay still volatile"
    (String.make 8 '\000')
    (Bytes.to_string (Region.read_bytes r 128 8))

let prop_strict_persist_roundtrip =
  QCheck.Test.make ~name:"strict: persisted writes survive crash" ~count:100
    QCheck.(pair (int_range 0 4000) (string_of_size (Gen.int_range 1 64)))
    (fun (off, s) ->
      let r = mk ~mode:Region.Strict () in
      Region.write_string r off s;
      Region.persist r off (String.length s);
      Region.crash r;
      Bytes.to_string (Region.read_bytes r off (String.length s)) = s)

let test_fast_mode_crash_rejected () =
  let r = mk () in
  Region.write_string r 0 "keep";
  (* Fast mode has no volatile state: a "crash test" would vacuously
     pass, so crash/crash_image refuse to run instead of no-oping. *)
  Alcotest.check_raises "crash raises in fast mode"
    (Invalid_argument "Region.crash_image: region is in Fast mode")
    (fun () -> Region.crash r);
  Alcotest.check_raises "crash_image raises in fast mode"
    (Invalid_argument "Region.crash_image: region is in Fast mode")
    (fun () -> Region.crash_image r ~keep:(fun _ -> true))

let test_save_load_roundtrip () =
  let r = mk () in
  Region.write_string r 1000 "on disk";
  let path = Filename.temp_file "simurgh" ".img" in
  Region.save_to_file r path;
  let r2 = Region.load_from_file path in
  Sys.remove path;
  Alcotest.(check int) "size" (Region.size r) (Region.size r2);
  Alcotest.(check string) "contents" "on disk"
    (Bytes.to_string (Region.read_bytes r2 1000 7))

let test_save_excludes_unflushed () =
  let r = mk ~mode:Region.Strict () in
  Region.write_string r 0 "flushed!";
  Region.persist r 0 8;
  Region.write_string r 100 "volatile";
  let path = Filename.temp_file "simurgh" ".img" in
  Region.save_to_file r path;
  let r2 = Region.load_from_file path in
  Sys.remove path;
  Alcotest.(check string) "persisted part saved" "flushed!"
    (Bytes.to_string (Region.read_bytes r2 0 8));
  Alcotest.(check string) "unflushed part absent" (String.make 8 '\000')
    (Bytes.to_string (Region.read_bytes r2 100 8))

(* --- differential: wide accessors vs byte-at-a-time reference ------------- *)

(* An independent transcription of the original byte-at-a-time region
   (per-byte overlay access, full-table-scan sfence).  The word/line
   granular implementation must be bit-identical to it, in both modes,
   including crash-drop behaviour. *)
module Ref = struct
  let line_size = 64

  type t = {
    image : Bytes.t;
    size : int;
    strict : bool;
    overlay : (int, Bytes.t * bool ref) Hashtbl.t;
        (** line -> contents * flushing? *)
  }

  let create ~strict size =
    { image = Bytes.make size '\000'; size; strict; overlay = Hashtbl.create 64 }

  let overlay_line t ln =
    match Hashtbl.find_opt t.overlay ln with
    | Some cell -> cell
    | None ->
        let buf = Bytes.create line_size in
        let base = ln * line_size in
        Bytes.blit t.image base buf 0 (min line_size (t.size - base));
        let cell = (buf, ref false) in
        Hashtbl.replace t.overlay ln cell;
        cell

  let read_byte t off =
    if not t.strict then Char.code (Bytes.get t.image off)
    else
      let ln = off / line_size in
      match Hashtbl.find_opt t.overlay ln with
      | Some (buf, _) -> Char.code (Bytes.get buf (off - (ln * line_size)))
      | None -> Char.code (Bytes.get t.image off)

  let write_byte t off v =
    if not t.strict then Bytes.set t.image off (Char.chr (v land 0xff))
    else begin
      let ln = off / line_size in
      let buf, fl = overlay_line t ln in
      fl := false;
      Bytes.set buf (off - (ln * line_size)) (Char.chr (v land 0xff))
    end

  let read_u16 t off = read_byte t off lor (read_byte t (off + 1) lsl 8)

  let write_u16 t off v =
    write_byte t off (v land 0xff);
    write_byte t (off + 1) ((v lsr 8) land 0xff)

  let read_u32 t off = read_u16 t off lor (read_u16 t (off + 2) lsl 16)

  let write_u32 t off v =
    write_u16 t off (v land 0xffff);
    write_u16 t (off + 2) ((v lsr 16) land 0xffff)

  let read_u62 t off = read_u32 t off lor (read_u32 t (off + 4) lsl 32)

  let write_u62 t off v =
    write_u32 t off (v land 0xffffffff);
    write_u32 t (off + 4) ((v lsr 32) land 0x3fffffff)

  let read_bytes t off len =
    Bytes.init len (fun i -> Char.chr (read_byte t (off + i)))

  let write_bytes t off src =
    Bytes.iteri (fun i c -> write_byte t (off + i) (Char.code c)) src

  let zero t off len =
    for i = 0 to len - 1 do
      write_byte t (off + i) 0
    done

  let clwb t off len =
    if t.strict then begin
      let first = off / line_size and last = (off + max (len - 1) 0) / line_size in
      for ln = first to last do
        match Hashtbl.find_opt t.overlay ln with
        | Some (_, fl) -> fl := true
        | None -> ()
      done
    end

  let ntstore t off src =
    write_bytes t off src;
    clwb t off (Bytes.length src)

  let sfence t =
    if t.strict then begin
      let committed = ref [] in
      Hashtbl.iter
        (fun ln (buf, fl) ->
          if !fl then begin
            let base = ln * line_size in
            Bytes.blit buf 0 t.image base (min line_size (t.size - base));
            committed := ln :: !committed
          end)
        t.overlay;
      List.iter (Hashtbl.remove t.overlay) !committed
    end

  let persist t off len =
    clwb t off len;
    sfence t

  let crash t = if t.strict then Hashtbl.reset t.overlay

  let unpersisted_lines t = Hashtbl.length t.overlay
end

let differential_run ~strict ~seed ~ops =
  let size = 4096 + 40 (* partial tail cache line *) in
  let rng = Simurgh_sim.Rng.create (Int64.of_int seed) in
  let mode = if strict then Region.Strict else Region.Fast in
  let r = Region.create ~mode size in
  let m = Ref.create ~strict size in
  let ck name i cond =
    if not cond then
      Alcotest.failf "%s diverged (strict=%b seed=%d op %d)" name strict seed i
  in
  let compare_all i =
    ck "visible image" i
      (Bytes.equal (Region.read_bytes r 0 size) (Ref.read_bytes m 0 size));
    if strict then begin
      ck "unpersisted lines" i
        (Region.unpersisted_lines r = Ref.unpersisted_lines m);
      let path = Filename.temp_file "simurgh_diff" ".img" in
      Region.save_to_file r path;
      let persisted = Region.load_from_file path in
      Sys.remove path;
      ck "persistent image" i
        (Bytes.equal (Region.read_bytes persisted 0 size) m.Ref.image)
    end
  in
  let rand_off len = Simurgh_sim.Rng.int rng (size - len + 1) in
  let rand_len () = Simurgh_sim.Rng.int rng 300 in
  let rand_payload len =
    Bytes.init len (fun _ -> Char.chr (Simurgh_sim.Rng.int rng 256))
  in
  for i = 1 to ops do
    (match Simurgh_sim.Rng.int rng 17 with
    | 0 ->
        let off = rand_off 1 and v = Simurgh_sim.Rng.int rng 256 in
        Region.write_u8 r off v;
        Ref.write_byte m off v
    | 1 ->
        let off = rand_off 2 and v = Simurgh_sim.Rng.int rng 65536 in
        Region.write_u16 r off v;
        Ref.write_u16 m off v
    | 2 ->
        let off = rand_off 4 and v = Simurgh_sim.Rng.int rng max_int in
        Region.write_u32 r off v;
        Ref.write_u32 m off v
    | 3 ->
        let off = rand_off 8 and v = Simurgh_sim.Rng.int rng max_int in
        Region.write_u62 r off v;
        Ref.write_u62 m off v
    | 4 ->
        let off = rand_off 8 in
        ck "read_u8" i (Region.read_u8 r off = Ref.read_byte m off);
        ck "read_u16" i (Region.read_u16 r off = Ref.read_u16 m off);
        ck "read_u32" i (Region.read_u32 r off = Ref.read_u32 m off);
        ck "read_u62" i (Region.read_u62 r off = Ref.read_u62 m off)
    | 5 ->
        let len = rand_len () in
        let off = rand_off len in
        ck "read_bytes" i
          (Bytes.equal (Region.read_bytes r off len) (Ref.read_bytes m off len))
    | 6 ->
        let len = rand_len () in
        let off = rand_off len in
        let src = rand_payload len in
        Region.write_bytes r off src;
        Ref.write_bytes m off src
    | 7 ->
        let len = rand_len () in
        let off = rand_off len in
        let src = rand_payload len in
        Region.write_string r off (Bytes.to_string src);
        Ref.write_bytes m off src
    | 8 ->
        let len = rand_len () in
        let off = rand_off len in
        Region.zero r off len;
        Ref.zero m off len
    | 9 ->
        let len = rand_len () in
        let off = rand_off len in
        let src = rand_payload len in
        Region.ntstore r off src;
        Ref.ntstore m off src
    | 10 | 11 ->
        let len = rand_len () in
        let off = rand_off len in
        Region.clwb r off len;
        Ref.clwb m off len
    | 12 | 13 ->
        Region.sfence r;
        Ref.sfence m
    | 14 ->
        let len = rand_len () in
        let off = rand_off len in
        Region.persist r off len;
        Ref.persist m off len
    | 15 ->
        (* paired-word path (block-allocator node access) *)
        let off = 8 * Simurgh_sim.Rng.int rng ((size - 16) / 8 + 1) in
        let v0 = Simurgh_sim.Rng.int rng max_int
        and v1 = Simurgh_sim.Rng.int rng max_int in
        Region.write_u62_pair r off v0 v1;
        Ref.write_u62 m off v0;
        Ref.write_u62 m (off + 8) v1;
        let a, b = Region.read_u62_pair r off in
        ck "u62_pair" i (a = Ref.read_u62 m off && b = Ref.read_u62 m (off + 8))
    | _ ->
        (* power failure at a random point (Strict only: crash raises in
           Fast mode, where there is nothing volatile to lose) *)
        if strict then begin
          Region.crash r;
          Ref.crash m
        end);
    if i mod 100 = 0 then compare_all i
  done;
  compare_all ops;
  if strict then begin
    Region.crash r;
    Ref.crash m
  end;
  compare_all (ops + 1)

let test_differential_fast () =
  List.iter (fun seed -> differential_run ~strict:false ~seed ~ops:3000) [ 1; 2; 3 ]

let test_differential_strict () =
  List.iter (fun seed -> differential_run ~strict:true ~seed ~ops:3000) [ 1; 2; 3; 4; 5 ]

(* --- guard ----------------------------------------------------------------- *)

exception Guarded

let test_guard_intercepts () =
  let r = mk () in
  Region.set_guard r (fun ~write:_ -> raise Guarded);
  Alcotest.check_raises "read guarded" Guarded (fun () ->
      ignore (Region.read_u8 r 0));
  Alcotest.check_raises "write guarded" Guarded (fun () ->
      Region.write_u8 r 0 1);
  Region.clear_guard r;
  ignore (Region.read_u8 r 0)

let test_stats_counters () =
  let r = mk () in
  let s0 = Region.stats r in
  Region.write_u8 r 0 1;
  ignore (Region.read_u8 r 0);
  Region.clwb r 0 1;
  Region.sfence r;
  let s1 = Region.stats r in
  Alcotest.(check bool) "counters move" true
    (s1.Region.stores > s0.Region.stores
    && s1.Region.loads > s0.Region.loads
    && s1.Region.flushes > s0.Region.flushes
    && s1.Region.fences > s0.Region.fences)

(* --- pptr ----------------------------------------------------------------- *)

let test_pptr_basics () =
  Alcotest.(check bool) "null" true (Pptr.is_null Pptr.null);
  let p : unit Pptr.t = Pptr.of_offset 4096 in
  Alcotest.(check int) "offset" 4096 (Pptr.offset p);
  Alcotest.(check bool) "eq" true (Pptr.equal p (Pptr.of_offset 4096));
  Alcotest.check_raises "negative"
    (Invalid_argument "Pptr.of_offset: negative offset") (fun () ->
      ignore (Pptr.of_offset (-1)))

let prop_pptr_store_load =
  QCheck.Test.make ~name:"pptr store/load roundtrip" ~count:200
    QCheck.(pair (int_range 0 1000) (int_range 0 ((1 lsl 40) - 1)))
    (fun (slot, off) ->
      let r = mk () in
      let p : unit Pptr.t = Pptr.of_offset off in
      Pptr.store r (slot * 8) p;
      Pptr.equal (Pptr.load r (slot * 8)) p)

let () =
  Alcotest.run "nvmm"
    [
      ( "region",
        [
          Alcotest.test_case "scalar roundtrips" `Quick test_scalar_roundtrips;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "zero" `Quick test_zero;
          Alcotest.test_case "bounds" `Quick test_bounds_check;
          QCheck_alcotest.to_alcotest prop_u62_roundtrip;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "unflushed lost" `Quick
            test_unflushed_lost_on_crash;
          Alcotest.test_case "clwb alone insufficient" `Quick
            test_clwb_alone_not_durable;
          Alcotest.test_case "clwb+sfence durable" `Quick
            test_clwb_sfence_durable;
          Alcotest.test_case "ntstore semantics" `Quick test_ntstore_needs_fence;
          Alcotest.test_case "partial flush" `Quick test_partial_flush;
          Alcotest.test_case "unpersisted counter" `Quick
            test_unpersisted_lines_counter;
          Alcotest.test_case "crash-image eviction subsets" `Quick
            test_crash_image_subsets;
          Alcotest.test_case "pending lines + persist_all" `Quick
            test_pending_lines_and_persist_all;
          Alcotest.test_case "poison/scrub media plane" `Quick
            test_poison_scrub;
          Alcotest.test_case "checkpoint/restore" `Quick
            test_checkpoint_restore;
          Alcotest.test_case "fast-mode crash rejected" `Quick
            test_fast_mode_crash_rejected;
          Alcotest.test_case "save/load roundtrip" `Quick
            test_save_load_roundtrip;
          Alcotest.test_case "save excludes unflushed" `Quick
            test_save_excludes_unflushed;
          QCheck_alcotest.to_alcotest prop_strict_persist_roundtrip;
        ] );
      ( "differential",
        [
          Alcotest.test_case "wide accessors vs byte reference (fast)" `Quick
            test_differential_fast;
          Alcotest.test_case "wide accessors vs byte reference (strict)" `Quick
            test_differential_strict;
        ] );
      ( "guard+stats",
        [
          Alcotest.test_case "guard intercepts" `Quick test_guard_intercepts;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
        ] );
      ( "pptr",
        [
          Alcotest.test_case "basics" `Quick test_pptr_basics;
          QCheck_alcotest.to_alcotest prop_pptr_store_load;
        ] );
    ]
