(* Media-fault (uncorrectable NVMM error) handling.

   Poisoned lines model ECC-uncorrectable media errors: any load or
   store under one raises [Region.Media_error].  The file system must
   convert that into an [EIO] errno at the syscall boundary — with locks
   released and the process still running — and full recovery must
   quarantine (detach) namespace subtrees whose *metadata* sits on
   poisoned lines while leaving the rest of the tree usable. *)

open Simurgh_fs_common
module Fs = Simurgh_core.Fs
module Recovery = Simurgh_core.Recovery
module Check = Simurgh_core.Check
module Fentry = Simurgh_core.Fentry
module Inode = Simurgh_core.Inode
module Dirblock = Simurgh_core.Dirblock
module Slab = Simurgh_alloc.Slab_alloc
module Region = Simurgh_nvmm.Region

let fresh () =
  let region = Region.create (32 * 1024 * 1024) in
  (region, Fs.mkfs ~euid:0 region)

(* Address of the first data extent of [path]. *)
let first_extent fs path =
  let region = Fs.region fs in
  let _, fe = Fs.resolve fs path in
  let inode = Fentry.target region fe in
  let addr = ref 0 in
  (try
     Inode.iter_extents region inode (fun a _ ->
         addr := a;
         raise Exit)
   with Exit -> ());
  !addr

let expect_eio what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected EIO" what
  | exception Errno.Err (EIO, _) -> ()

(* A poisoned data line turns pread/pwrite into EIO error returns; the
   process, the fd and every other file keep working, and scrubbing the
   line (media replacement) makes the range usable again. *)
let test_eio_on_poisoned_data () =
  Simurgh_obs.Collect.install ();
  let region, fs = fresh () in
  Fs.create_file fs "/f";
  let fd = Fs.openf fs Types.wronly "/f" in
  ignore (Fs.append fs fd (Bytes.make 1024 'x'));
  Fs.close fs fd;
  let addr = first_extent fs "/f" in
  Alcotest.(check bool) "file has an extent" true (addr <> 0);
  Region.poison region addr 1;
  let fd = Fs.openf fs Types.rdwr "/f" in
  expect_eio "pread" (fun () -> Fs.pread fs fd ~pos:0 ~len:1024);
  expect_eio "pwrite" (fun () -> Fs.pwrite fs fd ~pos:0 (Bytes.make 64 'y'));
  (* the error is contained: same fd past the bad line, other files,
     metadata ops and new work all still succeed *)
  Alcotest.(check int) "stat still works" 1024 (Fs.stat fs "/f").Types.size;
  Fs.create_file fs "/g";
  Fs.rename fs "/g" "/h";
  Fs.unlink fs "/h";
  (* scrub = media repair: the range is readable/writable again *)
  Region.scrub region addr 1;
  ignore (Fs.pwrite fs fd ~pos:0 (Bytes.make 64 'y'));
  Alcotest.(check int) "readable after scrub" 1024
    (Bytes.length (Fs.pread fs fd ~pos:0 ~len:1024));
  Fs.close fs fd;
  let st = Region.stats region in
  Alcotest.(check bool) "media_errors counted" true
    (st.Region.media_errors >= 2);
  (* the obs counters export the fault-plane activity *)
  let run = Simurgh_obs.Collect.drain () in
  Alcotest.(check bool) "faults/eio_returns exported" true
    (Simurgh_obs.Metrics.get run.Simurgh_obs.Run.counters "faults/eio_returns"
    >= 2.0);
  Alcotest.(check bool) "faults/media_errors exported" true
    (Simurgh_obs.Metrics.get run.Simurgh_obs.Run.counters
       "faults/media_errors"
    >= 2.0)

(* Poisoned *metadata* (a file entry's slab object): recovery must
   quarantine the affected entries, keep the rest of the directory and
   an unrelated subtree intact, and leave a checker-clean file system.
   Poison is line-granular and slab slots are not line-aligned, so the
   one poisoned line may legitimately take the adjacent entry with it —
   but never more than the slots overlapping that line. *)
let test_quarantine_poisoned_fentry () =
  let region, fs = fresh () in
  Fs.mkdir fs "/d";
  Fs.mkdir fs "/d/sub";
  Fs.create_file fs "/d/sub/inner";
  Fs.create_file fs "/d/x";
  Fs.create_file fs "/d/y";
  let _, fe = Fs.resolve fs "/d/y" in
  (* one poisoned line over the entry's object header *)
  Region.poison region (fe - Slab.obj_header) 1;
  let fs', report = Recovery.mount_after_crash ~euid:0 region in
  Alcotest.(check bool) "quarantine reported" true
    (report.Recovery.quarantined >= 1);
  Alcotest.(check bool) "subtree intact" true (Fs.exists fs' "/d/sub/inner");
  Alcotest.(check bool) "victim detached" false (Fs.exists fs' "/d/y");
  (* the namespace slot is free again: the name can be reused, and the
     recycled entry must not land on the quarantined slab slot *)
  Fs.create_file fs' "/d/y";
  Alcotest.(check bool) "name reusable" true (Fs.exists fs' "/d/y");
  Alcotest.(check (list string)) "checker clean after quarantine" []
    (List.map Check.violation_to_string (Check.run region))

(* Poisoned directory *hash block* of a subdirectory: the whole subtree
   behind it is detached in one quarantine and its storage reclaimed;
   the parent directory stays fully usable. *)
let test_quarantine_poisoned_subdir_block () =
  let region, fs = fresh () in
  Fs.mkdir fs "/d";
  Fs.create_file fs "/d/x";
  Fs.mkdir fs "/d/sub";
  Fs.create_file fs "/d/sub/inner";
  let _, sfe = Fs.resolve fs "/d/sub" in
  let head = Fentry.dirblock (Fs.region fs) sfe in
  (* poison the first row line (not the block header) of the child's
     hash block: traversal into the subtree faults *)
  Region.poison region (head + Dirblock.header) 1;
  let fs', report = Recovery.mount_after_crash ~euid:0 region in
  Alcotest.(check bool) "quarantine reported" true
    (report.Recovery.quarantined >= 1);
  Alcotest.(check bool) "sibling intact" true (Fs.exists fs' "/d/x");
  Alcotest.(check bool) "subtree detached" false (Fs.exists fs' "/d/sub");
  (* the directory keeps working, including recreating the lost name *)
  Fs.mkdir fs' "/d/sub";
  Fs.create_file fs' "/d/sub/fresh";
  Alcotest.(check (list string)) "checker clean after quarantine" []
    (List.map Check.violation_to_string (Check.run region))

(* Regression: poison in the ROOT directory's own chain used to escape
   [Recovery.run] as a raised [Media_error] from deep in the mark
   descent — the root has no parent slot to quarantine into, so the old
   per-entry rollback had nowhere to go and recovery aborted half-
   marked.  Now the partially-unreadable chain block is spliced out and
   every entry in its readable rows is salvaged (relinked into the
   surviving chain): no file is lost, and the checker is clean. *)
let test_media_error_in_root_chain () =
  let region, fs = fresh () in
  (* 12 names hashing to row 0 of the 64-row first block and row 64 of
     the 128-row growth block: the first 8 fill the row, the next 4
     force chain growth and land in the second block outside its row 0 *)
  let name_probing i =
    let rec go j =
      let n = Printf.sprintf "n%d_%d" i j in
      if Simurgh_core.Name_hash.hash n mod 128 = 64 then n else go (j + 1)
    in
    go 0
  in
  let names = List.init 12 name_probing in
  List.iter (fun n -> Fs.create_file fs ("/" ^ n)) names;
  let root = Simurgh_core.Layout.root_fentry (Fs.layout fs) in
  let head = Fentry.dirblock region root in
  let b2 = Dirblock.next region head in
  Alcotest.(check bool) "root chain grew a second block" true (b2 <> 0);
  (* poison the second line of the growth block: the header words
     (next/rows/ring, first line) stay readable, its row 0 faults *)
  Region.poison region (b2 + 64) 1;
  let fs', report = Recovery.mount_after_crash ~euid:0 region in
  Alcotest.(check bool) "quarantine reported" true
    (report.Recovery.quarantined >= 1);
  List.iter
    (fun n ->
      Alcotest.(check bool) ("survives: " ^ n) true (Fs.exists fs' ("/" ^ n)))
    names;
  Alcotest.(check (list string)) "checker clean after splice" []
    (List.map Check.violation_to_string (Check.run region))

(* Satellite of the fault plane: the free-space accounting must survive
   poison.  Freeing a file whose data sits on a poisoned line must
   withhold the poisoned block from the free lists (re-listing it would
   hand a known-bad block to the next allocation), statfs must report it
   as quarantined, and free + used + quarantined must keep partitioning
   the capacity -- including after a full crash-recovery rebuild. *)
let test_statfs_accounting_after_poisoned_free () =
  let region, fs = fresh () in
  Fs.mkdir fs "/d";
  Fs.create_file fs "/d/f";
  let fd = Fs.openf fs Types.wronly "/d/f" in
  ignore (Fs.append fs fd (Bytes.make 4096 'x'));
  Fs.close fs fd;
  let st0 = Fs.statfs fs in
  Alcotest.(check int) "clean media: nothing quarantined" 0
    st0.Fs.quarantined_blocks;
  let _, fe = Fs.resolve fs "/d/f" in
  let inode = Fentry.target region fe in
  let mapped = Fs.mapped_blocks fs inode in
  let addr = first_extent fs "/d/f" in
  Region.poison region addr 1;
  (* the free path must skip the poisoned block (pre-fix it wrote the
     free-list node straight into it, hitting the media error and
     re-listing a known-bad block) *)
  Fs.unlink fs "/d/f";
  let st1 = Fs.statfs fs in
  Alcotest.(check int) "one block quarantined" 1 st1.Fs.quarantined_blocks;
  Alcotest.(check int) "freed all mapped blocks but the poisoned one"
    (st0.Fs.free_blocks + mapped - 1)
    st1.Fs.free_blocks;
  Alcotest.(check int) "free + used + quarantined = capacity"
    st1.Fs.total_blocks
    (st1.Fs.free_blocks + st1.Fs.used_blocks + st1.Fs.quarantined_blocks);
  (* crash: recovery rebuilds the free lists from the reachable tree and
     must reach the same accounting *)
  let fs2, _report = Recovery.mount_after_crash ~euid:0 region in
  let st2 = Fs.statfs fs2 in
  Alcotest.(check int) "still quarantined after recovery" 1
    st2.Fs.quarantined_blocks;
  Alcotest.(check int) "recovery rebuild agrees on free" st1.Fs.free_blocks
    st2.Fs.free_blocks;
  Alcotest.(check int) "partition holds after recovery" st2.Fs.total_blocks
    (st2.Fs.free_blocks + st2.Fs.used_blocks + st2.Fs.quarantined_blocks);
  (* the namespace is intact and the quarantined block stays withheld:
     fresh traffic never lands on it *)
  Fs.create_file fs2 "/d/g";
  let fd = Fs.openf fs2 Types.wronly "/d/g" in
  ignore (Fs.append fs2 fd (Bytes.make 4096 'y'));
  Fs.close fs2 fd;
  Alcotest.(check (list string)) "checker clean" []
    (List.map Check.violation_to_string (Check.run region))

let () =
  Alcotest.run "media"
    [
      ( "faults",
        [
          Alcotest.test_case "EIO on poisoned data, scrub heals" `Quick
            test_eio_on_poisoned_data;
          Alcotest.test_case "quarantine poisoned fentry" `Quick
            test_quarantine_poisoned_fentry;
          Alcotest.test_case "quarantine poisoned subdir block" `Quick
            test_quarantine_poisoned_subdir_block;
          Alcotest.test_case "media error in the root chain" `Quick
            test_media_error_in_root_chain;
          Alcotest.test_case "statfs accounting after poisoned free" `Quick
            test_statfs_accounting_after_poisoned_free;
        ] );
    ]
