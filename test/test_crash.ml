(* Crash-injection tests.

   The FS exposes a labeled crash-hook at every persist point of the
   Fig. 5 state machines.  For each operation we enumerate the hook
   labels it passes, then re-run the operation once per label on a
   strict-mode region, raise at that point, drop all unflushed cache
   lines (power failure) and run full recovery.  After recovery the file
   system must be consistent: the interrupted operation has either fully
   happened or not happened at all (for multi-step renames: the entry
   exists under exactly one of the two names), all other files are
   intact, and the operation can be re-executed. *)

open Simurgh_fs_common
module Fs = Simurgh_core.Fs
module Recovery = Simurgh_core.Recovery

exception Crash_now

let mk_strict () =
  let region =
    Simurgh_nvmm.Region.create ~mode:Simurgh_nvmm.Region.Strict
      (32 * 1024 * 1024)
  in
  (region, Fs.mkfs ~euid:0 region)

(* Collect the hook labels an operation passes through. *)
let labels_of op =
  let region, fs = mk_strict () in
  ignore region;
  let labels = ref [] in
  Fs.set_crash_hook fs (fun l -> labels := l :: !labels);
  op fs;
  List.rev !labels

(* Run [op] crashing at the [n]-th hook; returns the recovered fs and the
   report. *)
let crash_at ~setup ~op n =
  let region, fs = mk_strict () in
  setup fs;
  let count = ref 0 in
  Fs.set_crash_hook fs (fun _ ->
      incr count;
      if !count = n then raise Crash_now);
  let crashed =
    match op fs with
    | () -> false
    | exception Crash_now ->
        Simurgh_nvmm.Region.crash region;
        true
  in
  Simurgh_nvmm.Region.clear_guard region;
  let fs', report = Recovery.mount_after_crash ~euid:0 region in
  (fs', report, crashed)

(* Generic integrity check: listing and stat-ing everything works, and the
   control files are intact. *)
let check_intact fs' =
  List.iter
    (fun p ->
      Alcotest.(check bool) ("control file " ^ p) true (Fs.exists fs' p))
    [ "/keep1"; "/keep2"; "/dir/keep3" ]

let base_setup fs =
  Fs.create_file fs "/keep1";
  Fs.create_file fs "/keep2";
  Fs.mkdir fs "/dir";
  Fs.create_file fs "/dir/keep3";
  (* persist the setup fully *)
  Fs.set_crash_hook fs ignore

(* --- create -------------------------------------------------------------- *)

let test_create_crashes () =
  let labels =
    labels_of (fun fs ->
        base_setup fs;
        Fs.set_crash_hook fs ignore;
        let l = ref [] in
        Fs.set_crash_hook fs (fun x -> l := x :: !l);
        Fs.create_file fs "/dir/victim";
        Fs.set_crash_hook fs ignore)
  in
  ignore labels;
  (* count hooks through one create *)
  let region, fs = mk_strict () in
  ignore region;
  base_setup fs;
  let n_hooks = ref 0 in
  Fs.set_crash_hook fs (fun _ -> incr n_hooks);
  Fs.create_file fs "/dir/probe";
  Alcotest.(check bool) "create passes hooks" true (!n_hooks >= 3);
  for n = 1 to !n_hooks do
    let fs', report, crashed =
      crash_at ~setup:base_setup ~op:(fun fs -> Fs.create_file fs "/dir/victim") n
    in
    Alcotest.(check bool) "crashed" true crashed;
    ignore report;
    check_intact fs';
    (* atomicity: victim either exists (with a valid stat) or not *)
    (match Fs.stat fs' "/dir/victim" with
    | st -> Alcotest.(check bool) "valid if present" true (st.Types.kind = Types.File)
    | exception Errno.Err (ENOENT, _) ->
        (* retry must succeed after recovery *)
        Fs.create_file fs' "/dir/victim");
    Alcotest.(check bool) "usable after recovery" true
      (Fs.exists fs' "/dir/victim")
  done

(* --- unlink -------------------------------------------------------------- *)

let test_unlink_crashes () =
  let setup fs =
    base_setup fs;
    Fs.create_file fs "/dir/victim"
  in
  let region, fs = mk_strict () in
  ignore region;
  setup fs;
  let n_hooks = ref 0 in
  Fs.set_crash_hook fs (fun _ -> incr n_hooks);
  Fs.unlink fs "/dir/victim";
  Alcotest.(check bool) "unlink passes hooks" true (!n_hooks >= 4);
  for n = 1 to !n_hooks do
    let fs', _report, crashed =
      crash_at ~setup ~op:(fun fs -> Fs.unlink fs "/dir/victim") n
    in
    Alcotest.(check bool) "crashed" true crashed;
    check_intact fs';
    (* after recovery the victim is either still fully there or gone;
       either way a full delete+recreate cycle must work *)
    (if Fs.exists fs' "/dir/victim" then Fs.unlink fs' "/dir/victim");
    Fs.create_file fs' "/dir/victim";
    Alcotest.(check bool) "recreated" true (Fs.exists fs' "/dir/victim")
  done

(* --- same-directory rename ------------------------------------------------ *)

let test_rename_crashes () =
  let setup fs =
    base_setup fs;
    Fs.create_file fs "/dir/oldname";
    let fd = Fs.openf fs Types.wronly "/dir/oldname" in
    ignore (Fs.append fs fd (Bytes.of_string "precious"));
    Fs.close fs fd
  in
  let region, fs = mk_strict () in
  ignore region;
  setup fs;
  let n_hooks = ref 0 in
  Fs.set_crash_hook fs (fun _ -> incr n_hooks);
  Fs.rename fs "/dir/oldname" "/dir/newname";
  Alcotest.(check bool) "rename passes hooks" true (!n_hooks >= 6);
  for n = 1 to !n_hooks do
    let fs', _report, crashed =
      crash_at ~setup
        ~op:(fun fs -> Fs.rename fs "/dir/oldname" "/dir/newname")
        n
    in
    Alcotest.(check bool) "crashed" true crashed;
    check_intact fs';
    let old_e = Fs.exists fs' "/dir/oldname" in
    let new_e = Fs.exists fs' "/dir/newname" in
    (* atomicity: exactly one name present after recovery *)
    if not (old_e <> new_e) then
      Alcotest.failf "rename crash %d: old=%b new=%b" n old_e new_e;
    (* the data must be intact under whichever name survived *)
    let name = if old_e then "/dir/oldname" else "/dir/newname" in
    let fd = Fs.openf fs' Types.rdonly name in
    Alcotest.(check string) "data intact" "precious"
      (Bytes.to_string (Fs.pread fs' fd ~pos:0 ~len:8));
    Fs.close fs' fd
  done

(* --- cross-directory rename ------------------------------------------------ *)

let test_cross_rename_crashes () =
  let setup fs =
    base_setup fs;
    Fs.mkdir fs "/other";
    Fs.create_file fs "/dir/mover";
    let fd = Fs.openf fs Types.wronly "/dir/mover" in
    ignore (Fs.append fs fd (Bytes.of_string "cargo"));
    Fs.close fs fd
  in
  let region, fs = mk_strict () in
  ignore region;
  setup fs;
  let n_hooks = ref 0 in
  Fs.set_crash_hook fs (fun _ -> incr n_hooks);
  Fs.rename fs "/dir/mover" "/other/moved";
  Alcotest.(check bool) "xrename passes hooks" true (!n_hooks >= 6);
  for n = 1 to !n_hooks do
    let fs', _report, crashed =
      crash_at ~setup ~op:(fun fs -> Fs.rename fs "/dir/mover" "/other/moved") n
    in
    Alcotest.(check bool) "crashed" true crashed;
    check_intact fs';
    let src = Fs.exists fs' "/dir/mover" in
    let dst = Fs.exists fs' "/other/moved" in
    if not (src <> dst) then
      Alcotest.failf "xrename crash %d: src=%b dst=%b" n src dst;
    let name = if src then "/dir/mover" else "/other/moved" in
    let fd = Fs.openf fs' Types.rdonly name in
    Alcotest.(check string) "data intact" "cargo"
      (Bytes.to_string (Fs.pread fs' fd ~pos:0 ~len:5));
    Fs.close fs' fd
  done

(* --- rename into a full row ------------------------------------------------- *)

(* Regression: crash a same-directory rename after the swap (old slot ->
   shadow entry, wrong row) but before the shadow is inserted into its
   own row, with that row already full.  Recovery's roll-forward must
   grow the hash-block chain exactly like the runtime insert path would
   have — the old code hit an "impossible" no-free-slot case and
   silently dropped the entry. *)
let test_rename_into_full_row () =
  let region, fs = mk_strict () in
  Fs.mkdir fs "/d";
  let rows = Simurgh_core.Dirblock.first_rows in
  let row_of n = Simurgh_core.Name_hash.hash n mod rows in
  let want = row_of "b" in
  (* the source name must hash to a different row, so freeing its slot
     cannot make room in b's row *)
  let src =
    let rec go i =
      let n = Printf.sprintf "src%d" i in
      if row_of n <> want then n else go (i + 1)
    in
    go 0
  in
  Fs.create_file fs ("/d/" ^ src);
  (* fill b's row completely with colliding names *)
  let fillers =
    let rec go acc i =
      if List.length acc = Simurgh_core.Dirblock.slots_per_row then
        List.rev acc
      else
        let n = Printf.sprintf "fill%d" i in
        if row_of n = want then go (n :: acc) (i + 1) else go acc (i + 1)
    in
    go [] 0
  in
  List.iter (fun n -> Fs.create_file fs ("/d/" ^ n)) fillers;
  Fs.set_crash_hook fs (fun l -> if l = "rename:oldfree" then raise Crash_now);
  (try Fs.rename fs ("/d/" ^ src) "/d/b"
   with Crash_now -> Simurgh_nvmm.Region.crash region);
  Simurgh_nvmm.Region.clear_guard region;
  let fs', report = Recovery.mount_after_crash ~euid:0 region in
  Alcotest.(check bool) "rename rolled forward" true
    (report.Recovery.completed_renames >= 1);
  Alcotest.(check bool) "renamed entry survives in the extended chain" true
    (Fs.exists fs' "/d/b");
  List.iter
    (fun n ->
      Alcotest.(check bool) ("filler " ^ n) true (Fs.exists fs' ("/d/" ^ n)))
    fillers;
  Alcotest.(check bool) "old name gone" false (Fs.exists fs' ("/d/" ^ src));
  Alcotest.(check (list string)) "checker clean" []
    (List.map Simurgh_core.Check.violation_to_string
       (Simurgh_core.Check.run region))

(* --- recovery idempotence --------------------------------------------------- *)

let test_recovery_idempotent () =
  let setup fs =
    base_setup fs;
    Fs.create_file fs "/dir/oldname"
  in
  (* crash mid-rename, then recover TWICE: second run must be a no-op *)
  let region, fs = mk_strict () in
  setup fs;
  let count = ref 0 in
  Fs.set_crash_hook fs (fun _ ->
      incr count;
      if !count = 4 then raise Crash_now);
  (try Fs.rename fs "/dir/oldname" "/dir/newname" with Crash_now ->
    Simurgh_nvmm.Region.crash region);
  let _, r1 = Recovery.run region in
  let _, r2 = Recovery.run region in
  ignore r1;
  Alcotest.(check int) "no repairs on second pass" 0
    (r2.Recovery.completed_deletes + r2.Recovery.completed_renames
   + r2.Recovery.rolled_back_renames + r2.Recovery.reclaimed_inodes
   + r2.Recovery.reclaimed_fentries)

(* --- mid-write crash: data never tears metadata --------------------------- *)

let test_write_crash_size_consistent () =
  let region, fs = mk_strict () in
  base_setup fs;
  Fs.create_file fs "/dir/data";
  let fd = Fs.openf fs Types.wronly "/dir/data" in
  ignore (Fs.append fs fd (Bytes.make 1000 'a'));
  Fs.close fs fd;
  (* crash without any flush of a second append: size must stay 1000 *)
  let fd = Fs.openf fs Types.wronly "/dir/data" in
  ignore (Fs.append fs fd (Bytes.make 1000 'b'));
  Simurgh_nvmm.Region.crash region;
  let fs', _ = Recovery.mount_after_crash ~euid:0 region in
  let st = Fs.stat fs' "/dir/data" in
  (* the size is either the old or the new one, and reading size bytes
     must succeed *)
  Alcotest.(check bool) "size valid" true
    (st.Types.size = 1000 || st.Types.size = 2000);
  let fd = Fs.openf fs' Types.rdonly "/dir/data" in
  let b = Fs.pread fs' fd ~pos:0 ~len:st.Types.size in
  Alcotest.(check int) "readable" st.Types.size (Bytes.length b);
  Fs.close fs' fd

(* Randomized crash points over random op sequences: after any crash and
   recovery the file system must list cleanly and support new work. *)
let prop_random_crash_points =
  QCheck.Test.make ~name:"random crash point leaves a recoverable FS"
    ~count:40
    QCheck.(pair (int_range 1 25) (list_of_size (QCheck.Gen.int_range 3 12)
                                     (int_range 0 9)))
    (fun (crash_after, ids) ->
      let region, fs = mk_strict () in
      Fs.mkdir fs "/w";
      List.iteri
        (fun i k -> try Fs.create_file fs (Printf.sprintf "/w/s%d_%d" i k)
          with Errno.Err _ -> ())
        ids;
      let count = ref 0 in
      Fs.set_crash_hook fs (fun _ ->
          incr count;
          if !count = crash_after then raise Crash_now);
      (* a burst of mutations, crashed at a pseudo-random persist point *)
      (try
         List.iteri
           (fun i k ->
             let p = Printf.sprintf "/w/s%d_%d" i k in
             match i mod 3 with
             | 0 -> ( try Fs.unlink fs p with Errno.Err _ -> ())
             | 1 -> (
                 try Fs.rename fs p (Printf.sprintf "/w/r%d" i)
                 with Errno.Err _ -> ())
             | _ -> (
                 try Fs.create_file fs (Printf.sprintf "/w/n%d" i)
                 with Errno.Err _ -> ()))
           ids
       with Crash_now -> Simurgh_nvmm.Region.crash region);
      let fs', _ = Recovery.mount_after_crash ~euid:0 region in
      (* the recovered FS must be fully functional *)
      let names = Fs.readdir fs' "/w" in
      List.iter (fun n -> ignore (Fs.stat fs' ("/w/" ^ n))) names;
      Fs.create_file fs' "/w/post-crash";
      Fs.unlink fs' "/w/post-crash";
      (* and a second recovery finds nothing left to repair *)
      let _, r2 = Recovery.run region in
      r2.Recovery.completed_deletes = 0
      && r2.Recovery.completed_renames = 0
      && r2.Recovery.rolled_back_renames = 0)

let () =
  Alcotest.run "crash"
    [
      ( "injection",
        [
          Alcotest.test_case "create at every step" `Quick test_create_crashes;
          Alcotest.test_case "unlink at every step" `Quick test_unlink_crashes;
          Alcotest.test_case "rename at every step" `Quick test_rename_crashes;
          Alcotest.test_case "cross rename at every step" `Quick
            test_cross_rename_crashes;
          Alcotest.test_case "rename into a full row" `Quick
            test_rename_into_full_row;
          Alcotest.test_case "recovery idempotent" `Quick
            test_recovery_idempotent;
          Alcotest.test_case "write crash size consistent" `Quick
            test_write_crash_size_consistent;
          QCheck_alcotest.to_alcotest prop_random_crash_points;
        ] );
    ]
