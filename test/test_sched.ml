(* Tests for the schedule explorer and the happens-before race
   detector: schedule invariance of the FS state machines, liveness of
   the detector (negative control), and the explorer catching the
   pre-fix with_lock leak as a deadlock. *)

open Simurgh_sim
module Sched = Simurgh_core.Sched_explore

exception Poison

(* --- DFS enumerator ----------------------------------------------------- *)

(* The enumerator must visit every leaf of a fixed decision tree exactly
   once: 3 binary decisions per run -> 8 distinct runs, then exhausted. *)
let test_dfs_enumerates_tree () =
  let dfs = Schedule.Dfs.create () in
  let seen = Hashtbl.create 8 in
  let cont = ref true in
  let runs = ref 0 in
  while !cont do
    Schedule.Dfs.start dfs;
    let path =
      List.init 3 (fun _ -> Schedule.Dfs.choose dfs ~alts:2)
    in
    Alcotest.(check bool) "leaf not repeated" false (Hashtbl.mem seen path);
    Hashtbl.replace seen path ();
    incr runs;
    cont := Schedule.Dfs.advance dfs
  done;
  Alcotest.(check int) "all 2^3 leaves" 8 !runs;
  Alcotest.(check bool) "exhausted" true (Schedule.Dfs.exhausted dfs)

(* --- explorer oracles ---------------------------------------------------- *)

let check_invariant sc =
  let st = Sched.run ~budget:16 sc in
  Alcotest.(check bool) "several distinct schedules" true (st.Sched.distinct >= 2);
  (match st.Sched.failures with
  | [] -> ()
  | (label, detail) :: _ ->
      Alcotest.failf "oracle failure under %s: %s" label detail);
  Alcotest.(check int) "no races on the decentralized workload" 0
    (List.length st.Sched.races)

let test_create_schedule_invariant () =
  check_invariant (Sched.create_scenario ~threads:2)

let test_rename_schedule_invariant () =
  check_invariant (Sched.rename_scenario ~threads:2)

let test_rw_schedule_invariant () =
  check_invariant (Sched.rw_scenario ~threads:2)

(* the striped-lock shared-directory paths must hold the same bar *)
let test_striped_schedule_invariant () =
  List.iter check_invariant (Sched.striped_scenarios ~threads:2)

(* the byte-range data-path scenarios (disjoint writes, overlapping
   read/write, concurrent appends, append vs truncate) are the
   correctness gate for the range_locks configuration *)
let test_data_schedule_invariant () =
  List.iter check_invariant (Sched.data_scenarios ~threads:2)

(* concurrent renames over one directory's rename-log ring (independent
   slot claims, plus the threads > slots contention fallback) are the
   correctness gate for the log_ring format *)
let test_ring_schedule_invariant () =
  List.iter check_invariant (Sched.ring_scenarios ~threads:2)

(* --- parallel recovery --------------------------------------------------- *)

(* Fiber-mode recovery over a crashed image: every random worker
   schedule must produce the sequential reference's durable media and
   report, stay fsck-clean and race-free — including with a poisoned
   subtree forcing quarantine escalation mid-mark. *)
let check_recovery ~poison () =
  let st = Sched.recovery_run ~budget:8 ~poison () in
  (match st.Sched.rfailures with
  | [] -> ()
  | (label, detail) :: _ ->
      Alcotest.failf "oracle failure under %s: %s" label detail);
  Alcotest.(check int) "no races in parallel recovery" 0
    (List.length st.Sched.rraces);
  Alcotest.(check bool) "several distinct interleavings" true
    (st.Sched.rdistinct >= 2);
  Alcotest.(check bool) "preemption points offered" true (st.Sched.ryields > 0)

let test_recovery_schedule_independent () = check_recovery ~poison:false ()
let test_recovery_poison_schedule_independent () = check_recovery ~poison:true ()

(* --- race detector ------------------------------------------------------- *)

let test_negative_control_fires () =
  let reports = Sched.negative_control () in
  Alcotest.(check bool) "unlocked racing stores are reported" true
    (reports <> [])

(* --- lock-leak detection -------------------------------------------------- *)

(* Two fibers contend on one spin lock; fiber 0's critical section
   raises (caught inside the body, like an EIO path would).  [impl] is
   the with_lock implementation under test. *)
let run_lock_pair impl =
  let m = Machine.create () in
  let l = Vlock.Spin.create () in
  let bodies =
    Array.init 2 (fun tid () ->
        let thr = Sthread.create tid in
        let ctx = Machine.ctx m thr in
        try
          impl ctx l (fun () ->
              Machine.cpu ctx 100.0;
              if tid = 0 then raise Poison)
        with Poison -> ())
  in
  (Engine.explore ~schedule:Schedule.legacy bodies, l)

(* the pre-fix with_lock: no release when the body raises *)
let leaky_with_lock ctx l f =
  Vlock.Spin.acquire ctx l;
  f ();
  Vlock.Spin.release ctx l

let test_explorer_catches_lock_leak () =
  match run_lock_pair leaky_with_lock with
  | _ -> Alcotest.fail "leaked lock went unnoticed"
  | exception Engine.Deadlock _ -> ()

let test_fixed_with_lock_survives_raise () =
  let o, l = run_lock_pair Vlock.Spin.with_lock in
  Alcotest.(check bool) "fibers interleaved" true (o.Engine.yields > 0);
  Alcotest.(check bool) "lock released" false (Vlock.Spin.locked l)

let () =
  Alcotest.run "sched"
    [
      ( "dfs",
        [ Alcotest.test_case "enumerates tree" `Quick test_dfs_enumerates_tree ]
      );
      ( "invariance",
        [
          Alcotest.test_case "create" `Quick test_create_schedule_invariant;
          Alcotest.test_case "rename" `Quick test_rename_schedule_invariant;
          Alcotest.test_case "read-write" `Quick test_rw_schedule_invariant;
          Alcotest.test_case "striped" `Quick test_striped_schedule_invariant;
          Alcotest.test_case "data range" `Quick test_data_schedule_invariant;
          Alcotest.test_case "log ring" `Quick test_ring_schedule_invariant;
          Alcotest.test_case "parallel recovery" `Quick
            test_recovery_schedule_independent;
          Alcotest.test_case "parallel recovery with poison" `Quick
            test_recovery_poison_schedule_independent;
        ] );
      ( "race-detector",
        [
          Alcotest.test_case "negative control" `Quick
            test_negative_control_fires;
        ] );
      ( "lock-leak",
        [
          Alcotest.test_case "leak deadlocks explorer" `Quick
            test_explorer_catches_lock_leak;
          Alcotest.test_case "fixed with_lock survives" `Quick
            test_fixed_with_lock_survives_raise;
        ] );
    ]
