(* Tests for the simulated kernel boundary: the dentry cache and its
   lockref contention model (the mechanism behind Fig. 7e/7f). *)

open Simurgh_sim
module Dcache = Simurgh_vfs.Dcache

let mk_ctx tid m = Machine.ctx m (Sthread.create tid)

let test_lookup_insert_remove () =
  let d = Dcache.create () in
  Alcotest.(check (option int)) "miss" None (Dcache.lookup d ~parent:1 "a");
  Dcache.insert d ~parent:1 "a" 42;
  Alcotest.(check (option int)) "hit" (Some 42) (Dcache.lookup d ~parent:1 "a");
  (* same name under a different parent is a different dentry *)
  Alcotest.(check (option int)) "scoped by parent" None
    (Dcache.lookup d ~parent:2 "a");
  Dcache.remove d ~parent:1 "a";
  Alcotest.(check (option int)) "removed" None (Dcache.lookup d ~parent:1 "a")

let test_hit_miss_stats () =
  let d = Dcache.create () in
  ignore (Dcache.lookup d ~parent:1 "x");
  Dcache.insert d ~parent:1 "x" 7;
  ignore (Dcache.lookup d ~parent:1 "x");
  ignore (Dcache.lookup d ~parent:1 "x");
  let hits, misses = Dcache.stats d in
  Alcotest.(check (pair int int)) "stats" (2, 1) (hits, misses);
  Dcache.clear d;
  Alcotest.(check (pair int int)) "cleared" (0, 0) (Dcache.stats d)

let test_lockref_contention () =
  (* two threads alternating on one dentry pay far more virtual time than
     one thread rereading it (the lockref cache line bounces) *)
  let m = Machine.create () in
  let d = Dcache.create () in
  Dcache.insert d ~parent:1 "hot" 1;
  let solo = Sthread.create 0 in
  let ctx = Machine.ctx m solo in
  for _ = 1 to 50 do
    ignore (Dcache.lookup ~ctx d ~parent:1 "hot")
  done;
  let solo_time = solo.Sthread.now in
  let m = Machine.create () in
  let d = Dcache.create () in
  Dcache.insert d ~parent:1 "hot" 1;
  let a = Sthread.create 0 and b = Sthread.create 1 in
  let ca = Machine.ctx m a and cb = Machine.ctx m b in
  for _ = 1 to 25 do
    ignore (Dcache.lookup ~ctx:ca d ~parent:1 "hot");
    ignore (Dcache.lookup ~ctx:cb d ~parent:1 "hot")
  done;
  let duo_time = Float.max a.Sthread.now b.Sthread.now in
  Alcotest.(check bool) "contended slower per op" true
    (duo_time > 2.0 *. solo_time)

let test_private_dentries_uncontended () =
  (* threads touching disjoint dentries do not slow each other down *)
  let m = Machine.create () in
  let d = Dcache.create () in
  Dcache.insert d ~parent:1 "a" 1;
  Dcache.insert d ~parent:2 "b" 2;
  let a = Sthread.create 0 and b = Sthread.create 1 in
  let ca = Machine.ctx m a and cb = Machine.ctx m b in
  for _ = 1 to 25 do
    ignore (Dcache.lookup ~ctx:ca d ~parent:1 "a");
    ignore (Dcache.lookup ~ctx:cb d ~parent:2 "b")
  done;
  (* each pays only hit cost + local atomic: well under 10k cycles *)
  Alcotest.(check bool) "private stays fast" true
    (a.Sthread.now < 10_000.0 && b.Sthread.now < 10_000.0)

let test_mutex_contended_futex_cost () =
  let m = Machine.create () in
  let l = Vlock.Mutex.create () in
  let a = Sthread.create 0 and b = Sthread.create 1 in
  let ca = Machine.ctx m a and cb = mk_ctx 1 m in
  ignore cb;
  Vlock.Mutex.acquire ca l;
  Machine.cpu ca 5000.0;
  Vlock.Mutex.release ca l;
  let cb = Machine.ctx m b in
  Vlock.Mutex.acquire cb l;
  Vlock.Mutex.release cb l;
  Alcotest.(check int) "one contended acquisition" 1
    (Vlock.Mutex.contentions l);
  (* the waiter paid the futex path and the backlog *)
  Alcotest.(check bool) "futex cost paid" true (b.Sthread.now > 2000.0)

(* A failed dcache probe must charge its own cost-model constant, not
   the hit constant (regression: both outcomes used dcache_hit_cycles). *)
let test_miss_cost_distinct () =
  let cm =
    {
      Cost_model.default with
      Cost_model.dcache_hit_cycles = 100.0;
      dcache_miss_cycles = 4000.0;
    }
  in
  let m = Machine.create ~cm () in
  let thr = Sthread.create 0 in
  let ctx = Machine.ctx m thr in
  let d = Dcache.create () in
  let t0 = thr.Sthread.now in
  Alcotest.(check (option int)) "miss" None (Dcache.lookup ~ctx d ~parent:1 "a");
  Alcotest.(check (float 1e-6)) "miss charges dcache_miss_cycles" 4000.0
    (thr.Sthread.now -. t0);
  Dcache.insert d ~parent:1 "a" 42;
  (* first hit bounces the cold lockref; the second is all-local *)
  ignore (Dcache.lookup ~ctx d ~parent:1 "a");
  let t1 = thr.Sthread.now in
  Alcotest.(check (option int)) "hit" (Some 42)
    (Dcache.lookup ~ctx d ~parent:1 "a");
  (* hit pays hit cost + a local lockref atomic: far below the miss *)
  Alcotest.(check bool) "hit charged independently" true
    (thr.Sthread.now -. t1 < 1000.0)

let () =
  Alcotest.run "vfs"
    [
      ( "dcache",
        [
          Alcotest.test_case "lookup/insert/remove" `Quick
            test_lookup_insert_remove;
          Alcotest.test_case "hit/miss stats" `Quick test_hit_miss_stats;
          Alcotest.test_case "lockref contention" `Quick
            test_lockref_contention;
          Alcotest.test_case "private dentries fast" `Quick
            test_private_dentries_uncontended;
          Alcotest.test_case "mutex futex cost" `Quick
            test_mutex_contended_futex_cost;
          Alcotest.test_case "miss cost distinct" `Quick
            test_miss_cost_distinct;
        ] );
    ]
