(* Tests for the observability layer: histograms against an exact
   sorted-array oracle, merge laws, metrics, JSON encoding and the
   harness argument parser. *)

open Simurgh_obs

let check_float = Alcotest.(check (float 1e-9))

(* --- histogram ----------------------------------------------------------- *)

let test_hist_empty () =
  let h = Histogram.create () in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  check_float "p50" 0.0 (Histogram.percentile h 50.0);
  check_float "mean" 0.0 (Histogram.mean h)

let test_hist_single () =
  let h = Histogram.create () in
  Histogram.record h 42.0;
  Alcotest.(check int) "count" 1 (Histogram.count h);
  check_float "p0" 42.0 (Histogram.percentile h 0.0);
  check_float "p50" 42.0 (Histogram.percentile h 50.0);
  check_float "p100" 42.0 (Histogram.percentile h 100.0);
  check_float "mean" 42.0 (Histogram.mean h)

let test_hist_exact_extremes () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 3.0; 900.0; 17.5; 0.25; 44000.0 ];
  (* min/max/count/sum are tracked exactly, outside the buckets *)
  check_float "p0 exact" 0.25 (Histogram.percentile h 0.0);
  check_float "p100 exact" 44000.0 (Histogram.percentile h 100.0);
  Alcotest.(check int) "count" 5 (Histogram.count h);
  check_float "sum" 44920.75 (Histogram.sum h)

(* Random samples: every reported percentile must sit within the
   bucket-resolution error (~1/64 relative) of the exact order
   statistic computed by Stats.percentile on the raw samples. *)
let test_hist_oracle () =
  let rng = Simurgh_sim.Rng.create 99L in
  List.iter
    (fun n ->
      let h = Histogram.create () in
      let samples =
        Array.init n (fun _ ->
            (* latencies spanning several octaves, like real op costs *)
            Float.exp (Simurgh_sim.Rng.float rng *. 12.0))
      in
      Array.iter (Histogram.record h) samples;
      List.iter
        (fun p ->
          let exact = Simurgh_sim.Stats.percentile samples p in
          let est = Histogram.percentile h p in
          let tol = (0.05 *. Float.abs exact) +. 1e-6 in
          if Float.abs (est -. exact) > tol then
            Alcotest.failf "n=%d p%.1f: est %g vs exact %g (tol %g)" n p est
              exact tol)
        [ 0.0; 10.0; 50.0; 90.0; 99.0; 99.9; 100.0 ])
    [ 1; 2; 7; 100; 5000 ]

let prop_hist_percentile_bounded =
  QCheck.Test.make ~name:"Histogram.percentile within [min, max]" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 200) (float_bound_exclusive 1e6))
    (fun l ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) l;
      let lo = Histogram.min_value h and hi = Histogram.max_value h in
      List.for_all
        (fun p ->
          let v = Histogram.percentile h p in
          v >= lo -. 1e-9 && v <= hi +. 1e-9)
        [ 0.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ])

let test_hist_merge_assoc () =
  let mk l =
    let h = Histogram.create () in
    List.iter (Histogram.record h) l;
    h
  in
  (* integer-valued samples: float addition is exact, so associativity
     must hold bit-for-bit — compare via the JSON summaries *)
  let a = mk [ 1.0; 8.0; 64.0 ]
  and b = mk [ 2.0; 16.0 ]
  and c = mk [ 4.0; 32.0; 256.0; 1024.0 ] in
  let left = Histogram.merge (Histogram.merge a b) c in
  let right = Histogram.merge a (Histogram.merge b c) in
  Alcotest.(check string) "assoc"
    (Json.to_string (Histogram.to_json left))
    (Json.to_string (Histogram.to_json right));
  Alcotest.(check int) "merged count" 9 (Histogram.count left)

let test_hist_merge_vs_whole () =
  let l1 = [ 5.0; 50.0; 500.0 ] and l2 = [ 7.0; 70.0 ] in
  let mk l =
    let h = Histogram.create () in
    List.iter (Histogram.record h) l;
    h
  in
  let merged = Histogram.merge (mk l1) (mk l2) in
  let whole = mk (l1 @ l2) in
  Alcotest.(check string) "merge = record-all"
    (Json.to_string (Histogram.to_json whole))
    (Json.to_string (Histogram.to_json merged))

(* --- metrics ------------------------------------------------------------- *)

let test_metrics () =
  let m = Metrics.create () in
  Metrics.add m "b" 2.0;
  Metrics.incr m "a";
  Metrics.add m "b" 3.0;
  check_float "a" 1.0 (Metrics.get m "a");
  check_float "b" 5.0 (Metrics.get m "b");
  check_float "missing" 0.0 (Metrics.get m "zzz");
  Alcotest.(check (list string)) "sorted names" [ "a"; "b" ]
    (List.map fst (Metrics.to_list m));
  let d = Metrics.create () in
  Metrics.add d "b" 1.0;
  Metrics.merge_into d m;
  check_float "merged" 6.0 (Metrics.get d "b")

(* --- contention ---------------------------------------------------------- *)

let test_contention_counts () =
  let c = Contention.create () in
  Contention.record_acquire c ~site:"s" ~kind:Contention.Spin ~wait:0.0;
  Contention.record_acquire c ~site:"s" ~kind:Contention.Spin ~wait:10.0;
  Contention.record_acquire c ~site:"s" ~kind:Contention.Spin ~wait:5.0;
  Contention.record_acquire c ~site:"t" ~kind:Contention.Mutex ~wait:0.0;
  check_float "total wait" 15.0 (Contention.total_wait c);
  Alcotest.(check int) "acquisitions" 4 (Contention.total_acquisitions c);
  check_float "site wait" 15.0 (Contention.wait_of c "s");
  match Contention.to_list c with
  | [ ("s", s); ("t", t) ] ->
      Alcotest.(check int) "s contended" 2 s.Contention.contended;
      Alcotest.(check int) "s acquisitions" 3 s.Contention.acquisitions;
      Alcotest.(check int) "t contended" 0 t.Contention.contended
  | _ -> Alcotest.fail "expected two sites"

(* --- run ----------------------------------------------------------------- *)

let test_run_merge () =
  let a = Run.create () and b = Run.create () in
  Metrics.add a.Run.counters "x" 1.0;
  Metrics.add b.Run.counters "x" 2.0;
  Histogram.record (Run.hist a "fs/op") 10.0;
  Histogram.record (Run.hist b "fs/op") 20.0;
  Span.add_fs a.Run.spans 100.0;
  Span.add_copy_bytes b.Run.spans 4096;
  let m = Run.merge a b in
  check_float "counter" 3.0 (Metrics.get m.Run.counters "x");
  Alcotest.(check int) "hist merged" 2
    (Histogram.count (Run.hist m "fs/op"));
  check_float "span fs" 100.0 m.Run.spans.Span.fs_cycles;
  Alcotest.(check int) "span bytes" 4096 m.Run.spans.Span.copy_bytes;
  (* sources untouched *)
  Alcotest.(check int) "a hist intact" 1 (Histogram.count (Run.hist a "fs/op"))

(* --- json ---------------------------------------------------------------- *)

let test_json_encoding () =
  Alcotest.(check string) "escaping" {|"a\"b\\c\n\td\u0001"|}
    (Json.to_string (Json.Str "a\"b\\c\n\td\001"));
  Alcotest.(check string) "nan is null" "null"
    (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Json.to_string (Json.Float Float.infinity));
  Alcotest.(check string) "obj"
    {|{"a":1,"b":[true,null,1.5]}|}
    (Json.to_string
       (Json.Obj
          [
            ("a", Json.Int 1);
            ("b", Json.List [ Json.Bool true; Json.Null; Json.Float 1.5 ]);
          ]))

(* --- collect: resolve-cache counter sources ------------------------------ *)

(* Both resolve caches must surface in an experiment snapshot: the
   kernel baselines register dcache/* and a Simurgh mount with the
   resolve cache on registers rcache/*. *)
let test_collect_cache_counters () =
  Collect.install ();
  let kfs = Simurgh_baselines.Nova.create () in
  Simurgh_baselines.Nova.mkdir kfs "/d";
  Simurgh_baselines.Nova.create_file kfs "/d/f";
  for _ = 1 to 5 do
    ignore (Simurgh_baselines.Nova.stat kfs "/d/f")
  done;
  let region = Simurgh_nvmm.Region.create (64 * 1024 * 1024) in
  let fs = Simurgh_core.Fs.mkfs ~euid:0 ~rcache:true region in
  Simurgh_core.Fs.mkdir fs "/d";
  Simurgh_core.Fs.create_file fs "/d/f";
  for _ = 1 to 5 do
    ignore (Simurgh_core.Fs.stat fs "/d/f")
  done;
  let run = Collect.drain () in
  let names = List.map fst (Metrics.to_list run.Run.counters) in
  List.iter
    (fun k -> Alcotest.(check bool) (k ^ " present") true (List.mem k names))
    [
      "dcache/hits";
      "dcache/misses";
      "rcache/hits";
      "rcache/misses";
      "rcache/inserts";
      "rcache/invalidations";
    ];
  Alcotest.(check bool) "dcache hits nonzero" true
    (Metrics.get run.Run.counters "dcache/hits" > 0.0);
  Alcotest.(check bool) "rcache hits nonzero" true
    (Metrics.get run.Run.counters "rcache/hits" > 0.0)

(* Named counter sources: a ~name'd registration claims its name for
   the collector -- a second registration under the same name is the
   two-live-regions shadowing bug and must raise, while anonymous
   same-key sources keep the historical summing behavior. *)
let test_collect_named_source_duplicate () =
  Collect.install ();
  Collect.note_source ~name:"dupA" (fun () -> [ ("dupA/x", 1.0) ]);
  (match Collect.note_source ~name:"dupA" (fun () -> [ ("dupA/x", 5.0) ]) with
  | () -> Alcotest.fail "expected Duplicate_source"
  | exception Collect.Duplicate_source n ->
      Alcotest.(check string) "offending name" "dupA" n);
  (* a different name is fine, and anonymous sources never collide *)
  Collect.note_source ~name:"dupB" (fun () -> [ ("dupB/x", 2.0) ]);
  Collect.note_source (fun () -> [ ("anon/x", 3.0) ]);
  Collect.note_source (fun () -> [ ("anon/x", 4.0) ]);
  let run = Collect.drain () in
  Alcotest.(check (float 1e-9)) "named kept" 1.0
    (Metrics.get run.Run.counters "dupA/x");
  Alcotest.(check (float 1e-9)) "second name kept" 2.0
    (Metrics.get run.Run.counters "dupB/x");
  Alcotest.(check (float 1e-9)) "anonymous sources sum" 7.0
    (Metrics.get run.Run.counters "anon/x")

(* Two live regions under one collector: named regions export disjoint
   [<name>/...] counter families instead of silently merging into one
   [region/...] stream. *)
let test_collect_region_namespacing () =
  Collect.install ();
  let ra = Simurgh_nvmm.Region.create ~name:"regA" (1 lsl 20) in
  let rb = Simurgh_nvmm.Region.create ~name:"regB" (1 lsl 20) in
  Simurgh_nvmm.Region.write_u32 ra 0 7;
  for _ = 1 to 3 do
    ignore (Simurgh_nvmm.Region.read_u32 ra 0)
  done;
  ignore (Simurgh_nvmm.Region.read_u32 rb 0);
  (* a second region under the same name is the shadowing bug *)
  (match Simurgh_nvmm.Region.create ~name:"regA" (1 lsl 20) with
  | _ -> Alcotest.fail "expected Duplicate_source"
  | exception Collect.Duplicate_source n ->
      Alcotest.(check string) "offending name" "regA" n);
  let run = Collect.drain () in
  Alcotest.(check (float 1e-9)) "regA loads" 3.0
    (Metrics.get run.Run.counters "regA/loads");
  Alcotest.(check (float 1e-9)) "regB loads" 1.0
    (Metrics.get run.Run.counters "regB/loads");
  Alcotest.(check (float 1e-9)) "regA stores" 1.0
    (Metrics.get run.Run.counters "regA/stores");
  (* nothing leaked into the legacy unprefixed family *)
  Alcotest.(check (float 1e-9)) "no region/loads" 0.0
    (Metrics.get run.Run.counters "region/loads")

(* --- cli ----------------------------------------------------------------- *)

let known = [ "fig7"; "fig9"; "tab1" ]
let is_dynamic id = String.length id = 5 && String.sub id 0 4 = "fig7"

let parse args = Obs_cli.parse ~known ~is_dynamic args

let test_cli_ok () =
  match parse [ "--scale"; "0.5"; "--json"; "out"; "fig9"; "fig7a" ] with
  | Ok c ->
      check_float "scale" 0.5 c.Obs_cli.scale;
      Alcotest.(check (option string)) "json" (Some "out") c.Obs_cli.json_dir;
      Alcotest.(check (list string)) "ids" [ "fig9"; "fig7a" ] c.Obs_cli.ids;
      Alcotest.(check bool) "not list" false c.Obs_cli.list_only
  | Error e -> Alcotest.fail e

let expect_error name args =
  match parse args with
  | Ok _ -> Alcotest.failf "%s: expected an error" name
  | Error _ -> ()

let test_cli_errors () =
  (* --scale as the last argument used to raise a bare Failure *)
  expect_error "dangling scale" [ "fig9"; "--scale" ];
  expect_error "non-numeric scale" [ "--scale"; "fast" ];
  expect_error "negative scale" [ "--scale"; "-1" ];
  (* unknown flags used to be treated as experiment ids *)
  expect_error "unknown flag" [ "--verbose" ];
  (* misspelled ids used to run nothing and exit 0 *)
  expect_error "misspelled id" [ "figg9" ];
  expect_error "dangling json" [ "--json" ];
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match parse [ "figg9" ] with
  | Error msg ->
      Alcotest.(check bool) "mentions --list" true (contains msg "--list")
  | Ok _ -> Alcotest.fail "expected error");
  match parse [ "all" ] with
  | Ok c -> Alcotest.(check (list string)) "all ok" [ "all" ] c.Obs_cli.ids
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "single" `Quick test_hist_single;
          Alcotest.test_case "exact extremes" `Quick test_hist_exact_extremes;
          Alcotest.test_case "oracle" `Quick test_hist_oracle;
          Alcotest.test_case "merge associative" `Quick test_hist_merge_assoc;
          Alcotest.test_case "merge = whole" `Quick test_hist_merge_vs_whole;
          QCheck_alcotest.to_alcotest prop_hist_percentile_bounded;
        ] );
      ("metrics", [ Alcotest.test_case "counters" `Quick test_metrics ]);
      ( "contention",
        [ Alcotest.test_case "site counts" `Quick test_contention_counts ] );
      ("run", [ Alcotest.test_case "merge" `Quick test_run_merge ]);
      ("json", [ Alcotest.test_case "encoding" `Quick test_json_encoding ]);
      ( "collect",
        [
          Alcotest.test_case "cache counters" `Quick
            test_collect_cache_counters;
          Alcotest.test_case "named source duplicate" `Quick
            test_collect_named_source_duplicate;
          Alcotest.test_case "per-region namespacing" `Quick
            test_collect_region_namespacing;
        ] );
      ( "cli",
        [
          Alcotest.test_case "ok" `Quick test_cli_ok;
          Alcotest.test_case "errors" `Quick test_cli_errors;
        ] );
    ]
