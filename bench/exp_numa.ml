(** Run id [numa]: the multi-region NVMM substrate (fig7-style sweeps).

    Two parts:

    + {b bandwidth scaling}: 16 threads stream 16 KiB pwrites into
      per-thread files spread round-robin over 1, 2 and 4 regions, each
      region behind its own bandwidth-server pair and every thread
      homed on its file's socket (best-case NUMA-local placement).
      One region saturates the single device's aggregate write rate;
      N regions multiply it, so aggregate bandwidth should scale until
      thread-side demand runs out.
    + {b remote surcharge}: a single thread writes the same file homed
      on region 1 (socket 1) twice — once homed on socket 1 (local)
      and once on socket 0 (remote) — so the measured latency ratio
      exposes the cross-socket multipliers of {!Cost_model} end to end
      through the file-system stack.

    Results go to stdout (mirrored into {!Simurgh_obs.Report} for
    [--json]), to per-region [rN/region*] / [rN/region*\/alloc]
    observability counters, and always to [BENCH_numa.json] (schema
    [simurgh-numa-v1]) so the scaling trajectory is kept across PRs. *)

open Simurgh_fs_common
open Simurgh_sim
module Shard = Simurgh_core.Shard
module Name_hash = Simurgh_core.Name_hash
module Report = Simurgh_obs.Report
module Collect = Simurgh_obs.Collect

let region_counts = [ 1; 2; 4 ]
let threads = 16
let io = 16 * 1024
let blocks_per_thread = 16 (* io-sized slots each thread cycles over *)

(* A top-level directory name that Name_hash.home routes to region [r]
   (brute-forced; the hash is deterministic, so this terminates fast and
   the same name is found every run). *)
let dir_for ~regions r =
  let rec go i =
    let name = Printf.sprintf "d%d_%d" r i in
    if Name_hash.home name ~regions = r then name else go (i + 1)
  in
  go 0

let socket_of r = Cost_model.socket_of_region Cost_model.default r

(* One sharded namespace, one file per thread, preallocated outside
   virtual time.  Returns bytes/second of aggregate pwrite traffic. *)
let run_bw ~regions ~ops =
  let machine = Machine.create () in
  let sh =
    Shard.mkfs ~machine ~prefix:(Printf.sprintf "r%d/region" regions)
      ~regions ~euid:0 ~striped_locks:true ~rcache:true ~alloc_caches:true
      (64 * 1024 * 1024)
  in
  let dirs =
    Array.init regions (fun r ->
        let d = "/" ^ dir_for ~regions r in
        Shard.mkdir sh d;
        d)
  in
  let chunk = Bytes.make (blocks_per_thread * io) 'x' in
  let files =
    Array.init threads (fun i ->
        let r = i mod regions in
        let p = Printf.sprintf "%s/f%02d" dirs.(r) i in
        let fd = Shard.openf sh (Types.creat Types.rdwr) p in
        ignore (Shard.pwrite sh fd ~pos:0 chunk);
        (r, fd))
  in
  let buf = Bytes.make io 'w' in
  let op ctx j =
    let tid = ctx.Machine.thr.Sthread.tid in
    let r, fd = files.(tid) in
    ctx.Machine.thr.Sthread.home_socket <- socket_of r;
    let pos = j mod blocks_per_thread * io in
    ignore (Shard.pwrite ~ctx sh fd ~pos buf)
  in
  let outcome = Engine.run_ops machine ~threads ~ops_per_thread:ops op in
  Engine.throughput machine outcome *. float_of_int io

(* Single-thread pwrite latency against a region-1 file, homed on the
   given socket.  Region 1 lives on socket 1, so socket 0 is remote. *)
let run_latency ~home_socket ~ops =
  let machine = Machine.create () in
  let label = if home_socket = socket_of 1 then "local" else "remote" in
  let sh =
    Shard.mkfs ~machine ~prefix:(Printf.sprintf "lat-%s/region" label)
      ~regions:2 ~euid:0 (32 * 1024 * 1024)
  in
  let d = "/" ^ dir_for ~regions:2 1 in
  Shard.mkdir sh d;
  let p = d ^ "/f" in
  let fd = Shard.openf sh (Types.creat Types.rdwr) p in
  ignore (Shard.pwrite sh fd ~pos:0 (Bytes.make (blocks_per_thread * io) 'x'));
  let buf = Bytes.make io 'w' in
  let op ctx j =
    ctx.Machine.thr.Sthread.home_socket <- home_socket;
    let pos = j mod blocks_per_thread * io in
    ignore (Shard.pwrite ~ctx sh fd ~pos buf)
  in
  let outcome = Engine.run_ops machine ~threads:1 ~ops_per_thread:ops op in
  1.0 /. Engine.throughput machine outcome (* seconds per op *)

let gbps bytes_per_sec = bytes_per_sec /. 1.0e9

let run ~scale =
  let counters = ref [] in
  Collect.note_source (fun () -> !counters);
  let tally k v = counters := (k, v) :: !counters in
  let ops = Util.scaled ~scale 400 in

  (* --- aggregate bandwidth scaling ----------------------------------- *)
  let title =
    Printf.sprintf
      "numa: aggregate pwrite bandwidth vs region count (%d threads, %d \
       KiB ops, %d ops/thread)"
      threads (io / 1024) ops
  in
  Util.header title;
  let bw = List.map (fun regions -> (regions, run_bw ~regions ~ops)) region_counts in
  let base = match bw with (_, b) :: _ -> b | [] -> 1.0 in
  Report.table ~title ~columns:[ "GBps"; "scaling" ];
  Printf.printf "%-10s %9s %9s\n" "regions" "GB/s" "scaling";
  List.iter
    (fun (regions, b) ->
      let s = b /. base in
      Printf.printf "%-10d %9.2f %9.2f\n" regions (gbps b) s;
      Report.row (Printf.sprintf "%d-region" regions) [ gbps b; s ];
      tally (Printf.sprintf "numa/bw_gbps_r%d" regions) (gbps b);
      tally (Printf.sprintf "numa/scaling_r%d" regions) s)
    bw;

  (* --- cross-socket surcharge ---------------------------------------- *)
  let lat_local = run_latency ~home_socket:(socket_of 1) ~ops in
  let lat_remote = run_latency ~home_socket:(1 - socket_of 1) ~ops in
  let ratio = lat_remote /. lat_local in
  let title = "numa: single-thread 16 KiB pwrite, local vs remote socket" in
  Util.header title;
  Report.table ~title ~columns:[ "us/op" ];
  let us s = s *. 1.0e6 in
  Printf.printf "%-10s %9.2f us/op\n" "local" (us lat_local);
  Printf.printf "%-10s %9.2f us/op\n" "remote" (us lat_remote);
  Printf.printf "%-10s %9.2fx\n" "ratio" ratio;
  Report.row "local" [ us lat_local ];
  Report.row "remote" [ us lat_remote ];
  Report.row "ratio" [ ratio ];
  tally "numa/remote_local_ratio" ratio;

  (* --- BENCH_numa.json ------------------------------------------------ *)
  let oc = open_out "BENCH_numa.json" in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"schema\": \"simurgh-numa-v1\",\n";
  out "  \"run\": \"numa\",\n  \"scale\": %g,\n" scale;
  out "  \"threads\": %d,\n  \"io_bytes\": %d,\n" threads io;
  out
    "  \"note\": \"aggregate virtual-time pwrite bandwidth with one file \
     per thread spread round-robin over N regions (each behind its own \
     bandwidth-server pair, threads homed on their file's socket); \
     latency: single-thread us/op against a region on the local vs the \
     remote socket\",\n";
  out "  \"bandwidth\": [\n";
  List.iteri
    (fun i (regions, b) ->
      out "    { \"regions\": %d, \"gbps\": %.3f, \"scaling\": %.3f }%s\n"
        regions (gbps b) (b /. base)
        (if i = List.length bw - 1 then "" else ","))
    bw;
  out "  ],\n";
  out
    "  \"latency\": { \"local_us\": %.3f, \"remote_us\": %.3f, \"ratio\": \
     %.3f }\n"
    (us lat_local) (us lat_remote) ratio;
  out "}\n";
  close_out oc;
  Printf.printf "\nwrote BENCH_numa.json\n"
