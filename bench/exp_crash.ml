(** Run id [crash]: the fault plane — adversarial crash images, media
    faults and the fsck-style checker.

    Three parts, mirroring the robustness toolchain:

    + {b explore}: crash-image exploration of the four Fig. 5 state
      machines (create / unlink / same-dir rename / cross-dir rename),
      each mutating machine also in the scaled configuration (striped
      locks + resolve cache + allocator caches — volatile-only, so
      every image must recover identically).
      At every NVMM store and every labeled persist point the eviction
      adversary enumerates subsets of the unpersisted cache lines
      (exhaustive up to 10 pending lines, seeded samples beyond); every
      image is recovered ({!Simurgh_core.Recovery.run}) and must pass
      the offline checker ({!Simurgh_core.Check.run}).
    + {b media}: a poisoned data line surfaces as an [EIO] error return
      with the process still alive; poisoned metadata is quarantined by
      recovery with the rest of the namespace intact.
    + {b fsck}: the checker validates the final image; its violation
      count (must be 0) is exported.

    With [--json] the run exports the fault-plane counters to
    [BENCH_crash.json]: [faults/crash_points], [faults/images_explored],
    [faults/explorer_failures], [faults/quarantined],
    [faults/checker_violations], plus the region- and fs-level
    [faults/poisoned_lines], [faults/media_errors], [faults/crash_images]
    and [faults/eio_returns] sources. *)

open Simurgh_fs_common
module Fs = Simurgh_core.Fs
module Recovery = Simurgh_core.Recovery
module Check = Simurgh_core.Check
module Explore = Simurgh_core.Explore
module Fentry = Simurgh_core.Fentry
module Inode = Simurgh_core.Inode
module Region = Simurgh_nvmm.Region
module Slab = Simurgh_alloc.Slab_alloc
module Obs = Simurgh_obs

exception Crash_now

let ops =
  [
    ( "create",
      false,
      (fun fs -> Fs.mkdir fs "/d"),
      fun fs -> Fs.create_file fs "/d/f" );
    ( "unlink",
      false,
      (fun fs ->
        Fs.mkdir fs "/d";
        Fs.create_file fs "/d/f"),
      fun fs -> Fs.unlink fs "/d/f" );
    ( "rename",
      false,
      (fun fs ->
        Fs.mkdir fs "/d";
        Fs.create_file fs "/d/old"),
      fun fs -> Fs.rename fs "/d/old" "/d/new" );
    ( "cross-rename",
      false,
      (fun fs ->
        Fs.mkdir fs "/d";
        Fs.mkdir fs "/e";
        Fs.create_file fs "/d/m"),
      fun fs -> Fs.rename fs "/d/m" "/e/m2" );
    (* the same Fig. 5 state machines with the scalability features on:
       the striped insert (reserve/busy/grow), the reserve-then-log
       rename window and the per-thread allocator caches must leave
       every crash image recoverable too *)
    ( "striped-create",
      true,
      (fun fs -> Fs.mkdir fs "/d"),
      fun fs -> Fs.create_file fs "/d/f" );
    ( "striped-rename",
      true,
      (fun fs ->
        Fs.mkdir fs "/d";
        Fs.create_file fs "/d/old"),
      fun fs -> Fs.rename fs "/d/old" "/d/new" );
    ( "striped-xrename",
      true,
      (fun fs ->
        Fs.mkdir fs "/d";
        Fs.mkdir fs "/e";
        Fs.create_file fs "/d/m"),
      fun fs -> Fs.rename fs "/d/m" "/e/m2" );
  ]

(* The two rename state machines again on log-ring media (per-directory
   ring of rename-log slots, scaled mount): a crash may now leave any
   slot of the ring pending, and every image must still recover to an
   empty ring. *)
let ring_ops =
  [
    ( "ring-rename",
      (fun fs ->
        Fs.mkdir fs "/d";
        Fs.create_file fs "/d/old"),
      fun fs -> Fs.rename fs "/d/old" "/d/new" );
    ( "ring-xrename",
      (fun fs ->
        Fs.mkdir fs "/d";
        Fs.mkdir fs "/e";
        Fs.create_file fs "/d/m"),
      fun fs -> Fs.rename fs "/d/m" "/e/m2" );
  ]

(* Crash exploration of the byte-range data path: the staged
   (batched-writeback) extent window and the append/extend publish
   point.  Beyond fsck-cleanliness these carry a [verify] oracle on
   every recovered image: the size is either the old or the new value
   (the publish is a single 8-aligned u62 store), and a published size
   never covers bytes whose stores had not retired — no torn data, and
   a hole left by a past-EOF write reads back as zeros. *)

let page = 4096

let read_file fs path =
  let st = Fs.stat fs path in
  let fd = Fs.openf fs Types.rdonly path in
  let b = Fs.pread fs fd ~pos:0 ~len:st.Types.size in
  Fs.close fs fd;
  b

let expect_uniform b ~pos ~len c ~what =
  for i = pos to pos + len - 1 do
    if Bytes.get b i <> c then
      failwith
        (Printf.sprintf "%s: byte %d is %C, want %C" what i (Bytes.get b i) c)
  done

let one_page_setup fs =
  let fd = Fs.openf fs (Types.creat Types.rdwr) "/f" in
  ignore (Fs.pwrite fs fd ~pos:0 (Bytes.make page 'a'));
  Fs.close fs fd

let range_ops =
  [
    ( "range-append",
      one_page_setup,
      (fun fs ->
        let fd = Fs.openf fs Types.rdwr "/f" in
        ignore (Fs.append fs fd (Bytes.make page 'b'));
        Fs.close fs fd),
      fun fs ->
        let got = read_file fs "/f" in
        (match Bytes.length got with
        | n when n = page -> ()
        | n when n = 2 * page ->
            expect_uniform got ~pos:page ~len:page 'b'
              ~what:"published append bytes"
        | n ->
            failwith
              (Printf.sprintf "size %d, want %d or %d" n page (2 * page)));
        expect_uniform got ~pos:0 ~len:page 'a' ~what:"pre-crash prefix" );
    ( "range-extend",
      one_page_setup,
      (fun fs ->
        let fd = Fs.openf fs Types.rdwr "/f" in
        ignore (Fs.pwrite fs fd ~pos:(2 * page) (Bytes.make page 'c'));
        Fs.close fs fd),
      fun fs ->
        let got = read_file fs "/f" in
        (match Bytes.length got with
        | n when n = page -> ()
        | n when n = 3 * page ->
            expect_uniform got ~pos:page ~len:page '\000' ~what:"hole";
            expect_uniform got ~pos:(2 * page) ~len:page 'c'
              ~what:"published extend bytes"
        | n ->
            failwith
              (Printf.sprintf "size %d, want %d or %d" n page (3 * page)));
        expect_uniform got ~pos:0 ~len:page 'a' ~what:"pre-crash prefix" );
  ]

(* Multi-region (sharded) exploration: cross-region renames and creates
   against a 2-region Shard, with the eviction adversary ranging over
   the union of both regions' unpersisted lines.  Each region recovers
   independently and must come out checker-clean; the rename verify
   oracle additionally pins the copy+unlink contract (the source is
   unlinked last, so once it is gone the destination is complete). *)
module Shard = Simurgh_core.Shard
module Name_hash = Simurgh_core.Name_hash

(* a top-level dir name that routes to region [r] of a 2-region shard *)
let shard_dir r =
  let rec go i =
    let n = Printf.sprintf "d%d_%d" r i in
    if Name_hash.home n ~regions:2 = r then n else go (i + 1)
  in
  "/" ^ go 0

let xfile_bytes = 256

let multi_ops =
  let d0 = shard_dir 0 and d1 = shard_dir 1 in
  let src = d0 ^ "/m" and dst = d1 ^ "/m2" in
  [
    ( "xregion-rename",
      (fun sh ->
        Shard.mkdir sh d0;
        Shard.mkdir sh d1;
        let fd = Shard.openf sh (Types.creat Types.rdwr) src in
        ignore (Shard.pwrite sh fd ~pos:0 (Bytes.make xfile_bytes 'x'));
        Shard.close sh fd),
      (fun sh -> Shard.rename sh src dst),
      Some
        (fun sh ->
          if not (Shard.exists sh src) then begin
            let st = Shard.stat sh dst in
            if st.Types.size <> xfile_bytes then
              failwith
                (Printf.sprintf
                   "dest size %d after source unlink, want %d" st.Types.size
                   xfile_bytes);
            let fd = Shard.openf sh Types.rdonly dst in
            let got = Shard.pread sh fd ~pos:0 ~len:xfile_bytes in
            Shard.close sh fd;
            Bytes.iter
              (fun c -> if c <> 'x' then failwith "torn dest after unlink")
              got
          end) );
    ( "xregion-create",
      (fun sh ->
        Shard.mkdir sh d0;
        Shard.mkdir sh d1),
      (fun sh ->
        Shard.create_file sh (d0 ^ "/a");
        Shard.create_file sh (d1 ^ "/b")),
      None );
  ]

(* Media plane: EIO containment on a poisoned data line, then metadata
   quarantine.  Returns (eio_returns_seen, quarantined, violations). *)
let media_plane () =
  let region = Region.create (32 * 1024 * 1024) in
  let fs = Fs.mkfs ~euid:0 region in
  Fs.mkdir fs "/d";
  Fs.create_file fs "/d/data";
  let fd = Fs.openf fs Types.rdwr "/d/data" in
  ignore (Fs.append fs fd (Bytes.make 4096 'x'));
  let addr = ref 0 in
  let _, fe = Fs.resolve fs "/d/data" in
  (try
     Inode.iter_extents region (Fentry.target region fe) (fun a _ ->
         addr := a;
         raise Exit)
   with Exit -> ());
  Region.poison region !addr 1;
  let eio = ref 0 in
  (try ignore (Fs.pread fs fd ~pos:0 ~len:4096)
   with Errno.Err (EIO, _) -> incr eio);
  (try ignore (Fs.pwrite fs fd ~pos:0 (Bytes.make 64 'y'))
   with Errno.Err (EIO, _) -> incr eio);
  Fs.close fs fd;
  (* the process is still alive: more namespace work succeeds *)
  Fs.create_file fs "/d/alive";
  Fs.unlink fs "/d/alive";
  (* now poison a metadata line (a file entry's slab slot) and recover *)
  Fs.create_file fs "/d/victim";
  let _, vfe = Fs.resolve fs "/d/victim" in
  Region.poison region (vfe - Slab.obj_header) 1;
  let _fs', report = Recovery.mount_after_crash ~euid:0 region in
  (!eio, report.Recovery.quarantined, Check.run region)

let run ~scale =
  Util.header
    "crash: adversarial crash images, media faults, fsck-style checker";
  let samples = max 8 (Util.scaled ~scale 32) in
  let points = ref 0
  and images = ref 0
  and failures = ref 0
  and quarantined = ref 0
  and eio = ref 0
  and violations = ref 0 in
  let tally name (st : Explore.stats) =
    points := !points + st.Explore.crash_points;
    images := !images + st.Explore.images;
    failures := !failures + List.length st.Explore.failures;
    Printf.printf
      "  explore %-13s crash points %3d, images %4d, max pending lines \
       %2d, violating images %d\n"
      name st.Explore.crash_points st.Explore.images st.Explore.max_pending
      (List.length st.Explore.failures);
    List.iter
      (fun (label, viols) ->
        Printf.printf "    FAIL %s: %s\n" label
          (String.concat "; " (List.map Check.violation_to_string viols)))
      st.Explore.failures
  in
  List.iter
    (fun (name, scaled, setup, op) ->
      tally name (Explore.run ~samples ~scaled ~setup ~op ()))
    ops;
  List.iter
    (fun (name, setup, op) ->
      tally name (Explore.run ~samples ~scaled:true ~ring:4 ~setup ~op ()))
    ring_ops;
  List.iter
    (fun (name, setup, op, verify) ->
      tally name
        (Explore.run ~samples ~scaled:true ~range:true ~setup ~op ~verify ()))
    range_ops;
  List.iter
    (fun (name, setup, op, verify) ->
      tally name (Explore.run_multi ~samples ~regions:2 ~setup ~op ?verify ()))
    multi_ops;
  (* crash-during-recovery: crash the op, then crash RECOVERY at its
     own store points and labeled hooks, re-enter on every eviction
     subset — each image must reach a media fixpoint (idempotence: 2
     passes) and end checker-clean *)
  let reentrant_ops =
    [
      ( "reenter-rename",
        (fun fs ->
          Fs.mkdir fs "/d1";
          Fs.mkdir fs "/d2";
          Fs.create_file fs "/d1/a"),
        fun fs -> Fs.rename fs "/d1/a" "/d2/b" );
      ( "reenter-create",
        (fun fs -> Fs.mkdir fs "/d"),
        fun fs ->
          Fs.create_file fs "/d/f";
          Fs.create_file fs "/d/g" );
    ]
  in
  let rec_points = ref 0 and rec_images = ref 0 and rec_passes = ref 0 in
  List.iter
    (fun (name, setup, op) ->
      let st = Explore.run_reentrant ~setup ~op () in
      rec_points := !rec_points + st.Explore.recovery_points;
      rec_images := !rec_images + st.Explore.reentry_images;
      rec_passes := max !rec_passes st.Explore.max_passes;
      failures := !failures + List.length st.Explore.reentry_failures;
      Printf.printf
        "  reenter %-13s mid-recovery points %3d, images %4d, fixpoint in \
         <= %d pass(es), failing images %d\n"
        name st.Explore.recovery_points st.Explore.reentry_images
        st.Explore.max_passes
        (List.length st.Explore.reentry_failures);
      List.iter
        (fun l -> Printf.printf "    FAIL %s\n" l)
        st.Explore.reentry_failures)
    reentrant_ops;
  let media_eio, media_quarantined, media_viols = media_plane () in
  eio := media_eio;
  quarantined := media_quarantined;
  violations := !failures + List.length media_viols;
  Printf.printf
    "  media plane: %d EIO returns (process alive), %d entries \
     quarantined, post-recovery checker violations %d\n"
    media_eio media_quarantined
    (List.length media_viols);
  Obs.Collect.note_source (fun () ->
      [
        ("faults/crash_points", float_of_int !points);
        ("faults/images_explored", float_of_int !images);
        ("faults/explorer_failures", float_of_int !failures);
        ("faults/quarantined", float_of_int !quarantined);
        ("faults/checker_violations", float_of_int !violations);
        ("faults/recovery_crash_points", float_of_int !rec_points);
        ("faults/recovery_reentry_images", float_of_int !rec_images);
        ("faults/recovery_fixpoint_passes", float_of_int !rec_passes);
      ]
      @ Recovery.counters ());
  Printf.printf
    "  total: %d crash points, %d images explored, %d checker \
     violations%s\n"
    !points !images !violations
    (if !violations = 0 then " -- all images recover clean" else " (BUG)")

(** Standalone fsck self-check, used by [--check] / [make fsck]: the
    checker must pass a correctly recovered crash image AND flag a
    deliberately mis-recovered one (negative control, so a trivially
    empty checker cannot pass).  Returns a process exit code. *)
let fsck () =
  let region = Region.create ~mode:Region.Strict (32 * 1024 * 1024) in
  let fs = Fs.mkfs ~euid:0 region in
  Fs.mkdir fs "/d";
  Fs.mkdir fs "/e";
  for i = 0 to 15 do
    Fs.create_file fs (Printf.sprintf "/d/f%d" i)
  done;
  Fs.create_file fs "/d/m";
  Fs.set_crash_hook fs (fun l ->
      if l = "xrename:dstslot" then raise Crash_now);
  (try Fs.rename fs "/d/m" "/e/m" with Crash_now -> Region.crash region);
  Region.clear_guard region;
  let _ = Recovery.run ~skip_log_resolution:true region in
  let negative = Check.run region in
  let _ = Recovery.run region in
  let clean = Check.run region in
  Printf.printf "fsck: negative control (broken recovery): %s\n"
    (if negative <> [] then
       Printf.sprintf "caught (%d violations)" (List.length negative)
     else "MISSED");
  Printf.printf "fsck: full recovery: %d violation(s)\n" (List.length clean);
  List.iter
    (fun v -> print_endline ("  " ^ Check.violation_to_string v))
    clean;
  (* the same gate on log-ring media: a crashed rename leaves a pending
     ring slot; full recovery must empty the ring *)
  let ring_region = Region.create ~mode:Region.Strict (32 * 1024 * 1024) in
  let rfs = Fs.mkfs ~euid:0 ~log_ring:4 ring_region in
  Fs.mkdir rfs "/d";
  Fs.create_file rfs "/d/m";
  Fs.set_crash_hook rfs (fun l -> if l = "rename:swap" then raise Crash_now);
  (try Fs.rename rfs "/d/m" "/d/n" with Crash_now -> Region.crash ring_region);
  Region.clear_guard ring_region;
  let _ = Recovery.run ring_region in
  let ring_clean = Check.run ring_region in
  Printf.printf "fsck: log-ring recovery: %d violation(s)\n"
    (List.length ring_clean);
  List.iter
    (fun v -> print_endline ("  " ^ Check.violation_to_string v))
    ring_clean;
  (* broken-parallel-sweep negative control: drop every mark shard but
     worker 0's during a 2-worker recovery — the sweep then frees
     reachable objects, which the checker must flag (the merge step is
     guarded, not assumed); a full recovery converges the damage *)
  let par_region = Region.create ~mode:Region.Strict (32 * 1024 * 1024) in
  let pfs = Fs.mkfs ~euid:0 par_region in
  Fs.mkdir pfs "/d";
  for i = 0 to 15 do
    Fs.create_file pfs (Printf.sprintf "/d/f%d" i)
  done;
  Fs.create_file pfs "/loose";
  Region.persist_all par_region;
  Fs.invalidate_shared par_region;
  let machine = Simurgh_sim.Machine.create () in
  let _ =
    Recovery.run
      ~par:(Recovery.Vtime { machine; workers = 2 })
      ~drop_mark_shard:true par_region
  in
  let par_negative = Check.run par_region in
  Fs.invalidate_shared par_region;
  let _ = Recovery.run par_region in
  let par_clean = Check.run par_region in
  Printf.printf "fsck: negative control (broken parallel sweep): %s\n"
    (if par_negative <> [] then
       Printf.sprintf "caught (%d violations)" (List.length par_negative)
     else "MISSED");
  Printf.printf "fsck: recovery after broken sweep: %d violation(s)\n"
    (List.length par_clean);
  List.iter
    (fun v -> print_endline ("  " ^ Check.violation_to_string v))
    par_clean;
  if negative <> [] && clean = [] && ring_clean = [] && par_negative <> []
     && par_clean = []
  then 0
  else 1
