(** Table 1: execution-time breakdown (application / data copy / file
    system) for NOVA under YCSB LoadA, tar pack and git commit. *)

open Simurgh_workloads
module Y = Ycsb
module Y_nova = Y.Make (Simurgh_baselines.Nova)
module I = Instrument
module INova = I.Make (Simurgh_baselines.Nova)
module Tar_i = Tar_sim.Make (INova)
module Git_i = Git_sim.Make (INova)
module Tree_i = Linux_tree.Make (INova)

(* Breakdown of an instrumented single-threaded phase, read from the
   machine's observability run. *)
let breakdown cm m total_cycles =
  I.breakdown cm (Simurgh_sim.Machine.obs m) ~total_cycles

let run ~scale =
  Util.header "tab1: NOVA execution-time breakdown";
  let cm = Simurgh_sim.Cost_model.default in
  (* YCSB LoadA *)
  let records = Util.scaled ~scale 8000 in
  let fs = Simurgh_baselines.Nova.create () in
  let m = Simurgh_sim.Machine.create () in
  let r = Y_nova.run m fs Y.Load_a ~records ~ops:records ~threads:1 in
  Util.pp_breakdown "YCSB LoadA" (r.Y.app_frac, r.Y.copy_frac, r.Y.fs_frac);
  (* tar pack *)
  let tree =
    Linux_tree.generate
      { Linux_tree.default with Linux_tree.files = Util.scaled ~scale 1500 }
  in
  let _, files = tree in
  let ifs = (Simurgh_baselines.Nova.create (), I.fresh_acc ()) in
  Tree_i.populate ifs tree;
  (* populate ran without a ctx, so the fresh machine's run is empty *)
  let m = Simurgh_sim.Machine.create () in
  let pr = Tar_i.pack m ifs ~archive:"/a.tar" tree in
  breakdown cm m (pr.Tar_sim.seconds *. cm.Simurgh_sim.Cost_model.freq_hz)
  |> Util.pp_breakdown "Tar Pack";
  (* git commit: instrument only the commit phase *)
  let ifs = (Simurgh_baselines.Nova.create (), I.fresh_acc ()) in
  Tree_i.populate ifs tree;
  Git_i.setup_git ifs;
  let m = Simurgh_sim.Machine.create () in
  let thr = Simurgh_sim.Sthread.create 0 in
  ignore (Git_i.add m thr ifs files);
  (* drop the add phase from the measurement without resetting the
     machine's bandwidth servers (that would change virtual time) *)
  Simurgh_obs.Run.clear (Simurgh_sim.Machine.obs m);
  let commit_s = Git_i.commit m thr ifs files in
  breakdown cm m (commit_s *. cm.Simurgh_sim.Cost_model.freq_hz)
  |> Util.pp_breakdown "Git Commit";
  Printf.printf
    "paper: LoadA 27/18/55, Tar Pack 8/36/56, Git Commit 33/0.5/66 \
     (app/copy/FS %%)\n"
