(** Fig. 7: the ten FxMark microbenchmarks across all file systems and
    1-10 threads.  Metadata benchmarks report Kops/s; data benchmarks
    report both Kops/s and GB/s. *)

open Simurgh_workloads

let metadata_benches =
  [
    ("fig7a", Fxmark.Create_private, 2000);
    ("fig7b", Fxmark.Create_shared, 2000);
    ("fig7c", Fxmark.Delete_private, 2000);
    ("fig7d", Fxmark.Rename_shared, 2000);
    ("fig7e", Fxmark.Resolve_private, 4000);
    ("fig7f", Fxmark.Resolve_shared, 4000);
  ]

let data_benches =
  [
    ("fig7g", Fxmark.Append_private, 1500);
    ("fig7h", Fxmark.Fallocate_private, 64);
    ("fig7i", Fxmark.Read_shared { cache_hot = false }, 3000);
    ("fig7j", Fxmark.Read_private { cache_hot = false }, 3000);
    ("fig7k", Fxmark.Overwrite_shared, 3000);
    ("fig7l", Fxmark.Write_private, 3000);
  ]

let targets_for bench =
  match bench with
  | Fxmark.Overwrite_shared ->
      (* include the relaxed variant the paper plots in Fig. 7k *)
      Targets.all () @ [ Targets.simurgh ~relaxed_writes:true () ]
  | Fxmark.Write_private ->
      (* the paper could not run SplitFS on this benchmark *)
      List.filter (fun t -> t.Targets.name <> "SplitFS") (Targets.all ())
  | _ -> Targets.all ()

(* fallocate maps 4 MiB per op per thread: give it a region that fits *)
let region_mb_for bench ops threads =
  match bench with
  | Fxmark.Fallocate_private ->
      (* generous headroom so segment exhaustion rescans do not distort
         the base throughput *)
      Some (max 1024 ((ops * 4 * threads * 3 / 2) + 512))
  | _ -> None

let run_bench ~scale (id, bench, base_ops) =
  let ops =
    match bench with
    | Fxmark.Fallocate_private -> min 64 (Util.scaled ~scale base_ops)
    | _ -> Util.scaled ~scale base_ops
  in
  Util.header
    (Printf.sprintf "%s: %s (Kops/s; %d ops/thread)" id
       (Fxmark.bench_name bench) ops);
  Util.print_thread_header ();
  let is_data = match bench with
    | Fxmark.Append_private | Fxmark.Fallocate_private | Fxmark.Read_shared _
    | Fxmark.Read_private _ | Fxmark.Overwrite_shared | Fxmark.Write_private ->
        true
    | _ -> false
  in
  List.iter
    (fun (t : Targets.target) ->
      let results =
        List.map
          (fun threads ->
            let region_mb = region_mb_for bench ops threads in
            t.Targets.run_fx ?region_mb ~threads ~ops bench)
          Util.thread_counts
      in
      Util.series t.Targets.name " %9.0f"
        (List.map (fun (r : Fxmark.result) -> Util.kops r.Fxmark.throughput)
           results);
      if is_data then
        Util.series (t.Targets.name ^ " GB/s") " %9.2f"
          (List.map (fun (r : Fxmark.result) -> r.Fxmark.bandwidth /. 1e9)
             results))
    (targets_for bench)

let run_one ~scale id =
  match
    List.find_opt (fun (i, _, _) -> i = id) (metadata_benches @ data_benches)
  with
  | Some b -> run_bench ~scale b
  | None -> Printf.printf "unknown fig7 id: %s\n" id

let run ~scale =
  List.iter (run_bench ~scale) metadata_benches;
  List.iter (run_bench ~scale) data_benches
