(** Run id [data]: the file data plane — byte-range locks, concurrent
    append, and open-loop tail latency.

    Two parts:

    + {b closed loop}: fxmark-style shared-file scaling curves for
      three data workloads on one file — disjoint-range 4 KiB
      overwrites, concurrent appends, and random 4 KiB reads — sweeping
      thread counts past the paper's 10, comparing the scaled metadata
      configuration with its whole-file data lock (baseline) against
      the same configuration with byte-range locking ([range_locks]).
      Both share the same on-media layout; only volatile coordination
      differs.  The per-row "file-range/" contention sites are summed
      so the remaining waits are attributable.
    + {b open loop}: the closed-loop curves measure service time only —
      clients that issue the next op the instant the previous returns
      never queue.  {!Simurgh_sim.Openloop} offers Poisson arrivals at
      a ladder of fractions of the measured closed-loop capacity over a
      Zipf-popular file set, exposing the saturation knee in
      p50/p99/p999 sojourn time for both configurations.

    Results go to stdout (mirrored into {!Simurgh_obs.Report} for
    [--json]), to [data/*] observability counters, and always to
    [BENCH_data.json] (schema [simurgh-data-v1]) so the perf trajectory
    is kept across PRs. *)

open Simurgh_fs_common
open Simurgh_sim
module Fs = Simurgh_core.Fs
module Region = Simurgh_nvmm.Region
module Report = Simurgh_obs.Report
module Collect = Simurgh_obs.Collect
module Contention = Simurgh_obs.Contention

let thread_counts = [ 1; 2; 4; 8; 16; 24 ]
let io = 4096

(* Each thread owns this many 4 KiB blocks of the shared file in the
   disjoint-write workload (and the read workload draws from the same
   span), so range-locked writers from different threads never share a
   row while the baseline still funnels through one whole-file lock. *)
let blocks_per_thread = 16

type wl = Disjoint_write | Shared_append | Shared_read

let wl_name = function
  | Disjoint_write -> "disjoint-write"
  | Shared_append -> "shared-append"
  | Shared_read -> "shared-read"

(* Both configurations carry the metadata-scalability features so the
   only delta is the data-path protocol. *)
let fresh ~range ~region_mb =
  let region = Region.create (region_mb * 1024 * 1024) in
  Fs.mkfs ~euid:0 ~striped_locks:true ~rcache:true ~alloc_caches:true
    ~range_locks:range region

(* Appends grow the file by [threads * ops * io]; everything else works
   in place on a small pre-sized file. *)
let region_mb_for ~threads ~ops = function
  | Shared_append -> max 128 (96 + (threads * ops * (io * 2) / (1024 * 1024)))
  | Disjoint_write | Shared_read -> 128

type cell = {
  kops : float;
  range_acq : int;  (** "file-range/" row-lock acquisitions *)
  range_contended : int;
  range_wait : float;  (** virtual cycles waited on row locks *)
}

let run_cell ~range ~threads ~ops wl =
  let fs = fresh ~range ~region_mb:(region_mb_for ~threads ~ops wl) in
  Fs.mkdir fs "/d";
  let path = "/d/big" in
  let file_bytes = threads * blocks_per_thread * io in
  (match wl with
  | Disjoint_write | Shared_read ->
      let fd = Fs.openf fs (Types.creat Types.rdwr) path in
      let chunk = Bytes.make (16 * io) 'x' in
      let pos = ref 0 in
      while !pos < file_bytes do
        ignore (Fs.pwrite fs fd ~pos:!pos chunk);
        pos := !pos + Bytes.length chunk
      done;
      Fs.close fs fd
  | Shared_append ->
      let fd = Fs.openf fs (Types.creat Types.wronly) path in
      Fs.close fs fd);
  let fds = Array.init threads (fun _ -> Fs.openf fs Types.rdwr path) in
  let machine = Machine.create () in
  let buf = Bytes.make io 'd' in
  let op ctx j =
    let i = ctx.Machine.thr.Sthread.tid in
    let fd = fds.(i) in
    match wl with
    | Disjoint_write ->
        let pos = ((i * blocks_per_thread) + (j mod blocks_per_thread)) * io in
        ignore (Fs.pwrite ~ctx fs fd ~pos buf)
    | Shared_append -> ignore (Fs.append ~ctx fs fd buf)
    | Shared_read ->
        let rng = ctx.Machine.thr.Sthread.rng in
        let pos = Rng.int rng ((threads * blocks_per_thread) - 1) * io in
        ignore (Fs.pread ~ctx fs fd ~pos ~len:io)
  in
  let outcome = Engine.run_ops machine ~threads ~ops_per_thread:ops op in
  Array.iter (fun fd -> Fs.close fs fd) fds;
  let acq, contended, wait =
    Contention.sum_of_prefix
      (Machine.obs machine).Simurgh_obs.Run.contention "file-range/"
  in
  {
    kops = Util.kops (Engine.throughput machine outcome);
    range_acq = acq;
    range_contended = contended;
    range_wait = wait;
  }

let print_thread_header title =
  Report.table ~title ~columns:(List.map (Printf.sprintf "t%d") thread_counts);
  Printf.printf "%-18s" "threads";
  List.iter (fun t -> Printf.printf " %9d" t) thread_counts;
  print_newline ()

type series = {
  workload : string;
  base_kops : float list;
  range_kops : float list;
  speedup : float list;
  acq : int;
  contended : int;
  wait : float;
}

(* ---- open loop ------------------------------------------------------- *)

let ol_clients = 16
let ol_files = 64
let ol_theta = 0.99
let ladder = [ 0.2; 0.5; 0.8; 0.9; 1.0; 1.1; 1.3 ]

type ol_point = {
  config : string;
  frac : float;
  offered_kops : float;
  achieved_kops : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
}

(* A Zipf-popular set of small files, each overwritten one random
   4 KiB block at a time: the hot head of the popularity curve is where
   a whole-file lock queues and byte-range locking mostly does not. *)
let ol_prepare ~range =
  let fs = fresh ~range ~region_mb:128 in
  Fs.mkdir fs "/z";
  let chunk = Bytes.make (blocks_per_thread * io) 'x' in
  let paths =
    Array.init ol_files (fun i ->
        let p = Printf.sprintf "/z/f%02d" i in
        let fd = Fs.openf fs (Types.creat Types.rdwr) p in
        ignore (Fs.pwrite fs fd ~pos:0 chunk);
        Fs.close fs fd;
        p)
  in
  let fds =
    Array.init ol_clients (fun _ ->
        Array.map (fun p -> Fs.openf fs Types.rdwr p) paths)
  in
  let zipf = Zipf.create ~theta:ol_theta ol_files in
  let buf = Bytes.make io 'd' in
  let op ctx _j =
    let i = ctx.Machine.thr.Sthread.tid in
    let rng = ctx.Machine.thr.Sthread.rng in
    let f = Zipf.sample zipf rng in
    let pos = Rng.int rng (blocks_per_thread - 1) * io in
    ignore (Fs.pwrite ~ctx fs fds.(i).(f) ~pos buf)
  in
  op

(* Closed-loop capacity of the open-loop op mix: the ladder is offered
   as fractions of this, so the knee sits at frac ~ 1 by construction. *)
let ol_capacity ~ops op =
  let machine = Machine.create () in
  let outcome = Engine.run_ops machine ~threads:ol_clients ~ops_per_thread:ops op in
  Engine.throughput machine outcome

let ol_sweep ~config ~ops ~capacity =
  List.map
    (fun frac ->
      (* fresh file set per point: no backlog or cache state bleeds
         between offered-load levels *)
      let op = ol_prepare ~range:(config = "range") in
      let machine = Machine.create () in
      let rate = frac *. capacity in
      let r =
        Openloop.run machine ~clients:ol_clients ~rate ~ops_per_client:ops
          (fun ctx _client j -> op ctx j)
      in
      let us s = s *. 1.0e6 in
      {
        config;
        frac;
        offered_kops = Util.kops r.Openloop.offered;
        achieved_kops = Util.kops r.Openloop.achieved;
        p50_us = us r.Openloop.p50;
        p99_us = us r.Openloop.p99;
        p999_us = us r.Openloop.p999;
      })
    ladder

let print_ol_points config points =
  let title =
    Printf.sprintf
      "data open-loop: %s (zipf %.2f over %d files, %d clients)" config
      ol_theta ol_files ol_clients
  in
  Util.header title;
  Report.table ~title
    ~columns:[ "offered"; "achieved"; "p50us"; "p99us"; "p999us" ];
  Printf.printf "%-10s %9s %9s %9s %9s %9s\n" "load" "offerKops" "achKops"
    "p50us" "p99us" "p999us";
  List.iter
    (fun p ->
      Printf.printf "%-10s %9.0f %9.0f %9.1f %9.1f %9.1f\n"
        (Printf.sprintf "%.1fx" p.frac)
        p.offered_kops p.achieved_kops p.p50_us p.p99_us p.p999_us;
      Report.row
        (Printf.sprintf "%s %.1fx" config p.frac)
        [ p.offered_kops; p.achieved_kops; p.p50_us; p.p99_us; p.p999_us ])
    points

let run ~scale =
  let counters = ref [] in
  Collect.note_source (fun () -> !counters);
  let tally k v = counters := (k, v) :: !counters in
  let ops = Util.scaled ~scale 400 in
  let tmax = List.fold_left max 1 thread_counts in
  (* --- closed loop ---------------------------------------------------- *)
  let all =
    List.map
      (fun wl ->
        let title =
          Printf.sprintf
            "data %s: whole-file lock vs byte-range (Kops/s; %d ops/thread)"
            (wl_name wl) ops
        in
        Util.header title;
        print_thread_header title;
        let base =
          List.map (fun threads -> run_cell ~range:false ~threads ~ops wl)
            thread_counts
        in
        let rng =
          List.map (fun threads -> run_cell ~range:true ~threads ~ops wl)
            thread_counts
        in
        let base_kops = List.map (fun c -> c.kops) base in
        let range_kops = List.map (fun c -> c.kops) rng in
        let speedup =
          List.map2 (fun r b -> if b > 0.0 then r /. b else 0.0) range_kops
            base_kops
        in
        Util.series "whole-file" " %9.0f" base_kops;
        Util.series "byte-range" " %9.0f" range_kops;
        Util.series "speedup" " %9.2f" speedup;
        let last l = List.nth l (List.length l - 1) in
        let top = last rng in
        Printf.printf
          "%-18s row-lock acquisitions %d (%d contended, %.0f cycles waited) \
           at t%d\n"
          "" top.range_acq top.range_contended top.range_wait tmax;
        tally
          (Printf.sprintf "data/%s/base_t%d_kops" (wl_name wl) tmax)
          (last base_kops);
        tally
          (Printf.sprintf "data/%s/range_t%d_kops" (wl_name wl) tmax)
          (last range_kops);
        tally
          (Printf.sprintf "data/%s/speedup_t%d" (wl_name wl) tmax)
          (last speedup);
        {
          workload = wl_name wl;
          base_kops;
          range_kops;
          speedup;
          acq = top.range_acq;
          contended = top.range_contended;
          wait = top.range_wait;
        })
      [ Disjoint_write; Shared_append; Shared_read ]
  in
  (* --- open loop ------------------------------------------------------ *)
  let ol_ops = Util.scaled ~scale 300 in
  let ol =
    List.concat_map
      (fun config ->
        let op = ol_prepare ~range:(config = "range") in
        let capacity = ol_capacity ~ops:ol_ops op in
        tally
          (Printf.sprintf "data/openloop/%s_capacity_kops" config)
          (Util.kops capacity);
        let points = ol_sweep ~config ~ops:ol_ops ~capacity in
        print_ol_points config points;
        (match List.rev points with
        | over :: _ ->
            tally
              (Printf.sprintf "data/openloop/%s_p999_us_oversat" config)
              over.p999_us
        | [] -> ());
        points)
      [ "whole-file"; "range" ]
  in
  (* --- BENCH_data.json ------------------------------------------------ *)
  let oc = open_out "BENCH_data.json" in
  let out fmt = Printf.fprintf oc fmt in
  let floats l = String.concat ", " (List.map (Printf.sprintf "%.2f") l) in
  out "{\n  \"schema\": \"simurgh-data-v1\",\n";
  out "  \"run\": \"data\",\n  \"scale\": %g,\n" scale;
  out "  \"thread_counts\": [%s],\n"
    (String.concat ", " (List.map string_of_int thread_counts));
  out "  \"io_bytes\": %d,\n  \"blocks_per_thread\": %d,\n" io
    blocks_per_thread;
  out
    "  \"note\": \"kops: virtual-time Kops/s; whole-file: scaled metadata \
     config with the per-file rw lock; byte-range: same config with \
     range_locks (4 KiB row locks, reserve/publish appends; same on-media \
     layout)\",\n";
  out "  \"closed_loop\": [\n";
  List.iteri
    (fun i s ->
      out "    {\"workload\": %S,\n" s.workload;
      out "     \"whole_file_kops\": [%s],\n" (floats s.base_kops);
      out "     \"byte_range_kops\": [%s],\n" (floats s.range_kops);
      out "     \"speedup\": [%s],\n" (floats s.speedup);
      out
        "     \"range_contention_t%d\": {\"acquisitions\": %d, \"contended\": \
         %d, \"wait_cycles\": %.0f}}%s\n"
        tmax s.acq s.contended s.wait
        (if i = List.length all - 1 then "" else ","))
    all;
  out "  ],\n";
  out
    "  \"open_loop\": {\"clients\": %d, \"files\": %d, \"zipf_theta\": %g, \
     \"points\": [\n"
    ol_clients ol_files ol_theta;
  List.iteri
    (fun i p ->
      out
        "    {\"config\": %S, \"load\": %.1f, \"offered_kops\": %.2f, \
         \"achieved_kops\": %.2f, \"p50_us\": %.2f, \"p99_us\": %.2f, \
         \"p999_us\": %.2f}%s\n"
        p.config p.frac p.offered_kops p.achieved_kops p.p50_us p.p99_us
        p.p999_us
        (if i = List.length ol - 1 then "" else ","))
    ol;
  out "  ]}\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_data.json\n"
